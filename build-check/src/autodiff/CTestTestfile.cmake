# CMake generated Testfile for 
# Source directory: /root/repo/src/autodiff
# Build directory: /root/repo/build-check/src/autodiff
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
