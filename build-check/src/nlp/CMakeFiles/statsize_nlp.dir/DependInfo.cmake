
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nlp/auglag.cpp" "src/nlp/CMakeFiles/statsize_nlp.dir/auglag.cpp.o" "gcc" "src/nlp/CMakeFiles/statsize_nlp.dir/auglag.cpp.o.d"
  "/root/repo/src/nlp/derivative_check.cpp" "src/nlp/CMakeFiles/statsize_nlp.dir/derivative_check.cpp.o" "gcc" "src/nlp/CMakeFiles/statsize_nlp.dir/derivative_check.cpp.o.d"
  "/root/repo/src/nlp/problem.cpp" "src/nlp/CMakeFiles/statsize_nlp.dir/problem.cpp.o" "gcc" "src/nlp/CMakeFiles/statsize_nlp.dir/problem.cpp.o.d"
  "/root/repo/src/nlp/projected_lbfgs.cpp" "src/nlp/CMakeFiles/statsize_nlp.dir/projected_lbfgs.cpp.o" "gcc" "src/nlp/CMakeFiles/statsize_nlp.dir/projected_lbfgs.cpp.o.d"
  "/root/repo/src/nlp/tron.cpp" "src/nlp/CMakeFiles/statsize_nlp.dir/tron.cpp.o" "gcc" "src/nlp/CMakeFiles/statsize_nlp.dir/tron.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
