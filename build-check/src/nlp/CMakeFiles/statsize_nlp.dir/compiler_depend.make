# Empty compiler generated dependencies file for statsize_nlp.
# This may be replaced when dependencies are built.
