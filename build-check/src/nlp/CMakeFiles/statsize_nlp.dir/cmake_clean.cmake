file(REMOVE_RECURSE
  "CMakeFiles/statsize_nlp.dir/auglag.cpp.o"
  "CMakeFiles/statsize_nlp.dir/auglag.cpp.o.d"
  "CMakeFiles/statsize_nlp.dir/derivative_check.cpp.o"
  "CMakeFiles/statsize_nlp.dir/derivative_check.cpp.o.d"
  "CMakeFiles/statsize_nlp.dir/problem.cpp.o"
  "CMakeFiles/statsize_nlp.dir/problem.cpp.o.d"
  "CMakeFiles/statsize_nlp.dir/projected_lbfgs.cpp.o"
  "CMakeFiles/statsize_nlp.dir/projected_lbfgs.cpp.o.d"
  "CMakeFiles/statsize_nlp.dir/tron.cpp.o"
  "CMakeFiles/statsize_nlp.dir/tron.cpp.o.d"
  "libstatsize_nlp.a"
  "libstatsize_nlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statsize_nlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
