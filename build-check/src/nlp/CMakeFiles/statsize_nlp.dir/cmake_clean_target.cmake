file(REMOVE_RECURSE
  "libstatsize_nlp.a"
)
