file(REMOVE_RECURSE
  "libstatsize_ssta.a"
)
