# Empty dependencies file for statsize_ssta.
# This may be replaced when dependencies are built.
