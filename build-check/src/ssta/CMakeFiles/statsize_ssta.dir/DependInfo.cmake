
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ssta/activity.cpp" "src/ssta/CMakeFiles/statsize_ssta.dir/activity.cpp.o" "gcc" "src/ssta/CMakeFiles/statsize_ssta.dir/activity.cpp.o.d"
  "/root/repo/src/ssta/canonical.cpp" "src/ssta/CMakeFiles/statsize_ssta.dir/canonical.cpp.o" "gcc" "src/ssta/CMakeFiles/statsize_ssta.dir/canonical.cpp.o.d"
  "/root/repo/src/ssta/delay_model.cpp" "src/ssta/CMakeFiles/statsize_ssta.dir/delay_model.cpp.o" "gcc" "src/ssta/CMakeFiles/statsize_ssta.dir/delay_model.cpp.o.d"
  "/root/repo/src/ssta/monte_carlo.cpp" "src/ssta/CMakeFiles/statsize_ssta.dir/monte_carlo.cpp.o" "gcc" "src/ssta/CMakeFiles/statsize_ssta.dir/monte_carlo.cpp.o.d"
  "/root/repo/src/ssta/report.cpp" "src/ssta/CMakeFiles/statsize_ssta.dir/report.cpp.o" "gcc" "src/ssta/CMakeFiles/statsize_ssta.dir/report.cpp.o.d"
  "/root/repo/src/ssta/slack.cpp" "src/ssta/CMakeFiles/statsize_ssta.dir/slack.cpp.o" "gcc" "src/ssta/CMakeFiles/statsize_ssta.dir/slack.cpp.o.d"
  "/root/repo/src/ssta/ssta.cpp" "src/ssta/CMakeFiles/statsize_ssta.dir/ssta.cpp.o" "gcc" "src/ssta/CMakeFiles/statsize_ssta.dir/ssta.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-check/src/stat/CMakeFiles/statsize_stat.dir/DependInfo.cmake"
  "/root/repo/build-check/src/netlist/CMakeFiles/statsize_netlist.dir/DependInfo.cmake"
  "/root/repo/build-check/src/util/CMakeFiles/statsize_util.dir/DependInfo.cmake"
  "/root/repo/build-check/src/analyze/CMakeFiles/statsize_analyze_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
