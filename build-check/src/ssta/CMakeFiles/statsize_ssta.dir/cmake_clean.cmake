file(REMOVE_RECURSE
  "CMakeFiles/statsize_ssta.dir/activity.cpp.o"
  "CMakeFiles/statsize_ssta.dir/activity.cpp.o.d"
  "CMakeFiles/statsize_ssta.dir/canonical.cpp.o"
  "CMakeFiles/statsize_ssta.dir/canonical.cpp.o.d"
  "CMakeFiles/statsize_ssta.dir/delay_model.cpp.o"
  "CMakeFiles/statsize_ssta.dir/delay_model.cpp.o.d"
  "CMakeFiles/statsize_ssta.dir/monte_carlo.cpp.o"
  "CMakeFiles/statsize_ssta.dir/monte_carlo.cpp.o.d"
  "CMakeFiles/statsize_ssta.dir/report.cpp.o"
  "CMakeFiles/statsize_ssta.dir/report.cpp.o.d"
  "CMakeFiles/statsize_ssta.dir/slack.cpp.o"
  "CMakeFiles/statsize_ssta.dir/slack.cpp.o.d"
  "CMakeFiles/statsize_ssta.dir/ssta.cpp.o"
  "CMakeFiles/statsize_ssta.dir/ssta.cpp.o.d"
  "libstatsize_ssta.a"
  "libstatsize_ssta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statsize_ssta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
