file(REMOVE_RECURSE
  "CMakeFiles/statsize_util.dir/args.cpp.o"
  "CMakeFiles/statsize_util.dir/args.cpp.o.d"
  "CMakeFiles/statsize_util.dir/json.cpp.o"
  "CMakeFiles/statsize_util.dir/json.cpp.o.d"
  "libstatsize_util.a"
  "libstatsize_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statsize_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
