file(REMOVE_RECURSE
  "libstatsize_util.a"
)
