# Empty compiler generated dependencies file for statsize_util.
# This may be replaced when dependencies are built.
