file(REMOVE_RECURSE
  "libstatsize_analyze_base.a"
)
