file(REMOVE_RECURSE
  "CMakeFiles/statsize_analyze_base.dir/circuit_lint.cpp.o"
  "CMakeFiles/statsize_analyze_base.dir/circuit_lint.cpp.o.d"
  "CMakeFiles/statsize_analyze_base.dir/diagnostic.cpp.o"
  "CMakeFiles/statsize_analyze_base.dir/diagnostic.cpp.o.d"
  "CMakeFiles/statsize_analyze_base.dir/library_lint.cpp.o"
  "CMakeFiles/statsize_analyze_base.dir/library_lint.cpp.o.d"
  "CMakeFiles/statsize_analyze_base.dir/registry.cpp.o"
  "CMakeFiles/statsize_analyze_base.dir/registry.cpp.o.d"
  "libstatsize_analyze_base.a"
  "libstatsize_analyze_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statsize_analyze_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
