# Empty dependencies file for statsize_analyze_base.
# This may be replaced when dependencies are built.
