
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analyze/circuit_lint.cpp" "src/analyze/CMakeFiles/statsize_analyze_base.dir/circuit_lint.cpp.o" "gcc" "src/analyze/CMakeFiles/statsize_analyze_base.dir/circuit_lint.cpp.o.d"
  "/root/repo/src/analyze/diagnostic.cpp" "src/analyze/CMakeFiles/statsize_analyze_base.dir/diagnostic.cpp.o" "gcc" "src/analyze/CMakeFiles/statsize_analyze_base.dir/diagnostic.cpp.o.d"
  "/root/repo/src/analyze/library_lint.cpp" "src/analyze/CMakeFiles/statsize_analyze_base.dir/library_lint.cpp.o" "gcc" "src/analyze/CMakeFiles/statsize_analyze_base.dir/library_lint.cpp.o.d"
  "/root/repo/src/analyze/registry.cpp" "src/analyze/CMakeFiles/statsize_analyze_base.dir/registry.cpp.o" "gcc" "src/analyze/CMakeFiles/statsize_analyze_base.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-check/src/util/CMakeFiles/statsize_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
