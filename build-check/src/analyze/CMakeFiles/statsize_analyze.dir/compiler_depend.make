# Empty compiler generated dependencies file for statsize_analyze.
# This may be replaced when dependencies are built.
