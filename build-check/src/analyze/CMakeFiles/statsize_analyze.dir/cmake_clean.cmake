file(REMOVE_RECURSE
  "CMakeFiles/statsize_analyze.dir/lint.cpp.o"
  "CMakeFiles/statsize_analyze.dir/lint.cpp.o.d"
  "CMakeFiles/statsize_analyze.dir/model_audit.cpp.o"
  "CMakeFiles/statsize_analyze.dir/model_audit.cpp.o.d"
  "libstatsize_analyze.a"
  "libstatsize_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statsize_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
