file(REMOVE_RECURSE
  "libstatsize_analyze.a"
)
