file(REMOVE_RECURSE
  "libstatsize_core.a"
)
