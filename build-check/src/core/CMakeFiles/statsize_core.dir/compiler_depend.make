# Empty compiler generated dependencies file for statsize_core.
# This may be replaced when dependencies are built.
