file(REMOVE_RECURSE
  "CMakeFiles/statsize_core.dir/clark_element.cpp.o"
  "CMakeFiles/statsize_core.dir/clark_element.cpp.o.d"
  "CMakeFiles/statsize_core.dir/discrete.cpp.o"
  "CMakeFiles/statsize_core.dir/discrete.cpp.o.d"
  "CMakeFiles/statsize_core.dir/full_space.cpp.o"
  "CMakeFiles/statsize_core.dir/full_space.cpp.o.d"
  "CMakeFiles/statsize_core.dir/greedy.cpp.o"
  "CMakeFiles/statsize_core.dir/greedy.cpp.o.d"
  "CMakeFiles/statsize_core.dir/reduced_space.cpp.o"
  "CMakeFiles/statsize_core.dir/reduced_space.cpp.o.d"
  "CMakeFiles/statsize_core.dir/sizer.cpp.o"
  "CMakeFiles/statsize_core.dir/sizer.cpp.o.d"
  "CMakeFiles/statsize_core.dir/spec.cpp.o"
  "CMakeFiles/statsize_core.dir/spec.cpp.o.d"
  "libstatsize_core.a"
  "libstatsize_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statsize_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
