
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/blif.cpp" "src/netlist/CMakeFiles/statsize_netlist.dir/blif.cpp.o" "gcc" "src/netlist/CMakeFiles/statsize_netlist.dir/blif.cpp.o.d"
  "/root/repo/src/netlist/cell_library.cpp" "src/netlist/CMakeFiles/statsize_netlist.dir/cell_library.cpp.o" "gcc" "src/netlist/CMakeFiles/statsize_netlist.dir/cell_library.cpp.o.d"
  "/root/repo/src/netlist/circuit.cpp" "src/netlist/CMakeFiles/statsize_netlist.dir/circuit.cpp.o" "gcc" "src/netlist/CMakeFiles/statsize_netlist.dir/circuit.cpp.o.d"
  "/root/repo/src/netlist/generators.cpp" "src/netlist/CMakeFiles/statsize_netlist.dir/generators.cpp.o" "gcc" "src/netlist/CMakeFiles/statsize_netlist.dir/generators.cpp.o.d"
  "/root/repo/src/netlist/verilog.cpp" "src/netlist/CMakeFiles/statsize_netlist.dir/verilog.cpp.o" "gcc" "src/netlist/CMakeFiles/statsize_netlist.dir/verilog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-check/src/analyze/CMakeFiles/statsize_analyze_base.dir/DependInfo.cmake"
  "/root/repo/build-check/src/util/CMakeFiles/statsize_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
