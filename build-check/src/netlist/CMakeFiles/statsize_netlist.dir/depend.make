# Empty dependencies file for statsize_netlist.
# This may be replaced when dependencies are built.
