file(REMOVE_RECURSE
  "libstatsize_netlist.a"
)
