file(REMOVE_RECURSE
  "CMakeFiles/statsize_netlist.dir/blif.cpp.o"
  "CMakeFiles/statsize_netlist.dir/blif.cpp.o.d"
  "CMakeFiles/statsize_netlist.dir/cell_library.cpp.o"
  "CMakeFiles/statsize_netlist.dir/cell_library.cpp.o.d"
  "CMakeFiles/statsize_netlist.dir/circuit.cpp.o"
  "CMakeFiles/statsize_netlist.dir/circuit.cpp.o.d"
  "CMakeFiles/statsize_netlist.dir/generators.cpp.o"
  "CMakeFiles/statsize_netlist.dir/generators.cpp.o.d"
  "CMakeFiles/statsize_netlist.dir/verilog.cpp.o"
  "CMakeFiles/statsize_netlist.dir/verilog.cpp.o.d"
  "libstatsize_netlist.a"
  "libstatsize_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statsize_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
