# CMake generated Testfile for 
# Source directory: /root/repo/src/stat
# Build directory: /root/repo/build-check/src/stat
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
