file(REMOVE_RECURSE
  "libstatsize_stat.a"
)
