# Empty dependencies file for statsize_stat.
# This may be replaced when dependencies are built.
