file(REMOVE_RECURSE
  "CMakeFiles/statsize_stat.dir/clark.cpp.o"
  "CMakeFiles/statsize_stat.dir/clark.cpp.o.d"
  "CMakeFiles/statsize_stat.dir/normal.cpp.o"
  "CMakeFiles/statsize_stat.dir/normal.cpp.o.d"
  "libstatsize_stat.a"
  "libstatsize_stat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statsize_stat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
