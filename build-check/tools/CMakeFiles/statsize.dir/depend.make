# Empty dependencies file for statsize.
# This may be replaced when dependencies are built.
