file(REMOVE_RECURSE
  "CMakeFiles/statsize.dir/statsize_cli.cpp.o"
  "CMakeFiles/statsize.dir/statsize_cli.cpp.o.d"
  "statsize"
  "statsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
