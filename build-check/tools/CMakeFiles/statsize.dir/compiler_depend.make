# Empty compiler generated dependencies file for statsize.
# This may be replaced when dependencies are built.
