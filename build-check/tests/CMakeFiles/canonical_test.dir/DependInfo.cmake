
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/canonical_test.cpp" "tests/CMakeFiles/canonical_test.dir/canonical_test.cpp.o" "gcc" "tests/CMakeFiles/canonical_test.dir/canonical_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-check/src/ssta/CMakeFiles/statsize_ssta.dir/DependInfo.cmake"
  "/root/repo/build-check/src/stat/CMakeFiles/statsize_stat.dir/DependInfo.cmake"
  "/root/repo/build-check/src/netlist/CMakeFiles/statsize_netlist.dir/DependInfo.cmake"
  "/root/repo/build-check/src/analyze/CMakeFiles/statsize_analyze_base.dir/DependInfo.cmake"
  "/root/repo/build-check/src/util/CMakeFiles/statsize_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
