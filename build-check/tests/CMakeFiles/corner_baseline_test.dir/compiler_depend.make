# Empty compiler generated dependencies file for corner_baseline_test.
# This may be replaced when dependencies are built.
