file(REMOVE_RECURSE
  "CMakeFiles/corner_baseline_test.dir/corner_baseline_test.cpp.o"
  "CMakeFiles/corner_baseline_test.dir/corner_baseline_test.cpp.o.d"
  "corner_baseline_test"
  "corner_baseline_test.pdb"
  "corner_baseline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corner_baseline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
