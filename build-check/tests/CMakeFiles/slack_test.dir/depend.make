# Empty dependencies file for slack_test.
# This may be replaced when dependencies are built.
