file(REMOVE_RECURSE
  "CMakeFiles/slack_test.dir/slack_test.cpp.o"
  "CMakeFiles/slack_test.dir/slack_test.cpp.o.d"
  "slack_test"
  "slack_test.pdb"
  "slack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
