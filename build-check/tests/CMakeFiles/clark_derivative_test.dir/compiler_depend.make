# Empty compiler generated dependencies file for clark_derivative_test.
# This may be replaced when dependencies are built.
