file(REMOVE_RECURSE
  "CMakeFiles/clark_derivative_test.dir/clark_derivative_test.cpp.o"
  "CMakeFiles/clark_derivative_test.dir/clark_derivative_test.cpp.o.d"
  "clark_derivative_test"
  "clark_derivative_test.pdb"
  "clark_derivative_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clark_derivative_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
