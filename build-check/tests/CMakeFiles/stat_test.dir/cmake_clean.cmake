file(REMOVE_RECURSE
  "CMakeFiles/stat_test.dir/stat_test.cpp.o"
  "CMakeFiles/stat_test.dir/stat_test.cpp.o.d"
  "stat_test"
  "stat_test.pdb"
  "stat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
