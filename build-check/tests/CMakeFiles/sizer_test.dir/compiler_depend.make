# Empty compiler generated dependencies file for sizer_test.
# This may be replaced when dependencies are built.
