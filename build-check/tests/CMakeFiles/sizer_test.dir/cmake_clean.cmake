file(REMOVE_RECURSE
  "CMakeFiles/sizer_test.dir/sizer_test.cpp.o"
  "CMakeFiles/sizer_test.dir/sizer_test.cpp.o.d"
  "sizer_test"
  "sizer_test.pdb"
  "sizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
