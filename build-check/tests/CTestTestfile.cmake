# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-check/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-check/tests/autodiff_test[1]_include.cmake")
include("/root/repo/build-check/tests/stat_test[1]_include.cmake")
include("/root/repo/build-check/tests/clark_derivative_test[1]_include.cmake")
include("/root/repo/build-check/tests/netlist_test[1]_include.cmake")
include("/root/repo/build-check/tests/ssta_test[1]_include.cmake")
include("/root/repo/build-check/tests/nlp_test[1]_include.cmake")
include("/root/repo/build-check/tests/core_test[1]_include.cmake")
include("/root/repo/build-check/tests/sizer_test[1]_include.cmake")
include("/root/repo/build-check/tests/activity_test[1]_include.cmake")
include("/root/repo/build-check/tests/integration_test[1]_include.cmake")
include("/root/repo/build-check/tests/canonical_test[1]_include.cmake")
include("/root/repo/build-check/tests/slack_test[1]_include.cmake")
include("/root/repo/build-check/tests/args_test[1]_include.cmake")
include("/root/repo/build-check/tests/corner_baseline_test[1]_include.cmake")
include("/root/repo/build-check/tests/property_test[1]_include.cmake")
include("/root/repo/build-check/tests/baselines_test[1]_include.cmake")
include("/root/repo/build-check/tests/verilog_test[1]_include.cmake")
include("/root/repo/build-check/tests/json_test[1]_include.cmake")
include("/root/repo/build-check/tests/analyze_test[1]_include.cmake")
add_test(lint_selfcheck "/root/repo/scripts/lint_selfcheck.sh" "/root/repo/build-check/tools/statsize" "/root/repo")
set_tests_properties(lint_selfcheck PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;68;add_test;/root/repo/tests/CMakeLists.txt;0;")
