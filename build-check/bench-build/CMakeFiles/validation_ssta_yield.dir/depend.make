# Empty dependencies file for validation_ssta_yield.
# This may be replaced when dependencies are built.
