file(REMOVE_RECURSE
  "../bench/validation_ssta_yield"
  "../bench/validation_ssta_yield.pdb"
  "CMakeFiles/validation_ssta_yield.dir/validation_ssta_yield.cpp.o"
  "CMakeFiles/validation_ssta_yield.dir/validation_ssta_yield.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_ssta_yield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
