# Empty compiler generated dependencies file for validation_correlation.
# This may be replaced when dependencies are built.
