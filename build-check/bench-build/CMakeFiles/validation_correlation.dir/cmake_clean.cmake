file(REMOVE_RECURSE
  "../bench/validation_correlation"
  "../bench/validation_correlation.pdb"
  "CMakeFiles/validation_correlation.dir/validation_correlation.cpp.o"
  "CMakeFiles/validation_correlation.dir/validation_correlation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
