# Empty compiler generated dependencies file for ablation_discrete.
# This may be replaced when dependencies are built.
