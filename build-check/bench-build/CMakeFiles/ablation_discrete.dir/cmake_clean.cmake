file(REMOVE_RECURSE
  "../bench/ablation_discrete"
  "../bench/ablation_discrete.pdb"
  "CMakeFiles/ablation_discrete.dir/ablation_discrete.cpp.o"
  "CMakeFiles/ablation_discrete.dir/ablation_discrete.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_discrete.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
