file(REMOVE_RECURSE
  "../bench/greedy_vs_nlp"
  "../bench/greedy_vs_nlp.pdb"
  "CMakeFiles/greedy_vs_nlp.dir/greedy_vs_nlp.cpp.o"
  "CMakeFiles/greedy_vs_nlp.dir/greedy_vs_nlp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greedy_vs_nlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
