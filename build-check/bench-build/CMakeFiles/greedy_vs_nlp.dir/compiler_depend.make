# Empty compiler generated dependencies file for greedy_vs_nlp.
# This may be replaced when dependencies are built.
