# Empty dependencies file for ablation_formulation.
# This may be replaced when dependencies are built.
