file(REMOVE_RECURSE
  "../bench/ablation_formulation"
  "../bench/ablation_formulation.pdb"
  "CMakeFiles/ablation_formulation.dir/ablation_formulation.cpp.o"
  "CMakeFiles/ablation_formulation.dir/ablation_formulation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_formulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
