# Empty dependencies file for scaling_cpu.
# This may be replaced when dependencies are built.
