file(REMOVE_RECURSE
  "../bench/scaling_cpu"
  "../bench/scaling_cpu.pdb"
  "CMakeFiles/scaling_cpu.dir/scaling_cpu.cpp.o"
  "CMakeFiles/scaling_cpu.dir/scaling_cpu.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
