file(REMOVE_RECURSE
  "../bench/micro_statops"
  "../bench/micro_statops.pdb"
  "CMakeFiles/micro_statops.dir/micro_statops.cpp.o"
  "CMakeFiles/micro_statops.dir/micro_statops.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_statops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
