# Empty compiler generated dependencies file for micro_statops.
# This may be replaced when dependencies are built.
