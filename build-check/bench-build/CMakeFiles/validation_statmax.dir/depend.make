# Empty dependencies file for validation_statmax.
# This may be replaced when dependencies are built.
