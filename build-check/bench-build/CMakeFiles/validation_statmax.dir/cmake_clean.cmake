file(REMOVE_RECURSE
  "../bench/validation_statmax"
  "../bench/validation_statmax.pdb"
  "CMakeFiles/validation_statmax.dir/validation_statmax.cpp.o"
  "CMakeFiles/validation_statmax.dir/validation_statmax.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_statmax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
