file(REMOVE_RECURSE
  "../bench/table2_tree"
  "../bench/table2_tree.pdb"
  "CMakeFiles/table2_tree.dir/table2_tree.cpp.o"
  "CMakeFiles/table2_tree.dir/table2_tree.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
