# Empty dependencies file for table2_tree.
# This may be replaced when dependencies are built.
