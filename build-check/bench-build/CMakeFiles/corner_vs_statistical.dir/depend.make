# Empty dependencies file for corner_vs_statistical.
# This may be replaced when dependencies are built.
