file(REMOVE_RECURSE
  "../bench/corner_vs_statistical"
  "../bench/corner_vs_statistical.pdb"
  "CMakeFiles/corner_vs_statistical.dir/corner_vs_statistical.cpp.o"
  "CMakeFiles/corner_vs_statistical.dir/corner_vs_statistical.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corner_vs_statistical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
