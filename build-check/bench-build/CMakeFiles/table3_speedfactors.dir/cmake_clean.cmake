file(REMOVE_RECURSE
  "../bench/table3_speedfactors"
  "../bench/table3_speedfactors.pdb"
  "CMakeFiles/table3_speedfactors.dir/table3_speedfactors.cpp.o"
  "CMakeFiles/table3_speedfactors.dir/table3_speedfactors.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_speedfactors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
