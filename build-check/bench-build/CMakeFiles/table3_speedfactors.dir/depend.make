# Empty dependencies file for table3_speedfactors.
# This may be replaced when dependencies are built.
