file(REMOVE_RECURSE
  "CMakeFiles/yield_driven_sizing.dir/yield_driven_sizing.cpp.o"
  "CMakeFiles/yield_driven_sizing.dir/yield_driven_sizing.cpp.o.d"
  "yield_driven_sizing"
  "yield_driven_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yield_driven_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
