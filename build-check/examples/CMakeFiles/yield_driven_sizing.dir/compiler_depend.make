# Empty compiler generated dependencies file for yield_driven_sizing.
# This may be replaced when dependencies are built.
