# Empty compiler generated dependencies file for power_driven_sizing.
# This may be replaced when dependencies are built.
