file(REMOVE_RECURSE
  "CMakeFiles/power_driven_sizing.dir/power_driven_sizing.cpp.o"
  "CMakeFiles/power_driven_sizing.dir/power_driven_sizing.cpp.o.d"
  "power_driven_sizing"
  "power_driven_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_driven_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
