# Empty compiler generated dependencies file for tree_circuit.
# This may be replaced when dependencies are built.
