file(REMOVE_RECURSE
  "CMakeFiles/tree_circuit.dir/tree_circuit.cpp.o"
  "CMakeFiles/tree_circuit.dir/tree_circuit.cpp.o.d"
  "tree_circuit"
  "tree_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
