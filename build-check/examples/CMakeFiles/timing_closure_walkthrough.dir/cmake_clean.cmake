file(REMOVE_RECURSE
  "CMakeFiles/timing_closure_walkthrough.dir/timing_closure_walkthrough.cpp.o"
  "CMakeFiles/timing_closure_walkthrough.dir/timing_closure_walkthrough.cpp.o.d"
  "timing_closure_walkthrough"
  "timing_closure_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_closure_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
