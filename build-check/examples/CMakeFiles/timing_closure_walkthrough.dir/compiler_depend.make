# Empty compiler generated dependencies file for timing_closure_walkthrough.
# This may be replaced when dependencies are built.
