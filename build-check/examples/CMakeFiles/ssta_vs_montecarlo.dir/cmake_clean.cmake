file(REMOVE_RECURSE
  "CMakeFiles/ssta_vs_montecarlo.dir/ssta_vs_montecarlo.cpp.o"
  "CMakeFiles/ssta_vs_montecarlo.dir/ssta_vs_montecarlo.cpp.o.d"
  "ssta_vs_montecarlo"
  "ssta_vs_montecarlo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssta_vs_montecarlo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
