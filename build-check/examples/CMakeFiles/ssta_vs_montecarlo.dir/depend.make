# Empty dependencies file for ssta_vs_montecarlo.
# This may be replaced when dependencies are built.
