#!/usr/bin/env bash
# Full hygiene gate: configure with sanitizers, build everything, run the test
# suite under them, then run clang-tidy over the sources when it is installed
# (skipped with a note otherwise — the curated checks live in .clang-tidy).
#
# Sanitizer selection: STATSIZE_SANITIZE=address,undefined (default) or
# STATSIZE_SANITIZE=thread. ThreadSanitizer cannot be combined with ASan, so
# the thread configuration is a separate run in its own build directory and
# focuses on the concurrency surface: the parallel runtime's own tests plus
# the SSTA/Monte Carlo engines that fan out across the pool.
#
# Usage: scripts/check.sh [build-dir]
#   default build dir: build-check (address,undefined) / build-tsan (thread)
set -eu

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
SANITIZE="${STATSIZE_SANITIZE:-address,undefined}"

if [ "$SANITIZE" = "thread" ]; then
  BUILD_DIR="${1:-$REPO_ROOT/build-tsan}"
else
  BUILD_DIR="${1:-$REPO_ROOT/build-check}"
fi

echo "== configure ($SANITIZE) =="
cmake -B "$BUILD_DIR" -S "$REPO_ROOT" \
  -DSTATSIZE_SANITIZE="$SANITIZE" \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON

echo "== build =="
cmake --build "$BUILD_DIR" -j "$(nproc)"

if [ "$SANITIZE" = "thread" ]; then
  # TSan run: exercise the thread pool and the parallel analysis engines with
  # more threads than the (possibly single-core) host advertises, so races
  # are exposed even where hardware_concurrency() == 1 would otherwise keep
  # every code path serial. Suites are selected by label (the executable
  # name, see tests/CMakeLists.txt): the runtime itself, SSTA/Monte Carlo,
  # the nlp + core suites whose hess_vec / adjoint sweeps fan out over
  # ScatterPlan folds, and the TimingView suite every parallel sweep now
  # traverses. The resilience suite rides along: cancellation polls and fault
  # hit-counting run on pool worker threads, so their synchronization is part
  # of the concurrency surface. The serve suite joins them: its live-loopback
  # tests cross socket threads, the scheduler's executor, and the circuit
  # cache's shared-lock readers in one process. The chaos suite rides the same
  # run: journal appends, fault hit-counting, and recovery replay all cross
  # the socket/executor thread boundary.
  echo "== ctest under ThreadSanitizer (runtime + parallel engines + serve) =="
  STATSIZE_JOBS=4 ctest --test-dir "$BUILD_DIR" --output-on-failure \
    -L '^(runtime_test|ssta_test|nlp_test|core_test|timing_view_test|resilience_test|serve_test|incremental_test|chaos_test)$'
  # The ECO label again on its own: the incremental engine's level worklist
  # commits scratch arrivals from pool workers, a prime TSan surface.
  echo "== ctest eco label under ThreadSanitizer =="
  STATSIZE_JOBS=4 ctest --test-dir "$BUILD_DIR" --output-on-failure -L '^eco$'
  echo "thread-sanitizer checks passed"
  exit 0
fi

echo "== ctest under sanitizers =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# The recovery contract deserves its own visible gate: an injected NaN or
# deadline must degrade to a checkpoint, never to a sanitizer-visible crash.
echo "== ctest resilience label under sanitizers =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -L '^resilience$'

# Same for the ECO contract: incremental re-timing must stay bit-identical to
# full recompute under the sanitizers too.
echo "== ctest eco label under sanitizers =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -L '^eco$'

# And the crash-safety contract (DESIGN.md §13): journal framing, recovery
# replay, idempotent retries, and the fault-injection sites, as a named gate.
echo "== ctest chaos label under sanitizers =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -L '^chaos$'

# Chaos soak hard gate: a forked journaled daemon under armed IO faults is
# SIGKILLed mid-load, restarted on the same journal, and must show no lost
# jobs, no duplicate side effects from idempotent retries, and bit-identical
# completed results vs a clean run. Exit code is the gate; the evidence lands
# in BENCH_chaos.json. Light enough for a single-core host.
echo "== chaos soak gate (SIGKILL + recovery) =="
(cd "$BUILD_DIR" && "$BUILD_DIR/bench/chaos_soak")
echo "chaos soak gate passed (evidence in $BUILD_DIR/BENCH_chaos.json)"

# ECO bench gate: the bit-identity cross-check (every single-gate edit vs a
# from-scratch run_ssta / cold gradient) plus the >=10x rebuild-per-query
# speedup and the wall-time-tracks-cone-size correlation all hard-fail via
# the exit code. Timing gates need real cores; the bit-identity half also
# runs in ctest (incremental_test) on any host.
echo "== eco incremental gate (bit-identity + speedup) =="
if [ "$(nproc)" -ge 4 ]; then
  (cd "$BUILD_DIR" && "$BUILD_DIR/bench/eco_incremental")
  echo "eco gate passed (table in $BUILD_DIR/BENCH_eco.json)"
else
  echo "eco bench skipped: only $(nproc) core(s) on this host"
fi

# Pre-solve static audit over every shipped example circuit: error-severity
# findings (exit 3) or tool failures (exit 1) fail the gate; warnings/notes
# pass. Runs under the sanitizer build, so the audit code itself is checked.
echo "== statsize audit (examples) =="
for f in "$REPO_ROOT"/examples/circuits/*.blif; do
  [ -e "$f" ] || continue
  code=0
  "$BUILD_DIR/tools/statsize" audit --circuit "$f" || code=$?
  if [ "$code" -ge 3 ] || [ "$code" -eq 1 ]; then
    echo "audit gate FAILED on $f (exit $code)"
    exit 1
  fi
done
echo "audit gate passed"

# Serve smoke: daemon on an ephemeral port, upload c17, one SSTA job over
# HTTP asserted bit-identical to the CLI answer, clean SIGINT shutdown. Runs
# under the sanitizer build, so the socket/scheduler paths are checked too.
echo "== serve smoke =="
"$REPO_ROOT/scripts/serve_smoke.sh" "$BUILD_DIR/tools/statsize" "$REPO_ROOT"

# Scaling smoke: the bench's thread-scaling section hard-fails (nonzero exit)
# on any bit-identity mismatch between 1-thread and multi-thread results, and
# emits the speedup table into BENCH_scaling.json. The speedup itself is
# advisory (a WARN inside the bench); only determinism is a gate. Restricted
# to hosts with >=4 cores — on smaller boxes the multi-thread timings are
# oversubscription noise and the same cross-checks already run in ctest.
echo "== scaling smoke (thread determinism) =="
if [ "$(nproc)" -ge 4 ]; then
  (cd "$BUILD_DIR" && STATSIZE_SCALING_SECTIONS=threads "$BUILD_DIR/bench/scaling_cpu")
  echo "scaling smoke passed (table in $BUILD_DIR/BENCH_scaling.json)"
else
  echo "scaling smoke skipped: only $(nproc) core(s) on this host"
fi

# Determinism lint over the library sources: any DET hazard is error-severity
# and fails the build (suppressions require an in-source allow() comment).
echo "== detlint (src) =="
"$BUILD_DIR/tools/detlint" "$REPO_ROOT/src"
echo "detlint gate passed"

echo "== clang-tidy =="
if command -v clang-tidy > /dev/null 2>&1; then
  # Headers are covered transitively; benches/examples are excluded to keep
  # the run focused on the library and tool sources.
  find "$REPO_ROOT/src" "$REPO_ROOT/tools" -name '*.cpp' -print0 |
    xargs -0 -P "$(nproc)" -n 4 clang-tidy -p "$BUILD_DIR" --quiet
  echo "clang-tidy clean"
else
  echo "clang-tidy not installed; skipped (checks are configured in .clang-tidy)"
fi

echo "all checks passed"
