#!/usr/bin/env bash
# Full hygiene gate: configure with AddressSanitizer + UndefinedBehaviorSanitizer,
# build everything, run the whole test suite under the sanitizers, then run
# clang-tidy over the sources when it is installed (skipped with a note
# otherwise — the curated checks live in .clang-tidy).
#
# Usage: scripts/check.sh [build-dir]   (default: build-check)
set -eu

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build-check}"

echo "== configure (ASan+UBSan) =="
cmake -B "$BUILD_DIR" -S "$REPO_ROOT" \
  -DSTATSIZE_SANITIZE=address,undefined \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON

echo "== build =="
cmake --build "$BUILD_DIR" -j "$(nproc)"

echo "== ctest under sanitizers =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "== clang-tidy =="
if command -v clang-tidy > /dev/null 2>&1; then
  # Headers are covered transitively; benches/examples are excluded to keep
  # the run focused on the library and tool sources.
  find "$REPO_ROOT/src" "$REPO_ROOT/tools" -name '*.cpp' -print0 |
    xargs -0 -P "$(nproc)" -n 4 clang-tidy -p "$BUILD_DIR" --quiet
  echo "clang-tidy clean"
else
  echo "clang-tidy not installed; skipped (checks are configured in .clang-tidy)"
fi

echo "all checks passed"
