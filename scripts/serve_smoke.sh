#!/usr/bin/env bash
# End-to-end smoke test of the serve daemon, run as a ctest and as the serve
# gate in scripts/check.sh:
#   1. start `statsize serve` on an ephemeral port,
#   2. upload examples/circuits/c17.blif and run one SSTA job through the
#      HTTP API (`statsize submit --wait`),
#   3. assert the served answer is byte-identical to the CLI's
#      `statsize ssta` on the same file (%.17g round-trips doubles, so a
#      string compare is a bit-identity check),
#   4. SIGINT the daemon and assert it drains and exits cleanly.
#
# Usage: serve_smoke.sh <path-to-statsize-binary> <repo-root>
set -u

STATSIZE="$1"
REPO_ROOT="$2"
CIRCUIT="$REPO_ROOT/examples/circuits/c17.blif"
WORK="$(mktemp -d /tmp/serve_smoke.XXXXXX)"
SERVE_LOG="$WORK/serve.log"
failures=0
SERVE_PID=""

cleanup() {
  if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
    kill -KILL "$SERVE_PID" 2>/dev/null
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

# NOTE: background the binary directly — `cd X && cmd &` would background the
# subshell and $! would be bash's pid, not the daemon's.
"$STATSIZE" serve --port 0 > "$SERVE_LOG" 2>&1 &
SERVE_PID=$!

PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' "$SERVE_LOG" | head -1)"
  [ -n "$PORT" ] && break
  if ! kill -0 "$SERVE_PID" 2>/dev/null; then
    echo "FAIL: daemon died during startup"
    cat "$SERVE_LOG"
    exit 1
  fi
  sleep 0.05
done
if [ -z "$PORT" ]; then
  echo "FAIL: daemon never reported its port"
  cat "$SERVE_LOG"
  exit 1
fi
echo "ok: daemon up on port $PORT (pid $SERVE_PID)"

cli_line="$("$STATSIZE" ssta --circuit "$CIRCUIT" | grep '^circuit delay:')"
served_line="$("$STATSIZE" submit --port "$PORT" --circuit "$CIRCUIT" --type ssta --wait \
  2>/dev/null | grep '^circuit delay:')"

if [ -z "$cli_line" ] || [ -z "$served_line" ]; then
  echo "FAIL: missing 'circuit delay:' line (cli='$cli_line' served='$served_line')"
  failures=$((failures + 1))
elif [ "$cli_line" != "$served_line" ]; then
  echo "FAIL: served SSTA differs from CLI"
  echo "  cli:    $cli_line"
  echo "  served: $served_line"
  failures=$((failures + 1))
else
  echo "ok: served SSTA bit-identical to CLI ($served_line)"
fi

kill -INT "$SERVE_PID"
code=0
for _ in $(seq 1 100); do
  if ! kill -0 "$SERVE_PID" 2>/dev/null; then break; fi
  sleep 0.05
done
if kill -0 "$SERVE_PID" 2>/dev/null; then
  echo "FAIL: daemon still alive 5s after SIGINT"
  kill -KILL "$SERVE_PID"
  failures=$((failures + 1))
else
  wait "$SERVE_PID"
  code=$?
  SERVE_PID=""
  if [ "$code" -ne 0 ]; then
    echo "FAIL: daemon exited $code after SIGINT (expected 0)"
    cat "$SERVE_LOG"
    failures=$((failures + 1))
  elif ! grep -q 'statsize serve: stopped' "$SERVE_LOG"; then
    echo "FAIL: daemon log is missing the clean-shutdown line"
    cat "$SERVE_LOG"
    failures=$((failures + 1))
  else
    echo "ok: SIGINT drained cleanly"
  fi
fi

if [ "$failures" -ne 0 ]; then
  echo "$failures serve smoke failure(s)"
  exit 1
fi
echo "serve smoke passed"
