#!/usr/bin/env bash
# Self-check for the `statsize audit` subcommand, run as a ctest:
#   1. every built-in and shipped example circuit must audit without errors
#      (exit < 3; warnings and notes are tolerated),
#   2. the audit JSON on a real circuit must carry the analytics sections the
#      bench and the runtime consume (graph_stats, granularity_advisor with a
#      serial_cutoff and a per-level decision table, nlp_instance),
#   3. --demo-defects (NaN bound box, zero-width level spam) must produce
#      errors (exit 3) naming NLP001 and GRF002.
#
# Usage: audit_selfcheck.sh <path-to-statsize-binary> <repo-root>
set -u

STATSIZE="$1"
REPO_ROOT="$2"
failures=0

check_clean() {
  local target="$1"
  "$STATSIZE" audit --circuit "$target" > /tmp/audit_out.$$ 2>&1
  local code=$?
  if [ "$code" -ge 3 ] || [ "$code" -eq 1 ]; then
    echo "FAIL: audit of '$target' exited $code (expected < 3)"
    cat /tmp/audit_out.$$
    failures=$((failures + 1))
  else
    echo "ok: $target (exit $code)"
  fi
}

for c in tree apex1 apex2 k2; do
  check_clean "$c"
done
for f in "$REPO_ROOT"/examples/circuits/*.blif; do
  [ -e "$f" ] || continue
  check_clean "$f"
done

# Analytics sections present on a k2-scale audit (--threads 8 gives the
# advisor a multi-worker cost model even on a single-core host).
json="$("$STATSIZE" audit --circuit k2 --threads 8 --json - 2>/dev/null)"
code=$?
if [ "$code" -ge 3 ] || [ "$code" -eq 1 ]; then
  echo "FAIL: k2 JSON audit exited $code"
  failures=$((failures + 1))
fi
for section in graph_stats granularity_advisor serial_cutoff level_widths nlp_instance; do
  if ! printf '%s' "$json" | grep -q "\"$section\""; then
    echo "FAIL: k2 audit JSON is missing section '$section'"
    failures=$((failures + 1))
  fi
done
[ "$failures" -eq 0 ] && echo "ok: k2 audit JSON carries the analytics sections"

# Injected defects must flip the exit code.
json="$("$STATSIZE" audit --demo-defects --json - 2>/dev/null)"
code=$?
if [ "$code" -ne 3 ]; then
  echo "FAIL: audit --demo-defects exited $code (expected 3)"
  failures=$((failures + 1))
fi
for rule in NLP001 NLP005 GRF002; do
  if ! printf '%s' "$json" | grep -q "\"id\": \"$rule\""; then
    echo "FAIL: --demo-defects JSON is missing rule $rule"
    failures=$((failures + 1))
  fi
done
[ "$failures" -eq 0 ] && echo "ok: demo-defects fires (exit 3, NLP001+NLP005+GRF002)"

rm -f /tmp/audit_out.$$
if [ "$failures" -ne 0 ]; then
  echo "$failures audit self-check failure(s)"
  exit 1
fi
echo "audit self-check passed"
