#!/usr/bin/env bash
# Self-check for the detlint determinism linter, run as a ctest:
#   1. the known-bad corpus (tests/detlint/bad) must produce errors (exit 3)
#      with every DET rule represented in the JSON,
#   2. the known-good corpus (tests/detlint/good) must be clean (exit 0) —
#      including the reviewed `detlint: allow(DET003)` suppression it carries,
#   3. the real sources under src/ must be clean, because scripts/check.sh
#      gates CI on exactly that invocation.
#
# Usage: detlint_selfcheck.sh <path-to-detlint-binary> <repo-root>
set -u

DETLINT="$1"
REPO_ROOT="$2"
failures=0

json="$("$DETLINT" "$REPO_ROOT/tests/detlint/bad" --json - 2>/dev/null)"
code=$?
if [ "$code" -ne 3 ]; then
  echo "FAIL: bad corpus exited $code (expected 3)"
  failures=$((failures + 1))
fi
for rule in DET001 DET002 DET003 DET004; do
  if ! printf '%s' "$json" | grep -q "\"id\": \"$rule\""; then
    echo "FAIL: bad-corpus JSON is missing rule $rule"
    failures=$((failures + 1))
  fi
done
[ "$failures" -eq 0 ] && echo "ok: bad corpus fires (exit 3, DET001..DET004)"

"$DETLINT" "$REPO_ROOT/tests/detlint/good" > /tmp/detlint_good.$$ 2>&1
code=$?
if [ "$code" -ne 0 ]; then
  echo "FAIL: good corpus exited $code (expected 0)"
  cat /tmp/detlint_good.$$
  failures=$((failures + 1))
else
  echo "ok: good corpus clean (suppression honored)"
fi

"$DETLINT" "$REPO_ROOT/src" > /tmp/detlint_src.$$ 2>&1
code=$?
if [ "$code" -ne 0 ]; then
  echo "FAIL: src/ exited $code (expected 0)"
  cat /tmp/detlint_src.$$
  failures=$((failures + 1))
else
  echo "ok: src/ clean"
fi

rm -f /tmp/detlint_good.$$ /tmp/detlint_src.$$
if [ "$failures" -ne 0 ]; then
  echo "$failures detlint self-check failure(s)"
  exit 1
fi
echo "detlint self-check passed"
