#!/usr/bin/env bash
# Self-check for the `statsize lint` subcommand, run as a ctest:
#   1. every built-in and shipped example circuit must lint without errors
#      (exit < 3; warnings and notes are tolerated),
#   2. the --demo-defects circuit must produce errors (exit 3) whose JSON
#      names one rule from each analysis family.
#
# Usage: lint_selfcheck.sh <path-to-statsize-binary> <repo-root>
set -u

STATSIZE="$1"
REPO_ROOT="$2"
failures=0

check_clean() {
  local target="$1"
  shift
  "$STATSIZE" lint --circuit "$target" "$@" > /tmp/lint_out.$$ 2>&1
  local code=$?
  if [ "$code" -ge 3 ] || [ "$code" -eq 1 ]; then
    echo "FAIL: lint of '$target' exited $code (expected < 3)"
    cat /tmp/lint_out.$$
    failures=$((failures + 1))
  else
    echo "ok: $target (exit $code)"
  fi
}

# Built-in circuits. The derivative sweep self-limits on large circuits via
# --derivative-cap, so k2 (1692 gates) stays fast.
for c in tree apex1 apex2 k2; do
  check_clean "$c"
done

# Every BLIF shipped under examples/.
for f in "$REPO_ROOT"/examples/circuits/*.blif; do
  [ -e "$f" ] || continue
  check_clean "$f"
done

# The deliberately broken demo must fire: exit 3 and one rule per family.
json="$("$STATSIZE" lint --demo-defects --json - 2>/dev/null)"
code=$?
if [ "$code" -ne 3 ]; then
  echo "FAIL: --demo-defects exited $code (expected 3)"
  failures=$((failures + 1))
fi
for rule in CIR001 CIR006 LIB001; do
  if ! printf '%s' "$json" | grep -q "\"id\": \"$rule\""; then
    echo "FAIL: --demo-defects JSON is missing rule $rule"
    failures=$((failures + 1))
  fi
done
[ "$failures" -eq 0 ] && echo "ok: demo-defects fires (exit 3, CIR001+CIR006+LIB001)"

rm -f /tmp/lint_out.$$
if [ "$failures" -ne 0 ]; then
  echo "$failures lint self-check failure(s)"
  exit 1
fi
echo "lint self-check passed"
