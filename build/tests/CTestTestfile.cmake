# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/autodiff_test[1]_include.cmake")
include("/root/repo/build/tests/stat_test[1]_include.cmake")
include("/root/repo/build/tests/clark_derivative_test[1]_include.cmake")
include("/root/repo/build/tests/netlist_test[1]_include.cmake")
include("/root/repo/build/tests/ssta_test[1]_include.cmake")
include("/root/repo/build/tests/nlp_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/sizer_test[1]_include.cmake")
include("/root/repo/build/tests/activity_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/canonical_test[1]_include.cmake")
include("/root/repo/build/tests/slack_test[1]_include.cmake")
include("/root/repo/build/tests/args_test[1]_include.cmake")
include("/root/repo/build/tests/corner_baseline_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/verilog_test[1]_include.cmake")
include("/root/repo/build/tests/json_test[1]_include.cmake")
include("/root/repo/build/tests/analyze_test[1]_include.cmake")
add_test(lint_selfcheck "/root/repo/scripts/lint_selfcheck.sh" "/root/repo/build/tools/statsize" "/root/repo")
set_tests_properties(lint_selfcheck PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;68;add_test;/root/repo/tests/CMakeLists.txt;0;")
