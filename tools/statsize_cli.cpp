// statsize — command-line gate sizer under the statistical delay model.
//
// Examples:
//   statsize --circuit tree --objective delay --sigma-weight 3 --report
//   statsize --circuit my.blif --objective area --max-delay 120
//            --constraint-sigma-weight 3 --mc 20000 --sizes-out sized.tsv
//   statsize --circuit k2 --objective power --max-delay 140 --method reduced
//
// The tool loads a circuit (BLIF file or a built-in generator), runs the
// requested sizing, prints the resulting delay distribution, and optionally:
//   * prints a statistical timing report with slacks and the critical path,
//   * verifies the result against Monte Carlo,
//   * uses the correlation-aware canonical engine for the analysis section,
//   * writes the per-gate speed factors to a TSV file.
//
// `statsize lint` is a separate subcommand: it runs the static-analysis
// subsystem (circuit structure, cell library, sigma model, NLP model audits)
// over one or more circuits and reports diagnostics instead of sizing.
// `statsize audit` is its evaluation-free sibling: NLP instance rules,
// TimingView graph analytics and the parallel-granularity advisor. Both use
// exit codes 0 = clean/notes, 2 = warnings, 3 = errors, 1 = tool failure.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <iostream>
#include <string>
#include <vector>

#include "analyze/audit.h"
#include "analyze/library_lint.h"
#include "analyze/lint.h"
#include "analyze/registry.h"
#include "core/sizer.h"
#include "netlist/blif.h"
#include "netlist/verilog.h"
#include "netlist/generators.h"
#include "ssta/activity.h"
#include "ssta/canonical.h"
#include "ssta/monte_carlo.h"
#include "ssta/report.h"
#include "ssta/slack.h"
#include "runtime/fault.h"
#include "runtime/runtime.h"
#include "runtime/signal.h"
#include "serve_cli.h"
#include "ssta/ssta.h"
#include "util/args.h"

namespace {

using namespace statsize;

netlist::Circuit load_circuit(const std::string& name) {
  if (name == "tree") return netlist::make_tree_circuit();
  if (name == "apex1" || name == "apex2" || name == "k2") return netlist::make_mcnc_like(name);
  if (name.size() > 2 && name.rfind(".v") == name.size() - 2) {
    return netlist::read_verilog_file(name);
  }
  if (name.rfind(".blif") != std::string::npos || name.find('/') != std::string::npos) {
    return netlist::read_blif_file(name);
  }
  throw std::invalid_argument("unknown circuit '" + name +
                              "' (use tree|apex1|apex2|k2 or a .blif/.v path)");
}

void print_report(const netlist::Circuit& c, const core::SizingSpec& spec,
                  const core::SizingResult& r, bool canonical) {
  const ssta::DelayCalculator calc(c, spec.sigma_model);
  const auto delays = calc.all_delays(r.speed);
  const ssta::TimingReport timing = ssta::run_ssta(c, delays);

  std::printf("\n--- timing report (%s engine) ---\n",
              canonical ? "canonical, correlation-aware" : "independence");
  stat::NormalRV total = timing.circuit_delay;
  if (canonical) total = ssta::run_canonical_ssta(c, delays).circuit_delay_normal();
  std::printf("circuit delay: mu=%.4f sigma=%.4f  (mu+3sigma=%.4f)\n", total.mu, total.sigma(),
              total.quantile_offset(3.0));

  const double deadline =
      spec.delay_constraint ? spec.delay_constraint->bound : total.quantile_offset(3.0);
  const ssta::SlackReport slacks = ssta::compute_slacks(c, delays, timing, deadline);

  std::printf("\ncritical path (deadline %.3f):\n", deadline);
  std::printf("%-12s %-8s %8s %10s %10s %10s %8s\n", "node", "cell", "S", "arr.mu",
              "arr.sigma", "slack.mu", "P(meet)");
  for (netlist::NodeId id : ssta::extract_critical_path(c, timing)) {
    const netlist::Node& n = c.node(id);
    const stat::NormalRV& arr = timing.arrival[static_cast<std::size_t>(id)];
    const stat::NormalRV& sl = slacks.slack[static_cast<std::size_t>(id)];
    std::printf("%-12s %-8s %8.3f %10.4f %10.4f %10.4f %7.1f%%\n", n.name.c_str(),
                n.kind == netlist::NodeKind::kGate ? c.cell_of(id).name.c_str() : "(input)",
                n.kind == netlist::NodeKind::kGate ? r.speed[static_cast<std::size_t>(id)] : 1.0,
                arr.mu, arr.sigma(), sl.mu, 100.0 * slacks.meet_probability(id));
  }
}

/// A deliberately broken circuit + candidate cells, exercising one rule from
/// every analysis family: a combinational cycle (CIR001), a dangling gate
/// (CIR006), and non-physical cells (LIB001, LIB003). Used by CI to prove the
/// linter actually fires.
analyze::Report demo_defects_report(const analyze::LintOptions& options) {
  const netlist::CellLibrary& lib = netlist::CellLibrary::standard();
  const int nand2 = lib.cell_for_inputs(2);
  const int inv = lib.cell_for_inputs(1);

  netlist::Circuit c(lib);
  const netlist::NodeId a = c.add_input("a");
  const netlist::NodeId b = c.add_input("b");
  const netlist::NodeId d = c.add_input("d");
  const netlist::NodeId e = c.add_input("e");
  const netlist::NodeId gc = c.add_gate(nand2, {a, b}, "C");
  const netlist::NodeId gf = c.add_gate(nand2, {d, e}, "F");
  const netlist::NodeId gg = c.add_gate(nand2, {gc, gf}, "G");
  c.mark_output(gg, 1.0);
  c.add_gate(inv, {gc}, "dangle");  // CIR006: drives nothing, not an output
  const netlist::NodeId lx = c.add_gate_deferred(nand2, "loopx");  // CIR001 below
  const netlist::NodeId ly = c.add_gate_deferred(nand2, "loopy");
  c.set_fanin(lx, 0, ly);
  c.set_fanin(lx, 1, a);
  c.set_fanin(ly, 0, lx);
  c.set_fanin(ly, 1, b);

  analyze::Report report = analyze::lint_circuit(c, options);

  std::vector<netlist::CellType> candidates;
  candidates.push_back({"NEGDELAY", 2, -0.5, 1.0, 1.0, 1.0, netlist::CellFunction::kNand});
  candidates.push_back({"ZEROCIN", 1, 1.0, 1.0, 0.0, 1.0, netlist::CellFunction::kInv});
  report.merge(analyze::lint_cells(candidates));
  report.sort();
  return report;
}

int run_lint(int argc, char** argv) {
  util::ArgParser args(
      "statsize lint — static analysis of circuits, cell libraries and the sizing model");
  args.allow_positionals(
      "circuit inputs (BLIF/Verilog paths or builtin names); several are linted "
      "into one merged report with per-file loci");
  args.add_string("circuit", "tree|apex1|apex2|k2 or a BLIF/Verilog file path", "tree");
  args.add_string("json", "write the JSON report to this file ('-' for stdout)");
  args.add_double("kappa", "gate sigma model: sigma = kappa * mu + offset", 0.25);
  args.add_double("sigma-offset", "additive term of the gate sigma model", 0.0);
  args.add_double("max-speed", "upper sizing limit audited for consistency", 3.0);
  args.add_double("theta-threshold", "flag Clark merges with theta below this", 1e-3);
  args.add_int("derivative-points", "random interior points per derivative sweep", 3);
  args.add_int("derivative-cap", "skip the derivative sweep above this many gates", 200);
  args.add_flag("no-model-audit", "structural and library checks only");
  args.add_flag("force-derivative-audit", "run the derivative sweep regardless of size");
  args.add_flag("list-rules", "print the rule catalog and exit");
  args.add_flag("demo-defects", "lint a deliberately broken demo circuit and library");
  args.add_int("jobs", "worker threads (0 = STATSIZE_JOBS or hardware)", 0);

  try {
    if (!args.parse(argc, argv)) return 0;
    if (const int jobs = args.get_int("jobs"); jobs > 0) runtime::set_threads(jobs);

    if (args.get_flag("list-rules")) {
      std::printf("%-8s %-8s %-8s %-28s %s\n", "id", "family", "severity", "title", "detail");
      for (const analyze::RuleInfo& rule : analyze::rule_catalog()) {
        std::printf("%-8.*s %-8.*s %-8.*s %-28.*s %.*s\n",
                    static_cast<int>(rule.id.size()), rule.id.data(),
                    static_cast<int>(rule.category.size()), rule.category.data(),
                    static_cast<int>(severity_name(rule.severity).size()),
                    severity_name(rule.severity).data(),
                    static_cast<int>(rule.title.size()), rule.title.data(),
                    static_cast<int>(rule.detail.size()), rule.detail.data());
      }
      return 0;
    }

    analyze::LintOptions options;
    options.model.sigma_model = {args.get_double("kappa"), args.get_double("sigma-offset")};
    options.model.max_speed = args.get_double("max-speed");
    options.model.theta_threshold = args.get_double("theta-threshold");
    options.model.derivative_points = args.get_int("derivative-points");
    options.derivative_gate_cap = args.get_int("derivative-cap");
    options.model_audit = !args.get_flag("no-model-audit");
    options.force_derivative_audit = args.get_flag("force-derivative-audit");

    std::vector<std::string> inputs = args.positionals();
    if (inputs.empty()) inputs.push_back(args.get_string("circuit"));
    std::string target = inputs.size() == 1 ? inputs[0]
                                            : std::to_string(inputs.size()) + " inputs";
    analyze::Report report;
    if (args.get_flag("demo-defects")) {
      target = "demo-defects";
      report = demo_defects_report(options);
    } else {
      for (const std::string& name : inputs) {
        analyze::Report one;
        if (name == "tree" || name == "apex1" || name == "apex2" || name == "k2") {
          netlist::Circuit circuit = load_circuit(name);
          one = analyze::lint_circuit(circuit, options);
        } else {
          one = analyze::lint_file(name, netlist::CellLibrary::standard(), options);
        }
        if (inputs.size() > 1) one.prefix_loci(name);
        report.merge(std::move(one));
      }
      report.sort();
    }

    // With --json - the machine-readable report owns stdout; the human
    // report moves to stderr so `statsize lint --json - | jq` works.
    const bool json_on_stdout = args.has("json") && args.get_string("json") == "-";
    std::ostream& human = json_on_stdout ? std::cerr : std::cout;
    human << "lint: " << target << "\n";
    report.print(human);

    if (args.has("json")) {
      const std::string path = args.get_string("json");
      if (path == "-") {
        report.write_json(std::cout, target);
      } else {
        std::ofstream out(path);
        if (!out) throw std::runtime_error("cannot write " + path);
        report.write_json(out, target);
        std::printf("wrote %s\n", path.c_str());
      }
    }
    return report.exit_code();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n(use statsize lint --help for usage)\n", e.what());
    return 1;
  }
}

/// Deliberately defective audit inputs — an NLP instance with an empty bound
/// box, an orphan variable and a constant constraint, plus a level histogram
/// spammed with zero-width levels. Used by CI to prove the audit's error
/// rules actually flip the exit code. The empty box enters as a NaN bound:
/// Problem::add_variable rejects lower > upper eagerly, but NaN slips through
/// every `>` comparison — exactly the silent corruption NLP001 exists for.
analyze::AuditResult demo_audit_defects(const analyze::AuditOptions& options) {
  analyze::AuditResult result;

  nlp::Problem p;
  p.add_variable(std::numeric_limits<double>::quiet_NaN(), 1.0, 1.0,
                 "S_inverted");             // NLP001: empty box
  p.add_variable(1.0, 3.0, 1.0, "S_orphan");    // NLP003: referenced nowhere
  const int used = p.add_variable(1.0, 3.0, 1.0, "S_used");
  nlp::FunctionGroup objective;
  objective.linear.push_back({used, 1.0});
  p.set_objective(std::move(objective));
  nlp::FunctionGroup dead;
  dead.constant = 4.2;  // NLP005: "4.2 = 0", infeasible by construction
  p.add_equality(std::move(dead));
  result.report.merge(analyze::audit_nlp_problem(p, "demo instance", options.nlp));

  const std::vector<std::size_t> widths = {4, 0, 9, 0, 0, 2};  // GRF002 x3
  result.advice = analyze::advise_granularity(widths, options.graph.cost);
  result.report.merge(analyze::audit_level_widths(widths, result.advice, options.graph));

  result.report.sort();
  return result;
}

int run_audit(int argc, char** argv) {
  util::ArgParser args(
      "statsize audit — pre-solve static audit: NLP instance rules (NLP0xx), TimingView "
      "graph analytics + parallel-granularity advisor (GRF0xx), no evaluation anywhere");
  args.add_string("circuit", "tree|apex1|apex2|k2 or a BLIF/Verilog file path", "tree");
  args.add_string("json", "write the JSON audit document to this file ('-' for stdout)");
  args.add_double("kappa", "gate sigma model: sigma = kappa * mu + offset", 0.25);
  args.add_double("sigma-offset", "additive term of the gate sigma model", 0.0);
  args.add_double("max-speed", "upper sizing limit of the audited NLP instance", 3.0);
  args.add_double("dispatch-ns", "advisor cost model: per-chunk dispatch cost",
                  runtime::kDefaultChunkDispatchNs);
  args.add_double("gate-ns", "advisor cost model: per-gate sweep cost",
                  runtime::kDefaultItemCostNs);
  args.add_int("grain", "advisor cost model: gates per chunk",
               static_cast<int>(runtime::kDefaultDispatchGrain));
  args.add_int("threads", "advisor cost model: worker threads (0 = runtime pool)", 0);
  args.add_flag("calibrate", "measure the per-chunk dispatch cost on this machine "
                             "instead of the fixed default (non-deterministic output)");
  args.add_flag("no-nlp", "graph analytics only; skip building the NLP instance");
  args.add_flag("list-rules", "print the rule catalog and exit");
  args.add_flag("demo-defects", "audit deliberately broken instances (inverted bound, "
                                "zero-width level spam) to prove the gate fires");
  args.add_int("jobs", "worker threads (0 = STATSIZE_JOBS or hardware)", 0);

  try {
    if (!args.parse(argc, argv)) return 0;
    if (const int jobs = args.get_int("jobs"); jobs > 0) runtime::set_threads(jobs);

    if (args.get_flag("list-rules")) {
      for (const analyze::RuleInfo& rule : analyze::rule_catalog()) {
        std::printf("%-8.*s %-12.*s %-8.*s %-28.*s %.*s\n",
                    static_cast<int>(rule.id.size()), rule.id.data(),
                    static_cast<int>(rule.category.size()), rule.category.data(),
                    static_cast<int>(severity_name(rule.severity).size()),
                    severity_name(rule.severity).data(),
                    static_cast<int>(rule.title.size()), rule.title.data(),
                    static_cast<int>(rule.detail.size()), rule.detail.data());
      }
      return 0;
    }

    analyze::AuditOptions options;
    options.sigma_model = {args.get_double("kappa"), args.get_double("sigma-offset")};
    options.max_speed = args.get_double("max-speed");
    options.nlp_audit = !args.get_flag("no-nlp");
    options.graph.cost.chunk_dispatch_ns = args.get_double("dispatch-ns");
    options.graph.cost.gate_cost_ns = args.get_double("gate-ns");
    options.graph.cost.grain = static_cast<std::size_t>(args.get_int("grain"));
    options.graph.cost.threads = args.get_int("threads");
    if (args.get_flag("calibrate")) {
      options.graph.cost.chunk_dispatch_ns = runtime::measure_chunk_dispatch_ns();
    }

    const std::string name = args.get_string("circuit");
    std::string target = name;
    analyze::AuditResult result;
    if (args.get_flag("demo-defects")) {
      target = "demo-defects";
      result = demo_audit_defects(options);
    } else if (name == "tree" || name == "apex1" || name == "apex2" || name == "k2") {
      netlist::Circuit circuit = load_circuit(name);
      result = analyze::audit_circuit(circuit, options);
    } else {
      result = analyze::audit_file(name, netlist::CellLibrary::standard(), options);
    }

    const bool json_on_stdout = args.has("json") && args.get_string("json") == "-";
    std::ostream& human = json_on_stdout ? std::cerr : std::cout;
    human << "audit: " << target << "\n";
    analyze::print_audit(human, result);

    if (args.has("json")) {
      const std::string path = args.get_string("json");
      if (path == "-") {
        analyze::write_audit_json(std::cout, result, target);
      } else {
        std::ofstream out(path);
        if (!out) throw std::runtime_error("cannot write " + path);
        analyze::write_audit_json(out, result, target);
        std::printf("wrote %s\n", path.c_str());
      }
    }
    return result.report.exit_code();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n(use statsize audit --help for usage)\n", e.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "lint") {
    // Shift argv so the subcommand's parser sees its own flags at index 1.
    return run_lint(argc - 1, argv + 1);
  }
  if (argc >= 2 && std::string(argv[1]) == "audit") {
    return run_audit(argc - 1, argv + 1);
  }
  if (argc >= 2) {
    // serve | ssta | submit | patch | poll | cancel (tools/statsize_serve_cli.cpp).
    const int code = tools::run_serve_family(argv[1], argc - 1, argv + 1);
    if (code >= 0) return code;
  }
  util::ArgParser args(
      "statsize — gate sizing under a statistical delay model (Jacobs & Berkelaar, DATE 2000)");
  args.add_string("circuit", "tree|apex1|apex2|k2 or a BLIF/Verilog file path", "tree");
  args.add_string("objective", "delay|area|power|sigma-min|sigma-max", "delay");
  args.add_double("sigma-weight", "k in the mu + k sigma delay objective", 0.0);
  args.add_double("max-delay", "constraint: mu + c-sigma-weight * sigma <= this");
  args.add_double("pin-delay", "constraint: mu pinned exactly to this value");
  args.add_double("constraint-sigma-weight", "sigma weight inside --max-delay", 0.0);
  args.add_string("method", "full|reduced|auto", "auto");
  args.add_double("max-speed", "upper sizing limit (the paper's `limit`)", 3.0);
  args.add_double("kappa", "gate sigma model: sigma = kappa * mu + offset", 0.25);
  args.add_double("sigma-offset", "additive term of the gate sigma model", 0.0);
  args.add_flag("nary-max", "full-space only: n-ary max elements (future-work mode)");
  args.add_flag("report", "print timing report, slacks and critical path");
  args.add_flag("canonical", "correlation-aware analysis in the report");
  args.add_int("mc", "verify with this many Monte Carlo samples", 0);
  args.add_string("sizes-out", "write per-gate speed factors to this TSV file");
  args.add_string("json-out", "write the full analysis as JSON to this file");
  args.add_flag("verbose", "solver progress output");
  args.add_int("jobs", "worker threads (0 = STATSIZE_JOBS or hardware)", 0);
  args.add_double("time-limit", "wall-clock solve budget in seconds (0 = unlimited)", 0.0);
  args.add_int("retries", "deterministic multistart retries after a breakdown/stall", 0);

  try {
    if (!args.parse(argc, argv)) return 0;
    if (const int jobs = args.get_int("jobs"); jobs > 0) runtime::set_threads(jobs);
    // STATSIZE_FAULT=<site>:<hit> arms the deterministic fault injector
    // (testing/chaos use; a no-op when unset).
    runtime::fault::arm_from_env();

    const netlist::Circuit circuit = load_circuit(args.get_string("circuit"));
    std::printf("circuit: %d gates, %d inputs, %zu outputs, depth %d\n", circuit.num_gates(),
                circuit.num_inputs(), circuit.outputs().size(), circuit.depth());

    core::SizingSpec spec;
    spec.max_speed = args.get_double("max-speed");
    spec.sigma_model = {args.get_double("kappa"), args.get_double("sigma-offset")};
    spec.nary_fanin_max = args.get_flag("nary-max");

    const std::string obj = args.get_string("objective");
    if (obj == "delay") {
      spec.objective = core::Objective::min_delay(args.get_double("sigma-weight"));
    } else if (obj == "area") {
      spec.objective = core::Objective::min_area();
    } else if (obj == "power") {
      spec.objective = core::Objective::min_weighted(ssta::power_weights(circuit));
    } else if (obj == "sigma-min") {
      spec.objective = core::Objective::min_sigma();
    } else if (obj == "sigma-max") {
      spec.objective = core::Objective::max_sigma();
    } else {
      throw std::invalid_argument("unknown objective '" + obj + "'");
    }
    if (args.has("max-delay")) {
      spec.delay_constraint = core::DelayConstraint::at_most(
          args.get_double("max-delay"), args.get_double("constraint-sigma-weight"));
    } else if (args.has("pin-delay")) {
      spec.delay_constraint = core::DelayConstraint::exactly(args.get_double("pin-delay"));
    }

    core::SizerOptions opt;
    const std::string method = args.get_string("method");
    if (method == "full") {
      opt.method = core::Method::kFullSpace;
    } else if (method == "reduced") {
      opt.method = core::Method::kReducedSpace;
    } else if (method == "auto") {
      opt.method =
          circuit.num_gates() <= 300 ? core::Method::kFullSpace : core::Method::kReducedSpace;
    } else {
      throw std::invalid_argument("unknown method '" + method + "'");
    }
    opt.verbose = args.get_flag("verbose");
    opt.time_limit_seconds = args.get_double("time-limit");
    opt.max_retries = args.get_int("retries");
    // Ctrl-C degrades gracefully: the solver polls this token and returns its
    // best checkpoint instead of dying mid-iterate (second Ctrl-C force-kills).
    runtime::install_interrupt_handlers();
    opt.cancel = &runtime::interrupt_token();
    if (opt.time_limit_seconds < 0.0) {
      throw std::invalid_argument("--time-limit: expected a value >= 0");
    }
    if (opt.max_retries < 0) {
      throw std::invalid_argument("--retries: expected a value >= 0");
    }

    std::printf("objective: %s%s%s, method: %s\n", spec.objective.description().c_str(),
                spec.delay_constraint ? ", s.t. " : "",
                spec.delay_constraint ? spec.delay_constraint->description().c_str() : "",
                method.c_str());

    const core::SizingResult r = core::Sizer(circuit, spec).run(opt);
    std::printf("\nstatus: %s (%.2f s, %d iterations)\n", r.status.c_str(), r.wall_seconds,
                r.iterations);
    if (r.retries_used > 0 || r.from_checkpoint || !r.breakdown_site.empty()) {
      std::printf("resilience: retries=%d%s%s%s\n", r.retries_used,
                  r.from_checkpoint ? ", returned best-iterate checkpoint" : "",
                  r.checkpoint_outer >= 0
                      ? (" (outer " + std::to_string(r.checkpoint_outer) + ")").c_str()
                      : "",
                  r.breakdown_site.empty() ? "" : (", tripwire: " + r.breakdown_site).c_str());
    }
    std::printf("result: mu=%.4f sigma=%.4f mu+3sigma=%.4f | sum S=%.2f area=%.2f\n",
                r.circuit_delay.mu, r.circuit_delay.sigma(), r.delay_metric(3.0), r.sum_speed,
                r.area);
    if (spec.delay_constraint) {
      std::printf("constraint violation: %.3e\n", r.constraint_violation);
    }

    if (args.get_flag("report")) print_report(circuit, spec, r, args.get_flag("canonical"));

    if (const int samples = args.get_int("mc"); samples > 0) {
      const ssta::DelayCalculator calc(circuit, spec.sigma_model);
      ssta::MonteCarloOptions mco;
      mco.num_samples = samples;
      const ssta::MonteCarloResult mc =
          ssta::run_monte_carlo(circuit, calc.all_delays(r.speed), mco);
      std::printf("\nMonte Carlo (%d samples): mean=%.4f stddev=%.4f p99=%.4f\n", samples,
                  mc.mean, mc.stddev, mc.quantile(0.99));
      if (spec.delay_constraint && !spec.delay_constraint->equality) {
        std::printf("realized yield at %.3f: %.2f%%\n", spec.delay_constraint->bound,
                    100.0 * mc.yield(spec.delay_constraint->bound));
      }
    }

    if (args.has("json-out")) {
      const std::string path = args.get_string("json-out");
      std::ofstream out(path);
      if (!out) throw std::runtime_error("cannot write " + path);
      ssta::JsonReportOptions jopt;
      jopt.include_canonical = args.get_flag("canonical");
      if (spec.delay_constraint) jopt.deadline = spec.delay_constraint->bound;
      ssta::SolveReport sr;
      sr.status = r.status;
      sr.converged = r.converged;
      sr.iterations = r.iterations;
      sr.wall_seconds = r.wall_seconds;
      sr.retries_used = r.retries_used;
      sr.from_checkpoint = r.from_checkpoint;
      sr.checkpoint_outer = r.checkpoint_outer;
      sr.breakdown_site = r.breakdown_site;
      jopt.solve = std::move(sr);
      const ssta::DelayCalculator calc(circuit, spec.sigma_model);
      ssta::write_json_report(out, circuit, calc, r.speed, jopt);
      std::printf("wrote %s\n", path.c_str());
    }

    if (args.has("sizes-out")) {
      const std::string path = args.get_string("sizes-out");
      std::ofstream out(path);
      if (!out) throw std::runtime_error("cannot write " + path);
      out << "# gate\tcell\tspeed_factor\n";
      for (netlist::NodeId id : circuit.topo_order()) {
        if (circuit.node(id).kind != netlist::NodeKind::kGate) continue;
        out << circuit.node(id).name << "\t" << circuit.cell_of(id).name << "\t"
            << r.speed[static_cast<std::size_t>(id)] << "\n";
      }
      std::printf("wrote %s\n", path.c_str());
    }
    return r.converged ? 0 : 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n(use --help for usage)\n", e.what());
    return 1;
  }
}
