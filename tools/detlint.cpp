// detlint — determinism lint over C++ sources (rules DET001..DET004).
//
// The repo's determinism contract (DESIGN.md §7) promises bit-identical
// results at any thread count. The contract is easy to break silently: one
// unordered-container iteration feeding an accumulation, one wall-clock or
// rand() call on a result path, one ad-hoc scatter `+=` inside a parallel_for
// body, one solver loop that never polls for cancellation. detlint is a
// heuristic text scanner for exactly those four hazards, run by
// scripts/check.sh over src/ as a CI gate.
//
// Rules (severities from the shared analyze registry; all errors):
//   DET001  unordered_{map,set,multimap,multiset} anywhere — iteration order
//           is hash-seed dependent, so anything folded from it is not
//           reproducible. Use std::map/std::set or index-keyed vectors.
//   DET002  rand()/srand()/time()/clock()/std::random_device — wall-clock and
//           hidden-seed entropy on any path is a determinism leak. SplitMix64
//           with an explicit seed is the house RNG; std::chrono is fine (and
//           is NOT flagged) because it only feeds deadlines/telemetry.
//           Carve-out: files under src/serve/ may read the wall clock through
//           the sanctioned serve::now() wrapper (daemon telemetry: uptime,
//           started_at), so DET002 is waived there when the line (or the one
//           above) names `serve::now`. Everywhere else the rule still fires.
//   DET003  indirect-indexed `+=`/`-=` inside a parallel_for lambda — a
//           scatter to shared slots races unless it goes through a
//           runtime::ScatterPlan (disjoint slots + ordered fold).
//   DET004  an unbounded loop (`while (true)` / `for (;;)`) in solver code
//           (paths containing /nlp/ or /core/) with no runtime::poll_cancel()
//           in its body — deadlines and Ctrl-C cannot preempt it.
//
// False-positive escape hatch: a line (or the line above it) containing
// `detlint: allow(DETxxx)` suppresses that rule there — the comment doubles
// as in-source documentation of why the site is safe.
//
// Exit codes match `statsize lint`: 0 clean, 3 findings (all rules are
// error-severity), 1 tool failure.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analyze/diagnostic.h"
#include "analyze/registry.h"
#include "util/args.h"

namespace {

using statsize::analyze::Report;

/// Blanks string/char literals and strips comments so brace counting and
/// pattern matches never fire inside quoted text. `in_block` carries /* */
/// state across lines.
std::string code_view(const std::string& line, bool& in_block) {
  std::string out;
  out.reserve(line.size());
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (in_block) {
      if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
        in_block = false;
        ++i;
      }
      out.push_back(' ');
      continue;
    }
    const char c = line[i];
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;  // line comment
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
      in_block = true;
      out.append("  ");
      ++i;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      out.push_back(quote);
      ++i;
      while (i < line.size()) {
        if (line[i] == '\\') {
          out.append("  ");
          i += 2;
          continue;
        }
        if (line[i] == quote) break;
        out.push_back(' ');
        ++i;
      }
      if (i < line.size()) out.push_back(quote);
      continue;
    }
    out.push_back(c);
  }
  return out;
}

bool is_ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_'; }

/// `needle` at a word boundary (previous char is not part of an identifier).
bool contains_word(const std::string& code, const std::string& needle) {
  for (std::size_t pos = code.find(needle); pos != std::string::npos;
       pos = code.find(needle, pos + 1)) {
    if (pos == 0 || !is_ident_char(code[pos - 1])) return true;
  }
  return false;
}

/// An `lhs[...subscript...] += ...` accumulation whose subscript itself
/// indexes or calls something — the shape of a scatter through an indirection
/// table, which races across parallel_for chunks unless plan-mediated.
bool has_indirect_accumulation(const std::string& code) {
  for (const char* op : {"+=", "-="}) {
    for (std::size_t pos = code.find(op); pos != std::string::npos;
         pos = code.find(op, pos + 1)) {
      std::size_t end = pos;
      while (end > 0 && code[end - 1] == ' ') --end;
      if (end == 0 || code[end - 1] != ']') continue;
      int depth = 0;
      std::size_t open = std::string::npos;
      for (std::size_t i = end; i-- > 0;) {
        if (code[i] == ']') ++depth;
        if (code[i] == '[') {
          if (--depth == 0) {
            open = i;
            break;
          }
        }
      }
      if (open == std::string::npos) continue;
      const std::string subscript = code.substr(open + 1, end - open - 2);
      if (subscript.find('[') != std::string::npos || subscript.find('(') != std::string::npos) {
        return true;
      }
    }
  }
  return false;
}

struct BraceRegion {
  int start_line = 0;
  int depth = 0;
  bool open_seen = false;
  bool found_poll = false;  // DET004 only
};

void scan_file(const std::string& path, Report& report) {
  std::ifstream in(path);
  if (!in) {
    report.add("PAR001", path, "cannot open file");
    return;
  }
  const bool solver_path =
      path.find("/nlp/") != std::string::npos || path.find("/core/") != std::string::npos;
  const bool serve_path = path.find("/serve/") != std::string::npos;

  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);

  auto suppressed = [&](std::size_t idx, const char* rule) {
    const std::string needle = std::string("detlint: allow(") + rule + ")";
    if (lines[idx].find(needle) != std::string::npos) return true;
    return idx > 0 && lines[idx - 1].find(needle) != std::string::npos;
  };
  auto locus = [&](std::size_t idx) { return path + ":" + std::to_string(idx + 1); };

  // The serve daemon's sanctioned wall-clock wrapper: under src/serve/ a
  // clock call on a line that names `serve::now` (or sits right below one)
  // is telemetry by construction, not a result-path leak.
  auto serve_clock_sanctioned = [&](std::size_t idx) {
    if (!serve_path) return false;
    if (lines[idx].find("serve::now") != std::string::npos) return true;
    return idx > 0 && lines[idx - 1].find("serve::now") != std::string::npos;
  };

  bool in_block = false;
  std::vector<BraceRegion> pf_regions;    // parallel_for lambda extents
  std::vector<BraceRegion> loop_regions;  // unbounded solver loops

  for (std::size_t idx = 0; idx < lines.size(); ++idx) {
    const std::string code = code_view(lines[idx], in_block);

    if ((code.find("std::unordered_map") != std::string::npos ||
         code.find("std::unordered_set") != std::string::npos ||
         code.find("std::unordered_multimap") != std::string::npos ||
         code.find("std::unordered_multiset") != std::string::npos) &&
        !suppressed(idx, "DET001")) {
      report.add("DET001", locus(idx),
                 "unordered container: iteration order is hash-seed dependent",
                 "use std::map/std::set or an index-keyed vector so folds stay ordered");
    }

    if ((contains_word(code, "rand(") || contains_word(code, "srand(") ||
         contains_word(code, "time(") || contains_word(code, "clock(") ||
         contains_word(code, "random_device")) &&
        !suppressed(idx, "DET002") && !serve_clock_sanctioned(idx)) {
      report.add("DET002", locus(idx),
                 "wall-clock or hidden-seed entropy source",
                 "seed a SplitMix64 explicitly; clocks may only feed deadlines/telemetry "
                 "(std::chrono), never results");
    }

    // Open new regions at trigger sites, then feed every brace on the line to
    // the active regions so lambda/loop extents are tracked correctly.
    if (code.find("parallel_for") != std::string::npos) {
      pf_regions.push_back({static_cast<int>(idx), 0, false, false});
    }
    if (solver_path && (code.find("while (true)") != std::string::npos ||
                        code.find("while(true)") != std::string::npos ||
                        code.find("for (;;)") != std::string::npos ||
                        code.find("for(;;)") != std::string::npos)) {
      loop_regions.push_back({static_cast<int>(idx), 0, false, false});
    }

    if (!pf_regions.empty() && has_indirect_accumulation(code) && !suppressed(idx, "DET003")) {
      report.add("DET003", locus(idx),
                 "indirect-indexed accumulation inside a parallel_for body",
                 "scatter through a runtime::ScatterPlan (disjoint slots, ordered fold) "
                 "instead of writing shared slots directly");
    }
    if (!loop_regions.empty() && code.find("poll_cancel") != std::string::npos) {
      for (BraceRegion& r : loop_regions) r.found_poll = true;
    }

    for (const char c : code) {
      if (c != '{' && c != '}') continue;
      const int delta = c == '{' ? 1 : -1;
      for (auto regions : {&pf_regions, &loop_regions}) {
        for (std::size_t r = 0; r < regions->size();) {
          BraceRegion& region = (*regions)[r];
          region.depth += delta;
          if (delta > 0) region.open_seen = true;
          if (region.open_seen && region.depth <= 0) {
            if (regions == &loop_regions && !region.found_poll &&
                !suppressed(static_cast<std::size_t>(region.start_line), "DET004")) {
              report.add("DET004", locus(static_cast<std::size_t>(region.start_line)),
                         "unbounded solver loop without a runtime::poll_cancel() checkpoint",
                         "poll once per iteration so deadlines and cancellation can preempt "
                         "the loop (DESIGN.md §9)");
            }
            regions->erase(regions->begin() + static_cast<std::ptrdiff_t>(r));
            continue;
          }
          ++r;
        }
      }
    }
  }
}

bool scannable(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".h" || ext == ".cc" || ext == ".hpp";
}

}  // namespace

int main(int argc, char** argv) {
  statsize::util::ArgParser args(
      "detlint — determinism lint (DET001..DET004) over C++ sources; see the rule "
      "catalog in src/analyze/registry.cpp and DESIGN.md's determinism contract");
  args.allow_positionals("files or directories to scan (directories recurse over .cpp/.h)");
  args.add_string("json", "write the JSON report to this file ('-' for stdout)");
  args.add_flag("list-rules", "print the DET rule catalog and exit");

  try {
    if (!args.parse(argc, argv)) return 0;

    if (args.get_flag("list-rules")) {
      for (const statsize::analyze::RuleInfo& rule : statsize::analyze::rule_catalog()) {
        if (rule.category != "determinism") continue;
        std::printf("%-8.*s %-8.*s %-24.*s %.*s\n", static_cast<int>(rule.id.size()),
                    rule.id.data(),
                    static_cast<int>(severity_name(rule.severity).size()),
                    severity_name(rule.severity).data(), static_cast<int>(rule.title.size()),
                    rule.title.data(), static_cast<int>(rule.detail.size()), rule.detail.data());
      }
      return 0;
    }

    if (args.positionals().empty()) {
      throw std::invalid_argument("no inputs (pass files or directories, e.g. src/)");
    }

    Report report;
    int files_scanned = 0;
    for (const std::string& input : args.positionals()) {
      const std::filesystem::path p(input);
      if (std::filesystem::is_directory(p)) {
        // Sort the walk so reports are byte-identical across filesystems —
        // the determinism linter had better be deterministic itself.
        std::vector<std::filesystem::path> found;
        for (const auto& entry : std::filesystem::recursive_directory_iterator(p)) {
          if (entry.is_regular_file() && scannable(entry.path())) found.push_back(entry.path());
        }
        std::sort(found.begin(), found.end());
        for (const auto& f : found) {
          scan_file(f.string(), report);
          ++files_scanned;
        }
      } else {
        scan_file(p.string(), report);
        ++files_scanned;
      }
    }
    report.sort();

    const bool json_on_stdout = args.has("json") && args.get_string("json") == "-";
    std::ostream& human = json_on_stdout ? std::cerr : std::cout;
    human << "detlint: " << files_scanned << " files\n";
    report.print(human);

    if (args.has("json")) {
      const std::string path = args.get_string("json");
      if (path == "-") {
        report.write_json(std::cout, "detlint");
      } else {
        std::ofstream out(path);
        if (!out) throw std::runtime_error("cannot write " + path);
        report.write_json(out, "detlint");
        std::printf("wrote %s\n", path.c_str());
      }
    }
    return report.exit_code();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n(use detlint --help for usage)\n", e.what());
    return 1;
  }
}
