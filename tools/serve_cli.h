// Serve-family subcommands of the statsize CLI:
//
//   statsize serve   — run the HTTP daemon (see src/serve/); --journal <dir>
//                      makes jobs crash-safe (recovery replay on restart)
//   statsize ssta    — one-shot SSTA with a machine-comparable result line
//   statsize submit  — upload a circuit + submit a job (optionally wait);
//                      --idempotency-key makes retries submit-once,
//                      --http-retries/--backoff-ms retry transport failures
//   statsize poll    — print one job document (exit 5 = interrupted by a
//                      daemon crash; safe to re-submit)
//   statsize cancel  — cooperative cancel of a queued/running job
//
// Implemented in statsize_serve_cli.cpp; dispatched from statsize_cli.cpp's
// main. Each takes (argc, argv) already shifted so its own flags start at
// index 1, and returns a process exit code.

#pragma once

#include <string>

namespace statsize::tools {

/// Returns -1 when `cmd` is not a serve-family subcommand; otherwise runs it
/// and returns its exit code.
int run_serve_family(const std::string& cmd, int argc, char** argv);

}  // namespace statsize::tools
