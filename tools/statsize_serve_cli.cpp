#include "serve_cli.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "netlist/blif.h"
#include "netlist/generators.h"
#include "runtime/runtime.h"
#include "runtime/signal.h"
#include "serve/client.h"
#include "serve/server.h"
#include "ssta/delay_model.h"
#include "ssta/ssta.h"
#include "util/args.h"
#include "util/json.h"

namespace statsize::tools {

namespace {

bool is_builtin(const std::string& name) {
  return name == "tree" || name == "apex1" || name == "apex2" || name == "k2";
}

/// Circuit text + format for an upload: builtin generators are serialized to
/// BLIF so the daemon parses exactly what the CLI would; files are shipped
/// verbatim (format from the extension).
struct CircuitText {
  std::string text;
  std::string format;
};

CircuitText circuit_text_for(const std::string& name) {
  CircuitText out;
  if (is_builtin(name)) {
    netlist::Circuit circuit = name == "tree" ? netlist::make_tree_circuit()
                                              : netlist::make_mcnc_like(name);
    std::ostringstream os;
    netlist::write_blif(os, circuit, name);
    out.text = os.str();
    out.format = "blif";
    return out;
  }
  std::ifstream in(name);
  if (!in) throw std::runtime_error("cannot read circuit file: " + name);
  std::ostringstream os;
  os << in.rdbuf();
  out.text = os.str();
  out.format =
      name.size() > 2 && name.rfind(".v") == name.size() - 2 ? "verilog" : "blif";
  return out;
}

netlist::Circuit load_local_circuit(const std::string& name) {
  if (name == "tree") return netlist::make_tree_circuit();
  if (is_builtin(name)) return netlist::make_mcnc_like(name);
  return netlist::read_blif_file(name);
}

/// The machine-comparable result line both `statsize ssta` and
/// `statsize submit --wait` print; %.17g round-trips doubles exactly, so the
/// serve smoke gate can assert bit-identity by comparing these lines.
void print_delay_line(double mu, double sigma, double mu3) {
  std::printf("circuit delay: mu=%.17g sigma=%.17g mu+3sigma=%.17g\n", mu, sigma, mu3);
}

int run_serve(int argc, char** argv) {
  util::ArgParser args("statsize serve — HTTP daemon over the timing/sizing engines");
  args.add_int("port", "listen port on 127.0.0.1 (0 = ephemeral, printed at start)", 0);
  args.add_int("io-threads", "concurrent keep-alive connections served", 8);
  args.add_int("cache-capacity", "circuits kept in the LRU cache", 16);
  args.add_int("queue-depth", "queued jobs before submissions get 429", 64);
  args.add_flag("no-serial-cutoff", "skip installing each circuit's granularity advice");
  args.add_string("stats-out", "write final /v1/stats JSON here on shutdown ('-' = stdout)");
  args.add_string("journal", "durable job journal directory (crash recovery; see DESIGN.md §13)");
  args.add_string("journal-fsync", "journal durability: none | always", "none");
  args.add_int("jobs", "worker threads (0 = STATSIZE_JOBS or hardware)", 0);
  if (!args.parse(argc, argv)) return 0;
  if (const int jobs = args.get_int("jobs"); jobs > 0) runtime::set_threads(jobs);

  serve::ServerOptions options;
  options.port = args.get_int("port");
  options.io_threads = args.get_int("io-threads");
  options.cache_capacity = static_cast<std::size_t>(args.get_int("cache-capacity"));
  options.scheduler.queue_depth = static_cast<std::size_t>(args.get_int("queue-depth"));
  options.scheduler.apply_serial_cutoff = !args.get_flag("no-serial-cutoff");
  if (args.has("journal")) options.journal_dir = args.get_string("journal");
  options.journal_fsync = serve::parse_fsync_policy(args.get_string("journal-fsync"));

  runtime::install_interrupt_handlers();
  serve::Server server(options);
  server.start();
  std::printf("statsize serve: listening on 127.0.0.1:%d\n", server.port());
  std::fflush(stdout);

  while (!runtime::interrupt_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  // Flip readiness before tearing anything down: load balancers polling
  // /v1/readyz see 503 + Retry-After while in-flight jobs finish draining.
  server.begin_drain();
  std::fprintf(stderr, "statsize serve: signal %d, draining...\n",
               runtime::interrupt_signal());
  server.stop();

  if (args.has("stats-out")) {
    const std::string path = args.get_string("stats-out");
    if (path == "-") {
      server.metrics().write_json(std::cout);
      std::cout << "\n";
    } else {
      std::ofstream out(path);
      if (!out) throw std::runtime_error("cannot write " + path);
      server.metrics().write_json(out);
      out << "\n";
      std::printf("wrote %s\n", path.c_str());
    }
  }
  std::printf("statsize serve: stopped\n");
  return 0;
}

int run_ssta(int argc, char** argv) {
  util::ArgParser args(
      "statsize ssta — one-shot statistical timing analysis (no sizing). The "
      "result line uses %.17g so served answers can be compared bit-for-bit.");
  args.add_string("circuit", "tree|apex1|apex2|k2 or a BLIF file path", "tree");
  args.add_double("kappa", "gate sigma model: sigma = kappa * mu + offset", 0.25);
  args.add_double("sigma-offset", "additive term of the gate sigma model", 0.0);
  args.add_double("speed", "uniform speed factor applied to every gate", 1.0);
  args.add_int("jobs", "worker threads (0 = STATSIZE_JOBS or hardware)", 0);
  if (!args.parse(argc, argv)) return 0;
  if (const int jobs = args.get_int("jobs"); jobs > 0) runtime::set_threads(jobs);

  const netlist::Circuit circuit = load_local_circuit(args.get_string("circuit"));
  const ssta::DelayCalculator calc(
      circuit, {args.get_double("kappa"), args.get_double("sigma-offset")});
  const std::vector<double> speed(static_cast<std::size_t>(circuit.num_nodes()),
                                  args.get_double("speed"));
  const ssta::TimingReport report = ssta::run_ssta(calc, speed);
  print_delay_line(report.circuit_delay.mu, report.circuit_delay.sigma(),
                   report.circuit_delay.quantile_offset(3.0));
  return 0;
}

/// Exit codes for submit --wait / poll: 0 done, 3 cancelled, 4 failed,
/// 5 interrupted (daemon crashed mid-run; the job is safe to re-submit).
int report_job_document(const util::JsonValue& doc) {
  const std::string state = doc.string_or("state", "?");
  std::printf("job %s: %s\n", doc.string_or("id", "?").c_str(), state.c_str());
  if (const util::JsonValue* result = doc.find("result"); result && result->is_object()) {
    if (const util::JsonValue* mu = result->find("mu"); mu && mu->is_number()) {
      print_delay_line(mu->as_number(), result->number_or("sigma", 0.0),
                       result->number_or("mu_plus_3sigma", 0.0));
    }
    const std::string status = result->string_or("status", "");
    if (!status.empty()) {
      std::printf("status: %s%s\n", status.c_str(),
                  result->bool_or("from_checkpoint", false) ? " (checkpoint)" : "");
    }
  }
  const util::JsonValue* error = doc.find("error");
  if (error && error->is_string()) {
    std::printf("error: %s\n", error->as_string().c_str());
  }
  if (state == "done") return 0;
  if (state == "cancelled") return 3;
  if (state == "failed") return 4;
  if (state == "interrupted") {
    std::printf("hint: the daemon crashed while this job was running; re-submit it\n");
    return 5;
  }
  return 0;
}

/// Shared resilience flags for the client-side subcommands. `prefix` lets
/// submit avoid colliding with its size-job `--retries` (multistart) flag.
void add_client_flags(util::ArgParser& args, const char* retries_flag) {
  args.add_int(retries_flag, "transport/backpressure retries (0 = fail fast)", 0);
  args.add_double("backoff-ms", "base retry delay; doubles per attempt, jittered", 100.0);
}

serve::ClientOptions client_options_from(const util::ArgParser& args,
                                         const char* retries_flag) {
  serve::ClientOptions options;
  options.retries = args.get_int(retries_flag);
  options.backoff_ms = args.get_double("backoff-ms");
  return options;
}

int run_submit(int argc, char** argv) {
  util::ArgParser args(
      "statsize submit — upload a circuit to a statsize serve daemon and submit a job");
  args.add_string("host", "daemon host", "127.0.0.1");
  args.add_int("port", "daemon port");
  args.add_string("circuit", "tree|apex1|apex2|k2 or a BLIF/Verilog file path", "tree");
  args.add_string("type", "ssta | sta | monte_carlo | size", "ssta");
  args.add_double("deadline-ms", "per-job wall-clock budget (0 = unlimited)", 0.0);
  args.add_double("kappa", "gate sigma model: sigma = kappa * mu + offset", 0.25);
  args.add_double("sigma-offset", "additive term of the gate sigma model", 0.0);
  args.add_double("speed", "uniform speed factor (analysis jobs)", 1.0);
  args.add_string("corner", "sta: best | typical | worst", "worst");
  args.add_int("samples", "monte_carlo: sample count", 10000);
  args.add_int("seed", "monte_carlo: base seed", 1);
  args.add_string("objective", "size: delay | area", "delay");
  args.add_double("sigma-weight", "size: k in mu + k sigma", 3.0);
  args.add_double("max-delay", "size: delay constraint bound (0 = none)", 0.0);
  args.add_double("constraint-sigma-weight", "size: sigma weight inside --max-delay", 0.0);
  args.add_string("method", "size: full | reduced", "reduced");
  args.add_double("max-speed", "size: upper sizing limit", 3.0);
  args.add_int("retries", "size: deterministic multistart retries", 0);
  args.add_int("job-threads", "worker threads on the daemon for this job (0 = leave)", 0);
  args.add_flag("wait", "poll until the job finishes and print the result");
  args.add_double("timeout", "--wait: give up after this many seconds (0 = forever)", 0.0);
  args.add_string("idempotency-key",
                  "dedup token: retrying with the same key never double-submits");
  add_client_flags(args, "http-retries");  // --retries already means size multistart
  if (!args.parse(argc, argv)) return 0;
  if (!args.has("port")) throw std::invalid_argument("--port is required");

  const CircuitText circuit = circuit_text_for(args.get_string("circuit"));
  serve::Client client(args.get_string("host"), args.get_int("port"),
                       client_options_from(args, "http-retries"));
  const std::string key =
      client.upload(circuit.text, circuit.format, args.get_string("circuit"));
  std::fprintf(stderr, "uploaded %s -> %s\n", args.get_string("circuit").c_str(),
               key.c_str());

  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_object();
  w.key("circuit").value(key);
  w.key("type").value(args.get_string("type"));
  w.key("deadline_ms").value(args.get_double("deadline-ms"));
  w.key("jobs").value(args.get_int("job-threads"));
  w.key("sigma_kappa").value(args.get_double("kappa"));
  w.key("sigma_offset").value(args.get_double("sigma-offset"));
  w.key("speed").value(args.get_double("speed"));
  w.key("corner").value(args.get_string("corner"));
  w.key("samples").value(args.get_int("samples"));
  w.key("seed").value(args.get_int("seed"));
  w.key("objective").value(args.get_string("objective"));
  w.key("sigma_weight").value(args.get_double("sigma-weight"));
  w.key("max_delay").value(args.get_double("max-delay"));
  w.key("constraint_sigma_weight").value(args.get_double("constraint-sigma-weight"));
  w.key("method").value(args.get_string("method"));
  w.key("max_speed").value(args.get_double("max-speed"));
  w.key("max_retries").value(args.get_int("retries"));
  w.end_object();

  const std::string id = client.submit(
      os.str(), args.has("idempotency-key") ? args.get_string("idempotency-key")
                                            : std::string());
  std::printf("submitted %s\n", id.c_str());
  if (!args.get_flag("wait")) return 0;
  return report_job_document(client.wait(id, 0.05, args.get_double("timeout")));
}

int run_patch(int argc, char** argv) {
  util::ArgParser args(
      "statsize patch — derive an edited circuit entry on a serve daemon (ECO). "
      "The daemon answers with a derived cache key (<base>+e-<hash>) that later "
      "jobs target; size jobs on it warm-start from the base entry's last "
      "solution. One edit is given with --node plus field flags; multi-gate "
      "batches pass a raw JSON edit array via --edits.");
  args.allow_positionals("base circuit key (c-NNN... or an already-derived key)");
  args.add_string("host", "daemon host", "127.0.0.1");
  args.add_int("port", "daemon port");
  args.add_int("node", "gate NodeId to edit (single-edit form)");
  args.add_double("speed", "new speed factor for --node (per-query, not cached in the view)");
  args.add_double("t-int", "new intrinsic delay for --node");
  args.add_double("drive-c", "new drive constant c for --node");
  args.add_double("c-in", "new input pin capacitance for --node");
  args.add_double("area", "new area for --node");
  args.add_string("edits", "raw JSON edit array, e.g. '[{\"node\":5,\"t_int\":2.5}]'");
  args.add_string("name", "display name for the derived entry (default: base name)");
  args.add_flag("raw", "print the raw JSON response instead of the summary");
  if (!args.parse(argc, argv)) return 0;
  if (!args.has("port")) throw std::invalid_argument("--port is required");
  if (args.positionals().size() != 1) {
    throw std::invalid_argument("expected exactly one circuit key");
  }

  std::ostringstream body;
  if (args.has("edits")) {
    if (args.has("node")) {
      throw std::invalid_argument("--edits and --node are mutually exclusive");
    }
    // Round-trip through the parser so a malformed array fails here with a
    // local message instead of a 400 from the daemon.
    const util::JsonValue edits = util::parse_json(args.get_string("edits"));
    if (!edits.is_array()) throw std::invalid_argument("--edits must be a JSON array");
    body << "{\"edits\": " << args.get_string("edits");
    if (args.has("name")) {
      body << ", \"name\": \"" << util::JsonWriter::escape(args.get_string("name"))
           << "\"";
    }
    body << "}";
  } else {
    if (!args.has("node")) throw std::invalid_argument("need --node or --edits");
    util::JsonWriter w(body);
    w.begin_object();
    if (args.has("name")) w.key("name").value(args.get_string("name"));
    w.key("edits").begin_array();
    w.begin_object();
    w.key("node").value(args.get_int("node"));
    struct Field { const char* flag; const char* field; };
    const Field fields[] = {{"speed", "speed"}, {"t-int", "t_int"}, {"drive-c", "c"},
                            {"c-in", "c_in"}, {"area", "area"}};
    for (const Field& f : fields) {
      if (args.has(f.flag)) w.key(f.field).value(args.get_double(f.flag));
    }
    w.end_object();
    w.end_array();
    w.end_object();
  }

  serve::Client client(args.get_string("host"), args.get_int("port"));
  const serve::ApiResult result = client.request(
      "PATCH", "/v1/circuits/" + args.positionals()[0], body.str());
  if (!result.ok()) {
    std::fprintf(stderr, "error (%d): %s\n", result.status, result.body.c_str());
    return 1;
  }
  if (args.get_flag("raw")) {
    std::printf("%s\n", result.body.c_str());
    return 0;
  }
  const util::JsonValue doc = result.json();
  std::printf("%s %s -> %s (%ld edit(s), %ld total on this lineage)\n",
              result.status == 200 ? "cached" : "derived",
              doc.string_or("base", "?").c_str(), doc.string_or("key", "?").c_str(),
              static_cast<long>(doc.number_or("edits_applied", 0.0)),
              static_cast<long>(doc.number_or("num_edits", 0.0)));
  return 0;
}

int run_poll(int argc, char** argv) {
  util::ArgParser args("statsize poll — print one job document from a serve daemon");
  args.allow_positionals("job id (job-NNNNNN)");
  args.add_string("host", "daemon host", "127.0.0.1");
  args.add_int("port", "daemon port");
  args.add_flag("raw", "print the raw JSON document instead of the summary");
  add_client_flags(args, "retries");
  if (!args.parse(argc, argv)) return 0;
  if (!args.has("port")) throw std::invalid_argument("--port is required");
  if (args.positionals().size() != 1) {
    throw std::invalid_argument("expected exactly one job id");
  }
  serve::Client client(args.get_string("host"), args.get_int("port"),
                       client_options_from(args, "retries"));
  serve::ApiResult result = client.job(args.positionals()[0]);
  if (!result.ok()) {
    std::fprintf(stderr, "error (%d): %s\n", result.status, result.body.c_str());
    return 1;
  }
  if (args.get_flag("raw")) {
    std::printf("%s\n", result.body.c_str());
    return 0;
  }
  return report_job_document(result.json());
}

int run_cancel(int argc, char** argv) {
  util::ArgParser args("statsize cancel — cooperatively cancel a job on a serve daemon");
  args.allow_positionals("job id (job-NNNNNN)");
  args.add_string("host", "daemon host", "127.0.0.1");
  args.add_int("port", "daemon port");
  add_client_flags(args, "retries");
  if (!args.parse(argc, argv)) return 0;
  if (!args.has("port")) throw std::invalid_argument("--port is required");
  if (args.positionals().size() != 1) {
    throw std::invalid_argument("expected exactly one job id");
  }
  serve::Client client(args.get_string("host"), args.get_int("port"),
                       client_options_from(args, "retries"));
  serve::ApiResult result = client.cancel(args.positionals()[0]);
  std::printf("%s\n", result.body.c_str());
  return result.ok() ? 0 : 1;
}

}  // namespace

int run_serve_family(const std::string& cmd, int argc, char** argv) {
  try {
    if (cmd == "serve") return run_serve(argc, argv);
    if (cmd == "ssta") return run_ssta(argc, argv);
    if (cmd == "submit") return run_submit(argc, argv);
    if (cmd == "patch") return run_patch(argc, argv);
    if (cmd == "poll") return run_poll(argc, argv);
    if (cmd == "cancel") return run_cancel(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n(use statsize %s --help for usage)\n", e.what(),
                 cmd.c_str());
    return 1;
  }
  return -1;
}

}  // namespace statsize::tools
