// Interactive replay of the paper's tree-circuit study (sec. 6, Tables 2/3):
// explore how different objectives shape the per-gate speed factors of the
// Fig. 3 circuit at a fixed mean delay.
//
//   $ ./examples/tree_circuit [mu_target]
//
// Without an argument the target is placed mid-range, like the paper's
// mu = 6.5 row.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/sizer.h"
#include "netlist/generators.h"
#include "ssta/ssta.h"

namespace {

using namespace statsize;

core::SizingResult solve(const netlist::Circuit& c, core::SizingSpec spec) {
  const core::Sizer sizer(c, std::move(spec));
  core::SizerOptions opt;
  opt.method = core::Method::kFullSpace;
  return sizer.run(opt);
}

void print_row(const netlist::Circuit& c, const char* label, const core::SizingResult& r) {
  std::printf("%-14s  mu=%.3f sigma=%.4f sumS=%6.2f   S = [", label, r.circuit_delay.mu,
              r.circuit_delay.sigma(), r.sum_speed);
  bool first = true;
  for (netlist::NodeId id : c.topo_order()) {
    const netlist::Node& n = c.node(id);
    if (n.kind != netlist::NodeKind::kGate) continue;
    std::printf("%s%s=%.2f", first ? "" : " ", n.name.c_str(),
                r.speed[static_cast<std::size_t>(id)]);
    first = false;
  }
  std::printf("]%s\n", r.converged ? "" : "   (NOT CONVERGED)");
}

}  // namespace

int main(int argc, char** argv) {
  const netlist::Circuit c = netlist::make_tree_circuit();

  // Feasible mean-delay range: all gates at limit vs all gates at 1.
  core::SizingSpec probe;
  const ssta::DelayCalculator calc(c, probe.sigma_model);
  std::vector<double> s(static_cast<std::size_t>(c.num_nodes()), 1.0);
  const double mu_max = ssta::run_ssta(calc, s).circuit_delay.mu;
  std::fill(s.begin(), s.end(), probe.max_speed);
  const double mu_min = ssta::run_ssta(calc, s).circuit_delay.mu;
  std::printf("tree circuit mean-delay range (uniform sizing): [%.3f, %.3f]\n", mu_min, mu_max);

  const double target =
      argc > 1 ? std::atof(argv[1]) : mu_min + 0.55 * (mu_max - mu_min);
  std::printf("pinning mu_Tmax = %.3f and comparing objectives (paper Table 3):\n\n", target);

  core::SizingSpec spec;
  spec.delay_constraint = core::DelayConstraint::exactly(target);

  spec.objective = core::Objective::min_area();
  print_row(c, "min area", solve(c, spec));
  spec.objective = core::Objective::min_sigma();
  print_row(c, "min sigma", solve(c, spec));
  spec.objective = core::Objective::max_sigma();
  print_row(c, "max sigma", solve(c, spec));

  std::printf(
      "\nExpected structure (paper sec. 6): symmetric gates {A,B,D,E} and {C,F}\n"
      "get equal factors, factors grow toward the output for min-area and\n"
      "min-sigma (more extreme for min-sigma), and max-sigma unbalances the\n"
      "paths to widen the delay distribution.\n");
  return 0;
}
