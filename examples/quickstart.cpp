// Quickstart: size the paper's 7-NAND tree circuit (Fig. 3) for minimum
// mu + 3 sigma delay — the "99.8% of circuits meet the bound" objective —
// and print the resulting speed factors.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "core/sizer.h"
#include "netlist/generators.h"

int main() {
  using namespace statsize;

  // 1. A circuit. Build your own with netlist::Circuit, import BLIF with
  //    netlist::read_blif_file, or use a generator.
  const netlist::Circuit circuit = netlist::make_tree_circuit();
  std::printf("circuit: %d gates, %d inputs, depth %d\n", circuit.num_gates(),
              circuit.num_inputs(), circuit.depth());

  // 2. What to optimize. Gate sigma follows the paper's example model
  //    sigma_t = 0.25 * mu_t; speed factors range over [1, 3].
  core::SizingSpec spec;
  spec.objective = core::Objective::min_delay(/*sigma_weight=*/3.0);
  spec.max_speed = 3.0;
  spec.sigma_model = {0.25, 0.0};

  // 3. Solve. The default method is the paper's full-space NLP formulation
  //    solved with the augmented-Lagrangian / trust-region stack.
  const core::Sizer sizer(circuit, spec);
  const core::SizingResult result = sizer.run();

  std::printf("status: %s (%d inner iterations, %.3f s)\n", result.status.c_str(),
              result.iterations, result.wall_seconds);
  std::printf("circuit delay: mu = %.3f, sigma = %.3f  ->  mu+3sigma = %.3f\n",
              result.circuit_delay.mu, result.circuit_delay.sigma(),
              result.delay_metric(3.0));
  std::printf("area (sum of speed factors): %.2f\n\n", result.sum_speed);

  std::printf("%-6s %-8s %s\n", "gate", "cell", "speed factor");
  for (netlist::NodeId id : circuit.topo_order()) {
    const netlist::Node& n = circuit.node(id);
    if (n.kind != netlist::NodeKind::kGate) continue;
    std::printf("%-6s %-8s %.3f\n", n.name.c_str(), circuit.cell_of(id).name.c_str(),
                result.speed[static_cast<std::size_t>(id)]);
  }
  return result.converged ? 0 : 1;
}
