// Yield-driven sizing: the paper's headline use case. Minimize area subject
// to a delay bound expressed on mu, mu + sigma, or mu + 3 sigma, then measure
// the *realized* yield with Monte Carlo. Constraining only the mean leaves
// ~50% of manufactured circuits too slow; the 3-sigma constraint buys ~99.8%
// yield for a small area premium (paper sec. 4).
//
//   $ ./examples/yield_driven_sizing [circuit] [slack_fraction]
//
// circuit: apex1 | apex2 | k2 | tree (default apex2)
// slack_fraction: where the deadline sits in the feasible mu+3sigma range
//                 (default 0.5).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/sizer.h"
#include "netlist/generators.h"
#include "ssta/monte_carlo.h"
#include "ssta/ssta.h"

int main(int argc, char** argv) {
  using namespace statsize;

  const std::string name = argc > 1 ? argv[1] : "apex2";
  const double frac = argc > 2 ? std::atof(argv[2]) : 0.5;
  const netlist::Circuit c =
      name == "tree" ? netlist::make_tree_circuit() : netlist::make_mcnc_like(name);
  std::printf("circuit %s: %d gates, depth %d\n", name.c_str(), c.num_gates(), c.depth());

  core::SizingSpec spec;
  spec.objective = core::Objective::min_area();

  // Feasible range of the mu+3sigma metric, from the two uniform sizings.
  const ssta::DelayCalculator calc(c, spec.sigma_model);
  std::vector<double> s(static_cast<std::size_t>(c.num_nodes()), 1.0);
  const double hi = ssta::run_ssta(calc, s).circuit_delay.quantile_offset(3.0);
  std::fill(s.begin(), s.end(), spec.max_speed);
  const double lo = ssta::run_ssta(calc, s).circuit_delay.quantile_offset(3.0);
  const double deadline = lo + frac * (hi - lo);
  std::printf("mu+3sigma range [%.2f, %.2f]; deadline D = %.2f\n\n", lo, hi, deadline);

  core::SizerOptions opt;
  opt.method = core::Method::kReducedSpace;  // fast for big circuits

  std::printf("%-22s %10s %10s %10s %12s %10s\n", "constraint", "mu", "sigma", "sum S",
              "MC yield@D", "wall s");
  for (double k : {0.0, 1.0, 3.0}) {
    spec.delay_constraint = core::DelayConstraint::at_most(deadline, k);
    const core::Sizer sizer(c, spec);
    const core::SizingResult r = sizer.run(opt);

    ssta::MonteCarloOptions mc;
    mc.num_samples = 20000;
    mc.seed = 2026;
    const ssta::MonteCarloResult sim =
        ssta::run_monte_carlo(c, calc.all_delays(r.speed), mc);

    std::printf("mu+%gsigma <= %-8.2f %10.3f %10.3f %10.2f %11.1f%% %10.2f%s\n", k, deadline,
                r.circuit_delay.mu, r.circuit_delay.sigma(), r.sum_speed,
                100.0 * sim.yield(deadline), r.wall_seconds,
                r.converged ? "" : "  (not converged)");
  }

  std::printf(
      "\nReading: every row meets its *analytic* constraint exactly, but only the\n"
      "rows that constrain mu + k sigma push the realized (Monte Carlo) yield to\n"
      "the paper's 84.1%% / 99.8%% levels. The area premium is the sum-S delta.\n");
  return 0;
}
