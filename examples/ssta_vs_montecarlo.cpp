// Validates the analytic statistical timing engine against Monte Carlo on a
// chosen circuit, and shows the corner-analysis pessimism the paper's
// introduction argues against: the all-worst-case corner exceeds the
// statistical mu + 3 sigma, which itself is far below 3x element uncertainty.
//
//   $ ./examples/ssta_vs_montecarlo [circuit] [samples]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "netlist/generators.h"
#include "ssta/monte_carlo.h"
#include "ssta/ssta.h"

int main(int argc, char** argv) {
  using namespace statsize;

  const std::string name = argc > 1 ? argv[1] : "apex1";
  const int samples = argc > 2 ? std::atoi(argv[2]) : 50000;
  const netlist::Circuit c =
      name == "tree" ? netlist::make_tree_circuit() : netlist::make_mcnc_like(name);

  const ssta::SigmaModel sigma_model{0.25, 0.0};  // 25% element uncertainty
  const ssta::DelayCalculator calc(c, sigma_model);
  const std::vector<double> speed(static_cast<std::size_t>(c.num_nodes()), 1.0);
  const auto delays = calc.all_delays(speed);

  const ssta::TimingReport analytic = ssta::run_ssta(c, delays);
  ssta::MonteCarloOptions opt;
  opt.num_samples = samples;
  opt.seed = 7;
  opt.truncate_negative_delays = false;
  const ssta::MonteCarloResult mc = ssta::run_monte_carlo(c, delays, opt);

  std::printf("circuit %s: %d gates, depth %d, %zu outputs\n", name.c_str(), c.num_gates(),
              c.depth(), c.outputs().size());
  std::printf("\n%-28s %10s %10s\n", "", "mu", "sigma");
  std::printf("%-28s %10.3f %10.3f\n", "analytic SSTA (Clark max)", analytic.circuit_delay.mu,
              analytic.circuit_delay.sigma());
  std::printf("%-28s %10.3f %10.3f   (%d samples)\n", "Monte Carlo", mc.mean, mc.stddev,
              samples);
  std::printf("relative error: mu %.2f%%, sigma %.1f%%\n",
              100.0 * (analytic.circuit_delay.mu - mc.mean) / mc.mean,
              100.0 * (analytic.circuit_delay.sigma() - mc.stddev) / mc.stddev);

  const double worst = ssta::run_sta(c, delays, ssta::Corner::kWorst).circuit_delay;
  const double typical = ssta::run_sta(c, delays, ssta::Corner::kTypical).circuit_delay;
  std::printf("\ncorner analysis: typical = %.3f, all-worst-case = %.3f\n", typical, worst);
  std::printf("statistical mu+3sigma = %.3f  (pessimism avoided: %.1f%%)\n",
              analytic.circuit_delay.quantile_offset(3.0),
              100.0 * (worst - analytic.circuit_delay.quantile_offset(3.0)) / worst);
  std::printf(
      "\ncircuit-level relative uncertainty sigma/mu = %.1f%% versus 25%% per gate —\n"
      "the averaging effect of series paths plus the max operator (paper sec. 1).\n",
      100.0 * analytic.circuit_delay.sigma() / analytic.circuit_delay.mu);

  if (name == "tree" || c.num_gates() <= 200) {
    const auto crit = ssta::monte_carlo_criticality(c, delays, opt);
    std::printf("\nmost critical gates (MC criticality):\n");
    for (netlist::NodeId id : c.topo_order()) {
      if (c.node(id).kind == netlist::NodeKind::kGate && crit[static_cast<std::size_t>(id)] > 0.25) {
        std::printf("  %-8s %.2f\n", c.node(id).name.c_str(), crit[static_cast<std::size_t>(id)]);
      }
    }
  }
  return 0;
}
