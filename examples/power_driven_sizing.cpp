// Power-driven sizing — the paper's weighted-objective extension (sec. 4:
// "We can choose a weighted sum of sizing factors in the objective function.
// This can model area, or, if we take into account capacitances and switching
// activity under zero delay model in the weights, power.", citing the first
// author's glitch-power work [8]).
//
// The example estimates per-gate switching activity under random inputs,
// builds capacitance-times-activity power weights, and compares area-driven
// versus power-driven sizing under the same mu + 3 sigma delay bound: the
// power objective shifts speed (and thus capacitance) away from high-activity
// gates at equal timing.
//
//   $ ./examples/power_driven_sizing [circuit]

#include <cstdio>
#include <string>
#include <vector>

#include "core/sizer.h"
#include "netlist/generators.h"
#include "ssta/activity.h"
#include "ssta/ssta.h"

namespace {

using namespace statsize;

double power_of(const netlist::Circuit& c, const std::vector<double>& weights,
                const std::vector<double>& speed) {
  double p = 0.0;
  for (netlist::NodeId id : c.topo_order()) {
    if (c.node(id).kind == netlist::NodeKind::kGate) {
      p += weights[static_cast<std::size_t>(id)] * speed[static_cast<std::size_t>(id)];
    }
  }
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "apex2";
  const netlist::Circuit c =
      name == "tree" ? netlist::make_tree_circuit() : netlist::make_mcnc_like(name);
  std::printf("circuit %s: %d gates\n", name.c_str(), c.num_gates());

  const std::vector<double> weights = ssta::power_weights(c);

  // Delay bound: 45% into the feasible mu+3sigma range.
  core::SizingSpec spec;
  const ssta::DelayCalculator calc(c, spec.sigma_model);
  std::vector<double> s(static_cast<std::size_t>(c.num_nodes()), spec.max_speed);
  const double lo = ssta::run_ssta(calc, s).circuit_delay.quantile_offset(3.0);
  std::fill(s.begin(), s.end(), 1.0);
  const double hi = ssta::run_ssta(calc, s).circuit_delay.quantile_offset(3.0);
  const double bound = lo + 0.45 * (hi - lo);
  spec.delay_constraint = core::DelayConstraint::at_most(bound, 3.0);
  std::printf("delay bound: mu+3sigma <= %.2f (range [%.2f, %.2f])\n\n", bound, lo, hi);

  core::SizerOptions opt;
  opt.method = core::Method::kReducedSpace;

  spec.objective = core::Objective::min_area();
  const core::SizingResult r_area = core::Sizer(c, spec).run(opt);
  spec.objective = core::Objective::min_weighted(weights);
  const core::SizingResult r_power = core::Sizer(c, spec).run(opt);

  std::printf("%-14s | %10s %10s %10s %12s\n", "objective", "mu", "mu+3s", "sum S",
              "dyn. power");
  for (const auto* r : {&r_area, &r_power}) {
    const bool is_power = r == &r_power;
    std::printf("%-14s | %10.3f %10.3f %10.2f %12.4f%s\n",
                is_power ? "min power" : "min area", r->circuit_delay.mu,
                r->delay_metric(3.0), r->sum_speed, power_of(c, weights, r->speed),
                r->converged ? "" : "  (not converged)");
  }

  const double saved = 1.0 - power_of(c, weights, r_power.speed) /
                                 power_of(c, weights, r_area.speed);
  std::printf(
      "\nAt identical timing, the activity-weighted objective spends its speed\n"
      "budget on low-activity gates: %.1f%% dynamic power saved vs area-driven\n"
      "sizing (at the cost of %.1f%% more raw area).\n",
      100.0 * saved,
      100.0 * (r_power.sum_speed / r_area.sum_speed - 1.0));
  return (r_area.converged && r_power.converged) ? 0 : 1;
}
