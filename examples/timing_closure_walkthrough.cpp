// A realistic timing-closure walkthrough tying the whole toolkit together:
//
//   1. analyze the unsized circuit: delay distribution, slacks, critical path;
//   2. size for minimum area under a mu+3sigma deadline (the paper's flow);
//   3. legalize onto a discrete drive-strength grid;
//   4. re-analyze with the correlation-aware engine and Monte Carlo;
//   5. export the machine-readable JSON report.
//
//   $ ./examples/timing_closure_walkthrough [circuit] [deadline-fraction]

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/discrete.h"
#include "core/sizer.h"
#include "netlist/generators.h"
#include "ssta/canonical.h"
#include "ssta/monte_carlo.h"
#include "ssta/report.h"
#include "ssta/slack.h"
#include "ssta/ssta.h"

int main(int argc, char** argv) {
  using namespace statsize;

  const std::string name = argc > 1 ? argv[1] : "apex2";
  const double frac = argc > 2 ? std::atof(argv[2]) : 0.45;
  const netlist::Circuit c =
      name == "tree" ? netlist::make_tree_circuit() : netlist::make_mcnc_like(name);

  core::SizingSpec spec;
  spec.objective = core::Objective::min_area();
  const ssta::DelayCalculator calc(c, spec.sigma_model);

  // -- 1. Pre-sizing analysis.
  std::vector<double> unit(static_cast<std::size_t>(c.num_nodes()), 1.0);
  const ssta::TimingReport before = ssta::run_ssta(calc, unit);
  std::vector<double> fast(static_cast<std::size_t>(c.num_nodes()), spec.max_speed);
  const double m3_lo = ssta::run_ssta(calc, fast).circuit_delay.quantile_offset(3.0);
  const double m3_hi = before.circuit_delay.quantile_offset(3.0);
  const double deadline = m3_lo + frac * (m3_hi - m3_lo);

  std::printf("circuit %s: %d gates, depth %d\n", name.c_str(), c.num_gates(), c.depth());
  std::printf("unsized: mu=%.2f sigma=%.3f mu+3s=%.2f; deadline D=%.2f\n",
              before.circuit_delay.mu, before.circuit_delay.sigma(), m3_hi, deadline);
  {
    const auto delays = calc.all_delays(unit);
    const ssta::SlackReport slacks = ssta::compute_slacks(c, delays, before, deadline);
    const auto path = ssta::extract_critical_path(c, before);
    std::printf("critical path (%zu stages), endpoint P(meet) = %.1f%%\n", path.size() - 1,
                100.0 * slacks.meet_probability(path.back()));
  }

  // -- 2. Statistical sizing.
  spec.delay_constraint = core::DelayConstraint::at_most(deadline, 3.0);
  core::SizerOptions opt;
  opt.method = core::Method::kReducedSpace;
  const core::SizingResult sized = core::Sizer(c, spec).run(opt);
  std::printf("\nsized (%s): mu+3s=%.2f (D=%.2f), sum S=%.1f (+%.1f%% area)\n",
              sized.status.c_str(), sized.delay_metric(3.0), deadline, sized.sum_speed,
              100.0 * (sized.sum_speed / c.num_gates() - 1.0));

  // -- 3. Discrete legalization onto 9 drive strengths.
  const core::SizeGrid grid = core::SizeGrid::geometric(spec.max_speed, 9);
  const core::DiscreteResult legal =
      core::legalize_sizing(c, spec, sized.speed, grid, deadline, 3.0);
  std::printf("legalized to %zu drive strengths: mu+3s=%.2f, sum S=%.1f (%+.2f%% vs cont.)%s\n",
              grid.sizes.size(), legal.delay_metric, legal.sum_speed,
              100.0 * (legal.sum_speed / sized.sum_speed - 1.0),
              legal.feasible ? "" : "  INFEASIBLE");

  // -- 4. Sign-off: correlation-aware analysis + Monte Carlo.
  const auto final_delays = calc.all_delays(legal.speed);
  const stat::NormalRV canonical =
      ssta::run_canonical_ssta(c, final_delays).circuit_delay_normal();
  ssta::MonteCarloOptions mco;
  mco.num_samples = 20000;
  const ssta::MonteCarloResult mc = ssta::run_monte_carlo(c, final_delays, mco);
  const stat::NormalRV independent = ssta::run_ssta(c, final_delays).circuit_delay;
  std::printf("\nsign-off:\n");
  std::printf("  independence engine: mu=%.2f sigma=%.3f\n", independent.mu,
              independent.sigma());
  std::printf("  canonical engine:    mu=%.2f sigma=%.3f\n", canonical.mu, canonical.sigma());
  std::printf("  Monte Carlo:         mu=%.2f sigma=%.3f, yield@D=%.1f%%\n", mc.mean,
              mc.stddev, 100.0 * mc.yield(deadline));

  // -- 5. JSON export.
  const std::string out_path = "/tmp/statsize_" + name + "_report.json";
  std::ofstream out(out_path);
  ssta::JsonReportOptions jopt;
  jopt.include_canonical = true;
  jopt.deadline = deadline;
  ssta::write_json_report(out, c, calc, legal.speed, jopt);
  std::printf("\nwrote %s\n", out_path.c_str());
  return sized.converged && legal.feasible ? 0 : 1;
}
