#include "netlist/timing_view.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>

namespace statsize::netlist {

namespace {

void require_finite(double v, const std::string& what) {
  if (std::isfinite(v)) return;
  throw std::invalid_argument(
      "TimingView: " + what + " is not finite, so the compiled timing graph would " +
      "propagate NaN/Inf into every sweep; `statsize lint` (rule MOD005) diagnoses " +
      "this before finalize()");
}

}  // namespace

TimingView::TimingView(const Circuit& circuit) {
  if (!circuit.finalized()) {
    throw std::logic_error(
        "TimingView requires a finalized circuit: fanouts, the topological "
        "order, and the level partition are derived by Circuit::finalize()");
  }
  const std::size_t n = static_cast<std::size_t>(circuit.num_nodes());
  num_gates_ = circuit.num_gates();
  num_inputs_ = circuit.num_inputs();

  kind_.resize(n);
  is_output_.assign(n, 0);
  level_.assign(n, 0);
  cell_.assign(n, -1);
  function_.assign(n, CellFunction::kBuf);
  t_int_.assign(n, 0.0);
  drive_c_.assign(n, 0.0);
  c_in_.assign(n, 0.0);
  area_.assign(n, 0.0);
  static_load_.assign(n, 0.0);

  fanin_offset_.assign(n + 1, 0);
  fanout_offset_.assign(n + 1, 0);

  for (NodeId id = 0; id < static_cast<NodeId>(n); ++id) {
    const Node& node = circuit.node(id);
    const std::size_t i = static_cast<std::size_t>(id);
    kind_[i] = node.kind;
    is_output_[i] = node.is_output ? 1 : 0;
    level_[i] = circuit.node_level(id);
    static_load_[i] = node.wire_load + (node.is_output ? node.pad_load : 0.0);
    require_finite(static_load_[i], "node '" + node.name + "' wire/pad load");
    if (node.kind == NodeKind::kGate) {
      const CellType& cell = circuit.library().cell(node.cell);
      cell_[i] = node.cell;
      function_[i] = cell.function;
      t_int_[i] = cell.t_int;
      drive_c_[i] = cell.c;
      c_in_[i] = cell.c_in;
      area_[i] = cell.area;
      require_finite(cell.t_int, "cell '" + cell.name + "' intrinsic delay t_int");
      require_finite(cell.c, "cell '" + cell.name + "' drive coefficient c");
      require_finite(cell.c_in, "cell '" + cell.name + "' input capacitance c_in");
      require_finite(cell.area, "cell '" + cell.name + "' area");
    }
    fanin_offset_[i + 1] = fanin_offset_[i] + node.fanins.size();
    fanout_offset_[i + 1] = fanout_offset_[i] + node.fanouts.size();
  }

  fanin_.reserve(fanin_offset_[n]);
  fanout_.reserve(fanout_offset_[n]);
  fanout_cin_.reserve(fanout_offset_[n]);
  for (NodeId id = 0; id < static_cast<NodeId>(n); ++id) {
    const Node& node = circuit.node(id);
    fanin_.insert(fanin_.end(), node.fanins.begin(), node.fanins.end());
    for (NodeId fo : node.fanouts) {
      // Fanouts are always gates (only gates have fanins), so the sink's pin
      // capacitance was copied — and finiteness-checked — above when fo was
      // visited, or will be; read the library directly to keep one pass.
      fanout_.push_back(fo);
      fanout_cin_.push_back(circuit.library().cell(circuit.node(fo).cell).c_in);
    }
  }

  topo_ = circuit.topo_order();
  outputs_ = circuit.outputs();
  gate_topo_.reserve(static_cast<std::size_t>(num_gates_));
  for (NodeId id : topo_) {
    if (kind_[static_cast<std::size_t>(id)] == NodeKind::kGate) gate_topo_.push_back(id);
  }

  const std::vector<std::vector<NodeId>>& levels = circuit.gate_levels();
  level_offset_.assign(levels.size() + 1, 0);
  for (std::size_t l = 0; l < levels.size(); ++l) {
    level_offset_[l + 1] = level_offset_[l] + levels[l].size();
  }
  level_gate_.reserve(level_offset_[levels.size()]);
  for (const std::vector<NodeId>& lvl : levels) {
    level_gate_.insert(level_gate_.end(), lvl.begin(), lvl.end());
  }
}

void TimingView::update_node_params(NodeId id, const NodeParams& params) {
  const std::size_t i = static_cast<std::size_t>(id);
  if (id < 0 || id >= num_nodes() || kind_[i] != NodeKind::kGate) {
    throw std::invalid_argument("TimingView::update_node_params: node " + std::to_string(id) +
                                " is not a gate of this view");
  }
  const std::string tag = "edited node " + std::to_string(id) + " ";
  require_finite(params.t_int, tag + "intrinsic delay t_int");
  require_finite(params.c, tag + "drive coefficient c");
  require_finite(params.c_in, tag + "input capacitance c_in");
  require_finite(params.area, tag + "area");

  t_int_[i] = params.t_int;
  drive_c_[i] = params.c;
  c_in_[i] = params.c_in;
  area_[i] = params.area;
  // The derived per-edge pin caps: every fanin's fanout edge targeting this
  // gate carries its C_in. A gate wired twice to one driver owns two such
  // edges on that driver; the scan rewrites each (matching the compile,
  // which emitted one fanout_cin_ slot per Node::fanouts entry).
  const std::size_t fi_end = fanin_offset_[i + 1];
  for (std::size_t fe = fanin_offset_[i]; fe < fi_end; ++fe) {
    const std::size_t f = static_cast<std::size_t>(fanin_[fe]);
    const std::size_t end = fanout_offset_[f + 1];
    for (std::size_t e = fanout_offset_[f]; e < end; ++e) {
      if (fanout_[e] == id) fanout_cin_[e] = params.c_in;
    }
  }

  ++epoch_;
  if (dirty_mask_.size() != kind_.size()) dirty_mask_.assign(kind_.size(), 0);
  if (!dirty_mask_[i]) {
    dirty_mask_[i] = 1;
    dirty_.push_back(id);
  }
}

void TimingView::clear_dirty() {
  for (NodeId id : dirty_) dirty_mask_[static_cast<std::size_t>(id)] = 0;
  dirty_.clear();
}

void TimingView::batch_load_capacitance(const double* speed, double* cap) const {
  const std::size_t num = kind_.size();
  const std::size_t num_edges = fanout_.size();
  // Flat vectorizable pass: every fanout edge's C_in * S_sink product. The
  // gather through fanout_ is the only indirection; cin/prod are contiguous.
  std::vector<double> prod(num_edges);
  const NodeId* sinks = fanout_.data();
  const double* cin = fanout_cin_.data();
  for (std::size_t e = 0; e < num_edges; ++e) {
    prod[e] = cin[e] * speed[static_cast<std::size_t>(sinks[e])];
  }
  // Per-node fold in edge order, seeded with the static load — the exact
  // accumulation order of load_capacitance(id, speed).
  for (std::size_t i = 0; i < num; ++i) {
    double acc = static_load_[i];
    const std::size_t end = fanout_offset_[i + 1];
    for (std::size_t e = fanout_offset_[i]; e < end; ++e) acc += prod[e];
    cap[i] = acc;
  }
}

namespace {

/// Union-find root with path halving, over the weak-component forest.
std::size_t uf_find(std::vector<std::size_t>& parent, std::size_t x) {
  while (parent[x] != x) {
    parent[x] = parent[parent[x]];
    x = parent[x];
  }
  return x;
}

}  // namespace

TimingViewStats compute_view_stats(const TimingView& view, int max_cone_samples) {
  TimingViewStats s;
  const std::size_t n = static_cast<std::size_t>(view.num_nodes());
  s.num_nodes = view.num_nodes();
  s.num_gates = view.num_gates();
  s.num_inputs = view.num_inputs();
  s.num_outputs = static_cast<int>(view.outputs().size());

  // Level-width histogram.
  s.level_widths.reserve(static_cast<std::size_t>(view.num_levels()));
  for (int l = 0; l < view.num_levels(); ++l) {
    s.level_widths.push_back(view.level_gates(l).size());
  }
  if (!s.level_widths.empty()) {
    s.min_level_width = *std::min_element(s.level_widths.begin(), s.level_widths.end());
    s.max_level_width = *std::max_element(s.level_widths.begin(), s.level_widths.end());
    const std::size_t total =
        std::accumulate(s.level_widths.begin(), s.level_widths.end(), std::size_t{0});
    s.mean_level_width =
        static_cast<double>(total) / static_cast<double>(s.level_widths.size());
  }

  // Edge counts, fanout skew, and the weak-component forest in one pass.
  std::vector<std::size_t> parent(n);
  std::iota(parent.begin(), parent.end(), std::size_t{0});
  std::size_t gate_fanout_edges = 0;
  for (NodeId id = 0; id < static_cast<NodeId>(n); ++id) {
    const std::size_t i = static_cast<std::size_t>(id);
    const NodeSpan fo = view.fanouts(id);
    s.num_edges += view.fanins(id).size();
    if (fo.size() > s.max_fanout) {
      s.max_fanout = fo.size();
      s.max_fanout_node = id;
    }
    if (view.is_gate(id)) gate_fanout_edges += fo.size();
    for (const NodeId sink : fo) {
      const std::size_t a = uf_find(parent, i);
      const std::size_t b = uf_find(parent, static_cast<std::size_t>(sink));
      if (a != b) parent[a] = b;
    }
  }
  if (s.num_gates > 0) {
    s.mean_gate_fanout = static_cast<double>(gate_fanout_edges) / s.num_gates;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (uf_find(parent, i) == i) ++s.num_components;
  }
  // First Betti number of the underlying undirected graph: each unit counts
  // one reconvergent path pair that independence SSTA treats as uncorrelated.
  if (s.num_edges + static_cast<std::size_t>(s.num_components) > n) {
    s.reconvergence_count = s.num_edges + static_cast<std::size_t>(s.num_components) - n;
  }
  s.reconvergence_ratio =
      static_cast<double>(s.reconvergence_count) / static_cast<double>(std::max<std::size_t>(1, s.num_edges));

  // Transitive-fanin cones of (a sample of) the primary outputs, via an
  // epoch-stamped visited array so repeated traversals cost no clearing.
  const std::vector<NodeId>& outs = view.outputs();
  if (max_cone_samples > 0 && !outs.empty()) {
    const std::size_t stride =
        std::max<std::size_t>(1, outs.size() / static_cast<std::size_t>(max_cone_samples));
    std::vector<int> stamp(n, -1);
    std::vector<NodeId> stack;
    std::size_t total_cone = 0;
    int epoch = 0;
    for (std::size_t k = 0; k < outs.size(); k += stride) {
      const NodeId root = outs[k];
      std::size_t cone = 0;
      stack.assign(1, root);
      stamp[static_cast<std::size_t>(root)] = epoch;
      while (!stack.empty()) {
        const NodeId top = stack.back();
        stack.pop_back();
        ++cone;
        for (const NodeId fi : view.fanins(top)) {
          if (stamp[static_cast<std::size_t>(fi)] != epoch) {
            stamp[static_cast<std::size_t>(fi)] = epoch;
            stack.push_back(fi);
          }
        }
      }
      if (cone > s.max_cone_size) {
        s.max_cone_size = cone;
        s.max_cone_output = root;
      }
      total_cone += cone;
      ++s.sampled_outputs;
      ++epoch;
    }
    if (s.sampled_outputs > 0) {
      s.mean_cone_size = static_cast<double>(total_cone) / s.sampled_outputs;
    }
  }
  return s;
}

std::vector<std::string> check_view_invariants(const TimingView& view) {
  std::vector<std::string> violations;
  const std::size_t n = static_cast<std::size_t>(view.num_nodes());
  auto flag = [&](std::string text) { violations.push_back(std::move(text)); };

  // Edge targets in range, fanin/fanout symmetry via a paired-edge count.
  std::size_t fanin_edges = 0;
  std::size_t fanout_edges = 0;
  std::size_t matched = 0;
  for (NodeId id = 0; id < static_cast<NodeId>(n); ++id) {
    for (const NodeId fi : view.fanins(id)) {
      ++fanin_edges;
      if (fi < 0 || static_cast<std::size_t>(fi) >= n) {
        flag("fanin edge of node " + std::to_string(id) + " targets out-of-range id " +
             std::to_string(fi));
        continue;
      }
      const NodeSpan fo = view.fanouts(fi);
      if (std::find(fo.begin(), fo.end(), id) != fo.end()) ++matched;
    }
    for (const NodeId fo : view.fanouts(id)) {
      ++fanout_edges;
      if (fo < 0 || static_cast<std::size_t>(fo) >= n) {
        flag("fanout edge of node " + std::to_string(id) + " targets out-of-range id " +
             std::to_string(fo));
      }
    }
    if (view.kind(id) == NodeKind::kPrimaryInput && !view.fanins(id).empty()) {
      flag("primary input node " + std::to_string(id) + " has fanin edges");
    }
  }
  if (fanin_edges != fanout_edges) {
    flag("fanin edge count " + std::to_string(fanin_edges) + " != fanout edge count " +
         std::to_string(fanout_edges));
  } else if (matched != fanin_edges) {
    flag(std::to_string(fanin_edges - matched) +
         " fanin edge(s) have no matching reverse fanout edge");
  }

  // Topological order: a permutation of all nodes, fanins before fanouts.
  {
    const std::vector<NodeId>& topo = view.topo_order();
    if (topo.size() != n) {
      flag("topo order has " + std::to_string(topo.size()) + " entries for " +
           std::to_string(n) + " nodes");
    }
    std::vector<int> pos(n, -1);
    for (std::size_t i = 0; i < topo.size(); ++i) {
      const NodeId id = topo[i];
      if (id < 0 || static_cast<std::size_t>(id) >= n || pos[static_cast<std::size_t>(id)] >= 0) {
        flag("topo order entry " + std::to_string(i) + " (node " + std::to_string(id) +
             ") is out of range or repeated");
        continue;
      }
      pos[static_cast<std::size_t>(id)] = static_cast<int>(i);
    }
    for (NodeId id = 0; id < static_cast<NodeId>(n); ++id) {
      for (const NodeId fi : view.fanins(id)) {
        if (fi < 0 || static_cast<std::size_t>(fi) >= n) continue;
        if (pos[static_cast<std::size_t>(fi)] >= 0 && pos[static_cast<std::size_t>(id)] >= 0 &&
            pos[static_cast<std::size_t>(fi)] > pos[static_cast<std::size_t>(id)]) {
          flag("topo order places node " + std::to_string(id) + " before its fanin " +
               std::to_string(fi));
        }
      }
    }
  }

  // Level partition: every gate exactly once, in its own level, and each
  // gate's level is 1 + max fanin level (inputs at level 0).
  {
    std::vector<int> seen(n, 0);
    std::size_t partition_gates = 0;
    for (int l = 0; l < view.num_levels(); ++l) {
      const NodeSpan lvl = view.level_gates(l);
      partition_gates += lvl.size();
      for (const NodeId id : lvl) {
        if (id < 0 || static_cast<std::size_t>(id) >= n) {
          flag("level " + std::to_string(l) + " contains out-of-range node id " +
               std::to_string(id));
          continue;
        }
        ++seen[static_cast<std::size_t>(id)];
        if (!view.is_gate(id)) {
          flag("level " + std::to_string(l) + " contains non-gate node " + std::to_string(id));
        }
        if (view.level(id) != l + 1) {
          flag("node " + std::to_string(id) + " sits in level partition " + std::to_string(l) +
               " but carries level " + std::to_string(view.level(id)));
        }
      }
    }
    if (partition_gates != static_cast<std::size_t>(view.num_gates())) {
      flag("level partition covers " + std::to_string(partition_gates) + " gates of " +
           std::to_string(view.num_gates()));
    }
    for (NodeId id = 0; id < static_cast<NodeId>(n); ++id) {
      if (view.is_gate(id) && seen[static_cast<std::size_t>(id)] != 1) {
        flag("gate " + std::to_string(id) + " appears " +
             std::to_string(seen[static_cast<std::size_t>(id)]) + " times in the level partition");
      }
      int max_fanin_level = -1;
      for (const NodeId fi : view.fanins(id)) {
        if (fi < 0 || static_cast<std::size_t>(fi) >= n) continue;
        max_fanin_level = std::max(max_fanin_level, view.level(fi));
      }
      if (view.is_gate(id) && max_fanin_level >= 0 && view.level(id) != max_fanin_level + 1) {
        flag("gate " + std::to_string(id) + " has level " + std::to_string(view.level(id)) +
             " but 1 + max fanin level is " + std::to_string(max_fanin_level + 1));
      }
      if (view.kind(id) == NodeKind::kPrimaryInput && view.level(id) != 0) {
        flag("primary input node " + std::to_string(id) + " has non-zero level " +
             std::to_string(view.level(id)));
      }
    }
  }
  return violations;
}

}  // namespace statsize::netlist
