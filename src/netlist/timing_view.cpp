#include "netlist/timing_view.h"

#include <cmath>
#include <stdexcept>
#include <string>

namespace statsize::netlist {

namespace {

void require_finite(double v, const std::string& what) {
  if (std::isfinite(v)) return;
  throw std::invalid_argument(
      "TimingView: " + what + " is not finite, so the compiled timing graph would " +
      "propagate NaN/Inf into every sweep; `statsize lint` (rule MOD005) diagnoses " +
      "this before finalize()");
}

}  // namespace

TimingView::TimingView(const Circuit& circuit) {
  if (!circuit.finalized()) {
    throw std::logic_error(
        "TimingView requires a finalized circuit: fanouts, the topological "
        "order, and the level partition are derived by Circuit::finalize()");
  }
  const std::size_t n = static_cast<std::size_t>(circuit.num_nodes());
  num_gates_ = circuit.num_gates();
  num_inputs_ = circuit.num_inputs();

  kind_.resize(n);
  is_output_.assign(n, 0);
  level_.assign(n, 0);
  cell_.assign(n, -1);
  function_.assign(n, CellFunction::kBuf);
  t_int_.assign(n, 0.0);
  drive_c_.assign(n, 0.0);
  c_in_.assign(n, 0.0);
  area_.assign(n, 0.0);
  static_load_.assign(n, 0.0);

  fanin_offset_.assign(n + 1, 0);
  fanout_offset_.assign(n + 1, 0);

  for (NodeId id = 0; id < static_cast<NodeId>(n); ++id) {
    const Node& node = circuit.node(id);
    const std::size_t i = static_cast<std::size_t>(id);
    kind_[i] = node.kind;
    is_output_[i] = node.is_output ? 1 : 0;
    level_[i] = circuit.node_level(id);
    static_load_[i] = node.wire_load + (node.is_output ? node.pad_load : 0.0);
    require_finite(static_load_[i], "node '" + node.name + "' wire/pad load");
    if (node.kind == NodeKind::kGate) {
      const CellType& cell = circuit.library().cell(node.cell);
      cell_[i] = node.cell;
      function_[i] = cell.function;
      t_int_[i] = cell.t_int;
      drive_c_[i] = cell.c;
      c_in_[i] = cell.c_in;
      area_[i] = cell.area;
      require_finite(cell.t_int, "cell '" + cell.name + "' intrinsic delay t_int");
      require_finite(cell.c, "cell '" + cell.name + "' drive coefficient c");
      require_finite(cell.c_in, "cell '" + cell.name + "' input capacitance c_in");
      require_finite(cell.area, "cell '" + cell.name + "' area");
    }
    fanin_offset_[i + 1] = fanin_offset_[i] + node.fanins.size();
    fanout_offset_[i + 1] = fanout_offset_[i] + node.fanouts.size();
  }

  fanin_.reserve(fanin_offset_[n]);
  fanout_.reserve(fanout_offset_[n]);
  fanout_cin_.reserve(fanout_offset_[n]);
  for (NodeId id = 0; id < static_cast<NodeId>(n); ++id) {
    const Node& node = circuit.node(id);
    fanin_.insert(fanin_.end(), node.fanins.begin(), node.fanins.end());
    for (NodeId fo : node.fanouts) {
      // Fanouts are always gates (only gates have fanins), so the sink's pin
      // capacitance was copied — and finiteness-checked — above when fo was
      // visited, or will be; read the library directly to keep one pass.
      fanout_.push_back(fo);
      fanout_cin_.push_back(circuit.library().cell(circuit.node(fo).cell).c_in);
    }
  }

  topo_ = circuit.topo_order();
  outputs_ = circuit.outputs();
  gate_topo_.reserve(static_cast<std::size_t>(num_gates_));
  for (NodeId id : topo_) {
    if (kind_[static_cast<std::size_t>(id)] == NodeKind::kGate) gate_topo_.push_back(id);
  }

  const std::vector<std::vector<NodeId>>& levels = circuit.gate_levels();
  level_offset_.assign(levels.size() + 1, 0);
  for (std::size_t l = 0; l < levels.size(); ++l) {
    level_offset_[l + 1] = level_offset_[l] + levels[l].size();
  }
  level_gate_.reserve(level_offset_[levels.size()]);
  for (const std::vector<NodeId>& lvl : levels) {
    level_gate_.insert(level_gate_.end(), lvl.begin(), lvl.end());
  }
}

}  // namespace statsize::netlist
