#include "netlist/verilog.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <istream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace statsize::netlist {

namespace {

struct Token {
  std::string text;
  int line = 0;
};

[[noreturn]] void fail(int line, const std::string& what) {
  throw std::runtime_error("Verilog parse error at line " + std::to_string(line) + ": " + what);
}

/// Lexer: identifiers, punctuation (( ) , ; .), with comments stripped.
std::vector<Token> tokenize(std::istream& in) {
  std::vector<Token> tokens;
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
    } else if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
    } else if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      while (i < n && text[i] != '\n') ++i;
    } else if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] == '\n') ++line;
        ++i;
      }
      if (i + 1 >= n) fail(line, "unterminated block comment");
      i += 2;
    } else if (c == '(' || c == ')' || c == ',' || c == ';' || c == '.') {
      tokens.push_back({std::string(1, c), line});
      ++i;
    } else if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '\\' ||
               c == '[' || c == ']' || c == '$') {
      std::size_t j = i;
      if (c == '\\') {  // escaped identifier: up to whitespace
        ++j;
        while (j < n && !std::isspace(static_cast<unsigned char>(text[j]))) ++j;
      } else {
        while (j < n && (std::isalnum(static_cast<unsigned char>(text[j])) ||
                         text[j] == '_' || text[j] == '[' || text[j] == ']' ||
                         text[j] == '$')) {
          ++j;
        }
      }
      tokens.push_back({text.substr(i, j - i), line});
      i = j;
    } else {
      fail(line, std::string("unexpected character '") + c + "'");
    }
  }
  return tokens;
}

bool is_output_pin(const std::string& pin) {
  std::string up = pin;
  std::transform(up.begin(), up.end(), up.begin(),
                 [](unsigned char ch) { return static_cast<char>(std::toupper(ch)); });
  return up == "Y" || up == "Z" || up == "OUT" || up == "O" || up == "Q";
}

struct Instance {
  int cell = -1;
  std::string name;
  std::string output;               ///< net driven
  std::vector<std::string> inputs;  ///< nets read, pin order
  int line = 0;
};

}  // namespace

Circuit read_verilog(std::istream& in, const CellLibrary& library) {
  const std::vector<Token> toks = tokenize(in);
  std::size_t pos = 0;
  const auto peek = [&]() -> const Token& {
    if (pos >= toks.size()) fail(toks.empty() ? 1 : toks.back().line, "unexpected end of file");
    return toks[pos];
  };
  const auto next = [&]() -> const Token& {
    const Token& t = peek();
    ++pos;
    return t;
  };
  const auto expect = [&](const std::string& want) {
    const Token& t = next();
    if (t.text != want) fail(t.line, "expected '" + want + "', got '" + t.text + "'");
  };

  if (peek().text != "module") fail(peek().line, "expected 'module'");
  next();
  next();  // module name
  // Optional port list.
  if (peek().text == "(") {
    while (next().text != ")") {
      if (pos >= toks.size()) fail(toks.back().line, "unterminated port list");
    }
  }
  expect(";");

  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  std::vector<Instance> instances;

  while (peek().text != "endmodule") {
    const Token head = next();
    if (head.text == "input" || head.text == "output" || head.text == "wire") {
      std::vector<std::string>* list =
          head.text == "input" ? &inputs : (head.text == "output" ? &outputs : nullptr);
      while (true) {
        const Token t = next();
        if (t.text == "[") fail(t.line, "buses are not supported");
        if (list != nullptr) list->push_back(t.text);
        const Token sep = next();
        if (sep.text == ";") break;
        if (sep.text != ",") fail(sep.line, "expected ',' or ';' in declaration");
      }
      continue;
    }
    // Cell instance: CELL name ( connections ) ;
    Instance inst;
    inst.line = head.line;
    inst.cell = library.find(head.text);
    inst.name = next().text;
    expect("(");
    std::vector<std::pair<std::string, std::string>> named;  // pin -> net
    std::vector<std::string> positional;
    while (true) {
      if (peek().text == ")") {
        next();
        break;
      }
      if (peek().text == ".") {
        next();
        const std::string pin = next().text;
        expect("(");
        const std::string net = next().text;
        expect(")");
        named.emplace_back(pin, net);
      } else {
        positional.push_back(next().text);
      }
      if (peek().text == ",") next();
    }
    expect(";");

    if (!named.empty() && !positional.empty()) {
      fail(inst.line, "instance " + inst.name + " mixes named and positional connections");
    }
    if (!named.empty()) {
      for (const auto& [pin, net] : named) {
        if (is_output_pin(pin)) {
          if (!inst.output.empty()) fail(inst.line, "instance " + inst.name + ": two outputs");
          inst.output = net;
        } else {
          inst.inputs.push_back(net);
        }
      }
      if (inst.output.empty()) {
        fail(inst.line, "instance " + inst.name + ": no output pin (Y/Z/OUT/O/Q)");
      }
    } else {
      if (positional.size() < 2) fail(inst.line, "instance " + inst.name + ": too few pins");
      inst.output = positional.front();
      inst.inputs.assign(positional.begin() + 1, positional.end());
    }
    if (inst.cell < 0) {
      inst.cell = library.cell_for_inputs(static_cast<int>(inst.inputs.size()));
      if (inst.cell < 0) {
        fail(inst.line, "unknown cell '" + head.text + "' and no generic fallback for " +
                            std::to_string(inst.inputs.size()) + " inputs");
      }
    }
    if (library.cell(inst.cell).num_inputs != static_cast<int>(inst.inputs.size())) {
      fail(inst.line, "instance " + inst.name + ": cell " + library.cell(inst.cell).name +
                          " expects " + std::to_string(library.cell(inst.cell).num_inputs) +
                          " inputs, got " + std::to_string(inst.inputs.size()));
    }
    instances.push_back(std::move(inst));
  }

  // ---- Build the circuit (instances may appear in any order).
  std::map<std::string, int> driver;  // net -> instance index, or -1 for PI
  for (const std::string& s : inputs) {
    if (!driver.emplace(s, -1).second) throw std::runtime_error("duplicate input " + s);
  }
  for (std::size_t i = 0; i < instances.size(); ++i) {
    if (!driver.emplace(instances[i].output, static_cast<int>(i)).second) {
      fail(instances[i].line, "net " + instances[i].output + " has two drivers");
    }
  }

  Circuit circuit(library);
  std::map<std::string, NodeId> built;
  for (const std::string& s : inputs) built[s] = circuit.add_input(s);

  enum class Mark : char { kNone, kOnStack, kDone };
  std::vector<Mark> mark(instances.size(), Mark::kNone);
  auto build = [&](int root) {
    std::vector<std::pair<int, std::size_t>> stack{{root, 0}};
    mark[static_cast<std::size_t>(root)] = Mark::kOnStack;
    while (!stack.empty()) {
      auto& [idx, next_pin] = stack.back();
      const Instance& inst = instances[static_cast<std::size_t>(idx)];
      if (next_pin < inst.inputs.size()) {
        const std::string& net = inst.inputs[next_pin++];
        const auto it = driver.find(net);
        if (it == driver.end()) fail(inst.line, "net " + net + " has no driver");
        if (it->second < 0) continue;
        const int child = it->second;
        if (mark[static_cast<std::size_t>(child)] == Mark::kDone) continue;
        if (mark[static_cast<std::size_t>(child)] == Mark::kOnStack) {
          fail(inst.line, "combinational cycle through net " + net);
        }
        mark[static_cast<std::size_t>(child)] = Mark::kOnStack;
        stack.emplace_back(child, 0);
        continue;
      }
      std::vector<NodeId> fanins;
      fanins.reserve(inst.inputs.size());
      for (const std::string& net : inst.inputs) fanins.push_back(built.at(net));
      built[inst.output] = circuit.add_gate(inst.cell, std::move(fanins), inst.name);
      mark[static_cast<std::size_t>(idx)] = Mark::kDone;
      stack.pop_back();
    }
  };
  for (std::size_t i = 0; i < instances.size(); ++i) {
    if (mark[i] == Mark::kNone) build(static_cast<int>(i));
  }

  if (outputs.empty()) throw std::runtime_error("Verilog module declares no outputs");
  for (const std::string& s : outputs) {
    const auto it = built.find(s);
    if (it == built.end()) throw std::runtime_error("output net " + s + " has no driver");
    circuit.mark_output(it->second);
  }
  circuit.finalize();
  return circuit;
}

void write_verilog(std::ostream& out, const Circuit& circuit, const std::string& module_name) {
  static const char* kPins[] = {"A", "B", "C", "D", "E", "F", "G", "H"};
  out << "module " << module_name << " (";
  bool first = true;
  for (NodeId id : circuit.topo_order()) {
    if (circuit.node(id).kind == NodeKind::kPrimaryInput) {
      out << (first ? "" : ", ") << circuit.node(id).name;
      first = false;
    }
  }
  for (NodeId id : circuit.outputs()) out << ", " << circuit.node(id).name << "_po";
  out << ");\n";
  for (NodeId id : circuit.topo_order()) {
    if (circuit.node(id).kind == NodeKind::kPrimaryInput) {
      out << "  input " << circuit.node(id).name << ";\n";
    }
  }
  for (NodeId id : circuit.outputs()) out << "  output " << circuit.node(id).name << "_po;\n";
  for (NodeId id : circuit.topo_order()) {
    if (circuit.node(id).kind == NodeKind::kGate) {
      out << "  wire " << circuit.node(id).name << ";\n";
    }
  }
  for (NodeId id : circuit.topo_order()) {
    const Node& n = circuit.node(id);
    if (n.kind != NodeKind::kGate) continue;
    out << "  " << circuit.cell_of(id).name << " " << n.name << "_i (";
    for (std::size_t i = 0; i < n.fanins.size(); ++i) {
      out << "." << kPins[i] << "(" << circuit.node(n.fanins[i]).name << "), ";
    }
    out << ".Y(" << n.name << "));\n";
  }
  // Output pads as buffers so the _po nets have drivers.
  for (NodeId id : circuit.outputs()) {
    out << "  BUF " << circuit.node(id).name << "_pad (.A(" << circuit.node(id).name << "), .Y("
        << circuit.node(id).name << "_po));\n";
  }
  out << "endmodule\n";
}

Circuit read_verilog_file(const std::string& path, const CellLibrary& library) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open Verilog file: " + path);
  return read_verilog(in, library);
}

}  // namespace statsize::netlist
