// Minimal structural BLIF reader/writer.
//
// The paper sizes MCNC benchmark circuits (apex1, apex2, k2) that were
// distributed as BLIF. This importer accepts the structural subset —
// .model/.inputs/.outputs/.names/.end — and maps every k-input .names node to
// the library's generic k-input cell (the Boolean function is irrelevant to
// timing under this delay model, only pin counts and topology matter). The
// writer emits a BLIF whose .names blocks carry NAND truth tables, so a
// round-trip preserves structure exactly.
//
// Limitations (diagnosed with exceptions, never silently ignored):
//  * no .latch (combinational circuits only, as in the paper)
//  * no .subckt / hierarchical models
//  * a .names with more inputs than any library cell is rejected

#pragma once

#include <iosfwd>
#include <string>

#include "netlist/circuit.h"

namespace statsize::netlist {

/// Parses a BLIF network from `in`. Throws std::runtime_error with a
/// line-numbered message on malformed input.
Circuit read_blif(std::istream& in, const CellLibrary& library = CellLibrary::standard());

/// Like read_blif but returns the circuit UNFINALIZED: structural problems a
/// parser cannot express as text errors (combinational cycles, dangling
/// gates) are left in the graph for analyze::lint_circuit_structure to
/// diagnose instead of being thrown. Text-level problems (undefined signals,
/// duplicate definitions, missing cells) still throw.
Circuit read_blif_raw(std::istream& in, const CellLibrary& library = CellLibrary::standard());

Circuit read_blif_file(const std::string& path,
                       const CellLibrary& library = CellLibrary::standard());

/// Writes `circuit` as structural BLIF (model name `model`).
void write_blif(std::ostream& out, const Circuit& circuit, const std::string& model = "top");

}  // namespace statsize::netlist
