#include "netlist/generators.h"

#include <algorithm>
#include <random>
#include <stdexcept>

namespace statsize::netlist {

Circuit make_tree_circuit(const CellLibrary& library) {
  const int nand2 = library.find("NAND2");
  if (nand2 < 0) throw std::invalid_argument("library lacks NAND2");
  Circuit c(library);
  std::vector<NodeId> pi;
  pi.reserve(8);
  for (int i = 0; i < 8; ++i) pi.push_back(c.add_input("pi" + std::to_string(i)));
  const NodeId a = c.add_gate(nand2, {pi[0], pi[1]}, "A");
  const NodeId b = c.add_gate(nand2, {pi[2], pi[3]}, "B");
  const NodeId d = c.add_gate(nand2, {pi[4], pi[5]}, "D");
  const NodeId e = c.add_gate(nand2, {pi[6], pi[7]}, "E");
  const NodeId f_c = c.add_gate(nand2, {a, b}, "C");
  const NodeId f_f = c.add_gate(nand2, {d, e}, "F");
  const NodeId g = c.add_gate(nand2, {f_c, f_f}, "G");
  for (NodeId id : {a, b, d, e, f_c, f_f, g}) c.set_wire_load(id, 1.0);
  c.mark_output(g, /*pad_load=*/2.0);
  c.finalize();
  return c;
}

Circuit make_balanced_tree(int levels, const CellLibrary& library) {
  if (levels < 1) throw std::invalid_argument("levels must be >= 1");
  const int nand2 = library.find("NAND2");
  Circuit c(library);
  // Build bottom-up: leaves first. Level `levels` has 2^(levels-1) gates.
  const int num_leaves = 1 << (levels - 1);
  std::vector<NodeId> frontier;
  frontier.reserve(static_cast<std::size_t>(num_leaves));
  for (int i = 0; i < num_leaves; ++i) {
    const NodeId p0 = c.add_input({});
    const NodeId p1 = c.add_input({});
    frontier.push_back(c.add_gate(nand2, {p0, p1}));
  }
  while (frontier.size() > 1) {
    std::vector<NodeId> next;
    next.reserve(frontier.size() / 2);
    for (std::size_t i = 0; i + 1 < frontier.size(); i += 2) {
      next.push_back(c.add_gate(nand2, {frontier[i], frontier[i + 1]}));
    }
    frontier = std::move(next);
  }
  c.mark_output(frontier.front(), 1.5);
  c.finalize();
  return c;
}

Circuit make_chain(int length, const CellLibrary& library) {
  if (length < 1) throw std::invalid_argument("length must be >= 1");
  const int inv = library.find("INV");
  Circuit c(library);
  NodeId prev = c.add_input("pi0");
  for (int i = 0; i < length; ++i) {
    prev = c.add_gate(inv, {prev});
    c.set_wire_load(prev, 0.1);
  }
  c.mark_output(prev, 1.0);
  c.finalize();
  return c;
}

namespace {

/// Mapped-logic-like cell mix (cumulative weights over the standard library).
int pick_cell(const CellLibrary& lib, std::mt19937_64& rng) {
  struct Entry {
    const char* name;
    double weight;
  };
  static constexpr Entry kMix[] = {{"INV", 0.12},  {"NAND2", 0.32}, {"NOR2", 0.18},
                                   {"NAND3", 0.12}, {"AOI21", 0.08}, {"OAI21", 0.05},
                                   {"NAND4", 0.05}, {"AND2", 0.04},  {"OR2", 0.03},
                                   {"XOR2", 0.01}};
  std::uniform_real_distribution<double> u(0.0, 1.0);
  double r = u(rng);
  for (const Entry& e : kMix) {
    r -= e.weight;
    if (r <= 0.0) {
      const int id = lib.find(e.name);
      if (id >= 0) return id;
    }
  }
  return lib.find("NAND2");
}

}  // namespace

Circuit make_random_dag(const RandomDagParams& params, const CellLibrary& library) {
  if (params.num_gates < 1 || params.num_inputs < 1 || params.depth < 1) {
    throw std::invalid_argument("random DAG parameters must be positive");
  }
  std::mt19937_64 rng(params.seed);
  Circuit c(library);

  std::vector<NodeId> inputs;
  inputs.reserve(static_cast<std::size_t>(params.num_inputs));
  for (int i = 0; i < params.num_inputs; ++i) inputs.push_back(c.add_input({}));

  // Level sizes: a spindle profile (narrow at the ends, wide in the middle),
  // which matches multi-level mapped logic better than a uniform split.
  const int depth = std::min(params.depth, params.num_gates);
  std::vector<int> level_size(static_cast<std::size_t>(depth), 0);
  {
    std::vector<double> w(static_cast<std::size_t>(depth));
    double total = 0.0;
    for (int l = 0; l < depth; ++l) {
      const double x = (l + 0.5) / depth;
      w[static_cast<std::size_t>(l)] = 0.5 + 2.0 * x * (1.0 - x);
      total += w[static_cast<std::size_t>(l)];
    }
    int assigned = 0;
    for (int l = 0; l < depth; ++l) {
      level_size[static_cast<std::size_t>(l)] =
          std::max(1, static_cast<int>(params.num_gates * w[static_cast<std::size_t>(l)] / total));
      assigned += level_size[static_cast<std::size_t>(l)];
    }
    // Fix rounding drift on the widest level.
    auto widest = std::max_element(level_size.begin(), level_size.end());
    *widest += params.num_gates - assigned;
    if (*widest < 1) throw std::invalid_argument("depth too large for gate count");
  }

  std::vector<std::vector<NodeId>> levels;  // levels[0] = PIs
  levels.push_back(inputs);
  std::exponential_distribution<double> wire_dist(
      params.wire_load_mean > 0 ? 1.0 / params.wire_load_mean : 1e9);
  std::uniform_real_distribution<double> u(0.0, 1.0);

  std::vector<int> fanout_count(static_cast<std::size_t>(params.num_inputs + params.num_gates), 0);

  for (int l = 0; l < depth; ++l) {
    std::vector<NodeId> this_level;
    this_level.reserve(static_cast<std::size_t>(level_size[static_cast<std::size_t>(l)]));
    const std::vector<NodeId>& prev = levels.back();
    for (int gidx = 0; gidx < level_size[static_cast<std::size_t>(l)]; ++gidx) {
      const int cell = pick_cell(library, rng);
      const int pins = library.cell(cell).num_inputs;
      std::vector<NodeId> fanins;
      fanins.reserve(static_cast<std::size_t>(pins));
      // First fanin comes from the immediately preceding level so the target
      // depth is realized; prefer nodes that are not yet consumed, so the
      // previous level doesn't strand gates as accidental outputs.
      {
        std::vector<NodeId> unused;
        for (NodeId n : prev) {
          if (fanout_count[static_cast<std::size_t>(n)] == 0) unused.push_back(n);
        }
        const std::vector<NodeId>& pool = unused.empty() ? prev : unused;
        fanins.push_back(pool[static_cast<std::size_t>(
            std::uniform_int_distribution<std::size_t>(0, pool.size() - 1)(rng))]);
      }
      for (int p = 1; p < pins; ++p) {
        NodeId pick = kInvalidNode;
        for (int attempt = 0; attempt < 8 && pick == kInvalidNode; ++attempt) {
          const std::vector<NodeId>* pool = nullptr;
          if (u(rng) < params.locality) {
            pool = &prev;
          } else {
            const std::size_t li = std::uniform_int_distribution<std::size_t>(
                0, levels.size() - 1)(rng);
            pool = &levels[li];
          }
          const NodeId cand = (*pool)[std::uniform_int_distribution<std::size_t>(
              0, pool->size() - 1)(rng)];
          if (std::find(fanins.begin(), fanins.end(), cand) == fanins.end()) pick = cand;
        }
        // Duplicate-avoidance failed (tiny pools): fall back to any PI.
        if (pick == kInvalidNode) {
          pick = inputs[std::uniform_int_distribution<std::size_t>(0, inputs.size() - 1)(rng)];
        }
        fanins.push_back(pick);
      }
      for (NodeId f : fanins) ++fanout_count[static_cast<std::size_t>(f)];
      const NodeId g = c.add_gate(cell, std::move(fanins));
      c.set_wire_load(g, wire_dist(rng));
      this_level.push_back(g);
    }
    levels.push_back(std::move(this_level));
  }

  // Primary outputs: every gate nothing consumes, plus random last-level
  // gates until num_outputs is reached.
  int num_outputs = 0;
  for (std::size_t lvl = 1; lvl < levels.size(); ++lvl) {
    for (NodeId g : levels[lvl]) {
      if (fanout_count[static_cast<std::size_t>(g)] == 0) {
        c.mark_output(g, params.pad_load);
        ++num_outputs;
      }
    }
  }
  // Top up to the requested output count from consumed last-level gates.
  for (NodeId g : levels.back()) {
    if (num_outputs >= params.num_outputs) break;
    if (fanout_count[static_cast<std::size_t>(g)] > 0) {
      c.mark_output(g, params.pad_load);
      ++num_outputs;
    }
  }
  if (num_outputs == 0) {
    c.mark_output(levels.back().front(), params.pad_load);
  }
  c.finalize();
  return c;
}

Circuit make_mcnc_like(const std::string& name, const CellLibrary& library) {
  RandomDagParams p;
  if (name == "apex1") {
    p.num_gates = 982;
    p.num_inputs = 45;
    p.num_outputs = 45;
    p.depth = 20;
    p.seed = 0xA9E1;
  } else if (name == "apex2") {
    p.num_gates = 117;
    p.num_inputs = 39;
    p.num_outputs = 3;
    p.depth = 12;
    p.seed = 0xA9E2;
  } else if (name == "k2") {
    p.num_gates = 1692;
    p.num_inputs = 46;
    p.num_outputs = 45;
    p.depth = 23;
    p.seed = 0xC2;
  } else {
    throw std::invalid_argument("unknown MCNC-like preset: " + name);
  }
  return make_random_dag(p, library);
}

}  // namespace statsize::netlist
