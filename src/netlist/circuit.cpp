#include "netlist/circuit.h"

#include <algorithm>
#include <stdexcept>

namespace statsize::netlist {

void Circuit::require_mutable() const {
  if (finalized_) throw std::runtime_error("circuit is finalized; no further edits allowed");
}

void Circuit::require_finalized() const {
  if (!finalized_) throw std::runtime_error("circuit must be finalized first");
}

NodeId Circuit::add_input(std::string name) {
  require_mutable();
  Node n;
  n.kind = NodeKind::kPrimaryInput;
  n.name = name.empty() ? "pi" + std::to_string(num_inputs_) : std::move(name);
  nodes_.push_back(std::move(n));
  ++num_inputs_;
  return static_cast<NodeId>(nodes_.size()) - 1;
}

NodeId Circuit::add_gate(int cell, std::vector<NodeId> fanins, std::string name) {
  require_mutable();
  const CellType& type = library_->cell(cell);  // throws on bad id
  if (static_cast<int>(fanins.size()) != type.num_inputs) {
    throw std::invalid_argument("gate " + name + ": cell " + type.name + " expects " +
                                std::to_string(type.num_inputs) + " fanins, got " +
                                std::to_string(fanins.size()));
  }
  const NodeId self = static_cast<NodeId>(nodes_.size());
  for (NodeId f : fanins) {
    if (f < 0 || f >= self) throw std::invalid_argument("fanin id out of range (forward ref?)");
  }
  Node n;
  n.kind = NodeKind::kGate;
  n.cell = cell;
  n.name = name.empty() ? "g" + std::to_string(num_gates_) : std::move(name);
  n.fanins = std::move(fanins);
  nodes_.push_back(std::move(n));
  ++num_gates_;
  return self;
}

void Circuit::mark_output(NodeId id, double pad_load) {
  require_mutable();
  Node& n = nodes_.at(static_cast<std::size_t>(id));
  n.is_output = true;
  n.pad_load = pad_load;
  outputs_.push_back(id);
}

void Circuit::set_wire_load(NodeId id, double load) {
  require_mutable();
  if (load < 0.0) throw std::invalid_argument("wire load must be non-negative");
  nodes_.at(static_cast<std::size_t>(id)).wire_load = load;
}

void Circuit::finalize() {
  require_mutable();
  if (outputs_.empty()) throw std::runtime_error("circuit has no primary outputs");

  for (Node& n : nodes_) n.fanouts.clear();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (NodeId f : nodes_[i].fanins) {
      nodes_[static_cast<std::size_t>(f)].fanouts.push_back(static_cast<NodeId>(i));
    }
  }

  // Because add_gate only accepts already-existing fanins, node-id order is
  // already topological; keep an explicit order vector anyway so importers
  // that relax that invariant later only need to change this function.
  topo_.resize(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) topo_[i] = static_cast<NodeId>(i);

  // Every gate must transitively feed an output; dangling gates indicate a
  // construction bug upstream (and would carry unconstrained NLP variables).
  std::vector<char> live(nodes_.size(), 0);
  std::vector<NodeId> stack(outputs_.begin(), outputs_.end());
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (live[static_cast<std::size_t>(id)]) continue;
    live[static_cast<std::size_t>(id)] = 1;
    for (NodeId f : nodes_[static_cast<std::size_t>(id)].fanins) stack.push_back(f);
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].kind == NodeKind::kGate && !live[i]) {
      throw std::runtime_error("gate '" + nodes_[i].name + "' does not reach any output");
    }
  }
  finalized_ = true;
}

const std::vector<NodeId>& Circuit::topo_order() const {
  require_finalized();
  return topo_;
}

double Circuit::load_capacitance(NodeId id, const std::vector<double>& speed) const {
  require_finalized();
  const Node& n = node(id);
  double cap = n.wire_load + (n.is_output ? n.pad_load : 0.0);
  for (NodeId fo : n.fanouts) {
    const Node& sink = node(fo);
    cap += library_->cell(sink.cell).c_in * speed[static_cast<std::size_t>(fo)];
  }
  return cap;
}

int Circuit::depth() const {
  require_finalized();
  std::vector<int> level(nodes_.size(), 0);
  int max_level = 0;
  for (NodeId id : topo_) {
    const Node& n = node(id);
    if (n.kind != NodeKind::kGate) continue;
    int lvl = 1;
    for (NodeId f : n.fanins) lvl = std::max(lvl, level[static_cast<std::size_t>(f)] + 1);
    level[static_cast<std::size_t>(id)] = lvl;
    max_level = std::max(max_level, lvl);
  }
  return max_level;
}

CircuitStats compute_stats(const Circuit& circuit) {
  CircuitStats s;
  s.num_gates = circuit.num_gates();
  s.num_inputs = circuit.num_inputs();
  s.num_outputs = static_cast<int>(circuit.outputs().size());
  s.depth = circuit.depth();
  long fanin_sum = 0;
  long fanout_sum = 0;
  for (NodeId id : circuit.topo_order()) {
    const Node& n = circuit.node(id);
    if (n.kind == NodeKind::kGate) fanin_sum += static_cast<long>(n.fanins.size());
    fanout_sum += static_cast<long>(n.fanouts.size());
    s.max_fanout = std::max(s.max_fanout, static_cast<int>(n.fanouts.size()));
  }
  if (s.num_gates > 0) s.avg_fanin = static_cast<double>(fanin_sum) / s.num_gates;
  const int drivers = s.num_gates + s.num_inputs;
  if (drivers > 0) s.avg_fanout = static_cast<double>(fanout_sum) / drivers;
  return s;
}

Circuit clone_with_library(const Circuit& circuit, const CellLibrary& library) {
  if (library.size() < circuit.library().size()) {
    throw std::invalid_argument("replacement library is missing cells");
  }
  Circuit clone(library);
  for (NodeId id : circuit.topo_order()) {
    const Node& n = circuit.node(id);
    NodeId copied;
    if (n.kind == NodeKind::kPrimaryInput) {
      copied = clone.add_input(n.name);
    } else {
      copied = clone.add_gate(n.cell, n.fanins, n.name);
      clone.set_wire_load(copied, n.wire_load);
    }
    if (copied != id) throw std::logic_error("clone produced different node ids");
    if (n.is_output) clone.mark_output(id, n.pad_load);
  }
  clone.finalize();
  return clone;
}

}  // namespace statsize::netlist
