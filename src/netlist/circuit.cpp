#include "netlist/circuit.h"

#include <algorithm>
#include <stdexcept>

#include "analyze/circuit_lint.h"
#include "netlist/timing_view.h"

namespace statsize::netlist {

void Circuit::require_mutable(const char* operation) const {
  if (finalized_) throw FinalizedMutationError(operation);
}

void Circuit::require_finalized() const {
  if (!finalized_) throw std::runtime_error("circuit must be finalized first");
}

NodeId Circuit::add_input(std::string name) {
  require_mutable("add_input");
  Node n;
  n.kind = NodeKind::kPrimaryInput;
  n.name = name.empty() ? "pi" + std::to_string(num_inputs_) : std::move(name);
  nodes_.push_back(std::move(n));
  ++num_inputs_;
  return static_cast<NodeId>(nodes_.size()) - 1;
}

NodeId Circuit::add_gate(int cell, std::vector<NodeId> fanins, std::string name) {
  require_mutable("add_gate");
  const CellType& type = library_->cell(cell);  // throws on bad id
  if (static_cast<int>(fanins.size()) != type.num_inputs) {
    throw std::invalid_argument("gate " + name + ": cell " + type.name + " expects " +
                                std::to_string(type.num_inputs) + " fanins, got " +
                                std::to_string(fanins.size()));
  }
  const NodeId self = static_cast<NodeId>(nodes_.size());
  for (NodeId f : fanins) {
    if (f < 0 || f >= self) throw std::invalid_argument("fanin id out of range (forward ref?)");
  }
  Node n;
  n.kind = NodeKind::kGate;
  n.cell = cell;
  n.name = name.empty() ? "g" + std::to_string(num_gates_) : std::move(name);
  n.fanins = std::move(fanins);
  nodes_.push_back(std::move(n));
  ++num_gates_;
  return self;
}

NodeId Circuit::add_gate_deferred(int cell, std::string name) {
  require_mutable("add_gate_deferred");
  const CellType& type = library_->cell(cell);  // throws on bad id
  Node n;
  n.kind = NodeKind::kGate;
  n.cell = cell;
  n.name = name.empty() ? "g" + std::to_string(num_gates_) : std::move(name);
  n.fanins.assign(static_cast<std::size_t>(type.num_inputs), kInvalidNode);
  nodes_.push_back(std::move(n));
  ++num_gates_;
  return static_cast<NodeId>(nodes_.size()) - 1;
}

void Circuit::set_fanin(NodeId id, int pin, NodeId driver) {
  require_mutable("set_fanin");
  Node& n = nodes_.at(static_cast<std::size_t>(id));
  if (n.kind != NodeKind::kGate) {
    throw std::invalid_argument("set_fanin: node '" + n.name + "' is not a gate");
  }
  if (pin < 0 || pin >= static_cast<int>(n.fanins.size())) {
    throw std::invalid_argument("set_fanin: gate '" + n.name + "' has no pin " +
                                std::to_string(pin));
  }
  if (driver < 0 || driver >= static_cast<NodeId>(nodes_.size())) {
    throw std::invalid_argument("set_fanin: driver id " + std::to_string(driver) +
                                " out of range");
  }
  n.fanins[static_cast<std::size_t>(pin)] = driver;
}

void Circuit::mark_output(NodeId id, double pad_load) {
  require_mutable("mark_output");
  Node& n = nodes_.at(static_cast<std::size_t>(id));
  n.is_output = true;
  n.pad_load = pad_load;
  outputs_.push_back(id);
}

void Circuit::set_wire_load(NodeId id, double load) {
  require_mutable("set_wire_load");
  if (load < 0.0) throw std::invalid_argument("wire load must be non-negative");
  nodes_.at(static_cast<std::size_t>(id)).wire_load = load;
}

void Circuit::finalize() {
  require_mutable("finalize");

  // The structural analyzer performs all validation (pin wiring, pin counts,
  // acyclicity with cycle extraction, output reachability) and produces the
  // topological order; error-severity findings become one exception that
  // names every offending node.
  std::vector<NodeId> topo;
  const analyze::Report report = analyze::lint_circuit_structure(*this, &topo);
  if (report.has_errors()) {
    throw std::runtime_error("circuit validation failed:\n" + report.errors_text());
  }

  for (Node& n : nodes_) n.fanouts.clear();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (NodeId f : nodes_[i].fanins) {
      nodes_[static_cast<std::size_t>(f)].fanouts.push_back(static_cast<NodeId>(i));
    }
  }
  topo_ = std::move(topo);

  // Level partition (cached for the parallel runtime's LevelSchedule and for
  // depth()): level(gate) = 1 + max level over fanins, inputs at level 0.
  node_level_.assign(nodes_.size(), 0);
  int max_level = 0;
  for (NodeId id : topo_) {
    const Node& n = nodes_[static_cast<std::size_t>(id)];
    if (n.kind != NodeKind::kGate) continue;
    int lvl = 1;
    for (NodeId f : n.fanins) {
      lvl = std::max(lvl, node_level_[static_cast<std::size_t>(f)] + 1);
    }
    node_level_[static_cast<std::size_t>(id)] = lvl;
    max_level = std::max(max_level, lvl);
  }
  gate_levels_.assign(static_cast<std::size_t>(max_level), {});
  for (NodeId id : topo_) {
    if (nodes_[static_cast<std::size_t>(id)].kind != NodeKind::kGate) continue;
    gate_levels_[static_cast<std::size_t>(node_level_[static_cast<std::size_t>(id)] - 1)]
        .push_back(id);
  }

  // Compile the flat timing graph (the finalized flag must be set first —
  // the view reads through the require_finalized accessors). A failed
  // compile (non-finite cell constants/loads, see MOD005) leaves the
  // circuit un-finalized, never half-frozen.
  finalized_ = true;
  try {
    view_ = std::make_shared<const TimingView>(*this);
  } catch (...) {
    finalized_ = false;
    throw;
  }
}

const TimingView& Circuit::view() const {
  require_finalized();
  return *view_;
}

const std::vector<std::vector<NodeId>>& Circuit::gate_levels() const {
  require_finalized();
  return gate_levels_;
}

int Circuit::node_level(NodeId id) const {
  require_finalized();
  return node_level_.at(static_cast<std::size_t>(id));
}

const std::vector<NodeId>& Circuit::topo_order() const {
  require_finalized();
  return topo_;
}

double Circuit::load_capacitance(NodeId id, const std::vector<double>& speed) const {
  require_finalized();
  // Same edge order and arithmetic as the historical Node walk, through the
  // compiled per-edge capacitances — bit-identical, no library chasing.
  return view_->load_capacitance(id, speed.data());
}

int Circuit::depth() const {
  require_finalized();
  return static_cast<int>(gate_levels_.size());
}

CircuitStats compute_stats(const Circuit& circuit) {
  CircuitStats s;
  s.num_gates = circuit.num_gates();
  s.num_inputs = circuit.num_inputs();
  s.num_outputs = static_cast<int>(circuit.outputs().size());
  s.depth = circuit.depth();
  long fanin_sum = 0;
  long fanout_sum = 0;
  for (NodeId id : circuit.topo_order()) {
    const Node& n = circuit.node(id);
    if (n.kind == NodeKind::kGate) fanin_sum += static_cast<long>(n.fanins.size());
    fanout_sum += static_cast<long>(n.fanouts.size());
    s.max_fanout = std::max(s.max_fanout, static_cast<int>(n.fanouts.size()));
  }
  if (s.num_gates > 0) s.avg_fanin = static_cast<double>(fanin_sum) / s.num_gates;
  const int drivers = s.num_gates + s.num_inputs;
  if (drivers > 0) s.avg_fanout = static_cast<double>(fanout_sum) / drivers;
  return s;
}

Circuit clone_with_library(const Circuit& circuit, const CellLibrary& library) {
  if (library.size() < circuit.library().size()) {
    throw std::invalid_argument("replacement library is missing cells");
  }
  Circuit clone(library);
  // Copy in id order (NOT topo order — imported circuits may have a
  // non-identity topological order) so node ids survive; deferred
  // construction tolerates fanins that have not been copied yet.
  const int n = circuit.num_nodes();
  for (NodeId id = 0; id < n; ++id) {
    const Node& node = circuit.node(id);
    NodeId copied;
    if (node.kind == NodeKind::kPrimaryInput) {
      copied = clone.add_input(node.name);
    } else {
      copied = clone.add_gate_deferred(node.cell, node.name);
      clone.set_wire_load(copied, node.wire_load);
    }
    if (copied != id) throw std::logic_error("clone produced different node ids");
  }
  for (NodeId id = 0; id < n; ++id) {
    const Node& node = circuit.node(id);
    if (node.kind != NodeKind::kGate) continue;
    for (std::size_t pin = 0; pin < node.fanins.size(); ++pin) {
      clone.set_fanin(id, static_cast<int>(pin), node.fanins[pin]);
    }
  }
  for (NodeId id : circuit.outputs()) clone.mark_output(id, circuit.node(id).pad_load);
  clone.finalize();
  return clone;
}

}  // namespace statsize::netlist
