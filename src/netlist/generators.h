// Circuit generators.
//
// make_tree_circuit reproduces the paper's Fig. 3 exactly (seven NAND2 gates:
// A,B,D,E at the leaves, C = NAND(A,B), F = NAND(D,E), G = NAND(C,F)).
//
// make_random_dag produces deterministic pseudo-random multi-level circuits
// with a controllable size/depth/fanin profile. The MCNC benchmark netlists
// the paper sizes (apex1, apex2, k2) are not redistributable here, so
// mcnc_like() provides presets with the same cell counts and plausible
// mapped-logic shape; DESIGN.md sec. 2 documents the substitution. Real BLIF
// netlists can be imported through netlist/blif.h instead.

#pragma once

#include <cstdint>
#include <string>

#include "netlist/circuit.h"

namespace statsize::netlist {

/// Names gates "A".."G" to match the paper's figure and Table 3.
Circuit make_tree_circuit(const CellLibrary& library = CellLibrary::standard());

/// A balanced tree of 2-input gates with `levels` levels (2^levels - 1 gates).
Circuit make_balanced_tree(int levels, const CellLibrary& library = CellLibrary::standard());

/// A linear chain of `length` identical gates (useful for closed-form tests:
/// means and variances simply accumulate along the chain).
Circuit make_chain(int length, const CellLibrary& library = CellLibrary::standard());

struct RandomDagParams {
  int num_gates = 100;
  int num_inputs = 16;
  int num_outputs = 8;
  int depth = 12;             ///< target logic depth (levels)
  std::uint64_t seed = 1;
  double locality = 0.7;      ///< probability a fanin comes from the previous level
  double wire_load_mean = 0.8;
  double pad_load = 1.5;
};

/// Deterministic levelized random DAG: gates are placed level by level; each
/// gate's cell (and hence fanin count) is drawn from a mapped-logic-like
/// distribution, and fanins are drawn from earlier levels with geometric
/// locality. Gates left without fanouts become primary outputs (in addition
/// to `num_outputs` randomly chosen top-level gates).
Circuit make_random_dag(const RandomDagParams& params,
                        const CellLibrary& library = CellLibrary::standard());

/// Presets sized like the paper's Table 1 circuits:
///   "apex1" -> 982 cells, "apex2" -> 117 cells, "k2" -> 1692 cells.
/// Throws std::invalid_argument for unknown names.
Circuit make_mcnc_like(const std::string& name,
                       const CellLibrary& library = CellLibrary::standard());

}  // namespace statsize::netlist
