// Flat, immutable structure-of-arrays compilation of a finalized Circuit —
// the cache-friendly timing graph every hot sweep traverses (DESIGN.md §8).
//
// The mutable netlist (Circuit/Node: per-node heap vectors, bounds-checked
// node() access, library chasing in load_capacitance) stays the build-time
// substrate; TimingView is what the timing engines actually walk:
//
//   * CSR fanin/fanout edge arrays (offsets + one flat NodeId array each),
//   * packed per-node kind / is_output / level / cell arrays,
//   * per-gate delay-model constants (t_int, c, c_in, area, Boolean function)
//     copied out of the CellLibrary once,
//   * per-node static load (wire_load + pad_load-if-output) and a
//     per-fanout-edge precomputed sink C_in, so load_capacitance (eq. 14's
//     C_load + sum C_in,i S_i) is a contiguous dot product with no Node or
//     CellLibrary chasing,
//   * the topological order, the gates-only topological order, the primary
//     outputs, and the CSR level partition the parallel LevelSchedule runs.
//
// Invariants vs. Circuit: edge and level orders are exactly the Node lists'
// orders (fanins pin order, fanouts ascending driver-derived order, levels in
// ascending topo position), and every stored double is a *copy* of the value
// the Node path reads — so any sweep retargeted from Node walks to the view
// performs the same floating-point operations in the same order and stays
// bit-identical. Circuit::finalize() compiles and caches the view
// (Circuit::view()); that shared snapshot is held const and never mutated,
// and a Circuit cannot change after finalize() (FinalizedMutationError), so
// the two can never disagree. Post-finalize (ECO) edits operate on value
// *copies* of the view instead: TimingView is all-vector and cheaply
// copyable, and update_node_params() mutates such a copy in place while
// tracking an epoch counter and a dirty set so downstream caches can
// repropagate exactly the edited cone (DESIGN.md §12).
//
// Compilation validates that every precomputed constant is finite and throws
// std::invalid_argument naming the offending cell/node otherwise; `statsize
// lint` diagnoses the same defect earlier as rule MOD005.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "netlist/cell_library.h"
#include "netlist/circuit.h"

namespace statsize::netlist {

/// Non-owning contiguous run of NodeIds (a CSR row of the view).
struct NodeSpan {
  const NodeId* ptr = nullptr;
  std::size_t count = 0;

  const NodeId* begin() const { return ptr; }
  const NodeId* end() const { return ptr + count; }
  std::size_t size() const { return count; }
  bool empty() const { return count == 0; }
  NodeId operator[](std::size_t i) const { return ptr[i]; }
  NodeId front() const { return ptr[0]; }
};

class TimingView {
 public:
  /// Compiles `circuit`, which must be finalized (std::logic_error otherwise)
  /// and must outlive nothing: the view copies everything it needs. Normally
  /// not called directly — finalize() builds one and Circuit::view() serves
  /// it. Throws std::invalid_argument if any compiled constant (cell t_int /
  /// c / c_in / area, wire or pad load) is non-finite.
  explicit TimingView(const Circuit& circuit);

  int num_nodes() const { return static_cast<int>(kind_.size()); }
  int num_gates() const { return num_gates_; }
  int num_inputs() const { return num_inputs_; }
  int num_levels() const { return static_cast<int>(level_offset_.size()) - 1; }

  NodeKind kind(NodeId id) const { return kind_[static_cast<std::size_t>(id)]; }
  bool is_gate(NodeId id) const { return kind(id) == NodeKind::kGate; }
  bool is_output(NodeId id) const { return is_output_[static_cast<std::size_t>(id)] != 0; }
  /// Topological level: 0 for primary inputs, 1 + max fanin level for gates.
  int level(NodeId id) const { return level_[static_cast<std::size_t>(id)]; }
  /// CellLibrary id of the gate's cell; -1 for primary inputs.
  int cell(NodeId id) const { return cell_[static_cast<std::size_t>(id)]; }
  CellFunction function(NodeId id) const { return function_[static_cast<std::size_t>(id)]; }

  // Per-gate delay-model constants (eq. 14), 0 for primary inputs.
  double t_int(NodeId id) const { return t_int_[static_cast<std::size_t>(id)]; }
  double drive_c(NodeId id) const { return drive_c_[static_cast<std::size_t>(id)]; }
  double c_in(NodeId id) const { return c_in_[static_cast<std::size_t>(id)]; }
  double area(NodeId id) const { return area_[static_cast<std::size_t>(id)]; }
  /// wire_load + pad_load-if-output: the constant part of eq. 14's C_load.
  double static_load(NodeId id) const { return static_load_[static_cast<std::size_t>(id)]; }

  /// Gate `id`'s delay-model constants as one record (0s for inputs).
  NodeParams node_params(NodeId id) const {
    const std::size_t i = static_cast<std::size_t>(id);
    return {t_int_[i], drive_c_[i], c_in_[i], area_[i]};
  }

  // --- Post-finalize edit protocol (DESIGN.md §12) --------------------------
  //
  // The view Circuit::view() serves stays an immutable snapshot; ECO edits
  // mutate a value *copy* through update_node_params. Each successful edit
  // bumps epoch() and records the node in dirty_nodes(), the cumulative set
  // a cache consumer (ssta::IncrementalEngine, core::ReducedEvaluator)
  // drains with clear_dirty() after repropagating — a stale cache is
  // detectable by epoch mismatch instead of silently wrong.

  /// Replaces gate `id`'s delay-model constants: t_int/c/c_in/area, plus the
  /// derived per-edge pin cap on every fanin→id fanout edge (a gate wired
  /// twice to one driver has both edges rewritten). Throws
  /// std::invalid_argument — view unchanged — if `id` is not a gate or any
  /// value is non-finite (the same validation compilation applies).
  void update_node_params(NodeId id, const NodeParams& params);

  /// Monotone edit counter: 0 for a freshly compiled (or copied-from-
  /// pristine) view, +1 per successful update_node_params.
  std::uint64_t epoch() const { return epoch_; }

  /// Nodes edited since the last clear_dirty(), deduplicated, in first-edit
  /// order. Dirtiness covers the node's *own* constants; consumers widen to
  /// the delay-dirty frontier themselves (edited ∪ their gate fanins — a
  /// c_in change shifts every driver's load through the rewritten edge cap).
  const std::vector<NodeId>& dirty_nodes() const { return dirty_; }

  /// Acknowledges dirty_nodes() as repropagated; epoch() keeps its value.
  void clear_dirty();

  /// Fanins of `id` in pin order (empty for primary inputs).
  NodeSpan fanins(NodeId id) const {
    const std::size_t i = static_cast<std::size_t>(id);
    return {fanin_.data() + fanin_offset_[i], fanin_offset_[i + 1] - fanin_offset_[i]};
  }

  /// Fanout gates of `id`, in the same order as Node::fanouts.
  NodeSpan fanouts(NodeId id) const {
    const std::size_t i = static_cast<std::size_t>(id);
    return {fanout_.data() + fanout_offset_[i], fanout_offset_[i + 1] - fanout_offset_[i]};
  }

  /// Precomputed sink-pin capacitance (C_in at S = 1) per fanout edge of
  /// `id`, aligned with fanouts(id).
  const double* fanout_cin(NodeId id) const {
    return fanout_cin_.data() + fanout_offset_[static_cast<std::size_t>(id)];
  }

  /// Total load at `id` under `speed` (indexed by NodeId): eq. 14's
  /// C_load + sum C_in,i S_i as one contiguous dot product over the node's
  /// fanout edges. Identical arithmetic and edge order to the Node walk.
  double load_capacitance(NodeId id, const double* speed) const {
    const std::size_t i = static_cast<std::size_t>(id);
    double cap = static_load_[i];
    const std::size_t end = fanout_offset_[i + 1];
    for (std::size_t e = fanout_offset_[i]; e < end; ++e) {
      cap += fanout_cin_[e] * speed[static_cast<std::size_t>(fanout_[e])];
    }
    return cap;
  }

  /// Batched eq. 14 over every node at once: `cap[id]` receives the same
  /// value load_capacitance(id, speed) returns, for all num_nodes() ids.
  /// Restructured for SIMD — one flat pass computes every fanout edge's
  /// C_in,e * S_sink product (a long contiguous multiply the compiler
  /// auto-vectorizes, instead of num_nodes short gather loops), then each
  /// node left-folds its own edge products in edge order seeded with its
  /// static load. Same multiplications, same per-node addition order as the
  /// per-node loop, hence bit-identical results.
  void batch_load_capacitance(const double* speed, double* cap) const;

  /// Every node, fanins before fanouts (Circuit::topo_order's order).
  const std::vector<NodeId>& topo_order() const { return topo_; }

  /// The gates of topo_order() in the same relative order — the serial
  /// sweeps' iteration set, with the kind branch compiled out.
  const std::vector<NodeId>& gates_in_topo_order() const { return gate_topo_; }

  /// Primary outputs in mark_output order (the eq. 18a fold order).
  const std::vector<NodeId>& outputs() const { return outputs_; }

  /// Gates of level `l` (0-based) in ascending topo position — the same
  /// partition Circuit::gate_levels() holds, as one flat CSR array.
  NodeSpan level_gates(int l) const {
    const std::size_t k = static_cast<std::size_t>(l);
    return {level_gate_.data() + level_offset_[k], level_offset_[k + 1] - level_offset_[k]};
  }

 private:
  int num_gates_ = 0;
  int num_inputs_ = 0;

  std::uint64_t epoch_ = 0;
  std::vector<NodeId> dirty_;               ///< first-edit order, deduplicated
  std::vector<unsigned char> dirty_mask_;   ///< lazily sized; dedup for dirty_

  std::vector<NodeKind> kind_;
  std::vector<unsigned char> is_output_;
  std::vector<int> level_;
  std::vector<int> cell_;
  std::vector<CellFunction> function_;

  std::vector<double> t_int_;
  std::vector<double> drive_c_;
  std::vector<double> c_in_;
  std::vector<double> area_;
  std::vector<double> static_load_;

  std::vector<std::size_t> fanin_offset_;  ///< size num_nodes + 1
  std::vector<NodeId> fanin_;
  std::vector<std::size_t> fanout_offset_;  ///< size num_nodes + 1
  std::vector<NodeId> fanout_;
  std::vector<double> fanout_cin_;  ///< aligned with fanout_

  std::vector<NodeId> topo_;
  std::vector<NodeId> gate_topo_;
  std::vector<NodeId> outputs_;
  std::vector<std::size_t> level_offset_;  ///< size num_levels + 1
  std::vector<NodeId> level_gate_;
};

/// Structural analytics over a compiled TimingView — the raw numbers the
/// pre-solve audit (`statsize audit`, rules GRF0xx) and the parallel
/// granularity advisor judge. Everything here is a pure function of the CSR
/// arrays: no timing model is evaluated.
struct TimingViewStats {
  int num_nodes = 0;
  int num_gates = 0;
  int num_inputs = 0;
  int num_outputs = 0;
  std::size_t num_edges = 0;  ///< fanin edges (== fanout edges)

  // Level-width histogram: width of each gate level, plus its summary.
  std::vector<std::size_t> level_widths;
  std::size_t min_level_width = 0;
  std::size_t max_level_width = 0;
  double mean_level_width = 0.0;

  // Fanout skew: a few very-high-fanout nets serialize scatter folds and
  // unbalance level chunks.
  std::size_t max_fanout = 0;
  NodeId max_fanout_node = kInvalidNode;
  double mean_gate_fanout = 0.0;

  // Reconvergence: the first Betti number of the underlying undirected graph
  // (edges - nodes + weakly-connected components) counts independent
  // reconvergent path pairs — 0 for a tree/forest. High ratios mean the
  // independence-SSTA correlation error grows (PAPERS.md, canonical SSTA).
  std::size_t reconvergence_count = 0;
  double reconvergence_ratio = 0.0;  ///< count / max(1, num_edges)
  int num_components = 0;

  // Max-cone statistics over the sampled primary outputs: the transitive
  // fanin cone is the unit of work an incremental (ECO) re-analysis touches.
  std::size_t max_cone_size = 0;  ///< nodes in the largest sampled cone
  NodeId max_cone_output = kInvalidNode;
  double mean_cone_size = 0.0;
  int sampled_outputs = 0;  ///< cones actually traversed (capped for scale)
};

/// Computes structural statistics in O(edges + sampled_outputs * cone size).
/// At most `max_cone_samples` output cones are traversed (evenly strided when
/// the circuit has more outputs); 0 skips cone statistics entirely.
TimingViewStats compute_view_stats(const TimingView& view, int max_cone_samples = 64);

/// Self-check of the CSR invariants the parallel sweeps rely on (offsets
/// monotone and exactly tiling, edge targets in range, fanin/fanout symmetry,
/// topological order consistent with edges, level partition matching the
/// per-node level array, every gate in exactly one level). Returns one
/// human-readable violation description per defect, empty when sound. The
/// audit reports violations as rule GRF001; a non-empty result means the
/// view (or the Circuit finalize that built it) has a bug.
std::vector<std::string> check_view_invariants(const TimingView& view);

}  // namespace statsize::netlist
