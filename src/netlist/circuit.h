// Combinational circuit DAG — the structural substrate the timing engines and
// the sizing formulation operate on.
//
// The graph distinguishes primary inputs (schedule-time sources) from gates.
// Primary outputs are gates (or inputs) flagged as driving an output pad; the
// paper takes the statistical maximum over exactly these nodes to form the
// total circuit delay distribution (sec. 4).
//
// A circuit is built incrementally (add_input / add_gate / mark_output) and
// then frozen by finalize(), which derives fanout lists, computes a
// topological order, and validates the structure (pin counts, acyclicity,
// no dangling gates). Mutating calls after finalize() throw.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "netlist/cell_library.h"

namespace statsize::netlist {

class TimingView;

using NodeId = std::int32_t;
inline constexpr NodeId kInvalidNode = -1;

enum class NodeKind : std::uint8_t { kPrimaryInput, kGate };

/// Thrown by every structural mutator once finalize() has run. The compiled
/// TimingView served by view() is a snapshot; letting add_gate/set_fanin/...
/// succeed after finalize() would leave it silently stale. Post-finalize
/// edits go through a TimingView *copy* instead (update_node_params — the
/// edit→invalidate→repropagate path, DESIGN.md §12), which the message names
/// so callers hitting this learn the sanctioned route. Derives from
/// std::runtime_error, matching what require_mutable historically threw.
class FinalizedMutationError : public std::runtime_error {
 public:
  explicit FinalizedMutationError(const std::string& operation)
      : std::runtime_error("Circuit::" + operation +
                           ": circuit is finalized; no further edits allowed. Post-finalize "
                           "parameter edits go through a TimingView copy "
                           "(TimingView::update_node_params / ssta::IncrementalEngine), which "
                           "tracks its own epoch and dirty set instead of staling view().") {}
};

/// Per-gate delay-model constants of eq. 14 as one editable record: the unit
/// a post-finalize library edit replaces via TimingView::update_node_params.
/// Matches the CellType fields the view compiled (t_int, c, c_in, area).
struct NodeParams {
  double t_int = 0.0;  ///< intrinsic delay
  double c = 0.0;      ///< drive "resistance" constant (eq. 14's c)
  double c_in = 0.0;   ///< input pin capacitance at S = 1
  double area = 0.0;   ///< cell area at S = 1
};

struct Node {
  NodeKind kind = NodeKind::kGate;
  int cell = -1;  ///< id into the circuit's CellLibrary; -1 for inputs
  std::string name;
  std::vector<NodeId> fanins;
  std::vector<NodeId> fanouts;  ///< derived by finalize()
  bool is_output = false;
  double wire_load = 0.0;  ///< C_load: wiring capacitance on this node's output
  double pad_load = 0.0;   ///< extra capacitance when driving a primary output
};

class Circuit {
 public:
  explicit Circuit(const CellLibrary& library) : library_(&library) {}

  NodeId add_input(std::string name);

  /// Adds a gate of type `cell` driven by `fanins` (inputs or earlier gates).
  /// An empty name is auto-generated ("g<N>").
  NodeId add_gate(int cell, std::vector<NodeId> fanins, std::string name = {});

  /// Adds a gate with every fanin pin unconnected (kInvalidNode), to be wired
  /// later with set_fanin. Unlike add_gate this permits forward references,
  /// which importers need for netlists listed out of dependency order; it is
  /// also the only way to build a cyclic graph for the analyzer to diagnose.
  NodeId add_gate_deferred(int cell, std::string name = {});

  /// Wires pin `pin` of gate `id` to `driver` (any existing node, including
  /// ones added after `id`).
  void set_fanin(NodeId id, int pin, NodeId driver);

  /// Flags `id` as driving a primary output pad with capacitance `pad_load`.
  void mark_output(NodeId id, double pad_load = 1.0);

  void set_wire_load(NodeId id, double load);

  /// Freezes the circuit: derives fanouts, topologically sorts, validates,
  /// and compiles the flat TimingView every hot sweep runs on (see view()).
  /// Validation runs through analyze::lint_circuit_structure, so the thrown
  /// std::runtime_error lists every structural error at once and names the
  /// offending nodes (including the actual gates forming a combinational
  /// cycle). Circuits built with fanin-before-fanout ordering keep the
  /// identity topological order; deferred construction gets the
  /// lexicographically smallest valid order. Non-finite cell constants or
  /// loads make the view compile throw std::invalid_argument (rule MOD005
  /// reports them at lint time).
  void finalize();

  bool finalized() const { return finalized_; }

  /// The flat structure-of-arrays timing graph compiled by finalize() —
  /// CSR edges, packed node attributes, precomputed loads (timing_view.h).
  /// Immutable and shared by value-copies of this circuit. Throws until
  /// finalize() has run.
  const TimingView& view() const;

  const CellLibrary& library() const { return *library_; }
  const Node& node(NodeId id) const { return nodes_.at(static_cast<std::size_t>(id)); }
  const CellType& cell_of(NodeId id) const { return library_->cell(node(id).cell); }

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_gates() const { return num_gates_; }
  int num_inputs() const { return num_inputs_; }
  const std::vector<NodeId>& outputs() const { return outputs_; }

  /// All nodes, inputs first is NOT guaranteed — use topo_order for
  /// dependency-respecting traversal (every fanin precedes its fanouts).
  const std::vector<NodeId>& topo_order() const;

  /// Topological level partition of the gates, cached by finalize():
  /// gate_levels()[k] holds every gate whose longest path from a primary
  /// input is k+1 edges, in ascending topological-order position. Gates in
  /// one level have no dependencies on each other — the parallel runtime's
  /// LevelSchedule executes them concurrently (see src/runtime/).
  const std::vector<std::vector<NodeId>>& gate_levels() const;

  /// Topological level of node `id` (0 for primary inputs).
  int node_level(NodeId id) const;

  /// Total load capacitance seen by node `id` at the given speed factors:
  /// wire + pad + sum over fanout gates of C_in * S_fanout (eq. 14's
  /// C_load + sum C_in,i S_i). `speed` is indexed by NodeId; inputs ignore it.
  double load_capacitance(NodeId id, const std::vector<double>& speed) const;

  /// Logic depth in gate levels (longest input-to-output path).
  int depth() const;

 private:
  /// Throws FinalizedMutationError naming `operation` once finalize() ran.
  void require_mutable(const char* operation) const;
  void require_finalized() const;

  const CellLibrary* library_;
  std::shared_ptr<const TimingView> view_;  ///< compiled by finalize()
  std::vector<Node> nodes_;
  std::vector<NodeId> outputs_;
  std::vector<NodeId> topo_;
  std::vector<std::vector<NodeId>> gate_levels_;  ///< derived by finalize()
  std::vector<int> node_level_;                   ///< derived by finalize()
  int num_gates_ = 0;
  int num_inputs_ = 0;
  bool finalized_ = false;
};

/// Aggregate structural statistics (used by benches to report workload shape).
struct CircuitStats {
  int num_gates = 0;
  int num_inputs = 0;
  int num_outputs = 0;
  int depth = 0;
  double avg_fanin = 0.0;
  double avg_fanout = 0.0;
  int max_fanout = 0;
};

CircuitStats compute_stats(const Circuit& circuit);

/// Structural copy of `circuit` bound to another library (cells matched by
/// id, so `library` must be index-compatible — e.g. produced by
/// scale_library_delays). The caller keeps `library` alive for the clone's
/// lifetime.
Circuit clone_with_library(const Circuit& circuit, const CellLibrary& library);

}  // namespace statsize::netlist
