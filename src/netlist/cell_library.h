// Characterized cell library for the sizable-gate delay model of Berkelaar &
// Jess (EDAC'90), which the paper builds on (sec. 4, eq. 14):
//
//   t_cell = t_int + c * (C_load + sum_i C_in,i * S_i) / S_cell
//
// Every cell carries the constants of that model: the intrinsic delay t_int
// (invariant under sizing — the resistance decrease cancels the internal
// capacitance increase), the delay-per-capacitance constant c, the input
// capacitance C_in presented to drivers at S = 1 (it scales linearly with the
// cell's own speed factor), and the area at S = 1 (area scales linearly with
// S as shown in [3] and [8]).
//
// Units are normalized: delays in "nominal inverter delays", capacitances in
// "inverter input capacitances". The paper's own constants are not published;
// DESIGN.md records this substitution.

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace statsize::netlist {

/// Boolean function of a cell — needed by the switching-activity engine that
/// feeds power-weighted sizing (paper sec. 4: weights of the sum-of-speed
/// objective "can model ... power" when they carry capacitance and switching
/// activity under the zero-delay model).
enum class CellFunction {
  kBuf,    ///< y = a
  kInv,    ///< y = !a
  kAnd,    ///< y = a & b & ...
  kNand,   ///< y = !(a & b & ...)
  kOr,     ///< y = a | b | ...
  kNor,    ///< y = !(a | b | ...)
  kXor,    ///< y = a ^ b ^ ...
  kAoi21,  ///< y = !((a & b) | c)
  kOai21,  ///< y = !((a | b) & c)
};

struct CellType {
  std::string name;
  int num_inputs = 0;
  double t_int = 1.0;  ///< intrinsic delay, does not change while sizing
  double c = 1.0;      ///< propagation-delay-per-capacitance constant
  double c_in = 1.0;   ///< input (gate-oxide) capacitance per pin at S = 1
  double area = 1.0;   ///< cell area at S = 1
  CellFunction function = CellFunction::kNand;
};

/// Returns a copy of `library` with every cell's delay constants (t_int and
/// c) multiplied by `delay_factor`. Used to build worst-case corner libraries
/// (e.g. factor 1 + 3 kappa puts every gate at its mu + 3 sigma delay) for
/// the corner-methodology baseline the paper argues against.
class CellLibrary;
CellLibrary scale_library_delays(const CellLibrary& library, double delay_factor);

/// An immutable-after-construction registry of cell types. Cell ids are dense
/// indices assigned in insertion order.
class CellLibrary {
 public:
  /// Adds a cell; returns its id. Throws std::invalid_argument on duplicate
  /// names or non-positive electrical constants.
  int add(CellType cell);

  const CellType& cell(int id) const { return cells_.at(static_cast<std::size_t>(id)); }
  int size() const { return static_cast<int>(cells_.size()); }

  /// Id of the cell named `name`, or -1 if absent.
  int find(std::string_view name) const;

  /// Id of a generic `n`-input cell (used when importing BLIF networks whose
  /// nodes are arbitrary k-input functions), or -1 if the library has none.
  int cell_for_inputs(int n) const;

  /// The library used throughout the reproduction: INV/BUF plus NAND/NOR/
  /// AND/OR/XOR families up to 4 inputs, with constants chosen so the Fig. 3
  /// tree circuit lands in the paper's delay range.
  static const CellLibrary& standard();

 private:
  std::vector<CellType> cells_;
};

}  // namespace statsize::netlist
