#include "netlist/cell_library.h"

#include <stdexcept>

namespace statsize::netlist {

int CellLibrary::add(CellType cell) {
  if (cell.name.empty()) throw std::invalid_argument("cell name must be non-empty");
  if (find(cell.name) >= 0) throw std::invalid_argument("duplicate cell name: " + cell.name);
  if (cell.num_inputs < 1) throw std::invalid_argument("cell needs at least one input");
  if (cell.t_int <= 0.0 || cell.c <= 0.0 || cell.c_in <= 0.0 || cell.area <= 0.0) {
    throw std::invalid_argument("cell electrical constants must be positive");
  }
  cells_.push_back(std::move(cell));
  return static_cast<int>(cells_.size()) - 1;
}

int CellLibrary::find(std::string_view name) const {
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

int CellLibrary::cell_for_inputs(int n) const {
  // Prefer the NAND family (the paper's tree circuit is all NANDs), then any
  // cell with a matching pin count.
  const std::string nand_name = "NAND" + std::to_string(n);
  if (const int id = find(nand_name); id >= 0) return id;
  if (n == 1) {
    if (const int id = find("INV"); id >= 0) return id;
  }
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].num_inputs == n) return static_cast<int>(i);
  }
  return -1;
}

const CellLibrary& CellLibrary::standard() {
  static const CellLibrary lib = [] {
    CellLibrary l;
    // name, pins, t_int, c, c_in, area — normalized units. Multi-input cells
    // are intrinsically slower and present more pin capacitance; XOR is the
    // heaviest two-input function. Pin capacitances are deliberately small
    // relative to typical wire/pad loads (a wire-load-dominated regime, as in
    // the paper's era): this is what makes output-side upsizing profitable
    // and reproduces the Table 3 speed-factor ordering.
    l.add({"INV", 1, 0.60, 1.00, 0.65, 1.0, CellFunction::kInv});
    l.add({"BUF", 1, 1.00, 0.90, 0.65, 1.5, CellFunction::kBuf});
    l.add({"NAND2", 2, 1.00, 1.00, 0.80, 2.0, CellFunction::kNand});
    l.add({"NAND3", 3, 1.25, 1.10, 0.90, 3.0, CellFunction::kNand});
    l.add({"NAND4", 4, 1.50, 1.20, 1.00, 4.0, CellFunction::kNand});
    l.add({"NOR2", 2, 1.10, 1.10, 0.85, 2.0, CellFunction::kNor});
    l.add({"NOR3", 3, 1.40, 1.25, 0.95, 3.0, CellFunction::kNor});
    l.add({"NOR4", 4, 1.70, 1.40, 1.10, 4.0, CellFunction::kNor});
    l.add({"AND2", 2, 1.30, 1.00, 0.75, 2.5, CellFunction::kAnd});
    l.add({"OR2", 2, 1.40, 1.05, 0.80, 2.5, CellFunction::kOr});
    l.add({"XOR2", 2, 1.80, 1.15, 1.05, 3.5, CellFunction::kXor});
    l.add({"AOI21", 3, 1.35, 1.15, 0.90, 3.0, CellFunction::kAoi21});
    l.add({"OAI21", 3, 1.40, 1.15, 0.90, 3.0, CellFunction::kOai21});
    return l;
  }();
  return lib;
}

CellLibrary scale_library_delays(const CellLibrary& library, double delay_factor) {
  if (delay_factor <= 0.0) throw std::invalid_argument("delay factor must be positive");
  CellLibrary scaled;
  for (int i = 0; i < library.size(); ++i) {
    CellType cell = library.cell(i);
    cell.t_int *= delay_factor;
    cell.c *= delay_factor;
    scaled.add(std::move(cell));
  }
  return scaled;
}

}  // namespace statsize::netlist
