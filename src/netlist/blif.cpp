#include "netlist/blif.h"

#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace statsize::netlist {

namespace {

struct NamesNode {
  std::vector<std::string> fanins;
  std::string output;
  int line = 0;
};

struct BlifIr {
  std::string model = "top";
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  std::vector<NamesNode> nodes;
};

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> toks;
  std::istringstream iss(line);
  std::string t;
  while (iss >> t) toks.push_back(t);
  return toks;
}

[[noreturn]] void fail(int line, const std::string& what) {
  throw std::runtime_error("BLIF parse error at line " + std::to_string(line) + ": " + what);
}

BlifIr parse_ir(std::istream& in) {
  BlifIr ir;
  std::string raw;
  std::string logical;
  int line_no = 0;
  int logical_start = 0;
  bool saw_end = false;

  auto process = [&](const std::string& line, int at) {
    const std::vector<std::string> toks = tokenize(line);
    if (toks.empty()) return;
    const std::string& head = toks[0];
    if (head[0] != '.') return;  // truth-table row of the preceding .names
    if (head == ".model") {
      if (toks.size() >= 2) ir.model = toks[1];
    } else if (head == ".inputs") {
      ir.inputs.insert(ir.inputs.end(), toks.begin() + 1, toks.end());
    } else if (head == ".outputs") {
      ir.outputs.insert(ir.outputs.end(), toks.begin() + 1, toks.end());
    } else if (head == ".names") {
      if (toks.size() < 2) fail(at, ".names needs at least an output signal");
      NamesNode n;
      n.fanins.assign(toks.begin() + 1, toks.end() - 1);
      n.output = toks.back();
      n.line = at;
      ir.nodes.push_back(std::move(n));
    } else if (head == ".end") {
      saw_end = true;
    } else if (head == ".latch" || head == ".subckt" || head == ".gate") {
      fail(at, "unsupported construct " + head + " (combinational structural BLIF only)");
    }
    // Other dot-directives (.default_input_arrival etc.) are ignored.
  };

  while (std::getline(in, raw)) {
    ++line_no;
    if (const auto hash = raw.find('#'); hash != std::string::npos) raw.erase(hash);
    if (logical.empty()) logical_start = line_no;
    if (!raw.empty() && raw.back() == '\\') {
      raw.pop_back();
      logical += raw + " ";
      continue;
    }
    logical += raw;
    process(logical, logical_start);
    logical.clear();
    if (saw_end) break;
  }
  if (!logical.empty()) process(logical, logical_start);
  if (ir.outputs.empty()) throw std::runtime_error("BLIF has no .outputs");
  return ir;
}

}  // namespace

Circuit read_blif_raw(std::istream& in, const CellLibrary& library) {
  const BlifIr ir = parse_ir(in);

  // Pass 1: create every node (inputs, then one node per .names, in file
  // order). Constants (zero-fanin .names) become aux inputs so timing treats
  // them as time-zero sources. Deferred gate construction tolerates netlists
  // listed out of dependency order — and lets structurally broken ones (e.g.
  // combinational cycles) come out of the parser intact for the analyzer.
  Circuit c(library);
  std::map<std::string, NodeId> built;
  for (const std::string& s : ir.inputs) {
    const NodeId id = c.add_input(s);
    if (!built.emplace(s, id).second) throw std::runtime_error("duplicate input signal " + s);
  }
  for (const NamesNode& n : ir.nodes) {
    NodeId id;
    if (n.fanins.empty()) {
      id = c.add_input(n.output);
    } else {
      const int cell = library.cell_for_inputs(static_cast<int>(n.fanins.size()));
      if (cell < 0) {
        fail(n.line, "no library cell with " + std::to_string(n.fanins.size()) + " inputs");
      }
      id = c.add_gate_deferred(cell, n.output);
    }
    if (!built.emplace(n.output, id).second) {
      fail(n.line, "signal " + n.output + " defined twice");
    }
  }

  // Pass 2: wire fanin pins by name.
  for (const NamesNode& n : ir.nodes) {
    for (std::size_t pin = 0; pin < n.fanins.size(); ++pin) {
      const auto it = built.find(n.fanins[pin]);
      if (it == built.end()) fail(n.line, "signal " + n.fanins[pin] + " is never defined");
      c.set_fanin(built.at(n.output), static_cast<int>(pin), it->second);
    }
  }

  for (const std::string& s : ir.outputs) {
    const auto it = built.find(s);
    if (it == built.end()) throw std::runtime_error("output signal " + s + " is never defined");
    c.mark_output(it->second);
  }
  return c;
}

Circuit read_blif(std::istream& in, const CellLibrary& library) {
  Circuit c = read_blif_raw(in, library);
  c.finalize();
  return c;
}

Circuit read_blif_file(const std::string& path, const CellLibrary& library) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open BLIF file: " + path);
  return read_blif(in, library);
}

void write_blif(std::ostream& out, const Circuit& circuit, const std::string& model) {
  out << ".model " << model << "\n.inputs";
  for (NodeId id : circuit.topo_order()) {
    if (circuit.node(id).kind == NodeKind::kPrimaryInput) out << " " << circuit.node(id).name;
  }
  out << "\n.outputs";
  for (NodeId id : circuit.outputs()) out << " " << circuit.node(id).name;
  out << "\n";
  for (NodeId id : circuit.topo_order()) {
    const Node& n = circuit.node(id);
    if (n.kind != NodeKind::kGate) continue;
    out << ".names";
    for (NodeId f : n.fanins) out << " " << circuit.node(f).name;
    out << " " << n.name << "\n";
    // NAND truth table: output is 1 whenever any input is 0.
    const std::size_t pins = n.fanins.size();
    for (std::size_t i = 0; i < pins; ++i) {
      std::string row(pins, '-');
      row[i] = '0';
      out << row << " 1\n";
    }
  }
  out << ".end\n";
}

}  // namespace statsize::netlist
