#include "netlist/blif.h"

#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace statsize::netlist {

namespace {

struct NamesNode {
  std::vector<std::string> fanins;
  std::string output;
  int line = 0;
};

struct BlifIr {
  std::string model = "top";
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  std::vector<NamesNode> nodes;
};

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> toks;
  std::istringstream iss(line);
  std::string t;
  while (iss >> t) toks.push_back(t);
  return toks;
}

[[noreturn]] void fail(int line, const std::string& what) {
  throw std::runtime_error("BLIF parse error at line " + std::to_string(line) + ": " + what);
}

BlifIr parse_ir(std::istream& in) {
  BlifIr ir;
  std::string raw;
  std::string logical;
  int line_no = 0;
  int logical_start = 0;
  bool saw_end = false;

  auto process = [&](const std::string& line, int at) {
    const std::vector<std::string> toks = tokenize(line);
    if (toks.empty()) return;
    const std::string& head = toks[0];
    if (head[0] != '.') return;  // truth-table row of the preceding .names
    if (head == ".model") {
      if (toks.size() >= 2) ir.model = toks[1];
    } else if (head == ".inputs") {
      ir.inputs.insert(ir.inputs.end(), toks.begin() + 1, toks.end());
    } else if (head == ".outputs") {
      ir.outputs.insert(ir.outputs.end(), toks.begin() + 1, toks.end());
    } else if (head == ".names") {
      if (toks.size() < 2) fail(at, ".names needs at least an output signal");
      NamesNode n;
      n.fanins.assign(toks.begin() + 1, toks.end() - 1);
      n.output = toks.back();
      n.line = at;
      ir.nodes.push_back(std::move(n));
    } else if (head == ".end") {
      saw_end = true;
    } else if (head == ".latch" || head == ".subckt" || head == ".gate") {
      fail(at, "unsupported construct " + head + " (combinational structural BLIF only)");
    }
    // Other dot-directives (.default_input_arrival etc.) are ignored.
  };

  while (std::getline(in, raw)) {
    ++line_no;
    if (const auto hash = raw.find('#'); hash != std::string::npos) raw.erase(hash);
    if (logical.empty()) logical_start = line_no;
    if (!raw.empty() && raw.back() == '\\') {
      raw.pop_back();
      logical += raw + " ";
      continue;
    }
    logical += raw;
    process(logical, logical_start);
    logical.clear();
    if (saw_end) break;
  }
  if (!logical.empty()) process(logical, logical_start);
  if (ir.outputs.empty()) throw std::runtime_error("BLIF has no .outputs");
  return ir;
}

}  // namespace

Circuit read_blif(std::istream& in, const CellLibrary& library) {
  const BlifIr ir = parse_ir(in);

  // Index signal definitions.
  std::map<std::string, int> def;  // -1 = primary input, >= 0 = node index
  for (const std::string& s : ir.inputs) {
    if (!def.emplace(s, -1).second) throw std::runtime_error("duplicate input signal " + s);
  }
  for (std::size_t i = 0; i < ir.nodes.size(); ++i) {
    if (!def.emplace(ir.nodes[i].output, static_cast<int>(i)).second) {
      fail(ir.nodes[i].line, "signal " + ir.nodes[i].output + " defined twice");
    }
  }

  Circuit c(library);
  std::map<std::string, NodeId> built;
  for (const std::string& s : ir.inputs) built[s] = c.add_input(s);

  // Iterative DFS so deep netlists do not overflow the stack.
  enum class Mark : char { kNone, kOnStack, kDone };
  std::vector<Mark> mark(ir.nodes.size(), Mark::kNone);

  auto build_node = [&](int root) {
    std::vector<std::pair<int, std::size_t>> stack;  // node index, next fanin
    stack.emplace_back(root, 0);
    mark[static_cast<std::size_t>(root)] = Mark::kOnStack;
    while (!stack.empty()) {
      auto& [idx, next] = stack.back();
      const NamesNode& n = ir.nodes[static_cast<std::size_t>(idx)];
      if (next < n.fanins.size()) {
        const std::string& sig = n.fanins[next++];
        const auto it = def.find(sig);
        if (it == def.end()) fail(n.line, "signal " + sig + " is never defined");
        if (it->second < 0) continue;  // primary input, already built
        const int child = it->second;
        if (mark[static_cast<std::size_t>(child)] == Mark::kDone) continue;
        if (mark[static_cast<std::size_t>(child)] == Mark::kOnStack) {
          fail(n.line, "combinational cycle through signal " + sig);
        }
        mark[static_cast<std::size_t>(child)] = Mark::kOnStack;
        stack.emplace_back(child, 0);
        continue;
      }
      // All fanins realized: build this gate (constants become aux inputs so
      // timing treats them as time-zero sources).
      if (n.fanins.empty()) {
        built[n.output] = c.add_input(n.output);
      } else {
        const int cell = library.cell_for_inputs(static_cast<int>(n.fanins.size()));
        if (cell < 0) {
          fail(n.line, "no library cell with " + std::to_string(n.fanins.size()) + " inputs");
        }
        std::vector<NodeId> fanins;
        fanins.reserve(n.fanins.size());
        for (const std::string& sig : n.fanins) fanins.push_back(built.at(sig));
        built[n.output] = c.add_gate(cell, std::move(fanins), n.output);
      }
      mark[static_cast<std::size_t>(idx)] = Mark::kDone;
      stack.pop_back();
    }
  };

  for (std::size_t i = 0; i < ir.nodes.size(); ++i) {
    if (mark[i] == Mark::kNone) build_node(static_cast<int>(i));
  }

  for (const std::string& s : ir.outputs) {
    const auto it = built.find(s);
    if (it == built.end()) throw std::runtime_error("output signal " + s + " is never defined");
    c.mark_output(it->second);
  }
  c.finalize();
  return c;
}

Circuit read_blif_file(const std::string& path, const CellLibrary& library) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open BLIF file: " + path);
  return read_blif(in, library);
}

void write_blif(std::ostream& out, const Circuit& circuit, const std::string& model) {
  out << ".model " << model << "\n.inputs";
  for (NodeId id : circuit.topo_order()) {
    if (circuit.node(id).kind == NodeKind::kPrimaryInput) out << " " << circuit.node(id).name;
  }
  out << "\n.outputs";
  for (NodeId id : circuit.outputs()) out << " " << circuit.node(id).name;
  out << "\n";
  for (NodeId id : circuit.topo_order()) {
    const Node& n = circuit.node(id);
    if (n.kind != NodeKind::kGate) continue;
    out << ".names";
    for (NodeId f : n.fanins) out << " " << circuit.node(f).name;
    out << " " << n.name << "\n";
    // NAND truth table: output is 1 whenever any input is 0.
    const std::size_t pins = n.fanins.size();
    for (std::size_t i = 0; i < pins; ++i) {
      std::string row(pins, '-');
      row[i] = '0';
      out << row << " 1\n";
    }
  }
  out << ".end\n";
}

}  // namespace statsize::netlist
