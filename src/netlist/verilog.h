// Minimal structural (gate-level) Verilog reader.
//
// Accepts the netlist subset that mapped-logic flows emit:
//
//   module top (a, b, y);
//     input a, b;
//     output y;
//     wire n1;
//     NAND2 g1 (.A(a), .B(b), .Y(n1));   // named connections, or
//     INV   g2 (y, n1);                  // positional: output first
//   endmodule
//
// Cell names resolve against the library (exact match first, then a generic
// cell with the right pin count). For named connections the output pin is
// recognized as Y, Z, OUT, O or Q (case-insensitive); all other pins are
// inputs in order of appearance. Line (//) and block (/* */) comments are
// stripped. Unsupported constructs (behavioral code, buses, parameters,
// hierarchy) are hard errors with line numbers — silently skipping them
// would corrupt timing.

#pragma once

#include <iosfwd>
#include <string>

#include "netlist/circuit.h"

namespace statsize::netlist {

Circuit read_verilog(std::istream& in, const CellLibrary& library = CellLibrary::standard());

Circuit read_verilog_file(const std::string& path,
                          const CellLibrary& library = CellLibrary::standard());

/// Writes `circuit` as structural Verilog with named connections
/// (.A/.B/.C/.D inputs in fanin order, .Y output).
void write_verilog(std::ostream& out, const Circuit& circuit,
                   const std::string& module_name = "top");

}  // namespace statsize::netlist
