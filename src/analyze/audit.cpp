#include "analyze/audit.h"

#include <fstream>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "analyze/circuit_lint.h"
#include "analyze/model_audit.h"
#include "core/full_space.h"
#include "netlist/blif.h"
#include "netlist/timing_view.h"
#include "netlist/verilog.h"
#include "nlp/auglag.h"
#include "util/json.h"

namespace statsize::analyze {

namespace {

void audit_nlp_instance(AuditResult& result, const netlist::Circuit& circuit,
                        const AuditOptions& options) {
  core::SizingSpec spec;
  spec.sigma_model = options.sigma_model;
  spec.max_speed = options.max_speed;
  // The audit spec mirrors audit_model's: a mu + 3 sigma objective and a
  // delay constraint, so the instance materializes every element family and
  // the slack variable the solver will actually see. The bound's value is
  // irrelevant to the structural rules — 1.0 keeps the build evaluation-free.
  spec.objective = core::Objective::min_delay(3.0);
  spec.delay_constraint = core::DelayConstraint::at_most(1.0, 3.0);

  const int num_formulations = options.audit_nary ? 2 : 1;
  for (int variant = 0; variant < num_formulations; ++variant) {
    spec.nary_fanin_max = variant == 1;
    const char* what = variant == 1 ? "full-space, n-ary max" : "full-space, pairwise max";
    const core::FullSpaceFormulation form = core::build_full_space(circuit, spec, 1.0);
    result.report.merge(audit_nlp_problem(*form.problem, what, options.nlp));
    if (variant == 0) {
      result.has_nlp = true;
      result.nlp_vars = form.problem->num_vars();
      result.nlp_constraints = form.problem->num_constraints();
      result.nlp_elements = form.problem->num_owned_elements();
      // The solver's first Psi state: zero multipliers, default rho.
      const nlp::AugLagModel model(
          *form.problem,
          std::vector<double>(static_cast<std::size_t>(form.problem->num_constraints()), 0.0),
          nlp::AugLagOptions{}.initial_rho);
      result.report.merge(audit_auglag_state(model, what));
    }
  }
}

}  // namespace

AuditResult audit_circuit(netlist::Circuit& circuit, const AuditOptions& options) {
  AuditResult result;
  // Structural + compilability gate: an un-finalizable circuit has no
  // TimingView and no NLP instance to audit, so those findings are the audit.
  result.report = lint_circuit_structure(circuit);
  result.report.merge(audit_view_compilability(circuit));
  if (result.report.has_errors()) {
    result.report.sort();
    return result;
  }
  if (!circuit.finalized()) circuit.finalize();

  result.report.merge(
      audit_graph(circuit.view(), options.graph, &result.stats, &result.advice));
  result.has_view = true;

  if (options.nlp_audit && circuit.num_gates() > 0) {
    audit_nlp_instance(result, circuit, options);
  }
  result.report.sort();
  return result;
}

AuditResult audit_file(const std::string& path, const netlist::CellLibrary& library,
                       const AuditOptions& options) {
  const bool verilog = path.size() >= 2 && path.compare(path.size() - 2, 2, ".v") == 0;
  AuditResult result;
  std::ifstream in(path);
  if (!in) {
    result.report.add(verilog ? "PAR002" : "PAR001", path, "cannot open file");
    return result;
  }
  try {
    netlist::Circuit circuit =
        verilog ? netlist::read_verilog(in, library) : netlist::read_blif_raw(in, library);
    return audit_circuit(circuit, options);
  } catch (const std::exception& e) {
    result.report.add(verilog ? "PAR002" : "PAR001", path, e.what());
    return result;
  }
}

void print_audit(std::ostream& out, const AuditResult& result) {
  result.report.print(out);
  if (result.has_view) {
    const netlist::TimingViewStats& s = result.stats;
    out << "graph: " << s.num_gates << " gates, " << s.num_edges << " edges, "
        << s.level_widths.size() << " levels (width min/mean/max " << s.min_level_width << "/"
        << s.mean_level_width << "/" << s.max_level_width << ")\n";
    out << "graph: reconvergence " << s.reconvergence_count << " (ratio " << s.reconvergence_ratio
        << "), max fanout " << s.max_fanout << ", max cone " << s.max_cone_size << " over "
        << s.sampled_outputs << " sampled outputs\n";
    const GranularityAdvice& a = result.advice;
    out << "advisor: serial cutoff " << a.serial_cutoff << " (threads " << a.model.threads
        << ", grain " << a.model.grain << ", dispatch " << a.model.chunk_dispatch_ns
        << " ns, gate " << a.model.gate_cost_ns << " ns): " << a.serial_levels << "/"
        << a.levels.size() << " levels serial, " << 100.0 * a.serial_gate_fraction
        << "% of gates\n";
    out << "advisor: est sweep " << a.est_naive_parallel_ns / 1e3 << " us naive-parallel vs "
        << a.est_advised_ns / 1e3 << " us advised\n";
  }
  if (result.has_nlp) {
    out << "nlp: " << result.nlp_vars << " variables, " << result.nlp_constraints
        << " constraints, " << result.nlp_elements << " elements (pairwise-max formulation)\n";
  }
}

void write_audit_json(std::ostream& out, const AuditResult& result, std::string_view target) {
  util::JsonWriter w(out);
  w.begin_object();
  w.key("target").value(target);
  result.report.write_json_members(w);

  if (result.has_view) {
    const netlist::TimingViewStats& s = result.stats;
    w.key("graph_stats").begin_object();
    w.key("num_nodes").value(s.num_nodes);
    w.key("num_gates").value(s.num_gates);
    w.key("num_inputs").value(s.num_inputs);
    w.key("num_outputs").value(s.num_outputs);
    w.key("num_edges").value(static_cast<long>(s.num_edges));
    w.key("num_levels").value(static_cast<long>(s.level_widths.size()));
    w.key("min_level_width").value(static_cast<long>(s.min_level_width));
    w.key("mean_level_width").value(s.mean_level_width);
    w.key("max_level_width").value(static_cast<long>(s.max_level_width));
    w.key("max_fanout").value(static_cast<long>(s.max_fanout));
    w.key("mean_gate_fanout").value(s.mean_gate_fanout);
    w.key("reconvergence_count").value(static_cast<long>(s.reconvergence_count));
    w.key("reconvergence_ratio").value(s.reconvergence_ratio);
    w.key("num_components").value(s.num_components);
    w.key("max_cone_size").value(static_cast<long>(s.max_cone_size));
    w.key("mean_cone_size").value(s.mean_cone_size);
    w.key("sampled_outputs").value(s.sampled_outputs);
    w.key("level_widths").begin_array();
    for (std::size_t width : s.level_widths) w.value(static_cast<long>(width));
    w.end_array();
    w.end_object();

    const GranularityAdvice& a = result.advice;
    w.key("granularity_advisor").begin_object();
    w.key("chunk_dispatch_ns").value(a.model.chunk_dispatch_ns);
    w.key("gate_cost_ns").value(a.model.gate_cost_ns);
    w.key("grain").value(static_cast<long>(a.model.grain));
    w.key("threads").value(a.model.threads);
    w.key("serial_cutoff").value(static_cast<long>(a.serial_cutoff));
    w.key("serial_levels").value(a.serial_levels);
    w.key("serial_gates").value(static_cast<long>(a.serial_gates));
    w.key("serial_gate_fraction").value(a.serial_gate_fraction);
    w.key("est_naive_parallel_ns").value(a.est_naive_parallel_ns);
    w.key("est_advised_ns").value(a.est_advised_ns);
    w.key("levels").begin_array();
    for (const LevelDecision& d : a.levels) {
      w.begin_object();
      w.key("level").value(d.level);
      w.key("width").value(static_cast<long>(d.width));
      w.key("parallel").value(d.parallel);
      w.key("serial_ns").value(d.serial_ns);
      w.key("parallel_ns").value(d.parallel_ns);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }

  if (result.has_nlp) {
    w.key("nlp_instance").begin_object();
    w.key("variables").value(result.nlp_vars);
    w.key("constraints").value(result.nlp_constraints);
    w.key("elements").value(result.nlp_elements);
    w.end_object();
  }

  w.end_object();
  out << "\n";
}

}  // namespace statsize::analyze
