// NLP instance audits (rules NLP001..NLP008) — the no-evaluation half of the
// pre-solve static audit (`statsize audit`).
//
// Where the MOD0xx model audits *evaluate* the formulation (finite-difference
// derivative sweeps, SSTA propagation), these rules inspect an nlp::Problem /
// nlp::AugLagModel instance purely structurally: bound boxes, element arities,
// variable reference graphs, and magnitude-scale estimates derived from the
// coefficients the builder baked in (for the sizing formulation those are the
// library constants t_int / c / c_in and the sigma-model terms). A mis-posed
// instance caught here costs microseconds; the same defect inside the solver
// costs a plausible-but-wrong size vector.

#pragma once

#include <string_view>

#include "analyze/diagnostic.h"
#include "nlp/auglag.h"
#include "nlp/problem.h"

namespace statsize::analyze {

struct NlpAuditOptions {
  /// NLP006 fires when the estimated objective scale and the median
  /// constraint scale differ by more than this factor (either direction).
  double scale_ratio_threshold = 1e6;
  /// NLP006 also fires when the constraint scales themselves spread wider
  /// than this factor (best- vs worst-scaled constraint).
  double constraint_spread_threshold = 1e8;
};

/// Characteristic magnitude of a FunctionGroup, estimated without evaluating
/// it: max over |constant|, |linear coef| * typical variable magnitude, and
/// element |weight|. Typical variable magnitude comes from the bound box
/// (falling back to the start value, then 1). Exposed for tests.
double estimate_group_scale(const nlp::Problem& problem, const nlp::FunctionGroup& group);

/// Runs NLP001..NLP007 over `problem`. `what` names the instance in loci
/// (e.g. "full-space, pairwise max"). Never evaluates any element function.
Report audit_nlp_problem(const nlp::Problem& problem, std::string_view what,
                         const NlpAuditOptions& options = {});

/// NLP008 over a constructed AugLagModel: multipliers must be finite and the
/// penalty rho positive and finite. Never evaluates the model.
Report audit_auglag_state(const nlp::AugLagModel& model, std::string_view what);

}  // namespace statsize::analyze
