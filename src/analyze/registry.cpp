#include "analyze/registry.h"

namespace statsize::analyze {

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> catalog = {
      // -- circuit structure ------------------------------------------------
      {"CIR001", "circuit", Severity::kError, "combinational-cycle",
       "the netlist contains a combinational feedback loop (the DAG premise of eq. 4/18 fails)"},
      {"CIR002", "circuit", Severity::kError, "unconnected-fanin-pin",
       "a gate input pin is unwired or references a node id outside the circuit"},
      {"CIR003", "circuit", Severity::kError, "pin-count-mismatch",
       "a gate's fanin count disagrees with its library cell, or its cell id is invalid"},
      {"CIR004", "circuit", Severity::kError, "no-primary-outputs",
       "no node is marked as a primary output, so the circuit delay max (eq. 18a) is empty"},
      {"CIR005", "circuit", Severity::kError, "unreachable-gate",
       "a gate drives other gates but none of its transitive fanout reaches a primary output"},
      {"CIR006", "circuit", Severity::kError, "fanout-free-gate",
       "a non-output gate drives nothing (its speed factor would be an unconstrained variable)"},
      {"CIR007", "circuit", Severity::kNote, "floating-input",
       "a primary input drives no gate and is not an output"},
      {"CIR008", "circuit", Severity::kError, "negative-load",
       "a wire or pad capacitance is negative (eq. 14 requires non-negative loads)"},
      {"CIR009", "circuit", Severity::kNote, "unloaded-output",
       "a primary-output gate has zero pad load (upsizing it is free, which is rarely intended)"},
      {"CIR010", "circuit", Severity::kWarning, "duplicate-name",
       "two nodes share a name, making reports and size tables ambiguous"},
      // -- determinism lint (tools/detlint over the sources) -----------------
      {"DET001", "determinism", Severity::kError, "unordered-container",
       "unordered_{map,set} iteration order is hash-seed dependent; an accumulation fed from "
       "it breaks the bit-identical parallelism contract"},
      {"DET002", "determinism", Severity::kError, "wall-clock-or-rand",
       "rand()/srand()/time()/clock()/random_device (or hashing a pointer) injects run-to-run "
       "nondeterminism into a hot path"},
      {"DET003", "determinism", Severity::kError, "non-plan-scatter",
       "an indirect-indexed accumulation inside a parallel_for body scatters to shared slots; "
       "route it through a runtime::ScatterPlan (disjoint slots + ordered fold)"},
      {"DET004", "determinism", Severity::kError, "missing-poll-cancel",
       "a solver iteration loop has no runtime::poll_cancel() checkpoint, so deadlines and "
       "cancellation cannot stop it (DESIGN.md §9)"},
      // -- TimingView graph analytics (statsize audit) -----------------------
      {"GRF001", "graph", Severity::kError, "csr-invariant-violation",
       "the compiled TimingView violates a CSR invariant (edge symmetry, topo order, level "
       "partition) the parallel sweeps rely on"},
      {"GRF002", "graph", Severity::kError, "zero-width-level",
       "the level partition contains an empty level, which a sound finalize() can never emit "
       "(every level holds at least one gate by construction)"},
      {"GRF003", "graph", Severity::kNote, "narrow-parallelism",
       "a dominant share of gates sits in levels below the advisor's serial cutoff, so "
       "level-parallel sweeps cannot pay for their dispatch on this circuit"},
      {"GRF004", "graph", Severity::kWarning, "fanout-skew",
       "one net's fanout dwarfs the average, unbalancing level chunks and serializing the "
       "scatter folds that touch it"},
      {"GRF005", "graph", Severity::kNote, "high-reconvergence",
       "the reconvergence ratio is high; independence SSTA underestimates correlation here "
       "(consider the canonical correlation-aware engine)"},
      {"GRF006", "graph", Severity::kNote, "deep-narrow-graph",
       "logic depth dwarfs the mean level width: the sweep's critical path is serial and "
       "Amdahl caps any level-parallel speedup"},
      // -- cell library / sigma model / size tables -------------------------
      {"LIB001", "library", Severity::kError, "non-positive-intrinsic-delay",
       "a cell's intrinsic delay t_int is zero or negative"},
      {"LIB002", "library", Severity::kError, "non-positive-drive-coefficient",
       "a cell's delay-per-capacitance constant c is zero or negative"},
      {"LIB003", "library", Severity::kError, "non-positive-input-capacitance",
       "a cell presents zero or negative input capacitance (its drivers would see no load)"},
      {"LIB004", "library", Severity::kWarning, "non-positive-area",
       "a cell's area is zero or negative, corrupting area-weighted objectives"},
      {"LIB005", "library", Severity::kError, "duplicate-cell-name",
       "two cells share a name, so name-based lookups are ambiguous"},
      {"LIB006", "library", Severity::kError, "invalid-pin-count",
       "a cell declares fewer than one input pin"},
      {"LIB007", "library", Severity::kNote, "missing-arity",
       "the library has no cell for some pin count below its maximum (BLIF import would fail)"},
      {"LIB008", "library", Severity::kError, "non-physical-sigma-model",
       "sigma(mu) = kappa*mu + offset is negative at an attainable mean delay"},
      {"LIB009", "library", Severity::kWarning, "non-monotone-sigma-model",
       "kappa < 0 makes sigma shrink as mu grows, inverting the variability-vs-delay trade-off"},
      {"LIB010", "library", Severity::kError, "invalid-size-table",
       "a discrete size table is empty, non-ascending, or contains sizes below 1"},
      // -- NLP model audits -------------------------------------------------
      {"MOD001", "model", Severity::kError, "bound-inconsistency",
       "an NLP variable violates S_min <= S_0 <= S_max (empty box or start outside bounds)"},
      {"MOD002", "model", Severity::kWarning, "clark-degeneracy",
       "a statistical-max merge point has theta = sqrt(varA+varB) below threshold, where the "
       "Clark derivatives (eqs. 10-13) become ill-conditioned"},
      {"MOD003", "model", Severity::kError, "derivative-mismatch",
       "an analytic gradient or Hessian disagrees with its finite-difference estimate"},
      {"MOD004", "model", Severity::kError, "invalid-spec",
       "the sizing spec is inconsistent (e.g. max_speed < 1, or malformed objective weights)"},
      {"MOD005", "model", Severity::kError, "non-compilable-timing-view",
       "a cell parameter (t_int, c, c_in, area) or node load is non-finite, so the flat "
       "TimingView's precomputed delay-model constants would propagate NaN/Inf into every sweep"},
      // -- NLP instance audits (statsize audit; no evaluation involved) ------
      {"NLP001", "nlp", Severity::kError, "inverted-bound",
       "an NLP variable's bound box is empty (lower > upper), so no feasible point exists"},
      {"NLP002", "nlp", Severity::kNote, "collapsed-bound",
       "a variable's bounds coincide (lower == upper): it is a constant wearing a variable's "
       "cost (inflates the NLP and every multiplier/Hessian structure for nothing)"},
      {"NLP003", "nlp", Severity::kWarning, "orphan-variable",
       "a variable appears in no objective or constraint term, so the solver returns an "
       "arbitrary value inside its bounds"},
      {"NLP004", "nlp", Severity::kWarning, "element-arity-cliff",
       "an element function sits at (or beyond) the kMaxElementArity stack-buffer cliff; one "
       "more pin and evaluation is rejected outright"},
      {"NLP005", "nlp", Severity::kError, "constant-constraint",
       "an equality constraint references no variables: infeasible by construction when its "
       "constant is nonzero, dead weight otherwise"},
      {"NLP006", "nlp", Severity::kWarning, "scale-mismatch",
       "the objective and constraint magnitude scales (estimated from bounds and the library-"
       "derived coefficients) differ by orders of magnitude, degrading multiplier updates and "
       "trust-region conditioning"},
      {"NLP007", "nlp", Severity::kWarning, "duplicate-variable-locus",
       "two NLP variables share a name, making solver diagnostics and size tables ambiguous"},
      {"NLP008", "nlp", Severity::kError, "invalid-auglag-state",
       "an AugLagModel carries a non-finite multiplier or a non-positive penalty rho"},
      // -- netlist parsers --------------------------------------------------
      {"PAR001", "parse", Severity::kError, "blif-parse-error",
       "the BLIF input is malformed (undeclared net, duplicate definition, unsupported construct)"},
      {"PAR002", "parse", Severity::kError, "verilog-parse-error",
       "the structural Verilog input is malformed (unknown cell, arity mismatch, undriven net)"},
  };
  return catalog;
}

const RuleInfo* find_rule(std::string_view id) {
  for (const RuleInfo& rule : rule_catalog()) {
    if (rule.id == id) return &rule;
  }
  return nullptr;
}

}  // namespace statsize::analyze
