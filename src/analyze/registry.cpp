#include "analyze/registry.h"

namespace statsize::analyze {

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> catalog = {
      // -- circuit structure ------------------------------------------------
      {"CIR001", "circuit", Severity::kError, "combinational-cycle",
       "the netlist contains a combinational feedback loop (the DAG premise of eq. 4/18 fails)"},
      {"CIR002", "circuit", Severity::kError, "unconnected-fanin-pin",
       "a gate input pin is unwired or references a node id outside the circuit"},
      {"CIR003", "circuit", Severity::kError, "pin-count-mismatch",
       "a gate's fanin count disagrees with its library cell, or its cell id is invalid"},
      {"CIR004", "circuit", Severity::kError, "no-primary-outputs",
       "no node is marked as a primary output, so the circuit delay max (eq. 18a) is empty"},
      {"CIR005", "circuit", Severity::kError, "unreachable-gate",
       "a gate drives other gates but none of its transitive fanout reaches a primary output"},
      {"CIR006", "circuit", Severity::kError, "fanout-free-gate",
       "a non-output gate drives nothing (its speed factor would be an unconstrained variable)"},
      {"CIR007", "circuit", Severity::kNote, "floating-input",
       "a primary input drives no gate and is not an output"},
      {"CIR008", "circuit", Severity::kError, "negative-load",
       "a wire or pad capacitance is negative (eq. 14 requires non-negative loads)"},
      {"CIR009", "circuit", Severity::kNote, "unloaded-output",
       "a primary-output gate has zero pad load (upsizing it is free, which is rarely intended)"},
      {"CIR010", "circuit", Severity::kWarning, "duplicate-name",
       "two nodes share a name, making reports and size tables ambiguous"},
      // -- cell library / sigma model / size tables -------------------------
      {"LIB001", "library", Severity::kError, "non-positive-intrinsic-delay",
       "a cell's intrinsic delay t_int is zero or negative"},
      {"LIB002", "library", Severity::kError, "non-positive-drive-coefficient",
       "a cell's delay-per-capacitance constant c is zero or negative"},
      {"LIB003", "library", Severity::kError, "non-positive-input-capacitance",
       "a cell presents zero or negative input capacitance (its drivers would see no load)"},
      {"LIB004", "library", Severity::kWarning, "non-positive-area",
       "a cell's area is zero or negative, corrupting area-weighted objectives"},
      {"LIB005", "library", Severity::kError, "duplicate-cell-name",
       "two cells share a name, so name-based lookups are ambiguous"},
      {"LIB006", "library", Severity::kError, "invalid-pin-count",
       "a cell declares fewer than one input pin"},
      {"LIB007", "library", Severity::kNote, "missing-arity",
       "the library has no cell for some pin count below its maximum (BLIF import would fail)"},
      {"LIB008", "library", Severity::kError, "non-physical-sigma-model",
       "sigma(mu) = kappa*mu + offset is negative at an attainable mean delay"},
      {"LIB009", "library", Severity::kWarning, "non-monotone-sigma-model",
       "kappa < 0 makes sigma shrink as mu grows, inverting the variability-vs-delay trade-off"},
      {"LIB010", "library", Severity::kError, "invalid-size-table",
       "a discrete size table is empty, non-ascending, or contains sizes below 1"},
      // -- NLP model audits -------------------------------------------------
      {"MOD001", "model", Severity::kError, "bound-inconsistency",
       "an NLP variable violates S_min <= S_0 <= S_max (empty box or start outside bounds)"},
      {"MOD002", "model", Severity::kWarning, "clark-degeneracy",
       "a statistical-max merge point has theta = sqrt(varA+varB) below threshold, where the "
       "Clark derivatives (eqs. 10-13) become ill-conditioned"},
      {"MOD003", "model", Severity::kError, "derivative-mismatch",
       "an analytic gradient or Hessian disagrees with its finite-difference estimate"},
      {"MOD004", "model", Severity::kError, "invalid-spec",
       "the sizing spec is inconsistent (e.g. max_speed < 1, or malformed objective weights)"},
      {"MOD005", "model", Severity::kError, "non-compilable-timing-view",
       "a cell parameter (t_int, c, c_in, area) or node load is non-finite, so the flat "
       "TimingView's precomputed delay-model constants would propagate NaN/Inf into every sweep"},
      // -- netlist parsers --------------------------------------------------
      {"PAR001", "parse", Severity::kError, "blif-parse-error",
       "the BLIF input is malformed (undeclared net, duplicate definition, unsupported construct)"},
      {"PAR002", "parse", Severity::kError, "verilog-parse-error",
       "the structural Verilog input is malformed (unknown cell, arity mismatch, undriven net)"},
  };
  return catalog;
}

const RuleInfo* find_rule(std::string_view id) {
  for (const RuleInfo& rule : rule_catalog()) {
    if (rule.id == id) return &rule;
  }
  return nullptr;
}

}  // namespace statsize::analyze
