#include "analyze/nlp_audit.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "nlp/element.h"

namespace statsize::analyze {

namespace {

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

std::string var_locus(const nlp::Problem& problem, int var) {
  const std::string& name = problem.var_name(var);
  if (name.empty()) return "variable #" + std::to_string(var);
  return "variable '" + name + "' (#" + std::to_string(var) + ")";
}

/// Typical magnitude of variable `i`: the bound box where finite, the start
/// value otherwise, floored at 1 so a [0, 0.01] box does not zero out a
/// coefficient's contribution to the scale estimate.
double typical_magnitude(const nlp::Problem& problem, int i) {
  const std::size_t k = static_cast<std::size_t>(i);
  const double lo = problem.lower()[k];
  const double hi = problem.upper()[k];
  double mag = 0.0;
  if (std::isfinite(lo)) mag = std::max(mag, std::abs(lo));
  if (std::isfinite(hi)) mag = std::max(mag, std::abs(hi));
  if (mag == 0.0 && std::isfinite(problem.start()[k])) mag = std::abs(problem.start()[k]);
  return std::max(mag, 1.0);
}

/// Walks every group of the problem: the objective (index -1) then each
/// constraint j. fn(j, group).
template <class Fn>
void for_each_group(const nlp::Problem& problem, Fn&& fn) {
  fn(-1, problem.objective());
  for (int j = 0; j < problem.num_constraints(); ++j) fn(j, problem.constraint(j));
}

std::string group_locus(std::string_view what, int j) {
  if (j < 0) return std::string(what) + ", objective";
  return std::string(what) + ", constraint #" + std::to_string(j);
}

}  // namespace

double estimate_group_scale(const nlp::Problem& problem, const nlp::FunctionGroup& group) {
  double scale = std::abs(group.constant);
  for (const nlp::LinearTerm& t : group.linear) {
    if (t.var >= 0 && t.var < problem.num_vars()) {
      scale = std::max(scale, std::abs(t.coef) * typical_magnitude(problem, t.var));
    }
  }
  for (const nlp::ElementRef& e : group.elements) {
    scale = std::max(scale, std::abs(e.weight));
  }
  return scale;
}

Report audit_nlp_problem(const nlp::Problem& problem, std::string_view what,
                         const NlpAuditOptions& options) {
  Report report;
  const int n = problem.num_vars();

  // NLP001 / NLP002: bound-box geometry.
  for (int i = 0; i < n; ++i) {
    const double lo = problem.lower()[static_cast<std::size_t>(i)];
    const double hi = problem.upper()[static_cast<std::size_t>(i)];
    if (lo > hi || std::isnan(lo) || std::isnan(hi)) {
      report.add("NLP001", std::string(what) + ": " + var_locus(problem, i),
                 "bound box [" + fmt(lo) + ", " + fmt(hi) + "] is empty",
                 "check the builder: the box must satisfy lower <= upper");
    } else if (lo == hi) {
      report.add("NLP002", std::string(what) + ": " + var_locus(problem, i),
                 "bounds coincide at " + fmt(lo) + " (the variable is a constant)",
                 "fold the constant into the groups that reference it");
    }
  }

  // Reference census: which variables appear anywhere, element arities,
  // constant constraints — one walk over every group.
  std::vector<char> referenced(static_cast<std::size_t>(n), 0);
  for_each_group(problem, [&](int j, const nlp::FunctionGroup& group) {
    for (const nlp::LinearTerm& t : group.linear) {
      if (t.var >= 0 && t.var < n) referenced[static_cast<std::size_t>(t.var)] = 1;
    }
    for (std::size_t e = 0; e < group.elements.size(); ++e) {
      const nlp::ElementRef& ref = group.elements[e];
      for (const int v : ref.vars) {
        if (v >= 0 && v < n) referenced[static_cast<std::size_t>(v)] = 1;
      }
      if (ref.fn == nullptr) continue;  // Problem::validate()'s finding, not ours
      const int arity = ref.fn->arity();
      if (arity >= nlp::kMaxElementArity) {
        Diagnostic d;
        d.id = "NLP004";
        d.severity = arity > nlp::kMaxElementArity ? Severity::kError : Severity::kWarning;
        d.locus = group_locus(what, j) + ", element #" + std::to_string(e);
        d.message = "element arity " + std::to_string(arity) +
                    (arity > nlp::kMaxElementArity ? " exceeds" : " sits at") +
                    " kMaxElementArity = " + std::to_string(nlp::kMaxElementArity);
        d.hint = "split the element (e.g. a max tree) before the arity grows further";
        report.add(std::move(d));
      }
    }
    if (j >= 0 && group.linear.empty() && group.elements.empty()) {
      Diagnostic d;
      d.id = "NLP005";
      d.severity = group.constant != 0.0 ? Severity::kError : Severity::kWarning;
      d.locus = group_locus(what, j);
      d.message = group.constant != 0.0
                      ? "constraint is the constant " + fmt(group.constant) +
                            " = 0: infeasible by construction"
                      : "constraint references no variables (0 = 0): dead weight";
      d.hint = "remove the constraint or wire its intended variables";
      report.add(std::move(d));
    }
  });

  // NLP003: orphan variables.
  for (int i = 0; i < n; ++i) {
    if (!referenced[static_cast<std::size_t>(i)]) {
      report.add("NLP003", std::string(what) + ": " + var_locus(problem, i),
                 "appears in no objective or constraint term",
                 "the solver will return an arbitrary value inside its bounds");
    }
  }

  // NLP006: magnitude-scale estimates, objective vs constraints and the
  // constraint spread itself.
  if (problem.num_constraints() > 0) {
    const double obj_scale = std::max(estimate_group_scale(problem, problem.objective()), 1e-300);
    std::vector<double> cons_scales;
    cons_scales.reserve(static_cast<std::size_t>(problem.num_constraints()));
    for (int j = 0; j < problem.num_constraints(); ++j) {
      cons_scales.push_back(std::max(estimate_group_scale(problem, problem.constraint(j)), 1e-300));
    }
    std::vector<double> sorted = cons_scales;
    std::sort(sorted.begin(), sorted.end());
    const double median = sorted[sorted.size() / 2];
    const double ratio = obj_scale > median ? obj_scale / median : median / obj_scale;
    if (ratio > options.scale_ratio_threshold) {
      report.add("NLP006", std::string(what) + ": objective vs constraints",
                 "estimated objective scale " + fmt(obj_scale) +
                     " vs median constraint scale " + fmt(median) + " (ratio " + fmt(ratio) + ")",
                 "rescale the objective or constraints toward a common magnitude");
    }
    const double spread = sorted.back() / sorted.front();
    if (spread > options.constraint_spread_threshold) {
      const auto worst = std::max_element(cons_scales.begin(), cons_scales.end());
      const auto best = std::min_element(cons_scales.begin(), cons_scales.end());
      report.add("NLP006",
                 std::string(what) + ": constraint #" +
                     std::to_string(best - cons_scales.begin()) + " vs constraint #" +
                     std::to_string(worst - cons_scales.begin()),
                 "constraint scales spread by a factor " + fmt(spread) + " (" +
                     fmt(sorted.front()) + " .. " + fmt(sorted.back()) + ")",
                 "a single penalty rho cannot serve both ends of this range");
    }
  }

  // NLP007: duplicate variable loci (two variables with one name).
  {
    std::map<std::string, int> first_use;
    for (int i = 0; i < n; ++i) {
      const std::string& name = problem.var_names()[static_cast<std::size_t>(i)];
      if (name.empty()) continue;
      const auto [it, inserted] = first_use.emplace(name, i);
      if (!inserted) {
        report.add("NLP007", std::string(what) + ": " + var_locus(problem, i),
                   "shares name '" + name + "' with variable #" + std::to_string(it->second),
                   "rename one so diagnostics and size tables stay unambiguous");
      }
    }
  }

  report.sort();
  return report;
}

Report audit_auglag_state(const nlp::AugLagModel& model, std::string_view what) {
  Report report;
  if (!(model.rho() > 0.0) || !std::isfinite(model.rho())) {
    report.add("NLP008", std::string(what) + ": penalty rho",
               "rho = " + fmt(model.rho()) + " (must be a positive finite value)");
  }
  const std::vector<double>& mult = model.multipliers();
  for (std::size_t j = 0; j < mult.size(); ++j) {
    if (!std::isfinite(mult[j])) {
      report.add("NLP008", std::string(what) + ": multiplier #" + std::to_string(j),
                 "lambda = " + fmt(mult[j]) + " is not finite",
                 "a NaN multiplier poisons every Psi evaluation; reset the outer loop state");
    }
  }
  report.sort();
  return report;
}

}  // namespace statsize::analyze
