#include "analyze/library_lint.h"

#include <algorithm>
#include <map>
#include <string>

namespace statsize::analyze {

namespace {

std::string cell_locus(const netlist::CellType& cell) { return "cell '" + cell.name + "'"; }

}  // namespace

Report lint_cells(const std::vector<netlist::CellType>& cells) {
  Report report;
  std::map<std::string, std::size_t> seen;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const netlist::CellType& cell = cells[i];
    if (const auto [it, fresh] = seen.emplace(cell.name, i); !fresh) {
      report.add("LIB005", cell_locus(cell),
                 "name also used by cell " + std::to_string(it->second),
                 "name-based lookups (find, Verilog import) resolve to the first match only");
    }
    if (cell.num_inputs < 1) {
      report.add("LIB006", cell_locus(cell),
                 "declares " + std::to_string(cell.num_inputs) + " input pins");
    }
    if (cell.t_int <= 0.0) {
      report.add("LIB001", cell_locus(cell),
                 "intrinsic delay t_int = " + std::to_string(cell.t_int) + " is not positive",
                 "eq. 14's t_int is a physical propagation delay and must be > 0");
    }
    if (cell.c <= 0.0) {
      report.add("LIB002", cell_locus(cell),
                 "drive coefficient c = " + std::to_string(cell.c) + " is not positive",
                 "a non-positive c makes upsizing slow the gate down");
    }
    if (cell.c_in <= 0.0) {
      report.add("LIB003", cell_locus(cell),
                 "input capacitance c_in = " + std::to_string(cell.c_in) + " is not positive",
                 "drivers would see no load from this cell; fanout sizing terms vanish");
    }
    if (cell.area <= 0.0) {
      report.add("LIB004", cell_locus(cell),
                 "area = " + std::to_string(cell.area) + " is not positive",
                 "area-weighted objectives would reward adding such cells");
    }
  }
  return report;
}

Report lint_library(const netlist::CellLibrary& library) {
  std::vector<netlist::CellType> cells;
  cells.reserve(static_cast<std::size_t>(library.size()));
  int max_pins = 0;
  for (int i = 0; i < library.size(); ++i) {
    cells.push_back(library.cell(i));
    max_pins = std::max(max_pins, library.cell(i).num_inputs);
  }
  Report report = lint_cells(cells);
  for (int k = 1; k <= max_pins; ++k) {
    bool covered = false;
    for (const netlist::CellType& cell : cells) covered = covered || cell.num_inputs == k;
    if (!covered) {
      report.add("LIB007", "library",
                 "no cell with " + std::to_string(k) + " input pins (max is " +
                     std::to_string(max_pins) + ")",
                 "BLIF import maps k-input nodes to a generic k-input cell and fails on gaps");
    }
  }
  return report;
}

Report lint_sigma_model(const ssta::SigmaModel& model, double min_intrinsic_delay) {
  Report report;
  if (model.kappa < 0.0) {
    report.add("LIB009", "sigma model",
               "kappa = " + std::to_string(model.kappa) +
                   " makes sigma shrink as the mean delay grows",
               "the paper's eq. 18e uses sigma = mu / 4; kappa is expected to be >= 0");
  }
  // The smallest attainable mean gate delay is t_int (eq. 14's load term is
  // non-negative), so sigma must be non-negative from there on. With
  // kappa >= 0 checking the left endpoint suffices; with kappa < 0 sigma
  // eventually goes negative for large mu regardless.
  const double sigma_at_min = model.sigma(min_intrinsic_delay);
  if (sigma_at_min < 0.0) {
    report.add("LIB008", "sigma model",
               "sigma(" + std::to_string(min_intrinsic_delay) +
                   ") = " + std::to_string(sigma_at_min) + " is negative",
               "variance targets var = sigma^2 with sigma < 0 put the NLP outside the "
               "physical branch; raise offset or kappa");
  } else if (model.kappa < 0.0) {
    const double root = -model.offset / model.kappa;
    report.add("LIB008", "sigma model",
               "sigma(mu) turns negative for mean delays above " + std::to_string(root));
  }
  return report;
}

Report lint_size_table(const std::vector<double>& sizes) {
  Report report;
  if (sizes.empty()) {
    report.add("LIB010", "size table", "table is empty");
    return report;
  }
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    if (sizes[i] < 1.0) {
      report.add("LIB010", "size table",
                 "entry " + std::to_string(i) + " = " + std::to_string(sizes[i]) +
                     " is below 1 (speed factors live in [1, limit])");
    }
    if (i > 0 && sizes[i] <= sizes[i - 1]) {
      report.add("LIB010", "size table",
                 "entry " + std::to_string(i) + " = " + std::to_string(sizes[i]) +
                     " does not ascend past entry " + std::to_string(i - 1) + " = " +
                     std::to_string(sizes[i - 1]),
                 "legalization snaps by binary search and requires a strictly ascending grid");
    }
  }
  return report;
}

}  // namespace statsize::analyze
