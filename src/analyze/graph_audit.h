// TimingView graph analytics (rules GRF001..GRF006) and the parallel-
// granularity advisor — the structural half of the pre-solve static audit
// (`statsize audit`).
//
// The raw numbers come from netlist::compute_view_stats / check_view_-
// invariants; this module judges them: CSR soundness (GRF001/002), whether
// level-parallel sweeps can pay for their dispatch on this circuit
// (GRF003 + the advisor), scatter hot spots (GRF004), correlation blind
// spots (GRF005), and Amdahl ceilings (GRF006).
//
// The advisor is the cost-model lever named in ROADMAP's "make the
// parallelism actually pay" item: given the level-width histogram and a
// per-chunk dispatch cost, it statically decides per level whether the pool
// pays, and derives the single width cutoff LevelSchedule consumes via
// runtime::set_level_serial_cutoff(). Everything is deterministic: the
// default cost constants are fixed; calibration (runtime::
// measure_chunk_dispatch_ns) is opt-in for live tuning.

#pragma once

#include <cstddef>
#include <vector>

#include "analyze/diagnostic.h"
#include "netlist/timing_view.h"
#include "runtime/runtime.h"

namespace statsize::analyze {

/// Cost model for one barriered level dispatch. Units are nanoseconds; the
/// defaults are the runtime's own DispatchCostModel constants — the same
/// model the runtime uses to auto-resolve level_serial_cutoff(), so the
/// static audit and the live scheduler agree by construction. Calibrate with
/// runtime::measure_chunk_dispatch_ns() when the real machine matters
/// (BENCH_scaling.json records both).
struct GranularityCostModel {
  /// claim/wake cost per offered chunk
  double chunk_dispatch_ns = runtime::kDefaultChunkDispatchNs;
  /// per-gate sweep work (Clark max + delay eval)
  double gate_cost_ns = runtime::kDefaultItemCostNs;
  /// gates per chunk (the sweeps' kGateGrain)
  std::size_t grain = runtime::kDefaultDispatchGrain;
  /// 0 = runtime::threads() at advise time
  int threads = 0;

  /// The runtime-layer equivalent (shared crossover math lives there).
  runtime::DispatchCostModel dispatch_model() const {
    return runtime::DispatchCostModel{chunk_dispatch_ns, gate_cost_ns, grain, threads};
  }
};

struct LevelDecision {
  int level = 0;
  std::size_t width = 0;
  bool parallel = false;
  double serial_ns = 0.0;    ///< modeled inline cost: width * gate_cost
  double parallel_ns = 0.0;  ///< modeled pooled cost incl. dispatch + barrier
};

struct GranularityAdvice {
  GranularityCostModel model;  ///< resolved model (threads filled in)
  /// Smallest level width at which the pool is predicted to pay; levels
  /// narrower than this should run inline (LevelSchedule::set_serial_cutoff).
  std::size_t serial_cutoff = 0;
  std::vector<LevelDecision> levels;
  int serial_levels = 0;
  std::size_t serial_gates = 0;        ///< gates in serial-advised levels
  double serial_gate_fraction = 0.0;   ///< serial_gates / total gates
  double est_naive_parallel_ns = 0.0;  ///< every level pooled
  double est_advised_ns = 0.0;         ///< cutoff applied
};

/// Pure function of the histogram and the cost model (no measurement, no
/// global state): the advisor itself.
GranularityAdvice advise_granularity(const std::vector<std::size_t>& level_widths,
                                     const GranularityCostModel& model = {});

struct GraphAuditOptions {
  GranularityCostModel cost;
  /// GRF003 fires when at least this fraction of gates sits in levels below
  /// the advisor's serial cutoff.
  double narrow_fraction_threshold = 0.5;
  /// GRF004 fires when max fanout exceeds both this absolute floor and
  /// skew_factor * mean gate fanout.
  std::size_t fanout_skew_min = 32;
  double fanout_skew_factor = 16.0;
  /// GRF005 fires above this reconvergence ratio (Betti edges / all edges).
  double reconvergence_ratio_threshold = 0.25;
  /// GRF006 fires when num_levels > deep_factor * mean level width.
  double deep_narrow_factor = 4.0;
  int max_cone_samples = 64;
  bool invariant_check = true;  ///< GRF001 CSR self-check (O(V + E log-ish))
};

/// GRF002/GRF003 over a bare level-width histogram. Split out so defect
/// injection (zero-width level spam) and tests can audit a synthetic
/// histogram without forging a TimingView.
Report audit_level_widths(const std::vector<std::size_t>& level_widths,
                          const GranularityAdvice& advice, const GraphAuditOptions& options = {});

/// Full GRF audit over a compiled view: invariant self-check, then the
/// histogram/skew/reconvergence/depth judgments on compute_view_stats.
/// `stats_out` / `advice_out` (optional) receive the analytics so callers
/// (the audit CLI, the bench) can report them without recomputing.
Report audit_graph(const netlist::TimingView& view, const GraphAuditOptions& options = {},
                   netlist::TimingViewStats* stats_out = nullptr,
                   GranularityAdvice* advice_out = nullptr);

}  // namespace statsize::analyze
