// NLP model audits (rules MOD001..MOD004).
//
// Three families of formulation-level checks, run before optimization:
//
//  * bound consistency — every NLP variable must satisfy lower <= start <=
//    upper with a non-empty box (the paper's S_min <= S_0 <= S_max, extended
//    to every timing variable the full-space formulation materializes);
//
//  * Clark degeneracy — at every statistical-max merge point, theta =
//    sqrt(varA + varB) is the denominator of alpha in eqs. 10-13; when it
//    approaches zero (near-deterministic operands, e.g. a degenerate sigma
//    model or high-correlation reconvergence) the Clark derivatives become
//    ill-conditioned and the NLP's curvature explodes. Merge points whose
//    theta falls below a threshold are flagged per gate;
//
//  * derivative audit — rebuilds the full-space formulations (pairwise and
//    n-ary max, delay constraint with slack + sqrt element) and sweeps every
//    element through nlp::check_problem_derivatives at the feasible start and
//    at deterministic pseudo-random interior points, reporting any
//    gradient/Hessian vs finite-difference mismatch as a diagnostic instead
//    of a test-only assertion.

#pragma once

#include <string_view>
#include <vector>

#include "analyze/diagnostic.h"
#include "core/spec.h"
#include "netlist/circuit.h"
#include "nlp/problem.h"

namespace statsize::analyze {

struct ModelAuditOptions {
  ssta::SigmaModel sigma_model{0.25, 0.0};
  double max_speed = 3.0;
  /// Merge points with theta = sqrt(varA + varB) below this are flagged.
  double theta_threshold = 1e-3;
  /// Randomized interior points per formulation (the feasible start is always
  /// checked in addition); 0 disables the sweep.
  int derivative_points = 3;
  double derivative_tol = 1e-4;
  unsigned rng_seed = 2000u;  ///< deterministic point generation
  bool derivative_audit = true;
  bool audit_nary = true;  ///< also sweep the n-ary max formulation
};

/// MOD001: lower <= start <= upper and finite start for every variable.
Report audit_problem_bounds(const nlp::Problem& problem, std::string_view what);

/// MOD002: forward SSTA at `speed`, flagging every Clark merge point whose
/// theta falls below `theta_threshold`. Mirrors the formulation's constant
/// folding: merges where both operands are build-time constants (primary
/// input arrivals) never materialize a Clark element and are not flagged.
Report audit_clark_degeneracy(const netlist::Circuit& circuit, const ssta::SigmaModel& model,
                              const std::vector<double>& speed, double theta_threshold);

/// MOD003: check_problem_derivatives at the start point and `points`
/// deterministic pseudo-random interior points.
Report audit_problem_derivatives(const nlp::Problem& problem, std::string_view what, int points,
                                 unsigned seed, double tol);

/// MOD004: spec-level consistency (max_speed >= 1, weight vector shape,
/// satisfiable delay bound sign).
Report audit_spec(const core::SizingSpec& spec, const netlist::Circuit& circuit);

/// MOD005: every constant the TimingView compilation precomputes — per-gate
/// cell t_int / c / c_in / area and per-node wire/pad load — must be finite.
/// The library and circuit builders reject negative values but NaN slips
/// through every `<= 0` comparison, and a single non-finite c_in poisons the
/// precomputed fanout edge capacitances (and hence every sweep). Safe on
/// non-finalized circuits; gates whose cell id is invalid are skipped (that is
/// CIR003's finding).
Report audit_view_compilability(const netlist::Circuit& circuit);

/// Full model audit on a finalized circuit: spec checks, Clark degeneracy at
/// S = 1, then bound + derivative audits over full-space formulations built
/// with a mu + 3 sigma objective and an active delay constraint (so every
/// element family — Product, Square, Clark, n-ary Clark, Sqrt, slack — is
/// exercised regardless of what objective the user will optimize).
Report audit_model(const netlist::Circuit& circuit, const ModelAuditOptions& options = {});

}  // namespace statsize::analyze
