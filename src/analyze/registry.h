// Rule registry — the single source of truth for every lint/audit rule the
// analyzer can emit: stable id, analysis family, default severity, and a
// one-line description. `statsize lint --list-rules` prints this catalog and
// DESIGN.md's "Diagnostics & static analysis" section documents it; keeping
// severities here (rather than at each emission site) means a rule's CI
// impact can be reviewed in one place.
//
// Id scheme: CIRxxx = circuit structure, LIBxxx = cell library / sigma model /
// size tables, MODxxx = NLP model audits, NLPxxx = no-evaluation NLP instance
// audits, GRFxxx = TimingView graph analytics, DETxxx = determinism lint
// (tools/detlint), PARxxx = netlist parser failures.

#pragma once

#include <string_view>
#include <vector>

#include "analyze/diagnostic.h"

namespace statsize::analyze {

struct RuleInfo {
  std::string_view id;        ///< "CIR001"
  std::string_view category;  ///< "circuit" | "library" | "model" | "nlp" |
                              ///< "graph" | "determinism" | "parse"
  Severity severity;          ///< default severity of findings from this rule
  std::string_view title;     ///< short kebab-case name
  std::string_view detail;    ///< one-line description
};

/// All registered rules, ordered by id.
const std::vector<RuleInfo>& rule_catalog();

/// Catalog entry for `id`, or nullptr when unknown.
const RuleInfo* find_rule(std::string_view id);

}  // namespace statsize::analyze
