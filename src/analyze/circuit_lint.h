// Circuit structural lint (rules CIR001..CIR010).
//
// Works on finalized AND unfinalized circuits: it derives its own fanout
// lists and indegrees from the fanin edges, runs Kahn's algorithm for a
// topological order, extracts the actual gates of every combinational cycle
// (via strongly-connected components) instead of reporting a bare "cycle",
// and checks reachability, pin wiring, loads and naming.
//
// Layering note: Circuit::finalize() routes its structural validation through
// lint_circuit_structure, so this translation unit must stay link-independent
// of statsize_netlist — it may only use the Circuit/CellLibrary accessors
// that are defined inline in their headers.

#pragma once

#include <vector>

#include "analyze/diagnostic.h"
#include "netlist/circuit.h"

namespace statsize::analyze {

/// Full structural audit. If `topo_out` is non-null and the circuit is
/// structurally sound (no cycles, all pins wired to valid nodes), it receives
/// a dependency-respecting topological order — the lexicographically smallest
/// one, so circuits built in fanin-before-fanout order keep the identity
/// ordering the rest of the codebase was written against.
Report lint_circuit_structure(const netlist::Circuit& circuit,
                              std::vector<netlist::NodeId>* topo_out = nullptr);

}  // namespace statsize::analyze
