#include "analyze/graph_audit.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "runtime/runtime.h"

namespace statsize::analyze {

namespace {

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

GranularityAdvice advise_granularity(const std::vector<std::size_t>& level_widths,
                                     const GranularityCostModel& model) {
  GranularityAdvice advice;
  advice.model = model;
  if (advice.model.threads <= 0) advice.model.threads = runtime::threads();
  if (advice.model.grain == 0) advice.model.grain = 1;
  const GranularityCostModel& m = advice.model;

  // The crossover math lives in the runtime (it auto-resolves
  // level_serial_cutoff() from the same curves), so the static audit and the
  // live scheduler can never disagree about where the pool pays.
  const runtime::DispatchCostModel dm = m.dispatch_model();
  advice.serial_cutoff = runtime::compute_serial_cutoff(dm);

  std::size_t total_gates = 0;
  for (std::size_t l = 0; l < level_widths.size(); ++l) {
    LevelDecision d;
    d.level = static_cast<int>(l);
    d.width = level_widths[l];
    d.serial_ns = runtime::modeled_serial_ns(d.width, dm);
    d.parallel_ns = runtime::modeled_parallel_ns(d.width, dm);
    d.parallel = d.width >= advice.serial_cutoff;
    total_gates += d.width;
    advice.est_naive_parallel_ns += d.parallel_ns;
    advice.est_advised_ns += d.parallel ? d.parallel_ns : d.serial_ns;
    if (!d.parallel) {
      ++advice.serial_levels;
      advice.serial_gates += d.width;
    }
    advice.levels.push_back(d);
  }
  if (total_gates > 0) {
    advice.serial_gate_fraction =
        static_cast<double>(advice.serial_gates) / static_cast<double>(total_gates);
  }
  return advice;
}

Report audit_level_widths(const std::vector<std::size_t>& level_widths,
                          const GranularityAdvice& advice, const GraphAuditOptions& options) {
  Report report;
  for (std::size_t l = 0; l < level_widths.size(); ++l) {
    if (level_widths[l] == 0) {
      report.add("GRF002", "level " + std::to_string(l),
                 "level partition contains an empty level",
                 "a sound Circuit::finalize() never emits one; the schedule feeding this "
                 "histogram is corrupted");
    }
  }
  if (advice.serial_gate_fraction >= options.narrow_fraction_threshold &&
      !level_widths.empty()) {
    report.add("GRF003",
               std::to_string(advice.serial_levels) + " of " +
                   std::to_string(level_widths.size()) + " levels",
               fmt(100.0 * advice.serial_gate_fraction) +
                   "% of gates sit in levels narrower than the serial cutoff (" +
                   std::to_string(advice.serial_cutoff) +
                   "); level-parallel sweeps cannot pay for dispatch here",
               "apply the advisor cutoff (runtime::set_level_serial_cutoff) or batch "
               "independent analyses instead of parallelizing within one");
  }
  report.sort();
  return report;
}

Report audit_graph(const netlist::TimingView& view, const GraphAuditOptions& options,
                   netlist::TimingViewStats* stats_out, GranularityAdvice* advice_out) {
  Report report;

  if (options.invariant_check) {
    for (const std::string& violation : check_view_invariants(view)) {
      report.add("GRF001", "timing view", violation,
                 "the CSR arrays disagree with themselves; this is a compiler bug in "
                 "Circuit::finalize()/TimingView, not a netlist defect");
    }
  }

  const netlist::TimingViewStats stats = netlist::compute_view_stats(view, options.max_cone_samples);
  const GranularityAdvice advice = advise_granularity(stats.level_widths, options.cost);

  report.merge(audit_level_widths(stats.level_widths, advice, options));

  // GRF004: fanout skew.
  if (stats.max_fanout >= options.fanout_skew_min && stats.mean_gate_fanout > 0.0 &&
      static_cast<double>(stats.max_fanout) >
          options.fanout_skew_factor * stats.mean_gate_fanout) {
    report.add("GRF004", "node #" + std::to_string(stats.max_fanout_node),
               "fanout " + std::to_string(stats.max_fanout) + " vs mean gate fanout " +
                   fmt(stats.mean_gate_fanout) + " (" +
                   fmt(static_cast<double>(stats.max_fanout) / stats.mean_gate_fanout) +
                   "x skew)",
               "this net dominates its level's chunk and serializes every scatter fold "
               "that touches it; consider buffering the net");
  }

  // GRF005: reconvergence.
  if (stats.reconvergence_ratio > options.reconvergence_ratio_threshold) {
    report.add("GRF005", "timing graph",
               std::to_string(stats.reconvergence_count) + " reconvergent path pairs over " +
                   std::to_string(stats.num_edges) + " edges (ratio " +
                   fmt(stats.reconvergence_ratio) + ")",
               "independence SSTA drops the correlation these paths share; the canonical "
               "correlation-aware engine is the honest analysis here");
  }

  // GRF006: deep-and-narrow shape.
  if (!stats.level_widths.empty() && stats.mean_level_width > 0.0 &&
      static_cast<double>(stats.level_widths.size()) >
          options.deep_narrow_factor * stats.mean_level_width) {
    report.add("GRF006", "timing graph",
               std::to_string(stats.level_widths.size()) + " levels at mean width " +
                   fmt(stats.mean_level_width) +
                   ": the barriered critical path is serial and caps parallel speedup at " +
                   fmt(stats.mean_level_width) + "x",
               "deep-narrow circuits gain more from batching independent jobs than from "
               "intra-sweep parallelism");
  }

  if (stats_out != nullptr) *stats_out = stats;
  if (advice_out != nullptr) *advice_out = advice;
  report.sort();
  return report;
}

}  // namespace statsize::analyze
