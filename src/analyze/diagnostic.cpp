#include "analyze/diagnostic.h"

#include <algorithm>
#include <ostream>
#include <set>
#include <tuple>

#include "analyze/registry.h"
#include "util/json.h"

namespace statsize::analyze {

std::string_view severity_name(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "error";
}

void Report::add(Diagnostic diagnostic) { diags_.push_back(std::move(diagnostic)); }

void Report::add(std::string_view rule_id, std::string locus, std::string message,
                 std::string hint) {
  Diagnostic d;
  d.id = std::string(rule_id);
  const RuleInfo* rule = find_rule(rule_id);
  d.severity = rule ? rule->severity : Severity::kError;
  d.locus = std::move(locus);
  d.message = std::move(message);
  d.hint = std::move(hint);
  diags_.push_back(std::move(d));
}

void Report::merge(Report other) {
  // Keys own their strings: push_back below reallocates diags_ (and SSO
  // strings relocate on move), so views into the elements would dangle.
  using Key = std::tuple<std::string, std::string, std::string>;
  std::set<Key> seen;
  for (const Diagnostic& d : diags_) seen.emplace(d.id, d.locus, d.message);
  for (Diagnostic& d : other.diags_) {
    if (seen.emplace(d.id, d.locus, d.message).second) diags_.push_back(std::move(d));
  }
}

int Report::count(Severity severity) const {
  int n = 0;
  for (const Diagnostic& d : diags_) {
    if (d.severity == severity) ++n;
  }
  return n;
}

Severity Report::max_severity() const {
  Severity worst = Severity::kNote;
  for (const Diagnostic& d : diags_) worst = std::max(worst, d.severity);
  return worst;
}

int Report::exit_code() const {
  switch (max_severity()) {
    case Severity::kError:
      return 3;
    case Severity::kWarning:
      return 2;
    case Severity::kNote:
      return 0;
  }
  return 3;
}

std::string Report::summary() const {
  return std::to_string(count(Severity::kError)) + " errors, " +
         std::to_string(count(Severity::kWarning)) + " warnings, " +
         std::to_string(count(Severity::kNote)) + " notes";
}

void Report::print(std::ostream& out) const {
  for (const Diagnostic& d : diags_) {
    out << severity_name(d.severity) << ": [" << d.id << "] " << d.locus << ": " << d.message
        << "\n";
    if (!d.hint.empty()) out << "    hint: " << d.hint << "\n";
  }
  out << "summary: " << summary() << "\n";
}

std::string Report::errors_text() const {
  std::string text;
  for (const Diagnostic& d : diags_) {
    if (d.severity != Severity::kError) continue;
    if (!text.empty()) text += "\n";
    text += "[" + d.id + "] " + d.locus + ": " + d.message;
  }
  return text;
}

void Report::write_json(std::ostream& out, std::string_view target) const {
  util::JsonWriter w(out);
  w.begin_object();
  w.key("target").value(target);
  write_json_members(w);
  w.end_object();
  out << "\n";
}

void Report::write_json_members(util::JsonWriter& w) const {
  w.key("summary").begin_object();
  w.key("errors").value(count(Severity::kError));
  w.key("warnings").value(count(Severity::kWarning));
  w.key("notes").value(count(Severity::kNote));
  w.key("exit_code").value(exit_code());
  w.end_object();
  w.key("diagnostics").begin_array();
  for (const Diagnostic& d : diags_) {
    w.begin_object();
    w.key("id").value(d.id);
    w.key("severity").value(severity_name(d.severity));
    w.key("locus").value(d.locus);
    w.key("message").value(d.message);
    if (!d.hint.empty()) w.key("hint").value(d.hint);
    w.end_object();
  }
  w.end_array();
}

void Report::prefix_loci(std::string_view prefix) {
  for (Diagnostic& d : diags_) d.locus = std::string(prefix) + ": " + d.locus;
}

void Report::sort() {
  std::stable_sort(diags_.begin(), diags_.end(), [](const Diagnostic& a, const Diagnostic& b) {
    if (a.severity != b.severity) return a.severity > b.severity;  // errors first
    if (a.id != b.id) return a.id < b.id;
    return a.locus < b.locus;
  });
}

}  // namespace statsize::analyze
