#include "analyze/lint.h"

#include <algorithm>
#include <fstream>
#include <istream>
#include <limits>
#include <stdexcept>

#include "analyze/circuit_lint.h"
#include "analyze/library_lint.h"
#include "netlist/blif.h"
#include "netlist/verilog.h"

namespace statsize::analyze {

Report lint_circuit(netlist::Circuit& circuit, const LintOptions& options) {
  Report report = lint_circuit_structure(circuit);
  report.merge(lint_library(circuit.library()));
  if (circuit.library().size() > 0) {
    double min_t_int = std::numeric_limits<double>::infinity();
    for (int i = 0; i < circuit.library().size(); ++i) {
      min_t_int = std::min(min_t_int, circuit.library().cell(i).t_int);
    }
    report.merge(lint_sigma_model(options.model.sigma_model, min_t_int));
  }
  // MOD005 must run before finalize(): a non-finite cell parameter or load
  // makes finalize() throw while compiling the TimingView, and lint should
  // report the defect, not die on it.
  report.merge(audit_view_compilability(circuit));
  if (report.has_errors()) {
    report.sort();
    return report;
  }
  // Structurally clean: safe to finalize (finalize re-runs the structural
  // analysis internally, so this cannot throw here) and run the model audits.
  if (!circuit.finalized()) circuit.finalize();
  if (options.model_audit && circuit.num_gates() > 0) {
    ModelAuditOptions model = options.model;
    if (circuit.num_gates() > options.derivative_gate_cap && !options.force_derivative_audit) {
      model.derivative_audit = false;  // the sweep is quadratic-ish; cap it
    }
    report.merge(audit_model(circuit, model));
  }
  report.sort();
  return report;
}

Report lint_blif(std::istream& in, const netlist::CellLibrary& library,
                 const LintOptions& options) {
  try {
    netlist::Circuit circuit = netlist::read_blif_raw(in, library);
    return lint_circuit(circuit, options);
  } catch (const std::exception& e) {
    Report report;
    report.add("PAR001", "blif input", e.what());
    return report;
  }
}

Report lint_verilog(std::istream& in, const netlist::CellLibrary& library,
                    const LintOptions& options) {
  try {
    netlist::Circuit circuit = netlist::read_verilog(in, library);
    return lint_circuit(circuit, options);
  } catch (const std::exception& e) {
    Report report;
    report.add("PAR002", "verilog input", e.what());
    return report;
  }
}

Report lint_file(const std::string& path, const netlist::CellLibrary& library,
                 const LintOptions& options) {
  const bool verilog = path.size() >= 2 && path.compare(path.size() - 2, 2, ".v") == 0;
  std::ifstream in(path);
  if (!in) {
    Report report;
    report.add(verilog ? "PAR002" : "PAR001", path, "cannot open file");
    return report;
  }
  return verilog ? lint_verilog(in, library, options) : lint_blif(in, library, options);
}

}  // namespace statsize::analyze
