// Diagnostics engine for the statsize static-analysis subsystem.
//
// The paper's whole pipeline rests on feeding an exactly differentiable
// statistical timing model to an NLP solver: a silently broken netlist, a
// non-physical cell library, or a derivative that disagrees with its
// finite-difference estimate produces sizing results that look plausible but
// are wrong. Every audit in src/analyze reports its findings as Diagnostics
// collected into a Report, instead of throwing on the first problem — so one
// `statsize lint` run surfaces everything at once and can gate CI through
// severity-based exit codes.
//
// A Diagnostic carries a stable rule id (see registry.h for the catalog), a
// severity, a locus (which gate / cell / NLP variable), a message and an
// optional remediation hint. Reports render as human-readable text or as a
// machine-readable JSON document.

#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace statsize::util {
class JsonWriter;
}

namespace statsize::analyze {

enum class Severity { kNote = 0, kWarning = 1, kError = 2 };

std::string_view severity_name(Severity severity);  ///< "note" | "warning" | "error"

struct Diagnostic {
  std::string id;       ///< stable rule id, e.g. "CIR001" (see registry.h)
  Severity severity = Severity::kWarning;
  std::string locus;    ///< subject of the finding: "gate 'G'", "cell 'NAND2'", "variable 'S_g3'"
  std::string message;  ///< one-line statement of the defect
  std::string hint;     ///< optional remediation advice (may be empty)
};

/// An ordered collection of diagnostics with severity accounting, merging,
/// and text/JSON rendering.
class Report {
 public:
  void add(Diagnostic diagnostic);

  /// Convenience: the severity is looked up in the rule catalog (registry.h);
  /// unknown ids become errors (a misspelled rule id is itself a bug).
  void add(std::string_view rule_id, std::string locus, std::string message,
           std::string hint = {});

  /// Appends `other`'s diagnostics, dropping any whose (id, locus, message)
  /// triple this report already holds. Composed drivers (lint + audit, or the
  /// same rule reached through two analysis paths) would otherwise double-count
  /// one defect in the summary and the CI gate.
  void merge(Report other);

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  bool empty() const { return diags_.empty(); }
  int count(Severity severity) const;
  bool has_errors() const { return count(Severity::kError) > 0; }

  /// kNote when the report is empty.
  Severity max_severity() const;

  /// Severity-based process exit code for CI gating:
  /// 0 = clean or notes only, 2 = warnings present, 3 = errors present.
  int exit_code() const;

  /// "2 errors, 1 warning, 3 notes".
  std::string summary() const;

  /// Human-readable listing, one diagnostic per line plus indented hints.
  void print(std::ostream& out) const;

  /// Error-severity findings joined into exception text (used by
  /// Circuit::finalize so structural failures name the offending nodes).
  std::string errors_text() const;

  /// Machine-readable {target, summary, diagnostics[]} JSON document.
  void write_json(std::ostream& out, std::string_view target) const;

  /// Emits the summary + diagnostics members into an object `w` has already
  /// opened — the shared body of write_json and the audit document (audit.h),
  /// which appends its analytics sections alongside.
  void write_json_members(util::JsonWriter& w) const;

  /// Prepends "`prefix`: " to every diagnostic's locus — used by multi-input
  /// lint runs so one merged report still names the file each finding is from.
  void prefix_loci(std::string_view prefix);

  /// Stable sort: errors first, then by rule id, then by locus.
  void sort();

 private:
  std::vector<Diagnostic> diags_;
};

}  // namespace statsize::analyze
