// Pre-solve static audit driver — the engine behind `statsize audit`.
//
// Where `statsize lint` asks "is this netlist/model well formed" by evaluating
// it (finite differences, SSTA sweeps), the audit asks "what will the solver
// and the runtime actually face" without evaluating anything: it compiles the
// circuit, runs the GRF0xx graph analytics + granularity advisor over the
// TimingView, builds the full-space NLP instance the sizer would hand to the
// augmented-Lagrangian solver, and runs the NLP0xx structural rules over it.
// The combined report gates CI through the same 0/2/3 exit codes as lint; the
// JSON document additionally carries the graph statistics, the NLP instance
// shape, and the advisor's per-level serial/parallel decision table so the
// bench and the runtime can consume the cutoff directly.

#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "analyze/diagnostic.h"
#include "analyze/graph_audit.h"
#include "analyze/nlp_audit.h"
#include "netlist/circuit.h"
#include "ssta/delay_model.h"

namespace statsize::analyze {

struct AuditOptions {
  GraphAuditOptions graph;
  NlpAuditOptions nlp;
  ssta::SigmaModel sigma_model{0.25, 0.0};
  double max_speed = 3.0;
  /// Build and audit the full-space NLP instance (pairwise-max formulation,
  /// plus an AugLagModel at its initial multiplier/penalty state).
  bool nlp_audit = true;
  /// Also audit the n-ary-max formulation variant.
  bool audit_nary = true;
};

/// One audit run: the report plus the analytics the JSON document and the
/// bench report alongside the diagnostics.
struct AuditResult {
  Report report;
  bool has_view = false;  ///< graph analytics ran (circuit was compilable)
  netlist::TimingViewStats stats;
  GranularityAdvice advice;
  bool has_nlp = false;  ///< NLP instance was built and audited
  int nlp_vars = 0;
  int nlp_constraints = 0;
  int nlp_elements = 0;
};

/// Audits `circuit`: structural gate first (an un-finalizable circuit gets the
/// structural findings and stops), then GRF graph analytics + advisor, then
/// the NLP instance rules. Finalizes the circuit if it is structurally clean
/// and not yet finalized.
AuditResult audit_circuit(netlist::Circuit& circuit, const AuditOptions& options = {});

/// Parses `path` (.v -> Verilog, else BLIF) and audits the result; parse
/// failures become PAR001/PAR002 diagnostics, mirroring lint_file.
AuditResult audit_file(const std::string& path, const netlist::CellLibrary& library,
                       const AuditOptions& options = {});

/// Human-readable rendering: the report, then the graph/NLP analytics and the
/// advisor's cutoff table.
void print_audit(std::ostream& out, const AuditResult& result);

/// Machine-readable document: {target, summary, diagnostics[], graph_stats,
/// granularity_advisor{serial_cutoff, levels[]}, nlp_instance}.
void write_audit_json(std::ostream& out, const AuditResult& result, std::string_view target);

}  // namespace statsize::analyze
