// Top-level lint driver — the engine behind `statsize lint`.
//
// Composes the three analysis families (circuit structure, library, model
// audit) over a circuit, a netlist file, or a raw BLIF/Verilog stream, and
// folds parser failures into PAR001/PAR002 diagnostics so a malformed input
// produces a report (and a CI-gating exit code) instead of a crash.

#pragma once

#include <iosfwd>
#include <string>

#include "analyze/diagnostic.h"
#include "analyze/model_audit.h"
#include "netlist/circuit.h"

namespace statsize::analyze {

struct LintOptions {
  ModelAuditOptions model;
  bool model_audit = true;
  /// The randomized derivative sweep finite-differences every constraint
  /// group; above this gate count it is skipped unless forced.
  int derivative_gate_cap = 200;
  bool force_derivative_audit = false;
};

/// Lints `circuit` in place: structure and library first; if structurally
/// clean, finalizes the circuit (when not already finalized) and runs the
/// model audits. The report is sorted errors-first.
Report lint_circuit(netlist::Circuit& circuit, const LintOptions& options = {});

/// Parses BLIF/Verilog from a stream and lints the result; parse failures
/// become PAR001/PAR002 diagnostics.
Report lint_blif(std::istream& in, const netlist::CellLibrary& library,
                 const LintOptions& options = {});
Report lint_verilog(std::istream& in, const netlist::CellLibrary& library,
                    const LintOptions& options = {});

/// Dispatches on the file extension (.v -> Verilog, anything else -> BLIF).
Report lint_file(const std::string& path, const netlist::CellLibrary& library,
                 const LintOptions& options = {});

}  // namespace statsize::analyze
