#include "analyze/model_audit.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>

#include "core/full_space.h"
#include "nlp/derivative_check.h"
#include "ssta/delay_model.h"
#include "stat/clark.h"

namespace statsize::analyze {

namespace {

using netlist::NodeId;
using netlist::NodeKind;
using stat::NormalRV;

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

/// SplitMix64 — small deterministic generator for audit points (independent
/// of libstdc++ distribution internals, so findings are reproducible).
class Rng {
 public:
  explicit Rng(unsigned seed) : state_(0x9e3779b97f4a7c15ull ^ seed) {}
  double uniform01() {
    state_ += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    return static_cast<double>(z >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

}  // namespace

Report audit_problem_bounds(const nlp::Problem& problem, std::string_view what) {
  Report report;
  const std::string suffix = " [" + std::string(what) + "]";
  for (int i = 0; i < problem.num_vars(); ++i) {
    const std::size_t k = static_cast<std::size_t>(i);
    const double lo = problem.lower()[k];
    const double hi = problem.upper()[k];
    const double s0 = problem.start()[k];
    const std::string locus = "variable '" + problem.var_name(i) + "'" + suffix;
    if (!(lo <= hi)) {
      report.add("MOD001", locus,
                 "empty bound box: lower " + fmt(lo) + " exceeds upper " + fmt(hi));
      continue;
    }
    if (std::isnan(s0) || std::isinf(s0)) {
      report.add("MOD001", locus, "start value is not finite");
      continue;
    }
    const double slack = 1e-9 * (1.0 + std::abs(s0));
    if (s0 < lo - slack || s0 > hi + slack) {
      report.add("MOD001", locus,
                 "start " + fmt(s0) + " lies outside bounds [" + fmt(lo) + ", " + fmt(hi) + "]",
                 "the optimizer projects onto the box, silently moving the start point");
    }
  }
  return report;
}

Report audit_clark_degeneracy(const netlist::Circuit& circuit, const ssta::SigmaModel& model,
                              const std::vector<double>& speed, double theta_threshold) {
  Report report;
  const ssta::DelayCalculator calc(circuit, model);
  const std::vector<NormalRV> delays = calc.all_delays(speed);
  std::vector<NormalRV> arrival(static_cast<std::size_t>(circuit.num_nodes()));
  std::vector<char> is_const(static_cast<std::size_t>(circuit.num_nodes()), 0);

  auto check_pair = [&](const NormalRV& a, const NormalRV& b, bool any_live,
                        const std::string& locus, const std::string& where) {
    if (!any_live) return;  // folded at build time; no Clark element exists
    const double theta = std::sqrt(a.var + b.var);
    if (theta >= theta_threshold) return;
    report.add("MOD002", locus,
               where + ": theta = sqrt(" + fmt(a.var) + " + " + fmt(b.var) + ") = " +
                   fmt(theta) + " below threshold " + fmt(theta_threshold) + " (operand means " +
                   fmt(a.mu) + ", " + fmt(b.mu) + ")",
               "near-deterministic max operands make the Clark derivatives (eqs. 10-13) "
               "ill-conditioned; raise the sigma model's kappa/offset or review the merge");
  };

  for (NodeId id : circuit.topo_order()) {
    const netlist::Node& n = circuit.node(id);
    const std::size_t i = static_cast<std::size_t>(id);
    if (n.kind == NodeKind::kPrimaryInput) {
      arrival[i] = NormalRV{0.0, 0.0};
      is_const[i] = 1;
      continue;
    }
    NormalRV u = arrival[static_cast<std::size_t>(n.fanins[0])];
    bool u_const = is_const[static_cast<std::size_t>(n.fanins[0])] != 0;
    for (std::size_t k = 1; k < n.fanins.size(); ++k) {
      const std::size_t f = static_cast<std::size_t>(n.fanins[k]);
      check_pair(u, arrival[f], !u_const || !is_const[f], "gate '" + n.name + "'",
                 "fanin merge " + std::to_string(k));
      u = stat::clark_max(u, arrival[f]);
      u_const = u_const && is_const[f];
    }
    arrival[i] = stat::add(u, delays[i]);
  }

  const std::vector<NodeId>& outs = circuit.outputs();
  NormalRV total = arrival[static_cast<std::size_t>(outs[0])];
  bool total_const = is_const[static_cast<std::size_t>(outs[0])] != 0;
  for (std::size_t k = 1; k < outs.size(); ++k) {
    const std::size_t o = static_cast<std::size_t>(outs[k]);
    check_pair(total, arrival[o], !total_const || !is_const[o],
               "output '" + circuit.node(outs[k]).name + "'",
               "primary-output merge " + std::to_string(k));
    total = stat::clark_max(total, arrival[o]);
    total_const = total_const && is_const[o];
  }
  return report;
}

Report audit_problem_derivatives(const nlp::Problem& problem, std::string_view what, int points,
                                 unsigned seed, double tol) {
  Report report;
  Rng rng(seed);
  const std::string locus = "formulation [" + std::string(what) + "]";
  for (int sample = 0; sample <= points; ++sample) {
    std::vector<double> x = problem.start();
    if (sample > 0) {
      // Deterministic interior point: uniform in the middle 80% of each box,
      // with infinite bounds replaced by a start-scaled span. Staying off the
      // box faces keeps the check away from element kinks (SqrtElement's
      // floor sits at/below the variance lower bounds).
      for (int i = 0; i < problem.num_vars(); ++i) {
        const std::size_t k = static_cast<std::size_t>(i);
        const double span = 1.0 + 0.5 * std::abs(x[k]);
        const double lo =
            std::isinf(problem.lower()[k]) ? x[k] - span : problem.lower()[k];
        const double hi = std::isinf(problem.upper()[k]) ? x[k] + span : problem.upper()[k];
        x[k] = lo + (0.1 + 0.8 * rng.uniform01()) * (hi - lo);
      }
    }
    const nlp::DerivativeReport dr = nlp::check_problem_derivatives(problem, x);
    if (!dr.ok(tol)) {
      report.add("MOD003", locus,
                 std::string(sample == 0 ? "at the feasible start point"
                                         : "at randomized point " + std::to_string(sample)) +
                     ": max gradient error " + fmt(dr.max_gradient_error) +
                     ", max Hessian error " + fmt(dr.max_hessian_error) + " (tolerance " +
                     fmt(tol) + ")",
                 "an analytic derivative disagrees with central differences; the optimizer "
                 "would converge to a wrong sizing or stall");
    }
  }
  return report;
}

Report audit_spec(const core::SizingSpec& spec, const netlist::Circuit& circuit) {
  Report report;
  if (spec.max_speed < 1.0) {
    report.add("MOD004", "sizing spec",
               "max_speed = " + fmt(spec.max_speed) +
                   " is below 1, so the sizing box S in [1, limit] is empty");
  }
  if (spec.objective.kind == core::ObjectiveKind::kWeighted &&
      static_cast<int>(spec.objective.weights.size()) < circuit.num_nodes()) {
    report.add("MOD004", "sizing spec",
               "weighted objective carries " + std::to_string(spec.objective.weights.size()) +
                   " weights for " + std::to_string(circuit.num_nodes()) + " nodes",
               "weights must be indexed by NodeId (ssta::power_weights produces the right shape)");
  }
  if (spec.delay_constraint && spec.delay_constraint->bound <= 0.0) {
    report.add("MOD004", "sizing spec",
               "delay bound " + fmt(spec.delay_constraint->bound) +
                   " is not positive, but gate delays are (t_int > 0)");
  }
  return report;
}

Report audit_view_compilability(const netlist::Circuit& circuit) {
  Report report;
  const netlist::CellLibrary& lib = circuit.library();
  std::vector<char> cell_flagged(static_cast<std::size_t>(lib.size()), 0);
  for (NodeId id = 0; id < circuit.num_nodes(); ++id) {
    const netlist::Node& n = circuit.node(id);
    if (!std::isfinite(n.wire_load) || (n.is_output && !std::isfinite(n.pad_load))) {
      report.add("MOD005", "node '" + n.name + "'",
                 "wire/pad load (" + fmt(n.wire_load) + " / " + fmt(n.pad_load) +
                     ") is not finite, so the node's precomputed static load would be NaN/Inf",
                 "Circuit::finalize() would reject the circuit when compiling its TimingView");
    }
    if (n.kind != NodeKind::kGate || n.cell < 0 || n.cell >= lib.size()) continue;
    if (cell_flagged[static_cast<std::size_t>(n.cell)]) continue;  // one finding per cell
    const netlist::CellType& cell = lib.cell(n.cell);
    const struct {
      const char* what;
      double value;
    } params[] = {{"intrinsic delay t_int", cell.t_int},
                  {"drive coefficient c", cell.c},
                  {"input capacitance c_in", cell.c_in},
                  {"area", cell.area}};
    for (const auto& p : params) {
      if (std::isfinite(p.value)) continue;
      cell_flagged[static_cast<std::size_t>(n.cell)] = 1;
      report.add("MOD005", "cell '" + cell.name + "'",
                 std::string(p.what) + " = " + fmt(p.value) +
                     " is not finite; the TimingView precomputes it into per-gate constants "
                     "and per-fanout-edge capacitances, poisoning every timing sweep",
                 "Circuit::finalize() would reject the circuit when compiling its TimingView");
      break;
    }
  }
  return report;
}

Report audit_model(const netlist::Circuit& circuit, const ModelAuditOptions& options) {
  Report report;
  core::SizingSpec base;
  base.sigma_model = options.sigma_model;
  base.max_speed = options.max_speed;
  report.merge(audit_spec(base, circuit));
  if (report.has_errors()) return report;  // a broken spec makes the builds meaningless

  const std::vector<double> unit(static_cast<std::size_t>(circuit.num_nodes()), 1.0);
  report.merge(
      audit_clark_degeneracy(circuit, options.sigma_model, unit, options.theta_threshold));

  // Audit spec: mu + 3 sigma objective plus a just-tight delay constraint so
  // the formulation materializes every element family (Product, Square,
  // Clark, Sqrt) and the inequality slack.
  const ssta::DelayCalculator calc(circuit, options.sigma_model);
  NormalRV total{0.0, 0.0};
  {
    // Cheap bound for the constraint: SSTA at S = 1 (the slowest sizing).
    const std::vector<NormalRV> delays = calc.all_delays(unit);
    std::vector<NormalRV> arrival(static_cast<std::size_t>(circuit.num_nodes()));
    for (NodeId id : circuit.topo_order()) {
      const netlist::Node& n = circuit.node(id);
      if (n.kind == NodeKind::kPrimaryInput) continue;
      NormalRV u = arrival[static_cast<std::size_t>(n.fanins[0])];
      for (std::size_t k = 1; k < n.fanins.size(); ++k) {
        u = stat::clark_max(u, arrival[static_cast<std::size_t>(n.fanins[k])]);
      }
      arrival[static_cast<std::size_t>(id)] = stat::add(u, delays[static_cast<std::size_t>(id)]);
    }
    total = arrival[static_cast<std::size_t>(circuit.outputs()[0])];
    for (std::size_t k = 1; k < circuit.outputs().size(); ++k) {
      total = stat::clark_max(total, arrival[static_cast<std::size_t>(circuit.outputs()[k])]);
    }
  }
  core::SizingSpec audit_spec_ = base;
  audit_spec_.objective = core::Objective::min_delay(3.0);
  audit_spec_.delay_constraint =
      core::DelayConstraint::at_most(0.98 * total.quantile_offset(3.0), 3.0);

  const int num_formulations = options.audit_nary ? 2 : 1;
  for (int variant = 0; variant < num_formulations; ++variant) {
    audit_spec_.nary_fanin_max = variant == 1;
    const char* what = variant == 1 ? "full-space, n-ary max" : "full-space, pairwise max";
    const core::FullSpaceFormulation form = core::build_full_space(circuit, audit_spec_, 1.0);
    report.merge(audit_problem_bounds(*form.problem, what));
    if (options.derivative_audit && options.derivative_points >= 0) {
      report.merge(audit_problem_derivatives(*form.problem, what, options.derivative_points,
                                             options.rng_seed + static_cast<unsigned>(variant),
                                             options.derivative_tol));
    }
  }
  return report;
}

}  // namespace statsize::analyze
