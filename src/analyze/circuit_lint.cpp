#include "analyze/circuit_lint.h"

#include <algorithm>
#include <map>
#include <queue>
#include <string>

namespace statsize::analyze {

namespace {

using netlist::Circuit;
using netlist::kInvalidNode;
using netlist::Node;
using netlist::NodeId;
using netlist::NodeKind;

std::string locus_of(const Circuit& c, NodeId id) {
  const Node& n = c.node(id);
  return (n.kind == NodeKind::kGate ? "gate '" : "input '") + n.name + "'";
}

/// Iterative Tarjan SCC over the fanout edges; returns the component id of
/// every node (components are emitted in reverse topological order, but only
/// membership matters here).
std::vector<int> strongly_connected_components(const std::vector<std::vector<NodeId>>& fanouts) {
  const int n = static_cast<int>(fanouts.size());
  std::vector<int> comp(static_cast<std::size_t>(n), -1);
  std::vector<int> index(static_cast<std::size_t>(n), -1);
  std::vector<int> lowlink(static_cast<std::size_t>(n), 0);
  std::vector<char> on_stack(static_cast<std::size_t>(n), 0);
  std::vector<NodeId> stack;
  struct Frame {
    NodeId v;
    std::size_t next_edge;
  };
  std::vector<Frame> call;
  int next_index = 0;
  int next_comp = 0;

  for (NodeId root = 0; root < n; ++root) {
    if (index[static_cast<std::size_t>(root)] >= 0) continue;
    call.push_back({root, 0});
    while (!call.empty()) {
      Frame& f = call.back();
      const std::size_t v = static_cast<std::size_t>(f.v);
      if (f.next_edge == 0) {
        index[v] = lowlink[v] = next_index++;
        stack.push_back(f.v);
        on_stack[v] = 1;
      }
      if (f.next_edge < fanouts[v].size()) {
        const NodeId w = fanouts[v][f.next_edge++];
        const std::size_t wi = static_cast<std::size_t>(w);
        if (index[wi] < 0) {
          call.push_back({w, 0});
        } else if (on_stack[wi]) {
          lowlink[v] = std::min(lowlink[v], index[wi]);
        }
        continue;
      }
      if (lowlink[v] == index[v]) {
        NodeId w;
        do {
          w = stack.back();
          stack.pop_back();
          on_stack[static_cast<std::size_t>(w)] = 0;
          comp[static_cast<std::size_t>(w)] = next_comp;
        } while (w != f.v);
        ++next_comp;
      }
      const int low_v = lowlink[v];
      call.pop_back();
      if (!call.empty()) {
        const std::size_t parent = static_cast<std::size_t>(call.back().v);
        lowlink[parent] = std::min(lowlink[parent], low_v);
      }
    }
  }
  return comp;
}

/// Walks fanin edges inside one SCC to recover an actual cycle, returned in
/// signal-flow order starting and ending at the same node.
std::vector<NodeId> representative_cycle(const Circuit& c, const std::vector<int>& comp,
                                         int target_comp, NodeId start) {
  std::vector<NodeId> path;
  std::vector<int> pos_in_path(static_cast<std::size_t>(c.num_nodes()), -1);
  NodeId cur = start;
  while (pos_in_path[static_cast<std::size_t>(cur)] < 0) {
    pos_in_path[static_cast<std::size_t>(cur)] = static_cast<int>(path.size());
    path.push_back(cur);
    NodeId next = kInvalidNode;
    for (NodeId f : c.node(cur).fanins) {
      if (f >= 0 && f < c.num_nodes() && comp[static_cast<std::size_t>(f)] == target_comp) {
        next = f;
        break;
      }
    }
    if (next == kInvalidNode) break;  // defensive: should not happen in a nontrivial SCC
    cur = next;
  }
  std::vector<NodeId> cycle(path.begin() + pos_in_path[static_cast<std::size_t>(cur)],
                            path.end());
  // The walk followed fanins (reverse signal flow); flip it for the message.
  std::reverse(cycle.begin(), cycle.end());
  return cycle;
}

}  // namespace

Report lint_circuit_structure(const Circuit& circuit, std::vector<NodeId>* topo_out) {
  Report report;
  const int n = circuit.num_nodes();
  const netlist::CellLibrary& lib = circuit.library();

  // ---- Per-node checks; collect the valid fanin edges as we go.
  std::vector<std::vector<NodeId>> fanouts(static_cast<std::size_t>(n));
  std::vector<int> indegree(static_cast<std::size_t>(n), 0);
  bool edges_complete = true;
  std::map<std::string, NodeId> name_seen;
  for (NodeId id = 0; id < n; ++id) {
    const Node& node = circuit.node(id);
    const std::size_t i = static_cast<std::size_t>(id);

    if (const auto [it, fresh] = name_seen.emplace(node.name, id); !fresh) {
      report.add("CIR010", locus_of(circuit, id),
                 "name also used by node " + std::to_string(it->second) + " ('" +
                     circuit.node(it->second).name + "')",
                 "give every node a unique name so reports and size tables are unambiguous");
    }

    if (node.wire_load < 0.0 || (node.is_output && node.pad_load < 0.0)) {
      report.add("CIR008", locus_of(circuit, id),
                 node.wire_load < 0.0
                     ? "wire load " + std::to_string(node.wire_load) + " is negative"
                     : "pad load " + std::to_string(node.pad_load) + " is negative",
                 "loads enter eq. 14 as capacitances and must be non-negative");
    }
    if (node.is_output && node.kind == NodeKind::kGate && node.pad_load == 0.0) {
      report.add("CIR009", locus_of(circuit, id), "primary output carries zero pad load",
                 "pass a pad capacitance to mark_output so sizing sees the real output load");
    }

    if (node.kind != NodeKind::kGate) continue;

    if (node.cell < 0 || node.cell >= lib.size()) {
      report.add("CIR003", locus_of(circuit, id),
                 "cell id " + std::to_string(node.cell) + " is outside the library (size " +
                     std::to_string(lib.size()) + ")");
    } else if (static_cast<int>(node.fanins.size()) != lib.cell(node.cell).num_inputs) {
      report.add("CIR003", locus_of(circuit, id),
                 "has " + std::to_string(node.fanins.size()) + " fanins but cell " +
                     lib.cell(node.cell).name + " expects " +
                     std::to_string(lib.cell(node.cell).num_inputs));
    }

    for (std::size_t pin = 0; pin < node.fanins.size(); ++pin) {
      const NodeId f = node.fanins[pin];
      if (f == kInvalidNode) {
        report.add("CIR002", locus_of(circuit, id),
                   "input pin " + std::to_string(pin) + " is unconnected",
                   "wire every deferred gate with set_fanin before finalize()");
        edges_complete = false;
      } else if (f < 0 || f >= n) {
        report.add("CIR002", locus_of(circuit, id),
                   "input pin " + std::to_string(pin) + " references node id " +
                       std::to_string(f) + ", which does not exist");
        edges_complete = false;
      } else {
        fanouts[static_cast<std::size_t>(f)].push_back(id);
        ++indegree[i];
      }
    }
  }

  if (circuit.outputs().empty()) {
    report.add("CIR004", "circuit", "no node is marked as a primary output",
               "call mark_output on every pad-driving node before finalize()");
  }

  // ---- Topological order (Kahn, min-id first so fanin-ordered construction
  // keeps identity order) and cycle extraction.
  std::priority_queue<NodeId, std::vector<NodeId>, std::greater<NodeId>> ready;
  for (NodeId id = 0; id < n; ++id) {
    if (indegree[static_cast<std::size_t>(id)] == 0) ready.push(id);
  }
  std::vector<NodeId> order;
  order.reserve(static_cast<std::size_t>(n));
  while (!ready.empty()) {
    const NodeId id = ready.top();
    ready.pop();
    order.push_back(id);
    for (NodeId fo : fanouts[static_cast<std::size_t>(id)]) {
      if (--indegree[static_cast<std::size_t>(fo)] == 0) ready.push(fo);
    }
  }
  const bool acyclic = static_cast<int>(order.size()) == n;
  if (!acyclic) {
    const std::vector<int> comp = strongly_connected_components(fanouts);
    std::vector<int> comp_size(static_cast<std::size_t>(n), 0);
    for (int cid : comp) ++comp_size[static_cast<std::size_t>(cid)];
    std::vector<char> reported(static_cast<std::size_t>(n), 0);
    for (NodeId id = 0; id < n; ++id) {
      const int cid = comp[static_cast<std::size_t>(id)];
      if (reported[static_cast<std::size_t>(cid)]) continue;
      const bool self_loop =
          std::find(circuit.node(id).fanins.begin(), circuit.node(id).fanins.end(), id) !=
          circuit.node(id).fanins.end();
      if (comp_size[static_cast<std::size_t>(cid)] < 2 && !self_loop) continue;
      reported[static_cast<std::size_t>(cid)] = 1;
      std::string chain;
      const std::vector<NodeId> cycle = representative_cycle(circuit, comp, cid, id);
      for (NodeId v : cycle) chain += circuit.node(v).name + " -> ";
      chain += circuit.node(cycle.front()).name;
      report.add("CIR001", locus_of(circuit, id), "combinational cycle: " + chain,
                 "statistical timing propagation (eq. 4) requires an acyclic netlist; break "
                 "the loop or register it");
    }
  }
  if (topo_out && acyclic && edges_complete) *topo_out = std::move(order);

  // ---- Reachability from the primary outputs (over valid fanin edges).
  std::vector<char> live(static_cast<std::size_t>(n), 0);
  std::vector<NodeId> stack(circuit.outputs().begin(), circuit.outputs().end());
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (id < 0 || id >= n || live[static_cast<std::size_t>(id)]) continue;
    live[static_cast<std::size_t>(id)] = 1;
    for (NodeId f : circuit.node(id).fanins) {
      if (f >= 0 && f < n) stack.push_back(f);
    }
  }
  for (NodeId id = 0; id < n; ++id) {
    const Node& node = circuit.node(id);
    const bool fanout_free = fanouts[static_cast<std::size_t>(id)].empty();
    if (node.kind == NodeKind::kGate && !live[static_cast<std::size_t>(id)]) {
      if (fanout_free && !node.is_output) {
        report.add("CIR006", locus_of(circuit, id), "drives nothing and is not an output",
                   "remove the gate or mark it as a primary output");
      } else {
        report.add("CIR005", locus_of(circuit, id),
                   "none of its transitive fanout reaches a primary output",
                   "the gate's speed factor would be an unconstrained NLP variable; remove the "
                   "dead logic");
      }
    }
    if (node.kind == NodeKind::kPrimaryInput && fanout_free && !node.is_output) {
      report.add("CIR007", locus_of(circuit, id), "drives no gate",
                 "unused inputs are harmless but usually indicate an import mismatch");
    }
  }

  return report;
}

}  // namespace statsize::analyze
