// Cell-library, sigma-model and size-table lint (rules LIB001..LIB010).
//
// The delay model (eq. 14) and the sigma model (eq. 16) are only physical for
// positive electrical constants and non-negative sigma; a single negative
// t_int silently flips the sizing trade-off instead of crashing. These rules
// audit raw CellType records (so defective candidate libraries can be linted
// before CellLibrary::add would reject them), an assembled CellLibrary, the
// sigma(mu) model, and discrete size tables.
//
// Layering note: like circuit_lint, this file must stay link-independent of
// statsize_netlist / statsize_ssta — it only uses inline accessors and the
// header-only SigmaModel struct.

#pragma once

#include <vector>

#include "analyze/diagnostic.h"
#include "netlist/cell_library.h"
#include "ssta/delay_model.h"

namespace statsize::analyze {

/// Audits raw cell records (duplicates, pin counts, electrical constants).
Report lint_cells(const std::vector<netlist::CellType>& cells);

/// lint_cells over the library's contents, plus arity-coverage notes
/// (a missing k-input cell makes BLIF import of k-input nodes fail).
Report lint_library(const netlist::CellLibrary& library);

/// Audits sigma(mu) = kappa * mu + offset over the attainable mean-delay
/// range [min_intrinsic_delay, inf): negative sigma is non-physical (the NLP
/// would take sqrt of a negative variance target), kappa < 0 inverts the
/// variability-vs-delay trade-off.
Report lint_sigma_model(const ssta::SigmaModel& model, double min_intrinsic_delay);

/// Audits a discrete size table: non-empty, strictly ascending, all >= 1
/// (speed factors below 1 are outside the paper's sizing box).
Report lint_size_table(const std::vector<double>& sizes);

}  // namespace statsize::analyze
