#include "core/reduced_space.h"

#include <cmath>
#include <stdexcept>

#include "runtime/level_schedule.h"
#include "runtime/runtime.h"
#include "ssta/ssta.h"
#include "stat/clark.h"

namespace statsize::core {

using netlist::NodeId;
using netlist::NodeKind;
using stat::ClarkGrad;
using stat::NormalRV;

ReducedEvaluator::ReducedEvaluator(const netlist::Circuit& circuit, ssta::SigmaModel sigma_model)
    : circuit_(&circuit), sigma_model_(sigma_model) {}

NormalRV ReducedEvaluator::eval(const std::vector<double>& speed) const {
  const ssta::DelayCalculator calc(*circuit_, sigma_model_);
  return ssta::run_ssta(calc, speed).circuit_delay;
}

NormalRV ReducedEvaluator::eval_with_grad(const std::vector<double>& speed, double seed_mu,
                                          double seed_var, std::vector<double>& grad) const {
  const netlist::Circuit& c = *circuit_;
  const std::size_t n = static_cast<std::size_t>(c.num_nodes());
  if (speed.size() != n) throw std::invalid_argument("speed must be indexed by NodeId");

  const ssta::DelayCalculator calc(c, sigma_model_);

  // ---- Forward sweep, recording the Clark gradient of every pairwise max.
  // Fold convention everywhere: operand A = running accumulator, operand B =
  // the new fanin/output arrival. Each gate's fold count (fanins - 1) is
  // known up front, so step slices can be preassigned and the sweep can run
  // level-parallel: a gate writes only arrival/delay[i] and its own step
  // slice, and reads strictly-lower-level arrivals. Per-gate arithmetic is
  // unchanged, so serial and parallel sweeps agree bit-for-bit.
  std::vector<NormalRV> arrival(n);
  std::vector<NormalRV> delay(n);
  std::vector<std::size_t> step_begin(n, 0);
  std::size_t gate_steps = 0;
  for (NodeId id : c.topo_order()) {
    const netlist::Node& node = c.node(id);
    if (node.kind == NodeKind::kPrimaryInput) continue;
    step_begin[static_cast<std::size_t>(id)] = gate_steps;
    gate_steps += node.fanins.size() - 1;
  }
  const std::vector<NodeId>& outs = c.outputs();
  const std::size_t out_step_begin = gate_steps;
  std::vector<ClarkGrad> steps(gate_steps + outs.size() - 1);

  auto eval_gate = [&](NodeId id) {
    const netlist::Node& node = c.node(id);
    const std::size_t i = static_cast<std::size_t>(id);
    NormalRV u = arrival[static_cast<std::size_t>(node.fanins[0])];
    for (std::size_t k = 1; k < node.fanins.size(); ++k) {
      ClarkGrad g;
      u = stat::clark_max_grad(u, arrival[static_cast<std::size_t>(node.fanins[k])], g);
      steps[step_begin[i] + (k - 1)] = g;
    }
    delay[i] = calc.delay(id, speed);
    arrival[i] = stat::add(u, delay[i]);
  };
  if (runtime::threads() > 1 && c.num_gates() >= 192) {
    runtime::LevelSchedule(c).for_each_gate(32, eval_gate);
  } else {
    for (NodeId id : c.topo_order()) {
      if (c.node(id).kind == NodeKind::kGate) eval_gate(id);
    }
  }

  NormalRV tmax = arrival[static_cast<std::size_t>(outs[0])];
  for (std::size_t k = 1; k < outs.size(); ++k) {
    ClarkGrad g;
    tmax = stat::clark_max_grad(tmax, arrival[static_cast<std::size_t>(outs[k])], g);
    steps[out_step_begin + (k - 1)] = g;
  }

  // ---- Adjoint sweep.
  grad.assign(n, 0.0);
  std::vector<double> amu(n, 0.0);   // adjoint of arrival mu
  std::vector<double> avar(n, 0.0);  // adjoint of arrival var

  // Through the primary-output fold (reverse order). The accumulator adjoint
  // flows backward through operand-A slots; operand-B feeds each output.
  {
    double acc_mu = seed_mu;
    double acc_var = seed_var;
    for (std::size_t k = outs.size(); k-- > 1;) {
      const ClarkGrad& g = steps[out_step_begin + (k - 1)];
      const std::size_t o = static_cast<std::size_t>(outs[k]);
      amu[o] += acc_mu * g.dmu[1] + acc_var * g.dvar[1];
      avar[o] += acc_mu * g.dmu[3] + acc_var * g.dvar[3];
      const double new_mu = acc_mu * g.dmu[0] + acc_var * g.dvar[0];
      const double new_var = acc_mu * g.dmu[2] + acc_var * g.dvar[2];
      acc_mu = new_mu;
      acc_var = new_var;
    }
    amu[static_cast<std::size_t>(outs[0])] += acc_mu;
    avar[static_cast<std::size_t>(outs[0])] += acc_var;
  }

  // Through the gates in reverse topological order.
  const std::vector<NodeId>& topo = c.topo_order();
  const double kappa = sigma_model_.kappa;
  const double offset = sigma_model_.offset;
  for (std::size_t t = topo.size(); t-- > 0;) {
    const NodeId id = topo[t];
    const netlist::Node& node = c.node(id);
    if (node.kind != NodeKind::kGate) continue;
    const std::size_t i = static_cast<std::size_t>(id);
    const double a_mu = amu[i];
    const double a_var = avar[i];
    if (a_mu == 0.0 && a_var == 0.0) continue;

    // T = U + t: gate-delay adjoints equal the arrival adjoints.
    // var_t = (kappa mu_t + offset)^2 chains var sensitivity onto mu_t.
    const double sigma_t = kappa * delay[i].mu + offset;
    const double adj_mu_t = a_mu + a_var * 2.0 * kappa * sigma_t;

    // mu_t = t_int + c * load / S: sensitivities to this gate's own S and to
    // every fanout's S (their pins are part of the load).
    const netlist::CellType& cell = c.library().cell(node.cell);
    const double s_own = speed[i];
    const double load = c.load_capacitance(id, speed);
    grad[i] += adj_mu_t * (-cell.c * load / (s_own * s_own));
    for (NodeId fo : node.fanouts) {
      const std::size_t fi = static_cast<std::size_t>(fo);
      grad[fi] += adj_mu_t * cell.c * c.library().cell(c.node(fo).cell).c_in / s_own;
    }

    // Through this gate's fanin fold, reverse order.
    double acc_mu = a_mu;
    double acc_var = a_var;
    for (std::size_t k = node.fanins.size(); k-- > 1;) {
      const ClarkGrad& g = steps[step_begin[i] + (k - 1)];
      const std::size_t f = static_cast<std::size_t>(node.fanins[k]);
      amu[f] += acc_mu * g.dmu[1] + acc_var * g.dvar[1];
      avar[f] += acc_mu * g.dmu[3] + acc_var * g.dvar[3];
      const double new_mu = acc_mu * g.dmu[0] + acc_var * g.dvar[0];
      const double new_var = acc_mu * g.dmu[2] + acc_var * g.dvar[2];
      acc_mu = new_mu;
      acc_var = new_var;
    }
    const std::size_t f0 = static_cast<std::size_t>(node.fanins[0]);
    amu[f0] += acc_mu;
    avar[f0] += acc_var;
  }
  return tmax;
}

double ReducedEvaluator::eval_metric(const std::vector<double>& speed, double sigma_weight,
                                     std::vector<double>* grad) const {
  if (grad == nullptr) {
    const NormalRV t = eval(speed);
    return t.mu + sigma_weight * t.sigma();
  }
  // d(mu + k sigma) = d mu + k/(2 sigma) d var; the seeds need sigma, which
  // a cheap forward pass provides first.
  const NormalRV probe = eval(speed);
  const double sigma = probe.sigma();
  const double seed_var = (sigma_weight != 0.0 && sigma > 1e-12)
                              ? sigma_weight / (2.0 * sigma)
                              : 0.0;
  const NormalRV t = eval_with_grad(speed, 1.0, seed_var, *grad);
  return t.mu + sigma_weight * t.sigma();
}

}  // namespace statsize::core
