#include "core/reduced_space.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <iterator>
#include <stdexcept>
#include <string>
#include <utility>

#include "netlist/timing_view.h"
#include "runtime/level_schedule.h"
#include "runtime/runtime.h"
#include "runtime/scatter_plan.h"
#include "ssta/ssta.h"
#include "stat/clark.h"

namespace statsize::core {

using netlist::NodeId;
using netlist::NodeKind;
using stat::ClarkGrad;
using stat::NormalRV;

namespace {

/// Bitwise moment comparison — the incremental sweep's propagation-
/// termination predicate (see IncrementalEngine; same rationale).
bool same_bits(const NormalRV& a, const NormalRV& b) {
  return std::memcmp(&a.mu, &b.mu, sizeof(double)) == 0 &&
         std::memcmp(&a.var, &b.var, sizeof(double)) == 0;
}

}  // namespace

// Per-level scatter structure for the adjoint sweep. Structural only — it
// depends on the circuit topology, not on speeds or seeds — so it is built
// once (lazily, on the first parallel adjoint) and reused by every gradient
// call for the lifetime of the evaluator.
//
// Each gate contributes one fanin item (targets: its fanins in the serial
// fold's write order — fanins[n-1] .. fanins[1], then fanins[0]) folded into
// both amu and avar, and one fanout item (targets: its fanouts in order)
// folded into grad. Slot order inside a level is gate position then
// within-gate write order, which is exactly the serial sweep's accumulation
// order — so fold_add produces equal doubles (DESIGN.md §7).
struct ReducedEvaluator::AdjointPlans {
  struct Level {
    runtime::ScatterPlan fanin_plan;
    runtime::ScatterPlan fanout_plan;
  };
  std::vector<Level> levels;
  std::vector<std::size_t> fanin_slot;   ///< NodeId -> level-local first fanin slot
  std::vector<std::size_t> fanout_slot;  ///< NodeId -> level-local first fanout slot
  // Scratch reused across calls, sized to the widest level.
  std::vector<double> amu_vals;
  std::vector<double> avar_vals;
  std::vector<double> grad_vals;

  AdjointPlans(const netlist::TimingView& view, const runtime::LevelSchedule& sched) {
    const std::size_t n = static_cast<std::size_t>(view.num_nodes());
    fanin_slot.assign(n, 0);
    fanout_slot.assign(n, 0);
    levels.resize(static_cast<std::size_t>(sched.num_levels()));
    std::size_t max_fanin = 0;
    std::size_t max_fanout = 0;
    std::vector<NodeId> rev;
    for (int l = 0; l < sched.num_levels(); ++l) {
      Level& lv = levels[static_cast<std::size_t>(l)];
      for (NodeId id : sched.level(l)) {
        const netlist::NodeSpan fanins = view.fanins(id);
        const netlist::NodeSpan fanouts = view.fanouts(id);
        rev.assign(std::make_reverse_iterator(fanins.end()),
                   std::make_reverse_iterator(fanins.begin()));
        fanin_slot[static_cast<std::size_t>(id)] = lv.fanin_plan.add_item(rev.data(), rev.size());
        fanout_slot[static_cast<std::size_t>(id)] =
            lv.fanout_plan.add_item(fanouts.begin(), fanouts.size());
      }
      lv.fanin_plan.freeze(n);
      lv.fanout_plan.freeze(n);
      max_fanin = std::max(max_fanin, lv.fanin_plan.num_slots());
      max_fanout = std::max(max_fanout, lv.fanout_plan.num_slots());
    }
    amu_vals.resize(max_fanin);
    avar_vals.resize(max_fanin);
    grad_vals.resize(max_fanout);
  }
};

// The persistent forward tape (DESIGN.md §12): everything the adjoint sweep
// reads, kept across calls so an incremental forward only rewrites the
// recomputed cone's slices. `steps` slices are preassigned per gate
// (structure-only, like the scatter plans), so a partial rewrite cannot
// shift any other gate's slice.
struct ReducedEvaluator::ForwardCache {
  // Structure-only, built once per evaluator.
  bool structure_built = false;
  std::vector<std::size_t> step_begin;  ///< NodeId -> first step slot
  std::size_t out_step_begin = 0;
  std::vector<ClarkGrad> steps;

  // Tape state from the last forward sweep.
  bool valid = false;
  std::uint64_t view_epoch = 0;  ///< view.epoch() when the tape was written
  std::vector<double> speed;
  std::vector<NormalRV> arrival;
  std::vector<NormalRV> delay;

  // Edits declared via note_edits since the last sweep.
  std::vector<NodeId> noted;
  std::vector<unsigned char> noted_mask;
  std::uint64_t noted_epoch = 0;

  // Worklist scratch (persistent to avoid per-call allocation).
  std::vector<NodeId> dirty;
  std::vector<unsigned char> dirty_mask;
  std::vector<std::vector<NodeId>> bucket;  ///< per gate level
  std::vector<unsigned char> queued_mask;

  std::size_t last_recomputes = 0;
};

ReducedEvaluator::ReducedEvaluator(const netlist::Circuit& circuit, ssta::SigmaModel sigma_model)
    : circuit_(&circuit), sigma_model_(sigma_model) {}

ReducedEvaluator::ReducedEvaluator(const netlist::TimingView& view, ssta::SigmaModel sigma_model)
    : view_(&view), sigma_model_(sigma_model) {}

ReducedEvaluator::~ReducedEvaluator() = default;

const netlist::Circuit& ReducedEvaluator::circuit() const {
  if (circuit_ == nullptr) {
    throw std::logic_error(
        "ReducedEvaluator::circuit: evaluator was constructed from a bare "
        "TimingView (ECO edit path) and has no backing Circuit");
  }
  return *circuit_;
}

const netlist::TimingView& ReducedEvaluator::resolve_view() const {
  return circuit_ != nullptr ? circuit_->view() : *view_;
}

NormalRV ReducedEvaluator::eval(const std::vector<double>& speed) const {
  const ssta::DelayCalculator calc(resolve_view(), sigma_model_);
  return ssta::run_ssta(calc, speed).circuit_delay;
}

void ReducedEvaluator::note_edits(const std::vector<NodeId>& nodes) {
  const netlist::TimingView& view = resolve_view();
  if (!fwd_) fwd_ = std::make_unique<ForwardCache>();
  ForwardCache& f = *fwd_;
  const std::size_t n = static_cast<std::size_t>(view.num_nodes());
  if (f.noted_mask.size() != n) f.noted_mask.assign(n, 0);
  for (NodeId u : nodes) {
    if (u < 0 || u >= static_cast<NodeId>(n)) {
      throw std::invalid_argument("ReducedEvaluator::note_edits: node " + std::to_string(u) +
                                  " is out of range");
    }
    unsigned char& m = f.noted_mask[static_cast<std::size_t>(u)];
    if (!m) {
      m = 1;
      f.noted.push_back(u);
    }
  }
  f.noted_epoch = view.epoch();
}

void ReducedEvaluator::invalidate() {
  if (!fwd_) return;
  fwd_->valid = false;
  for (NodeId u : fwd_->noted) fwd_->noted_mask[static_cast<std::size_t>(u)] = 0;
  fwd_->noted.clear();
}

std::size_t ReducedEvaluator::last_forward_recomputes() const {
  return fwd_ ? fwd_->last_recomputes : 0;
}

NormalRV ReducedEvaluator::forward_sweep(const netlist::TimingView& view,
                                         const std::vector<double>& speed) const {
  const std::size_t n = static_cast<std::size_t>(view.num_nodes());
  if (!fwd_) fwd_ = std::make_unique<ForwardCache>();
  ForwardCache& f = *fwd_;
  const std::vector<NodeId>& outs = view.outputs();

  if (!f.structure_built) {
    f.step_begin.assign(n, 0);
    std::size_t gate_steps = 0;
    for (NodeId id : view.gates_in_topo_order()) {
      const netlist::NodeSpan fanins = view.fanins(id);
      if (fanins.empty()) {
        // Unreachable through the public builders (CellLibrary rejects cells
        // with num_inputs < 1 and the BLIF reader maps zero-fanin .names to
        // auxiliary inputs), but a fanin-less gate would underflow the
        // step-slice arithmetic below — fail loudly instead.
        const std::string name =
            circuit_ != nullptr ? circuit_->node(id).name : "gate#" + std::to_string(id);
        throw std::invalid_argument("ReducedEvaluator::eval_with_grad: gate '" + name +
                                    "' has no fanins; its arrival fold is undefined");
      }
      f.step_begin[static_cast<std::size_t>(id)] = gate_steps;
      gate_steps += fanins.size() - 1;
    }
    f.out_step_begin = gate_steps;
    f.steps.resize(gate_steps + outs.size() - 1);
    if (f.noted_mask.size() != n) f.noted_mask.assign(n, 0);
    f.dirty_mask.assign(n, 0);
    f.queued_mask.assign(n, 0);
    f.bucket.assign(static_cast<std::size_t>(view.num_levels()), {});
    f.structure_built = true;
  }

  const ssta::DelayCalculator calc(view, sigma_model_);

  // Records gate `id`'s fold into the tape. Fold convention everywhere:
  // operand A = running accumulator, operand B = the new fanin/output
  // arrival. A gate writes only arrival/delay[i] and its own step slice and
  // reads strictly-lower-level arrivals, so the full sweep can run
  // level-parallel with bit-identical results; the incremental path below
  // reuses the identical per-gate arithmetic serially.
  auto eval_gate = [&](NodeId id) {
    const netlist::NodeSpan fanins = view.fanins(id);
    const std::size_t i = static_cast<std::size_t>(id);
    NormalRV u = f.arrival[static_cast<std::size_t>(fanins[0])];
    for (std::size_t k = 1; k < fanins.size(); ++k) {
      ClarkGrad g;
      u = stat::clark_max_grad(u, f.arrival[static_cast<std::size_t>(fanins[k])], g);
      f.steps[f.step_begin[i] + (k - 1)] = g;
    }
    f.delay[i] = calc.delay(id, speed);
    f.arrival[i] = stat::add(u, f.delay[i]);
  };

  // Incremental is sound only when the tape is valid AND every view edit
  // since the tape was written is accounted for: either the epoch is
  // unchanged (speed-diff dirt only) or note_edits was called after the last
  // edit (noted_epoch caught up). An un-noted edit leaves noted_epoch
  // behind and forces the full resweep.
  const std::uint64_t cur_epoch = view.epoch();
  const bool incremental =
      f.valid && f.speed.size() == n &&
      (cur_epoch == f.view_epoch || (!f.noted.empty() && cur_epoch == f.noted_epoch));

  if (!incremental) {
    f.arrival.assign(n, NormalRV{});
    f.delay.assign(n, NormalRV{});
    const bool parallel =
        runtime::threads() > 1 && view.num_gates() >= ssta::kParallelGateCutoff;
    if (parallel) {
      runtime::LevelSchedule(view).for_each_gate(ssta::kGateGrain, eval_gate);
    } else {
      for (NodeId id : view.gates_in_topo_order()) eval_gate(id);
    }
    f.last_recomputes = static_cast<std::size_t>(view.num_gates());
  } else {
    // Delay-dirty set: speed-diff gates and noted nodes, each widened by its
    // gate fanins (a driver's load carries the edited gate's c_in * S term).
    f.dirty.clear();
    auto mark = [&](NodeId g) {
      if (!view.is_gate(g)) return;
      unsigned char& m = f.dirty_mask[static_cast<std::size_t>(g)];
      if (!m) {
        m = 1;
        f.dirty.push_back(g);
      }
    };
    for (NodeId g : view.gates_in_topo_order()) {
      const std::size_t i = static_cast<std::size_t>(g);
      if (std::memcmp(&speed[i], &f.speed[i], sizeof(double)) != 0) {
        mark(g);
        for (NodeId fi : view.fanins(g)) mark(fi);
      }
    }
    for (NodeId u : f.noted) {
      mark(u);
      for (NodeId fi : view.fanins(u)) mark(fi);
    }
    // Recompute dirty delays; a bitwise-changed delay seeds the worklist.
    for (NodeId g : f.dirty) {
      const std::size_t i = static_cast<std::size_t>(g);
      f.dirty_mask[i] = 0;
      const NormalRV d = calc.delay(g, speed);
      if (!same_bits(d, f.delay[i])) {
        f.delay[i] = d;
        if (!f.queued_mask[i]) {
          f.queued_mask[i] = 1;
          f.bucket[static_cast<std::size_t>(view.level(g) - 1)].push_back(g);
        }
      }
    }
    f.dirty.clear();

    // Level-ordered cone repropagation (serial: the cone is the small case
    // this path exists for; a gate not refolded keeps its bitwise-identical
    // tape slice). A changed arrival enqueues the gate's fanouts — always at
    // strictly higher levels, so the bucket being drained never grows.
    std::size_t recomputes = 0;
    const int num_levels = view.num_levels();
    for (int l = 0; l < num_levels; ++l) {
      std::vector<NodeId>& bucket = f.bucket[static_cast<std::size_t>(l)];
      if (bucket.empty()) continue;
      for (std::size_t bi = 0; bi < bucket.size(); ++bi) {
        const NodeId g = bucket[bi];
        const std::size_t i = static_cast<std::size_t>(g);
        f.queued_mask[i] = 0;
        const NormalRV before = f.arrival[i];
        eval_gate(g);
        ++recomputes;
        if (same_bits(before, f.arrival[i])) continue;
        for (NodeId fo : view.fanouts(g)) {
          const std::size_t o = static_cast<std::size_t>(fo);
          if (!f.queued_mask[o]) {
            f.queued_mask[o] = 1;
            f.bucket[static_cast<std::size_t>(view.level(fo) - 1)].push_back(fo);
          }
        }
      }
      bucket.clear();
    }
    f.last_recomputes = recomputes;
  }

  // The primary-output fold is always re-recorded (it is O(outputs) and its
  // operand-A accumulator depends on every output's arrival).
  NormalRV tmax = f.arrival[static_cast<std::size_t>(outs[0])];
  for (std::size_t k = 1; k < outs.size(); ++k) {
    ClarkGrad g;
    tmax = stat::clark_max_grad(tmax, f.arrival[static_cast<std::size_t>(outs[k])], g);
    f.steps[f.out_step_begin + (k - 1)] = g;
  }

  f.speed = speed;
  f.view_epoch = cur_epoch;
  for (NodeId u : f.noted) f.noted_mask[static_cast<std::size_t>(u)] = 0;
  f.noted.clear();
  f.valid = true;
  return tmax;
}

template <class SeedFn>
NormalRV ReducedEvaluator::eval_with_grad_impl(const std::vector<double>& speed,
                                               const SeedFn& seed_fn,
                                               std::vector<double>& grad) const {
  const std::size_t n =
      static_cast<std::size_t>(circuit_ != nullptr ? circuit_->num_nodes() : view_->num_nodes());
  if (speed.size() != n) throw std::invalid_argument("speed must be indexed by NodeId");
  // Guard before view(): an output-less circuit cannot survive finalize(), so
  // this diagnostic must fire pre-finalize (core_test pins it).
  const std::vector<NodeId>& outs = circuit_ != nullptr ? circuit_->outputs() : view_->outputs();
  if (outs.empty()) {
    throw std::invalid_argument(
        "ReducedEvaluator::eval_with_grad: circuit has no primary outputs, so the "
        "circuit delay (and its gradient) is undefined");
  }
  const netlist::TimingView& view = resolve_view();

  // ---- Forward sweep (full or dirty-cone incremental), recording the tape.
  const NormalRV tmax = forward_sweep(view, speed);
  ForwardCache& f = *fwd_;

  // The adjoint seed may depend on the forward result (eval_metric derives
  // its var seed from Tmax's own sigma — no separate probe sweep needed).
  const std::pair<double, double> seed = seed_fn(tmax);
  const double seed_mu = seed.first;
  const double seed_var = seed.second;

  // ---- Adjoint sweep.
  grad.assign(n, 0.0);
  std::vector<double> amu(n, 0.0);   // adjoint of arrival mu
  std::vector<double> avar(n, 0.0);  // adjoint of arrival var

  // Through the primary-output fold (reverse order). The accumulator adjoint
  // flows backward through operand-A slots; operand-B feeds each output.
  {
    double acc_mu = seed_mu;
    double acc_var = seed_var;
    for (std::size_t k = outs.size(); k-- > 1;) {
      const ClarkGrad& g = f.steps[f.out_step_begin + (k - 1)];
      const std::size_t o = static_cast<std::size_t>(outs[k]);
      amu[o] += acc_mu * g.dmu[1] + acc_var * g.dvar[1];
      avar[o] += acc_mu * g.dmu[3] + acc_var * g.dvar[3];
      const double new_mu = acc_mu * g.dmu[0] + acc_var * g.dvar[0];
      const double new_var = acc_mu * g.dmu[2] + acc_var * g.dvar[2];
      acc_mu = new_mu;
      acc_var = new_var;
    }
    amu[static_cast<std::size_t>(outs[0])] += acc_mu;
    avar[static_cast<std::size_t>(outs[0])] += acc_var;
  }

  // Through the gates, highest level first: a gate's amu/avar are final once
  // every fanout (always at a strictly higher level) has run. Both execution
  // modes traverse the *same* reverse level order and share gate_adjoint, so
  // every per-target accumulation happens in the same order with the same
  // per-contribution arithmetic — the parallel path merely stages the
  // contributions in ScatterPlan slots and folds them per level instead of
  // scattering directly.
  const double kappa = sigma_model_.kappa;
  const double offset = sigma_model_.offset;

  // Computes gate `id`'s adjoint contributions: applies the own-speed term to
  // grad[id] directly (disjoint across gates), writes the fanout grad terms
  // to fo_g (fanout order) and the fanin amu/avar terms to fin_mu/fin_var in
  // the serial fold's write order (fanins[n-1] .. fanins[1], then fanins[0]).
  // Returns false — nothing written — when the gate's adjoint is zero.
  auto gate_adjoint = [&](NodeId id, double* fo_g, double* fin_mu, double* fin_var) -> bool {
    const std::size_t i = static_cast<std::size_t>(id);
    const double a_mu = amu[i];
    const double a_var = avar[i];
    if (a_mu == 0.0 && a_var == 0.0) return false;

    // T = U + t: gate-delay adjoints equal the arrival adjoints.
    // var_t = (kappa mu_t + offset)^2 chains var sensitivity onto mu_t.
    const double sigma_t = kappa * f.delay[i].mu + offset;
    const double adj_mu_t = a_mu + a_var * 2.0 * kappa * sigma_t;

    // mu_t = t_int + c * load / S: sensitivities to this gate's own S and to
    // every fanout's S (their pins are part of the load). The per-edge sink
    // pin capacitances are the view's precomputed fanout_cin array — the same
    // doubles the load dot product reads.
    const double drive_c = view.drive_c(id);
    const double s_own = speed[i];
    const double load = view.load_capacitance(id, speed.data());
    grad[i] += adj_mu_t * (-drive_c * load / (s_own * s_own));
    const netlist::NodeSpan fanouts = view.fanouts(id);
    const double* fo_cin = view.fanout_cin(id);
    for (std::size_t k = 0; k < fanouts.size(); ++k) {
      fo_g[k] = adj_mu_t * drive_c * fo_cin[k] / s_own;
    }

    // Through this gate's fanin fold, reverse order.
    double acc_mu = a_mu;
    double acc_var = a_var;
    const netlist::NodeSpan fanins = view.fanins(id);
    const std::size_t nf = fanins.size();
    for (std::size_t k = nf; k-- > 1;) {
      const ClarkGrad& g = f.steps[f.step_begin[i] + (k - 1)];
      fin_mu[nf - 1 - k] = acc_mu * g.dmu[1] + acc_var * g.dvar[1];
      fin_var[nf - 1 - k] = acc_mu * g.dmu[3] + acc_var * g.dvar[3];
      const double new_mu = acc_mu * g.dmu[0] + acc_var * g.dvar[0];
      const double new_var = acc_mu * g.dmu[2] + acc_var * g.dvar[2];
      acc_mu = new_mu;
      acc_var = new_var;
    }
    fin_mu[nf - 1] = acc_mu;
    fin_var[nf - 1] = acc_var;
    return true;
  };

  const bool parallel =
      runtime::threads() > 1 && view.num_gates() >= ssta::kParallelGateCutoff;
  const runtime::LevelSchedule sched(view);
  if (parallel) {
    if (!plans_) plans_ = std::make_unique<AdjointPlans>(view, sched);
    AdjointPlans& plans = *plans_;
    sched.for_each_gate_reverse(
        ssta::kGateGrain,
        [&](NodeId id) {
          const std::size_t i = static_cast<std::size_t>(id);
          // Slot offsets are level-local: each level's gates write disjoint
          // slices of the shared scratch, folded before the next level runs.
          double* fo_g = plans.grad_vals.data() + plans.fanout_slot[i];
          double* fin_mu = plans.amu_vals.data() + plans.fanin_slot[i];
          double* fin_var = plans.avar_vals.data() + plans.fanin_slot[i];
          if (!gate_adjoint(id, fo_g, fin_mu, fin_var)) {
            // Zero adjoint: the serial sweep skips this gate entirely; fold
            // zeros so the folded sums stay equal (x + 0.0 == x).
            for (std::size_t k = 0; k < view.fanouts(id).size(); ++k) fo_g[k] = 0.0;
            for (std::size_t k = 0; k < view.fanins(id).size(); ++k) {
              fin_mu[k] = 0.0;
              fin_var[k] = 0.0;
            }
          }
        },
        [&](int l) {
          const AdjointPlans::Level& lv = plans.levels[static_cast<std::size_t>(l)];
          lv.fanin_plan.fold_add(plans.amu_vals.data(), amu.data());
          lv.fanin_plan.fold_add(plans.avar_vals.data(), avar.data());
          lv.fanout_plan.fold_add(plans.grad_vals.data(), grad.data());
        });
  } else {
    std::size_t max_fanin = 0;
    std::size_t max_fanout = 0;
    for (int l = 0; l < sched.num_levels(); ++l) {
      for (NodeId id : sched.level(l)) {
        max_fanin = std::max(max_fanin, view.fanins(id).size());
        max_fanout = std::max(max_fanout, view.fanouts(id).size());
      }
    }
    std::vector<double> fo_g(max_fanout);
    std::vector<double> fin_mu(max_fanin);
    std::vector<double> fin_var(max_fanin);
    for (int l = sched.num_levels(); l-- > 0;) {
      for (NodeId id : sched.level(l)) {
        if (!gate_adjoint(id, fo_g.data(), fin_mu.data(), fin_var.data())) continue;
        const netlist::NodeSpan fanouts = view.fanouts(id);
        for (std::size_t k = 0; k < fanouts.size(); ++k) {
          grad[static_cast<std::size_t>(fanouts[k])] += fo_g[k];
        }
        const netlist::NodeSpan fanins = view.fanins(id);
        const std::size_t nf = fanins.size();
        for (std::size_t j = 0; j < nf; ++j) {
          // Slot j targets fanins[nf-1-j] (the serial fold's write order).
          const std::size_t f2 = static_cast<std::size_t>(fanins[nf - 1 - j]);
          amu[f2] += fin_mu[j];
          avar[f2] += fin_var[j];
        }
      }
    }
  }
  return tmax;
}

NormalRV ReducedEvaluator::eval_with_grad(const std::vector<double>& speed, double seed_mu,
                                          double seed_var, std::vector<double>& grad) const {
  return eval_with_grad_impl(
      speed, [&](const NormalRV&) { return std::pair<double, double>(seed_mu, seed_var); }, grad);
}

double ReducedEvaluator::eval_metric(const std::vector<double>& speed, double sigma_weight,
                                     std::vector<double>* grad) const {
  if (grad == nullptr) {
    const NormalRV t = eval(speed);
    return t.mu + sigma_weight * t.sigma();
  }
  // d(mu + k sigma) = d mu + k/(2 sigma) d var; the seed comes from the
  // forward sweep's own Tmax (clark_max and clark_max_grad share their
  // moment arithmetic, so this equals what a separate probe would produce).
  const NormalRV t = eval_with_grad_impl(
      speed,
      [&](const NormalRV& tmax) {
        const double sigma = tmax.sigma();
        const double seed_var = (sigma_weight != 0.0 && sigma > 1e-12)
                                    ? sigma_weight / (2.0 * sigma)
                                    : 0.0;
        return std::pair<double, double>(1.0, seed_var);
      },
      *grad);
  return t.mu + sigma_weight * t.sigma();
}

}  // namespace statsize::core
