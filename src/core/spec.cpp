#include "core/spec.h"

#include <sstream>

namespace statsize::core {

namespace {

std::string metric_name(double sigma_weight) {
  if (sigma_weight == 0.0) return "mu";
  std::ostringstream os;
  os << "mu+" << sigma_weight << "sigma";
  return os.str();
}

}  // namespace

std::string Objective::description() const {
  switch (kind) {
    case ObjectiveKind::kDelay: return "min " + metric_name(sigma_weight);
    case ObjectiveKind::kArea: return "min sum(S)";
    case ObjectiveKind::kSigma: return sign > 0 ? "min sigma" : "max sigma";
    case ObjectiveKind::kWeighted: return "min weighted(S)";
  }
  return "?";
}

std::string DelayConstraint::description() const {
  std::ostringstream os;
  os << metric_name(sigma_weight) << (equality ? " = " : " <= ") << bound;
  return os.str();
}

}  // namespace statsize::core
