// High-level gate-sizing API — the facade a downstream user calls.
//
//   Circuit c = netlist::make_tree_circuit();
//   core::SizingSpec spec;
//   spec.objective = core::Objective::min_delay(3.0);   // min mu + 3 sigma
//   core::Sizer sizer(c, spec);
//   core::SizingResult r = sizer.run();
//   // r.speed[g], r.circuit_delay, r.sum_speed ...
//
// Two solution methods are provided (DESIGN.md sec. 5.1):
//  * kFullSpace — the paper's formulation (eq. 17) solved with the
//    augmented-Lagrangian / trust-region stack, exactly as the authors used
//    LANCELOT. Every timing quantity is an NLP variable.
//  * kReducedSpace — speed factors only; timing evaluated by forward SSTA
//    with adjoint gradients, bound-constrained L-BFGS inside a scalar
//    augmented-Lagrangian loop for the delay constraint.

#pragma once

#include <string>
#include <vector>

#include "core/spec.h"
#include "netlist/circuit.h"
#include "runtime/cancel.h"
#include "stat/normal.h"

namespace statsize::core {

enum class Method { kFullSpace, kReducedSpace };

struct SizerOptions {
  Method method = Method::kFullSpace;
  double feasibility_tol = 1e-6;
  double optimality_tol = 2e-4;
  int max_outer_iterations = 40;
  int max_inner_iterations = 3000;
  /// Full-space runs first solve the cheap reduced-space problem and start
  /// the augmented Lagrangian from that sizing (the timing variables are
  /// re-propagated, so the start is feasible). Dramatically fewer outer
  /// iterations on anything beyond toy circuits; disable to reproduce the
  /// paper's cold-start behaviour.
  bool warm_start_full_space = true;
  bool verbose = false;

  // ---- Resilience (DESIGN.md §9) ----
  /// Wall-clock budget for the whole run (0 = unlimited). The sizer installs
  /// a runtime::CancelScope; every solver loop and pool chunk polls it, so
  /// the solve stops within one chunk/iteration of the deadline and returns
  /// the best checkpoint with status ".../time-limit". The final SSTA runs
  /// outside the scope, so the returned sizing is always fully scored.
  double time_limit_seconds = 0.0;
  /// Optional external cancel flag (watchdog / signal handler), polled
  /// alongside the deadline.
  const runtime::CancellationToken* cancel = nullptr;
  /// Deterministic multistart retries after a numerical breakdown or stall:
  /// each retry restarts from seeded perturbed initial sizes with the initial
  /// penalty backed off (bounded), and the lexicographically best attempt
  /// wins. 0 disables.
  int max_retries = 0;
  /// Seed for the retry perturbations (mt19937; bit-reproducible anywhere).
  unsigned retry_seed = 12345u;
};

/// Carry-over state from a previous solve of a nearby instance — the sizing
/// layer's warm start for ECO re-sizing (DESIGN.md §12). Every SizingResult
/// records one (`result.warm`); feed it to Sizer::resize after editing the
/// instance (via TimingView::update_node_params / clone_with_library) and the
/// solve starts from the old sizes and multiplier/penalty state instead of
/// re-estimating them from scratch, which is where the outer iterations are
/// saved. Empty/zero fields fall back to the cold defaults.
struct SizingWarmStart {
  std::vector<double> speed;        ///< per NodeId; empty = default start
  std::vector<double> multipliers;  ///< full-space AugLag multipliers
  double lambda = 0.0;              ///< reduced-space scalar delay multiplier
  double rho = 0.0;                 ///< penalty parameter; <= 0 = cold default
};

struct SizingResult {
  bool converged = false;
  std::string status;               ///< solver status string
  std::vector<double> speed;        ///< per NodeId (1.0 for non-gates)
  stat::NormalRV circuit_delay;     ///< SSTA at the final sizes
  double sum_speed = 0.0;           ///< Tables' "sum S_i" column
  double area = 0.0;                ///< cell-area weighted
  double objective_value = 0.0;
  double constraint_violation = 0.0;
  int iterations = 0;               ///< total inner iterations
  int outer_iterations = 0;         ///< multiplier/penalty outer iterations
  double wall_seconds = 0.0;

  /// State to seed a follow-up resize of a perturbed instance from.
  SizingWarmStart warm;

  // ---- Resilience report (DESIGN.md §9) ----
  int retries_used = 0;             ///< multistart restarts consumed
  bool from_checkpoint = false;     ///< sizing restored from a best-iterate checkpoint
  int checkpoint_outer = -1;        ///< outer iteration the checkpoint was taken after
  std::string breakdown_site;       ///< tripwire detail on numerical breakdown, else ""

  /// mu + k sigma of the final circuit delay.
  double delay_metric(double sigma_weight) const {
    return circuit_delay.quantile_offset(sigma_weight);
  }
};

class Sizer {
 public:
  Sizer(const netlist::Circuit& circuit, SizingSpec spec);

  /// Sizes against a standalone TimingView — e.g. an ECO-edited copy owned by
  /// an ssta::IncrementalEngine or a derived serve cache entry. The caller
  /// keeps `view` alive for this sizer's lifetime. Only Method::kReducedSpace
  /// works on a bare view (the full-space NLP is built from the owning
  /// Circuit); run/resize throw std::invalid_argument otherwise.
  Sizer(const netlist::TimingView& view, SizingSpec spec);

  /// Runs the optimization; `initial_speed` (indexed by NodeId) overrides the
  /// default start (S=1 for delay objectives; S=limit when a delay constraint
  /// must first be met).
  SizingResult run(const SizerOptions& options = {}) const;
  SizingResult run(const SizerOptions& options, const std::vector<double>& initial_speed) const;

  /// Re-solves after an ECO perturbation, warm-starting from a previous
  /// result's `warm` state (DESIGN.md §12): the old sizes become the start
  /// point and the multiplier/penalty loop resumes from the old lambda/rho
  /// instead of the cold schedule. On a nearby instance this converges in
  /// fewer outer iterations than `run` (pinned by tests). Full-space resizes
  /// additionally skip the reduced-space pre-solve — the warm sizes already
  /// play that role.
  SizingResult resize(const SizerOptions& options, const SizingWarmStart& warm) const;

  const SizingSpec& spec() const { return spec_; }

 private:
  SizingResult run_impl(const SizerOptions& options, const std::vector<double>& initial_speed,
                        const SizingWarmStart* warm) const;
  /// One solve from `start`. `rho_scale` backs the initial penalty off on
  /// retries after a penalty explosion (1.0 on the first attempt). `warm`
  /// (nullable) carries multiplier/penalty state into the outer loop.
  SizingResult run_attempt(const SizerOptions& options, const std::vector<double>& start,
                           double rho_scale, const SizingWarmStart* warm) const;
  SizingResult run_full_space(const SizerOptions& options, const std::vector<double>& start,
                              double rho_scale, const SizingWarmStart* warm) const;
  SizingResult run_reduced_space(const SizerOptions& options, const std::vector<double>& start,
                                 double rho_scale, const SizingWarmStart* warm) const;
  std::vector<double> default_start() const;
  void finish(SizingResult& result) const;

  const netlist::Circuit* circuit_;  ///< null when view-constructed
  const netlist::TimingView* view_;  ///< never null (circuit_->view() otherwise)
  SizingSpec spec_;
};

}  // namespace statsize::core
