// High-level gate-sizing API — the facade a downstream user calls.
//
//   Circuit c = netlist::make_tree_circuit();
//   core::SizingSpec spec;
//   spec.objective = core::Objective::min_delay(3.0);   // min mu + 3 sigma
//   core::Sizer sizer(c, spec);
//   core::SizingResult r = sizer.run();
//   // r.speed[g], r.circuit_delay, r.sum_speed ...
//
// Two solution methods are provided (DESIGN.md sec. 5.1):
//  * kFullSpace — the paper's formulation (eq. 17) solved with the
//    augmented-Lagrangian / trust-region stack, exactly as the authors used
//    LANCELOT. Every timing quantity is an NLP variable.
//  * kReducedSpace — speed factors only; timing evaluated by forward SSTA
//    with adjoint gradients, bound-constrained L-BFGS inside a scalar
//    augmented-Lagrangian loop for the delay constraint.

#pragma once

#include <string>
#include <vector>

#include "core/spec.h"
#include "netlist/circuit.h"
#include "stat/normal.h"

namespace statsize::core {

enum class Method { kFullSpace, kReducedSpace };

struct SizerOptions {
  Method method = Method::kFullSpace;
  double feasibility_tol = 1e-6;
  double optimality_tol = 2e-4;
  int max_outer_iterations = 40;
  int max_inner_iterations = 3000;
  /// Full-space runs first solve the cheap reduced-space problem and start
  /// the augmented Lagrangian from that sizing (the timing variables are
  /// re-propagated, so the start is feasible). Dramatically fewer outer
  /// iterations on anything beyond toy circuits; disable to reproduce the
  /// paper's cold-start behaviour.
  bool warm_start_full_space = true;
  bool verbose = false;
};

struct SizingResult {
  bool converged = false;
  std::string status;               ///< solver status string
  std::vector<double> speed;        ///< per NodeId (1.0 for non-gates)
  stat::NormalRV circuit_delay;     ///< SSTA at the final sizes
  double sum_speed = 0.0;           ///< Tables' "sum S_i" column
  double area = 0.0;                ///< cell-area weighted
  double objective_value = 0.0;
  double constraint_violation = 0.0;
  int iterations = 0;               ///< total inner iterations
  double wall_seconds = 0.0;

  /// mu + k sigma of the final circuit delay.
  double delay_metric(double sigma_weight) const {
    return circuit_delay.quantile_offset(sigma_weight);
  }
};

class Sizer {
 public:
  Sizer(const netlist::Circuit& circuit, SizingSpec spec);

  /// Runs the optimization; `initial_speed` (indexed by NodeId) overrides the
  /// default start (S=1 for delay objectives; S=limit when a delay constraint
  /// must first be met).
  SizingResult run(const SizerOptions& options = {}) const;
  SizingResult run(const SizerOptions& options, const std::vector<double>& initial_speed) const;

  const SizingSpec& spec() const { return spec_; }

 private:
  SizingResult run_full_space(const SizerOptions& options,
                              const std::vector<double>& start) const;
  SizingResult run_reduced_space(const SizerOptions& options,
                                 const std::vector<double>& start) const;
  std::vector<double> default_start() const;
  void finish(SizingResult& result) const;

  const netlist::Circuit* circuit_;
  SizingSpec spec_;
};

}  // namespace statsize::core
