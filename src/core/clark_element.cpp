#include "core/clark_element.h"

#include <stdexcept>

namespace statsize::core {

ClarkElement::ClarkElement(Output output, std::array<double, 4> fixed)
    : output_(output), fixed_(fixed) {
  for (int s = 0; s < 4; ++s) {
    if (std::isnan(fixed_[static_cast<std::size_t>(s)])) {
      slot_of_local_[static_cast<std::size_t>(arity_++)] = s;
    }
  }
}

double ClarkElement::eval(const double* x, double* grad, double* hess) const {
  double full[4];
  for (int s = 0; s < 4; ++s) full[s] = fixed_[static_cast<std::size_t>(s)];
  for (int i = 0; i < arity_; ++i) full[slot_of_local_[static_cast<std::size_t>(i)]] = x[i];
  const stat::NormalRV a{full[0], full[2]};
  const stat::NormalRV b{full[1], full[3]};

  if (grad == nullptr && hess == nullptr) {
    const stat::NormalRV c = stat::clark_max(a, b);
    return output_ == Output::kMu ? c.mu : c.var;
  }

  stat::ClarkGrad cg;
  stat::ClarkHess ch;
  stat::NormalRV c;
  if (hess != nullptr) {
    c = stat::clark_max_full(a, b, cg, ch);
  } else {
    c = stat::clark_max_grad(a, b, cg);
  }
  const std::array<double, 4>& g4 = output_ == Output::kMu ? cg.dmu : cg.dvar;
  if (grad != nullptr) {
    for (int i = 0; i < arity_; ++i) grad[i] = g4[slot_of_local_[static_cast<std::size_t>(i)]];
  }
  if (hess != nullptr) {
    const std::array<double, 10>& h4 = output_ == Output::kMu ? ch.mu : ch.var;
    for (int i = 0; i < arity_; ++i) {
      for (int j = i; j < arity_; ++j) {
        hess[nlp::packed_index(arity_, i, j)] =
            h4[static_cast<std::size_t>(autodiff::Dual2<4>::hess_index(
                slot_of_local_[static_cast<std::size_t>(i)],
                slot_of_local_[static_cast<std::size_t>(j)]))];
      }
    }
  }
  return output_ == Output::kMu ? c.mu : c.var;
}

NaryClarkElement::NaryClarkElement(ClarkElement::Output output, int num_operands,
                                   bool has_const_init, stat::NormalRV const_init)
    : output_(output),
      num_operands_(num_operands),
      has_const_init_(has_const_init),
      const_init_(const_init) {
  if (num_operands < 1 || num_operands > kMaxOperands) {
    throw std::invalid_argument("NaryClarkElement supports 1..4 operands");
  }
}

template <int M>
double NaryClarkElement::eval_impl(const double* x, double* grad, double* hess) const {
  if (grad == nullptr && hess == nullptr) {
    // Value-only fast path: plain pairwise fold.
    stat::NormalRV acc =
        has_const_init_ ? const_init_ : stat::NormalRV{x[0], x[M]};
    for (int i = has_const_init_ ? 0 : 1; i < M; ++i) {
      acc = stat::clark_max(acc, {x[i], x[M + i]});
    }
    return output_ == ClarkElement::Output::kMu ? acc.mu : acc.var;
  }

  using D = autodiff::Dual2<2 * M>;
  D mu_acc;
  D var_acc;
  int first = 0;
  if (has_const_init_) {
    mu_acc = D::constant(const_init_.mu);
    var_acc = D::constant(const_init_.var);
  } else {
    mu_acc = D::variable(x[0], 0);
    var_acc = D::variable(x[M], M);
    first = 1;
  }
  for (int i = first; i < M; ++i) {
    const D mu_b = D::variable(x[i], i);
    const D var_b = D::variable(x[M + i], M + i);
    D mu_out;
    D var_out;
    stat::clark_moments(mu_acc, mu_b, var_acc, var_b, mu_out, var_out);
    mu_acc = mu_out;
    var_acc = var_out;
  }
  const D& out = output_ == ClarkElement::Output::kMu ? mu_acc : var_acc;
  if (grad != nullptr) {
    for (int i = 0; i < 2 * M; ++i) grad[i] = out.grad(i);
  }
  if (hess != nullptr) {
    for (int i = 0; i < 2 * M; ++i) {
      for (int j = i; j < 2 * M; ++j) {
        hess[nlp::packed_index(2 * M, i, j)] = out.hess(i, j);
      }
    }
  }
  return out.value();
}

double NaryClarkElement::eval(const double* x, double* grad, double* hess) const {
  switch (num_operands_) {
    case 1: return eval_impl<1>(x, grad, hess);
    case 2: return eval_impl<2>(x, grad, hess);
    case 3: return eval_impl<3>(x, grad, hess);
    default: return eval_impl<4>(x, grad, hess);
  }
}

}  // namespace statsize::core
