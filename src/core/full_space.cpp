#include "core/full_space.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "core/clark_element.h"
#include "netlist/timing_view.h"
#include "ssta/delay_model.h"
#include "stat/clark.h"

namespace statsize::core {

namespace {

using netlist::NodeId;
using netlist::NodeKind;
using nlp::FunctionGroup;
using nlp::Problem;
using stat::NormalRV;

/// An arrival-time operand in the fold: either a compile-time constant
/// (primary inputs, folds of constants) or a pair of NLP variables carrying
/// their start values.
struct Operand {
  bool is_const = true;
  NormalRV value;  ///< constant value, or start value when !is_const
  int mu_var = -1;
  int var_var = -1;
  double var_floor = 0.0;  ///< valid lower bound carried by var_var
};

class Builder {
 public:
  Builder(const netlist::Circuit& circuit, const SizingSpec& spec,
          const std::vector<double>& start_speed)
      : circuit_(circuit), view_(circuit.view()), spec_(spec), start_speed_(start_speed) {
    out_.problem = std::make_unique<Problem>();
    out_.speed_var.assign(static_cast<std::size_t>(circuit.num_nodes()), -1);
  }

  FullSpaceFormulation build();

 private:
  Problem& p() { return *out_.problem; }

  Operand fold_max(const Operand& a, const Operand& b, const std::string& tag);
  Operand nary_fanin_fold(NodeId gate);
  Operand operand_of(NodeId id) const;

  const netlist::Circuit& circuit_;  ///< names only; structure comes from view_
  const netlist::TimingView& view_;
  const SizingSpec& spec_;
  const std::vector<double>& start_speed_;
  FullSpaceFormulation out_;

  // Shared stateless elements.
  const nlp::ElementFunction* product_ = nullptr;
  const nlp::ElementFunction* square_ = nullptr;
  const nlp::ElementFunction* clark_mu_ = nullptr;
  const nlp::ElementFunction* clark_var_ = nullptr;

  // Per-gate variable indices (by NodeId).
  std::vector<int> mu_t_var_;
  std::vector<int> var_t_var_;
  std::vector<int> mu_arr_var_;
  std::vector<int> var_arr_var_;
  std::vector<NormalRV> delay_start_;
  std::vector<NormalRV> arrival_start_;
  std::vector<double> arr_var_floor_;
};

Operand Builder::operand_of(NodeId id) const {
  if (view_.kind(id) == NodeKind::kPrimaryInput) {
    return Operand{true, NormalRV{0.0, 0.0}, -1, -1, 0.0};
  }
  Operand op;
  op.is_const = false;
  op.value = arrival_start_[static_cast<std::size_t>(id)];
  op.mu_var = mu_arr_var_[static_cast<std::size_t>(id)];
  op.var_var = var_arr_var_[static_cast<std::size_t>(id)];
  op.var_floor = arr_var_floor_[static_cast<std::size_t>(id)];
  return op;
}

Operand Builder::fold_max(const Operand& a, const Operand& b, const std::string& tag) {
  if (a.is_const && b.is_const) {
    return Operand{true, stat::clark_max(a.value, b.value), -1, -1};
  }
  ++out_.num_max_pairs;
  const NormalRV folded = stat::clark_max(a.value, b.value);
  Operand r;
  r.is_const = false;
  r.value = folded;
  // A valid variance floor for the max: the pairwise max of independent
  // normals shrinks the smaller operand variance by at most (1 - 1/pi) — the
  // symmetric-operand worst case (property-tested in stat_test). A 0.5
  // safety factor keeps the bound conservative. Floors matter: without them,
  // objective terms k*sqrt(var_Tmax) have unbounded derivative at var = 0 and
  // the optimizer dives into that spurious corner (see EXPERIMENTS.md).
  constexpr double kMaxShrink = 0.5 * (1.0 - 1.0 / 3.14159265358979323846);
  r.var_floor = kMaxShrink * std::min(a.var_floor, b.var_floor);
  r.mu_var = p().add_variable(-nlp::kInfinity, nlp::kInfinity, folded.mu, "muU_" + tag);
  r.var_var = p().add_variable(r.var_floor, nlp::kInfinity, folded.var, "varU_" + tag);

  // Slot order (muA, muB, varA, varB): live slots get variables, constant
  // slots are pinned inside the element.
  std::array<double, 4> fixed = {ClarkElement::kLive, ClarkElement::kLive, ClarkElement::kLive,
                                 ClarkElement::kLive};
  std::vector<int> vars;
  if (a.is_const) {
    fixed[0] = a.value.mu;
    fixed[2] = a.value.var;
  }
  if (b.is_const) {
    fixed[1] = b.value.mu;
    fixed[3] = b.value.var;
  }
  // Local argument order must match slot order: muA, muB, varA, varB
  // filtered down to live slots.
  if (!a.is_const) vars.push_back(a.mu_var);
  if (!b.is_const) vars.push_back(b.mu_var);
  if (!a.is_const) vars.push_back(a.var_var);
  if (!b.is_const) vars.push_back(b.var_var);

  const nlp::ElementFunction* mu_elem;
  const nlp::ElementFunction* var_elem;
  if (a.is_const || b.is_const) {
    mu_elem = p().own(std::make_unique<ClarkElement>(ClarkElement::Output::kMu, fixed));
    var_elem = p().own(std::make_unique<ClarkElement>(ClarkElement::Output::kVar, fixed));
  } else {
    mu_elem = clark_mu_;
    var_elem = clark_var_;
  }

  FunctionGroup g_mu;
  g_mu.linear = {{r.mu_var, 1.0}};
  g_mu.elements = {{mu_elem, vars, -1.0}};
  p().add_equality(std::move(g_mu));

  FunctionGroup g_var;
  g_var.linear = {{r.var_var, 1.0}};
  g_var.elements = {{var_elem, vars, -1.0}};
  p().add_equality(std::move(g_var));
  return r;
}

Operand Builder::nary_fanin_fold(NodeId gate) {
  const std::string& gate_name = circuit_.node(gate).name;
  // Split operands into a constant prefix (primary-input arrivals, folded at
  // build time) and the variable ones.
  bool has_const = false;
  NormalRV const_init{0.0, 0.0};
  std::vector<Operand> vars;
  for (NodeId f : view_.fanins(gate)) {
    const Operand op = operand_of(f);
    if (op.is_const) {
      const_init = has_const ? stat::clark_max(const_init, op.value) : op.value;
      has_const = true;
    } else {
      vars.push_back(op);
    }
  }
  if (vars.empty()) return Operand{true, const_init, -1, -1, 0.0};
  if (vars.size() == 1 && !has_const) return vars.front();
  if (static_cast<int>(vars.size()) > NaryClarkElement::kMaxOperands) {
    // Very wide gates: fall back to a pairwise chain beyond the element cap.
    Operand acc = has_const ? Operand{true, const_init, -1, -1, 0.0} : vars.front();
    for (std::size_t k = has_const ? 0 : 1; k < vars.size(); ++k) {
      acc = fold_max(acc, vars[k], gate_name + "_w" + std::to_string(k));
    }
    return acc;
  }

  ++out_.num_max_pairs;
  const int m = static_cast<int>(vars.size());
  // Start value and conservative variance floor of the whole fold.
  NormalRV start = has_const ? const_init : vars[0].value;
  double floor = has_const ? 0.0 : vars[0].var_floor;
  constexpr double kMaxShrink = 0.5 * (1.0 - 1.0 / 3.14159265358979323846);
  for (std::size_t k = has_const ? 0 : 1; k < vars.size(); ++k) {
    start = stat::clark_max(start, vars[k].value);
    floor = kMaxShrink * std::min(floor, vars[k].var_floor);
  }

  Operand r;
  r.is_const = false;
  r.value = start;
  r.var_floor = floor;
  r.mu_var = p().add_variable(-nlp::kInfinity, nlp::kInfinity, start.mu, "muU_" + gate_name);
  r.var_var = p().add_variable(floor, nlp::kInfinity, start.var, "varU_" + gate_name);

  std::vector<int> arg_vars;
  arg_vars.reserve(static_cast<std::size_t>(2 * m));
  for (const Operand& op : vars) arg_vars.push_back(op.mu_var);
  for (const Operand& op : vars) arg_vars.push_back(op.var_var);

  const nlp::ElementFunction* mu_elem = p().own(std::make_unique<NaryClarkElement>(
      ClarkElement::Output::kMu, m, has_const, const_init));
  const nlp::ElementFunction* var_elem = p().own(std::make_unique<NaryClarkElement>(
      ClarkElement::Output::kVar, m, has_const, const_init));

  FunctionGroup g_mu;
  g_mu.linear = {{r.mu_var, 1.0}};
  g_mu.elements = {{mu_elem, arg_vars, -1.0}};
  p().add_equality(std::move(g_mu));
  FunctionGroup g_var;
  g_var.linear = {{r.var_var, 1.0}};
  g_var.elements = {{var_elem, arg_vars, -1.0}};
  p().add_equality(std::move(g_var));
  return r;
}

FullSpaceFormulation Builder::build() {
  const netlist::Circuit& c = circuit_;
  if (static_cast<int>(start_speed_.size()) != c.num_nodes()) {
    throw std::invalid_argument("start_speed must be indexed by NodeId");
  }

  product_ = p().own(std::make_unique<nlp::ProductElement>());
  square_ = p().own(std::make_unique<nlp::SquareElement>());
  clark_mu_ = p().own(std::make_unique<ClarkElement>(ClarkElement::Output::kMu));
  clark_var_ = p().own(std::make_unique<ClarkElement>(ClarkElement::Output::kVar));

  // ---- Start values: forward propagation at start_speed.
  const ssta::DelayCalculator calc(c, spec_.sigma_model);
  delay_start_ = calc.all_delays(start_speed_);
  arrival_start_.assign(static_cast<std::size_t>(c.num_nodes()), NormalRV{});

  // ---- Pass 1: create all per-gate variables (fanout speed factors appear
  // in fanin delay constraints, so every S must exist up front).
  mu_t_var_.assign(static_cast<std::size_t>(c.num_nodes()), -1);
  var_t_var_.assign(static_cast<std::size_t>(c.num_nodes()), -1);
  mu_arr_var_.assign(static_cast<std::size_t>(c.num_nodes()), -1);
  var_arr_var_.assign(static_cast<std::size_t>(c.num_nodes()), -1);

  arr_var_floor_.assign(static_cast<std::size_t>(c.num_nodes()), 0.0);
  const double kappa0 = spec_.sigma_model.kappa;
  const double offset0 = spec_.sigma_model.offset;
  for (NodeId id : view_.gates_in_topo_order()) {
    const std::size_t i = static_cast<std::size_t>(id);
    const std::string& name = c.node(id).name;
    const double t_int = view_.t_int(id);
    // Physically valid bounds: the load is positive, so mu_t >= t_int; hence
    // var_t >= (kappa t_int + offset)^2, and the arrival variance is at least
    // the gate's own delay variance (var_T = var_U + var_t, var_U >= 0).
    // Beyond correctness these floors remove the spurious var -> 0 corner
    // that k*sqrt(var) objectives otherwise dive into.
    const double sigma_floor = kappa0 * t_int + offset0;
    const double var_floor = sigma_floor * sigma_floor;
    arr_var_floor_[i] = var_floor;
    out_.speed_var[i] =
        p().add_variable(1.0, spec_.max_speed, start_speed_[i], "S_" + name);
    mu_t_var_[i] =
        p().add_variable(t_int, nlp::kInfinity, delay_start_[i].mu, "mut_" + name);
    var_t_var_[i] =
        p().add_variable(var_floor, nlp::kInfinity, delay_start_[i].var, "vart_" + name);
    // Arrival starts are filled during pass 2 (they need fold ordering), but
    // the variables must exist; seed with delay for now and overwrite below.
    mu_arr_var_[i] = p().add_variable(0.0, nlp::kInfinity, 0.0, "muT_" + name);
    var_arr_var_[i] = p().add_variable(var_floor, nlp::kInfinity, 0.0, "varT_" + name);
  }

  // ---- Pass 2: constraints, in topological order.
  const double kappa = spec_.sigma_model.kappa;
  const double offset = spec_.sigma_model.offset;
  for (NodeId id : view_.gates_in_topo_order()) {
    const std::size_t i = static_cast<std::size_t>(id);
    const std::string& name = c.node(id).name;

    // (a) delay: mu_t S - t_int S - c * C_load - sum c * C_in,fo * S_fo = 0.
    {
      FunctionGroup g;
      g.elements = {{product_, {mu_t_var_[i], out_.speed_var[i]}, 1.0}};
      g.linear.push_back({out_.speed_var[i], -view_.t_int(id)});
      const netlist::NodeSpan fanouts = view_.fanouts(id);
      const double* fo_cin = view_.fanout_cin(id);
      for (std::size_t k = 0; k < fanouts.size(); ++k) {
        g.linear.push_back({out_.speed_var[static_cast<std::size_t>(fanouts[k])],
                            -view_.drive_c(id) * fo_cin[k]});
      }
      g.constant = -view_.drive_c(id) * view_.static_load(id);
      p().add_equality(std::move(g));
    }

    // (b) sigma model: var_t - (kappa mu_t + offset)^2 = 0.
    {
      FunctionGroup g;
      g.linear = {{var_t_var_[i], 1.0}};
      if (kappa != 0.0) {
        g.elements = {{square_, {mu_t_var_[i]}, -kappa * kappa}};
        g.linear.push_back({mu_t_var_[i], -2.0 * kappa * offset});
      }
      g.constant = -offset * offset;
      p().add_equality(std::move(g));
    }

    // (c) arrival: U = fold over fanins; T = U + t. Either a chain of
    // pairwise maxima with aux variables (the paper's eq. 18b treatment) or,
    // with spec.nary_fanin_max, a single n-ary element (future-work mode).
    Operand u;
    if (spec_.nary_fanin_max) {
      u = nary_fanin_fold(id);
    } else {
      const netlist::NodeSpan fanins = view_.fanins(id);
      u = operand_of(fanins[0]);
      for (std::size_t k = 1; k < fanins.size(); ++k) {
        u = fold_max(u, operand_of(fanins[k]), name + "_" + std::to_string(k));
      }
    }
    arrival_start_[i] = stat::add(u.value, delay_start_[i]);
    p().set_start(mu_arr_var_[i], arrival_start_[i].mu);
    p().set_start(var_arr_var_[i], arrival_start_[i].var);
    {
      FunctionGroup g_mu;
      g_mu.linear = {{mu_arr_var_[i], 1.0}, {mu_t_var_[i], -1.0}};
      FunctionGroup g_var;
      g_var.linear = {{var_arr_var_[i], 1.0}, {var_t_var_[i], -1.0}};
      if (u.is_const) {
        g_mu.constant = -u.value.mu;
        g_var.constant = -u.value.var;
      } else {
        g_mu.linear.push_back({u.mu_var, -1.0});
        g_var.linear.push_back({u.var_var, -1.0});
      }
      p().add_equality(std::move(g_mu));
      p().add_equality(std::move(g_var));
    }
  }

  // ---- Circuit delay: statistical max over primary outputs (eq. 18a).
  const std::vector<NodeId>& outs = view_.outputs();
  Operand tmax = operand_of(outs.front());
  for (std::size_t k = 1; k < outs.size(); ++k) {
    tmax = fold_max(tmax, operand_of(outs[k]), "out_" + std::to_string(k));
  }
  out_.mu_tmax_var = tmax.mu_var;
  out_.var_tmax_var = tmax.var_var;

  // sigma_Tmax never becomes an NLP variable: mu + k sigma expressions embed
  // sqrt(var_Tmax) directly (see SqrtElement — the sigma^2 = var coupling has
  // a spurious first-order trap at sigma = 0), and pure sigma objectives use
  // var_Tmax, equivalent under sigma >= 0.
  // Floor the sqrt at a tenth of the build-time circuit variance — far below
  // anything sizing can reach, but enough to bound the derivative (see
  // nlp::SqrtElement).
  const nlp::ElementFunction* sqrt_elem =
      p().own(std::make_unique<nlp::SqrtElement>(0.1 * tmax.value.var));

  // ---- Objective.
  {
    FunctionGroup obj;
    switch (spec_.objective.kind) {
      case ObjectiveKind::kDelay:
        obj.linear.push_back({out_.mu_tmax_var, 1.0});
        if (spec_.objective.sigma_weight != 0.0) {
          obj.elements.push_back(
              {sqrt_elem, {out_.var_tmax_var}, spec_.objective.sigma_weight});
        }
        break;
      case ObjectiveKind::kArea:
        for (NodeId id : view_.gates_in_topo_order()) {
          obj.linear.push_back({out_.speed_var[static_cast<std::size_t>(id)], 1.0});
        }
        break;
      case ObjectiveKind::kSigma:
        obj.linear.push_back({out_.var_tmax_var, spec_.objective.sign});
        break;
      case ObjectiveKind::kWeighted:
        for (NodeId id : view_.gates_in_topo_order()) {
          obj.linear.push_back({out_.speed_var[static_cast<std::size_t>(id)],
                                spec_.objective.weights[static_cast<std::size_t>(id)]});
        }
        break;
    }
    p().set_objective(std::move(obj));
  }

  // ---- Delay constraint.
  if (spec_.delay_constraint) {
    const DelayConstraint& dc = *spec_.delay_constraint;
    FunctionGroup g;
    g.linear.push_back({out_.mu_tmax_var, 1.0});
    double start_value = tmax.value.mu;
    if (dc.sigma_weight != 0.0) {
      g.elements.push_back({sqrt_elem, {out_.var_tmax_var}, dc.sigma_weight});
      start_value += dc.sigma_weight * std::sqrt(tmax.value.var);
    }
    if (dc.equality) {
      g.constant = -dc.bound;
      p().add_equality(std::move(g));
    } else {
      p().add_inequality(std::move(g), dc.bound, dc.bound - start_value);
    }
  }

  p().validate();
  return std::move(out_);
}

}  // namespace

std::vector<double> FullSpaceFormulation::speeds_from(const std::vector<double>& x) const {
  std::vector<double> speeds(speed_var.size(), 1.0);
  for (std::size_t i = 0; i < speed_var.size(); ++i) {
    if (speed_var[i] >= 0) speeds[i] = x[static_cast<std::size_t>(speed_var[i])];
  }
  return speeds;
}

FullSpaceFormulation build_full_space(const netlist::Circuit& circuit, const SizingSpec& spec,
                                      const std::vector<double>& start_speed) {
  Builder b(circuit, spec, start_speed);
  return b.build();
}

FullSpaceFormulation build_full_space(const netlist::Circuit& circuit, const SizingSpec& spec,
                                      double start_speed) {
  const std::vector<double> s(static_cast<std::size_t>(circuit.num_nodes()),
                              std::clamp(start_speed, 1.0, spec.max_speed));
  return build_full_space(circuit, spec, s);
}

}  // namespace statsize::core
