// NLP element functions wrapping the analytic statistical-max operator.
//
// The sizing formulation (eq. 17) contains, per pairwise max, two equality
// constraints:
//
//   mu_U  - max_mu (muA, muB, varA, varB) = 0
//   var_U - max_var(muA, muB, varA, varB) = 0
//
// ClarkElement provides max_mu / max_var as ElementFunctions with the exact
// gradient (hand-derived Clark formulas) and Hessian (second-order forward
// autodiff over the closed form) — the "analytical first and second order
// derivatives" the paper derives eqs. 10/12 for.
//
// Operand slots may be bound to constants (e.g. a primary-input arrival of
// exactly (0, 0)); only unbound slots count toward the element's arity.

#pragma once

#include <array>
#include <cmath>
#include <limits>

#include "nlp/element.h"
#include "stat/clark.h"

namespace statsize::core {

class ClarkElement final : public nlp::ElementFunction {
 public:
  enum class Output { kMu, kVar };

  /// Slot order is (muA, muB, varA, varB). A NaN in `fixed` marks the slot as
  /// a live variable; any other value pins it.
  ClarkElement(Output output, std::array<double, 4> fixed);

  /// All four slots live — the common case.
  explicit ClarkElement(Output output)
      : ClarkElement(output, {kLive, kLive, kLive, kLive}) {}

  int arity() const override { return arity_; }
  double eval(const double* x, double* grad, double* hess) const override;

  static constexpr double kLive = std::numeric_limits<double>::quiet_NaN();

 private:
  Output output_;
  std::array<double, 4> fixed_;
  std::array<int, 4> slot_of_local_{};  ///< local arg index -> slot
  int arity_ = 0;
};

/// N-ary statistical max as a single element — the paper's future-work item
/// "express the mean and standard deviation of the maximum of multiple (more
/// than two) operandi explicitly, rather than as the repeated maximum of two
/// operandi". The distribution of an m-ary max of normals has no closed-form
/// normal-moment match for m > 2, so the *moments* are still produced by the
/// left fold of the pairwise Clark operator; what this element changes is the
/// NLP: the intermediate fold results stop being variables tied by equality
/// constraints and become internal to one element, whose exact gradient and
/// Hessian come from second-order autodiff through the whole fold.
///
/// Local argument order: mu_1..mu_m, var_1..var_m. An optional constant
/// initial operand (e.g. the folded primary-input arrivals) seeds the fold.
class NaryClarkElement final : public nlp::ElementFunction {
 public:
  static constexpr int kMaxOperands = 4;

  NaryClarkElement(ClarkElement::Output output, int num_operands, bool has_const_init,
                   stat::NormalRV const_init);

  int arity() const override { return 2 * num_operands_; }
  double eval(const double* x, double* grad, double* hess) const override;

 private:
  template <int M>
  double eval_impl(const double* x, double* grad, double* hess) const;

  ClarkElement::Output output_;
  int num_operands_;
  bool has_const_init_;
  stat::NormalRV const_init_;
};

}  // namespace statsize::core
