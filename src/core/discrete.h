// Discrete sizing on top of the continuous optimum.
//
// Real cell libraries offer a finite set of drive strengths (X1, X1.5, X2,
// ...), while the paper's formulation treats S as continuous. The standard
// industrial flow keeps the continuous NLP and *legalizes* afterwards:
//
//   1. snap every S_g to the nearest grid point (rounding up when a delay
//      constraint is active, so feasibility is not lost by rounding),
//   2. greedy repair: while the delay constraint is violated, bump the gate
//      whose upsizing helps most; then trim: downsize gates whose reduction
//      keeps the constraint satisfied (recovering area the conservative
//      rounding spent).
//
// Bench `ablation_discrete` measures the legalization gap (area/delay loss vs
// the continuous optimum) as a function of grid resolution.

#pragma once

#include <vector>

#include "core/spec.h"
#include "netlist/circuit.h"

namespace statsize::core {

/// A discrete size grid, e.g. {1.0, 1.33, 1.78, 2.37, 3.0}.
struct SizeGrid {
  std::vector<double> sizes;  ///< ascending, first >= 1

  /// Geometric grid with `steps` points from 1 to max_speed inclusive.
  static SizeGrid geometric(double max_speed, int steps);

  /// Nearest grid point; `round_up` biases ties and between-point values up.
  double snap(double s, bool round_up) const;
};

struct DiscreteResult {
  bool feasible = false;        ///< delay constraint met after repair
  std::vector<double> speed;    ///< per NodeId, all on the grid
  double delay_metric = 0.0;
  double sum_speed = 0.0;
  int repair_moves = 0;
  int trim_moves = 0;
};

/// Legalizes a continuous sizing onto `grid` under the constraint
/// mu + sigma_weight * sigma <= target (pass infinity for unconstrained).
DiscreteResult legalize_sizing(const netlist::Circuit& circuit, const SizingSpec& spec,
                               const std::vector<double>& continuous_speed,
                               const SizeGrid& grid, double target, double sigma_weight);

}  // namespace statsize::core
