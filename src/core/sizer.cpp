#include "core/sizer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <random>
#include <stdexcept>

#include "core/full_space.h"
#include "core/reduced_space.h"
#include "netlist/timing_view.h"
#include "nlp/auglag.h"
#include "nlp/breakdown.h"
#include "nlp/projected_lbfgs.h"
#include "runtime/cancel.h"
#include "runtime/fault.h"
#include "ssta/ssta.h"

namespace statsize::core {

using netlist::NodeId;

namespace {

void validate_spec(const SizingSpec& spec, int num_nodes) {
  if (spec.max_speed < 1.0) throw std::invalid_argument("max_speed must be >= 1");
  if (spec.objective.kind == ObjectiveKind::kSigma && !spec.delay_constraint) {
    throw std::invalid_argument(
        "sigma objectives need a delay constraint (otherwise sigma->min is the "
        "trivial all-max or all-min sizing)");
  }
  if (spec.objective.kind == ObjectiveKind::kWeighted &&
      static_cast<int>(spec.objective.weights.size()) != num_nodes) {
    throw std::invalid_argument("weighted objective needs one weight per NodeId");
  }
}

}  // namespace

Sizer::Sizer(const netlist::Circuit& circuit, SizingSpec spec)
    : circuit_(&circuit), view_(nullptr), spec_(std::move(spec)) {
  if (!circuit.finalized()) throw std::invalid_argument("circuit must be finalized");
  view_ = &circuit.view();
  validate_spec(spec_, circuit.num_nodes());
}

Sizer::Sizer(const netlist::TimingView& view, SizingSpec spec)
    : circuit_(nullptr), view_(&view), spec_(std::move(spec)) {
  validate_spec(spec_, view.num_nodes());
}

std::vector<double> Sizer::default_start() const {
  double s0 = 1.0;
  if (spec_.delay_constraint) {
    // Area-min under a delay bound starts from the fastest sizing (feasible
    // whenever the bound is achievable); equality-pinned problems start from
    // the middle of the sizing range so both directions are reachable.
    s0 = spec_.delay_constraint->equality ? 0.5 * (1.0 + spec_.max_speed) : spec_.max_speed;
  }
  return std::vector<double>(static_cast<std::size_t>(view_->num_nodes()), s0);
}

void Sizer::finish(SizingResult& result) const {
  const ssta::DelayCalculator calc(*view_, spec_.sigma_model);
  result.circuit_delay = ssta::run_ssta(calc, result.speed).circuit_delay;
  result.sum_speed = ssta::DelayCalculator::total_speed(*view_, result.speed);
  result.area = ssta::DelayCalculator::total_area(*view_, result.speed);
  if (spec_.delay_constraint) {
    const DelayConstraint& dc = *spec_.delay_constraint;
    const double metric = result.delay_metric(dc.sigma_weight);
    const double h = metric - dc.bound;
    result.constraint_violation = dc.equality ? std::abs(h) : std::max(0.0, h);
  }
}

namespace {

namespace fault = runtime::fault;

/// Lexicographic quality of a sizing: constraint violation first (rounded to
/// the feasibility tolerance), then objective value, both evaluated on the
/// *true* propagated timing rather than NLP variables.
struct Score {
  double violation = 0.0;
  double objective = 0.0;

  bool better_than(const Score& o, double feas_tol) const {
    const double va = std::max(violation - feas_tol, 0.0);
    const double vb = std::max(o.violation - feas_tol, 0.0);
    if (std::abs(va - vb) > 1e-12) return va < vb;
    return objective < o.objective;
  }
};

/// The spec objective evaluated at a sizing whose circuit delay is `t`.
double objective_metric(const netlist::TimingView& v, const SizingSpec& spec,
                        const std::vector<double>& speed, const stat::NormalRV& t) {
  switch (spec.objective.kind) {
    case ObjectiveKind::kDelay:
      return t.mu + spec.objective.sigma_weight * t.sigma();
    case ObjectiveKind::kArea:
      return ssta::DelayCalculator::total_speed(v, speed);
    case ObjectiveKind::kSigma:
      return spec.objective.sign * t.sigma();
    case ObjectiveKind::kWeighted: {
      double w = 0.0;
      for (std::size_t i = 0; i < speed.size(); ++i) {
        if (v.is_gate(static_cast<NodeId>(i))) {
          w += spec.objective.weights[i] * speed[i];
        }
      }
      return w;
    }
  }
  return 0.0;
}

Score score_sizing(const netlist::TimingView& v, const SizingSpec& spec,
                   const std::vector<double>& speed) {
  const ReducedEvaluator eval(v, spec.sigma_model);
  const stat::NormalRV t = eval.eval(speed);
  Score s;
  s.objective = objective_metric(v, spec, speed, t);
  if (spec.delay_constraint) {
    const DelayConstraint& dc = *spec.delay_constraint;
    const double h = t.mu + dc.sigma_weight * t.sigma() - dc.bound;
    s.violation = dc.equality ? std::abs(h) : std::max(0.0, h);
  }
  return s;
}

/// Seeded multiplicative jitter for multistart retries. mt19937's output
/// sequence is pinned by the standard, so retry starts are bit-reproducible
/// across platforms; amplitude grows with the attempt number.
std::vector<double> perturbed_start(const std::vector<double>& start, double max_speed,
                                    unsigned seed, int attempt) {
  std::vector<double> s = start;
  std::mt19937 rng(seed + 7919u * static_cast<unsigned>(attempt));
  const double amp = std::min(0.05 * attempt, 0.5);
  for (double& v : s) {
    const double u = static_cast<double>(rng()) * (1.0 / 4294967296.0);  // [0, 1)
    v = std::clamp(v * (1.0 + amp * (2.0 * u - 1.0)), 1.0, max_speed);
  }
  return s;
}

/// Per-retry backoff of the initial penalty parameter, bounded below so a
/// retry cascade cannot drive rho to zero.
constexpr double kRetryRhoBackoff = 0.1;
constexpr double kMinRhoScale = 1e-3;

}  // namespace

SizingResult Sizer::run(const SizerOptions& options) const {
  return run_impl(options, default_start(), nullptr);
}

SizingResult Sizer::run(const SizerOptions& options,
                        const std::vector<double>& initial_speed) const {
  return run_impl(options, initial_speed, nullptr);
}

SizingResult Sizer::resize(const SizerOptions& options, const SizingWarmStart& warm) const {
  if (!warm.speed.empty() &&
      warm.speed.size() != static_cast<std::size_t>(view_->num_nodes())) {
    throw std::invalid_argument("Sizer::resize: warm.speed has " +
                                std::to_string(warm.speed.size()) + " entries for " +
                                std::to_string(view_->num_nodes()) +
                                " nodes (indexed by NodeId, like SizingResult::speed)");
  }
  if (!std::isfinite(warm.lambda) || !std::isfinite(warm.rho)) {
    throw std::invalid_argument("Sizer::resize: warm lambda/rho must be finite");
  }
  return run_impl(options, warm.speed.empty() ? default_start() : warm.speed, &warm);
}

SizingResult Sizer::run_impl(const SizerOptions& options, const std::vector<double>& initial_speed,
                             const SizingWarmStart* warm) const {
  if (options.method == Method::kFullSpace && circuit_ == nullptr) {
    throw std::invalid_argument(
        "Sizer: full-space sizing needs the owning Circuit (the NLP constraint "
        "structure is built from it); construct the Sizer from a Circuit or use "
        "Method::kReducedSpace on this view");
  }
  const auto t0 = std::chrono::steady_clock::now();

  // Degraded fallback when a cancel/tripwire fires outside the solvers' own
  // checkpointed regions (e.g. during full-space problem construction): the
  // clamped start sizing, honestly labelled.
  auto degraded = [&](const std::vector<double>& start, const char* what, std::string site) {
    SizingResult r;
    r.status = std::string(options.method == Method::kFullSpace ? "full-space/" : "reduced/") + what;
    r.breakdown_site = std::move(site);
    r.from_checkpoint = true;
    r.speed.assign(static_cast<std::size_t>(view_->num_nodes()), 1.0);
    for (NodeId id : view_->gates_in_topo_order()) {
      r.speed[static_cast<std::size_t>(id)] =
          std::clamp(start[static_cast<std::size_t>(id)], 1.0, spec_.max_speed);
    }
    return r;
  };

  SizingResult result;
  {
    const runtime::Deadline deadline = options.time_limit_seconds > 0.0
                                           ? runtime::Deadline::after_seconds(options.time_limit_seconds)
                                           : runtime::Deadline::never();
    runtime::CancelScope scope(options.cancel, deadline);

    // A failed solve is worth retrying only when the failure is
    // start-dependent — a numerical breakdown or a stall. Deadline and
    // budget exhaustion would just reproduce.
    auto wants_retry = [](const SizingResult& r) {
      return !r.converged && (r.status.find("numerical-breakdown") != std::string::npos ||
                              r.status.find("stalled") != std::string::npos);
    };

    int attempts_run = 0;
    double rho_scale = 1.0;
    for (int attempt = 0; attempt <= options.max_retries; ++attempt) {
      if (attempt > 0 && runtime::cancel_requested()) break;  // no budget left for retries
      const std::vector<double> start =
          attempt == 0 ? initial_speed
                       : perturbed_start(initial_speed, spec_.max_speed, options.retry_seed, attempt);
      SizingResult r;
      try {
        // Warm multiplier state only applies to the un-perturbed first
        // attempt: a retry start is a different point, where the old
        // multipliers are no longer meaningful.
        r = run_attempt(options, start, rho_scale, attempt == 0 ? warm : nullptr);
      } catch (const runtime::OperationCancelled&) {
        r = degraded(start, "time-limit", "");
      } catch (const nlp::EvalBreakdown& e) {
        r = degraded(start, "numerical-breakdown", e.site());
      }
      ++attempts_run;
      if (attempt == 0) {
        result = std::move(r);
      } else {
        // Keep the lexicographically better sizing; an expired deadline can
        // make the comparison itself uncomputable, in which case keep what
        // we have.
        bool take = r.converged && !result.converged;
        if (r.converged == result.converged) {
          try {
            take = score_sizing(*view_, spec_, r.speed)
                       .better_than(score_sizing(*view_, spec_, result.speed),
                                    options.feasibility_tol);
          } catch (const runtime::OperationCancelled&) {
            take = false;
          }
        }
        if (take) result = std::move(r);
      }
      if (result.converged || !wants_retry(result)) break;
      rho_scale = std::max(rho_scale * kRetryRhoBackoff, kMinRhoScale);
    }
    result.retries_used = attempts_run - 1;
  }
  // The final SSTA scoring runs outside the cancel scope: an expired deadline
  // must not poison the returned timing numbers.
  finish(result);
  result.wall_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return result;
}

SizingResult Sizer::run_attempt(const SizerOptions& options, const std::vector<double>& start,
                                double rho_scale, const SizingWarmStart* warm) const {
  return options.method == Method::kFullSpace
             ? run_full_space(options, start, rho_scale, warm)
             : run_reduced_space(options, start, rho_scale, warm);
}

SizingResult Sizer::run_full_space(const SizerOptions& options, const std::vector<double>& start,
                                   double rho_scale, const SizingWarmStart* warm_in) const {
  std::vector<double> s0 = start;
  SizingResult warm;
  // An ECO warm start replaces the reduced-space pre-solve: the previous
  // solution's sizes already play the feasible-start role.
  if (options.warm_start_full_space && warm_in == nullptr) {
    SizerOptions pre = options;
    pre.method = Method::kReducedSpace;
    pre.verbose = false;
    warm = run_reduced_space(pre, start, rho_scale, nullptr);
    s0 = warm.speed;
  }
  FullSpaceFormulation form = build_full_space(*circuit_, spec_, s0);

  nlp::AugLagOptions al;
  al.initial_rho *= rho_scale;
  al.feasibility_tol = options.feasibility_tol;
  al.optimality_tol = options.optimality_tol;
  al.max_outer_iterations = options.max_outer_iterations;
  al.max_inner_iterations = options.max_inner_iterations;
  al.verbose = options.verbose;
  nlp::WarmStart nlp_warm;  // empty fields = cold defaults
  if (warm_in != nullptr) {
    if (static_cast<int>(warm_in->multipliers.size()) == form.problem->num_constraints()) {
      nlp_warm.multipliers = warm_in->multipliers;
    }
    nlp_warm.rho = warm_in->rho;
  }
  const nlp::SolveResult sol = nlp::solve_augmented_lagrangian(*form.problem, al, nlp_warm);

  SizingResult result;
  result.converged = sol.ok();
  result.status = "full-space/" + sol.status_string();
  result.speed = form.speeds_from(sol.x);
  result.objective_value = sol.objective;
  result.iterations = sol.inner_iterations;
  result.outer_iterations = sol.outer_iterations;
  result.from_checkpoint = sol.from_checkpoint;
  result.checkpoint_outer = sol.checkpoint_outer;
  result.breakdown_site = sol.breakdown_site;
  result.warm.speed = result.speed;
  result.warm.multipliers = sol.multipliers;
  result.warm.rho = sol.final_rho;

  // A non-converged augmented-Lagrangian run can drift off the warm-start
  // optimum; never return something worse than the point we started from.
  // (An expired deadline can make the rescore throw — keep the solver's
  // checkpoint in that case.)
  if (!result.converged && options.warm_start_full_space && warm_in == nullptr) {
    bool use_warm = false;
    try {
      use_warm = score_sizing(*view_, spec_, warm.speed)
                     .better_than(score_sizing(*view_, spec_, result.speed),
                                  options.feasibility_tol);
    } catch (const runtime::OperationCancelled&) {
      use_warm = false;
    }
    if (use_warm) {
      result.speed = warm.speed;
      result.converged = warm.converged;
      result.status += "+fallback:" + warm.status;
      result.iterations += warm.iterations;
      result.warm.speed = result.speed;
    }
  }
  return result;
}

SizingResult Sizer::run_reduced_space(const SizerOptions& options,
                                      const std::vector<double>& start,
                                      double rho_scale, const SizingWarmStart* warm_in) const {
  const netlist::TimingView& v = *view_;
  const ReducedEvaluator eval(v, spec_.sigma_model);

  // Optimizer variables: speed factor per gate.
  const std::vector<NodeId>& gates = v.gates_in_topo_order();
  const std::size_t ng = gates.size();
  std::vector<double> x(ng);
  for (std::size_t i = 0; i < ng; ++i) {
    x[i] = std::clamp(start[static_cast<std::size_t>(gates[i])], 1.0, spec_.max_speed);
  }
  const std::vector<double> lo(ng, 1.0);
  const std::vector<double> hi(ng, spec_.max_speed);

  std::vector<double> speed(static_cast<std::size_t>(v.num_nodes()), 1.0);
  std::vector<double> full_grad;
  // An ECO warm start resumes the multiplier/penalty schedule where the
  // previous solve left it; cold solves estimate lambda from zero.
  double lambda = warm_in != nullptr ? warm_in->lambda : 0.0;
  double rho = warm_in != nullptr && warm_in->rho > 0.0 ? warm_in->rho : 10.0 * rho_scale;

  const bool has_constraint = spec_.delay_constraint.has_value();
  const double obj_k =
      spec_.objective.kind == ObjectiveKind::kDelay ? spec_.objective.sigma_weight : 0.0;

  // F(S) = objective + augmented-Lagrangian constraint terms; one adjoint
  // sweep delivers the gradient of any linear combination of (mu, var).
  auto eval_al = [&](const std::vector<double>& xs, std::vector<double>& grad) {
    for (std::size_t i = 0; i < ng; ++i) speed[static_cast<std::size_t>(gates[i])] = xs[i];
    const stat::NormalRV probe = eval.eval(speed);
    const double sigma = probe.sigma();
    const double inv2s = sigma > 1e-12 ? 0.5 / sigma : 0.0;

    double f = 0.0;
    double seed_mu = 0.0;
    double seed_var = 0.0;
    switch (spec_.objective.kind) {
      case ObjectiveKind::kDelay:
        f = probe.mu + obj_k * sigma;
        seed_mu = 1.0;
        seed_var = obj_k * inv2s;
        break;
      case ObjectiveKind::kArea:
        for (std::size_t i = 0; i < ng; ++i) f += xs[i];
        break;
      case ObjectiveKind::kSigma:
        f = spec_.objective.sign * sigma;
        seed_var = spec_.objective.sign * inv2s;
        break;
      case ObjectiveKind::kWeighted:
        for (std::size_t i = 0; i < ng; ++i) {
          f += spec_.objective.weights[static_cast<std::size_t>(gates[i])] * xs[i];
        }
        break;
    }
    if (has_constraint) {
      const DelayConstraint& dc = *spec_.delay_constraint;
      const double h = probe.mu + dc.sigma_weight * sigma - dc.bound;
      double dpen_dh;
      if (dc.equality) {
        f += lambda * h + 0.5 * rho * h * h;
        dpen_dh = lambda + rho * h;
      } else {
        const double m = std::max(0.0, lambda + rho * h);
        f += (m * m - lambda * lambda) / (2.0 * rho);
        dpen_dh = m;
      }
      seed_mu += dpen_dh;
      seed_var += dpen_dh * dc.sigma_weight * inv2s;
    }

    if (seed_mu != 0.0 || seed_var != 0.0) {
      eval.eval_with_grad(speed, seed_mu, seed_var, full_grad);
    } else {
      full_grad.assign(speed.size(), 0.0);
    }
    grad.resize(ng);
    for (std::size_t i = 0; i < ng; ++i) {
      grad[i] = full_grad[static_cast<std::size_t>(gates[i])];
      if (spec_.objective.kind == ObjectiveKind::kArea) {
        grad[i] += 1.0;
      } else if (spec_.objective.kind == ObjectiveKind::kWeighted) {
        grad[i] += spec_.objective.weights[static_cast<std::size_t>(gates[i])];
      }
    }
    // Tripwires at the evaluation boundary (DESIGN.md §9): name the gate, not
    // "NaN somewhere".
    if (fault::hit(fault::kReducedEval)) f = std::numeric_limits<double>::quiet_NaN();
    if (!std::isfinite(f)) {
      throw nlp::EvalBreakdown("reduced-space objective (mu=" + std::to_string(probe.mu) +
                               ", sigma=" + std::to_string(sigma) + ")");
    }
    for (std::size_t i = 0; i < ng; ++i) {
      if (!std::isfinite(grad[i])) {
        throw nlp::EvalBreakdown("reduced-space gradient (gate " +
                                 (circuit_ != nullptr ? circuit_->node(gates[i]).name
                                                      : "#" + std::to_string(gates[i])) +
                                 ")");
      }
    }
    return f;
  };

  SizingResult result;
  nlp::LbfgsOptions lb;
  lb.tol = options.optimality_tol;
  lb.max_iterations = options.max_inner_iterations;
  lb.verbose = false;

  // Best-iterate checkpoint across the constrained outer loop (scored on the
  // true propagated timing, which the loop computes anyway). Restored only
  // when the run degrades — normal exits return exactly the pre-resilience
  // iterate.
  std::vector<double> ckpt_x;
  Score ckpt_score;
  int ckpt_outer = -1;
  bool have_ckpt = false;
  int total_it = 0;
  int outers_run = 0;

  try {
    if (!has_constraint) {
      const nlp::LbfgsResult r = minimize_projected_lbfgs(eval_al, x, lo, hi, lb);
      result.converged = r.converged;
      result.iterations = r.iterations;
      result.status = std::string("reduced/") + (r.converged ? "converged" : "max-iterations");
    } else {
      const DelayConstraint& dc = *spec_.delay_constraint;
      // The delay metric is O(bound); judge feasibility relative to it so the
      // same tolerance works for 7-unit trees and 150-unit netlists.
      const double feas = options.feasibility_tol * (1.0 + std::abs(dc.bound));
      bool done = false;
      double viol = 0.0;
      for (int outer = 0; outer < options.max_outer_iterations && !done; ++outer) {
        // LANCELOT-style omega schedule: early subproblems are solved loosely
        // (their multipliers are wrong anyway), tightening toward the final
        // optimality tolerance. A warm-started resize skips the loose rungs —
        // its multipliers are already near-correct, so the loose subproblem
        // would just wander off the old optimum and have to walk back.
        nlp::LbfgsOptions lb_outer = lb;
        lb_outer.tol = warm_in != nullptr ? lb.tol
                                          : std::max(lb.tol, 1e-2 / std::pow(4.0, outer));
        const nlp::LbfgsResult r = minimize_projected_lbfgs(eval_al, x, lo, hi, lb_outer);
        total_it += r.iterations;
        ++outers_run;
        for (std::size_t i = 0; i < ng; ++i) speed[static_cast<std::size_t>(gates[i])] = x[i];
        const stat::NormalRV probe = eval.eval(speed);
        const double h = probe.mu + dc.sigma_weight * probe.sigma() - dc.bound;
        viol = dc.equality ? std::abs(h) : std::max(0.0, h);
        if (options.verbose) {
          std::printf("[sizer-reduced] outer=%d viol=%.3e pg=%.3e rho=%.1e\n", outer, viol,
                      r.projected_gradient, rho);
        }
        const double obj_now = objective_metric(v, spec_, speed, probe);
        if (std::isfinite(viol) && std::isfinite(obj_now) &&
            (!have_ckpt || Score{viol, obj_now}.better_than(ckpt_score, feas))) {
          ckpt_x = x;
          ckpt_score = Score{viol, obj_now};
          ckpt_outer = outer;
          have_ckpt = true;
        }
        if (viol <= feas && lb_outer.tol <= 2.0 * lb.tol &&
            r.projected_gradient <= 10.0 * options.optimality_tol) {
          done = true;
          break;
        }
        // Multiplier / penalty updates (PHR).
        if (dc.equality) {
          lambda += rho * h;
        } else {
          lambda = std::max(0.0, lambda + rho * h);
        }
        if (viol > 0.25 * feas) rho = std::min(rho * 4.0, 1e9);
      }
      result.converged = done;
      result.iterations = total_it;
      result.status = std::string("reduced/") + (done ? "converged" : "max-iterations");
    }
  } catch (const runtime::OperationCancelled&) {
    result.converged = false;
    result.status = "reduced/time-limit";
    result.iterations = total_it;
    result.from_checkpoint = true;
    if (have_ckpt) x = ckpt_x;  // else: last accepted L-BFGS iterate, still valid
    result.checkpoint_outer = ckpt_outer;
  } catch (const nlp::EvalBreakdown& e) {
    result.converged = false;
    result.status = "reduced/numerical-breakdown";
    result.breakdown_site = e.site();
    result.iterations = total_it;
    result.from_checkpoint = true;
    if (have_ckpt) x = ckpt_x;
    result.checkpoint_outer = ckpt_outer;
  }

  result.outer_iterations = has_constraint ? outers_run : 1;
  result.speed.assign(static_cast<std::size_t>(v.num_nodes()), 1.0);
  for (std::size_t i = 0; i < ng; ++i) {
    result.speed[static_cast<std::size_t>(gates[i])] = x[i];
  }
  result.warm.speed = result.speed;
  result.warm.lambda = lambda;
  result.warm.rho = rho;
  std::vector<double> g;
  try {
    result.objective_value = eval_al(x, g);
  } catch (...) {  // deadline already expired / still-armed tripwire
    result.objective_value = 0.0;
  }
  return result;
}

}  // namespace statsize::core
