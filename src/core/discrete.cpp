#include "core/discrete.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/reduced_space.h"

namespace statsize::core {

using netlist::NodeId;
using netlist::NodeKind;

SizeGrid SizeGrid::geometric(double max_speed, int steps) {
  if (steps < 2 || max_speed <= 1.0) throw std::invalid_argument("need >=2 steps, max > 1");
  SizeGrid grid;
  grid.sizes.reserve(static_cast<std::size_t>(steps));
  const double ratio = std::pow(max_speed, 1.0 / (steps - 1));
  double s = 1.0;
  for (int i = 0; i < steps; ++i) {
    grid.sizes.push_back(i + 1 == steps ? max_speed : s);
    s *= ratio;
  }
  return grid;
}

double SizeGrid::snap(double s, bool round_up) const {
  const auto it = std::lower_bound(sizes.begin(), sizes.end(), s - 1e-12);
  if (it == sizes.end()) return sizes.back();
  if (it == sizes.begin()) return sizes.front();
  const double hi = *it;
  const double lo = *(it - 1);
  if (round_up) return hi;
  return (s - lo) <= (hi - s) ? lo : hi;
}

namespace {

/// Index of `s` in the grid (it must be a grid point).
int grid_index(const SizeGrid& grid, double s) {
  const auto it =
      std::min_element(grid.sizes.begin(), grid.sizes.end(),
                       [s](double a, double b) { return std::abs(a - s) < std::abs(b - s); });
  return static_cast<int>(it - grid.sizes.begin());
}

}  // namespace

DiscreteResult legalize_sizing(const netlist::Circuit& circuit, const SizingSpec& spec,
                               const std::vector<double>& continuous_speed,
                               const SizeGrid& grid, double target, double sigma_weight) {
  if (grid.sizes.empty()) throw std::invalid_argument("empty size grid");
  const bool constrained = target < std::numeric_limits<double>::infinity();
  const ReducedEvaluator eval(circuit, spec.sigma_model);

  std::vector<NodeId> gates;
  for (NodeId id : circuit.topo_order()) {
    if (circuit.node(id).kind == NodeKind::kGate) gates.push_back(id);
  }

  DiscreteResult result;
  result.speed.assign(static_cast<std::size_t>(circuit.num_nodes()), grid.sizes.front());
  for (NodeId g : gates) {
    const std::size_t i = static_cast<std::size_t>(g);
    result.speed[i] = grid.snap(continuous_speed[i], /*round_up=*/constrained);
  }

  double metric = eval.eval_metric(result.speed, sigma_weight, nullptr);

  // Repair: while infeasible, take the single-gate up-move with the best
  // improvement (per area) until feasible or stuck.
  std::vector<double> grad;
  while (constrained && metric > target) {
    eval.eval_metric(result.speed, sigma_weight, &grad);
    NodeId best = netlist::kInvalidNode;
    double best_score = 0.0;
    for (NodeId g : gates) {
      const std::size_t i = static_cast<std::size_t>(g);
      const int idx = grid_index(grid, result.speed[i]);
      if (idx + 1 >= static_cast<int>(grid.sizes.size())) continue;
      // Gain per unit area: the metric drop -grad * dS divided by the area
      // cost dS — i.e. simply the (negated) gradient.
      const double score = -grad[i];
      if (score > best_score) {
        best_score = score;
        best = g;
      }
    }
    if (best == netlist::kInvalidNode) break;
    const std::size_t bi = static_cast<std::size_t>(best);
    result.speed[bi] =
        grid.sizes[static_cast<std::size_t>(grid_index(grid, result.speed[bi]) + 1)];
    const double trial = eval.eval_metric(result.speed, sigma_weight, nullptr);
    if (trial >= metric - 1e-12) {
      // Gradient misled (upstream loading dominated); undo and stop repairing
      // through this gate by accepting the stall.
      result.speed[bi] =
          grid.sizes[static_cast<std::size_t>(grid_index(grid, result.speed[bi]) - 1)];
      break;
    }
    metric = trial;
    ++result.repair_moves;
  }

  // Trim: try to downsize every gate (largest first) while staying feasible.
  if (!constrained || metric <= target) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (NodeId g : gates) {
        const std::size_t i = static_cast<std::size_t>(g);
        const int idx = grid_index(grid, result.speed[i]);
        if (idx == 0) continue;
        const double saved = result.speed[i];
        result.speed[i] = grid.sizes[static_cast<std::size_t>(idx - 1)];
        const double trial = eval.eval_metric(result.speed, sigma_weight, nullptr);
        if (!constrained ? trial <= metric + 1e-12 : trial <= target) {
          metric = trial;
          ++result.trim_moves;
          changed = true;
        } else {
          result.speed[i] = saved;
        }
      }
    }
  }

  result.delay_metric = metric;
  result.feasible = !constrained || metric <= target + 1e-9;
  for (NodeId g : gates) result.sum_speed += result.speed[static_cast<std::size_t>(g)];
  return result;
}

}  // namespace statsize::core
