// Sizing problem specification: which objective, which delay constraint,
// which sizing limits, which sigma model — covering every row of the paper's
// Tables 1 and 2.

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ssta/delay_model.h"

namespace statsize::core {

enum class ObjectiveKind {
  kDelay,     ///< minimize mu_Tmax + sigma_weight * sigma_Tmax
  kArea,      ///< minimize sum of speed factors (the paper's area measure)
  kSigma,     ///< minimize (sign=+1) or maximize (sign=-1) sigma_Tmax
  kWeighted,  ///< minimize sum of weight_g * S_g (paper sec. 4: with
              ///< capacitance x switching-activity weights this models power;
              ///< see ssta::power_weights)
};

struct Objective {
  ObjectiveKind kind = ObjectiveKind::kDelay;
  double sigma_weight = 0.0;  ///< the k in mu + k sigma (kDelay only)
  double sign = 1.0;          ///< +1 minimize, -1 maximize (kSigma only)
  std::vector<double> weights;  ///< per-NodeId weights (kWeighted only)

  static Objective min_delay(double sigma_weight = 0.0) {
    return {ObjectiveKind::kDelay, sigma_weight, 1.0, {}};
  }
  static Objective min_area() { return {ObjectiveKind::kArea, 0.0, 1.0, {}}; }
  static Objective min_sigma() { return {ObjectiveKind::kSigma, 0.0, 1.0, {}}; }
  static Objective max_sigma() { return {ObjectiveKind::kSigma, 0.0, -1.0, {}}; }

  /// `weights` indexed by NodeId (non-gate entries ignored).
  static Objective min_weighted(std::vector<double> weights) {
    return {ObjectiveKind::kWeighted, 0.0, 1.0, std::move(weights)};
  }

  std::string description() const;
};

/// mu_Tmax + sigma_weight * sigma_Tmax  (<= | ==)  bound.
struct DelayConstraint {
  double sigma_weight = 0.0;
  double bound = 0.0;
  bool equality = false;  ///< Table 2 pins mu_Tmax exactly; Table 1 uses <=

  static DelayConstraint at_most(double bound, double sigma_weight = 0.0) {
    return {sigma_weight, bound, false};
  }
  static DelayConstraint exactly(double bound, double sigma_weight = 0.0) {
    return {sigma_weight, bound, true};
  }

  std::string description() const;
};

struct SizingSpec {
  Objective objective;
  std::optional<DelayConstraint> delay_constraint;
  double max_speed = 3.0;  ///< the paper's `limit` (its example uses 3)
  ssta::SigmaModel sigma_model{0.25, 0.0};  ///< eq. 18e: sigma = mu / 4

  /// Full-space formulation option implementing the paper's future-work item:
  /// express each gate's fanin maximum as ONE n-ary element instead of a
  /// chain of pairwise maxima with intermediate (mu_U, var_U) variables.
  /// Fewer variables and constraints, denser element Hessians; the optimum is
  /// identical (bench ablation_formulation compares). Ignored by the
  /// reduced-space method, which never materializes fold variables anyway.
  bool nary_fanin_max = false;
};

}  // namespace statsize::core
