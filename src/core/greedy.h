// TILOS-style greedy sensitivity sizing — the classic heuristic baseline
// (Fishburn & Dunlop, ICCAD'85) that predates exact mathematical-programming
// approaches like the paper's. Each round, the gate with the best
// delay-improvement-per-area ratio gets a small size bump until the delay
// target is met (or no move helps).
//
// The paper's pitch is solving the sizing problem *exactly*; this baseline
// quantifies what exactness buys: bench `greedy_vs_nlp` compares achieved
// area at equal delay targets and the runtime trade.

#pragma once

#include <vector>

#include "core/spec.h"
#include "netlist/circuit.h"

namespace statsize::core {

struct GreedyOptions {
  double step = 0.05;          ///< multiplicative size bump per accepted move
  int max_rounds = 100000;     ///< total accepted moves budget
  int candidates_per_round = 4;  ///< try the top-k sensitivity gates per round
};

struct GreedyResult {
  bool met_target = false;
  std::vector<double> speed;  ///< per NodeId
  double delay_metric = 0.0;  ///< final mu + k sigma
  double sum_speed = 0.0;
  int rounds = 0;
  double wall_seconds = 0.0;
};

/// Greedily sizes `circuit` until mu + sigma_weight * sigma <= target (or no
/// move improves the metric). Starts from S = 1 everywhere.
GreedyResult greedy_size(const netlist::Circuit& circuit, const SizingSpec& spec,
                         double target, double sigma_weight,
                         const GreedyOptions& options = {});

}  // namespace statsize::core
