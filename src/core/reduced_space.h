// Reduced-space evaluation of the sizing objectives: the speed factors S are
// the only free variables; arrival statistics are *functions* of S computed
// by a forward SSTA sweep, and gradients come from one reverse (adjoint)
// sweep through the same computation graph using the hand-derived Clark
// derivatives.
//
// This is not the paper's formulation (which keeps all timing quantities as
// NLP variables — see full_space.h); it is the ablation partner (DESIGN.md
// sec. 5.1) and the scalability mode: one gradient costs two circuit sweeps
// regardless of circuit size, and the optimizer only sees |gates| variables.

#pragma once

#include <vector>

#include "core/spec.h"
#include "netlist/circuit.h"
#include "ssta/delay_model.h"
#include "stat/normal.h"

namespace statsize::core {

class ReducedEvaluator {
 public:
  ReducedEvaluator(const netlist::Circuit& circuit, ssta::SigmaModel sigma_model);

  const netlist::Circuit& circuit() const { return *circuit_; }

  /// Forward sweep only: the circuit-delay distribution at `speed`.
  stat::NormalRV eval(const std::vector<double>& speed) const;

  /// Forward + adjoint: returns Tmax and fills `grad` (indexed by NodeId;
  /// non-gate entries 0) with the gradient of
  ///     seed_mu * mu_Tmax + seed_var * var_Tmax
  /// with respect to every speed factor. Linear combinations cover all
  /// objectives: e.g. d(mu + k sigma)/dS uses seed_mu = 1,
  /// seed_var = k / (2 sigma).
  stat::NormalRV eval_with_grad(const std::vector<double>& speed, double seed_mu,
                                double seed_var, std::vector<double>& grad) const;

  /// Gradient of mu + k * sigma directly (the common case).
  double eval_metric(const std::vector<double>& speed, double sigma_weight,
                     std::vector<double>* grad) const;

 private:
  const netlist::Circuit* circuit_;
  ssta::SigmaModel sigma_model_;
};

}  // namespace statsize::core
