// Reduced-space evaluation of the sizing objectives: the speed factors S are
// the only free variables; arrival statistics are *functions* of S computed
// by a forward SSTA sweep, and gradients come from one reverse (adjoint)
// sweep through the same computation graph using the hand-derived Clark
// derivatives.
//
// This is not the paper's formulation (which keeps all timing quantities as
// NLP variables — see full_space.h); it is the ablation partner (DESIGN.md
// sec. 5.1) and the scalability mode: one gradient costs two circuit sweeps
// regardless of circuit size, and the optimizer only sees |gates| variables.
//
// Both sweeps run level-parallel on the global runtime pool (DESIGN.md §7).
// The forward sweep's writes are per-gate disjoint; the adjoint sweep's
// overlapping amu/avar/grad scatters go through per-level ScatterPlans
// (parallel evaluate into disjoint slots, conflict-free target-major fold),
// so results are equal at any thread count, including the serial fallback.
//
// ECO path (DESIGN.md §12): the evaluator keeps its forward tape (arrivals,
// delays, recorded Clark steps) across gradient calls. When the next call's
// speed vector differs from the cached one on a few gates only — or the
// view's delay-model constants were edited and note_edits() named the nodes
// — the forward sweep repropagates just the affected cone, worklist-style,
// and the adjoint runs over the patched tape. A gate not recomputed has
// bitwise-identical fanin arrivals, hence bitwise-identical cached steps, so
// the incremental gradient is bit-identical to a cold evaluation (pinned by
// tests and bench/eco_incremental).

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/spec.h"
#include "netlist/circuit.h"
#include "ssta/delay_model.h"
#include "stat/normal.h"

namespace statsize::core {

class ReducedEvaluator {
 public:
  ReducedEvaluator(const netlist::Circuit& circuit, ssta::SigmaModel sigma_model);

  /// Evaluates against a standalone view — e.g. an ECO-edited copy owned by
  /// an IncrementalEngine or a derived serve cache entry. The caller keeps
  /// `view` alive (and does not move it) for this evaluator's lifetime.
  /// circuit() throws on an evaluator built this way.
  ReducedEvaluator(const netlist::TimingView& view, ssta::SigmaModel sigma_model);

  ~ReducedEvaluator();

  const netlist::Circuit& circuit() const;

  /// Forward sweep only: the circuit-delay distribution at `speed`.
  /// Stateless (does not consult or update the gradient tape).
  stat::NormalRV eval(const std::vector<double>& speed) const;

  /// Forward + adjoint: returns Tmax and fills `grad` (indexed by NodeId;
  /// non-gate entries 0) with the gradient of
  ///     seed_mu * mu_Tmax + seed_var * var_Tmax
  /// with respect to every speed factor. Linear combinations cover all
  /// objectives: e.g. d(mu + k sigma)/dS uses seed_mu = 1,
  /// seed_var = k / (2 sigma).
  ///
  /// Degenerate circuits are rejected with std::invalid_argument naming the
  /// problem (no primary outputs — Tmax undefined; a zero-fanin gate — no
  /// arrival to fold) instead of underflowing the step-slice arithmetic.
  ///
  /// Not safe for concurrent calls on one instance: the adjoint's scatter
  /// plans and the forward tape are cached across calls (the sweeps
  /// themselves fan out across the global pool internally).
  stat::NormalRV eval_with_grad(const std::vector<double>& speed, double seed_mu,
                                double seed_var, std::vector<double>& grad) const;

  /// Gradient of mu + k * sigma directly (the common case). The adjoint seed
  /// is derived from the forward sweep's own Tmax — one forward + one
  /// adjoint sweep total, no separate sigma probe.
  double eval_metric(const std::vector<double>& speed, double sigma_weight,
                     std::vector<double>* grad) const;

  /// Marks view nodes whose delay-model constants were edited (via
  /// TimingView::update_node_params on this evaluator's view) since the last
  /// gradient call. Call *after* the edits: the evaluator records the view's
  /// current epoch, and the next forward sweep repropagates only the cone of
  /// the noted nodes (plus any speed-diff dirt). Edits made without a note
  /// are still safe — the epoch mismatch forces a full resweep.
  void note_edits(const std::vector<netlist::NodeId>& nodes);

  /// Drops the forward tape; the next gradient call runs a full sweep.
  void invalidate();

  /// Gates whose arrival fold actually ran in the last gradient call's
  /// forward sweep (== num_gates for a full sweep) — the observable
  /// "gradient re-eval scales with cone size" contract.
  std::size_t last_forward_recomputes() const;

 private:
  struct AdjointPlans;
  struct ForwardCache;

  const netlist::TimingView& resolve_view() const;

  /// Full-or-incremental forward sweep recording the Clark-step tape into
  /// the cache; returns Tmax.
  stat::NormalRV forward_sweep(const netlist::TimingView& view,
                               const std::vector<double>& speed) const;

  template <class SeedFn>
  stat::NormalRV eval_with_grad_impl(const std::vector<double>& speed, const SeedFn& seed_fn,
                                     std::vector<double>& grad) const;

  const netlist::Circuit* circuit_ = nullptr;  ///< null when view-constructed
  const netlist::TimingView* view_ = nullptr;  ///< null when circuit-constructed
  ssta::SigmaModel sigma_model_;
  mutable std::unique_ptr<AdjointPlans> plans_;  ///< lazy; structure-only cache
  mutable std::unique_ptr<ForwardCache> fwd_;    ///< lazy; forward tape
};

}  // namespace statsize::core
