// Reduced-space evaluation of the sizing objectives: the speed factors S are
// the only free variables; arrival statistics are *functions* of S computed
// by a forward SSTA sweep, and gradients come from one reverse (adjoint)
// sweep through the same computation graph using the hand-derived Clark
// derivatives.
//
// This is not the paper's formulation (which keeps all timing quantities as
// NLP variables — see full_space.h); it is the ablation partner (DESIGN.md
// sec. 5.1) and the scalability mode: one gradient costs two circuit sweeps
// regardless of circuit size, and the optimizer only sees |gates| variables.
//
// Both sweeps run level-parallel on the global runtime pool (DESIGN.md §7).
// The forward sweep's writes are per-gate disjoint; the adjoint sweep's
// overlapping amu/avar/grad scatters go through per-level ScatterPlans
// (parallel evaluate into disjoint slots, conflict-free target-major fold),
// so results are equal at any thread count, including the serial fallback.

#pragma once

#include <memory>
#include <vector>

#include "core/spec.h"
#include "netlist/circuit.h"
#include "ssta/delay_model.h"
#include "stat/normal.h"

namespace statsize::core {

class ReducedEvaluator {
 public:
  ReducedEvaluator(const netlist::Circuit& circuit, ssta::SigmaModel sigma_model);
  ~ReducedEvaluator();

  const netlist::Circuit& circuit() const { return *circuit_; }

  /// Forward sweep only: the circuit-delay distribution at `speed`.
  stat::NormalRV eval(const std::vector<double>& speed) const;

  /// Forward + adjoint: returns Tmax and fills `grad` (indexed by NodeId;
  /// non-gate entries 0) with the gradient of
  ///     seed_mu * mu_Tmax + seed_var * var_Tmax
  /// with respect to every speed factor. Linear combinations cover all
  /// objectives: e.g. d(mu + k sigma)/dS uses seed_mu = 1,
  /// seed_var = k / (2 sigma).
  ///
  /// Degenerate circuits are rejected with std::invalid_argument naming the
  /// problem (no primary outputs — Tmax undefined; a zero-fanin gate — no
  /// arrival to fold) instead of underflowing the step-slice arithmetic.
  ///
  /// Not safe for concurrent calls on one instance: the adjoint's scatter
  /// plans are cached lazily on first use (the sweeps themselves fan out
  /// across the global pool internally).
  stat::NormalRV eval_with_grad(const std::vector<double>& speed, double seed_mu,
                                double seed_var, std::vector<double>& grad) const;

  /// Gradient of mu + k * sigma directly (the common case). The adjoint seed
  /// is derived from the forward sweep's own Tmax — one forward + one
  /// adjoint sweep total, no separate sigma probe.
  double eval_metric(const std::vector<double>& speed, double sigma_weight,
                     std::vector<double>* grad) const;

 private:
  struct AdjointPlans;

  template <class SeedFn>
  stat::NormalRV eval_with_grad_impl(const std::vector<double>& speed, const SeedFn& seed_fn,
                                     std::vector<double>& grad) const;

  const netlist::Circuit* circuit_;
  ssta::SigmaModel sigma_model_;
  mutable std::unique_ptr<AdjointPlans> plans_;  ///< lazy; structure-only cache
};

}  // namespace statsize::core
