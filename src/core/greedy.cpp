#include "core/greedy.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "core/reduced_space.h"

namespace statsize::core {

using netlist::NodeId;
using netlist::NodeKind;

GreedyResult greedy_size(const netlist::Circuit& circuit, const SizingSpec& spec,
                         double target, double sigma_weight, const GreedyOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  const ReducedEvaluator eval(circuit, spec.sigma_model);

  GreedyResult result;
  result.speed.assign(static_cast<std::size_t>(circuit.num_nodes()), 1.0);

  std::vector<NodeId> gates;
  for (NodeId id : circuit.topo_order()) {
    if (circuit.node(id).kind == NodeKind::kGate) gates.push_back(id);
  }

  std::vector<double> grad;
  double metric = eval.eval_metric(result.speed, sigma_weight, &grad);

  for (int round = 0; round < options.max_rounds; ++round) {
    if (metric <= target) {
      result.met_target = true;
      break;
    }
    // Rank gates by gradient-predicted improvement per unit area of the bump.
    // d metric ~ grad_g * dS; area cost = dS; sensitivity = -grad_g.
    std::vector<NodeId> order;
    order.reserve(gates.size());
    for (NodeId g : gates) {
      if (result.speed[static_cast<std::size_t>(g)] < spec.max_speed - 1e-9 &&
          grad[static_cast<std::size_t>(g)] < 0.0) {
        order.push_back(g);
      }
    }
    if (order.empty()) break;  // every helpful gate is maxed out
    const int k = std::min<int>(options.candidates_per_round, static_cast<int>(order.size()));
    std::partial_sort(order.begin(), order.begin() + k, order.end(),
                      [&](NodeId a, NodeId b) {
                        return grad[static_cast<std::size_t>(a)] <
                               grad[static_cast<std::size_t>(b)];
                      });

    // Try the top-k candidates with a real evaluation; accept the best move
    // (gradients are local — a bump changes upstream loading too).
    NodeId best = netlist::kInvalidNode;
    double best_metric = metric;
    for (int i = 0; i < k; ++i) {
      const NodeId g = order[static_cast<std::size_t>(i)];
      const std::size_t gi = static_cast<std::size_t>(g);
      const double saved = result.speed[gi];
      result.speed[gi] = std::min(spec.max_speed, saved * (1.0 + options.step));
      const double trial = eval.eval_metric(result.speed, sigma_weight, nullptr);
      result.speed[gi] = saved;
      if (trial < best_metric - 1e-12) {
        best_metric = trial;
        best = g;
      }
    }
    if (best == netlist::kInvalidNode) break;  // no candidate improves: stuck
    const std::size_t bi = static_cast<std::size_t>(best);
    result.speed[bi] = std::min(spec.max_speed, result.speed[bi] * (1.0 + options.step));
    metric = eval.eval_metric(result.speed, sigma_weight, &grad);
    result.rounds = round + 1;
  }

  result.delay_metric = metric;
  for (NodeId g : gates) result.sum_speed += result.speed[static_cast<std::size_t>(g)];
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return result;
}

}  // namespace statsize::core
