// Full-space NLP formulation of gate sizing under the statistical delay model
// — a faithful construction of the paper's eq. 17 (and, on the example
// circuit, eq. 18):
//
//   variables   S_g in [1, limit]          speed factor, per gate
//               mu_t_g, var_t_g            gate-delay mean / variance
//               mu_T_g, var_T_g            arrival mean / variance
//               mu_U, var_U                one pair per pairwise max (18b)
//               slack                      for <= delay constraints
//
//   constraints mu_t S = t_int S + c (C_load + sum C_in,i S_i)      (eq. 15)
//               var_t = (kappa mu_t + offset)^2                     (eq. 16/18e)
//               mu_U  = max_mu (...)   var_U = max_var (...)        (eqs. 10-13)
//               mu_T  = mu_U + mu_t    var_T = var_U + var_t        (eq. 4)
//               [mu_Tmax + k sqrt(var_Tmax) (<=|=) bound]
//
// sigma_Tmax is deliberately NOT a variable: mu + k sigma expressions embed
// sqrt(var_Tmax) as an element (see nlp::SqrtElement for the rationale).
//
// Primary-input arrivals are (0,0) constants and are folded away: maxima over
// constants are evaluated at build time, and constant operands are pinned
// inside the Clark elements, exactly the "as many linear terms as possible"
// discipline the paper credits for LANCELOT efficiency.
//
// The builder also seeds every variable from a forward propagation at
// `start_speed`, so the initial point satisfies all equality constraints to
// rounding error — the optimizer starts on the feasible manifold.

#pragma once

#include <memory>
#include <vector>

#include "core/spec.h"
#include "netlist/circuit.h"
#include "nlp/problem.h"

namespace statsize::core {

struct FullSpaceFormulation {
  std::unique_ptr<nlp::Problem> problem;
  /// NLP variable index of S_g, indexed by NodeId (-1 for non-gates).
  std::vector<int> speed_var;
  int mu_tmax_var = -1;
  int var_tmax_var = -1;
  int num_max_pairs = 0;  ///< statistical max operations in the formulation

  /// Extracts the per-node speed assignment from an NLP iterate.
  std::vector<double> speeds_from(const std::vector<double>& x) const;
};

FullSpaceFormulation build_full_space(const netlist::Circuit& circuit, const SizingSpec& spec,
                                      const std::vector<double>& start_speed);

/// Convenience: start from S = value everywhere.
FullSpaceFormulation build_full_space(const netlist::Circuit& circuit, const SizingSpec& spec,
                                      double start_speed = 1.0);

}  // namespace statsize::core
