// Analytic moments of C = max(A, B) for independent normals A, B — the core
// mathematical contribution of the paper (sec. 3, eqs. 10, 12, 13; derived in
// its Appendix A; originally due to Clark, 1961).
//
// Writing theta = sqrt(varA + varB) and alpha = (muA - muB) / theta, with
// Phi/phi the standard-normal CDF/PDF:
//
//   mu_C   = muA Phi(alpha) + muB Phi(-alpha) + theta phi(alpha)        (10)
//   E[C^2] = (varA + muA^2) Phi(alpha) + (varB + muB^2) Phi(-alpha)
//            + (muA + muB) theta phi(alpha)                             (12)
//   var_C  = E[C^2] - mu_C^2                                            (13)
//
// These expressions — unlike the sampling approach of the paper's
// predecessors — admit exact first and second derivatives with respect to
// (muA, muB, varA, varB), which is what makes gate sizing under the
// statistical delay model a well-posed smooth NLP.
//
// Numerical notes:
//  * var_C is evaluated in mean-centered form (shift both means by their
//    midpoint; the variance is shift-invariant and the cross term vanishes),
//    avoiding the catastrophic cancellation of E[C^2] - mu_C^2 when
//    |mu| >> sigma.
//  * theta -> 0 degenerates to the deterministic max; below kThetaFloor the
//    exact limit (with subgradient choice at ties) is returned.

#pragma once

#include <array>

#include "autodiff/dual2.h"
#include "stat/normal.h"

namespace statsize::stat {

/// Below this value of theta^2 = varA + varB the max is treated as
/// deterministic. The sizing formulations keep all variance variables above
/// 1e-10, so optimization never lands in the degenerate branch; it exists so
/// that analysis code (SSTA with zero-sigma elements) is still exact.
inline constexpr double kThetaFloorSq = 1e-24;

/// Derivatives are ordered [d/d muA, d/d muB, d/d varA, d/d varB].
struct ClarkGrad {
  std::array<double, 4> dmu{};
  std::array<double, 4> dvar{};
};

/// Packed 4x4 symmetric Hessians (upper triangle, row-major; see
/// autodiff::Dual2::hess_index for the layout).
struct ClarkHess {
  std::array<double, 10> mu{};
  std::array<double, 10> var{};
};

/// Moments only (fast path used by the SSTA engine).
NormalRV clark_max(const NormalRV& a, const NormalRV& b);

/// Moments plus hand-derived analytic gradient (fast path used for adjoint /
/// reduced-space differentiation and for NLP constraint Jacobians).
NormalRV clark_max_grad(const NormalRV& a, const NormalRV& b, ClarkGrad& grad);

/// Moments, gradient and exact Hessians (second-order forward autodiff over
/// the closed-form expressions; used for NLP constraint Hessians).
NormalRV clark_max_full(const NormalRV& a, const NormalRV& b, ClarkGrad& grad, ClarkHess& hess);

/// Left fold of the pairwise max over a non-empty set, exactly as the paper
/// treats gates with more than two inputs (sec. 5, eq. 18b).
NormalRV clark_max_fold(const NormalRV* rvs, int count);

/// Clark's formulas for *correlated* jointly normal operands with
/// Cov(A, B) = cov — the generalization the paper's future-work section asks
/// for ("dealing with correlations between stochastic variables in the
/// circuit, as a result of reconverging paths"). Only theta changes:
///
///   theta = sqrt(varA + varB - 2 cov)
///
/// (Clark 1961, eqs. 2-4). Degenerates to the deterministic max as the
/// operands become perfectly correlated with equal variance (theta -> 0).
/// Also fills `tightness` (Phi(alpha) = P(A > B), the linear mixing weight
/// canonical-form SSTA uses) when non-null.
NormalRV clark_max_correlated(const NormalRV& a, const NormalRV& b, double cov,
                              double* tightness = nullptr);

/// Statistical minimum via min(A, B) = -max(-A, -B): the operator backward
/// (required-time) propagation needs. Independent operands.
NormalRV clark_min(const NormalRV& a, const NormalRV& b);

/// Generic evaluator shared by the double fast path and the Dual2 Hessian
/// path. T must support +,-,*,/, sqrt(), normal_cdf(), normal_pdf().
/// Requires varA + varB > 0 (the caller handles the degenerate branch).
template <class T>
void clark_moments(const T& mu_a, const T& mu_b, const T& var_a, const T& var_b,
                   T& mu_out, T& var_out) {
  using std::sqrt;                             // double path
  using statsize::autodiff::sqrt;              // Dual2 path (also via ADL)
  const T theta = sqrt(var_a + var_b);
  const T gap = mu_a - mu_b;
  const T alpha = gap / theta;
  const T cdf_p = normal_cdf(alpha);
  const T cdf_m = normal_cdf(-alpha);
  const T pdf = normal_pdf(alpha);
  // Mean-centered evaluation: c = (muA - muB)/2 so that cA = c, cB = -c and
  // the (cA + cB) theta phi cross-term of eq. 12 vanishes identically.
  const T c = gap * 0.5;
  const T mu_centered = c * (cdf_p - cdf_m) + theta * pdf;
  mu_out = (mu_a + mu_b) * 0.5 + mu_centered;
  var_out = (var_a + c * c) * cdf_p + (var_b + c * c) * cdf_m - mu_centered * mu_centered;
}

}  // namespace statsize::stat
