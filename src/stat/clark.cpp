#include "stat/clark.h"

#include <cmath>

namespace statsize::stat {

namespace {

/// Exact limit of the max for theta -> 0: the deterministic max, with the
/// convention that derivatives split 50/50 at an exact tie (a subgradient of
/// the nonsmooth limit).
NormalRV degenerate_max(const NormalRV& a, const NormalRV& b, ClarkGrad* grad, ClarkHess* hess) {
  if (hess != nullptr) *hess = ClarkHess{};
  if (grad != nullptr) *grad = ClarkGrad{};
  if (a.mu > b.mu) {
    if (grad != nullptr) {
      grad->dmu[0] = 1.0;
      grad->dvar[2] = 1.0;
    }
    return a;
  }
  if (b.mu > a.mu) {
    if (grad != nullptr) {
      grad->dmu[1] = 1.0;
      grad->dvar[3] = 1.0;
    }
    return b;
  }
  if (grad != nullptr) {
    grad->dmu[0] = grad->dmu[1] = 0.5;
    grad->dvar[2] = grad->dvar[3] = 0.5;
  }
  return {a.mu, 0.5 * (a.var + b.var)};
}

}  // namespace

NormalRV clark_max(const NormalRV& a, const NormalRV& b) {
  if (a.var + b.var <= kThetaFloorSq) return degenerate_max(a, b, nullptr, nullptr);
  NormalRV out;
  clark_moments(a.mu, b.mu, a.var, b.var, out.mu, out.var);
  if (out.var < 0.0) out.var = 0.0;  // guard rounding at extreme |alpha|
  return out;
}

NormalRV clark_max_grad(const NormalRV& a, const NormalRV& b, ClarkGrad& grad) {
  if (a.var + b.var <= kThetaFloorSq) return degenerate_max(a, b, &grad, nullptr);

  const double theta2 = a.var + b.var;
  const double theta = std::sqrt(theta2);
  const double gap = a.mu - b.mu;
  const double alpha = gap / theta;
  const double cdf_p = normal_cdf(alpha);
  const double cdf_m = normal_cdf(-alpha);
  const double pdf = normal_pdf(alpha);

  const double c = 0.5 * gap;
  const double mu_centered = c * (cdf_p - cdf_m) + theta * pdf;
  NormalRV out;
  out.mu = 0.5 * (a.mu + b.mu) + mu_centered;
  out.var = (a.var + c * c) * cdf_p + (b.var + c * c) * cdf_m - mu_centered * mu_centered;
  if (out.var < 0.0) out.var = 0.0;

  // d mu / d(.) — the classic Clark results: Phi(alpha), Phi(-alpha),
  // phi(alpha)/(2 theta) for each variance.
  grad.dmu[0] = cdf_p;
  grad.dmu[1] = cdf_m;
  grad.dmu[2] = pdf / (2.0 * theta);
  grad.dmu[3] = grad.dmu[2];

  // d var / d(.), written with mean differences so no large-magnitude
  // cancellation occurs (see header).
  //   d var/d muA = 2 Phi(alpha)(muA - muC) + phi (theta + (varA - varB)/theta)
  //   d var/d varA = Phi(alpha)
  //                  + phi ((muA + muB - 2 muC)/(2 theta) - alpha (varA - varB)/(2 theta^2))
  //   d var/d varB is identical except Phi(-alpha) replaces Phi(alpha): alpha
  //   depends on the variances only through theta, which is symmetric in them.
  const double dvab = a.var - b.var;
  const double mu_a_minus = a.mu - out.mu;  // = c - mu_centered
  const double mu_b_minus = b.mu - out.mu;  // = -c - mu_centered
  grad.dvar[0] = 2.0 * cdf_p * mu_a_minus + pdf * (theta + dvab / theta);
  grad.dvar[1] = 2.0 * cdf_m * mu_b_minus + pdf * (theta - dvab / theta);
  const double common = -2.0 * mu_centered / (2.0 * theta);  // (muA+muB-2muC)/(2 theta)
  const double skew = alpha * dvab / (2.0 * theta2);
  grad.dvar[2] = cdf_p + pdf * (common - skew);
  grad.dvar[3] = cdf_m + pdf * (common - skew);
  return out;
}

NormalRV clark_max_full(const NormalRV& a, const NormalRV& b, ClarkGrad& grad, ClarkHess& hess) {
  if (a.var + b.var <= kThetaFloorSq) return degenerate_max(a, b, &grad, &hess);

  using D4 = autodiff::Dual2<4>;
  const D4 mu_a = D4::variable(a.mu, 0);
  const D4 mu_b = D4::variable(b.mu, 1);
  const D4 var_a = D4::variable(a.var, 2);
  const D4 var_b = D4::variable(b.var, 3);
  D4 mu_out;
  D4 var_out;
  clark_moments(mu_a, mu_b, var_a, var_b, mu_out, var_out);

  grad.dmu = mu_out.grad_array();
  grad.dvar = var_out.grad_array();
  hess.mu = mu_out.hess_array();
  hess.var = var_out.hess_array();
  NormalRV out{mu_out.value(), var_out.value()};
  if (out.var < 0.0) out.var = 0.0;
  return out;
}

NormalRV clark_max_correlated(const NormalRV& a, const NormalRV& b, double cov,
                              double* tightness) {
  const double theta2 = a.var + b.var - 2.0 * cov;
  if (theta2 <= kThetaFloorSq) {
    // (Nearly) perfectly correlated with equal variance: the larger mean wins
    // surely; at a tie the operands are the same random variable.
    if (tightness != nullptr) *tightness = a.mu > b.mu ? 1.0 : (b.mu > a.mu ? 0.0 : 0.5);
    if (a.mu >= b.mu) return a;
    return b;
  }
  const double theta = std::sqrt(theta2);
  const double gap = a.mu - b.mu;
  const double alpha = gap / theta;
  const double cdf_p = normal_cdf(alpha);
  const double cdf_m = normal_cdf(-alpha);
  const double pdf = normal_pdf(alpha);
  if (tightness != nullptr) *tightness = cdf_p;

  // Mean-centered evaluation as in clark_moments; the cross term of E[C^2]
  // picks up the covariance: E[C^2] = (varA + muA^2) Phi + (varB + muB^2)
  // Phi(-a) + (muA + muB) theta phi  holds verbatim with the correlated
  // theta; centering removes the large-mean cancellation.
  const double c = 0.5 * gap;
  const double mu_centered = c * (cdf_p - cdf_m) + theta * pdf;
  NormalRV out;
  out.mu = 0.5 * (a.mu + b.mu) + mu_centered;
  out.var = (a.var + c * c) * cdf_p + (b.var + c * c) * cdf_m - mu_centered * mu_centered;
  if (out.var < 0.0) out.var = 0.0;
  return out;
}

NormalRV clark_min(const NormalRV& a, const NormalRV& b) {
  const NormalRV neg = clark_max({-a.mu, a.var}, {-b.mu, b.var});
  return {-neg.mu, neg.var};
}

NormalRV clark_max_fold(const NormalRV* rvs, int count) {
  NormalRV acc = rvs[0];
  for (int i = 1; i < count; ++i) acc = clark_max(acc, rvs[i]);
  return acc;
}

}  // namespace statsize::stat
