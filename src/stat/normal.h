// Normal-distribution primitives used throughout the statistical delay model.
//
// The paper (sec. 3) models every schedule time T and gate delay t as a
// normally distributed random variable characterized by (mu, sigma). The NLP
// formulation carries *variances* (sigma^2) rather than standard deviations
// (sec. 4, "we also use only the squared version of standard deviations"),
// so NormalRV stores (mu, var).

#pragma once

#include <cmath>

namespace statsize::stat {

inline constexpr double kInvSqrt2Pi = 0.39894228040143267794;
inline constexpr double kInvSqrt2 = 0.70710678118654752440;
inline constexpr double kSqrt2Pi = 2.50662827463100050242;

/// Standard-normal probability density function (eq. 8 with mu=0, sigma=1).
inline double normal_pdf(double x) { return kInvSqrt2Pi * std::exp(-0.5 * x * x); }

/// Standard-normal cumulative distribution function. Computed via erfc for
/// full relative accuracy in both tails; this is the phi(x) of eq. 11
/// normalized by 1/sqrt(2 pi).
inline double normal_cdf(double x) { return 0.5 * std::erfc(-x * kInvSqrt2); }

/// Inverse standard-normal CDF (Acklam's rational approximation, refined by
/// one Halley step; |relative error| < 1e-13 over (0, 1)).
double normal_quantile(double p);

/// A normal random variable N(mu, var). `var` must be non-negative.
struct NormalRV {
  double mu = 0.0;
  double var = 0.0;

  double sigma() const { return std::sqrt(var); }

  static NormalRV from_sigma(double mu, double sigma) { return {mu, sigma * sigma}; }

  /// mu + k * sigma — the confidence-weighted delay the paper optimizes
  /// (k=0: 50% of circuits meet the bound; k=1: 84.1%; k=3: 99.8%).
  double quantile_offset(double k) const { return mu + k * sigma(); }

  /// P(X <= x).
  double cdf(double x) const {
    if (var <= 0.0) return x >= mu ? 1.0 : 0.0;
    return normal_cdf((x - mu) / sigma());
  }
};

/// Sum of two independent normals (eq. 4).
inline NormalRV add(const NormalRV& a, const NormalRV& b) {
  return {a.mu + b.mu, a.var + b.var};
}

inline NormalRV add(const NormalRV& a, double c) { return {a.mu + c, a.var}; }

}  // namespace statsize::stat
