#include "serve/scheduler.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "core/sizer.h"
#include "runtime/fault.h"
#include "runtime/runtime.h"
#include "ssta/delay_model.h"
#include "ssta/monte_carlo.h"
#include "ssta/ssta.h"
#include "util/json.h"

namespace statsize::serve {

const char* job_type_name(JobType type) {
  switch (type) {
    case JobType::kSsta: return "ssta";
    case JobType::kSta: return "sta";
    case JobType::kMonteCarlo: return "monte_carlo";
    case JobType::kSize: return "size";
  }
  return "?";
}

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kCancelled: return "cancelled";
    case JobState::kFailed: return "failed";
    case JobState::kInterrupted: return "interrupted";
  }
  return "?";
}

JobType job_type_from_name(const std::string& name) {
  for (JobType t : {JobType::kSsta, JobType::kSta, JobType::kMonteCarlo, JobType::kSize}) {
    if (name == job_type_name(t)) return t;
  }
  throw std::invalid_argument("unknown job type: " + name);
}

JobState job_state_from_name(const std::string& name) {
  for (JobState s : {JobState::kQueued, JobState::kRunning, JobState::kDone,
                     JobState::kCancelled, JobState::kFailed, JobState::kInterrupted}) {
    if (name == job_state_name(s)) return s;
  }
  throw std::invalid_argument("unknown job state: " + name);
}

void write_job_params(util::JsonWriter& w, const JobParams& p) {
  w.begin_object();
  w.key("deadline_ms").value(p.deadline_ms);
  w.key("jobs").value(p.jobs);
  w.key("sigma_kappa").value(p.sigma_kappa);
  w.key("sigma_offset").value(p.sigma_offset);
  w.key("speed").value(p.speed);
  w.key("corner").value(p.corner);
  w.key("mc_samples").value(p.mc_samples);
  w.key("mc_seed").value(static_cast<long>(p.mc_seed));
  w.key("objective").value(p.objective);
  w.key("sigma_weight").value(p.sigma_weight);
  w.key("max_delay").value(p.max_delay);
  w.key("constraint_sigma_weight").value(p.constraint_sigma_weight);
  w.key("method").value(p.method);
  w.key("max_speed").value(p.max_speed);
  w.key("max_retries").value(p.max_retries);
  w.end_object();
}

JobParams job_params_from_json(const util::JsonValue& doc) {
  JobParams p;
  p.deadline_ms = doc.number_or("deadline_ms", p.deadline_ms);
  p.jobs = static_cast<int>(doc.int_or("jobs", p.jobs));
  p.sigma_kappa = doc.number_or("sigma_kappa", p.sigma_kappa);
  p.sigma_offset = doc.number_or("sigma_offset", p.sigma_offset);
  p.speed = doc.number_or("speed", p.speed);
  p.corner = doc.string_or("corner", p.corner);
  p.mc_samples = static_cast<int>(doc.int_or("mc_samples", p.mc_samples));
  p.mc_seed = static_cast<std::uint64_t>(
      doc.int_or("mc_seed", static_cast<std::int64_t>(p.mc_seed)));
  p.objective = doc.string_or("objective", p.objective);
  p.sigma_weight = doc.number_or("sigma_weight", p.sigma_weight);
  p.max_delay = doc.number_or("max_delay", p.max_delay);
  p.constraint_sigma_weight =
      doc.number_or("constraint_sigma_weight", p.constraint_sigma_weight);
  p.method = doc.string_or("method", p.method);
  p.max_speed = doc.number_or("max_speed", p.max_speed);
  p.max_retries = static_cast<int>(doc.int_or("max_retries", p.max_retries));
  return p;
}

namespace {

std::string fmt_double(double d) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  return std::string(buf);
}

/// Re-indents a pretty-printed JSON blob by `pad` spaces (first line is
/// spliced after a key, so it keeps no pad).
std::string indent_blob(const std::string& blob, int pad) {
  std::string out;
  out.reserve(blob.size() + 64);
  const std::string padding(static_cast<std::size_t>(pad), ' ');
  bool at_line_start = false;
  for (char c : blob) {
    if (at_line_start) {
      out += padding;
      at_line_start = false;
    }
    out += c;
    if (c == '\n') at_line_start = true;
  }
  return out;
}

// -- Journal record payloads (DESIGN.md §13). Admit carries everything
// needed to re-create the job after a crash; start/end are transition
// markers keyed by id. Result/error travel as escaped string members so the
// record stays one flat object regardless of the result's own structure.

std::string admit_record(const Job& job) {
  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_object();
  w.key("kind").value("admit");
  w.key("id").value(job.id);
  w.key("type").value(job_type_name(job.type));
  w.key("circuit").value(job.circuit ? job.circuit->key : "");
  w.key("idempotency_key").value(job.idempotency_key);
  w.key("params");
  write_job_params(w, job.params);
  w.end_object();
  return os.str();
}

std::string start_record(const std::string& id) {
  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_object();
  w.key("kind").value("start");
  w.key("id").value(id);
  w.end_object();
  return os.str();
}

std::string end_record(const std::string& id, JobState state, const std::string& result,
                       const std::string& error) {
  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_object();
  w.key("kind").value("end");
  w.key("id").value(id);
  w.key("state").value(job_state_name(state));
  w.key("result").value(result);
  w.key("error").value(error);
  w.end_object();
  return os.str();
}

}  // namespace

std::string Job::describe() const {
  JobState st = state.load(std::memory_order_acquire);
  std::string result;
  std::string err;
  double sub_ms;
  double start_ms;
  double fin_ms;
  {
    std::lock_guard<std::mutex> lock(mu);
    result = result_json;
    err = error;
    sub_ms = submitted_ms;
    start_ms = started_ms;
    fin_ms = finished_ms;
  }

  std::string out = "{\n";
  out += "  \"id\": \"" + util::JsonWriter::escape(id) + "\",\n";
  out += "  \"type\": \"" + std::string(job_type_name(type)) + "\",\n";
  out += "  \"state\": \"" + std::string(job_state_name(st)) + "\",\n";
  out += "  \"circuit\": \"" + util::JsonWriter::escape(circuit ? circuit->key : "") + "\",\n";
  out += "  \"circuit_name\": \"" +
         util::JsonWriter::escape(circuit ? circuit->name : "") + "\",\n";
  if (!idempotency_key.empty()) {
    out += "  \"idempotency_key\": \"" + util::JsonWriter::escape(idempotency_key) + "\",\n";
  }
  if (st == JobState::kInterrupted) {
    // Interrupted is terminal but retryable: the same Idempotency-Key will
    // start a fresh attempt instead of deduplicating against this record.
    out += "  \"retryable\": true,\n";
  }
  out += "  \"deadline_ms\": " + fmt_double(params.deadline_ms) + ",\n";
  if (start_ms > 0.0) {
    out += "  \"queue_wait_ms\": " + fmt_double(start_ms - sub_ms) + ",\n";
  }
  if (fin_ms > 0.0) {
    out += "  \"run_ms\": " + fmt_double(fin_ms - start_ms) + ",\n";
  }
  if (st == JobState::kDone && !result.empty()) {
    out += "  \"result\": " + indent_blob(result, 2) + "\n";
  } else if (!err.empty()) {
    out += "  \"error\": \"" + util::JsonWriter::escape(err) + "\"\n";
  } else {
    out += "  \"error\": null\n";
  }
  out += "}";
  return out;
}

JobScheduler::JobScheduler(SchedulerOptions options, Metrics* metrics)
    : options_(options), metrics_(metrics) {}

JobScheduler::~JobScheduler() { stop(); }

void JobScheduler::start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  started_ = true;
  stopping_ = false;
  executor_ = std::thread([this] { executor_loop(); });
}

void JobScheduler::stop() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    started_ = false;
    stopping_ = true;
    // Flip every still-queued job to cancelled and trip the running one; the
    // executor drains cooperatively.
    for (auto& job : queue_) {
      JobState expected = JobState::kQueued;
      if (job->state.compare_exchange_strong(expected, JobState::kCancelled,
                                             std::memory_order_acq_rel)) {
        {
          std::lock_guard<std::mutex> jlock(job->mu);
          job->error = "server shutting down";
        }
        // Journal the shutdown cancellation so a restart on the same journal
        // reports these jobs cancelled instead of re-admitting them — a
        // graceful stop is an observed outcome, not a crash.
        journal_append_soft(end_record(job->id, JobState::kCancelled, "",
                                       "server shutting down"));
        if (metrics_) metrics_->jobs_cancelled.inc();
      }
    }
    queue_.clear();
    if (metrics_) metrics_->queue_depth.set(0);
    for (auto& [id, job] : jobs_) {
      if (job->state.load(std::memory_order_acquire) == JobState::kRunning) {
        job->cancel.request_cancel();
      }
    }
    to_join = std::move(executor_);
  }
  cv_.notify_all();
  if (to_join.joinable()) to_join.join();
}

JobScheduler::SubmitOutcome JobScheduler::submit(JobType type,
                                                 std::shared_ptr<const CachedCircuit> circuit,
                                                 JobParams params,
                                                 std::string idempotency_key) {
  SubmitOutcome outcome;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ || !started_) {
      outcome.overflow = true;
      return outcome;
    }
    // Idempotency first: a dedup hit must answer even when the queue is full
    // (that is the whole point of retrying with the same key after a 429).
    if (!idempotency_key.empty()) {
      auto it = idem_.find(idempotency_key);
      if (it != idem_.end()) {
        auto jit = jobs_.find(it->second);
        if (jit != jobs_.end() &&
            jit->second->state.load(std::memory_order_acquire) != JobState::kInterrupted) {
          if (metrics_) metrics_->idempotent_dedup_hits.inc();
          outcome.job = jit->second;
          outcome.deduplicated = true;
          return outcome;
        }
        // Interrupted (or vanished) match: fall through — the fresh
        // admission below replaces the mapping, giving retry semantics.
      }
    }
    if (queue_.size() >= options_.queue_depth) {
      if (metrics_) metrics_->jobs_rejected.inc();
      outcome.overflow = true;
      return outcome;
    }
    auto job = std::make_shared<Job>();
    char idbuf[16];
    std::snprintf(idbuf, sizeof(idbuf), "job-%06d", next_id_++);
    job->id = idbuf;
    job->type = type;
    job->params = std::move(params);
    job->circuit = std::move(circuit);
    job->idempotency_key = idempotency_key;
    job->submitted_ms = now_ms();
    // Durable admission: the admit record must hit the journal before the
    // job becomes visible or acked. Appending under mu_ keeps journal order
    // identical to admission order, which recovery relies on.
    if (journal_ != nullptr) {
      try {
        journal_->append(admit_record(*job));
        if (metrics_) metrics_->journal_records_written.inc();
      } catch (const JournalWriteError& e) {
        if (metrics_) metrics_->journal_write_errors.inc();
        outcome.journal_error = e.what();
        return outcome;
      }
    }
    jobs_.emplace(job->id, job);
    queue_.push_back(job);
    if (!idempotency_key.empty()) idem_[idempotency_key] = job->id;
    if (metrics_) {
      metrics_->jobs_submitted.inc();
      metrics_->queue_depth.set(static_cast<std::int64_t>(queue_.size()));
    }
    outcome.job = std::move(job);
  }
  cv_.notify_one();
  return outcome;
}

JobScheduler::BatchOutcome JobScheduler::submit_batch(std::vector<JobRequest> requests) {
  BatchOutcome outcome;
  if (requests.empty()) return outcome;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ || !started_ || queue_.size() + requests.size() > options_.queue_depth) {
      if (metrics_) metrics_->jobs_rejected.inc(static_cast<std::int64_t>(requests.size()));
      outcome.overflow = true;
      return outcome;
    }
    std::vector<std::shared_ptr<Job>> jobs;
    jobs.reserve(requests.size());
    const double submitted = now_ms();
    for (JobRequest& req : requests) {
      auto job = std::make_shared<Job>();
      char idbuf[16];
      std::snprintf(idbuf, sizeof(idbuf), "job-%06d", next_id_++);
      job->id = idbuf;
      job->type = req.type;
      job->params = std::move(req.params);
      job->circuit = std::move(req.circuit);
      job->submitted_ms = submitted;
      if (journal_ != nullptr) {
        try {
          journal_->append(admit_record(*job));
          if (metrics_) metrics_->journal_records_written.inc();
        } catch (const JournalWriteError& e) {
          // All-or-nothing in THIS process: nothing of the batch was made
          // visible, so the client's 503 is honest. Records already written
          // for earlier batch members stay in the journal; a crash-recovery
          // would re-admit those as queued jobs (at-least-once).
          if (metrics_) metrics_->journal_write_errors.inc();
          outcome.journal_error = e.what();
          return outcome;
        }
      }
      jobs_.emplace(job->id, job);
      jobs.push_back(std::move(job));
    }
    for (const auto& job : jobs) queue_.push_back(job);
    if (metrics_) {
      metrics_->jobs_submitted.inc(static_cast<std::int64_t>(jobs.size()));
      metrics_->queue_depth.set(static_cast<std::int64_t>(queue_.size()));
    }
    outcome.jobs = std::move(jobs);
  }
  cv_.notify_one();
  return outcome;
}

void JobScheduler::restore(std::vector<RestoredJob> recovered) {
  std::lock_guard<std::mutex> lock(mu_);
  for (RestoredJob& r : recovered) {
    auto job = std::make_shared<Job>();
    job->id = r.id;
    job->type = r.type;
    job->params = std::move(r.params);
    job->circuit = std::move(r.circuit);
    job->idempotency_key = r.idempotency_key;
    job->state.store(r.state, std::memory_order_release);
    {
      std::lock_guard<std::mutex> jlock(job->mu);
      job->result_json = std::move(r.result_json);
      job->error = std::move(r.error);
    }
    // Resume id allocation past every recovered id so new admissions never
    // collide with journaled ones.
    if (job->id.size() > 4 && job->id.compare(0, 4, "job-") == 0) {
      const int n = std::atoi(job->id.c_str() + 4);
      if (n >= next_id_) next_id_ = n + 1;
    }
    if (!job->idempotency_key.empty()) idem_[job->idempotency_key] = job->id;
    if (r.state == JobState::kQueued) {
      job->submitted_ms = now_ms();  // queue-wait clock restarts at recovery
      queue_.push_back(job);
    }
    jobs_[job->id] = job;
  }
  if (metrics_) metrics_->queue_depth.set(static_cast<std::int64_t>(queue_.size()));
}

void JobScheduler::journal_append_soft(const std::string& payload) {
  if (journal_ == nullptr) return;
  try {
    journal_->append(payload);
    if (metrics_) metrics_->journal_records_written.inc();
  } catch (const JournalWriteError&) {
    if (metrics_) metrics_->journal_write_errors.inc();
  }
}

std::shared_ptr<Job> JobScheduler::get(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second;
}

bool JobScheduler::cancel(const std::string& id) {
  std::shared_ptr<Job> job = get(id);
  if (!job) return false;
  JobState expected = JobState::kQueued;
  if (job->state.compare_exchange_strong(expected, JobState::kCancelled,
                                         std::memory_order_acq_rel)) {
    {
      std::lock_guard<std::mutex> lock(job->mu);
      job->error = "cancelled before start";
      job->finished_ms = now_ms();
    }
    journal_append_soft(end_record(job->id, JobState::kCancelled, "", "cancelled before start"));
    if (metrics_) metrics_->jobs_cancelled.inc();
    return true;
  }
  if (expected == JobState::kRunning) {
    job->cancel.request_cancel();
    return true;
  }
  return false;  // already finished
}

std::size_t JobScheduler::queue_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void JobScheduler::executor_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      job = queue_.front();
      queue_.pop_front();
      if (metrics_) metrics_->queue_depth.set(static_cast<std::int64_t>(queue_.size()));
    }
    // Claim: a DELETE may have flipped it to cancelled while queued.
    JobState expected = JobState::kQueued;
    if (!job->state.compare_exchange_strong(expected, JobState::kRunning,
                                            std::memory_order_acq_rel)) {
      continue;
    }
    run_job(*job);
  }
}

void JobScheduler::run_job(Job& job) {
  const double t_start = now_ms();
  {
    std::lock_guard<std::mutex> lock(job.mu);
    job.started_ms = t_start;
  }
  if (metrics_) {
    metrics_->jobs_running.inc();
    metrics_->queue_wait_ms.record(t_start - job.submitted_ms);
  }
  journal_append_soft(start_record(job.id));

  if (runtime::fault::hit(runtime::fault::kServeExecutorCrash)) {
    // Simulated executor crash: the job dies mid-flight with NO terminal
    // journal record — exactly what a restart after SIGKILL would find. The
    // in-process outcome mirrors what recovery replay would surface.
    {
      std::lock_guard<std::mutex> lock(job.mu);
      job.error = "interrupted: executor crashed (injected serve.executor.crash)";
      job.finished_ms = now_ms();
    }
    job.state.store(JobState::kInterrupted, std::memory_order_release);
    if (metrics_) {
      metrics_->jobs_running.dec();
      metrics_->jobs_interrupted.inc();
    }
    return;
  }

  if (job.params.jobs > 0) runtime::set_threads(job.params.jobs);
  if (options_.apply_serial_cutoff) {
    runtime::set_level_serial_cutoff(job.circuit->serial_cutoff);
  }

  // Derived (PATCH-created) entries carry an edited TimingView; jobs compute
  // against it through the same view-overload engines the CLI path compiles,
  // so a patched result is bit-identical to re-uploading the edited netlist.
  const netlist::TimingView& view = job.circuit->timing_view();
  const ssta::SigmaModel sigma_model{job.params.sigma_kappa, job.params.sigma_offset};
  const double deadline_seconds = job.params.deadline_ms / 1000.0;

  // Uniform analysis speed fill, then the entry's per-gate overrides.
  auto analysis_speed = [&] {
    std::vector<double> speed(static_cast<std::size_t>(view.num_nodes()), job.params.speed);
    for (const auto& [node, s] : job.circuit->speed_edits) {
      speed[static_cast<std::size_t>(node)] = s;
    }
    return speed;
  };

  JobState final_state = JobState::kDone;
  std::string result;
  std::string error;
  try {
    std::ostringstream os;
    util::JsonWriter w(os);
    switch (job.type) {
      case JobType::kSsta: {
        // Analysis jobs run under an outer CancelScope: a tripped token or
        // expired deadline unwinds the sweep (no partial results).
        runtime::CancelScope scope(&job.cancel,
                                   deadline_seconds > 0.0
                                       ? runtime::Deadline::after_seconds(deadline_seconds)
                                       : runtime::Deadline::never());
        ssta::DelayCalculator calc(view, sigma_model);
        ssta::TimingReport report = ssta::run_ssta(calc, analysis_speed());
        w.begin_object();
        w.key("mu").value(report.circuit_delay.mu);
        w.key("sigma").value(report.circuit_delay.sigma());
        w.key("var").value(report.circuit_delay.var);
        w.key("mu_plus_3sigma").value(report.circuit_delay.quantile_offset(3.0));
        w.end_object();
        break;
      }
      case JobType::kSta: {
        runtime::CancelScope scope(&job.cancel,
                                   deadline_seconds > 0.0
                                       ? runtime::Deadline::after_seconds(deadline_seconds)
                                       : runtime::Deadline::never());
        ssta::Corner corner = ssta::Corner::kWorst;
        if (job.params.corner == "best") corner = ssta::Corner::kBest;
        else if (job.params.corner == "typical") corner = ssta::Corner::kTypical;
        else if (job.params.corner != "worst") {
          throw std::runtime_error("unknown corner: " + job.params.corner);
        }
        ssta::DelayCalculator calc(view, sigma_model);
        ssta::StaReport report = ssta::run_sta(view, calc.all_delays(analysis_speed()), corner);
        w.begin_object();
        w.key("corner").value(job.params.corner);
        w.key("circuit_delay").value(report.circuit_delay);
        w.end_object();
        break;
      }
      case JobType::kMonteCarlo: {
        runtime::CancelScope scope(&job.cancel,
                                   deadline_seconds > 0.0
                                       ? runtime::Deadline::after_seconds(deadline_seconds)
                                       : runtime::Deadline::never());
        ssta::DelayCalculator calc(view, sigma_model);
        ssta::MonteCarloOptions mc;
        mc.num_samples = job.params.mc_samples;
        mc.seed = job.params.mc_seed;
        ssta::MonteCarloResult mc_result =
            ssta::run_monte_carlo(view, calc.all_delays(analysis_speed()), mc);
        w.begin_object();
        w.key("samples").value(job.params.mc_samples);
        w.key("seed").value(static_cast<long>(job.params.mc_seed));
        w.key("mean").value(mc_result.mean);
        w.key("stddev").value(mc_result.stddev);
        w.key("min").value(mc_result.min);
        w.key("max").value(mc_result.max);
        w.key("q50").value(mc_result.quantile(0.50));
        w.key("q95").value(mc_result.quantile(0.95));
        w.key("q99").value(mc_result.quantile(0.99));
        w.end_object();
        break;
      }
      case JobType::kSize: {
        // Sizing routes the deadline through SizerOptions instead of an
        // outer scope: the sizer owns its CancelScope and degrades to an
        // honest best-iterate checkpoint (status ".../time-limit") rather
        // than aborting — a deadline'd size job is kDone, not kCancelled.
        core::SizingSpec spec;
        if (job.params.objective == "delay") {
          spec.objective = core::Objective::min_delay(job.params.sigma_weight);
        } else if (job.params.objective == "area") {
          spec.objective = core::Objective::min_area();
        } else {
          throw std::runtime_error("unknown objective: " + job.params.objective);
        }
        if (job.params.max_delay > 0.0) {
          spec.delay_constraint = core::DelayConstraint::at_most(
              job.params.max_delay, job.params.constraint_sigma_weight);
        }
        spec.max_speed = job.params.max_speed;
        spec.sigma_model = sigma_model;

        core::SizerOptions opt;
        if (job.params.method == "full") opt.method = core::Method::kFullSpace;
        else if (job.params.method == "reduced") opt.method = core::Method::kReducedSpace;
        else throw std::runtime_error("unknown method: " + job.params.method);
        opt.time_limit_seconds = deadline_seconds;
        opt.cancel = &job.cancel;
        opt.max_retries = job.params.max_retries;

        const bool derived = job.circuit->patched_view != nullptr;
        if (derived && opt.method == core::Method::kFullSpace) {
          throw std::runtime_error(
              "full-space sizing needs the original upload (the NLP is built from "
              "the Circuit); use method=reduced on patched circuits");
        }
        core::SizingResult r;
        bool warm_started = false;
        if (derived) {
          // ECO resize (DESIGN.md §12): size against the edited view,
          // warm-starting from the nearest solved ancestor's sizes and
          // multiplier/penalty state when one exists.
          core::Sizer sizer(view, spec);
          const std::shared_ptr<const core::SizingWarmStart> warm =
              job.circuit->resolve_warm();
          warm_started = warm != nullptr;
          r = warm_started ? sizer.resize(opt, *warm) : sizer.run(opt);
        } else {
          core::Sizer sizer(*job.circuit->circuit, spec);
          r = sizer.run(opt);
        }
        if (opt.method == core::Method::kReducedSpace) {
          job.circuit->store_warm(
              std::make_shared<core::SizingWarmStart>(std::move(r.warm)));
        }
        if (metrics_ && r.from_checkpoint) metrics_->jobs_deadline_checkpoints.inc();
        w.begin_object();
        w.key("converged").value(r.converged);
        w.key("status").value(r.status);
        w.key("method").value(job.params.method);
        w.key("warm_started").value(warm_started);
        w.key("mu").value(r.circuit_delay.mu);
        w.key("sigma").value(r.circuit_delay.sigma());
        w.key("mu_plus_3sigma").value(r.circuit_delay.quantile_offset(3.0));
        w.key("sum_speed").value(r.sum_speed);
        w.key("area").value(r.area);
        w.key("objective_value").value(r.objective_value);
        w.key("constraint_violation").value(r.constraint_violation);
        w.key("iterations").value(r.iterations);
        w.key("outer_iterations").value(r.outer_iterations);
        w.key("retries_used").value(r.retries_used);
        w.key("from_checkpoint").value(r.from_checkpoint);
        w.key("checkpoint_outer").value(r.checkpoint_outer);
        w.key("speed").begin_array();
        for (double s : r.speed) w.value(s);
        w.end_array();
        w.end_object();
        break;
      }
    }
    result = os.str();
  } catch (const runtime::OperationCancelled& e) {
    final_state = JobState::kCancelled;
    error = e.reason() == runtime::CancelReason::kDeadline
                ? std::string("deadline exceeded: ") + e.what()
                : std::string("cancelled: ") + e.what();
  } catch (const std::exception& e) {
    final_state = JobState::kFailed;
    error = e.what();
  }

  const double t_end = now_ms();
  // Terminal record BEFORE the state flip: once a poller can observe "done",
  // the journal must already know — a crash between flip and append would
  // otherwise resurrect a completed job as interrupted after the client saw
  // its result.
  journal_append_soft(end_record(job.id, final_state, result, error));
  {
    std::lock_guard<std::mutex> lock(job.mu);
    job.result_json = std::move(result);
    job.error = std::move(error);
    job.finished_ms = t_end;
  }
  job.state.store(final_state, std::memory_order_release);
  if (metrics_) {
    metrics_->jobs_running.dec();
    metrics_->service_ms.record(t_end - t_start);
    if (job.type == JobType::kSize) {
      metrics_->service_sizing_ms.record(t_end - t_start);
    } else {
      metrics_->service_analysis_ms.record(t_end - t_start);
    }
    switch (final_state) {
      case JobState::kDone: metrics_->jobs_completed.inc(); break;
      case JobState::kCancelled: metrics_->jobs_cancelled.inc(); break;
      case JobState::kFailed: metrics_->jobs_failed.inc(); break;
      default: break;
    }
  }
}

}  // namespace statsize::serve
