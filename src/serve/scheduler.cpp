#include "serve/scheduler.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "core/sizer.h"
#include "runtime/runtime.h"
#include "ssta/delay_model.h"
#include "ssta/monte_carlo.h"
#include "ssta/ssta.h"
#include "util/json.h"

namespace statsize::serve {

const char* job_type_name(JobType type) {
  switch (type) {
    case JobType::kSsta: return "ssta";
    case JobType::kSta: return "sta";
    case JobType::kMonteCarlo: return "monte_carlo";
    case JobType::kSize: return "size";
  }
  return "?";
}

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kCancelled: return "cancelled";
    case JobState::kFailed: return "failed";
  }
  return "?";
}

namespace {

std::string fmt_double(double d) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  return std::string(buf);
}

/// Re-indents a pretty-printed JSON blob by `pad` spaces (first line is
/// spliced after a key, so it keeps no pad).
std::string indent_blob(const std::string& blob, int pad) {
  std::string out;
  out.reserve(blob.size() + 64);
  const std::string padding(static_cast<std::size_t>(pad), ' ');
  bool at_line_start = false;
  for (char c : blob) {
    if (at_line_start) {
      out += padding;
      at_line_start = false;
    }
    out += c;
    if (c == '\n') at_line_start = true;
  }
  return out;
}

}  // namespace

std::string Job::describe() const {
  JobState st = state.load(std::memory_order_acquire);
  std::string result;
  std::string err;
  double sub_ms;
  double start_ms;
  double fin_ms;
  {
    std::lock_guard<std::mutex> lock(mu);
    result = result_json;
    err = error;
    sub_ms = submitted_ms;
    start_ms = started_ms;
    fin_ms = finished_ms;
  }

  std::string out = "{\n";
  out += "  \"id\": \"" + util::JsonWriter::escape(id) + "\",\n";
  out += "  \"type\": \"" + std::string(job_type_name(type)) + "\",\n";
  out += "  \"state\": \"" + std::string(job_state_name(st)) + "\",\n";
  out += "  \"circuit\": \"" + util::JsonWriter::escape(circuit ? circuit->key : "") + "\",\n";
  out += "  \"circuit_name\": \"" +
         util::JsonWriter::escape(circuit ? circuit->name : "") + "\",\n";
  out += "  \"deadline_ms\": " + fmt_double(params.deadline_ms) + ",\n";
  if (start_ms > 0.0) {
    out += "  \"queue_wait_ms\": " + fmt_double(start_ms - sub_ms) + ",\n";
  }
  if (fin_ms > 0.0) {
    out += "  \"run_ms\": " + fmt_double(fin_ms - start_ms) + ",\n";
  }
  if (st == JobState::kDone && !result.empty()) {
    out += "  \"result\": " + indent_blob(result, 2) + "\n";
  } else if (!err.empty()) {
    out += "  \"error\": \"" + util::JsonWriter::escape(err) + "\"\n";
  } else {
    out += "  \"error\": null\n";
  }
  out += "}";
  return out;
}

JobScheduler::JobScheduler(SchedulerOptions options, Metrics* metrics)
    : options_(options), metrics_(metrics) {}

JobScheduler::~JobScheduler() { stop(); }

void JobScheduler::start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  started_ = true;
  stopping_ = false;
  executor_ = std::thread([this] { executor_loop(); });
}

void JobScheduler::stop() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    started_ = false;
    stopping_ = true;
    // Flip every still-queued job to cancelled and trip the running one; the
    // executor drains cooperatively.
    for (auto& job : queue_) {
      JobState expected = JobState::kQueued;
      if (job->state.compare_exchange_strong(expected, JobState::kCancelled,
                                             std::memory_order_acq_rel)) {
        std::lock_guard<std::mutex> jlock(job->mu);
        job->error = "server shutting down";
        if (metrics_) metrics_->jobs_cancelled.inc();
      }
    }
    queue_.clear();
    if (metrics_) metrics_->queue_depth.set(0);
    for (auto& [id, job] : jobs_) {
      if (job->state.load(std::memory_order_acquire) == JobState::kRunning) {
        job->cancel.request_cancel();
      }
    }
    to_join = std::move(executor_);
  }
  cv_.notify_all();
  if (to_join.joinable()) to_join.join();
}

std::shared_ptr<Job> JobScheduler::submit(JobType type,
                                          std::shared_ptr<const CachedCircuit> circuit,
                                          JobParams params) {
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ || !started_) return nullptr;
    if (queue_.size() >= options_.queue_depth) {
      if (metrics_) metrics_->jobs_rejected.inc();
      return nullptr;
    }
    job = std::make_shared<Job>();
    char idbuf[16];
    std::snprintf(idbuf, sizeof(idbuf), "job-%06d", next_id_++);
    job->id = idbuf;
    job->type = type;
    job->params = std::move(params);
    job->circuit = std::move(circuit);
    job->submitted_ms = now_ms();
    jobs_.emplace(job->id, job);
    queue_.push_back(job);
    if (metrics_) {
      metrics_->jobs_submitted.inc();
      metrics_->queue_depth.set(static_cast<std::int64_t>(queue_.size()));
    }
  }
  cv_.notify_one();
  return job;
}

std::vector<std::shared_ptr<Job>> JobScheduler::submit_batch(std::vector<JobRequest> requests) {
  std::vector<std::shared_ptr<Job>> jobs;
  if (requests.empty()) return jobs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ || !started_ || queue_.size() + requests.size() > options_.queue_depth) {
      if (metrics_) metrics_->jobs_rejected.inc(static_cast<std::int64_t>(requests.size()));
      return jobs;
    }
    jobs.reserve(requests.size());
    const double submitted = now_ms();
    for (JobRequest& req : requests) {
      auto job = std::make_shared<Job>();
      char idbuf[16];
      std::snprintf(idbuf, sizeof(idbuf), "job-%06d", next_id_++);
      job->id = idbuf;
      job->type = req.type;
      job->params = std::move(req.params);
      job->circuit = std::move(req.circuit);
      job->submitted_ms = submitted;
      jobs_.emplace(job->id, job);
      queue_.push_back(job);
      jobs.push_back(std::move(job));
    }
    if (metrics_) {
      metrics_->jobs_submitted.inc(static_cast<std::int64_t>(jobs.size()));
      metrics_->queue_depth.set(static_cast<std::int64_t>(queue_.size()));
    }
  }
  cv_.notify_one();
  return jobs;
}

std::shared_ptr<Job> JobScheduler::get(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second;
}

bool JobScheduler::cancel(const std::string& id) {
  std::shared_ptr<Job> job = get(id);
  if (!job) return false;
  JobState expected = JobState::kQueued;
  if (job->state.compare_exchange_strong(expected, JobState::kCancelled,
                                         std::memory_order_acq_rel)) {
    {
      std::lock_guard<std::mutex> lock(job->mu);
      job->error = "cancelled before start";
      job->finished_ms = now_ms();
    }
    if (metrics_) metrics_->jobs_cancelled.inc();
    return true;
  }
  if (expected == JobState::kRunning) {
    job->cancel.request_cancel();
    return true;
  }
  return false;  // already finished
}

std::size_t JobScheduler::queue_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void JobScheduler::executor_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      job = queue_.front();
      queue_.pop_front();
      if (metrics_) metrics_->queue_depth.set(static_cast<std::int64_t>(queue_.size()));
    }
    // Claim: a DELETE may have flipped it to cancelled while queued.
    JobState expected = JobState::kQueued;
    if (!job->state.compare_exchange_strong(expected, JobState::kRunning,
                                            std::memory_order_acq_rel)) {
      continue;
    }
    run_job(*job);
  }
}

void JobScheduler::run_job(Job& job) {
  const double t_start = now_ms();
  {
    std::lock_guard<std::mutex> lock(job.mu);
    job.started_ms = t_start;
  }
  if (metrics_) {
    metrics_->jobs_running.inc();
    metrics_->queue_wait_ms.record(t_start - job.submitted_ms);
  }

  if (job.params.jobs > 0) runtime::set_threads(job.params.jobs);
  if (options_.apply_serial_cutoff) {
    runtime::set_level_serial_cutoff(job.circuit->serial_cutoff);
  }

  // Derived (PATCH-created) entries carry an edited TimingView; jobs compute
  // against it through the same view-overload engines the CLI path compiles,
  // so a patched result is bit-identical to re-uploading the edited netlist.
  const netlist::TimingView& view = job.circuit->timing_view();
  const ssta::SigmaModel sigma_model{job.params.sigma_kappa, job.params.sigma_offset};
  const double deadline_seconds = job.params.deadline_ms / 1000.0;

  // Uniform analysis speed fill, then the entry's per-gate overrides.
  auto analysis_speed = [&] {
    std::vector<double> speed(static_cast<std::size_t>(view.num_nodes()), job.params.speed);
    for (const auto& [node, s] : job.circuit->speed_edits) {
      speed[static_cast<std::size_t>(node)] = s;
    }
    return speed;
  };

  JobState final_state = JobState::kDone;
  std::string result;
  std::string error;
  try {
    std::ostringstream os;
    util::JsonWriter w(os);
    switch (job.type) {
      case JobType::kSsta: {
        // Analysis jobs run under an outer CancelScope: a tripped token or
        // expired deadline unwinds the sweep (no partial results).
        runtime::CancelScope scope(&job.cancel,
                                   deadline_seconds > 0.0
                                       ? runtime::Deadline::after_seconds(deadline_seconds)
                                       : runtime::Deadline::never());
        ssta::DelayCalculator calc(view, sigma_model);
        ssta::TimingReport report = ssta::run_ssta(calc, analysis_speed());
        w.begin_object();
        w.key("mu").value(report.circuit_delay.mu);
        w.key("sigma").value(report.circuit_delay.sigma());
        w.key("var").value(report.circuit_delay.var);
        w.key("mu_plus_3sigma").value(report.circuit_delay.quantile_offset(3.0));
        w.end_object();
        break;
      }
      case JobType::kSta: {
        runtime::CancelScope scope(&job.cancel,
                                   deadline_seconds > 0.0
                                       ? runtime::Deadline::after_seconds(deadline_seconds)
                                       : runtime::Deadline::never());
        ssta::Corner corner = ssta::Corner::kWorst;
        if (job.params.corner == "best") corner = ssta::Corner::kBest;
        else if (job.params.corner == "typical") corner = ssta::Corner::kTypical;
        else if (job.params.corner != "worst") {
          throw std::runtime_error("unknown corner: " + job.params.corner);
        }
        ssta::DelayCalculator calc(view, sigma_model);
        ssta::StaReport report = ssta::run_sta(view, calc.all_delays(analysis_speed()), corner);
        w.begin_object();
        w.key("corner").value(job.params.corner);
        w.key("circuit_delay").value(report.circuit_delay);
        w.end_object();
        break;
      }
      case JobType::kMonteCarlo: {
        runtime::CancelScope scope(&job.cancel,
                                   deadline_seconds > 0.0
                                       ? runtime::Deadline::after_seconds(deadline_seconds)
                                       : runtime::Deadline::never());
        ssta::DelayCalculator calc(view, sigma_model);
        ssta::MonteCarloOptions mc;
        mc.num_samples = job.params.mc_samples;
        mc.seed = job.params.mc_seed;
        ssta::MonteCarloResult mc_result =
            ssta::run_monte_carlo(view, calc.all_delays(analysis_speed()), mc);
        w.begin_object();
        w.key("samples").value(job.params.mc_samples);
        w.key("seed").value(static_cast<long>(job.params.mc_seed));
        w.key("mean").value(mc_result.mean);
        w.key("stddev").value(mc_result.stddev);
        w.key("min").value(mc_result.min);
        w.key("max").value(mc_result.max);
        w.key("q50").value(mc_result.quantile(0.50));
        w.key("q95").value(mc_result.quantile(0.95));
        w.key("q99").value(mc_result.quantile(0.99));
        w.end_object();
        break;
      }
      case JobType::kSize: {
        // Sizing routes the deadline through SizerOptions instead of an
        // outer scope: the sizer owns its CancelScope and degrades to an
        // honest best-iterate checkpoint (status ".../time-limit") rather
        // than aborting — a deadline'd size job is kDone, not kCancelled.
        core::SizingSpec spec;
        if (job.params.objective == "delay") {
          spec.objective = core::Objective::min_delay(job.params.sigma_weight);
        } else if (job.params.objective == "area") {
          spec.objective = core::Objective::min_area();
        } else {
          throw std::runtime_error("unknown objective: " + job.params.objective);
        }
        if (job.params.max_delay > 0.0) {
          spec.delay_constraint = core::DelayConstraint::at_most(
              job.params.max_delay, job.params.constraint_sigma_weight);
        }
        spec.max_speed = job.params.max_speed;
        spec.sigma_model = sigma_model;

        core::SizerOptions opt;
        if (job.params.method == "full") opt.method = core::Method::kFullSpace;
        else if (job.params.method == "reduced") opt.method = core::Method::kReducedSpace;
        else throw std::runtime_error("unknown method: " + job.params.method);
        opt.time_limit_seconds = deadline_seconds;
        opt.cancel = &job.cancel;
        opt.max_retries = job.params.max_retries;

        const bool derived = job.circuit->patched_view != nullptr;
        if (derived && opt.method == core::Method::kFullSpace) {
          throw std::runtime_error(
              "full-space sizing needs the original upload (the NLP is built from "
              "the Circuit); use method=reduced on patched circuits");
        }
        core::SizingResult r;
        bool warm_started = false;
        if (derived) {
          // ECO resize (DESIGN.md §12): size against the edited view,
          // warm-starting from the nearest solved ancestor's sizes and
          // multiplier/penalty state when one exists.
          core::Sizer sizer(view, spec);
          const std::shared_ptr<const core::SizingWarmStart> warm =
              job.circuit->resolve_warm();
          warm_started = warm != nullptr;
          r = warm_started ? sizer.resize(opt, *warm) : sizer.run(opt);
        } else {
          core::Sizer sizer(*job.circuit->circuit, spec);
          r = sizer.run(opt);
        }
        if (opt.method == core::Method::kReducedSpace) {
          job.circuit->store_warm(
              std::make_shared<core::SizingWarmStart>(std::move(r.warm)));
        }
        if (metrics_ && r.from_checkpoint) metrics_->jobs_deadline_checkpoints.inc();
        w.begin_object();
        w.key("converged").value(r.converged);
        w.key("status").value(r.status);
        w.key("method").value(job.params.method);
        w.key("warm_started").value(warm_started);
        w.key("mu").value(r.circuit_delay.mu);
        w.key("sigma").value(r.circuit_delay.sigma());
        w.key("mu_plus_3sigma").value(r.circuit_delay.quantile_offset(3.0));
        w.key("sum_speed").value(r.sum_speed);
        w.key("area").value(r.area);
        w.key("objective_value").value(r.objective_value);
        w.key("constraint_violation").value(r.constraint_violation);
        w.key("iterations").value(r.iterations);
        w.key("outer_iterations").value(r.outer_iterations);
        w.key("retries_used").value(r.retries_used);
        w.key("from_checkpoint").value(r.from_checkpoint);
        w.key("checkpoint_outer").value(r.checkpoint_outer);
        w.key("speed").begin_array();
        for (double s : r.speed) w.value(s);
        w.end_array();
        w.end_object();
        break;
      }
    }
    result = os.str();
  } catch (const runtime::OperationCancelled& e) {
    final_state = JobState::kCancelled;
    error = e.reason() == runtime::CancelReason::kDeadline
                ? std::string("deadline exceeded: ") + e.what()
                : std::string("cancelled: ") + e.what();
  } catch (const std::exception& e) {
    final_state = JobState::kFailed;
    error = e.what();
  }

  const double t_end = now_ms();
  {
    std::lock_guard<std::mutex> lock(job.mu);
    job.result_json = std::move(result);
    job.error = std::move(error);
    job.finished_ms = t_end;
  }
  job.state.store(final_state, std::memory_order_release);
  if (metrics_) {
    metrics_->jobs_running.dec();
    metrics_->service_ms.record(t_end - t_start);
    if (job.type == JobType::kSize) {
      metrics_->service_sizing_ms.record(t_end - t_start);
    } else {
      metrics_->service_analysis_ms.record(t_end - t_start);
    }
    switch (final_state) {
      case JobState::kDone: metrics_->jobs_completed.inc(); break;
      case JobState::kCancelled: metrics_->jobs_cancelled.inc(); break;
      case JobState::kFailed: metrics_->jobs_failed.inc(); break;
      default: break;
    }
  }
}

}  // namespace statsize::serve
