// JobScheduler — bounded admission queue + the single job executor behind
// `statsize serve`.
//
// Why ONE executor thread: runtime::CancelScope is a process-global chain
// (install/uninstall must happen with no unrelated parallel work in flight),
// and the compute engines already parallelize *inside* a job through the
// global runtime::ThreadPool. Running jobs one at a time keeps the per-job
// CancelScope/SizerOptions deadline sound, keeps results bit-identical to
// the CLI (same pool, same determinism contract), and still loads every
// core — the concurrency the daemon offers is at admission/IO level, not
// compute level. DESIGN.md §11 expands on this trade.
//
// Lifecycle: submit() either enqueues (bounded; nullptr on overflow → the
// server answers 429) or rejects; the executor pops in FIFO order, installs
// the circuit's advised serial cutoff, runs the job under its cancel
// token/deadline, and publishes a result JSON blob. cancel() flips a queued
// job straight to kCancelled or trips a running job's CancellationToken so
// the cooperative polls unwind it.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/cancel.h"
#include "serve/circuit_cache.h"
#include "serve/metrics.h"

namespace statsize::serve {

enum class JobType { kSsta, kSta, kMonteCarlo, kSize };
enum class JobState { kQueued, kRunning, kDone, kCancelled, kFailed };

const char* job_type_name(JobType type);
const char* job_state_name(JobState state);

/// Everything a job request can carry. Parsed from the POST /v1/jobs body by
/// the server; defaults mirror the CLI's.
struct JobParams {
  double deadline_ms = 0.0;  ///< 0 = unlimited. Analysis: hard cancel; size:
                             ///< SizerOptions::time_limit_seconds (honest
                             ///< kTimeLimit checkpoint comes back as kDone).
  int jobs = 0;              ///< runtime::set_threads for this job; 0 = leave

  // Delay model.
  double sigma_kappa = 0.25;
  double sigma_offset = 0.0;
  double speed = 1.0;  ///< uniform speed factor for analysis jobs

  // sta
  std::string corner = "worst";  ///< best | typical | worst

  // monte_carlo
  int mc_samples = 10000;
  std::uint64_t mc_seed = 1;

  // size
  std::string objective = "delay";  ///< delay | area
  double sigma_weight = 3.0;        ///< k in mu + k sigma (delay objective)
  double max_delay = 0.0;           ///< >0 adds DelayConstraint::at_most
  double constraint_sigma_weight = 0.0;
  std::string method = "reduced";  ///< full | reduced
  double max_speed = 3.0;
  int max_retries = 0;
};

struct Job {
  std::string id;  ///< "job-NNNNNN"
  JobType type = JobType::kSsta;
  JobParams params;
  std::shared_ptr<const CachedCircuit> circuit;

  std::atomic<JobState> state{JobState::kQueued};
  runtime::CancellationToken cancel;

  /// Guards result/error/timing below; state is the fast poll path.
  mutable std::mutex mu;
  std::string result_json;  ///< set once, on kDone
  std::string error;        ///< set on kFailed / kCancelled (reason)
  double submitted_ms = 0.0;
  double started_ms = 0.0;
  double finished_ms = 0.0;

  /// Serializes the full job document (state, params echo, timings, and the
  /// result object when done) as one JSON object.
  std::string describe() const;
};

struct SchedulerOptions {
  std::size_t queue_depth = 64;  ///< queued (not running) jobs before 429
  /// Install each circuit's upload-time granularity advice
  /// (runtime::set_level_serial_cutoff) before running its jobs.
  bool apply_serial_cutoff = true;
};

class JobScheduler {
 public:
  explicit JobScheduler(SchedulerOptions options = {}, Metrics* metrics = nullptr);
  ~JobScheduler();

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  void start();
  /// Cancels queued and running jobs, wakes the executor, joins it. Safe to
  /// call twice.
  void stop();

  /// Admission. Returns the queued job, or nullptr when the queue is full.
  std::shared_ptr<Job> submit(JobType type, std::shared_ptr<const CachedCircuit> circuit,
                              JobParams params);

  /// One element of a batched submission (POST /v1/jobs with a JSON array).
  struct JobRequest {
    JobType type = JobType::kSsta;
    std::shared_ptr<const CachedCircuit> circuit;
    JobParams params;
  };

  /// All-or-nothing admission under one lock: either every request is queued
  /// (ids assigned in order, FIFO with respect to other submissions) and the
  /// jobs come back in request order, or — when the whole batch would not
  /// fit under the queue depth — nothing is queued and the vector is empty
  /// (the server answers 429 for the batch).
  std::vector<std::shared_ptr<Job>> submit_batch(std::vector<JobRequest> requests);

  std::shared_ptr<Job> get(const std::string& id) const;

  /// Cooperative cancel: queued jobs flip to kCancelled immediately, running
  /// jobs get their token tripped (state changes when the solve unwinds).
  /// False when the id is unknown or the job already finished.
  bool cancel(const std::string& id);

  std::size_t queue_size() const;

 private:
  void executor_loop();
  void run_job(Job& job);

  const SchedulerOptions options_;
  Metrics* metrics_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Job>> queue_;
  std::map<std::string, std::shared_ptr<Job>> jobs_;
  int next_id_ = 1;
  bool stopping_ = false;
  bool started_ = false;
  std::thread executor_;
};

}  // namespace statsize::serve
