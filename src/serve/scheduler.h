// JobScheduler — bounded admission queue + the single job executor behind
// `statsize serve`.
//
// Why ONE executor thread: runtime::CancelScope is a process-global chain
// (install/uninstall must happen with no unrelated parallel work in flight),
// and the compute engines already parallelize *inside* a job through the
// global runtime::ThreadPool. Running jobs one at a time keeps the per-job
// CancelScope/SizerOptions deadline sound, keeps results bit-identical to
// the CLI (same pool, same determinism contract), and still loads every
// core — the concurrency the daemon offers is at admission/IO level, not
// compute level. DESIGN.md §11 expands on this trade.
//
// Lifecycle: submit() either enqueues (bounded; nullptr on overflow → the
// server answers 429) or rejects; the executor pops in FIFO order, installs
// the circuit's advised serial cutoff, runs the job under its cancel
// token/deadline, and publishes a result JSON blob. cancel() flips a queued
// job straight to kCancelled or trips a running job's CancellationToken so
// the cooperative polls unwind it.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/cancel.h"
#include "serve/circuit_cache.h"
#include "serve/journal.h"
#include "serve/metrics.h"

namespace statsize::serve {

enum class JobType { kSsta, kSta, kMonteCarlo, kSize };

/// kInterrupted is the recovery-surfaced terminal state: the job was running
/// (or its executor "crashed" via the serve.executor.crash fault) when the
/// process died, so no terminal journal record exists. It is terminal but
/// RETRYABLE: re-submitting with the same Idempotency-Key does NOT dedup
/// against it — it starts a fresh attempt (DESIGN.md §13).
enum class JobState { kQueued, kRunning, kDone, kCancelled, kFailed, kInterrupted };

const char* job_type_name(JobType type);
const char* job_state_name(JobState state);

/// Inverse of job_type_name / job_state_name, for journal replay. Throw
/// std::invalid_argument on an unknown name (a corrupt-but-checksummed
/// record is a bug, not a torn tail — fail loudly).
JobType job_type_from_name(const std::string& name);
JobState job_state_from_name(const std::string& name);

/// Everything a job request can carry. Parsed from the POST /v1/jobs body by
/// the server; defaults mirror the CLI's.
struct JobParams {
  double deadline_ms = 0.0;  ///< 0 = unlimited. Analysis: hard cancel; size:
                             ///< SizerOptions::time_limit_seconds (honest
                             ///< kTimeLimit checkpoint comes back as kDone).
  int jobs = 0;              ///< runtime::set_threads for this job; 0 = leave

  // Delay model.
  double sigma_kappa = 0.25;
  double sigma_offset = 0.0;
  double speed = 1.0;  ///< uniform speed factor for analysis jobs

  // sta
  std::string corner = "worst";  ///< best | typical | worst

  // monte_carlo
  int mc_samples = 10000;
  std::uint64_t mc_seed = 1;

  // size
  std::string objective = "delay";  ///< delay | area
  double sigma_weight = 3.0;        ///< k in mu + k sigma (delay objective)
  double max_delay = 0.0;           ///< >0 adds DelayConstraint::at_most
  double constraint_sigma_weight = 0.0;
  std::string method = "reduced";  ///< full | reduced
  double max_speed = 3.0;
  int max_retries = 0;
};

/// Serializes params as one JSON object (journal admit records); the inverse
/// of job_params_from_json. Every field round-trips bit-exactly except
/// mc_seed, which travels through the JSON layer's double representation and
/// is exact only up to 2^53 (the server's request parser has the same limit,
/// so a journaled seed always round-trips to what the client could submit).
void write_job_params(util::JsonWriter& w, const JobParams& params);
JobParams job_params_from_json(const util::JsonValue& doc);

struct Job {
  std::string id;  ///< "job-NNNNNN"
  JobType type = JobType::kSsta;
  JobParams params;
  std::shared_ptr<const CachedCircuit> circuit;
  std::string idempotency_key;  ///< empty = none; immutable after admission

  std::atomic<JobState> state{JobState::kQueued};
  runtime::CancellationToken cancel;

  /// Guards result/error/timing below; state is the fast poll path.
  mutable std::mutex mu;
  std::string result_json;  ///< set once, on kDone
  std::string error;        ///< set on kFailed / kCancelled (reason)
  double submitted_ms = 0.0;
  double started_ms = 0.0;
  double finished_ms = 0.0;

  /// Serializes the full job document (state, params echo, timings, and the
  /// result object when done) as one JSON object.
  std::string describe() const;
};

struct SchedulerOptions {
  std::size_t queue_depth = 64;  ///< queued (not running) jobs before 429
  /// Install each circuit's upload-time granularity advice
  /// (runtime::set_level_serial_cutoff) before running its jobs.
  bool apply_serial_cutoff = true;
};

class JobScheduler {
 public:
  explicit JobScheduler(SchedulerOptions options = {}, Metrics* metrics = nullptr);
  ~JobScheduler();

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  /// Attaches the durable journal. Must be called before start(); the
  /// scheduler then appends admit/start/end records for every job. Admission
  /// appends happen under the scheduler lock, so journal record order equals
  /// admission order (recovery re-admits in original order for free).
  void set_journal(Journal* journal) { journal_ = journal; }

  void start();
  /// Cancels queued and running jobs, wakes the executor, joins it. Safe to
  /// call twice.
  void stop();

  /// How one submission resolved. Exactly one of job / overflow /
  /// journal_error is meaningful: a non-null job with deduplicated=true is
  /// an existing job answering a retried Idempotency-Key; overflow maps to
  /// 429; a non-empty journal_error means the admit record could not be made
  /// durable, so the job was NOT admitted (maps to 503 — the client retries
  /// and the same key cannot double-admit).
  struct SubmitOutcome {
    std::shared_ptr<Job> job;
    bool deduplicated = false;
    bool overflow = false;
    std::string journal_error;
  };

  /// Admission. A non-empty idempotency_key first consults the dedup index
  /// (live jobs and journal-recovered ones alike); an existing non-interrupted
  /// job is returned as-is with deduplicated=true. An `interrupted` match
  /// does not dedup — the new admission replaces the mapping (retry
  /// semantics, see JobState).
  SubmitOutcome submit(JobType type, std::shared_ptr<const CachedCircuit> circuit,
                       JobParams params, std::string idempotency_key = {});

  /// One element of a batched submission (POST /v1/jobs with a JSON array).
  struct JobRequest {
    JobType type = JobType::kSsta;
    std::shared_ptr<const CachedCircuit> circuit;
    JobParams params;
  };

  struct BatchOutcome {
    std::vector<std::shared_ptr<Job>> jobs;  ///< request order; empty on failure
    bool overflow = false;
    std::string journal_error;
  };

  /// All-or-nothing admission under one lock: either every request is queued
  /// (ids assigned in order, FIFO with respect to other submissions) and the
  /// jobs come back in request order, or nothing is queued — overflow when
  /// the whole batch would not fit under the queue depth (429), journal_error
  /// when any admit record failed to persist (503; already-journaled records
  /// of the failed batch are re-admitted on a later recovery as queued jobs,
  /// which is the at-least-once side of the durability contract — batches
  /// carry no idempotency keys, so clients own batch-level retries).
  BatchOutcome submit_batch(std::vector<JobRequest> requests);

  /// One journal-recovered job to reinstall at startup, before start().
  struct RestoredJob {
    std::string id;
    JobType type = JobType::kSsta;
    JobParams params;
    std::shared_ptr<const CachedCircuit> circuit;  ///< may be null for terminal states
    std::string idempotency_key;
    JobState state = JobState::kQueued;  ///< kQueued re-enqueues; others install as-is
    std::string result_json;             ///< kDone payload
    std::string error;                   ///< failed/cancelled/interrupted reason
  };

  /// Reinstalls recovered jobs: terminal jobs become pollable again, kQueued
  /// jobs re-enter the queue in call order under their original ids, the
  /// idempotency index is rebuilt, and id allocation resumes past the highest
  /// recovered id. Writes NO journal records — the admit records already live
  /// in the journal being resumed.
  void restore(std::vector<RestoredJob> recovered);

  std::shared_ptr<Job> get(const std::string& id) const;

  /// Cooperative cancel: queued jobs flip to kCancelled immediately, running
  /// jobs get their token tripped (state changes when the solve unwinds).
  /// False when the id is unknown or the job already finished.
  bool cancel(const std::string& id);

  std::size_t queue_size() const;

 private:
  void executor_loop();
  void run_job(Job& job);
  /// Best-effort journal append for non-admission records (start/end):
  /// failures are counted, not raised — availability over a lost transition
  /// record (recovery then reports the job one state earlier, which the
  /// at-least-once contract absorbs).
  void journal_append_soft(const std::string& payload);

  const SchedulerOptions options_;
  Metrics* metrics_;
  Journal* journal_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Job>> queue_;
  std::map<std::string, std::shared_ptr<Job>> jobs_;
  std::map<std::string, std::string> idem_;  ///< Idempotency-Key -> job id
  int next_id_ = 1;
  bool stopping_ = false;
  bool started_ = false;
  std::thread executor_;
};

}  // namespace statsize::serve
