#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "analyze/graph_audit.h"
#include "netlist/blif.h"
#include "runtime/fault.h"
#include "netlist/timing_view.h"
#include "netlist/verilog.h"
#include "util/json.h"

namespace statsize::serve {

namespace {

std::string error_body(const std::string& message) {
  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_object();
  w.key("error").value(message);
  w.end_object();
  return os.str();
}

std::string parse_error_body(const util::JsonParseError& e) {
  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_object();
  w.key("error").value(std::string("invalid JSON body: ") + e.what());
  w.key("line").value(static_cast<int>(e.line()));
  w.key("column").value(static_cast<int>(e.column()));
  w.end_object();
  return os.str();
}

void set_recv_timeout(int fd, double seconds) {
  if (seconds <= 0.0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

/// Path without the query string.
std::string_view path_of(const std::string& target) {
  const std::size_t q = target.find('?');
  return std::string_view(target).substr(0, q == std::string::npos ? target.size() : q);
}

/// Round-trippable double for the canonical edit serialization hashed into a
/// derived entry's key: %.17g is injective on finite doubles, so two edit
/// sets collide only if they are value-identical.
std::string fmt_g17(double d) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  return std::string(buf);
}

/// One parsed PATCH edit: optional speed override + optional delay-model
/// parameter overrides (absent fields keep the node's current values).
struct ParsedEdit {
  netlist::NodeId node = 0;
  bool has_speed = false;
  double speed = 1.0;
  bool has_t_int = false, has_c = false, has_c_in = false, has_area = false;
  double t_int = 0.0, c = 0.0, c_in = 0.0, area = 0.0;
};

}  // namespace

Server::Server(ServerOptions options)
    : options_(options),
      cache_(options.cache_capacity),
      scheduler_(options.scheduler, &metrics_) {}

Server::~Server() { stop(); }

void Server::start() {
  if (running_.load(std::memory_order_acquire)) return;
  stopping_.store(false, std::memory_order_release);
  draining_.store(false, std::memory_order_release);

  // Durability first: open (or resume) the journal and replay it before any
  // socket exists, so recovered state is fully installed by the time the
  // first request can arrive. A stop()/start() cycle on the same Server
  // keeps the already-open journal (its state was never lost).
  if (!options_.journal_dir.empty() && journal_ == nullptr) {
    journal_ = std::make_unique<Journal>(
        JournalOptions{options_.journal_dir, options_.journal_fsync});
    scheduler_.set_journal(journal_.get());
    recover_from_journal();
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(std::string("bind(127.0.0.1:") +
                             std::to_string(options_.port) + ") failed: " +
                             std::strerror(err));
  }
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("listen() failed");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = static_cast<int>(ntohs(bound.sin_port));

  // Pace accept() so the accept loop can notice stop() without a wakeup fd.
  set_recv_timeout(listen_fd_, 0.2);

  metrics_.started_at_unix = now();
  scheduler_.start();
  running_.store(true, std::memory_order_release);

  accept_thread_ = std::thread([this] { accept_loop(); });
  const int workers = options_.io_threads < 1 ? 1 : options_.io_threads;
  io_threads_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    io_threads_.emplace_back([this] { io_loop(); });
  }
}

void Server::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  draining_.store(true, std::memory_order_release);
  stopping_.store(true, std::memory_order_release);
  conn_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (auto& t : io_threads_) {
    conn_cv_.notify_all();
    if (t.joinable()) t.join();
  }
  io_threads_.clear();
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    while (!conn_queue_.empty()) {
      ::close(conn_queue_.front());
      conn_queue_.pop_front();
    }
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  scheduler_.stop();
  running_.store(false, std::memory_order_release);
}

void Server::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    sockaddr_in peer{};
    socklen_t len = sizeof(peer);
    const int fd = ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer), &len);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      if (stopping_.load(std::memory_order_acquire)) break;
      continue;  // transient (EMFILE etc.): keep the daemon alive
    }
    if (runtime::fault::hit(runtime::fault::kServeAccept)) {
      // Injected accept failure: the peer sees its freshly established
      // connection reset before a single byte — the client must reconnect.
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    set_recv_timeout(fd, options_.io_recv_timeout_seconds);
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      conn_queue_.push_back(fd);
    }
    conn_cv_.notify_one();
  }
}

void Server::io_loop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(conn_mu_);
      conn_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_acquire) || !conn_queue_.empty();
      });
      if (stopping_.load(std::memory_order_acquire) && conn_queue_.empty()) return;
      if (conn_queue_.empty()) continue;
      fd = conn_queue_.front();
      conn_queue_.pop_front();
    }
    serve_connection(fd);
  }
}

void Server::serve_connection(int fd) {
  HttpConnection conn(fd);
  while (!stopping_.load(std::memory_order_acquire)) {
    HttpRequest request;
    std::string parse_error;
    const ReadOutcome outcome =
        conn.read_request(&request, &parse_error, options_.limits);
    if (outcome == ReadOutcome::kTimeout) continue;  // idle keep-alive; recheck stop
    if (outcome == ReadOutcome::kClosed || outcome == ReadOutcome::kError) return;
    if (outcome == ReadOutcome::kTooLarge) {
      metrics_.http_requests.inc();
      metrics_.http_bad_requests.inc();
      conn.write_response(
          HttpResponse::json(413, error_body("request exceeds size limits")), false);
      return;
    }
    if (outcome == ReadOutcome::kMalformed) {
      metrics_.http_requests.inc();
      metrics_.http_bad_requests.inc();
      conn.write_response(
          HttpResponse::json(400, error_body("malformed HTTP request: " + parse_error)),
          false);
      return;
    }

    if (runtime::fault::hit(runtime::fault::kServeRead)) {
      // Injected read failure: drop the connection after a fully parsed
      // request, before any handling — the client cannot tell whether the
      // request took effect, which is exactly what Idempotency-Key is for.
      metrics_.http_requests.inc();
      return;
    }

    metrics_.http_requests.inc();
    HttpResponse response;
    try {
      response = handle(request);
    } catch (const std::exception& e) {
      response = HttpResponse::json(500, error_body(std::string("internal error: ") + e.what()));
    }
    if (response.status >= 500) metrics_.http_server_errors.inc();
    else if (response.status >= 400) metrics_.http_bad_requests.inc();

    const bool keep_alive = !request.wants_close() && !stopping_.load(std::memory_order_acquire);
    if (!conn.write_response(response, keep_alive)) return;
    if (!keep_alive) return;
  }
}

HttpResponse Server::handle(const HttpRequest& request) {
  const std::string_view path = path_of(request.target);

  if (path == "/v1/healthz" && request.method == "GET") {
    // Liveness, not readiness: stays 200 while draining so orchestrators do
    // not kill a daemon that is finishing in-flight work.
    return HttpResponse::json(200, "{\n  \"ok\": true\n}");
  }
  if (path == "/v1/readyz" && request.method == "GET") {
    if (draining_.load(std::memory_order_acquire)) {
      HttpResponse response =
          HttpResponse::json(503, error_body("draining: server is shutting down"));
      response.headers["Retry-After"] = "1";
      return response;
    }
    return HttpResponse::json(200, "{\n  \"ready\": true\n}");
  }
  if (path == "/v1/stats" && request.method == "GET") return handle_stats();
  if (path == "/v1/circuits") {
    if (request.method == "POST") return handle_upload(request);
    if (request.method == "GET") return handle_list_circuits();
    return HttpResponse::json(405, error_body("method not allowed"));
  }
  if (path.rfind("/v1/circuits/", 0) == 0) {
    const std::string key(path.substr(std::string_view("/v1/circuits/").size()));
    if (key.empty()) return HttpResponse::json(404, error_body("missing circuit key"));
    if (request.method == "PATCH") return handle_patch(request, key);
    return HttpResponse::json(405, error_body("method not allowed"));
  }
  if (path == "/v1/jobs" && request.method == "POST") return handle_submit(request);
  if (path.rfind("/v1/jobs/", 0) == 0) {
    const std::string id(path.substr(std::string_view("/v1/jobs/").size()));
    if (id.empty()) return HttpResponse::json(404, error_body("missing job id"));
    if (request.method == "GET") return handle_job_get(id);
    if (request.method == "DELETE") return handle_job_delete(id);
    return HttpResponse::json(405, error_body("method not allowed"));
  }
  return HttpResponse::json(404, error_body("no such endpoint: " + std::string(path)));
}

bool Server::journal_upload_record(const char* kind, const std::string& base,
                                   const std::string& body, HttpResponse* error) {
  if (journal_ == nullptr || replaying_) return true;
  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_object();
  w.key("kind").value(kind);
  if (!base.empty()) w.key("base").value(base);
  w.key("body").value(body);
  w.end_object();
  try {
    journal_->append(os.str());
    metrics_.journal_records_written.inc();
    return true;
  } catch (const JournalWriteError& e) {
    metrics_.journal_write_errors.inc();
    *error = HttpResponse::json(
        503, error_body(std::string(kind) +
                        " not durable (journal write failed: " + e.what() + "); retry"));
    error->headers["Retry-After"] = "1";
    return false;
  }
}

HttpResponse Server::handle_upload(const HttpRequest& request) {
  util::JsonValue body;
  try {
    body = util::parse_json(request.body);
  } catch (const util::JsonParseError& e) {
    return HttpResponse::json(400, parse_error_body(e));
  }
  if (!body.is_object()) {
    return HttpResponse::json(400, error_body("body must be a JSON object"));
  }
  const util::JsonValue* text = body.find("text");
  if (text == nullptr || !text->is_string()) {
    return HttpResponse::json(400, error_body("missing string field: text"));
  }
  const std::string format = body.string_or("format", "blif");
  if (format != "blif" && format != "verilog") {
    return HttpResponse::json(400, error_body("unknown format: " + format +
                                              " (expected blif | verilog)"));
  }
  const std::string name = body.string_or("name", "");

  const std::string key = circuit_key(format, text->as_string());
  std::shared_ptr<const CachedCircuit> entry = cache_.find(key);
  bool cached = entry != nullptr;
  std::size_t evicted = 0;
  if (cached) {
    metrics_.cache_hits.inc();
  } else {
    metrics_.cache_misses.inc();
    auto fresh = std::make_shared<CachedCircuit>();
    try {
      std::istringstream in(text->as_string());
      netlist::Circuit circuit =
          format == "blif" ? netlist::read_blif(in) : netlist::read_verilog(in);
      const netlist::TimingViewStats stats =
          netlist::compute_view_stats(circuit.view());
      fresh->serial_cutoff = analyze::advise_granularity(stats.level_widths).serial_cutoff;
      fresh->num_gates = circuit.num_gates();
      fresh->num_inputs = circuit.num_inputs();
      fresh->num_outputs = static_cast<int>(circuit.outputs().size());
      fresh->depth = circuit.depth();
      fresh->num_levels = stats.level_widths.size();
      fresh->circuit = std::make_shared<netlist::Circuit>(std::move(circuit));
    } catch (const std::exception& e) {
      return HttpResponse::json(
          400, error_body(std::string("circuit parse failed: ") + e.what()));
    }
    fresh->key = key;
    fresh->name = name;
    fresh->format = format;
    // Journal before insert: a 503 here must leave no cache entry, or the
    // client's retry would hit the cache and skip journaling forever.
    HttpResponse journal_error;
    if (!journal_upload_record("circuit", "", request.body, &journal_error)) {
      return journal_error;
    }
    CircuitCache::InsertResult inserted = cache_.insert(std::move(fresh));
    entry = inserted.entry;
    cached = inserted.existed;  // concurrent identical upload won the race
    evicted = inserted.evicted;
    if (evicted > 0) metrics_.cache_evictions.inc(static_cast<std::int64_t>(evicted));
  }
  metrics_.circuits_cached.set(static_cast<std::int64_t>(cache_.size()));

  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_object();
  w.key("key").value(entry->key);
  w.key("cached").value(cached);
  w.key("name").value(entry->name);
  w.key("format").value(entry->format);
  w.key("gates").value(entry->num_gates);
  w.key("inputs").value(entry->num_inputs);
  w.key("outputs").value(entry->num_outputs);
  w.key("depth").value(entry->depth);
  w.key("levels").value(static_cast<long>(entry->num_levels));
  w.key("serial_cutoff").value(static_cast<long>(entry->serial_cutoff));
  w.key("evicted").value(static_cast<long>(evicted));
  w.end_object();
  return HttpResponse::json(cached ? 200 : 201, os.str());
}

HttpResponse Server::handle_patch(const HttpRequest& request, const std::string& key) {
  util::JsonValue body;
  try {
    body = util::parse_json(request.body);
  } catch (const util::JsonParseError& e) {
    return HttpResponse::json(400, parse_error_body(e));
  }
  if (!body.is_object()) {
    return HttpResponse::json(400, error_body("body must be a JSON object"));
  }
  const util::JsonValue* edits_json = body.find("edits");
  if (edits_json == nullptr || !edits_json->is_array() || edits_json->items().empty()) {
    return HttpResponse::json(
        400, error_body("missing field: edits (non-empty array of edit objects)"));
  }

  std::shared_ptr<const CachedCircuit> base = cache_.find(key);
  if (!base) {
    metrics_.cache_misses.inc();
    return HttpResponse::json(
        404, error_body("unknown circuit key: " + key + " (upload it first)"));
  }
  metrics_.cache_hits.inc();
  const netlist::TimingView& base_view = base->timing_view();

  // Parse + validate every edit before building anything; the canonical
  // serialization hashed into the derived key is built alongside.
  std::vector<ParsedEdit> edits;
  edits.reserve(edits_json->items().size());
  std::string canon;
  for (std::size_t i = 0; i < edits_json->items().size(); ++i) {
    const util::JsonValue& e = edits_json->items()[i];
    const std::string at = "edits[" + std::to_string(i) + "]";
    if (!e.is_object()) {
      return HttpResponse::json(400, error_body(at + " must be an object"));
    }
    const util::JsonValue* node = e.find("node");
    if (node == nullptr || !node->is_number()) {
      return HttpResponse::json(400, error_body(at + ": missing integer field: node"));
    }
    ParsedEdit parsed;
    try {
      parsed.node = static_cast<netlist::NodeId>(node->as_int());
    } catch (const std::exception&) {
      return HttpResponse::json(400, error_body(at + ".node must be an integer NodeId"));
    }
    if (parsed.node < 0 || parsed.node >= static_cast<netlist::NodeId>(base_view.num_nodes()) ||
        !base_view.is_gate(parsed.node)) {
      return HttpResponse::json(
          400, error_body(at + ".node " + std::to_string(parsed.node) +
                          " is not a gate of circuit " + key));
    }
    canon += "n" + std::to_string(parsed.node);
    auto take = [&](const char* field, bool& has, double& value,
                    const char* tag) -> const char* {
      const util::JsonValue* v = e.find(field);
      if (v == nullptr) return nullptr;
      if (!v->is_number()) return "must be a number";
      value = v->as_number();
      if (!std::isfinite(value)) return "must be finite";
      has = true;
      canon += std::string(";") + tag + "=" + fmt_g17(value);
      return nullptr;
    };
    struct Field { const char* name; bool& has; double& value; const char* tag; };
    const Field fields[] = {{"speed", parsed.has_speed, parsed.speed, "s"},
                            {"t_int", parsed.has_t_int, parsed.t_int, "t"},
                            {"c", parsed.has_c, parsed.c, "c"},
                            {"c_in", parsed.has_c_in, parsed.c_in, "i"},
                            {"area", parsed.has_area, parsed.area, "a"}};
    for (const Field& f : fields) {
      if (const char* err = take(f.name, f.has, f.value, f.tag)) {
        return HttpResponse::json(400, error_body(at + "." + f.name + " " + err));
      }
    }
    if (parsed.has_speed && parsed.speed <= 0.0) {
      return HttpResponse::json(400, error_body(at + ".speed must be positive"));
    }
    if (!parsed.has_speed && !parsed.has_t_int && !parsed.has_c && !parsed.has_c_in &&
        !parsed.has_area) {
      return HttpResponse::json(
          400, error_body(at + " edits nothing (expected speed | t_int | c | c_in | area)"));
    }
    edits.push_back(parsed);
    canon += "\n";
  }

  char suffix[8 + 16 + 1];
  std::snprintf(suffix, sizeof(suffix), "+e-%016llx",
                static_cast<unsigned long long>(fnv1a64(canon)));
  const std::string derived_key = base->key + suffix;

  std::shared_ptr<const CachedCircuit> entry = cache_.find(derived_key);
  bool cached = entry != nullptr;
  std::size_t evicted = 0;
  if (cached) {
    metrics_.cache_hits.inc();
  } else {
    auto fresh = std::make_shared<CachedCircuit>();
    auto view = std::make_shared<netlist::TimingView>(base_view);
    fresh->speed_edits = base->speed_edits;
    try {
      for (const ParsedEdit& e : edits) {
        if (e.has_t_int || e.has_c || e.has_c_in || e.has_area) {
          netlist::NodeParams p = view->node_params(e.node);
          if (e.has_t_int) p.t_int = e.t_int;
          if (e.has_c) p.c = e.c;
          if (e.has_c_in) p.c_in = e.c_in;
          if (e.has_area) p.area = e.area;
          view->update_node_params(e.node, p);
        }
        if (e.has_speed) fresh->speed_edits.emplace_back(e.node, e.speed);
      }
    } catch (const std::exception& e) {
      return HttpResponse::json(400, error_body(std::string("edit rejected: ") + e.what()));
    }
    view->clear_dirty();  // a fresh entry starts with a clean epoch baseline
    fresh->key = derived_key;
    fresh->name = body.string_or("name", base->name);
    fresh->format = base->format;
    fresh->circuit = base->circuit;
    fresh->num_gates = base->num_gates;
    fresh->num_inputs = base->num_inputs;
    fresh->num_outputs = base->num_outputs;
    fresh->depth = base->depth;
    fresh->num_levels = base->num_levels;
    fresh->serial_cutoff = base->serial_cutoff;
    fresh->base = base;
    fresh->patched_view = std::move(view);
    fresh->num_edits = base->num_edits + edits.size();
    HttpResponse journal_error;
    if (!journal_upload_record("patch", base->key, request.body, &journal_error)) {
      return journal_error;
    }
    CircuitCache::InsertResult inserted = cache_.insert(std::move(fresh));
    entry = inserted.entry;
    cached = inserted.existed;
    evicted = inserted.evicted;
    if (evicted > 0) metrics_.cache_evictions.inc(static_cast<std::int64_t>(evicted));
  }
  metrics_.circuits_cached.set(static_cast<std::int64_t>(cache_.size()));

  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_object();
  w.key("key").value(entry->key);
  w.key("base").value(base->key);
  w.key("cached").value(cached);
  w.key("name").value(entry->name);
  w.key("edits_applied").value(static_cast<long>(edits.size()));
  w.key("num_edits").value(static_cast<long>(entry->num_edits));
  w.key("gates").value(entry->num_gates);
  w.key("serial_cutoff").value(static_cast<long>(entry->serial_cutoff));
  w.end_object();
  return HttpResponse::json(cached ? 200 : 201, os.str());
}

HttpResponse Server::handle_list_circuits() {
  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_object();
  w.key("capacity").value(static_cast<long>(cache_.capacity()));
  w.key("circuits").begin_array();
  for (const auto& entry : cache_.snapshot()) {
    w.begin_object();
    w.key("key").value(entry->key);
    w.key("name").value(entry->name);
    w.key("format").value(entry->format);
    w.key("gates").value(entry->num_gates);
    w.key("depth").value(entry->depth);
    w.key("serial_cutoff").value(static_cast<long>(entry->serial_cutoff));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return HttpResponse::json(200, os.str());
}

bool Server::parse_job_request(const util::JsonValue& body, JobScheduler::JobRequest* out,
                               HttpResponse* error) {
  if (!body.is_object()) {
    *error = HttpResponse::json(400, error_body("job request must be a JSON object"));
    return false;
  }
  const std::string key = body.string_or("circuit", "");
  if (key.empty()) {
    *error = HttpResponse::json(400, error_body("missing field: circuit (cache key)"));
    return false;
  }
  const std::string type_name = body.string_or("type", "ssta");
  if (type_name == "ssta") out->type = JobType::kSsta;
  else if (type_name == "sta") out->type = JobType::kSta;
  else if (type_name == "monte_carlo") out->type = JobType::kMonteCarlo;
  else if (type_name == "size") out->type = JobType::kSize;
  else {
    *error = HttpResponse::json(
        400, error_body("unknown job type: " + type_name +
                        " (expected ssta | sta | monte_carlo | size)"));
    return false;
  }

  out->circuit = cache_.find(key);
  if (!out->circuit) {
    metrics_.cache_misses.inc();
    *error = HttpResponse::json(
        404, error_body("unknown circuit key: " + key + " (upload it first)"));
    return false;
  }
  metrics_.cache_hits.inc();

  JobParams& params = out->params;
  params = JobParams{};
  try {
    params.deadline_ms = body.number_or("deadline_ms", params.deadline_ms);
    params.jobs = body.int_or("jobs", params.jobs);
    params.sigma_kappa = body.number_or("sigma_kappa", params.sigma_kappa);
    params.sigma_offset = body.number_or("sigma_offset", params.sigma_offset);
    params.speed = body.number_or("speed", params.speed);
    params.corner = body.string_or("corner", params.corner);
    params.mc_samples = body.int_or("samples", params.mc_samples);
    params.mc_seed = static_cast<std::uint64_t>(
        body.int_or("seed", static_cast<int>(params.mc_seed)));
    params.objective = body.string_or("objective", params.objective);
    params.sigma_weight = body.number_or("sigma_weight", params.sigma_weight);
    params.max_delay = body.number_or("max_delay", params.max_delay);
    params.constraint_sigma_weight =
        body.number_or("constraint_sigma_weight", params.constraint_sigma_weight);
    params.method = body.string_or("method", params.method);
    params.max_speed = body.number_or("max_speed", params.max_speed);
    params.max_retries = body.int_or("max_retries", params.max_retries);
  } catch (const std::exception& e) {
    *error = HttpResponse::json(400, error_body(std::string("bad job params: ") + e.what()));
    return false;
  }
  if (params.deadline_ms < 0.0 || params.mc_samples < 1 ||
      params.jobs < 0 || params.jobs > 1024) {
    *error = HttpResponse::json(400, error_body("job params out of range"));
    return false;
  }
  return true;
}

HttpResponse Server::handle_submit(const HttpRequest& request) {
  util::JsonValue body;
  try {
    body = util::parse_json(request.body);
  } catch (const util::JsonParseError& e) {
    return HttpResponse::json(400, parse_error_body(e));
  }
  const std::string idempotency_key(request.header("idempotency-key"));
  if (body.is_array()) {
    if (!idempotency_key.empty()) {
      return HttpResponse::json(
          400, error_body("Idempotency-Key applies to a single job submission, "
                          "not a batch (submit batch elements individually to "
                          "deduplicate them)"));
    }
    return handle_submit_batch(body);
  }
  if (!body.is_object()) {
    return HttpResponse::json(
        400, error_body("body must be a JSON object (or an array of them to batch)"));
  }
  JobScheduler::JobRequest req;
  HttpResponse error;
  if (!parse_job_request(body, &req, &error)) return error;

  JobScheduler::SubmitOutcome outcome = scheduler_.submit(
      req.type, std::move(req.circuit), std::move(req.params), idempotency_key);
  if (!outcome.journal_error.empty()) {
    HttpResponse response = HttpResponse::json(
        503, error_body("admission not durable (journal write failed: " +
                        outcome.journal_error + "); retry"));
    response.headers["Retry-After"] = "1";
    return response;
  }
  if (outcome.job == nullptr) {
    HttpResponse response = HttpResponse::json(
        429, error_body("job queue full (retry later)"));
    response.headers["Retry-After"] = "1";
    return response;
  }
  const std::shared_ptr<Job>& job = outcome.job;
  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_object();
  w.key("id").value(job->id);
  // Echo the admitted job's own type/circuit: on a dedup hit these are the
  // ORIGINAL admission's, which is what the retried request actually got.
  w.key("state").value(job_state_name(job->state.load(std::memory_order_acquire)));
  w.key("type").value(job_type_name(job->type));
  w.key("circuit").value(job->circuit ? job->circuit->key : "");
  w.key("deduplicated").value(outcome.deduplicated);
  w.end_object();
  // 200 (not 202) for a dedup hit: nothing new was accepted for processing.
  return HttpResponse::json(outcome.deduplicated ? 200 : 202, os.str());
}

HttpResponse Server::handle_submit_batch(const util::JsonValue& body) {
  const std::vector<util::JsonValue>& items = body.items();
  if (items.empty()) {
    return HttpResponse::json(400, error_body("batch must contain at least one job"));
  }
  // Validate every element before queuing anything: a bad element rejects the
  // whole batch, so clients never have to hunt down half-submitted jobs.
  std::vector<JobScheduler::JobRequest> requests(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    HttpResponse error;
    if (!parse_job_request(items[i], &requests[i], &error)) {
      const std::string detail = util::parse_json(error.body).string_or("error", "invalid");
      return HttpResponse::json(error.status,
                                error_body("jobs[" + std::to_string(i) + "]: " + detail));
    }
  }
  // Echo material captured before submit_batch moves the requests.
  std::vector<std::pair<JobType, std::string>> echo;
  echo.reserve(requests.size());
  for (const auto& r : requests) echo.emplace_back(r.type, r.circuit->key);

  JobScheduler::BatchOutcome outcome = scheduler_.submit_batch(std::move(requests));
  if (!outcome.journal_error.empty()) {
    HttpResponse response = HttpResponse::json(
        503, error_body("batch admission not durable (journal write failed: " +
                        outcome.journal_error + "); retry"));
    response.headers["Retry-After"] = "1";
    return response;
  }
  const std::vector<std::shared_ptr<Job>>& jobs = outcome.jobs;
  if (jobs.empty()) {
    HttpResponse response = HttpResponse::json(
        429, error_body("job queue cannot take the whole batch (retry later)"));
    response.headers["Retry-After"] = "1";
    return response;
  }
  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_object();
  w.key("jobs").begin_array();
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    w.begin_object();
    w.key("id").value(jobs[i]->id);
    w.key("state").value(job_state_name(jobs[i]->state.load(std::memory_order_acquire)));
    w.key("type").value(job_type_name(echo[i].first));
    w.key("circuit").value(echo[i].second);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return HttpResponse::json(202, os.str());
}

HttpResponse Server::handle_job_get(const std::string& id) {
  std::shared_ptr<Job> job = scheduler_.get(id);
  if (!job) return HttpResponse::json(404, error_body("no such job: " + id));
  return HttpResponse::json(200, job->describe());
}

HttpResponse Server::handle_job_delete(const std::string& id) {
  std::shared_ptr<Job> job = scheduler_.get(id);
  if (!job) return HttpResponse::json(404, error_body("no such job: " + id));
  const bool accepted = scheduler_.cancel(id);
  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_object();
  w.key("id").value(id);
  w.key("cancel_requested").value(accepted);
  w.key("state").value(job_state_name(job->state.load(std::memory_order_acquire)));
  w.end_object();
  return HttpResponse::json(accepted ? 200 : 409, os.str());
}

HttpResponse Server::handle_stats() {
  std::ostringstream os;
  metrics_.write_json(os);
  return HttpResponse::json(200, os.str());
}

void Server::recover_from_journal() {
  const std::vector<Journal::Record>& records = journal_->replay();
  metrics_.journal_records_replayed.inc(static_cast<std::int64_t>(records.size()));
  metrics_.journal_truncated_bytes.inc(journal_->truncated_bytes());
  if (records.empty()) return;

  // Circuit/patch records are re-driven through the real upload/patch
  // handlers (identical parsing, identical content-hash keys); replaying_
  // suppresses re-journaling inside them. Job records are folded into one
  // RestoredJob per id: the latest observed transition decides the state.
  replaying_ = true;
  struct Recovered {
    JobScheduler::RestoredJob job;
    std::string circuit_key;
    bool started = false;
    bool ended = false;
  };
  std::vector<Recovered> pending;  ///< admission order == journal order
  std::map<std::string, std::size_t> by_id;
  for (const Journal::Record& rec : records) {
    try {
      if (rec.kind == "circuit" || rec.kind == "patch") {
        HttpRequest req;
        req.body = rec.doc.string_or("body", "");
        if (rec.kind == "circuit") {
          req.method = "POST";
          req.target = "/v1/circuits";
          handle_upload(req);
        } else {
          const std::string base = rec.doc.string_or("base", "");
          req.method = "PATCH";
          req.target = "/v1/circuits/" + base;
          handle_patch(req, base);
        }
      } else if (rec.kind == "admit") {
        Recovered r;
        r.job.id = rec.doc.string_or("id", "");
        if (r.job.id.empty()) continue;
        r.job.type = job_type_from_name(rec.doc.string_or("type", "ssta"));
        if (const util::JsonValue* params = rec.doc.find("params")) {
          r.job.params = job_params_from_json(*params);
        }
        r.job.idempotency_key = rec.doc.string_or("idempotency_key", "");
        r.circuit_key = rec.doc.string_or("circuit", "");
        by_id[r.job.id] = pending.size();
        pending.push_back(std::move(r));
      } else if (rec.kind == "start") {
        const auto it = by_id.find(rec.doc.string_or("id", ""));
        if (it != by_id.end()) pending[it->second].started = true;
      } else if (rec.kind == "end") {
        const auto it = by_id.find(rec.doc.string_or("id", ""));
        if (it == by_id.end()) continue;
        const JobState state = job_state_from_name(rec.doc.string_or("state", "failed"));
        Recovered& r = pending[it->second];
        r.job.state = state;
        r.job.result_json = rec.doc.string_or("result", "");
        r.job.error = rec.doc.string_or("error", "");
        r.ended = true;
      }
      // Unknown kinds are skipped: a newer daemon's records must not brick
      // an older one pointed at the same directory.
    } catch (const std::exception&) {
      // A checksummed-but-unreplayable record (say, a circuit whose text no
      // longer parses) must not keep the daemon down; any job referencing
      // the missing state fails below with a named error instead.
    }
  }
  replaying_ = false;
  metrics_.circuits_cached.set(static_cast<std::int64_t>(cache_.size()));

  std::vector<JobScheduler::RestoredJob> restored;
  restored.reserve(pending.size());
  for (Recovered& r : pending) {
    r.job.circuit = cache_.find(r.circuit_key);
    if (r.ended) {
      // Terminal before the crash: reinstall verbatim so GET /v1/jobs/<id>
      // keeps answering with the exact pre-crash result.
      metrics_.jobs_recovered.inc();
    } else if (r.started) {
      // Running at crash: terminal-but-retryable. We cannot know how far it
      // got, so we never silently re-run it (a size job mutates warm-start
      // state); the client re-submits under its idempotency key.
      r.job.state = JobState::kInterrupted;
      r.job.error =
          "interrupted: daemon crashed while this job was running (re-submit to retry)";
      metrics_.jobs_interrupted.inc();
    } else if (r.job.circuit == nullptr) {
      // Queued at crash but its circuit did not survive replay (torn tail or
      // eviction): a named failure, never a crash or a silent drop.
      r.job.state = JobState::kFailed;
      r.job.error = "recovery failed: circuit " + r.circuit_key +
                    " is not in the recovered cache (journal truncated or entry "
                    "evicted); re-upload it and re-submit";
      metrics_.jobs_recovered.inc();
    } else {
      r.job.state = JobState::kQueued;  // re-admitted in original order
      metrics_.jobs_recovered.inc();
    }
    restored.push_back(std::move(r.job));
  }
  scheduler_.restore(std::move(restored));
}

}  // namespace statsize::serve
