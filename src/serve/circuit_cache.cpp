#include "serve/circuit_cache.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <mutex>

#include "runtime/fault.h"

namespace statsize::serve {

std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (unsigned char c : text) {
    h ^= static_cast<std::uint64_t>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

std::string circuit_key(std::string_view format, std::string_view text) {
  std::string blob;
  blob.reserve(format.size() + 1 + text.size());
  blob.append(format);
  blob.push_back('\n');
  blob.append(text);
  char out[2 + 16 + 1];
  std::snprintf(out, sizeof(out), "c-%016llx",
                static_cast<unsigned long long>(fnv1a64(blob)));
  return std::string(out);
}

CircuitCache::CircuitCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::shared_ptr<const CachedCircuit> CircuitCache::find(const std::string& key) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  it->second->last_used.store(clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                              std::memory_order_relaxed);
  return it->second;
}

CircuitCache::InsertResult CircuitCache::insert(std::shared_ptr<const CachedCircuit> entry) {
  InsertResult result;
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(entry->key);
  if (it != entries_.end()) {
    it->second->last_used.store(clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                                std::memory_order_relaxed);
    result.entry = it->second;
    result.existed = true;
    return result;
  }
  // Injected eviction pressure: pretend the cache is over capacity for this
  // one insert, evicting the LRU entry even when there is room. Jobs holding
  // shared_ptr entries keep computing; recovery replay sees a missing key.
  bool forced_evict = runtime::fault::hit(runtime::fault::kCacheEvict);
  while (entries_.size() >= capacity_ || (forced_evict && !entries_.empty())) {
    forced_evict = false;
    auto victim = entries_.end();
    std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
    for (auto cand = entries_.begin(); cand != entries_.end(); ++cand) {
      const std::uint64_t stamp = cand->second->last_used.load(std::memory_order_relaxed);
      if (stamp < oldest) {
        oldest = stamp;
        victim = cand;
      }
    }
    entries_.erase(victim);
    ++result.evicted;
  }
  entry->last_used.store(clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                         std::memory_order_relaxed);
  result.entry = entry;
  entries_.emplace(entry->key, std::move(entry));
  return result;
}

std::size_t CircuitCache::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return entries_.size();
}

std::vector<std::shared_ptr<const CachedCircuit>> CircuitCache::snapshot() const {
  std::vector<std::shared_ptr<const CachedCircuit>> out;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    out.reserve(entries_.size());
    for (const auto& [key, entry] : entries_) out.push_back(entry);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) {
              return a->last_used.load(std::memory_order_relaxed) >
                     b->last_used.load(std::memory_order_relaxed);
            });
  return out;
}

}  // namespace statsize::serve
