// Keep-alive HTTP client for the serve API — the plumbing behind
// `statsize submit/poll/cancel` and the benches. One Client owns one
// connection and reconnects transparently when the daemon closed it (idle
// timeout, error response with Connection: close).
//
// Resilience (DESIGN.md §13): with ClientOptions::retries > 0 the client
// survives a hostile network — transport failures (reset, torn response,
// connect timeout) and backpressure statuses (429, 503) are retried under
// capped exponential backoff with DETERMINISTIC seeded jitter:
//
//   delay_ms(attempt) = min(cap, backoff * 2^attempt) * U,  U in [0.5, 1.0)
//
// where U comes from a SplitMix64 stream seeded by jitter_seed — the house
// RNG, never rand()/random_device (detlint DET002 still fires on those in
// serve/). A server-sent Retry-After overrides the computed delay. Retrying
// a POST /v1/jobs is safe when paired with an Idempotency-Key: the daemon
// answers the retry from the original admission.

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "serve/http.h"
#include "util/json.h"

namespace statsize::serve {

/// Response body + status from one API exchange.
struct ApiResult {
  int status = 0;
  std::string body;

  bool ok() const { return status >= 200 && status < 300; }

  /// Parses the body (daemon responses are always JSON).
  util::JsonValue json() const { return util::parse_json(body); }
};

struct ClientOptions {
  int retries = 0;              ///< extra attempts after the first (0 = fail fast)
  double backoff_ms = 100.0;    ///< base delay before the first retry
  double backoff_cap_ms = 2000.0;
  std::uint64_t jitter_seed = 1;  ///< SplitMix64 seed for the jitter stream
  /// Bounds connect() (0 = OS default) and each recv (0 = block forever).
  double connect_timeout_seconds = 5.0;
  double recv_timeout_seconds = 0.0;
};

class Client {
 public:
  /// Lazy: connects on the first request.
  Client(std::string host, int port, ClientOptions options = {})
      : host_(std::move(host)), port_(port), options_(options) {}

  /// One logical exchange, retried per ClientOptions. Throws
  /// std::runtime_error when transport keeps failing after every retry;
  /// returns the last response when the server keeps answering 429/503.
  ApiResult request(const std::string& method, const std::string& target,
                    const std::string& body = "",
                    const std::map<std::string, std::string>& headers = {});

  /// The first `count` backoff delays (ms) this options struct produces —
  /// pure function of (options, attempt index), so tests can assert the
  /// schedule is deterministic and capped without sleeping through it.
  static std::vector<double> backoff_schedule(const ClientOptions& options, int count);

  /// Retries attempted by this client so far (transport + backpressure).
  long retries_used() const { return retries_used_; }

  // -- Typed wrappers over the v1 API --

  /// Upload circuit text; returns the cache key.
  std::string upload(const std::string& text, const std::string& format,
                     const std::string& name = "");

  /// Submit a job; `body_json` is the full POST /v1/jobs body. A non-empty
  /// `idempotency_key` is sent as the Idempotency-Key header, making retries
  /// (manual or automatic) submit-once. Returns the job id. Throws on
  /// non-2xx (message includes the server's error body).
  std::string submit(const std::string& body_json, const std::string& idempotency_key = "");

  ApiResult job(const std::string& id) { return request("GET", "/v1/jobs/" + id); }
  ApiResult cancel(const std::string& id) { return request("DELETE", "/v1/jobs/" + id); }
  ApiResult stats() { return request("GET", "/v1/stats"); }

  /// Polls GET /v1/jobs/<id> every `poll_seconds` until the job leaves
  /// queued/running (or `timeout_seconds` elapses, 0 = forever). Returns the
  /// final job document.
  util::JsonValue wait(const std::string& id, double poll_seconds = 0.05,
                       double timeout_seconds = 0.0);

 private:
  void ensure_connected();
  /// Next jittered backoff delay for `attempt` (0-based), advancing the
  /// jitter stream.
  double next_backoff_ms(int attempt);

  std::string host_;
  int port_;
  ClientOptions options_;
  std::uint64_t jitter_state_ = 0;
  bool jitter_seeded_ = false;
  long retries_used_ = 0;
  std::optional<HttpConnection> conn_;
};

}  // namespace statsize::serve
