// Minimal keep-alive HTTP client for the serve API — the plumbing behind
// `statsize submit/poll/cancel` and bench/serve_throughput. One Client owns
// one connection and reconnects transparently when the daemon closed it
// (idle timeout, error response with Connection: close).

#pragma once

#include <optional>
#include <string>

#include "serve/http.h"
#include "util/json.h"

namespace statsize::serve {

/// Response body + status from one API exchange.
struct ApiResult {
  int status = 0;
  std::string body;

  bool ok() const { return status >= 200 && status < 300; }

  /// Parses the body (daemon responses are always JSON).
  util::JsonValue json() const { return util::parse_json(body); }
};

class Client {
 public:
  /// Lazy: connects on the first request.
  Client(std::string host, int port) : host_(std::move(host)), port_(port) {}

  /// One round trip; throws std::runtime_error on transport failure (after
  /// one reconnect attempt — the daemon may have dropped an idle keep-alive).
  ApiResult request(const std::string& method, const std::string& target,
                    const std::string& body = "");

  // -- Typed wrappers over the v1 API --

  /// Upload circuit text; returns the cache key.
  std::string upload(const std::string& text, const std::string& format,
                     const std::string& name = "");

  /// Submit a job; `body_json` is the full POST /v1/jobs body. Returns the
  /// job id. Throws on non-2xx (message includes the server's error body).
  std::string submit(const std::string& body_json);

  ApiResult job(const std::string& id) { return request("GET", "/v1/jobs/" + id); }
  ApiResult cancel(const std::string& id) { return request("DELETE", "/v1/jobs/" + id); }
  ApiResult stats() { return request("GET", "/v1/stats"); }

  /// Polls GET /v1/jobs/<id> every `poll_seconds` until the job leaves
  /// queued/running (or `timeout_seconds` elapses, 0 = forever). Returns the
  /// final job document.
  util::JsonValue wait(const std::string& id, double poll_seconds = 0.05,
                       double timeout_seconds = 0.0);

 private:
  void ensure_connected();

  std::string host_;
  int port_;
  std::optional<HttpConnection> conn_;
};

}  // namespace statsize::serve
