// serve::Metrics — the daemon's observability registry: monotonic counters,
// point-in-time gauges, and fixed-bucket latency histograms, all lock-free
// or small-mutex'd so the socket threads and the job executor can record
// without contending. GET /v1/stats serializes the whole registry as JSON.
//
// Wall-clock note: the repo's determinism contract bans clock reads on
// result paths (detlint DET002). Telemetry is the sanctioned exception, and
// serve::now() below is the single sanctioned wall-clock wrapper — detlint
// exempts `serve::now` sites under src/serve/ only; everything else in the
// daemon uses steady-clock durations (now_ms) or no clock at all.

#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "util/json.h"

namespace statsize::serve {

/// Unix wall-clock seconds — the one sanctioned wall-clock read in the
/// daemon (started_at / uptime in /v1/stats; never a result).
std::int64_t now();

/// Monotonic milliseconds on std::chrono::steady_clock, for durations
/// (queue wait, service time). Not wall-clock; safe anywhere.
double now_ms();

/// A monotonic counter (thread-safe).
class Counter {
 public:
  void inc(std::int64_t by = 1) { value_.fetch_add(by, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// A point-in-time gauge (thread-safe).
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void inc(std::int64_t by = 1) { value_.fetch_add(by, std::memory_order_relaxed); }
  void dec(std::int64_t by = 1) { value_.fetch_sub(by, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Latency histogram with log-spaced bucket bounds (milliseconds by
/// convention). Quantiles are estimated by linear interpolation inside the
/// winning bucket; exact count/sum/min/max ride along. A small mutex guards
/// recording — the daemon records a handful of samples per job, so
/// contention is negligible next to the work being timed.
class Histogram {
 public:
  Histogram();  ///< default bounds: 0.1 ms .. ~100 s, 4 buckets per decade

  void record(double value);

  std::int64_t count() const;
  double sum() const;
  double min() const;  ///< 0 when empty
  double max() const;
  /// Estimated p-quantile (p in [0, 1]); 0 when empty.
  double quantile(double p) const;

  /// {"count":..,"sum_ms":..,"min_ms":..,"max_ms":..,"p50_ms":..,...}
  void write_json(util::JsonWriter& w) const;

 private:
  std::vector<double> bounds_;          ///< upper bound per bucket (last = +inf)
  std::vector<std::int64_t> buckets_;
  std::int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  mutable std::mutex mu_;
};

/// The daemon's registry. Fixed, named members rather than a string-keyed
/// map: every metric the handlers touch is spelled out here, and write_json
/// is the single place that enumerates them.
struct Metrics {
  std::int64_t started_at_unix = 0;  ///< stamped by the server at start()

  // HTTP surface.
  Counter http_requests;
  Counter http_bad_requests;   ///< 4xx responses
  Counter http_server_errors;  ///< 5xx responses

  // Job lifecycle (counters are cumulative; state gauges are current).
  Counter jobs_submitted;
  Counter jobs_rejected;   ///< admission-queue overflow -> 429
  Counter jobs_completed;  ///< reached kDone (including kTimeLimit checkpoints)
  Counter jobs_cancelled;
  Counter jobs_failed;
  Counter jobs_deadline_checkpoints;  ///< size jobs returning a kTimeLimit checkpoint
  Gauge queue_depth;
  Gauge jobs_running;

  // Circuit cache.
  Counter cache_hits;
  Counter cache_misses;
  Counter cache_evictions;
  Gauge circuits_cached;

  // Robustness / crash-safety (DESIGN.md §13). Journal counters cover the
  // current process (records_replayed/truncated are stamped once at startup
  // recovery); fault counters are mirrored from the runtime::fault registry
  // at serialization time so /v1/stats reflects injected chaos live.
  Counter idempotent_dedup_hits;     ///< submissions answered from an existing job
  Counter journal_records_written;   ///< framed records durably appended
  Counter journal_records_replayed;  ///< records recovered by the startup scan
  Counter journal_truncated_bytes;   ///< torn-tail bytes discarded at startup
  Counter journal_write_errors;      ///< append failures (incl. injected torn writes)
  Counter jobs_recovered;            ///< queued/terminal jobs reinstalled at startup
  Counter jobs_interrupted;          ///< running-at-crash jobs surfaced as interrupted

  // Latency distributions (milliseconds).
  Histogram queue_wait_ms;
  Histogram service_ms;          ///< run time across all job types
  Histogram service_analysis_ms; ///< ssta | sta | monte_carlo
  Histogram service_sizing_ms;   ///< size

  /// Writes the full registry as one JSON object (counters, gauges,
  /// histograms with p50/p95/p99, uptime).
  void write_json(std::ostream& out) const;
};

}  // namespace statsize::serve
