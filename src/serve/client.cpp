#include "serve/client.h"

#include <chrono>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <thread>

namespace statsize::serve {

namespace {

/// SplitMix64 — the house deterministic generator (same idiom as the Monte
/// Carlo sampler). Never rand()/random_device: backoff jitter must be
/// reproducible from jitter_seed alone (detlint DET002).
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Uniform in [0, 1) from the top 53 bits.
double uniform01(std::uint64_t& state) {
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

double jittered_delay_ms(const ClientOptions& options, int attempt, std::uint64_t& state) {
  double base = options.backoff_ms * std::ldexp(1.0, attempt);  // backoff * 2^attempt
  if (base > options.backoff_cap_ms) base = options.backoff_cap_ms;
  // Jitter in [0.5, 1.0): decorrelates a client fleet without ever shrinking
  // the delay below half the deterministic envelope.
  return base * (0.5 + 0.5 * uniform01(state));
}

/// Parses a Retry-After header (delta-seconds form only); <0 when absent or
/// unparseable.
double retry_after_seconds(const HttpResponse& response) {
  const auto it = response.headers.find("retry-after");
  if (it == response.headers.end() || it->second.empty()) return -1.0;
  double value = 0.0;
  for (const char c : it->second) {
    if (c < '0' || c > '9') return -1.0;  // HTTP-date form: ignore, use backoff
    value = value * 10.0 + (c - '0');
  }
  return value;
}

}  // namespace

void Client::ensure_connected() {
  if (conn_ && conn_->valid()) return;
  conn_.emplace(connect_tcp(host_, port_, options_.recv_timeout_seconds,
                            options_.connect_timeout_seconds));
}

double Client::next_backoff_ms(int attempt) {
  if (!jitter_seeded_) {
    jitter_state_ = options_.jitter_seed;
    jitter_seeded_ = true;
  }
  return jittered_delay_ms(options_, attempt, jitter_state_);
}

std::vector<double> Client::backoff_schedule(const ClientOptions& options, int count) {
  std::vector<double> delays;
  delays.reserve(static_cast<std::size_t>(count < 0 ? 0 : count));
  std::uint64_t state = options.jitter_seed;
  for (int attempt = 0; attempt < count; ++attempt) {
    delays.push_back(jittered_delay_ms(options, attempt, state));
  }
  return delays;
}

ApiResult Client::request(const std::string& method, const std::string& target,
                          const std::string& body,
                          const std::map<std::string, std::string>& headers) {
  const std::string host_header = host_ + ":" + std::to_string(port_);
  // One free same-attempt reconnect on orderly close (the daemon reaped an
  // idle keep-alive — not a failure, no backoff); everything else consumes a
  // retry with backoff.
  bool free_reconnect = true;
  int attempt = 0;
  std::string last_error;
  for (;;) {
    try {
      ensure_connected();
    } catch (const std::exception& e) {
      last_error = e.what();
      if (attempt >= options_.retries) {
        throw std::runtime_error(method + " " + target + " failed: " + last_error);
      }
      ++retries_used_;
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(next_backoff_ms(attempt++)));
      continue;
    }
    bool wrote = conn_->write_request(method, target, body, host_header, headers);
    HttpResponse response;
    std::string error;
    ReadOutcome outcome = ReadOutcome::kError;
    if (wrote) outcome = conn_->read_response(&response, &error);

    if (wrote && outcome == ReadOutcome::kOk) {
      const auto it = response.headers.find("connection");
      if (it != response.headers.end() && it->second == "close") conn_.reset();
      const bool backpressure = response.status == 429 || response.status == 503;
      if (!backpressure || attempt >= options_.retries) {
        return ApiResult{response.status, std::move(response.body)};
      }
      // 429/503: the server told us to come back; honor its Retry-After when
      // present, capped by our own envelope so a hostile value cannot hang us.
      ++retries_used_;
      double delay_ms = next_backoff_ms(attempt++);
      const double server_seconds = retry_after_seconds(response);
      if (server_seconds >= 0.0) {
        delay_ms = server_seconds * 1000.0;
        if (delay_ms > options_.backoff_cap_ms) delay_ms = options_.backoff_cap_ms;
      }
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delay_ms));
      continue;
    }

    // Transport failure: stale keep-alive, reset, torn response, timeout.
    conn_.reset();
    if (free_reconnect && (!wrote || outcome == ReadOutcome::kClosed)) {
      free_reconnect = false;  // stale keep-alive: plain reconnect, no backoff
      continue;
    }
    last_error = error.empty() ? outcome_name(wrote ? outcome : ReadOutcome::kError)
                               : error;
    if (attempt >= options_.retries) {
      throw std::runtime_error(method + " " + target + " failed: " + last_error);
    }
    ++retries_used_;
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(next_backoff_ms(attempt++)));
  }
}

std::string Client::upload(const std::string& text, const std::string& format,
                           const std::string& name) {
  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_object();
  w.key("format").value(format);
  if (!name.empty()) w.key("name").value(name);
  w.key("text").value(text);
  w.end_object();
  ApiResult result = request("POST", "/v1/circuits", os.str());
  if (!result.ok()) {
    throw std::runtime_error("upload rejected (" + std::to_string(result.status) +
                             "): " + result.body);
  }
  return result.json().string_or("key", "");
}

std::string Client::submit(const std::string& body_json, const std::string& idempotency_key) {
  std::map<std::string, std::string> headers;
  if (!idempotency_key.empty()) headers["Idempotency-Key"] = idempotency_key;
  ApiResult result = request("POST", "/v1/jobs", body_json, headers);
  if (!result.ok()) {
    throw std::runtime_error("submit rejected (" + std::to_string(result.status) +
                             "): " + result.body);
  }
  return result.json().string_or("id", "");
}

util::JsonValue Client::wait(const std::string& id, double poll_seconds,
                             double timeout_seconds) {
  const auto start = std::chrono::steady_clock::now();
  for (;;) {
    ApiResult result = job(id);
    if (!result.ok()) {
      throw std::runtime_error("poll " + id + " failed (" +
                               std::to_string(result.status) + "): " + result.body);
    }
    util::JsonValue doc = result.json();
    const std::string state = doc.string_or("state", "");
    if (state != "queued" && state != "running") return doc;
    if (timeout_seconds > 0.0) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
      if (elapsed > timeout_seconds) {
        throw std::runtime_error("timed out waiting for " + id + " (state " + state + ")");
      }
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(poll_seconds));
  }
}

}  // namespace statsize::serve
