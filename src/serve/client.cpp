#include "serve/client.h"

#include <chrono>
#include <sstream>
#include <stdexcept>
#include <thread>

namespace statsize::serve {

void Client::ensure_connected() {
  if (conn_ && conn_->valid()) return;
  conn_.emplace(connect_tcp(host_, port_));
}

ApiResult Client::request(const std::string& method, const std::string& target,
                          const std::string& body) {
  const std::string host_header = host_ + ":" + std::to_string(port_);
  for (int attempt = 0; attempt < 2; ++attempt) {
    ensure_connected();
    if (!conn_->write_request(method, target, body, host_header)) {
      conn_.reset();  // stale keep-alive; reconnect once
      continue;
    }
    HttpResponse response;
    std::string error;
    const ReadOutcome outcome = conn_->read_response(&response, &error);
    if (outcome == ReadOutcome::kOk) {
      auto it = response.headers.find("connection");
      if (it != response.headers.end() && it->second == "close") conn_.reset();
      return ApiResult{response.status, std::move(response.body)};
    }
    conn_.reset();
    if (outcome != ReadOutcome::kClosed || attempt == 1) {
      throw std::runtime_error(method + " " + target + " failed: " +
                               (error.empty() ? outcome_name(outcome) : error));
    }
  }
  throw std::runtime_error(method + " " + target + " failed: connection dropped");
}

std::string Client::upload(const std::string& text, const std::string& format,
                           const std::string& name) {
  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_object();
  w.key("format").value(format);
  if (!name.empty()) w.key("name").value(name);
  w.key("text").value(text);
  w.end_object();
  ApiResult result = request("POST", "/v1/circuits", os.str());
  if (!result.ok()) {
    throw std::runtime_error("upload rejected (" + std::to_string(result.status) +
                             "): " + result.body);
  }
  return result.json().string_or("key", "");
}

std::string Client::submit(const std::string& body_json) {
  ApiResult result = request("POST", "/v1/jobs", body_json);
  if (!result.ok()) {
    throw std::runtime_error("submit rejected (" + std::to_string(result.status) +
                             "): " + result.body);
  }
  return result.json().string_or("id", "");
}

util::JsonValue Client::wait(const std::string& id, double poll_seconds,
                             double timeout_seconds) {
  const auto start = std::chrono::steady_clock::now();
  for (;;) {
    ApiResult result = job(id);
    if (!result.ok()) {
      throw std::runtime_error("poll " + id + " failed (" +
                               std::to_string(result.status) + "): " + result.body);
    }
    util::JsonValue doc = result.json();
    const std::string state = doc.string_or("state", "");
    if (state != "queued" && state != "running") return doc;
    if (timeout_seconds > 0.0) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
      if (elapsed > timeout_seconds) {
        throw std::runtime_error("timed out waiting for " + id + " (state " + state + ")");
      }
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(poll_seconds));
  }
}

}  // namespace statsize::serve
