// Hand-rolled blocking-socket HTTP/1.1 plumbing for `statsize serve` — no
// dependencies, POSIX sockets only. Scope is deliberately narrow: requests
// and responses with Content-Length bodies (no chunked transfer, no TLS),
// keep-alive by default, case-insensitive headers, and hard limits on header
// and body sizes so a hostile peer cannot balloon the daemon.
//
// The same buffered-connection type serves both sides: the server reads
// requests and writes responses; the client (tools/statsize submit, the
// throughput bench) writes requests and reads responses.

#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>

namespace statsize::serve {

struct HttpLimits {
  std::size_t max_header_bytes = 64 * 1024;
  std::size_t max_body_bytes = 32u * 1024 * 1024;
};

struct HttpRequest {
  std::string method;   ///< uppercase, e.g. "POST"
  std::string target;   ///< origin-form, e.g. "/v1/jobs/job-000001"
  std::string version;  ///< "HTTP/1.1"
  std::map<std::string, std::string> headers;  ///< keys lowercased
  std::string body;

  /// Header lookup by lowercase name; empty string when absent.
  std::string_view header(const std::string& lowercase_name) const;

  /// True when the peer asked to close after this exchange.
  bool wants_close() const;
};

struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  std::map<std::string, std::string> headers;  ///< written as-is (plus Content-Length)
  std::string body;

  static HttpResponse json(int status, std::string body);
};

enum class ReadOutcome {
  kOk,        ///< one complete message parsed
  kClosed,    ///< orderly EOF before any bytes of a new message
  kTimeout,   ///< recv timed out (SO_RCVTIMEO) with no complete message yet
  kTooLarge,  ///< header or body limit exceeded
  kMalformed, ///< unparseable message (error string has details)
  kError,     ///< socket error
};

const char* outcome_name(ReadOutcome outcome);

/// Reason phrase for the handful of status codes the server emits.
const char* reason_phrase(int status);

/// A connected socket with a read buffer, usable for pipelined keep-alive
/// exchanges. Owns the fd (closed on destruction). Move-only.
class HttpConnection {
 public:
  explicit HttpConnection(int fd) : fd_(fd) {}
  ~HttpConnection() { close_fd(); }

  HttpConnection(HttpConnection&& other) noexcept;
  HttpConnection& operator=(HttpConnection&& other) noexcept;
  HttpConnection(const HttpConnection&) = delete;
  HttpConnection& operator=(const HttpConnection&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void close_fd();

  /// Reads one full request (server side). On kMalformed, `error` (if
  /// non-null) carries a human-readable reason for the 400.
  ReadOutcome read_request(HttpRequest* out, std::string* error, const HttpLimits& limits = {});

  /// Reads one full response (client side).
  ReadOutcome read_response(HttpResponse* out, std::string* error, const HttpLimits& limits = {});

  /// Serializes and sends a response; adds Content-Length and Connection
  /// headers. Returns false on socket error.
  bool write_response(const HttpResponse& response, bool keep_alive);

  /// Serializes and sends a request with a Content-Length body. `headers`
  /// are written as-is after Host (e.g. {"Idempotency-Key", "..."}).
  bool write_request(const std::string& method, const std::string& target,
                     const std::string& body, const std::string& host,
                     const std::map<std::string, std::string>& headers = {});

 private:
  bool write_all(std::string_view bytes);
  /// Grows buf_ by one recv; translates errno into an outcome.
  ReadOutcome fill();
  /// Parses a complete head+body message out of buf_ if present.
  ReadOutcome try_parse(bool is_request, HttpRequest* request, HttpResponse* response,
                        std::string* error, const HttpLimits& limits, bool* complete);
  ReadOutcome read_message(bool is_request, HttpRequest* request, HttpResponse* response,
                           std::string* error, const HttpLimits& limits);

  int fd_ = -1;
  std::string buf_;  ///< received, not-yet-consumed bytes
};

/// Connects to 127.0.0.1:`port` (or `host`); throws std::runtime_error on
/// failure. `recv_timeout_seconds` sets SO_RCVTIMEO (0 = blocking forever);
/// `connect_timeout_seconds` bounds the connect() handshake itself via a
/// non-blocking connect + poll (0 = OS default).
HttpConnection connect_tcp(const std::string& host, int port, double recv_timeout_seconds = 0.0,
                           double connect_timeout_seconds = 0.0);

}  // namespace statsize::serve
