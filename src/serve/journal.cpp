#include "serve/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "runtime/fault.h"
#include "serve/circuit_cache.h"

namespace statsize::serve {

namespace {

constexpr char kMagic[] = "SJ1 ";
constexpr std::size_t kMagicLen = 4;

std::string hex16(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(value));
  return std::string(buf, 16);
}

/// Frames one payload: "SJ1 <len> <hex16> <payload>\n".
std::string frame(const std::string& payload) {
  std::string out;
  out.reserve(payload.size() + 32);
  out += kMagic;
  out += std::to_string(payload.size());
  out += ' ';
  out += hex16(fnv1a64(payload));
  out += ' ';
  out += payload;
  out += '\n';
  return out;
}

/// Attempts to parse one frame at `data[pos..]`. On success fills `payload`
/// and `next` (offset just past the trailing '\n') and returns true; any
/// short, malformed, or checksum-mismatched frame returns false (the caller
/// treats everything from `pos` on as torn tail).
bool parse_frame(const std::string& data, std::size_t pos, std::string* payload,
                 std::size_t* next) {
  if (data.size() - pos < kMagicLen || data.compare(pos, kMagicLen, kMagic) != 0) {
    return false;
  }
  std::size_t p = pos + kMagicLen;
  // Decimal payload length.
  std::size_t len = 0;
  std::size_t digits = 0;
  while (p < data.size() && data[p] >= '0' && data[p] <= '9') {
    len = len * 10 + static_cast<std::size_t>(data[p] - '0');
    ++p;
    if (++digits > 12) return false;  // absurd length: corrupt
  }
  if (digits == 0 || p >= data.size() || data[p] != ' ') return false;
  ++p;
  if (data.size() - p < 16) return false;
  std::uint64_t want = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    const char c = data[p + i];
    std::uint64_t nibble;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
    want = (want << 4) | nibble;
  }
  p += 16;
  if (p >= data.size() || data[p] != ' ') return false;
  ++p;
  if (data.size() - p < len + 1) return false;  // payload + trailing '\n'
  if (data[p + len] != '\n') return false;
  const std::string_view body(data.data() + p, len);
  if (fnv1a64(body) != want) return false;
  payload->assign(body);
  *next = p + len + 1;
  return true;
}

}  // namespace

FsyncPolicy parse_fsync_policy(const std::string& name) {
  if (name == "none") return FsyncPolicy::kNone;
  if (name == "always") return FsyncPolicy::kAlways;
  throw std::invalid_argument("unknown fsync policy '" + name +
                              "' (expected 'none' or 'always')");
}

Journal::Journal(JournalOptions options) : options_(std::move(options)) {
  if (options_.dir.empty()) {
    throw std::runtime_error("journal: directory must not be empty");
  }
  if (::mkdir(options_.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    throw std::runtime_error("journal: cannot create directory '" + options_.dir +
                             "': " + std::strerror(errno));
  }
  path_ = options_.dir + "/journal.jsonl";
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("journal: cannot open '" + path_ +
                             "': " + std::strerror(errno));
  }

  // Startup scan: read the whole file, parse records front to back, truncate
  // anything after the last valid frame (the torn tail of a crashed append).
  std::string data;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd_);
      throw std::runtime_error("journal: cannot read '" + path_ +
                               "': " + std::strerror(errno));
    }
    if (n == 0) break;
    data.append(buf, static_cast<std::size_t>(n));
  }
  std::size_t pos = 0;
  std::string payload;
  std::size_t next = 0;
  while (pos < data.size() && parse_frame(data, pos, &payload, &next)) {
    Record record;
    record.doc = util::parse_json(payload);
    record.kind = record.doc.string_or("kind", "");
    replay_.push_back(std::move(record));
    pos = next;
  }
  good_offset_ = static_cast<std::int64_t>(pos);
  truncated_bytes_ = static_cast<std::int64_t>(data.size() - pos);
  if (truncated_bytes_ > 0) {
    if (::ftruncate(fd_, good_offset_) != 0) {
      ::close(fd_);
      throw std::runtime_error("journal: cannot truncate torn tail of '" + path_ +
                               "': " + std::strerror(errno));
    }
  }
  file_size_ = good_offset_;
}

Journal::~Journal() {
  if (fd_ >= 0) ::close(fd_);
}

void Journal::repair_tail_locked() {
  if (file_size_ == good_offset_) return;
  if (::ftruncate(fd_, good_offset_) != 0) {
    throw JournalWriteError("journal: cannot repair torn tail of '" + path_ +
                            "': " + std::strerror(errno));
  }
  file_size_ = good_offset_;
}

void Journal::append(const std::string& payload) {
  const std::string framed = frame(payload);
  const std::lock_guard<std::mutex> lock(mu_);
  repair_tail_locked();

  std::size_t write_len = framed.size();
  bool torn = false;
  if (runtime::fault::hit(runtime::fault::kServeJournalWrite)) {
    // Torn write: a prefix of the frame reaches the file, then the write
    // "fails". Half the frame always cuts inside the payload or header, so
    // replay sees an unparseable tail.
    write_len = framed.size() / 2;
    torn = true;
  }

  std::size_t written = 0;
  while (written < write_len) {
    const ssize_t n = ::pwrite(fd_, framed.data() + written, write_len - written,
                               static_cast<off_t>(good_offset_) +
                                   static_cast<off_t>(written));
    if (n < 0) {
      if (errno == EINTR) continue;
      file_size_ = good_offset_ + static_cast<std::int64_t>(written);
      throw JournalWriteError("journal: write to '" + path_ +
                              "' failed: " + std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  file_size_ = good_offset_ + static_cast<std::int64_t>(written);
  if (torn) {
    throw JournalWriteError("journal: injected torn write (serve.journal.write) on '" +
                            path_ + "'");
  }
  good_offset_ = file_size_;
  ++records_written_;
  if (options_.fsync == FsyncPolicy::kAlways) {
    if (::fsync(fd_) != 0) {
      throw JournalWriteError("journal: fsync of '" + path_ +
                              "' failed: " + std::strerror(errno));
    }
  }
}

std::int64_t Journal::records_written() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return records_written_;
}

}  // namespace statsize::serve
