// Keyed cache of finalized circuits — the artifact `statsize serve` amortizes
// across requests. An upload parses + finalizes once (BLIF/Verilog text →
// Circuit + compiled TimingView + granularity advice); every subsequent job
// against the same content hash reuses the entry with a shared-lock lookup.
//
// A PATCH /v1/circuits/<key> creates a *derived* entry (DESIGN.md §12): it
// shares the base entry's Circuit (and its parse work) but owns an edited
// TimingView copy plus the per-gate speed overrides; its key is the base key
// extended with a content hash of the edits, so identical edit sets dedupe
// exactly like identical uploads.
//
// Concurrency contract:
//  * find() takes a shared lock and bumps an atomic recency stamp — readers
//    never serialize on each other.
//  * insert() takes the exclusive lock, evicts the least-recently-used entry
//    when at capacity, and is idempotent on key collision (the existing
//    entry wins, so two concurrent uploads of the same text agree).
//  * Entries are handed out as shared_ptr<const CachedCircuit>: eviction
//    only drops the cache's reference, so a queued/running job keeps its
//    circuit alive regardless of cache churn. A derived entry keeps its base
//    alive the same way (the `base` edge).

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/sizer.h"
#include "netlist/circuit.h"
#include "netlist/timing_view.h"

namespace statsize::serve {

/// One finalized upload (or a PATCH-derived edit of one). Immutable after
/// construction apart from the recency stamp and the sizing warm-start memo.
struct CachedCircuit {
  std::string key;     ///< "c-<fnv1a64 hex>"; derived: "<base>+e-<hex>"
  std::string name;    ///< client-supplied label (may be empty)
  std::string format;  ///< "blif" | "verilog"
  std::shared_ptr<const netlist::Circuit> circuit;

  // Metadata captured at upload so GET responses never re-walk the netlist.
  int num_gates = 0;
  int num_inputs = 0;
  int num_outputs = 0;
  int depth = 0;
  std::size_t num_levels = 0;

  /// Level-width cutoff advised by analyze::advise_granularity at upload;
  /// the scheduler installs it (runtime::set_level_serial_cutoff) before
  /// running jobs on this circuit so small cached circuits stop paying pool
  /// dispatch per request.
  std::size_t serial_cutoff = 0;

  // ---- Derived (PATCH-created) entries only ----
  /// The entry this one was patched from; keeps it (and its warm-start memo)
  /// alive across cache eviction. Null for plain uploads.
  std::shared_ptr<const CachedCircuit> base;
  /// Edited TimingView copy (delay-model constants already applied via
  /// update_node_params). Null for plain uploads — jobs fall back to the
  /// shared circuit's view.
  std::shared_ptr<const netlist::TimingView> patched_view;
  /// Per-gate speed-factor overrides, applied on top of the uniform
  /// `params.speed` fill for analysis jobs (first-edit order; later PATCHes
  /// of the same node appear later and win). Speed is a per-query quantity,
  /// not TimingView state, so the overrides travel with the entry.
  std::vector<std::pair<netlist::NodeId, double>> speed_edits;
  std::size_t num_edits = 0;  ///< total edit records folded into this entry

  /// The view every job on this entry computes against.
  const netlist::TimingView& timing_view() const {
    return patched_view ? *patched_view : circuit->view();
  }

  /// Last successful reduced-space sizing's carry-over state on this entry —
  /// what a derived entry's size job warm-starts from (DESIGN.md §12).
  void store_warm(std::shared_ptr<const core::SizingWarmStart> w) const {
    std::lock_guard<std::mutex> lock(warm_mu_);
    warm_ = std::move(w);
  }
  std::shared_ptr<const core::SizingWarmStart> last_warm() const {
    std::lock_guard<std::mutex> lock(warm_mu_);
    return warm_;
  }
  /// This entry's memo, else the nearest ancestor's (a freshly PATCHed entry
  /// has no solve of its own yet — the parent's multipliers are the warm
  /// start the ECO resize wants). Null when nothing along the chain sized.
  std::shared_ptr<const core::SizingWarmStart> resolve_warm() const {
    for (const CachedCircuit* e = this; e != nullptr; e = e->base.get()) {
      if (auto w = e->last_warm()) return w;
    }
    return nullptr;
  }

  mutable std::atomic<std::uint64_t> last_used{0};

 private:
  mutable std::mutex warm_mu_;
  mutable std::shared_ptr<const core::SizingWarmStart> warm_;
};

/// FNV-1a 64-bit over `text` — the content-hash half of a cache key.
std::uint64_t fnv1a64(std::string_view text);

/// "c-" + 16 lowercase hex digits of fnv1a64(format + '\n' + text).
std::string circuit_key(std::string_view format, std::string_view text);

class CircuitCache {
 public:
  /// `capacity` >= 1 entries.
  explicit CircuitCache(std::size_t capacity);

  /// Shared-lock lookup; bumps recency. nullptr on miss.
  std::shared_ptr<const CachedCircuit> find(const std::string& key);

  struct InsertResult {
    std::shared_ptr<const CachedCircuit> entry;  ///< the cached entry (existing on collision)
    bool existed = false;                        ///< key was already cached
    std::size_t evicted = 0;                     ///< entries dropped to make room
  };

  /// Exclusive-lock insert-or-get.
  InsertResult insert(std::shared_ptr<const CachedCircuit> entry);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

  /// Snapshot of the cached entries (for /v1/circuits listing), most
  /// recently used first.
  std::vector<std::shared_ptr<const CachedCircuit>> snapshot() const;

 private:
  const std::size_t capacity_;
  mutable std::shared_mutex mu_;
  std::map<std::string, std::shared_ptr<const CachedCircuit>> entries_;
  std::atomic<std::uint64_t> clock_{0};  ///< recency stamps (monotonic, not wall time)
};

}  // namespace statsize::serve
