// Keyed cache of finalized circuits — the artifact `statsize serve` amortizes
// across requests. An upload parses + finalizes once (BLIF/Verilog text →
// Circuit + compiled TimingView + granularity advice); every subsequent job
// against the same content hash reuses the entry with a shared-lock lookup.
//
// Concurrency contract:
//  * find() takes a shared lock and bumps an atomic recency stamp — readers
//    never serialize on each other.
//  * insert() takes the exclusive lock, evicts the least-recently-used entry
//    when at capacity, and is idempotent on key collision (the existing
//    entry wins, so two concurrent uploads of the same text agree).
//  * Entries are handed out as shared_ptr<const CachedCircuit>: eviction
//    only drops the cache's reference, so a queued/running job keeps its
//    circuit alive regardless of cache churn.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/circuit.h"

namespace statsize::serve {

/// One finalized upload. Immutable after construction apart from the
/// recency stamp.
struct CachedCircuit {
  std::string key;     ///< "c-<fnv1a64 hex>" content hash
  std::string name;    ///< client-supplied label (may be empty)
  std::string format;  ///< "blif" | "verilog"
  std::shared_ptr<const netlist::Circuit> circuit;

  // Metadata captured at upload so GET responses never re-walk the netlist.
  int num_gates = 0;
  int num_inputs = 0;
  int num_outputs = 0;
  int depth = 0;
  std::size_t num_levels = 0;

  /// Level-width cutoff advised by analyze::advise_granularity at upload;
  /// the scheduler installs it (runtime::set_level_serial_cutoff) before
  /// running jobs on this circuit so small cached circuits stop paying pool
  /// dispatch per request.
  std::size_t serial_cutoff = 0;

  mutable std::atomic<std::uint64_t> last_used{0};
};

/// FNV-1a 64-bit over `text` — the content-hash half of a cache key.
std::uint64_t fnv1a64(std::string_view text);

/// "c-" + 16 lowercase hex digits of fnv1a64(format + '\n' + text).
std::string circuit_key(std::string_view format, std::string_view text);

class CircuitCache {
 public:
  /// `capacity` >= 1 entries.
  explicit CircuitCache(std::size_t capacity);

  /// Shared-lock lookup; bumps recency. nullptr on miss.
  std::shared_ptr<const CachedCircuit> find(const std::string& key);

  struct InsertResult {
    std::shared_ptr<const CachedCircuit> entry;  ///< the cached entry (existing on collision)
    bool existed = false;                        ///< key was already cached
    std::size_t evicted = 0;                     ///< entries dropped to make room
  };

  /// Exclusive-lock insert-or-get.
  InsertResult insert(std::shared_ptr<const CachedCircuit> entry);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

  /// Snapshot of the cached entries (for /v1/circuits listing), most
  /// recently used first.
  std::vector<std::shared_ptr<const CachedCircuit>> snapshot() const;

 private:
  const std::size_t capacity_;
  mutable std::shared_mutex mu_;
  std::map<std::string, std::shared_ptr<const CachedCircuit>> entries_;
  std::atomic<std::uint64_t> clock_{0};  ///< recency stamps (monotonic, not wall time)
};

}  // namespace statsize::serve
