// Durable append-only job journal for `statsize serve --journal <dir>` —
// the crash-safety substrate of DESIGN.md §13.
//
// The journal is one file (<dir>/journal.jsonl) of length+checksum framed
// JSON records:
//
//   SJ1 <payload-bytes> <fnv1a64-hex16> <payload>\n
//
// The decimal length makes the framing self-delimiting even when a payload
// carries embedded newlines (job results are pretty-printed JSON); the
// checksum makes a torn or bit-rotted tail detectable. Replay walks records
// front to back and stops at the first frame that is short, malformed, or
// checksum-mismatched: everything before it is trusted, everything from its
// start offset on is truncated away (a torn tail is the expected artifact of
// a crash mid-append, never an error).
//
// Record payloads are JSON objects with a "kind" discriminator:
//   circuit  — a fresh upload (key, format, name, text) so recovery can
//              rebuild the cache without re-uploads
//   patch    — a PATCH-derived entry (base key, derived key, edits) replayed
//              against the recovered base
//   admit    — job admission (id, type, circuit key, idempotency key, params)
//   start    — the executor picked the job up
//   end      — terminal transition (state done|cancelled|failed, result or
//              error)
//
// Write durability is a policy knob: kNone trusts the page cache (fast, loses
// the last instants of work on power failure but never corrupts — the frame
// checksums catch partial flushes), kAlways fsyncs after every record (what
// an admission ack should mean on a box that can lose power).
//
// Torn-write injection: the `serve.journal.write` fault site makes one append
// write only a prefix of its frame and then fail (JournalWriteError). The
// journal repairs its tail before the next append (the torn bytes are
// overwritten/truncated), modeling a write error the process survived; a
// crash right after the torn write leaves the torn tail for replay to
// truncate, modeling a crash mid-append.

#pragma once

#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/json.h"

namespace statsize::serve {

/// Thrown by Journal::append when the write fails (injected torn write or a
/// real I/O error). The admission path maps it to a 503 so the client retries
/// against an un-acknowledged, un-journaled submission — nothing is lost.
class JournalWriteError : public std::runtime_error {
 public:
  explicit JournalWriteError(const std::string& what) : std::runtime_error(what) {}
};

enum class FsyncPolicy {
  kNone,    ///< rely on the page cache; checksums catch partial flushes
  kAlways,  ///< fsync after every record: an ack means durable
};

/// Parses "none" | "always"; throws std::invalid_argument otherwise.
FsyncPolicy parse_fsync_policy(const std::string& name);

struct JournalOptions {
  std::string dir;  ///< journal directory (created if absent)
  FsyncPolicy fsync = FsyncPolicy::kNone;
};

class Journal {
 public:
  /// One replayed record: the parsed payload plus its "kind" discriminator.
  struct Record {
    std::string kind;
    util::JsonValue doc;
  };

  /// Opens (creating dir/file as needed) and scans the existing journal:
  /// valid records are parsed into replay(), a torn/corrupt tail is truncated
  /// in place (truncated_bytes() reports how much). Throws std::runtime_error
  /// when the directory or file cannot be created/opened.
  explicit Journal(JournalOptions options);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Appends one framed record; `payload` must be a JSON object with a
  /// "kind" member (not re-validated here — writers are trusted code).
  /// Thread-safe. Throws JournalWriteError on write failure (including the
  /// injected serve.journal.write torn write); the tail is repaired on the
  /// next append.
  void append(const std::string& payload);

  /// Records recovered by the startup scan, in file order.
  const std::vector<Record>& replay() const { return replay_; }

  /// Bytes of torn/corrupt tail discarded by the startup scan (0 = clean).
  std::int64_t truncated_bytes() const { return truncated_bytes_; }

  /// Records appended (successfully) since open.
  std::int64_t records_written() const;

  const std::string& path() const { return path_; }

 private:
  void repair_tail_locked();

  const JournalOptions options_;
  std::string path_;
  int fd_ = -1;

  mutable std::mutex mu_;
  std::int64_t good_offset_ = 0;  ///< file is valid exactly up to here
  std::int64_t file_size_ = 0;    ///< current physical size (>= good_offset_ after a torn write)
  std::int64_t records_written_ = 0;

  std::vector<Record> replay_;
  std::int64_t truncated_bytes_ = 0;
};

}  // namespace statsize::serve
