// The `statsize serve` daemon: a blocking-socket HTTP/1.1 front end over the
// CircuitCache and JobScheduler.
//
//   POST   /v1/circuits        upload BLIF/Verilog text -> content-hash key
//   GET    /v1/circuits        list cached circuits (most recently used first)
//   PATCH  /v1/circuits/<key>  ECO edit -> derived entry sharing the base
//                              circuit (key = "<base>+e-<edit hash>")
//   POST   /v1/jobs            submit ssta | sta | monte_carlo | size; a JSON
//                              array batches jobs atomically (all queued in
//                              order, or one 429 and none queued)
//   GET    /v1/jobs/<id>       poll state + result
//   DELETE /v1/jobs/<id>       cooperative cancel
//   GET    /v1/stats           serve::Metrics as JSON
//   GET    /v1/healthz         liveness (200 even while draining)
//   GET    /v1/readyz          readiness: 503 + Retry-After once draining
//
// Crash safety (DESIGN.md §13): with ServerOptions::journal_dir set, every
// upload/patch/admission/transition is appended to a durable journal before
// it is acknowledged, and start() replays the journal — circuits re-parsed
// through the same upload path, queued-at-crash jobs re-admitted in original
// order, running-at-crash jobs surfaced as `interrupted`. POST /v1/jobs
// honors an Idempotency-Key header so client retries never double-submit.
//
// Threading: one accept thread (SO_RCVTIMEO-paced so stop() is prompt) feeds
// a bounded fd queue; `io_threads` workers each own one connection at a time
// for its keep-alive lifetime. Compute stays on the JobScheduler's single
// executor (see scheduler.h for why), so socket concurrency never races the
// process-global CancelScope chain.

#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/circuit_cache.h"
#include "serve/http.h"
#include "serve/metrics.h"
#include "serve/scheduler.h"
#include "util/json.h"

namespace statsize::serve {

struct ServerOptions {
  int port = 0;          ///< 0 = ephemeral (read the bound port via port())
  int io_threads = 8;    ///< concurrent keep-alive connections served
  std::size_t cache_capacity = 16;
  SchedulerOptions scheduler;
  HttpLimits limits;
  /// Per-recv timeout on accepted sockets; bounds how long stop() waits for
  /// an idle keep-alive connection to notice shutdown.
  double io_recv_timeout_seconds = 0.2;
  /// Non-empty enables the durable job journal (created under this dir) and
  /// startup recovery replay from any journal already there.
  std::string journal_dir;
  FsyncPolicy journal_fsync = FsyncPolicy::kNone;
};

class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds 127.0.0.1:<port>, starts the scheduler, accept thread, and IO
  /// workers. Throws std::runtime_error when the port cannot be bound.
  void start();

  /// Bound port (valid after start(); the interesting case is port 0).
  int port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Stops accepting, drains IO workers, cancels queued + running jobs,
  /// joins everything. Idempotent.
  void stop();

  /// Marks the server draining: /v1/readyz starts answering 503 +
  /// Retry-After while /v1/healthz stays 200 and in-flight work proceeds.
  /// Called by the CLI's SIGINT/SIGTERM handler path ahead of stop() so load
  /// balancers stop routing before the listener goes away.
  void begin_drain() { draining_.store(true, std::memory_order_release); }
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// The journal, when enabled (valid after start()); tests use it to
  /// inspect replay/truncation counters.
  Journal* journal() { return journal_.get(); }

  Metrics& metrics() { return metrics_; }
  CircuitCache& cache() { return cache_; }
  JobScheduler& scheduler() { return scheduler_; }

  /// Pure request dispatch (no sockets) — what the IO workers call, exposed
  /// so tests can exercise routing without a live connection.
  HttpResponse handle(const HttpRequest& request);

 private:
  void accept_loop();
  void io_loop();
  void serve_connection(int fd);
  /// Startup recovery: replays the opened journal's records — circuit/patch
  /// bodies re-driven through the upload/patch handlers (replaying_ set so
  /// they do not re-journal), jobs reconstructed and handed to
  /// JobScheduler::restore. Runs before any thread exists.
  void recover_from_journal();
  /// Appends a circuit/patch journal record carrying the raw request body
  /// (replay re-drives it through the same handler). False → `*error` holds
  /// the ready 503 and nothing may be inserted into the cache.
  bool journal_upload_record(const char* kind, const std::string& base,
                             const std::string& body, HttpResponse* error);

  HttpResponse handle_upload(const HttpRequest& request);
  HttpResponse handle_list_circuits();
  HttpResponse handle_patch(const HttpRequest& request, const std::string& key);
  HttpResponse handle_submit(const HttpRequest& request);
  HttpResponse handle_submit_batch(const util::JsonValue& body);
  /// Parses one job-request object (a whole POST /v1/jobs body or one batch
  /// element) into `out`. False → `*error` is the ready 4xx response.
  bool parse_job_request(const util::JsonValue& body, JobScheduler::JobRequest* out,
                         HttpResponse* error);
  HttpResponse handle_job_get(const std::string& id);
  HttpResponse handle_job_delete(const std::string& id);
  HttpResponse handle_stats();

  ServerOptions options_;
  Metrics metrics_;
  CircuitCache cache_;
  JobScheduler scheduler_;
  std::unique_ptr<Journal> journal_;
  bool replaying_ = false;  ///< true only inside recover_from_journal()

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};

  std::thread accept_thread_;
  std::vector<std::thread> io_threads_;

  std::mutex conn_mu_;
  std::condition_variable conn_cv_;
  std::deque<int> conn_queue_;
};

}  // namespace statsize::serve
