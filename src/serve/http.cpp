#include "serve/http.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "runtime/fault.h"

namespace statsize::serve {

namespace {

std::string lowercase(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Parses the header block `head` (request/status line + header lines, no
/// terminating blank line) into `headers` + the first line. Lines split on
/// '\n' with optional trailing '\r'.
bool parse_head(std::string_view head, std::string* first_line,
                std::map<std::string, std::string>* headers, std::string* error) {
  std::size_t pos = 0;
  bool first = true;
  while (pos <= head.size()) {
    const std::size_t eol = head.find('\n', pos);
    std::string_view line =
        eol == std::string_view::npos ? head.substr(pos) : head.substr(pos, eol - pos);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (first) {
      if (line.empty()) {
        *error = "empty start line";
        return false;
      }
      *first_line = std::string(line);
      first = false;
    } else if (!line.empty()) {
      const std::size_t colon = line.find(':');
      if (colon == std::string_view::npos) {
        *error = "header line without ':'";
        return false;
      }
      const std::string key = lowercase(trim(line.substr(0, colon)));
      if (key.empty()) {
        *error = "empty header name";
        return false;
      }
      (*headers)[key] = std::string(trim(line.substr(colon + 1)));
    }
    if (eol == std::string_view::npos) break;
    pos = eol + 1;
  }
  return !first;
}

bool parse_content_length(const std::map<std::string, std::string>& headers, std::size_t max_body,
                          std::size_t* length, std::string* error) {
  *length = 0;
  const auto it = headers.find("content-length");
  if (it == headers.end()) return true;
  const std::string& text = it->second;
  if (text.empty()) {
    *error = "empty Content-Length";
    return false;
  }
  std::size_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      *error = "non-numeric Content-Length '" + text + "'";
      return false;
    }
    value = value * 10 + static_cast<std::size_t>(c - '0');
    if (value > max_body) {
      *error = "Content-Length exceeds limit";
      return false;  // caller maps the error text to kTooLarge
    }
  }
  *length = value;
  return true;
}

}  // namespace

std::string_view HttpRequest::header(const std::string& lowercase_name) const {
  const auto it = headers.find(lowercase_name);
  return it == headers.end() ? std::string_view() : std::string_view(it->second);
}

bool HttpRequest::wants_close() const { return lowercase(header("connection")) == "close"; }

HttpResponse HttpResponse::json(int status, std::string body) {
  HttpResponse r;
  r.status = status;
  r.reason = reason_phrase(status);
  r.headers["Content-Type"] = "application/json";
  r.body = std::move(body);
  return r;
}

const char* outcome_name(ReadOutcome outcome) {
  switch (outcome) {
    case ReadOutcome::kOk: return "ok";
    case ReadOutcome::kClosed: return "closed";
    case ReadOutcome::kTimeout: return "timeout";
    case ReadOutcome::kTooLarge: return "too-large";
    case ReadOutcome::kMalformed: return "malformed";
    case ReadOutcome::kError: return "error";
  }
  return "?";
}

const char* reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Status";
  }
}

HttpConnection::HttpConnection(HttpConnection&& other) noexcept
    : fd_(other.fd_), buf_(std::move(other.buf_)) {
  other.fd_ = -1;
}

HttpConnection& HttpConnection::operator=(HttpConnection&& other) noexcept {
  if (this != &other) {
    close_fd();
    fd_ = other.fd_;
    buf_ = std::move(other.buf_);
    other.fd_ = -1;
  }
  return *this;
}

void HttpConnection::close_fd() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool HttpConnection::write_all(std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

ReadOutcome HttpConnection::fill() {
  char chunk[16384];
  const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
  if (n > 0) {
    buf_.append(chunk, static_cast<std::size_t>(n));
    return ReadOutcome::kOk;
  }
  if (n == 0) return ReadOutcome::kClosed;
  if (errno == EINTR) return ReadOutcome::kOk;  // retry on next loop
  if (errno == EAGAIN || errno == EWOULDBLOCK) return ReadOutcome::kTimeout;
  return ReadOutcome::kError;
}

ReadOutcome HttpConnection::try_parse(bool is_request, HttpRequest* request,
                                      HttpResponse* response, std::string* error,
                                      const HttpLimits& limits, bool* complete) {
  *complete = false;
  // Locate the end of the header block: CRLFCRLF or bare LFLF.
  std::size_t head_end = std::string::npos;
  std::size_t body_start = 0;
  const std::size_t crlf = buf_.find("\r\n\r\n");
  const std::size_t lflf = buf_.find("\n\n");
  if (crlf != std::string::npos && (lflf == std::string::npos || crlf < lflf)) {
    head_end = crlf;
    body_start = crlf + 4;
  } else if (lflf != std::string::npos) {
    head_end = lflf;
    body_start = lflf + 2;
  }
  if (head_end == std::string::npos) {
    if (buf_.size() > limits.max_header_bytes) return ReadOutcome::kTooLarge;
    return ReadOutcome::kOk;  // need more bytes
  }
  if (head_end > limits.max_header_bytes) return ReadOutcome::kTooLarge;

  std::string first_line;
  std::map<std::string, std::string> headers;
  std::string parse_error;
  if (!parse_head(std::string_view(buf_).substr(0, head_end), &first_line, &headers,
                  &parse_error)) {
    if (error != nullptr) *error = parse_error;
    return ReadOutcome::kMalformed;
  }
  if (headers.count("transfer-encoding") != 0) {
    if (error != nullptr) *error = "Transfer-Encoding is not supported (use Content-Length)";
    return ReadOutcome::kMalformed;
  }
  std::size_t content_length = 0;
  if (!parse_content_length(headers, limits.max_body_bytes, &content_length, &parse_error)) {
    if (parse_error == "Content-Length exceeds limit") return ReadOutcome::kTooLarge;
    if (error != nullptr) *error = parse_error;
    return ReadOutcome::kMalformed;
  }
  if (buf_.size() < body_start + content_length) return ReadOutcome::kOk;  // need more bytes

  // Split the start line.
  const std::size_t sp1 = first_line.find(' ');
  const std::size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                                   : first_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    if (error != nullptr) *error = "malformed start line '" + first_line + "'";
    return ReadOutcome::kMalformed;
  }
  if (is_request) {
    request->method = first_line.substr(0, sp1);
    request->target = first_line.substr(sp1 + 1, sp2 - sp1 - 1);
    request->version = first_line.substr(sp2 + 1);
    if (request->version.rfind("HTTP/1.", 0) != 0) {
      if (error != nullptr) *error = "unsupported protocol '" + request->version + "'";
      return ReadOutcome::kMalformed;
    }
    request->headers = std::move(headers);
    request->body = buf_.substr(body_start, content_length);
  } else {
    response->reason = first_line.substr(sp2 + 1);
    const std::string code = first_line.substr(sp1 + 1, sp2 - sp1 - 1);
    response->status = 0;
    for (const char c : code) {
      if (c < '0' || c > '9') {
        if (error != nullptr) *error = "non-numeric status '" + code + "'";
        return ReadOutcome::kMalformed;
      }
      response->status = response->status * 10 + (c - '0');
    }
    response->headers = std::move(headers);
    response->body = buf_.substr(body_start, content_length);
  }
  buf_.erase(0, body_start + content_length);
  *complete = true;
  return ReadOutcome::kOk;
}

ReadOutcome HttpConnection::read_message(bool is_request, HttpRequest* request,
                                         HttpResponse* response, std::string* error,
                                         const HttpLimits& limits) {
  while (true) {
    bool complete = false;
    const ReadOutcome parsed = try_parse(is_request, request, response, error, limits, &complete);
    if (parsed != ReadOutcome::kOk) return parsed;
    if (complete) return ReadOutcome::kOk;
    const ReadOutcome filled = fill();
    if (filled == ReadOutcome::kClosed) {
      // EOF between messages is an orderly close; EOF mid-message is not.
      if (buf_.empty()) return ReadOutcome::kClosed;
      if (error != nullptr) *error = "connection closed mid-message";
      return ReadOutcome::kMalformed;
    }
    if (filled != ReadOutcome::kOk) return filled;
  }
}

ReadOutcome HttpConnection::read_request(HttpRequest* out, std::string* error,
                                         const HttpLimits& limits) {
  *out = HttpRequest();
  return read_message(true, out, nullptr, error, limits);
}

ReadOutcome HttpConnection::read_response(HttpResponse* out, std::string* error,
                                          const HttpLimits& limits) {
  *out = HttpResponse();
  return read_message(false, nullptr, out, error, limits);
}

bool HttpConnection::write_response(const HttpResponse& response, bool keep_alive) {
  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " + response.reason +
                     "\r\n";
  for (const auto& [key, value] : response.headers) {
    head += key + ": " + value + "\r\n";
  }
  head += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  head += std::string("Connection: ") + (keep_alive ? "keep-alive" : "close") + "\r\n\r\n";
  if (runtime::fault::hit(runtime::fault::kServeWritePartial)) {
    // Injected torn response: send roughly half the serialized bytes, then
    // die. The peer sees a mid-message EOF (kMalformed), never a silently
    // truncated-but-parseable body — Content-Length guarantees that.
    const std::string full = head + response.body;
    write_all(std::string_view(full).substr(0, full.size() / 2));
    close_fd();
    return false;
  }
  return write_all(head) && write_all(response.body);
}

bool HttpConnection::write_request(const std::string& method, const std::string& target,
                                   const std::string& body, const std::string& host,
                                   const std::map<std::string, std::string>& headers) {
  std::string head = method + " " + target + " HTTP/1.1\r\nHost: " + host + "\r\n";
  for (const auto& [key, value] : headers) {
    head += key + ": " + value + "\r\n";
  }
  if (!body.empty()) head += "Content-Type: application/json\r\n";
  head += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  return write_all(head) && write_all(body);
}

HttpConnection connect_tcp(const std::string& host, int port, double recv_timeout_seconds,
                           double connect_timeout_seconds) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket(): " + std::string(std::strerror(errno)));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("invalid IPv4 address '" + host + "'");
  }
  if (connect_timeout_seconds > 0.0) {
    // Bounded handshake: non-blocking connect, poll for writability, then
    // read SO_ERROR and restore blocking mode.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      if (errno != EINPROGRESS) {
        const std::string err = std::strerror(errno);
        ::close(fd);
        throw std::runtime_error("connect to " + host + ":" + std::to_string(port) + ": " + err);
      }
      pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLOUT;
      const int timeout_ms = static_cast<int>(connect_timeout_seconds * 1000.0);
      const int ready = ::poll(&pfd, 1, timeout_ms < 1 ? 1 : timeout_ms);
      if (ready <= 0) {
        ::close(fd);
        throw std::runtime_error("connect to " + host + ":" + std::to_string(port) +
                                 ": timed out after " + std::to_string(connect_timeout_seconds) +
                                 "s");
      }
      int soerr = 0;
      socklen_t len = sizeof(soerr);
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len);
      if (soerr != 0) {
        const std::string err = std::strerror(soerr);
        ::close(fd);
        throw std::runtime_error("connect to " + host + ":" + std::to_string(port) + ": " + err);
      }
    }
    ::fcntl(fd, F_SETFL, flags);
  } else if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("connect to " + host + ":" + std::to_string(port) + ": " + err);
  }
  if (recv_timeout_seconds > 0.0) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(recv_timeout_seconds);
    tv.tv_usec = static_cast<suseconds_t>((recv_timeout_seconds - static_cast<double>(tv.tv_sec)) *
                                          1e6);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return HttpConnection(fd);
}

}  // namespace statsize::serve
