#include "serve/metrics.h"

#include <chrono>
#include <cmath>
#include <ctime>

#include "runtime/fault.h"

namespace statsize::serve {

std::int64_t now() {
  // The sanctioned serve::now wall-clock wrapper (telemetry only; DET002 is
  // allow-listed for `serve::now` sites under src/serve/ and nowhere else).
  return static_cast<std::int64_t>(std::time(nullptr));  // serve::now
}

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Histogram::Histogram() {
  // Log-spaced bounds, 4 per decade from 0.1 ms to 100 s: 0.1, 0.178, 0.316,
  // 0.562, 1, ... Upper bucket is open-ended.
  for (int decade = -1; decade <= 4; ++decade) {
    for (int step = 0; step < 4; ++step) {
      bounds_.push_back(std::pow(10.0, decade + step / 4.0));
    }
  }
  bounds_.push_back(std::pow(10.0, 5.0));
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::record(double value) {
  if (!(value >= 0.0)) value = 0.0;  // NaN/negative clamp: latency is never negative
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t b = 0;
  while (b < bounds_.size() && value > bounds_[b]) ++b;
  ++buckets_[b];
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  ++count_;
  sum_ += value;
}

std::int64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_;
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

double Histogram::quantile(double p) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  const double rank = p * static_cast<double>(count_ - 1);
  std::int64_t seen = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    if (buckets_[b] == 0) continue;
    const double first = static_cast<double>(seen);
    seen += buckets_[b];
    if (rank >= static_cast<double>(seen)) continue;
    // Interpolate inside bucket b between its bounds (clamped to observed
    // min/max so a single-bucket distribution reports sane numbers).
    const double lo_bound = b == 0 ? 0.0 : bounds_[b - 1];
    const double hi_bound = b < bounds_.size() ? bounds_[b] : max_;
    const double lo = lo_bound < min_ ? min_ : lo_bound;
    double hi = hi_bound > max_ ? max_ : hi_bound;
    if (hi < lo) hi = lo;
    const double width = static_cast<double>(buckets_[b]);
    const double frac = width <= 1.0 ? 0.5 : (rank - first) / (width - 1.0);
    return lo + frac * (hi - lo);
  }
  return max_;
}

void Histogram::write_json(util::JsonWriter& w) const {
  // Snapshot under the lock, then serialize without it.
  std::int64_t count;
  double sum;
  double mn;
  double mx;
  {
    std::lock_guard<std::mutex> lock(mu_);
    count = count_;
    sum = sum_;
    mn = min_;
    mx = max_;
  }
  w.begin_object();
  w.key("count").value(static_cast<long>(count));
  w.key("sum_ms").value(sum);
  w.key("min_ms").value(mn);
  w.key("max_ms").value(mx);
  w.key("p50_ms").value(quantile(0.50));
  w.key("p95_ms").value(quantile(0.95));
  w.key("p99_ms").value(quantile(0.99));
  w.end_object();
}

void Metrics::write_json(std::ostream& out) const {
  util::JsonWriter w(out);
  w.begin_object();
  w.key("started_at_unix").value(static_cast<long>(started_at_unix));
  w.key("uptime_seconds").value(static_cast<long>(now() - started_at_unix));

  w.key("http").begin_object();
  w.key("requests").value(static_cast<long>(http_requests.value()));
  w.key("bad_requests").value(static_cast<long>(http_bad_requests.value()));
  w.key("server_errors").value(static_cast<long>(http_server_errors.value()));
  w.end_object();

  w.key("jobs").begin_object();
  w.key("submitted").value(static_cast<long>(jobs_submitted.value()));
  w.key("rejected").value(static_cast<long>(jobs_rejected.value()));
  w.key("completed").value(static_cast<long>(jobs_completed.value()));
  w.key("cancelled").value(static_cast<long>(jobs_cancelled.value()));
  w.key("failed").value(static_cast<long>(jobs_failed.value()));
  w.key("deadline_checkpoints").value(static_cast<long>(jobs_deadline_checkpoints.value()));
  w.key("queue_depth").value(static_cast<long>(queue_depth.value()));
  w.key("running").value(static_cast<long>(jobs_running.value()));
  w.end_object();

  w.key("cache").begin_object();
  w.key("hits").value(static_cast<long>(cache_hits.value()));
  w.key("misses").value(static_cast<long>(cache_misses.value()));
  w.key("evictions").value(static_cast<long>(cache_evictions.value()));
  w.key("circuits").value(static_cast<long>(circuits_cached.value()));
  w.end_object();

  w.key("robustness").begin_object();
  w.key("faults_injected").value(static_cast<long>(runtime::fault::fires_observed()));
  w.key("fault_hits_observed").value(static_cast<long>(runtime::fault::hits_observed()));
  w.key("idempotent_dedup_hits").value(static_cast<long>(idempotent_dedup_hits.value()));
  w.key("journal_records_written").value(static_cast<long>(journal_records_written.value()));
  w.key("journal_records_replayed").value(static_cast<long>(journal_records_replayed.value()));
  w.key("journal_truncated_bytes").value(static_cast<long>(journal_truncated_bytes.value()));
  w.key("journal_write_errors").value(static_cast<long>(journal_write_errors.value()));
  w.key("jobs_recovered").value(static_cast<long>(jobs_recovered.value()));
  w.key("jobs_interrupted").value(static_cast<long>(jobs_interrupted.value()));
  w.end_object();

  w.key("latency").begin_object();
  w.key("queue_wait_ms");
  queue_wait_ms.write_json(w);
  w.key("service_ms");
  service_ms.write_json(w);
  w.key("service_analysis_ms");
  service_analysis_ms.write_json(w);
  w.key("service_sizing_ms");
  service_sizing_ms.write_json(w);
  w.end_object();

  w.end_object();
}

}  // namespace statsize::serve
