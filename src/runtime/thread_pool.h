// Persistent-executor thread pool with a blocking parallel_for.
//
// Design targets (see DESIGN.md §7):
//   * Determinism. parallel_for hands each index range to exactly one
//     participant and all outputs go to disjoint slots chosen by index, so a
//     result never depends on which worker ran which chunk. Reductions are
//     NOT performed here — callers combine per-block partials in block order
//     (runtime.h provides the helpers), which is what makes parallel results
//     bit-identical at any thread count.
//   * Cheap dispatch. Workers are persistent and park on an epoch counter
//     (a sense-reversing barrier generalized to a 64-bit epoch). Publishing
//     a parallel region is: write the region descriptor, bump the epoch,
//     wake any sleepers. No heap allocation, no std::function, no per-helper
//     queue traffic — workers claim chunks straight off the region's atomic
//     cursor.
//   * Nested safety. A parallel_for issued from inside a region (from a
//     worker, or from the calling thread while it executes its own chunks)
//     runs inline — value-identical because chunk outputs are index-keyed —
//     so nesting can starve parallelism but never deadlock.
//   * Exceptions. The first exception thrown by any chunk is captured, the
//     chunk cursor is exhausted so further claims stop, and the exception is
//     rethrown on the calling thread after the end-of-region barrier.
//
// Region protocol (full-team epoch barrier):
//   1. The owner serializes on for_mutex_, fills the single reusable region
//      descriptor, and bumps epoch_ (seq_cst release of the descriptor).
//   2. Every worker observes the epoch change (spinning briefly, then
//      sleeping on sleep_cv_), drains chunks off the cursor, and arrives at
//      the end barrier (arrived_). The owner drains chunks too.
//   3. The owner waits until arrived_ == workers, then resets the barrier.
//      Because the whole team checks in every epoch, no stale worker can
//      ever touch a reused descriptor — which is what makes the single
//      descriptor safe without per-call allocation or generation tags.
// The idle pool costs nothing: workers spin a short bounded budget and then
// block on a condition variable; a seq_cst Dekker handshake between the
// owner's (bump epoch, read sleepers_) and the workers' (raise sleepers_,
// re-check epoch under the sleep mutex) makes lost wakeups impossible.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace statsize::runtime {

/// Non-owning reference to a callable `void(std::size_t begin, std::size_t
/// end)` — avoids a std::function allocation per parallel_for call. The
/// referenced callable must outlive the call (parallel_for blocks, so stack
/// lambdas are safe).
class RangeFn {
 public:
  template <class F, class = std::enable_if_t<!std::is_same_v<std::decay_t<F>, RangeFn>>>
  RangeFn(const F& f)  // NOLINT(google-explicit-constructor): by-design implicit
      : obj_(&f), call_([](const void* o, std::size_t b, std::size_t e) {
          (*static_cast<const F*>(o))(b, e);
        }) {}

  void operator()(std::size_t begin, std::size_t end) const { call_(obj_, begin, end); }

 private:
  const void* obj_;
  void (*call_)(const void*, std::size_t, std::size_t);
};

class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers: the thread calling parallel_for is
  /// always the remaining participant. num_threads < 1 is clamped to 1 (no
  /// workers; everything runs inline on the caller).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Fire-and-forget task on the shared queue. Every submit wakes all
  /// sleepers (a burst of N tasks reliably engages N workers; spinning
  /// workers pick tasks up without any wake at all). Tasks must not throw.
  void submit(std::function<void()> task);

  /// Runs body(b, e) over subranges that exactly tile [0, n), blocking until
  /// all of it is done. Chunks are `grain` indices (last one ragged). Chunk
  /// claiming is dynamic but the work done per index is fixed, so any writes
  /// keyed by index land identically at every thread count.
  void parallel_for(std::size_t n, std::size_t grain, RangeFn body);

 private:
  /// The single reusable parallel_for descriptor. Plain fields are published
  /// by the epoch bump and quiesced by the end barrier; only the cursor is
  /// contended while a region runs.
  struct Region {
    std::size_t n = 0;
    std::size_t grain = 1;
    std::size_t total_chunks = 0;
    const RangeFn* body = nullptr;
    alignas(64) std::atomic<std::size_t> next{0};  // chunk cursor, own line
  };

  void worker_main();
  void drain_region();
  bool run_one_task();
  void wake_sleepers();

  std::vector<std::thread> workers_;

  // Region state (owner-written between barriers, worker-read during one).
  std::mutex for_mutex_;  // serializes external parallel_for callers
  Region region_;
  std::mutex error_mutex_;
  std::exception_ptr error_;  // first failure of the current region

  // Epoch barrier. epoch_ publishes regions; arrived_ collects the team at
  // the end of one. Separate cache lines: epoch_ is read in every spin
  // iteration while arrived_ is written once per worker per region.
  alignas(64) std::atomic<std::uint64_t> epoch_{0};
  alignas(64) std::atomic<std::size_t> arrived_{0};
  std::mutex owner_mutex_;
  std::condition_variable owner_cv_;

  // Fire-and-forget task queue (shared; submit bursts are rare and cold
  // compared to parallel_for regions, so one mutex is fine).
  std::mutex task_mutex_;
  std::deque<std::function<void()>> tasks_;
  alignas(64) std::atomic<std::size_t> task_pending_{0};

  // Sleep machinery: workers raise sleepers_ before blocking; publishers
  // (epoch bump, submit, stop) read it to decide whether a wake is needed.
  alignas(64) std::atomic<std::size_t> sleepers_{0};
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  std::atomic<bool> stop_{false};
};

}  // namespace statsize::runtime
