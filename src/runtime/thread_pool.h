// Work-stealing thread pool with a blocking parallel_for.
//
// Design targets (see DESIGN.md §7):
//   * Determinism. parallel_for hands each index range to exactly one
//     participant and all outputs go to disjoint slots chosen by index, so a
//     result never depends on which worker ran which chunk. Reductions are
//     NOT performed here — callers combine per-block partials in block order
//     (runtime.h provides the helpers), which is what makes parallel results
//     bit-identical at any thread count.
//   * Nested safety. The calling thread always participates in its own
//     parallel_for (self-scheduling chunk claiming), so a parallel_for issued
//     from inside a worker completes even when every other worker is busy —
//     nesting can starve parallelism but never deadlock.
//   * Exceptions. The first exception thrown by any chunk is captured,
//     further chunk claims are cancelled, and the exception is rethrown on
//     the calling thread once in-flight chunks have drained.
//
// Task submission uses per-worker deques: a worker pops its own deque from
// the back (LIFO, cache-warm) and steals from other deques from the front
// (FIFO, oldest first). parallel_for layers self-scheduling on top: helpers
// and the caller claim fixed-size chunks off a shared atomic cursor, so load
// balance does not depend on the initial task placement.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace statsize::runtime {

/// Non-owning reference to a callable `void(std::size_t begin, std::size_t
/// end)` — avoids a std::function allocation per parallel_for call. The
/// referenced callable must outlive the call (parallel_for blocks, so stack
/// lambdas are safe).
class RangeFn {
 public:
  template <class F, class = std::enable_if_t<!std::is_same_v<std::decay_t<F>, RangeFn>>>
  RangeFn(const F& f)  // NOLINT(google-explicit-constructor): by-design implicit
      : obj_(&f), call_([](const void* o, std::size_t b, std::size_t e) {
          (*static_cast<const F*>(o))(b, e);
        }) {}

  void operator()(std::size_t begin, std::size_t end) const { call_(obj_, begin, end); }

 private:
  const void* obj_;
  void (*call_)(const void*, std::size_t, std::size_t);
};

class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers: the thread calling parallel_for is
  /// always the remaining participant. num_threads < 1 is clamped to 1 (no
  /// workers; everything runs inline on the caller).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Fire-and-forget task, queued on a worker deque (round-robin) and
  /// stealable by any other worker. Tasks must not throw.
  void submit(std::function<void()> task);

  /// Runs body(b, e) over subranges that exactly tile [0, n), blocking until
  /// all of it is done. Chunks are `grain` indices (last one ragged). Chunk
  /// claiming is dynamic but the work done per index is fixed, so any writes
  /// keyed by index land identically at every thread count.
  void parallel_for(std::size_t n, std::size_t grain, RangeFn body);

 private:
  struct Deque {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void worker_main(std::size_t self);
  bool try_run_one(std::size_t self);

  std::vector<std::unique_ptr<Deque>> deques_;  // one per worker
  std::vector<std::thread> workers_;
  std::atomic<std::size_t> next_deque_{0};
  std::atomic<std::size_t> pending_{0};  // queued-but-unstarted task count
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  std::atomic<bool> stop_{false};
};

}  // namespace statsize::runtime
