#include "runtime/level_schedule.h"

#include <stdexcept>

namespace statsize::runtime {

LevelSchedule::LevelSchedule(const netlist::Circuit& circuit) {
  if (!circuit.finalized()) {
    throw std::logic_error(
        "LevelSchedule requires a finalized circuit: the topological level "
        "partition is derived by Circuit::finalize()");
  }
  levels_ = &circuit.gate_levels();
  num_gates_ = circuit.num_gates();
}

}  // namespace statsize::runtime
