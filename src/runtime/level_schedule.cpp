#include "runtime/level_schedule.h"

#include <stdexcept>

namespace statsize::runtime {

LevelSchedule::LevelSchedule(const netlist::Circuit& circuit) {
  if (!circuit.finalized()) {
    throw std::logic_error(
        "LevelSchedule requires a finalized circuit: the topological level "
        "partition is compiled into the TimingView by Circuit::finalize()");
  }
  view_ = &circuit.view();
  serial_cutoff_ = level_serial_cutoff();
}

}  // namespace statsize::runtime
