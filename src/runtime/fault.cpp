#include "runtime/fault.h"

#include <cstdlib>
#include <cstring>
#include <mutex>
#include <stdexcept>

namespace statsize::runtime::fault {

namespace detail {
std::atomic<bool> g_armed{false};
}  // namespace detail

namespace {

std::mutex g_mutex;
std::string g_site;     // armed site name ("" = none)
long g_target_hit = 0;  // 1-based hit on which the site fires
long g_hits = 0;        // hits observed on g_site since arming
bool g_fired = false;   // a site fires exactly once

}  // namespace

const std::vector<const char*>& known_sites() {
  static const std::vector<const char*> sites = {
      kPoolChunk, kAuglagObjective, kAuglagConstraint, kAuglagOuter, kTronIter, kReducedEval,
  };
  return sites;
}

bool detail::fires(const char* site) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  if (g_fired || g_site.empty() || std::strcmp(site, g_site.c_str()) != 0) return false;
  ++g_hits;
  if (g_hits != g_target_hit) return false;
  g_fired = true;
  return true;
}

void arm(const std::string& spec) {
  std::string site = spec;
  long hit = 1;
  if (const auto colon = spec.find(':'); colon != std::string::npos) {
    site = spec.substr(0, colon);
    const std::string count = spec.substr(colon + 1);
    char* end = nullptr;
    hit = std::strtol(count.c_str(), &end, 10);
    if (count.empty() || end == nullptr || *end != '\0' || hit < 1) {
      throw std::invalid_argument("fault spec '" + spec +
                                  "': hit count must be a positive integer");
    }
  }
  bool known = false;
  for (const char* s : known_sites()) {
    if (site == s) {
      known = true;
      break;
    }
  }
  if (!known) {
    std::string all;
    for (const char* s : known_sites()) {
      if (!all.empty()) all += ", ";
      all += s;
    }
    throw std::invalid_argument("fault spec '" + spec + "': unknown site '" + site +
                                "' (known sites: " + all + ")");
  }
  {
    const std::lock_guard<std::mutex> lock(g_mutex);
    g_site = site;
    g_target_hit = hit;
    g_hits = 0;
    g_fired = false;
  }
  detail::g_armed.store(true, std::memory_order_relaxed);
}

void arm_from_env() {
  if (const char* env = std::getenv("STATSIZE_FAULT")) {
    if (env[0] != '\0') arm(env);
  }
}

void disarm() {
  detail::g_armed.store(false, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(g_mutex);
  g_site.clear();
  g_target_hit = 0;
  g_hits = 0;
  g_fired = false;
}

long hits_observed() {
  const std::lock_guard<std::mutex> lock(g_mutex);
  return g_hits;
}

}  // namespace statsize::runtime::fault
