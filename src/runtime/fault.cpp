#include "runtime/fault.h"

#include <cstdlib>
#include <cstring>
#include <mutex>
#include <stdexcept>

namespace statsize::runtime::fault {

namespace detail {
std::atomic<bool> g_armed{false};
}  // namespace detail

namespace {

/// One armed "<site>:<hit_n>" entry. Each entry fires exactly once, on its
/// own hit counter, independently of the other entries in the schedule.
struct ArmedSite {
  std::string site;
  long target_hit = 1;  // 1-based hit on which the site fires
  long hits = 0;        // hits observed since arming
  bool fired = false;
};

std::mutex g_mutex;
std::vector<ArmedSite> g_schedule;

ArmedSite* find_site(const char* site) {
  for (ArmedSite& s : g_schedule) {
    if (std::strcmp(site, s.site.c_str()) == 0) return &s;
  }
  return nullptr;
}

/// Parses one "<site>[:<hit>]" entry; throws naming the full spec on error.
ArmedSite parse_entry(const std::string& entry, const std::string& full_spec) {
  ArmedSite parsed;
  parsed.site = entry;
  if (const auto colon = entry.find(':'); colon != std::string::npos) {
    parsed.site = entry.substr(0, colon);
    const std::string count = entry.substr(colon + 1);
    char* end = nullptr;
    parsed.target_hit = std::strtol(count.c_str(), &end, 10);
    if (count.empty() || end == nullptr || *end != '\0' || parsed.target_hit < 1) {
      throw std::invalid_argument("fault spec '" + full_spec +
                                  "': hit count must be a positive integer in '" + entry +
                                  "'");
    }
  }
  if (parsed.site.empty()) {
    throw std::invalid_argument("fault spec '" + full_spec + "': empty site entry");
  }
  bool known = false;
  for (const char* s : known_sites()) {
    if (parsed.site == s) {
      known = true;
      break;
    }
  }
  if (!known) {
    std::string all;
    for (const char* s : known_sites()) {
      if (!all.empty()) all += ", ";
      all += s;
    }
    throw std::invalid_argument("fault spec '" + full_spec + "': unknown site '" +
                                parsed.site + "' (known sites: " + all + ")");
  }
  return parsed;
}

}  // namespace

const std::vector<const char*>& known_sites() {
  static const std::vector<const char*> sites = {
      kPoolChunk,     kAuglagObjective,    kAuglagConstraint,  kAuglagOuter,
      kTronIter,      kReducedEval,        kServeAccept,       kServeRead,
      kServeWritePartial, kServeJournalWrite, kServeExecutorCrash, kCacheEvict,
  };
  return sites;
}

bool detail::fires(const char* site) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  ArmedSite* armed = find_site(site);
  if (armed == nullptr) return false;
  // Keep counting after the fire: hits_observed() reports opportunities seen
  // at the site for the whole armed window, not just up to the trigger.
  ++armed->hits;
  if (armed->fired || armed->hits != armed->target_hit) return false;
  armed->fired = true;
  return true;
}

void arm(const std::string& spec) {
  // Parse and validate the whole schedule before mutating anything, so a bad
  // entry leaves the previous arming intact (a half-armed schedule would make
  // a chaos test vacuously pass on the sites that never armed).
  std::vector<ArmedSite> schedule;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string entry =
        spec.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    ArmedSite parsed = parse_entry(entry, spec);
    // Precedence: the LAST entry for a repeated site wins.
    bool replaced = false;
    for (ArmedSite& existing : schedule) {
      if (existing.site == parsed.site) {
        existing = parsed;
        replaced = true;
        break;
      }
    }
    if (!replaced) schedule.push_back(std::move(parsed));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (schedule.empty()) {
    throw std::invalid_argument("fault spec '" + spec + "': no site entries");
  }
  {
    const std::lock_guard<std::mutex> lock(g_mutex);
    g_schedule = std::move(schedule);
  }
  detail::g_armed.store(true, std::memory_order_relaxed);
}

void arm_from_env() {
  if (const char* env = std::getenv("STATSIZE_FAULT")) {
    if (env[0] != '\0') arm(env);
  }
}

void disarm() {
  detail::g_armed.store(false, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(g_mutex);
  g_schedule.clear();
}

long hits_observed() {
  const std::lock_guard<std::mutex> lock(g_mutex);
  long total = 0;
  for (const ArmedSite& s : g_schedule) total += s.hits;
  return total;
}

long hits_observed(const char* site) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  const ArmedSite* armed = find_site(site);
  return armed == nullptr ? 0 : armed->hits;
}

bool fired(const char* site) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  const ArmedSite* armed = find_site(site);
  return armed != nullptr && armed->fired;
}

long fires_observed() {
  const std::lock_guard<std::mutex> lock(g_mutex);
  long total = 0;
  for (const ArmedSite& s : g_schedule) {
    if (s.fired) ++total;
  }
  return total;
}

}  // namespace statsize::runtime::fault
