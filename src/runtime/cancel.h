// Cooperative cancellation and wall-clock deadlines for the parallel runtime.
//
// A solve that must terminate within a time budget (CLI --time-limit) or on
// external request installs a CancelScope; every long-running loop in the
// system — ThreadPool::parallel_for chunk claims, runtime::parallel_for
// entry (and therefore every LevelSchedule level), the TRON trust-region and
// CG inner loops, projected L-BFGS iterations, and the augmented-Lagrangian
// outer loop — polls the active scope at its natural boundary and throws
// OperationCancelled when the token is cancelled or the deadline has passed.
//
// Contract (DESIGN.md §9):
//  * Cooperative, never preemptive: work stops at the next poll, so a
//    deadline overshoots by at most one chunk / one inner iteration.
//  * Determinism is never poisoned: a poll either does nothing or throws.
//    Partial results of a cancelled sweep are discarded by the unwinding —
//    no cancelled run ever contributes values to a returned iterate. With no
//    scope installed the poll is a single relaxed atomic load of a null
//    pointer, so uncancelled runs are bit-identical to pre-resilience runs.
//  * Scopes nest: an inner scope chains to the outer one, and a poll checks
//    the whole chain, so an outer deadline still fires inside a nested
//    sub-solve. Install/uninstall only while no parallel work is in flight
//    (scopes are per-process, like the pool itself).

#pragma once

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>

namespace statsize::runtime {

/// A wall-clock budget on std::chrono::steady_clock. Default-constructed
/// deadlines never expire.
class Deadline {
 public:
  Deadline() = default;  ///< unlimited

  /// Expires `seconds` from now; seconds <= 0 is already expired.
  static Deadline after_seconds(double seconds) {
    Deadline d;
    d.armed_ = true;
    d.at_ = std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(seconds));
    return d;
  }

  static Deadline never() { return Deadline(); }

  bool unlimited() const { return !armed_; }

  bool expired() const { return armed_ && std::chrono::steady_clock::now() >= at_; }

  /// Seconds until expiry (negative once expired); +infinity when unlimited.
  double remaining_seconds() const;

 private:
  bool armed_ = false;
  std::chrono::steady_clock::time_point at_{};
};

/// Sticky cancel flag, safe to set from any thread (e.g. a signal-handling
/// or watchdog thread) while solver threads poll it.
class CancellationToken {
 public:
  void request_cancel() { flag_.store(true, std::memory_order_relaxed); }
  bool cancel_requested() const { return flag_.load(std::memory_order_relaxed); }
  void reset() { flag_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> flag_{false};
};

enum class CancelReason {
  kToken,     ///< CancellationToken::request_cancel()
  kDeadline,  ///< Deadline expired
};

/// Thrown by poll_cancel() (and by fault-injected deadline sites). Solver
/// layers catch it to degrade gracefully to their best checkpoint; it should
/// never escape a Sizer / solve_augmented_lagrangian call.
class OperationCancelled : public std::runtime_error {
 public:
  OperationCancelled(CancelReason reason, const std::string& what)
      : std::runtime_error(what), reason_(reason) {}

  CancelReason reason() const { return reason_; }

 private:
  CancelReason reason_;
};

namespace detail {
/// One link of the active-scope chain (implementation detail of CancelScope).
struct CancelState {
  const CancellationToken* token = nullptr;
  Deadline deadline;
  const CancelState* prev = nullptr;
};
}  // namespace detail

/// RAII installation of (token, deadline) as the process-wide active cancel
/// scope. Nested construction chains to the previously active scope; the
/// destructor restores it. Construct/destruct only when no parallel work is
/// in flight.
class CancelScope {
 public:
  CancelScope(const CancellationToken* token, Deadline deadline);
  explicit CancelScope(Deadline deadline) : CancelScope(nullptr, deadline) {}
  ~CancelScope();

  CancelScope(const CancelScope&) = delete;
  CancelScope& operator=(const CancelScope&) = delete;

 private:
  detail::CancelState state_;
};

/// True when any scope in the active chain is cancelled or past its
/// deadline. With no scope installed this is one relaxed atomic load.
bool cancel_requested();

/// Throws OperationCancelled when cancel_requested() — the cooperative
/// checkpoint every long loop calls at its chunk/iteration boundary.
void poll_cancel();

}  // namespace statsize::runtime
