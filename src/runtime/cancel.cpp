#include "runtime/cancel.h"

#include <limits>

namespace statsize::runtime {

namespace {

/// Head of the active scope chain. Written by the (single) thread installing
/// scopes, read by every pool worker at chunk boundaries; release/acquire
/// ordering publishes the chain nodes themselves.
std::atomic<const detail::CancelState*> g_active{nullptr};

/// Walks the chain; returns the reason of the first tripped scope.
bool chain_tripped(const detail::CancelState* head, CancelReason* reason) {
  for (const detail::CancelState* s = head; s != nullptr; s = s->prev) {
    if (s->token != nullptr && s->token->cancel_requested()) {
      *reason = CancelReason::kToken;
      return true;
    }
    if (s->deadline.expired()) {
      *reason = CancelReason::kDeadline;
      return true;
    }
  }
  return false;
}

}  // namespace

double Deadline::remaining_seconds() const {
  if (!armed_) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double>(at_ - std::chrono::steady_clock::now()).count();
}

CancelScope::CancelScope(const CancellationToken* token, Deadline deadline) {
  state_.token = token;
  state_.deadline = deadline;
  state_.prev = g_active.load(std::memory_order_relaxed);
  g_active.store(&state_, std::memory_order_release);
}

CancelScope::~CancelScope() { g_active.store(state_.prev, std::memory_order_release); }

bool cancel_requested() {
  const detail::CancelState* head = g_active.load(std::memory_order_acquire);
  if (head == nullptr) return false;  // the common, overhead-free case
  CancelReason reason;
  return chain_tripped(head, &reason);
}

void poll_cancel() {
  const detail::CancelState* head = g_active.load(std::memory_order_acquire);
  if (head == nullptr) return;
  CancelReason reason;
  if (!chain_tripped(head, &reason)) return;
  if (reason == CancelReason::kDeadline) {
    throw OperationCancelled(CancelReason::kDeadline, "deadline expired");
  }
  throw OperationCancelled(CancelReason::kToken, "cancellation requested");
}

}  // namespace statsize::runtime
