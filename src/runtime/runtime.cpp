#include "runtime/runtime.h"

#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace statsize::runtime {

namespace {

std::mutex g_mutex;
std::unique_ptr<ThreadPool> g_pool;
int g_threads = 0;  // 0 = not yet resolved

int default_threads() {
  if (const char* env = std::getenv("STATSIZE_JOBS")) {
    try {
      const int n = std::stoi(env);
      if (n >= 1) return n;
    } catch (...) {
      // Malformed STATSIZE_JOBS falls through to hardware concurrency; the
      // CLI layer validates its own --jobs flag loudly.
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int threads_locked() {
  if (g_threads == 0) g_threads = default_threads();
  return g_threads;
}

}  // namespace

int threads() {
  const std::lock_guard<std::mutex> lock(g_mutex);
  return threads_locked();
}

void set_threads(int n) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  if (n < 1) n = 1;
  if (n == g_threads) return;
  g_threads = n;
  g_pool.reset();
}

int hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool& global_pool() {
  const std::lock_guard<std::mutex> lock(g_mutex);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(threads_locked());
  return *g_pool;
}

void parallel_for(std::size_t n, std::size_t grain, RangeFn body) {
  if (n == 0) return;
  if (threads() == 1 || n <= (grain == 0 ? 1 : grain)) {
    body(0, n);
    return;
  }
  global_pool().parallel_for(n, grain, body);
}

}  // namespace statsize::runtime
