#include "runtime/runtime.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace statsize::runtime {

namespace {

std::mutex g_mutex;
std::unique_ptr<ThreadPool> g_pool;
int g_threads = 0;  // 0 = not yet resolved

int default_threads() {
  if (const char* env = std::getenv("STATSIZE_JOBS")) {
    std::string warning;
    const int n = resolve_jobs_value(env, hardware_threads(), &warning);
    if (!warning.empty()) std::fprintf(stderr, "warning: %s\n", warning.c_str());
    return n;
  }
  return hardware_threads();
}

int threads_locked() {
  if (g_threads == 0) g_threads = default_threads();
  return g_threads;
}

}  // namespace

int resolve_jobs_value(const char* value, int fallback, std::string* warning) {
  if (warning != nullptr) warning->clear();
  auto reject = [&](const std::string& why) {
    if (warning != nullptr) {
      *warning = "STATSIZE_JOBS='" + std::string(value == nullptr ? "" : value) + "': " + why +
                 "; using " + std::to_string(fallback) + " (hardware concurrency)";
    }
    return fallback;
  };
  if (value == nullptr || value[0] == '\0') return reject("empty value");
  errno = 0;
  char* end = nullptr;
  const long n = std::strtol(value, &end, 10);
  if (end == value || *end != '\0') return reject("expected an integer");
  if (errno == ERANGE || n > kMaxJobs) {
    return reject("value exceeds the maximum of " + std::to_string(kMaxJobs) + " threads");
  }
  if (n < 1) return reject("thread count must be >= 1");
  return static_cast<int>(n);
}

int threads() {
  const std::lock_guard<std::mutex> lock(g_mutex);
  return threads_locked();
}

void set_threads(int n) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  if (n < 1) n = 1;
  if (n > kMaxJobs) n = kMaxJobs;
  if (n == g_threads) return;
  g_threads = n;
  g_pool.reset();
}

int hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool& global_pool() {
  const std::lock_guard<std::mutex> lock(g_mutex);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(threads_locked());
  return *g_pool;
}

namespace {

std::atomic<std::size_t> g_serial_cutoff{static_cast<std::size_t>(-1)};  // -1 = unresolved

std::size_t default_serial_cutoff() {
  if (const char* env = std::getenv("STATSIZE_SERIAL_CUTOFF")) {
    errno = 0;
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && errno != ERANGE && v >= 0) {
      return static_cast<std::size_t>(v);
    }
    std::fprintf(stderr,
                 "warning: STATSIZE_SERIAL_CUTOFF='%s': expected a non-negative integer; "
                 "keeping the default of 0 (no serial cutoff)\n",
                 env);
  }
  return 0;
}

}  // namespace

std::size_t level_serial_cutoff() {
  std::size_t v = g_serial_cutoff.load(std::memory_order_relaxed);
  if (v == static_cast<std::size_t>(-1)) {
    v = default_serial_cutoff();
    g_serial_cutoff.store(v, std::memory_order_relaxed);
  }
  return v;
}

void set_level_serial_cutoff(std::size_t width) {
  g_serial_cutoff.store(width, std::memory_order_relaxed);
}

double measure_chunk_dispatch_ns(int samples) {
  if (samples < 1) samples = 1;
  // Chunks of one trivial index each: the measured cost is almost purely the
  // claim/wake machinery. A relaxed-atomic sink keeps the body from being
  // optimized away without serializing the workers against each other.
  constexpr std::size_t kChunks = 512;
  std::atomic<std::size_t> sink{0};
  const auto run = [&] {
    parallel_for(kChunks, 1, [&](std::size_t b, std::size_t e) {
      sink.fetch_add(e - b, std::memory_order_relaxed);
    });
  };
  run();  // warm the pool (first call may spawn workers)
  double best_ns = 0.0;
  for (int s = 0; s < samples; ++s) {
    const auto t0 = std::chrono::steady_clock::now();
    run();
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count() / static_cast<double>(kChunks);
    if (s == 0 || ns < best_ns) best_ns = ns;
  }
  return best_ns;
}

void parallel_for(std::size_t n, std::size_t grain, RangeFn body) {
  if (n == 0) return;
  if (threads() == 1 || n <= (grain == 0 ? 1 : grain)) {
    poll_cancel();  // serial fallback honors the same chunk-boundary contract
    body(0, n);
    return;
  }
  global_pool().parallel_for(n, grain, body);
}

}  // namespace statsize::runtime
