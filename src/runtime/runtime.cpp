#include "runtime/runtime.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace statsize::runtime {

namespace {

std::mutex g_mutex;
std::unique_ptr<ThreadPool> g_pool;
int g_threads = 0;  // 0 = not yet resolved

int default_threads() {
  if (const char* env = std::getenv("STATSIZE_JOBS")) {
    std::string warning;
    const int n = resolve_jobs_value(env, hardware_threads(), &warning);
    if (!warning.empty()) std::fprintf(stderr, "warning: %s\n", warning.c_str());
    return n;
  }
  return hardware_threads();
}

int threads_locked() {
  if (g_threads == 0) g_threads = default_threads();
  return g_threads;
}

}  // namespace

int resolve_jobs_value(const char* value, int fallback, std::string* warning) {
  if (warning != nullptr) warning->clear();
  auto reject = [&](const std::string& why) {
    if (warning != nullptr) {
      *warning = "STATSIZE_JOBS='" + std::string(value == nullptr ? "" : value) + "': " + why +
                 "; using " + std::to_string(fallback) + " (hardware concurrency)";
    }
    return fallback;
  };
  if (value == nullptr || value[0] == '\0') return reject("empty value");
  errno = 0;
  char* end = nullptr;
  const long n = std::strtol(value, &end, 10);
  if (end == value || *end != '\0') return reject("expected an integer");
  if (errno == ERANGE || n > kMaxJobs) {
    return reject("value exceeds the maximum of " + std::to_string(kMaxJobs) + " threads");
  }
  if (n < 1) return reject("thread count must be >= 1");
  return static_cast<int>(n);
}

int threads() {
  const std::lock_guard<std::mutex> lock(g_mutex);
  return threads_locked();
}

namespace {
void invalidate_auto_cutoff_locked();  // defined with the cutoff state below
}  // namespace

void set_threads(int n) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  if (n < 1) n = 1;
  if (n > kMaxJobs) n = kMaxJobs;
  if (n == g_threads) return;
  g_threads = n;
  g_pool.reset();
  // The auto serial cutoff is a function of the thread count; drop it so the
  // next query recomputes. Env/explicit installs are preserved (serve's
  // per-job "set_threads then set_level_serial_cutoff" sequence must stick).
  invalidate_auto_cutoff_locked();
}

int hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool& global_pool() {
  const std::lock_guard<std::mutex> lock(g_mutex);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(threads_locked());
  return *g_pool;
}

double modeled_parallel_ns(std::size_t width, const DispatchCostModel& m) {
  if (width == 0) return 0.0;
  const std::size_t grain = m.grain == 0 ? 1 : m.grain;
  const double chunks = static_cast<double>((width + grain - 1) / grain);
  const double busy = std::min<double>(static_cast<double>(m.threads), chunks);
  const double work_ns = static_cast<double>(width) * m.item_cost_ns;
  return (chunks * m.chunk_dispatch_ns + work_ns) / std::max(1.0, busy) + m.chunk_dispatch_ns;
}

double modeled_serial_ns(std::size_t width, const DispatchCostModel& m) {
  return static_cast<double>(width) * m.item_cost_ns;
}

std::size_t compute_serial_cutoff(const DispatchCostModel& model) {
  DispatchCostModel m = model;
  if (m.threads <= 0) m.threads = threads();
  if (m.grain == 0) m.grain = 1;
  // Both cost curves are monotone in width up to ceil() ripples, so a
  // forward scan finds the exact crossover; the cap only matters for
  // degenerate models (dispatch so expensive the pool never pays) and for
  // 1-thread settings, where everything runs inline anyway.
  if (m.threads > 1) {
    for (std::size_t w = 1; w <= kSerialCutoffCap; ++w) {
      if (modeled_parallel_ns(w, m) < modeled_serial_ns(w, m)) return w;
    }
  }
  return kSerialCutoffCap;
}

namespace {

constexpr std::size_t kCutoffUnresolved = static_cast<std::size_t>(-1);

std::atomic<std::size_t> g_serial_cutoff{kCutoffUnresolved};
std::atomic<SerialCutoffSource> g_cutoff_source{SerialCutoffSource::kAuto};

/// Resolves the cutoff under g_mutex: env wins when present and well formed,
/// otherwise the auto crossover at the current thread count.
std::size_t resolve_serial_cutoff_locked() {
  if (const char* env = std::getenv("STATSIZE_SERIAL_CUTOFF")) {
    errno = 0;
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && errno != ERANGE && v >= 0) {
      g_cutoff_source.store(SerialCutoffSource::kEnv, std::memory_order_relaxed);
      return static_cast<std::size_t>(v);
    }
    std::fprintf(stderr,
                 "warning: STATSIZE_SERIAL_CUTOFF='%s': expected a non-negative integer; "
                 "using the auto cost-model cutoff\n",
                 env);
  }
  g_cutoff_source.store(SerialCutoffSource::kAuto, std::memory_order_relaxed);
  DispatchCostModel m;
  m.threads = threads_locked();
  return compute_serial_cutoff(m);
}

void invalidate_auto_cutoff_locked() {
  if (g_cutoff_source.load(std::memory_order_relaxed) == SerialCutoffSource::kAuto) {
    g_serial_cutoff.store(kCutoffUnresolved, std::memory_order_relaxed);
  }
}

}  // namespace

std::size_t level_serial_cutoff() {
  // Hot path: one relaxed load (ScatterPlan folds consult this per call).
  const std::size_t v = g_serial_cutoff.load(std::memory_order_relaxed);
  if (v != kCutoffUnresolved) return v;
  const std::lock_guard<std::mutex> lock(g_mutex);
  std::size_t resolved = g_serial_cutoff.load(std::memory_order_relaxed);
  if (resolved == kCutoffUnresolved) {
    resolved = resolve_serial_cutoff_locked();
    g_serial_cutoff.store(resolved, std::memory_order_relaxed);
  }
  return resolved;
}

void set_level_serial_cutoff(std::size_t width) {
  g_cutoff_source.store(SerialCutoffSource::kExplicit, std::memory_order_relaxed);
  g_serial_cutoff.store(width, std::memory_order_relaxed);
}

SerialCutoffSource level_serial_cutoff_source() {
  level_serial_cutoff();  // force resolution
  return g_cutoff_source.load(std::memory_order_relaxed);
}

void reset_level_serial_cutoff() {
  const std::lock_guard<std::mutex> lock(g_mutex);
  g_cutoff_source.store(SerialCutoffSource::kAuto, std::memory_order_relaxed);
  g_serial_cutoff.store(kCutoffUnresolved, std::memory_order_relaxed);
}

double measure_chunk_dispatch_ns(int samples, bool* measured_on_temporary_pool) {
  if (samples < 1) samples = 1;
  // A 1-thread setting would make runtime::parallel_for run the serial
  // fallback — a trivial loop whose ~ns/chunk cost is NOT what the advisor
  // needs (it models the pool). Measure a temporary 2-thread pool instead so
  // the reported figure is always a real dispatch cost.
  std::unique_ptr<ThreadPool> scratch;
  ThreadPool* pool = nullptr;
  if (threads() > 1) {
    pool = &global_pool();
  } else {
    scratch = std::make_unique<ThreadPool>(2);
    pool = scratch.get();
  }
  if (measured_on_temporary_pool != nullptr) *measured_on_temporary_pool = scratch != nullptr;
  // Chunks of one trivial index each: the measured cost is almost purely the
  // claim/wake machinery. A relaxed-atomic sink keeps the body from being
  // optimized away without serializing the workers against each other.
  constexpr std::size_t kChunks = 512;
  std::atomic<std::size_t> sink{0};
  const auto run = [&] {
    pool->parallel_for(kChunks, 1, [&](std::size_t b, std::size_t e) {
      sink.fetch_add(e - b, std::memory_order_relaxed);
    });
  };
  run();  // warm the pool (first region wakes freshly spawned workers)
  double best_ns = 0.0;
  for (int s = 0; s < samples; ++s) {
    const auto t0 = std::chrono::steady_clock::now();
    run();
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count() / static_cast<double>(kChunks);
    if (s == 0 || ns < best_ns) best_ns = ns;
  }
  return best_ns;
}

void parallel_for(std::size_t n, std::size_t grain, RangeFn body) {
  if (n == 0) return;
  if (threads() == 1 || n <= (grain == 0 ? 1 : grain)) {
    poll_cancel();  // serial fallback honors the same chunk-boundary contract
    body(0, n);
    return;
  }
  global_pool().parallel_for(n, grain, body);
}

}  // namespace statsize::runtime
