#include "runtime/runtime.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace statsize::runtime {

namespace {

std::mutex g_mutex;
std::unique_ptr<ThreadPool> g_pool;
int g_threads = 0;  // 0 = not yet resolved

int default_threads() {
  if (const char* env = std::getenv("STATSIZE_JOBS")) {
    std::string warning;
    const int n = resolve_jobs_value(env, hardware_threads(), &warning);
    if (!warning.empty()) std::fprintf(stderr, "warning: %s\n", warning.c_str());
    return n;
  }
  return hardware_threads();
}

int threads_locked() {
  if (g_threads == 0) g_threads = default_threads();
  return g_threads;
}

}  // namespace

int resolve_jobs_value(const char* value, int fallback, std::string* warning) {
  if (warning != nullptr) warning->clear();
  auto reject = [&](const std::string& why) {
    if (warning != nullptr) {
      *warning = "STATSIZE_JOBS='" + std::string(value == nullptr ? "" : value) + "': " + why +
                 "; using " + std::to_string(fallback) + " (hardware concurrency)";
    }
    return fallback;
  };
  if (value == nullptr || value[0] == '\0') return reject("empty value");
  errno = 0;
  char* end = nullptr;
  const long n = std::strtol(value, &end, 10);
  if (end == value || *end != '\0') return reject("expected an integer");
  if (errno == ERANGE || n > kMaxJobs) {
    return reject("value exceeds the maximum of " + std::to_string(kMaxJobs) + " threads");
  }
  if (n < 1) return reject("thread count must be >= 1");
  return static_cast<int>(n);
}

int threads() {
  const std::lock_guard<std::mutex> lock(g_mutex);
  return threads_locked();
}

void set_threads(int n) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  if (n < 1) n = 1;
  if (n > kMaxJobs) n = kMaxJobs;
  if (n == g_threads) return;
  g_threads = n;
  g_pool.reset();
}

int hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool& global_pool() {
  const std::lock_guard<std::mutex> lock(g_mutex);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(threads_locked());
  return *g_pool;
}

void parallel_for(std::size_t n, std::size_t grain, RangeFn body) {
  if (n == 0) return;
  if (threads() == 1 || n <= (grain == 0 ? 1 : grain)) {
    poll_cancel();  // serial fallback honors the same chunk-boundary contract
    body(0, n);
    return;
  }
  global_pool().parallel_for(n, grain, body);
}

}  // namespace statsize::runtime
