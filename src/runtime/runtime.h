// Process-global execution runtime: one shared ThreadPool plus deterministic
// parallel-iteration helpers. Everything hot in statsize (SSTA propagation,
// Monte Carlo sharding, NLP constraint evaluation) funnels through this
// header so a single knob controls parallelism everywhere:
//
//   * runtime::set_threads(n)      — programmatic (CLI --jobs)
//   * STATSIZE_JOBS=<n>            — environment default
//   * std::thread::hardware_concurrency() otherwise
//
// Determinism contract: every helper here either (a) writes results to
// disjoint index-keyed slots (parallel_for), or (b) computes fixed-size block
// partials and combines them in ascending block order on the calling thread
// (parallel_sum_blocks / parallel_max_blocks). Block boundaries depend only
// on the problem size, never on the thread count, so numerical results are
// bit-identical for --jobs 1, --jobs N, and the serial fallback.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "runtime/cancel.h"
#include "runtime/thread_pool.h"

namespace statsize::runtime {

/// Upper bound on a thread-count setting. STATSIZE_JOBS values above it are
/// treated as malformed (fall back to hardware concurrency with a warning);
/// programmatic set_threads clamps into [1, kMaxJobs].
inline constexpr int kMaxJobs = 1024;

/// Validates a STATSIZE_JOBS-style string: a whole-string positive integer in
/// [1, kMaxJobs]. Returns the parsed count, or `fallback` when the value is
/// non-numeric, has trailing junk, is zero/negative, or is absurdly large —
/// filling `warning` (if non-null) with a named diagnostic in that case.
/// Exposed for tests; the env resolution and set_threads both route through
/// it so a bad value can never produce UB or a 0-thread pool.
int resolve_jobs_value(const char* value, int fallback, std::string* warning = nullptr);

/// Current global thread-count setting (>= 1). First use reads STATSIZE_JOBS
/// (validated via resolve_jobs_value; malformed values warn on stderr),
/// falling back to hardware concurrency.
int threads();

/// Overrides the global thread count (clamped to [1, kMaxJobs]) and drops the old
/// pool; the next parallel call lazily builds a pool of the new size. Not
/// safe to call concurrently with in-flight parallel work.
void set_threads(int n);

/// Threads the hardware offers (>= 1), independent of the current setting.
int hardware_threads();

/// The shared pool at the current thread-count setting (lazily constructed).
ThreadPool& global_pool();

/// Cost model for one pooled dispatch of `width` work items chunked by
/// `grain`. The default constants are deterministic order-of-magnitude
/// figures for the persistent executor on commodity hardware; the
/// granularity advisor (analyze/graph_audit.h) and the runtime's own
/// auto-resolved serial cutoff share them, so the static audit and the live
/// scheduler can never disagree about where the pool pays.
inline constexpr double kDefaultChunkDispatchNs = 600.0;
inline constexpr double kDefaultItemCostNs = 120.0;
inline constexpr std::size_t kDefaultDispatchGrain = 32;

struct DispatchCostModel {
  double chunk_dispatch_ns = kDefaultChunkDispatchNs;  ///< claim/wake cost per offered chunk
  double item_cost_ns = kDefaultItemCostNs;  ///< per-item sweep work (Clark max + delay eval)
  std::size_t grain = kDefaultDispatchGrain;  ///< items per chunk (the sweeps' kGateGrain)
  int threads = 0;                            ///< 0 = runtime::threads() at compute time
};

/// Cap returned by compute_serial_cutoff when the pool can never pay
/// (threads <= 1 or a degenerate cost model).
inline constexpr std::size_t kSerialCutoffCap = 1u << 20;

/// Modeled wall time of pooling one dispatch of `width` items: per-chunk
/// dispatch parallelizes across the claimers, the work divides across the
/// busy threads, and one extra dispatch quantum stands in for the end
/// barrier. Serial cost is width * item_cost (the inline path pays no
/// dispatch at all).
double modeled_parallel_ns(std::size_t width, const DispatchCostModel& m);
double modeled_serial_ns(std::size_t width, const DispatchCostModel& m);

/// The crossover width: the smallest width at which the modeled pooled cost
/// beats the modeled inline cost (kSerialCutoffCap when it never does).
/// Widths below the returned cutoff should run inline.
std::size_t compute_serial_cutoff(const DispatchCostModel& m = {});

/// Where the current level_serial_cutoff() value came from.
enum class SerialCutoffSource {
  kAuto,      ///< derived from DispatchCostModel defaults at the current thread count
  kEnv,       ///< STATSIZE_SERIAL_CUTOFF
  kExplicit,  ///< set_level_serial_cutoff (CLI --serial-cutoff, audit --calibrate, serve)
};

/// Level-width cutoff below which LevelSchedule (and the ScatterPlan folds)
/// run a dispatch inline on the calling thread instead of paying the pool —
/// the cost-model lever the granularity advisor (analyze/graph_audit.h,
/// `statsize audit`) computes. Resolution order on first use:
/// STATSIZE_SERIAL_CUTOFF if set (malformed values warn and fall through),
/// otherwise auto: compute_serial_cutoff() with the default cost model at
/// the current thread count — so sub-cutoff levels never pay dispatch even
/// when nobody ran `statsize audit --calibrate`. Safe to tune freely: the
/// determinism contract makes serial and pooled execution bit-identical, so
/// the cutoff only moves wall-clock time.
///
/// set_threads() invalidates an auto-derived cutoff (the crossover depends
/// on the thread count) but preserves env/explicit installs; an explicit
/// set_level_serial_cutoff sticks until the next explicit set.
std::size_t level_serial_cutoff();
void set_level_serial_cutoff(std::size_t width);
SerialCutoffSource level_serial_cutoff_source();

/// Drops any explicit install and re-resolves on the next query (env first,
/// then auto) — the inverse of set_level_serial_cutoff, for tests and tools
/// that change the environment mid-process.
void reset_level_serial_cutoff();

/// Measures the pool's per-chunk dispatch overhead in nanoseconds: the cost
/// of offering trivial chunks to the pool versus running them inline,
/// amortized per chunk. Always measures a real pool: at a 1-thread setting
/// (where runtime::parallel_for would silently run the serial fallback) it
/// spins up a temporary 2-thread pool so the advisor is never fed the
/// near-zero cost of a plain loop; `measured_on_temporary_pool` (optional)
/// reports when that happened. Feeds the granularity advisor's cost model
/// when calibration is requested (`statsize audit --calibrate`); callers
/// wanting reproducible output use the advisor's default constants instead.
double measure_chunk_dispatch_ns(int samples = 5, bool* measured_on_temporary_pool = nullptr);

/// parallel_for over [0, n) on the global pool; runs inline when the setting
/// is 1 thread or the range fits one grain. body(b, e) must only write to
/// slots keyed by the index — the scheduler decides nothing about values.
void parallel_for(std::size_t n, std::size_t grain, RangeFn body);

/// Deterministic blocked sum: partials[b] = block_sum(block begin, end) are
/// computed in parallel, then folded left-to-right in block order. The block
/// partition depends only on (n, block), so the result is bit-identical at
/// any thread count (but differs, in general, from a single left fold —
/// callers pick one partition and stick to it).
template <class BlockSumFn>
double parallel_sum_blocks(std::size_t n, std::size_t block, BlockSumFn&& block_sum) {
  if (n == 0) return 0.0;
  if (block == 0) block = 1;
  const std::size_t num_blocks = (n + block - 1) / block;
  std::vector<double> partials(num_blocks);
  parallel_for(num_blocks, 1, [&](std::size_t bb, std::size_t be) {
    for (std::size_t b = bb; b < be; ++b) {
      const std::size_t lo = b * block;
      const std::size_t hi = lo + block < n ? lo + block : n;
      partials[b] = block_sum(lo, hi);
    }
  });
  double acc = 0.0;
  for (const double p : partials) acc += p;
  return acc;
}

/// Deterministic blocked max (max is exactly associative for non-NaN
/// doubles, so this equals the serial left fold bit-for-bit).
template <class BlockMaxFn>
double parallel_max_blocks(std::size_t n, std::size_t block, double identity,
                           BlockMaxFn&& block_max) {
  if (n == 0) return identity;
  if (block == 0) block = 1;
  const std::size_t num_blocks = (n + block - 1) / block;
  std::vector<double> partials(num_blocks, identity);
  parallel_for(num_blocks, 1, [&](std::size_t bb, std::size_t be) {
    for (std::size_t b = bb; b < be; ++b) {
      const std::size_t lo = b * block;
      const std::size_t hi = lo + block < n ? lo + block : n;
      partials[b] = block_max(lo, hi);
    }
  });
  double acc = identity;
  for (const double p : partials) acc = acc > p ? acc : p;
  return acc;
}

}  // namespace statsize::runtime
