// Levelized gate scheduler for the parallel runtime.
//
// Statistical timing propagation is embarrassingly parallel *within* a
// topological level: a gate's arrival depends only on fanins, which live at
// strictly smaller levels, so executing level 1, barrier, level 2, barrier,
// ... lets every gate in a level run concurrently with no synchronization
// beyond the barrier. The level partition itself is structural — it is
// compiled into the flat TimingView by Circuit::finalize() (one CSR array,
// netlist::TimingView::level_gates); this class binds that view to the
// global pool and adds the barriered executors.
//
// A LevelSchedule over a non-finalized circuit is rejected with
// std::logic_error: the level partition does not exist before finalize(),
// and silently building one from a half-wired graph would schedule gates
// before their fanins. tests/runtime_test.cpp pins this contract.

#pragma once

#include <cstddef>

#include "netlist/timing_view.h"
#include "runtime/runtime.h"

namespace statsize::runtime {

class LevelSchedule {
 public:
  /// Binds to `circuit`'s compiled TimingView. Throws std::logic_error if
  /// the circuit is not finalized. The circuit must outlive the schedule.
  explicit LevelSchedule(const netlist::Circuit& circuit);

  /// Binds directly to an already-compiled view (which must outlive the
  /// schedule) — the form the retargeted sweeps use.
  explicit LevelSchedule(const netlist::TimingView& view)
      : view_(&view), serial_cutoff_(level_serial_cutoff()) {}

  /// Levels narrower than `width` run inline on the calling thread instead
  /// of being offered to the pool (the granularity advisor's cost-model
  /// cutoff; see analyze/graph_audit.h). Results are bit-identical either
  /// way — this only trades dispatch overhead against parallelism. The
  /// constructor seeds it from runtime::level_serial_cutoff().
  void set_serial_cutoff(std::size_t width) { serial_cutoff_ = width; }
  std::size_t serial_cutoff() const { return serial_cutoff_; }

  int num_levels() const { return view_->num_levels(); }

  /// Gates at level `l` (0-based; level 0 holds gates fed only by primary
  /// inputs), in ascending topological-order position.
  netlist::NodeSpan level(int l) const { return view_->level_gates(l); }

  int num_gates() const { return view_->num_gates(); }

  /// Runs fn(id) for every gate, level by level with a barrier between
  /// levels and the gates of each level fanned out across the global pool
  /// (`grain` gates per chunk). fn must only write to slots keyed by id.
  template <class Fn>
  void for_each_gate(std::size_t grain, Fn&& fn) const {
    for (int l = 0; l < num_levels(); ++l) {
      const netlist::NodeSpan lvl = level(l);
      parallel_for(lvl.size(), effective_grain(grain, lvl.size()), [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) fn(lvl[i]);
      });
    }
  }

  /// Reverse sweep for adjoint propagation: levels run highest-first, so a
  /// gate executes only after every fanout (always at a strictly higher
  /// level) has finished. Within a level, fn(id) fans out across the pool;
  /// after each level's barrier, after_level(l) runs on the calling thread —
  /// the hook where cross-gate contributions are folded in a fixed order
  /// (e.g. via ScatterPlan::fold_add) before the next level reads them.
  template <class Fn, class AfterLevelFn>
  void for_each_gate_reverse(std::size_t grain, Fn&& fn, AfterLevelFn&& after_level) const {
    for (int l = num_levels(); l-- > 0;) {
      const netlist::NodeSpan lvl = level(l);
      parallel_for(lvl.size(), effective_grain(grain, lvl.size()), [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) fn(lvl[i]);
      });
      after_level(l);
    }
  }

  template <class Fn>
  void for_each_gate_reverse(std::size_t grain, Fn&& fn) const {
    for_each_gate_reverse(grain, fn, [](int) {});
  }

 private:
  /// Widening the grain to cover the whole level makes runtime::parallel_for
  /// take its inline path (with the same poll_cancel checkpoint), so a
  /// narrow level never pays pool dispatch.
  std::size_t effective_grain(std::size_t grain, std::size_t width) const {
    return width < serial_cutoff_ ? width : grain;
  }

  const netlist::TimingView* view_;
  std::size_t serial_cutoff_ = 0;
};

}  // namespace statsize::runtime
