// Levelized gate scheduler for the parallel runtime.
//
// Statistical timing propagation is embarrassingly parallel *within* a
// topological level: a gate's arrival depends only on fanins, which live at
// strictly smaller levels, so executing level 1, barrier, level 2, barrier,
// ... lets every gate in a level run concurrently with no synchronization
// beyond the barrier. The level partition itself is structural — Circuit
// computes and caches it once in finalize() (Circuit::gate_levels()); this
// class binds that cache to the global pool and adds the barriered executor.
//
// A LevelSchedule over a non-finalized circuit is rejected with
// std::logic_error: the level partition does not exist before finalize(),
// and silently building one from a half-wired graph would schedule gates
// before their fanins. tests/runtime_test.cpp pins this contract.

#pragma once

#include <cstddef>

#include "netlist/circuit.h"
#include "runtime/runtime.h"

namespace statsize::runtime {

class LevelSchedule {
 public:
  /// Binds to `circuit`'s cached level partition. Throws std::logic_error if
  /// the circuit is not finalized. The circuit must outlive the schedule.
  explicit LevelSchedule(const netlist::Circuit& circuit);

  int num_levels() const { return static_cast<int>(levels_->size()); }

  /// Gates at level `l` (0-based; level 0 holds gates fed only by primary
  /// inputs), in ascending topological-order position.
  const std::vector<netlist::NodeId>& level(int l) const {
    return (*levels_)[static_cast<std::size_t>(l)];
  }

  int num_gates() const { return num_gates_; }

  /// Runs fn(id) for every gate, level by level with a barrier between
  /// levels and the gates of each level fanned out across the global pool
  /// (`grain` gates per chunk). fn must only write to slots keyed by id.
  template <class Fn>
  void for_each_gate(std::size_t grain, Fn&& fn) const {
    for (const std::vector<netlist::NodeId>& lvl : *levels_) {
      parallel_for(lvl.size(), grain, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) fn(lvl[i]);
      });
    }
  }

  /// Reverse sweep for adjoint propagation: levels run highest-first, so a
  /// gate executes only after every fanout (always at a strictly higher
  /// level) has finished. Within a level, fn(id) fans out across the pool;
  /// after each level's barrier, after_level(l) runs on the calling thread —
  /// the hook where cross-gate contributions are folded in a fixed order
  /// (e.g. via ScatterPlan::fold_add) before the next level reads them.
  template <class Fn, class AfterLevelFn>
  void for_each_gate_reverse(std::size_t grain, Fn&& fn, AfterLevelFn&& after_level) const {
    for (int l = num_levels(); l-- > 0;) {
      const std::vector<netlist::NodeId>& lvl = level(l);
      parallel_for(lvl.size(), grain, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) fn(lvl[i]);
      });
      after_level(l);
    }
  }

  template <class Fn>
  void for_each_gate_reverse(std::size_t grain, Fn&& fn) const {
    for_each_gate_reverse(grain, fn, [](int) {});
  }

 private:
  const std::vector<std::vector<netlist::NodeId>>* levels_;
  int num_gates_ = 0;
};

}  // namespace statsize::runtime
