// Conflict-free deterministic scatter-accumulation for the parallel runtime.
//
// The runtime's discipline is "parallel evaluate, ordered combine" (DESIGN.md
// §7): work items write to disjoint slots, and whatever overlaps is folded in
// a fixed order. That discipline covers sums and maxima, but not the sparse
// scatter `out[targets[k]] += value[k]` that dominates Hessian-vector
// products and adjoint sweeps: there, many items hit the *same* target, so a
// naive parallel loop races and an atomic loop loses determinism (the fold
// order would depend on thread timing).
//
// ScatterPlan removes the conflict structurally by transposing the scatter
// into a gather. The plan is built once per *structure* (the target lists of
// the items never change between evaluations, only the values do):
//
//   build:  add_item(targets, n) per item, in the serial loop's item order —
//           each contribution gets a slot id, contiguous per item;
//           freeze() inverts the slot->target map into target->slots CSR,
//           with each target's slot list in ascending slot order.
//   use:    phase 1 (parallel over items): item i computes its contribution
//           values into slots [slot_begin(i), slot_begin(i) + n) of a scratch
//           buffer — disjoint writes, any schedule.
//           phase 2 (fold_add, parallel over *targets*): each target t does
//           out[t] += vals[s0] + vals[s1] + ... over its slots in ascending
//           slot order. A target is owned by exactly one chunk, so there are
//           no concurrent writes, and ascending slot order reproduces the
//           serial loop's accumulation order exactly — the additions hitting
//           any given target happen with the same operands in the same order
//           as `for item: for k: out[t] += v`, hence equal results at any
//           thread count (including the inline 1-thread path).
//
// Used by nlp::AugLagModel::hess_vec (element + Gauss-Newton scatters) and by
// core::ReducedEvaluator's level-by-level adjoint sweep (per-level fanin
// amu/avar pushes and fanout load-gradient pushes).

#pragma once

#include <cstddef>
#include <vector>

namespace statsize::runtime {

class ScatterPlan {
 public:
  /// Appends an item contributing to `targets[0..n)` (in that order, which
  /// must match the serial scatter's write order — duplicates allowed) and
  /// returns the item's first slot id. Only valid before freeze().
  std::size_t add_item(const int* targets, std::size_t n);

  /// Builds the target-major fold structure. `num_targets` bounds the target
  /// index space; every added target must be in [0, num_targets).
  void freeze(std::size_t num_targets);

  bool frozen() const { return frozen_; }
  std::size_t num_slots() const { return slot_target_.size(); }
  std::size_t num_targets() const { return num_targets_; }

  /// out[t] += sum of vals[s] over target t's slots in ascending slot order,
  /// fanned out across the global pool with `grain` targets per chunk (inline
  /// when the fold is narrower than runtime::level_serial_cutoff() — a
  /// sub-cutoff fold never pays dispatch). `vals` must hold num_slots()
  /// entries and `out` at least num_targets() entries. Deterministic at any
  /// thread count; equal to the serial item-order scatter wherever that
  /// scatter adds the same values.
  void fold_add(const double* vals, double* out, std::size_t grain = 32) const;

 private:
  bool frozen_ = false;
  std::size_t num_targets_ = 0;
  std::vector<int> slot_target_;          ///< slot -> target (build input)
  std::vector<int> targets_;              ///< distinct targets, ascending
  std::vector<std::size_t> row_begin_;    ///< CSR rows over targets_
  std::vector<std::size_t> slot_of_;      ///< CSR payload: slot ids, ascending
};

}  // namespace statsize::runtime
