#include "runtime/scatter_plan.h"

#include <stdexcept>

#include "runtime/runtime.h"

namespace statsize::runtime {

std::size_t ScatterPlan::add_item(const int* targets, std::size_t n) {
  if (frozen_) throw std::logic_error("ScatterPlan::add_item after freeze()");
  const std::size_t begin = slot_target_.size();
  slot_target_.insert(slot_target_.end(), targets, targets + n);
  return begin;
}

void ScatterPlan::freeze(std::size_t num_targets) {
  if (frozen_) throw std::logic_error("ScatterPlan::freeze called twice");
  num_targets_ = num_targets;

  // Counting sort of slots by target. Appending slots in ascending id order
  // leaves every target's slot list ascending — the property fold_add needs
  // to reproduce the serial scatter's per-target accumulation order.
  std::vector<std::size_t> count(num_targets, 0);
  for (const int t : slot_target_) {
    if (t < 0 || static_cast<std::size_t>(t) >= num_targets) {
      throw std::out_of_range("ScatterPlan: target index out of range");
    }
    ++count[static_cast<std::size_t>(t)];
  }
  std::size_t nonempty = 0;
  for (const std::size_t c : count) nonempty += c != 0 ? 1 : 0;
  targets_.reserve(nonempty);
  row_begin_.reserve(nonempty + 1);
  row_begin_.push_back(0);
  std::vector<std::size_t> row_of(num_targets, 0);
  for (std::size_t t = 0; t < num_targets; ++t) {
    if (count[t] == 0) continue;
    row_of[t] = targets_.size();
    targets_.push_back(static_cast<int>(t));
    row_begin_.push_back(row_begin_.back() + count[t]);
  }
  slot_of_.resize(slot_target_.size());
  std::vector<std::size_t> cursor(row_begin_.begin(), row_begin_.end() - 1);
  for (std::size_t s = 0; s < slot_target_.size(); ++s) {
    const std::size_t row = row_of[static_cast<std::size_t>(slot_target_[s])];
    slot_of_[cursor[row]++] = s;
  }
  frozen_ = true;
}

void ScatterPlan::fold_add(const double* vals, double* out, std::size_t grain) const {
  if (!frozen_) throw std::logic_error("ScatterPlan::fold_add before freeze()");
  // Granularity gate: a fold narrower than the serial cutoff cannot pay for
  // pool dispatch, so widen the grain to the whole range — parallel_for then
  // takes its inline path. Bit-identical either way (the per-target fold
  // order is fixed); this only moves wall-clock time, exactly like
  // LevelSchedule::effective_grain.
  std::size_t effective = grain;
  if (targets_.size() < level_serial_cutoff()) effective = targets_.size();
  parallel_for(targets_.size(), effective, [&](std::size_t rb, std::size_t re) {
    for (std::size_t r = rb; r < re; ++r) {
      double acc = out[static_cast<std::size_t>(targets_[r])];
      for (std::size_t k = row_begin_[r]; k < row_begin_[r + 1]; ++k) {
        acc += vals[slot_of_[k]];
      }
      out[static_cast<std::size_t>(targets_[r])] = acc;
    }
  });
}

}  // namespace statsize::runtime
