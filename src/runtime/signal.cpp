#include "runtime/signal.h"

#include <atomic>
#include <csignal>

namespace statsize::runtime {

namespace {

std::atomic<int> g_signal{0};
bool g_installed = false;

// std::atomic<bool>::store on a lock-free atomic and a lock-free atomic<int>
// store are both async-signal-safe in practice (they compile to plain atomic
// stores); nothing else happens in the handler.
extern "C" void statsize_interrupt_handler(int signum) {
  g_signal.store(signum, std::memory_order_relaxed);
  interrupt_token().request_cancel();
}

void install_one(int signum) {
  struct sigaction action {};
  action.sa_handler = statsize_interrupt_handler;
  sigemptyset(&action.sa_mask);
  // SA_RESETHAND: the first delivery runs our handler and restores the
  // default disposition, so a second Ctrl-C force-terminates a process whose
  // cooperative shutdown is stuck. SA_RESTART keeps blocking socket reads
  // (the serve daemon's accept/recv) from failing spuriously mid-request —
  // their SO_RCVTIMEO timeouts re-check the token anyway.
  action.sa_flags = SA_RESETHAND | SA_RESTART;
  sigaction(signum, &action, nullptr);
}

}  // namespace

CancellationToken& interrupt_token() {
  static CancellationToken token;
  return token;
}

void install_interrupt_handlers() {
  install_one(SIGINT);
  install_one(SIGTERM);
  g_installed = true;
}

bool interrupt_requested() { return interrupt_token().cancel_requested(); }

int interrupt_signal() { return g_signal.load(std::memory_order_relaxed); }

void reset_interrupt_state() {
  g_signal.store(0, std::memory_order_relaxed);
  interrupt_token().reset();
  if (g_installed) install_interrupt_handlers();
}

}  // namespace statsize::runtime
