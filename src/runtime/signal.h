// Graceful SIGINT/SIGTERM shutdown for long-running processes.
//
// Both the CLI (a multi-hour k2 solve) and the serve daemon want the same
// behaviour on Ctrl-C / kill: trip a process-global CancellationToken so
// every cooperative loop unwinds to its best checkpoint (DESIGN.md §9), then
// exit cleanly — never die mid-iterate with work lost. The handler itself
// only performs async-signal-safe work: one lock-free atomic store into the
// token plus recording which signal fired.
//
// A second SIGINT/SIGTERM falls back to the default disposition (the handler
// is installed with SA_RESETHAND), so a wedged process can still be killed
// with a second Ctrl-C.

#pragma once

#include "runtime/cancel.h"

namespace statsize::runtime {

/// The process-global interrupt token. Pass it as SizerOptions::cancel (the
/// CLI does) or poll it from a service loop; install_interrupt_handlers()
/// makes SIGINT/SIGTERM trip it.
CancellationToken& interrupt_token();

/// Installs SIGINT and SIGTERM handlers (idempotent) that request_cancel()
/// the interrupt token. One-shot per signal: the disposition resets to
/// default after the first delivery, so a repeat signal terminates.
void install_interrupt_handlers();

/// True once a handled signal has fired.
bool interrupt_requested();

/// The signal number that tripped the token (0 if none yet).
int interrupt_signal();

/// Test hook: clears the token and the recorded signal, and re-arms the
/// handlers if they were installed before.
void reset_interrupt_state();

}  // namespace statsize::runtime
