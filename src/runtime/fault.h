// Deterministic fault injection for resilience tests (DESIGN.md §9).
//
// Production code marks recovery-critical spots with named fault points:
//
//   if (fault::hit(fault::kAuglagObjective)) f = NaN;          // value fault
//   if (fault::hit(fault::kPoolChunk)) throw ...;              // task fault
//
// A site fires on exactly its configured hit count, once, so tests can force
// a NaN evaluation, a task exception, or a deadline expiry on an exact
// iteration and assert the recovery behaviour — not just hope for it.
//
// Arming:
//   * env:          STATSIZE_FAULT=<site>:<hit_n>   (hit_n >= 1; ":1" may be
//                   omitted), read by fault::arm_from_env() at CLI startup.
//   * programmatic: fault::arm("tron.iter:3") / fault::disarm(), or the RAII
//                   ScopedFault for tests.
//
// Zero overhead when off: every fault point first checks a single relaxed
// atomic flag (armed()); the site-name comparison and hit counting live
// behind it, so unarmed runs pay one predictable never-taken branch. Hit
// counting is mutex-serialized — deterministic for the single-site,
// single-thread-hit patterns tests use, and data-race-free everywhere (pool
// sites are hit from worker threads; the suite runs under TSan).

#pragma once

#include <string>
#include <vector>

#include <atomic>

namespace statsize::runtime::fault {

// ---------------------------------------------------------------------------
// Site registry. Every fault point in the codebase uses one of these names;
// arm() rejects names outside the registry so a typo in a test or in
// STATSIZE_FAULT fails loudly instead of silently never firing.
// ---------------------------------------------------------------------------

/// ThreadPool chunk body: fires as an injected std::runtime_error thrown from
/// whichever participant claims the matching chunk.
inline constexpr const char* kPoolChunk = "pool.chunk";

/// AugLagModel::eval objective accumulation: fires as a NaN objective value
/// (counted per gradient evaluation).
inline constexpr const char* kAuglagObjective = "auglag.eval.objective";

/// AugLagModel::eval constraint accumulation: fires as a NaN constraint value
/// (counted per gradient evaluation).
inline constexpr const char* kAuglagConstraint = "auglag.eval.constraint";

/// Augmented-Lagrangian outer loop head: fires as a deadline expiry
/// (OperationCancelled) at the start of the matching outer iteration.
inline constexpr const char* kAuglagOuter = "auglag.outer";

/// TRON trust-region iteration head: fires as a deadline expiry
/// (OperationCancelled) at the start of the matching inner iteration.
inline constexpr const char* kTronIter = "tron.iter";

/// Reduced-space SSTA evaluation: fires as a NaN circuit-delay mean (counted
/// per objective evaluation of the reduced-space sizer).
inline constexpr const char* kReducedEval = "reduced.eval";

/// All registered site names (for --help style listings and arm validation).
const std::vector<const char*>& known_sites();

// ---------------------------------------------------------------------------
// Arming and firing.
// ---------------------------------------------------------------------------

namespace detail {
extern std::atomic<bool> g_armed;
/// Slow path: counts a hit on `site`; true exactly on the armed hit.
bool fires(const char* site);
}  // namespace detail

/// True when a fault spec is armed (single relaxed load — the fast path).
inline bool armed() { return detail::g_armed.load(std::memory_order_relaxed); }

/// The fault point: counts a hit when armed and returns true exactly on the
/// configured hit of the configured site. When unarmed: one relaxed load.
inline bool hit(const char* site) { return armed() && detail::fires(site); }

/// Arms "<site>:<hit_n>" (or "<site>", hit 1). Throws std::invalid_argument
/// on an unknown site or malformed hit count. Re-arming replaces the
/// previous spec and resets the hit counter.
void arm(const std::string& spec);

/// Arms from the STATSIZE_FAULT environment variable; no-op when unset.
/// A malformed value is a hard error (a silently ignored fault spec would
/// make a resilience test vacuously pass).
void arm_from_env();

/// Disarms and resets all counters.
void disarm();

/// Hits observed on the armed site so far (test introspection).
long hits_observed();

/// RAII arm/disarm for tests.
class ScopedFault {
 public:
  explicit ScopedFault(const std::string& spec) { arm(spec); }
  ~ScopedFault() { disarm(); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;
};

}  // namespace statsize::runtime::fault
