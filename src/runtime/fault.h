// Deterministic fault injection for resilience tests (DESIGN.md §9).
//
// Production code marks recovery-critical spots with named fault points:
//
//   if (fault::hit(fault::kAuglagObjective)) f = NaN;          // value fault
//   if (fault::hit(fault::kPoolChunk)) throw ...;              // task fault
//
// A site fires on exactly its configured hit count, once, so tests can force
// a NaN evaluation, a task exception, or a deadline expiry on an exact
// iteration and assert the recovery behaviour — not just hope for it.
//
// Arming:
//   * env:          STATSIZE_FAULT=<site>:<hit_n>   (hit_n >= 1; ":1" may be
//                   omitted), read by fault::arm_from_env() at CLI startup.
//   * programmatic: fault::arm("tron.iter:3") / fault::disarm(), or the RAII
//                   ScopedFault for tests.
//   * multi-site:   a comma-separated schedule arms several sites at once —
//                   "serve.read:3,serve.journal.write:1" — each with its own
//                   hit counter, each firing exactly once. Precedence: when
//                   the same site appears more than once in one schedule, the
//                   LAST entry wins (its hit count replaces the earlier one).
//                   arm() validates the whole schedule before touching any
//                   state, so a bad entry leaves the previous arming intact.
//                   disarm() always clears every armed site and counter.
//
// Zero overhead when off: every fault point first checks a single relaxed
// atomic flag (armed()); the site-name comparison and hit counting live
// behind it, so unarmed runs pay one predictable never-taken branch. Hit
// counting is mutex-serialized — deterministic for the single-site,
// single-thread-hit patterns tests use, and data-race-free everywhere (pool
// sites are hit from worker threads; the suite runs under TSan).

#pragma once

#include <string>
#include <vector>

#include <atomic>

namespace statsize::runtime::fault {

// ---------------------------------------------------------------------------
// Site registry. Every fault point in the codebase uses one of these names;
// arm() rejects names outside the registry so a typo in a test or in
// STATSIZE_FAULT fails loudly instead of silently never firing.
// ---------------------------------------------------------------------------

/// ThreadPool chunk body: fires as an injected std::runtime_error thrown from
/// whichever participant claims the matching chunk.
inline constexpr const char* kPoolChunk = "pool.chunk";

/// AugLagModel::eval objective accumulation: fires as a NaN objective value
/// (counted per gradient evaluation).
inline constexpr const char* kAuglagObjective = "auglag.eval.objective";

/// AugLagModel::eval constraint accumulation: fires as a NaN constraint value
/// (counted per gradient evaluation).
inline constexpr const char* kAuglagConstraint = "auglag.eval.constraint";

/// Augmented-Lagrangian outer loop head: fires as a deadline expiry
/// (OperationCancelled) at the start of the matching outer iteration.
inline constexpr const char* kAuglagOuter = "auglag.outer";

/// TRON trust-region iteration head: fires as a deadline expiry
/// (OperationCancelled) at the start of the matching inner iteration.
inline constexpr const char* kTronIter = "tron.iter";

/// Reduced-space SSTA evaluation: fires as a NaN circuit-delay mean (counted
/// per objective evaluation of the reduced-space sizer).
inline constexpr const char* kReducedEval = "reduced.eval";

// -- Serve/IO chaos sites (DESIGN.md §13). Counted per opportunity; each
// fires as the failure mode a hostile network or a dying box would produce.

/// Server accept loop: fires as an immediate close of the freshly accepted
/// connection (counted per accept) — the client sees a reset before any byte.
inline constexpr const char* kServeAccept = "serve.accept";

/// Server request read: fires as a dropped connection after a complete
/// request was parsed but before it is handled (counted per request).
inline constexpr const char* kServeRead = "serve.read";

/// Server response write: fires as a torn response — only a prefix of the
/// serialized bytes is sent before the connection dies (counted per
/// response write).
inline constexpr const char* kServeWritePartial = "serve.write.partial";

/// Journal append: fires as a torn record — a prefix of the framed record
/// reaches the file, then the write fails (counted per append). The journal
/// repairs its tail on the next append; a crash before that leaves the torn
/// tail for recovery replay to truncate.
inline constexpr const char* kServeJournalWrite = "serve.journal.write";

/// Job executor: fires as a simulated executor crash at job start — the job
/// dies without a terminal journal record, so restart recovery must surface
/// it as `interrupted` (counted per job run).
inline constexpr const char* kServeExecutorCrash = "serve.executor.crash";

/// Circuit cache insert: fires as a forced eviction of the least-recently
/// used entry even below capacity (counted per insert) — exercises jobs
/// holding entries across eviction and recovery with missing circuits.
inline constexpr const char* kCacheEvict = "cache.evict";

/// All registered site names (for --help style listings and arm validation).
const std::vector<const char*>& known_sites();

// ---------------------------------------------------------------------------
// Arming and firing.
// ---------------------------------------------------------------------------

namespace detail {
extern std::atomic<bool> g_armed;
/// Slow path: counts a hit on `site`; true exactly on the armed hit.
bool fires(const char* site);
}  // namespace detail

/// True when a fault spec is armed (single relaxed load — the fast path).
inline bool armed() { return detail::g_armed.load(std::memory_order_relaxed); }

/// The fault point: counts a hit when armed and returns true exactly on the
/// configured hit of the configured site. When unarmed: one relaxed load.
inline bool hit(const char* site) { return armed() && detail::fires(site); }

/// Arms a schedule of one or more comma-separated "<site>:<hit_n>" entries
/// (":1" may be omitted). Throws std::invalid_argument on an unknown site,
/// malformed hit count, or empty entry — and in that case leaves any
/// previously armed schedule untouched. Re-arming replaces the previous
/// schedule and resets every hit counter. A site repeated within one
/// schedule keeps only the last entry.
void arm(const std::string& spec);

/// Arms from the STATSIZE_FAULT environment variable; no-op when unset.
/// A malformed value is a hard error (a silently ignored fault spec would
/// make a resilience test vacuously pass).
void arm_from_env();

/// Disarms and resets all counters.
void disarm();

/// Total hits observed across every armed site so far (test introspection).
/// Counting continues after an entry fires — the value reports opportunities
/// seen at armed sites over the whole armed window.
long hits_observed();

/// Hits observed on one armed site (0 when the site is not armed).
long hits_observed(const char* site);

/// True when the armed entry for `site` has already fired (false when the
/// site is not armed).
bool fired(const char* site);

/// Number of armed entries that have fired so far (metrics introspection).
long fires_observed();

/// RAII arm/disarm for tests.
class ScopedFault {
 public:
  explicit ScopedFault(const std::string& spec) { arm(spec); }
  ~ScopedFault() { disarm(); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;
};

}  // namespace statsize::runtime::fault
