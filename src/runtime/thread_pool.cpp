#include "runtime/thread_pool.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "runtime/cancel.h"
#include "runtime/fault.h"

namespace statsize::runtime {

namespace {

/// Pool this thread is currently executing for (as a persistent worker, or
/// as the owner while it drains its own region's chunks). A parallel_for on
/// the same pool from such a thread runs inline: the owner cannot host a
/// second region (it is inside one), and a worker blocking on for_mutex_
/// while its own team waits for it at the barrier would deadlock. Inline
/// execution is value-identical — chunk outputs are index-keyed.
thread_local ThreadPool* t_active_pool = nullptr;

/// Bounded spin before blocking. Yield-based so an oversubscribed host
/// (including the 1-core case) hands the core to whoever has work; on a
/// multicore box back-to-back regions are caught mid-spin and never pay the
/// sleep/wake round trip.
constexpr int kSpinIterations = 256;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  const int workers = std::max(1, num_threads) - 1;
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_seq_cst);
  {
    const std::lock_guard<std::mutex> lock(sleep_mutex_);
    sleep_cv_.notify_all();
  }
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::wake_sleepers() {
  // Dekker handshake, publisher side: the work signal (epoch_, task_pending_
  // or stop_) was stored seq_cst before this seq_cst load. A worker raises
  // sleepers_ (seq_cst) before re-checking those signals under sleep_mutex_,
  // so either it sees the new signal and never sleeps, or this load sees its
  // raised count and the notify below — serialized against the worker's
  // predicate check by sleep_mutex_ — lands. No lost wakeup either way.
  if (sleepers_.load(std::memory_order_seq_cst) > 0) {
    const std::lock_guard<std::mutex> lock(sleep_mutex_);
    sleep_cv_.notify_all();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {  // single-threaded pool: run inline
    task();
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(task_mutex_);
    tasks_.push_back(std::move(task));
  }
  task_pending_.fetch_add(1, std::memory_order_seq_cst);
  wake_sleepers();
}

bool ThreadPool::run_one_task() {
  std::function<void()> task;
  {
    const std::lock_guard<std::mutex> lock(task_mutex_);
    if (tasks_.empty()) return false;
    task = std::move(tasks_.front());
    tasks_.pop_front();
    task_pending_.fetch_sub(1, std::memory_order_relaxed);
  }
  task();
  return true;
}

void ThreadPool::drain_region() {
  const std::size_t total = region_.total_chunks;
  for (;;) {
    const std::size_t chunk = region_.next.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= total) return;
    const std::size_t begin = chunk * region_.grain;
    const std::size_t end = std::min(begin + region_.grain, region_.n);
    try {
      // Cooperative cancellation checkpoint: a deadline/cancel stops the
      // loop within one chunk's overshoot, reusing the exception machinery
      // below (first thrower cancels the remaining claims). Unarmed, both
      // checks are one relaxed atomic load each.
      poll_cancel();
      if (fault::hit(fault::kPoolChunk)) {
        throw std::runtime_error("injected fault: pool.chunk");
      }
      (*region_.body)(begin, end);
    } catch (...) {
      {
        const std::lock_guard<std::mutex> lock(error_mutex_);
        if (!error_) error_ = std::current_exception();
      }
      // Exhaust the cursor so further claims stop. A chunk claimed between
      // the throw and this store still executes (same best-effort window the
      // previous exchange-based design had); completion needs no chunk
      // accounting — the end-of-region barrier already proves every
      // participant is done claiming.
      region_.next.store(total, std::memory_order_relaxed);
      return;
    }
  }
}

void ThreadPool::worker_main() {
  t_active_pool = this;
  std::uint64_t seen = 0;
  for (;;) {
    // Work signals, checked hottest-first.
    const std::uint64_t e = epoch_.load(std::memory_order_seq_cst);
    if (e != seen) {
      seen = e;
      drain_region();
      // End-of-region barrier: the last arriver wakes the owner. Always
      // lock+notify — the owner may have just started its blocking wait,
      // and locking owner_mutex_ orders this notify after its predicate
      // check. Once per region per team, so the cost is noise.
      if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == workers_.size()) {
        const std::lock_guard<std::mutex> lock(owner_mutex_);
        owner_cv_.notify_one();
      }
      continue;
    }
    if (task_pending_.load(std::memory_order_acquire) > 0 && run_one_task()) continue;
    if (stop_.load(std::memory_order_acquire)) return;

    // Idle: spin briefly (catches back-to-back regions), then block.
    bool signaled = false;
    for (int spin = 0; spin < kSpinIterations; ++spin) {
      if (epoch_.load(std::memory_order_relaxed) != seen ||
          task_pending_.load(std::memory_order_relaxed) > 0 ||
          stop_.load(std::memory_order_relaxed)) {
        signaled = true;
        break;
      }
      std::this_thread::yield();
    }
    if (signaled) continue;

    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    {
      std::unique_lock<std::mutex> lock(sleep_mutex_);
      sleep_cv_.wait(lock, [&] {
        return epoch_.load(std::memory_order_seq_cst) != seen ||
               task_pending_.load(std::memory_order_acquire) > 0 ||
               stop_.load(std::memory_order_acquire);
      });
    }
    sleepers_.fetch_sub(1, std::memory_order_seq_cst);
  }
}

void ThreadPool::parallel_for(std::size_t n, std::size_t grain, RangeFn body) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  if (workers_.empty() || n <= grain || t_active_pool == this) {
    poll_cancel();  // the single-chunk equivalent of the per-chunk checkpoint
    body(0, n);
    return;
  }
  const std::lock_guard<std::mutex> owner(for_mutex_);
  // Fill the descriptor. Safe without atomics: the previous region's end
  // barrier proved every worker is out of drain_region, and the epoch bump
  // below releases these writes to the team.
  region_.n = n;
  region_.grain = grain;
  region_.total_chunks = (n + grain - 1) / grain;
  region_.body = &body;
  region_.next.store(0, std::memory_order_relaxed);
  error_ = nullptr;

  epoch_.fetch_add(1, std::memory_order_seq_cst);
  wake_sleepers();

  // The owner is a full participant; its chunks run with the active-pool
  // marker set so a nested parallel_for from the body runs inline instead of
  // self-deadlocking on for_mutex_.
  ThreadPool* const prev_active = t_active_pool;
  t_active_pool = this;
  drain_region();  // never throws — failures land in error_
  t_active_pool = prev_active;

  // Full-team end barrier: every worker checks in exactly once per epoch,
  // even if it claimed no chunks. Spin first (workers finish while the owner
  // drains its last chunk in the common case), then block.
  const std::size_t team = workers_.size();
  bool done = arrived_.load(std::memory_order_acquire) == team;
  for (int spin = 0; !done && spin < kSpinIterations; ++spin) {
    std::this_thread::yield();
    done = arrived_.load(std::memory_order_acquire) == team;
  }
  if (!done) {
    std::unique_lock<std::mutex> lock(owner_mutex_);
    owner_cv_.wait(lock,
                   [&] { return arrived_.load(std::memory_order_acquire) == team; });
  }
  arrived_.store(0, std::memory_order_relaxed);
  region_.body = nullptr;

  if (error_) {
    const std::exception_ptr err = std::exchange(error_, nullptr);
    std::rethrow_exception(err);
  }
}

}  // namespace statsize::runtime
