#include "runtime/thread_pool.h"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <utility>

#include "runtime/cancel.h"
#include "runtime/fault.h"

namespace statsize::runtime {

namespace {

/// Shared state of one parallel_for invocation. Heap-allocated and held via
/// shared_ptr by every helper task so a helper scheduled after the loop
/// already finished can still touch it safely (it just sees no work left).
struct ForJob {
  std::size_t n = 0;
  std::size_t grain = 1;
  std::size_t total_chunks = 0;
  const RangeFn* body = nullptr;

  std::atomic<std::size_t> next{0};  // next unclaimed chunk
  std::atomic<std::size_t> done{0};  // completed chunks

  std::mutex mutex;
  std::condition_variable cv;
  std::exception_ptr error;  // first failure, guarded by mutex

  /// Marks `count` chunks as retired and wakes the waiter when every chunk
  /// is accounted for (executed, or skipped by cancellation).
  void retire(std::size_t count) {
    if (done.fetch_add(count, std::memory_order_acq_rel) + count == total_chunks) {
      const std::lock_guard<std::mutex> lock(mutex);
      cv.notify_all();
    }
  }

  /// Claims and runs chunks until none are left. Returns once this
  /// participant cannot obtain more work (others may still be mid-chunk).
  void drain() {
    for (;;) {
      const std::size_t chunk = next.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= total_chunks) return;
      const std::size_t begin = chunk * grain;
      const std::size_t end = std::min(begin + grain, n);
      try {
        // Cooperative cancellation checkpoint: a deadline/cancel stops the
        // loop within one chunk's overshoot, reusing the exception machinery
        // below (first thrower cancels the remaining claims). Unarmed, both
        // checks are one relaxed atomic load each.
        poll_cancel();
        if (fault::hit(fault::kPoolChunk)) {
          throw std::runtime_error("injected fault: pool.chunk");
        }
        (*body)(begin, end);
        retire(1);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(mutex);
          if (!error) error = std::current_exception();
        }
        // Cancel further claims. The exchange is an atomic RMW, so claims
        // serialize against it: every value below `old` was (or will be)
        // claimed by exactly one participant and retires itself; values in
        // [old, total_chunks) can never be claimed, so this thread retires
        // them on their behalf — otherwise wait() would block forever on a
        // done count that can no longer reach total_chunks. A concurrent
        // second canceller sees old >= total_chunks and retires only its own
        // chunk, so nothing is double-counted.
        const std::size_t old =
            std::min(next.exchange(total_chunks, std::memory_order_relaxed), total_chunks);
        retire(1 + (total_chunks - old));
      }
    }
  }

  void wait() {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [this] { return done.load(std::memory_order_acquire) == total_chunks; });
  }
};

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  const int workers = std::max(1, num_threads) - 1;
  deques_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) deques_.push_back(std::make_unique<Deque>());
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { worker_main(static_cast<std::size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  {
    const std::lock_guard<std::mutex> lock(sleep_mutex_);
    sleep_cv_.notify_all();
  }
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (deques_.empty()) {  // single-threaded pool: run inline
    task();
    return;
  }
  const std::size_t slot = next_deque_.fetch_add(1, std::memory_order_relaxed) % deques_.size();
  {
    const std::lock_guard<std::mutex> lock(deques_[slot]->mutex);
    deques_[slot]->tasks.push_back(std::move(task));
  }
  pending_.fetch_add(1, std::memory_order_release);
  {
    const std::lock_guard<std::mutex> lock(sleep_mutex_);
    sleep_cv_.notify_one();
  }
}

bool ThreadPool::try_run_one(std::size_t self) {
  std::function<void()> task;
  // Own deque first (back = most recently pushed, cache-warm) ...
  {
    Deque& own = *deques_[self];
    const std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.back());
      own.tasks.pop_back();
    }
  }
  // ... then steal the oldest task from a sibling.
  if (!task) {
    for (std::size_t k = 1; k < deques_.size() && !task; ++k) {
      Deque& victim = *deques_[(self + k) % deques_.size()];
      const std::lock_guard<std::mutex> lock(victim.mutex);
      if (!victim.tasks.empty()) {
        task = std::move(victim.tasks.front());
        victim.tasks.pop_front();
      }
    }
  }
  if (!task) return false;
  pending_.fetch_sub(1, std::memory_order_release);
  task();
  return true;
}

void ThreadPool::worker_main(std::size_t self) {
  while (!stop_.load(std::memory_order_acquire)) {
    if (try_run_one(self)) continue;
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    sleep_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
  }
}

void ThreadPool::parallel_for(std::size_t n, std::size_t grain, RangeFn body) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  if (deques_.empty() || n <= grain) {
    poll_cancel();  // the single-chunk equivalent of the per-chunk checkpoint
    body(0, n);
    return;
  }
  auto job = std::make_shared<ForJob>();
  job->n = n;
  job->grain = grain;
  job->total_chunks = (n + grain - 1) / grain;
  job->body = &body;

  // One helper per worker, capped by the chunk count (the caller is the
  // remaining participant). Helpers that wake up late find no work and exit.
  const std::size_t helpers =
      std::min(workers_.size(), job->total_chunks > 1 ? job->total_chunks - 1 : 0);
  for (std::size_t i = 0; i < helpers; ++i) {
    submit([job] { job->drain(); });
  }
  job->drain();
  job->wait();
  if (job->error) std::rethrow_exception(job->error);
}

}  // namespace statsize::runtime
