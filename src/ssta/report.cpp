#include "ssta/report.h"

#include <ostream>

#include "ssta/canonical.h"
#include "util/json.h"

namespace statsize::ssta {

using netlist::NodeId;
using netlist::NodeKind;

void write_json_report(std::ostream& out, const netlist::Circuit& circuit,
                       const DelayCalculator& calc, const std::vector<double>& speed,
                       const JsonReportOptions& options) {
  const auto delays = calc.all_delays(speed);
  const TimingReport timing = run_ssta(circuit, delays);
  const double deadline = options.deadline > 0.0
                              ? options.deadline
                              : timing.circuit_delay.quantile_offset(3.0);
  const SlackReport slacks = compute_slacks(circuit, delays, timing, deadline);

  util::JsonWriter w(out);
  w.begin_object();

  w.key("circuit").begin_object();
  const netlist::CircuitStats stats = netlist::compute_stats(circuit);
  w.key("gates").value(stats.num_gates);
  w.key("inputs").value(stats.num_inputs);
  w.key("outputs").value(stats.num_outputs);
  w.key("depth").value(stats.depth);
  w.end_object();

  w.key("sigma_model").begin_object();
  w.key("kappa").value(calc.sigma_model().kappa);
  w.key("offset").value(calc.sigma_model().offset);
  w.end_object();

  w.key("delay").begin_object();
  w.key("mu").value(timing.circuit_delay.mu);
  w.key("sigma").value(timing.circuit_delay.sigma());
  w.key("mu_plus_3sigma").value(timing.circuit_delay.quantile_offset(3.0));
  if (options.include_canonical) {
    const stat::NormalRV can = run_canonical_ssta(circuit, delays).circuit_delay_normal();
    w.key("canonical_mu").value(can.mu);
    w.key("canonical_sigma").value(can.sigma());
  }
  w.end_object();

  w.key("area").begin_object();
  w.key("sum_speed").value(DelayCalculator::total_speed(circuit, speed));
  w.key("weighted_area").value(DelayCalculator::total_area(circuit, speed));
  w.end_object();

  w.key("deadline").value(deadline);

  if (options.solve) {
    const SolveReport& s = *options.solve;
    w.key("solve").begin_object();
    w.key("status").value(s.status);
    w.key("converged").value(s.converged);
    w.key("iterations").value(s.iterations);
    w.key("wall_seconds").value(s.wall_seconds);
    w.key("resilience").begin_object();
    w.key("retries_used").value(s.retries_used);
    w.key("from_checkpoint").value(s.from_checkpoint);
    w.key("checkpoint_outer").value(s.checkpoint_outer);
    w.key("breakdown_site").value(s.breakdown_site);
    w.end_object();
    w.end_object();
  }

  w.key("critical_path").begin_array();
  for (NodeId id : extract_critical_path(circuit, timing)) {
    w.value(circuit.node(id).name);
  }
  w.end_array();

  if (options.include_per_node) {
    w.key("gates").begin_array();
    for (NodeId id : circuit.topo_order()) {
      const netlist::Node& n = circuit.node(id);
      if (n.kind != NodeKind::kGate) continue;
      const std::size_t i = static_cast<std::size_t>(id);
      w.begin_object();
      w.key("name").value(n.name);
      w.key("cell").value(circuit.cell_of(id).name);
      w.key("speed").value(speed[i]);
      w.key("arrival_mu").value(timing.arrival[i].mu);
      w.key("arrival_sigma").value(timing.arrival[i].sigma());
      w.key("slack_mu").value(slacks.slack[i].mu);
      w.key("meet_probability").value(slacks.meet_probability(id));
      w.end_object();
    }
    w.end_array();
  }

  w.end_object();
}

}  // namespace statsize::ssta
