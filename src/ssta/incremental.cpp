#include "ssta/incremental.h"

#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>

#include "runtime/runtime.h"
#include "stat/clark.h"

namespace statsize::ssta {

using netlist::NodeId;
using netlist::NodeKind;
using stat::NormalRV;

namespace {

/// Bitwise moment comparison — the propagation-termination predicate. Exact
/// bit equality (not ==) keeps the contract conservative: any representation
/// change, however tiny, keeps propagating; only a byte-identical value can
/// cut the cone, and a byte-identical value by construction yields
/// byte-identical downstream folds.
bool same_bits(const NormalRV& a, const NormalRV& b) {
  return std::memcmp(&a.mu, &b.mu, sizeof(double)) == 0 &&
         std::memcmp(&a.var, &b.var, sizeof(double)) == 0;
}

void require_positive_speed(double s, NodeId id) {
  if (!std::isfinite(s) || s <= 0.0) {
    throw std::invalid_argument("IncrementalEngine: speed " + std::to_string(s) + " for node " +
                                std::to_string(id) +
                                " must be finite and positive (eq. 14 divides by it)");
  }
}

}  // namespace

IncrementalEngine::IncrementalEngine(const netlist::TimingView& view,
                                     std::vector<double> initial_speed, SigmaModel sigma_model,
                                     NormalRV input_arrival)
    : view_(view), sigma_model_(sigma_model), speed_(std::move(initial_speed)) {
  const std::size_t n = static_cast<std::size_t>(view_.num_nodes());
  if (speed_.size() != n) {
    throw std::invalid_argument("IncrementalEngine: speed must be indexed by NodeId (" +
                                std::to_string(speed_.size()) + " entries for " +
                                std::to_string(n) + " nodes)");
  }
  for (NodeId g : view_.gates_in_topo_order()) {
    require_positive_speed(speed_[static_cast<std::size_t>(g)], g);
  }
  input_arrivals_.assign(static_cast<std::size_t>(view_.num_inputs()), input_arrival);

  delay_dirty_mask_.assign(n, 0);
  queued_mask_.assign(n, 0);
  bucket_.assign(static_cast<std::size_t>(view_.num_levels()), {});

  full_recompute();
}

void IncrementalEngine::full_recompute() {
  delay_ = DelayCalculator(view_, sigma_model_).all_delays(speed_);
  TimingReport report = run_ssta(view_, delay_, input_arrivals_);
  arrival_ = std::move(report.arrival);
  tmax_ = report.circuit_delay;
  view_.clear_dirty();
  last_delay_recomputes_ = static_cast<std::size_t>(view_.num_gates());
  last_arrival_recomputes_ = static_cast<std::size_t>(view_.num_gates());
}

NormalRV IncrementalEngine::apply_edits(const std::vector<TimingEdit>& edits) {
  // Validate the whole batch before touching any state, so a bad edit in the
  // middle cannot leave the caches half-updated.
  for (const TimingEdit& e : edits) {
    if (e.node < 0 || e.node >= static_cast<NodeId>(view_.num_nodes()) ||
        !view_.is_gate(e.node)) {
      throw std::invalid_argument("IncrementalEngine::apply_edits: node " +
                                  std::to_string(e.node) + " is not a gate of this view");
    }
    if (e.kind == TimingEdit::Kind::kSpeed) {
      require_positive_speed(e.speed, e.node);
    } else {
      for (double v : {e.params.t_int, e.params.c, e.params.c_in, e.params.area}) {
        if (!std::isfinite(v)) {
          throw std::invalid_argument("IncrementalEngine::apply_edits: non-finite parameter for "
                                      "node " +
                                      std::to_string(e.node));
        }
      }
    }
  }

  // Phase 1 — apply edits, collecting the delay-dirty set: the edited gate
  // (its own delay divides by its speed and reads its t_int / c) plus its
  // gate fanins (their load carries the edited gate's c_in * speed term).
  delay_dirty_.clear();
  auto mark_delay_dirty = [&](NodeId g) {
    if (!view_.is_gate(g)) return;  // primary inputs have no delay
    unsigned char& m = delay_dirty_mask_[static_cast<std::size_t>(g)];
    if (!m) {
      m = 1;
      delay_dirty_.push_back(g);
    }
  };
  for (const TimingEdit& e : edits) {
    const std::size_t i = static_cast<std::size_t>(e.node);
    if (e.kind == TimingEdit::Kind::kSpeed) {
      if (std::memcmp(&speed_[i], &e.speed, sizeof(double)) == 0) continue;
      speed_[i] = e.speed;
      mark_delay_dirty(e.node);
      for (NodeId f : view_.fanins(e.node)) mark_delay_dirty(f);
    } else {
      const netlist::NodeParams old = view_.node_params(e.node);
      if (old.t_int == e.params.t_int && old.c == e.params.c && old.c_in == e.params.c_in &&
          old.area == e.params.area) {
        continue;
      }
      view_.update_node_params(e.node, e.params);
      mark_delay_dirty(e.node);
      if (old.c_in != e.params.c_in) {
        for (NodeId f : view_.fanins(e.node)) mark_delay_dirty(f);
      }
    }
  }

  // Phase 2 — recompute dirty delays; a bitwise-changed delay seeds the
  // worklist at its gate's level. load_capacitance here is pinned
  // bit-identical to the batched pass full_recompute uses (timing_view.h).
  last_delay_recomputes_ = delay_dirty_.size();
  for (NodeId g : delay_dirty_) {
    const std::size_t i = static_cast<std::size_t>(g);
    delay_dirty_mask_[i] = 0;
    const double load = view_.load_capacitance(g, speed_.data());
    const double mu = view_.t_int(g) + view_.drive_c(g) * load / speed_[i];
    const NormalRV d = NormalRV::from_sigma(mu, sigma_model_.sigma(mu));
    if (!same_bits(d, delay_[i])) {
      delay_[i] = d;
      enqueue(g);
    }
  }
  delay_dirty_.clear();

  // Phases 3 + 4 — level-ordered cone repropagation, then the output fold.
  propagate();
  refold_outputs();
  view_.clear_dirty();
  return tmax_;
}

void IncrementalEngine::enqueue(NodeId gate) {
  unsigned char& m = queued_mask_[static_cast<std::size_t>(gate)];
  if (m) return;
  m = 1;
  // Gate levels are 1-based (inputs sit at level 0).
  bucket_[static_cast<std::size_t>(view_.level(gate) - 1)].push_back(gate);
}

void IncrementalEngine::propagate() {
  // Parallel policy mirrors run_ssta's: pool dispatch only when the view is
  // big enough to ever profit, and per bucket only when the bucket is at
  // least the level serial cutoff wide (narrow buckets take parallel_for's
  // inline path by widening the grain, as LevelSchedule does). Either way
  // the compute phase writes disjoint per-position scratch slots and the
  // commit phase below runs serially in bucket order — values cannot depend
  // on the thread count or the cutoff.
  const bool pool_eligible =
      runtime::threads() > 1 && view_.num_gates() >= kParallelGateCutoff;
  const std::size_t cutoff = runtime::level_serial_cutoff();

  last_arrival_recomputes_ = 0;
  const int num_levels = view_.num_levels();
  for (int l = 0; l < num_levels; ++l) {
    std::vector<NodeId>& bucket = bucket_[static_cast<std::size_t>(l)];
    if (bucket.empty()) continue;
    const std::size_t width = bucket.size();
    last_arrival_recomputes_ += width;

    scratch_arrival_.resize(width);
    scratch_changed_.assign(width, 0);
    auto eval = [&](std::size_t i) {
      const NodeId g = bucket[i];
      const netlist::NodeSpan fanins = view_.fanins(g);
      NormalRV u = arrival_[static_cast<std::size_t>(fanins[0])];
      for (std::size_t k = 1; k < fanins.size(); ++k) {
        u = stat::clark_max(u, arrival_[static_cast<std::size_t>(fanins[k])]);
      }
      const NormalRV a = stat::add(u, delay_[static_cast<std::size_t>(g)]);
      scratch_arrival_[i] = a;
      scratch_changed_[i] = same_bits(a, arrival_[static_cast<std::size_t>(g)]) ? 0 : 1;
    };
    if (pool_eligible) {
      const std::size_t grain = width < cutoff ? width : kGateGrain;
      runtime::parallel_for(width, grain, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) eval(i);
      });
    } else {
      for (std::size_t i = 0; i < width; ++i) eval(i);
    }

    // Serial commit + frontier push. Fanouts always sit at strictly higher
    // levels, so enqueue never touches the bucket being drained.
    for (std::size_t i = 0; i < width; ++i) {
      const NodeId g = bucket[i];
      queued_mask_[static_cast<std::size_t>(g)] = 0;
      if (!scratch_changed_[i]) continue;
      arrival_[static_cast<std::size_t>(g)] = scratch_arrival_[i];
      for (NodeId fo : view_.fanouts(g)) enqueue(fo);
    }
    bucket.clear();
  }
}

void IncrementalEngine::refold_outputs() {
  const std::vector<NodeId>& outs = view_.outputs();
  NormalRV total = arrival_[static_cast<std::size_t>(outs[0])];
  for (std::size_t i = 1; i < outs.size(); ++i) {
    total = stat::clark_max(total, arrival_[static_cast<std::size_t>(outs[i])]);
  }
  tmax_ = total;
}

}  // namespace statsize::ssta
