// Zero-delay switching-activity estimation — the substrate behind the
// paper's power objective (sec. 4: the weighted sum of sizing factors "can
// model area, or, if we take into account capacitances and switching activity
// under zero delay model in the weights, power"; see also Jacobs [8]).
//
// Signal probabilities propagate through the Boolean cell functions under the
// standard spatial-independence approximation; toggle activity at a net under
// temporally independent input vectors is a = 2 p (1 - p). The power weight
// of a gate's speed factor collects every capacitance term that scales
// linearly with it: its input-pin capacitance (charged at the fanin nets'
// activity) plus its internal capacitance (charged at its own output
// activity).

#pragma once

#include <vector>

#include "netlist/circuit.h"

namespace statsize::ssta {

/// P(node = 1) for every node, inputs at `input_probability`.
std::vector<double> signal_probabilities(const netlist::Circuit& circuit,
                                         double input_probability = 0.5);

/// Toggle probability per evaluation cycle: 2 p (1 - p), per node.
std::vector<double> switching_activity(const netlist::Circuit& circuit,
                                       double input_probability = 0.5);

/// Per-gate power weights w_g such that dynamic power ~ sum_g w_g * S_g
/// (indexed by NodeId; non-gates get 0). `internal_cap_fraction` scales the
/// gate's own c_in into an internal-capacitance estimate.
std::vector<double> power_weights(const netlist::Circuit& circuit,
                                  double input_probability = 0.5,
                                  double internal_cap_fraction = 0.5);

/// Monte Carlo estimate of the signal probabilities (oracle for tests): draws
/// `num_samples` random input vectors and evaluates the circuit exactly —
/// including the reconvergence correlations the analytic propagation ignores.
std::vector<double> signal_probabilities_monte_carlo(const netlist::Circuit& circuit,
                                                     int num_samples,
                                                     std::uint64_t seed = 1,
                                                     double input_probability = 0.5);

}  // namespace statsize::ssta
