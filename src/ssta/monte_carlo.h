// Monte Carlo timing — the validation oracle.
//
// The paper's predecessors ([9]) obtained statistical timing by Monte Carlo
// simulation, which the paper rejects for optimization because of cost but
// which remains the ground truth: it makes no independence assumption, so it
// captures the reconvergent-path correlations that the analytic propagation
// ignores. The engines here are used to (a) validate the Clark-max SSTA on
// whole circuits and (b) measure realized yield after sizing.

#pragma once

#include <cstdint>
#include <vector>

#include "netlist/circuit.h"
#include "stat/normal.h"

namespace statsize::ssta {

struct MonteCarloResult {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::vector<double> samples;  ///< sorted circuit-delay samples

  /// Empirical p-quantile of the circuit delay.
  double quantile(double p) const;

  /// Fraction of sampled circuits meeting `deadline` — the paper's "percentage
  /// of the circuits [that] will conform to the delay constraint" (sec. 4).
  double yield(double deadline) const;
};

struct MonteCarloOptions {
  int num_samples = 10000;
  /// Base seed. Trials are drawn in fixed chunks of 256, chunk i from its
  /// own splitmix64-derived stream (seed, i); chunks are sharded across the
  /// runtime's thread pool and recombined in chunk order, so every result —
  /// samples, moments, criticality — is bit-identical at any --jobs count.
  std::uint64_t seed = 1;
  bool truncate_negative_delays = true;  ///< clamp sampled gate delays at 0
};

/// Samples every gate delay independently from its normal distribution and
/// propagates deterministically; returns circuit-delay statistics.
MonteCarloResult run_monte_carlo(const netlist::Circuit& circuit,
                                 const std::vector<stat::NormalRV>& gate_delays,
                                 const MonteCarloOptions& options = {});

/// View-level implementation the Circuit overload delegates to; accepts an
/// ECO-edited view copy with no backing Circuit (serve's derived entries).
MonteCarloResult run_monte_carlo(const netlist::TimingView& view,
                                 const std::vector<stat::NormalRV>& gate_delays,
                                 const MonteCarloOptions& options = {});

/// Per-gate criticality: the fraction of Monte Carlo trials in which the gate
/// lies on the critical path (computed by tracing back the argmax from the
/// critical primary output). Indexed by NodeId; inputs get 0.
std::vector<double> monte_carlo_criticality(const netlist::Circuit& circuit,
                                            const std::vector<stat::NormalRV>& gate_delays,
                                            const MonteCarloOptions& options = {});

}  // namespace statsize::ssta
