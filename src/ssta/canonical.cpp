#include "ssta/canonical.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "netlist/timing_view.h"
#include "stat/clark.h"

namespace statsize::ssta {

using netlist::NodeId;
using netlist::NodeKind;
using stat::NormalRV;

CanonicalForm CanonicalForm::variable(double mean, int source, double sigma) {
  CanonicalForm f(mean);
  if (sigma != 0.0) f.terms_.push_back({source, sigma});
  return f;
}

double CanonicalForm::variance() const {
  double v = 0.0;
  for (const auto& [id, coef] : terms_) {
    (void)id;
    v += coef * coef;
  }
  return v;
}

double CanonicalForm::sigma() const { return std::sqrt(variance()); }

double CanonicalForm::covariance(const CanonicalForm& a, const CanonicalForm& b) {
  // Sorted-merge dot product over shared sources.
  double cov = 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.terms_.size() && j < b.terms_.size()) {
    const int ai = a.terms_[i].first;
    const int bj = b.terms_[j].first;
    if (ai == bj) {
      cov += a.terms_[i].second * b.terms_[j].second;
      ++i;
      ++j;
    } else if (ai < bj) {
      ++i;
    } else {
      ++j;
    }
  }
  return cov;
}

CanonicalForm CanonicalForm::add(const CanonicalForm& a, const CanonicalForm& b) {
  CanonicalForm out(a.mean_ + b.mean_);
  out.terms_.reserve(a.terms_.size() + b.terms_.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.terms_.size() || j < b.terms_.size()) {
    if (j >= b.terms_.size() || (i < a.terms_.size() && a.terms_[i].first < b.terms_[j].first)) {
      out.terms_.push_back(a.terms_[i++]);
    } else if (i >= a.terms_.size() || b.terms_[j].first < a.terms_[i].first) {
      out.terms_.push_back(b.terms_[j++]);
    } else {
      const double c = a.terms_[i].second + b.terms_[j].second;
      if (c != 0.0) out.terms_.push_back({a.terms_[i].first, c});
      ++i;
      ++j;
    }
  }
  return out;
}

CanonicalForm CanonicalForm::max(const CanonicalForm& a, const CanonicalForm& b,
                                 int& next_source) {
  const double cov = covariance(a, b);
  double tightness = 0.0;
  const NormalRV moments = stat::clark_max_correlated(a.to_normal(), b.to_normal(), cov,
                                                      &tightness);

  // Dominated cases keep the winning form exactly.
  if (tightness >= 1.0) return a;
  if (tightness <= 0.0) return b;

  // Linear mixing of coefficients preserves all cross-covariances to first
  // order: Cov(max, X) ~ Phi(alpha) Cov(A, X) + Phi(-alpha) Cov(B, X)
  // (Clark's eq. for the covariance with a third variable).
  CanonicalForm out(moments.mu);
  out.terms_.reserve(a.terms_.size() + b.terms_.size());
  std::size_t i = 0;
  std::size_t j = 0;
  const double wa = tightness;
  const double wb = 1.0 - tightness;
  while (i < a.terms_.size() || j < b.terms_.size()) {
    if (j >= b.terms_.size() || (i < a.terms_.size() && a.terms_[i].first < b.terms_[j].first)) {
      out.terms_.push_back({a.terms_[i].first, wa * a.terms_[i].second});
      ++i;
    } else if (i >= a.terms_.size() || b.terms_[j].first < a.terms_[i].first) {
      out.terms_.push_back({b.terms_[j].first, wb * b.terms_[j].second});
      ++j;
    } else {
      const double c = wa * a.terms_[i].second + wb * b.terms_[j].second;
      if (c != 0.0) out.terms_.push_back({a.terms_[i].first, c});
      ++i;
      ++j;
    }
  }

  // Match the Clark variance: top up with a private residual when the linear
  // part under-covers (the usual case), or scale down when it over-covers.
  const double var_lin = out.variance();
  if (moments.var > var_lin + 1e-15) {
    out.terms_.push_back({next_source++, std::sqrt(moments.var - var_lin)});
  } else if (var_lin > 0.0 && moments.var < var_lin) {
    const double scale = std::sqrt(moments.var / var_lin);
    for (auto& [id, coef] : out.terms_) {
      (void)id;
      coef *= scale;
    }
  }
  return out;
}

CanonicalTimingReport run_canonical_ssta(const netlist::Circuit& circuit,
                                         const std::vector<NormalRV>& gate_delays) {
  if (static_cast<int>(gate_delays.size()) != circuit.num_nodes()) {
    throw std::invalid_argument("gate_delays must be indexed by NodeId");
  }
  const netlist::TimingView& view = circuit.view();
  CanonicalTimingReport report;
  report.arrival.resize(static_cast<std::size_t>(view.num_nodes()));
  int next_source = view.num_nodes();  // residual ids beyond gate ids

  for (NodeId id : view.topo_order()) {
    if (view.kind(id) == NodeKind::kPrimaryInput) {
      report.arrival[static_cast<std::size_t>(id)] = CanonicalForm::constant(0.0);
      continue;
    }
    const netlist::NodeSpan fanins = view.fanins(id);
    CanonicalForm u = report.arrival[static_cast<std::size_t>(fanins[0])];
    for (std::size_t k = 1; k < fanins.size(); ++k) {
      u = CanonicalForm::max(u, report.arrival[static_cast<std::size_t>(fanins[k])],
                             next_source);
    }
    const NormalRV& d = gate_delays[static_cast<std::size_t>(id)];
    report.arrival[static_cast<std::size_t>(id)] = CanonicalForm::add(
        u, CanonicalForm::variable(d.mu, static_cast<int>(id), d.sigma()));
  }

  const std::vector<NodeId>& outs = view.outputs();
  CanonicalForm total = report.arrival[static_cast<std::size_t>(outs[0])];
  for (std::size_t k = 1; k < outs.size(); ++k) {
    total = CanonicalForm::max(total, report.arrival[static_cast<std::size_t>(outs[k])],
                               next_source);
  }
  report.circuit_delay = std::move(total);
  return report;
}

CanonicalTimingReport run_canonical_ssta(const DelayCalculator& calc,
                                         const std::vector<double>& speed) {
  return run_canonical_ssta(calc.circuit(), calc.all_delays(speed));
}

}  // namespace statsize::ssta
