// Statistical static timing analysis — the propagation scheme of paper
// sec. 2/4: at every gate, take the statistical maximum (eqs. 10/12/13) of
// the fanin arrival times, then add (eq. 4) the gate's statistical delay; the
// total circuit delay distribution is the statistical maximum over all
// primary outputs.
//
// The statistical-independence assumption of eq. 6 is inherited: reconverging
// paths introduce correlation that the method ignores ([2] shows the error is
// very small; the Monte Carlo engine in monte_carlo.h quantifies it here).

#pragma once

#include <vector>

#include "netlist/circuit.h"
#include "ssta/delay_model.h"
#include "stat/normal.h"

namespace statsize::ssta {

struct TimingReport {
  /// Arrival-time distribution T at every node's output, indexed by NodeId
  /// (primary inputs carry their schedule time).
  std::vector<stat::NormalRV> arrival;

  /// Statistical max over all primary outputs — the paper's (mu_Tmax,
  /// sigma_Tmax^2).
  stat::NormalRV circuit_delay;
};

/// Parallel dispatch thresholds shared by the sweeps here and by the
/// IncrementalEngine's per-level-bucket parallel decision (incremental.h):
/// below kParallelGateCutoff gates the levelized fan-out costs more than it
/// saves. Results are identical either way — each gate's fanin fold is a
/// fixed serial computation; parallelism only changes which thread runs it.
inline constexpr int kParallelGateCutoff = 192;
inline constexpr std::size_t kGateGrain = 32;

/// Propagates arrival times through `circuit` given per-node gate delays
/// (from DelayCalculator::all_delays or custom). `input_arrival` applies to
/// every primary input; per-input schedules can be passed via the overload.
TimingReport run_ssta(const netlist::Circuit& circuit,
                      const std::vector<stat::NormalRV>& gate_delays,
                      stat::NormalRV input_arrival = {});

TimingReport run_ssta(const netlist::Circuit& circuit,
                      const std::vector<stat::NormalRV>& gate_delays,
                      const std::vector<stat::NormalRV>& input_arrivals);

/// View-level propagation — the implementation the Circuit overloads
/// delegate to. Takes any TimingView, including an ECO-edited copy with no
/// backing Circuit (the serve PATCH path / IncrementalEngine cross-check).
TimingReport run_ssta(const netlist::TimingView& view,
                      const std::vector<stat::NormalRV>& gate_delays,
                      const std::vector<stat::NormalRV>& input_arrivals);

TimingReport run_ssta(const netlist::TimingView& view,
                      const std::vector<stat::NormalRV>& gate_delays,
                      stat::NormalRV input_arrival = {});

/// Convenience: delay model evaluation + propagation in one call (runs on
/// the calculator's view, so it works for view-only calculators too).
TimingReport run_ssta(const DelayCalculator& calc, const std::vector<double>& speed);

// ---------------------------------------------------------------------------
// Deterministic (corner) STA baseline — the "traditional best case / typical
// / worst case delay analysis" the paper argues is pessimistic (sec. 1).
// ---------------------------------------------------------------------------

enum class Corner {
  kBest,     ///< every element at mu - 3 sigma
  kTypical,  ///< every element at mu
  kWorst,    ///< every element at mu + 3 sigma
};

struct StaReport {
  std::vector<double> arrival;  ///< per node
  double circuit_delay = 0.0;   ///< max over primary outputs
};

StaReport run_sta(const netlist::Circuit& circuit, const std::vector<stat::NormalRV>& gate_delays,
                  Corner corner);

StaReport run_sta(const netlist::TimingView& view, const std::vector<stat::NormalRV>& gate_delays,
                  Corner corner);

}  // namespace statsize::ssta
