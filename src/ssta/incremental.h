// Incremental (ECO) statistical timing — edit→invalidate→repropagate instead
// of rebuild-everything-per-query (DESIGN.md §12).
//
// IncrementalEngine owns a mutable TimingView *copy* plus the cached per-node
// delay and arrival moments of the last analysis. apply_edits() accepts a
// batch of {node, new_speed | new_lib_consts} edits and repropagates only the
// affected cone:
//
//   1. Edits mark a small delay-dirty set — the edited gate itself plus its
//      gate fanins (a speed or c_in change shifts every driver's load through
//      the edited gate's pin cap; eq. 14).
//   2. Dirty delays are recomputed; gates whose delay actually changed
//      (bitwise) seed a level-bucketed worklist.
//   3. Levels are processed in ascending order: each queued gate refolds its
//      fanin arrivals (the same left Clark-max fold as run_ssta) and, iff the
//      resulting arrival differs bitwise from the cached one, enqueues its
//      fanouts. A bitwise-unchanged arrival terminates propagation — every
//      downstream read would see identical inputs, so downstream results are
//      already correct to the last bit.
//   4. The primary-output fold recomputes Tmax.
//
// Determinism: each gate's fold is a self-contained serial computation that
// reads strictly-lower-level arrivals and writes its own slot, so the order
// gates *within* one level bucket are evaluated in — serial, or chunked
// across the pool at any --jobs / serial cutoff — cannot change any value.
// The only cross-gate folds (fanin fold, output fold) run in fixed edge /
// mark_output order, exactly as run_ssta's. Hence every answer is
// bit-identical to a full run_ssta recompute on the edited view, which is
// what tests and bench/eco_incremental hard-check.

#pragma once

#include <cstddef>
#include <vector>

#include "netlist/circuit.h"
#include "netlist/timing_view.h"
#include "ssta/delay_model.h"
#include "ssta/ssta.h"
#include "stat/normal.h"

namespace statsize::ssta {

/// One ECO edit: retarget a gate's speed factor, or replace its delay-model
/// constants (a library swap / recharacterization of one cell instance).
struct TimingEdit {
  enum class Kind : unsigned char { kSpeed, kParams };

  netlist::NodeId node = netlist::kInvalidNode;
  Kind kind = Kind::kSpeed;
  double speed = 1.0;           ///< kSpeed payload
  netlist::NodeParams params;   ///< kParams payload

  static TimingEdit set_speed(netlist::NodeId node, double speed) {
    TimingEdit e;
    e.node = node;
    e.kind = Kind::kSpeed;
    e.speed = speed;
    return e;
  }

  static TimingEdit set_params(netlist::NodeId node, const netlist::NodeParams& params) {
    TimingEdit e;
    e.node = node;
    e.kind = Kind::kParams;
    e.params = params;
    return e;
  }
};

class IncrementalEngine {
 public:
  /// Copies `view` (TimingView is all-vector; the copy is independent of the
  /// source, which may keep serving other queries) and runs one full analysis
  /// at `initial_speed` to prime the caches. Throws std::invalid_argument on
  /// a size-mismatched speed vector or a non-finite / non-positive gate
  /// speed (eq. 14 divides by it).
  IncrementalEngine(const netlist::TimingView& view, std::vector<double> initial_speed,
                    SigmaModel sigma_model = {}, stat::NormalRV input_arrival = {});

  /// Applies the batch and repropagates the affected cone; returns the new
  /// circuit delay Tmax. Edits to non-gate or out-of-range nodes, non-finite
  /// values, or non-positive speeds throw std::invalid_argument before any
  /// state changes (the batch is validated up front). No-op edits (bitwise
  /// equal to current state) propagate nothing.
  stat::NormalRV apply_edits(const std::vector<TimingEdit>& edits);

  /// Rebuilds every delay and arrival from scratch (the construction path).
  /// apply_edits is pinned bit-identical to calling this instead.
  void full_recompute();

  const netlist::TimingView& view() const { return view_; }
  const std::vector<double>& speed() const { return speed_; }
  const SigmaModel& sigma_model() const { return sigma_model_; }

  stat::NormalRV tmax() const { return tmax_; }
  const std::vector<stat::NormalRV>& arrivals() const { return arrival_; }
  const std::vector<stat::NormalRV>& delays() const { return delay_; }

  /// The last analysis as a TimingReport (for compute_slacks etc.).
  TimingReport timing_report() const { return {arrival_, tmax_}; }

  // Work counters for the last apply_edits call — the observable "re-analysis
  // cost proportional to cone size" contract (bench/eco_incremental reports
  // them next to wall time).
  std::size_t last_delay_recomputes() const { return last_delay_recomputes_; }
  std::size_t last_arrival_recomputes() const { return last_arrival_recomputes_; }

 private:
  void enqueue(netlist::NodeId gate);
  void propagate();
  void refold_outputs();

  netlist::TimingView view_;  ///< owned, mutable copy
  SigmaModel sigma_model_;
  std::vector<double> speed_;
  std::vector<stat::NormalRV> input_arrivals_;  ///< topo input order

  std::vector<stat::NormalRV> delay_;    ///< per node; {0,0} for inputs
  std::vector<stat::NormalRV> arrival_;  ///< per node
  stat::NormalRV tmax_;

  // Worklist state (persistent to avoid per-call allocation).
  std::vector<netlist::NodeId> delay_dirty_;
  std::vector<unsigned char> delay_dirty_mask_;
  std::vector<std::vector<netlist::NodeId>> bucket_;  ///< per gate level
  std::vector<unsigned char> queued_mask_;
  std::vector<stat::NormalRV> scratch_arrival_;  ///< per bucket position
  std::vector<unsigned char> scratch_changed_;

  std::size_t last_delay_recomputes_ = 0;
  std::size_t last_arrival_recomputes_ = 0;
};

}  // namespace statsize::ssta
