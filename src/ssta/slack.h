// Statistical slack analysis: backward (required-time) propagation and
// critical-path extraction on top of the statistical arrival times.
//
// Required times propagate backward with the statistical *minimum*
// (min(A,B) = -max(-A,-B), using the same Clark machinery): the required
// time at a gate's output is the min over its fanouts of (required at the
// fanout minus the fanout's delay); primary outputs are required at the
// deadline. The slack S = R - T is reported under the engine's independence
// convention (mu subtracts, variances add), so a *negative mean* slack means
// the node is expected to miss the deadline and sigma quantifies confidence.
//
// This module is an analysis-side extension beyond the paper (the paper only
// sizes; any practical deployment needs to report where the walls are), built
// entirely from the paper's own statistical operators.

#pragma once

#include <vector>

#include "netlist/circuit.h"
#include "ssta/ssta.h"
#include "stat/normal.h"

namespace statsize::ssta {

struct SlackReport {
  std::vector<stat::NormalRV> required;  ///< per node
  std::vector<stat::NormalRV> slack;     ///< per node: required - arrival

  /// Probability node `id` meets its required time, P(slack >= 0).
  double meet_probability(netlist::NodeId id) const;
};

/// Computes required times and slacks for `deadline` at every primary output.
SlackReport compute_slacks(const netlist::Circuit& circuit,
                           const std::vector<stat::NormalRV>& gate_delays,
                           const TimingReport& timing, double deadline);

/// View-level implementation the Circuit overload delegates to; accepts an
/// ECO-edited view copy with no backing Circuit.
SlackReport compute_slacks(const netlist::TimingView& view,
                           const std::vector<stat::NormalRV>& gate_delays,
                           const TimingReport& timing, double deadline);

/// Mean-critical path: from the latest-arriving primary output back through
/// the latest-arriving fanin to a primary input. Returned source-to-sink.
std::vector<netlist::NodeId> extract_critical_path(const netlist::Circuit& circuit,
                                                   const TimingReport& timing);

}  // namespace statsize::ssta
