#include "ssta/delay_model.h"

#include <stdexcept>

#include "netlist/timing_view.h"

namespace statsize::ssta {

using netlist::NodeId;

DelayCalculator::DelayCalculator(const netlist::Circuit& circuit, SigmaModel sigma_model)
    : circuit_(&circuit), view_(&circuit.view()), sigma_model_(sigma_model) {}

const netlist::Circuit& DelayCalculator::circuit() const {
  if (circuit_ == nullptr) {
    throw std::logic_error(
        "DelayCalculator::circuit: calculator was constructed from a bare "
        "TimingView (ECO edit path) and has no backing Circuit");
  }
  return *circuit_;
}

double DelayCalculator::mean_delay(NodeId id, const std::vector<double>& speed) const {
  const double load = view_->load_capacitance(id, speed.data());
  return view_->t_int(id) + view_->drive_c(id) * load / speed[static_cast<std::size_t>(id)];
}

stat::NormalRV DelayCalculator::delay(NodeId id, const std::vector<double>& speed) const {
  const double mu = mean_delay(id, speed);
  return stat::NormalRV::from_sigma(mu, sigma_model_.sigma(mu));
}

std::vector<stat::NormalRV> DelayCalculator::all_delays(const std::vector<double>& speed) const {
  const netlist::TimingView& view = *view_;
  std::vector<stat::NormalRV> delays(static_cast<std::size_t>(view.num_nodes()));
  // Batched load caps: one SIMD-friendly pass over the fanout edge array
  // replaces a short gather loop per gate. Same arithmetic per node as
  // delay(id, speed), hence bit-identical delays.
  std::vector<double> cap(static_cast<std::size_t>(view.num_nodes()));
  view.batch_load_capacitance(speed.data(), cap.data());
  for (NodeId id : view.gates_in_topo_order()) {
    const std::size_t i = static_cast<std::size_t>(id);
    const double mu = view.t_int(id) + view.drive_c(id) * cap[i] / speed[i];
    delays[i] = stat::NormalRV::from_sigma(mu, sigma_model_.sigma(mu));
  }
  return delays;
}

double DelayCalculator::total_speed(const netlist::Circuit& circuit,
                                    const std::vector<double>& speed) {
  return total_speed(circuit.view(), speed);
}

double DelayCalculator::total_speed(const netlist::TimingView& view,
                                    const std::vector<double>& speed) {
  double sum = 0.0;
  for (NodeId id : view.gates_in_topo_order()) {
    sum += speed[static_cast<std::size_t>(id)];
  }
  return sum;
}

double DelayCalculator::total_area(const netlist::Circuit& circuit,
                                   const std::vector<double>& speed) {
  return total_area(circuit.view(), speed);
}

double DelayCalculator::total_area(const netlist::TimingView& view,
                                   const std::vector<double>& speed) {
  double sum = 0.0;
  for (NodeId id : view.gates_in_topo_order()) {
    sum += view.area(id) * speed[static_cast<std::size_t>(id)];
  }
  return sum;
}

}  // namespace statsize::ssta
