#include "ssta/delay_model.h"

#include "netlist/timing_view.h"

namespace statsize::ssta {

using netlist::NodeId;

double DelayCalculator::mean_delay(NodeId id, const std::vector<double>& speed) const {
  const netlist::TimingView& view = circuit_->view();
  const double load = view.load_capacitance(id, speed.data());
  return view.t_int(id) + view.drive_c(id) * load / speed[static_cast<std::size_t>(id)];
}

stat::NormalRV DelayCalculator::delay(NodeId id, const std::vector<double>& speed) const {
  const double mu = mean_delay(id, speed);
  return stat::NormalRV::from_sigma(mu, sigma_model_.sigma(mu));
}

std::vector<stat::NormalRV> DelayCalculator::all_delays(const std::vector<double>& speed) const {
  const netlist::TimingView& view = circuit_->view();
  std::vector<stat::NormalRV> delays(static_cast<std::size_t>(view.num_nodes()));
  // Batched load caps: one SIMD-friendly pass over the fanout edge array
  // replaces a short gather loop per gate. Same arithmetic per node as
  // delay(id, speed), hence bit-identical delays.
  std::vector<double> cap(static_cast<std::size_t>(view.num_nodes()));
  view.batch_load_capacitance(speed.data(), cap.data());
  for (NodeId id : view.gates_in_topo_order()) {
    const std::size_t i = static_cast<std::size_t>(id);
    const double mu = view.t_int(id) + view.drive_c(id) * cap[i] / speed[i];
    delays[i] = stat::NormalRV::from_sigma(mu, sigma_model_.sigma(mu));
  }
  return delays;
}

double DelayCalculator::total_speed(const netlist::Circuit& circuit,
                                    const std::vector<double>& speed) {
  double sum = 0.0;
  for (NodeId id : circuit.view().gates_in_topo_order()) {
    sum += speed[static_cast<std::size_t>(id)];
  }
  return sum;
}

double DelayCalculator::total_area(const netlist::Circuit& circuit,
                                   const std::vector<double>& speed) {
  const netlist::TimingView& view = circuit.view();
  double sum = 0.0;
  for (NodeId id : view.gates_in_topo_order()) {
    sum += view.area(id) * speed[static_cast<std::size_t>(id)];
  }
  return sum;
}

}  // namespace statsize::ssta
