#include "ssta/delay_model.h"

namespace statsize::ssta {

using netlist::NodeId;
using netlist::NodeKind;

double DelayCalculator::mean_delay(NodeId id, const std::vector<double>& speed) const {
  const netlist::Node& n = circuit_->node(id);
  const netlist::CellType& cell = circuit_->library().cell(n.cell);
  const double load = circuit_->load_capacitance(id, speed);
  return cell.t_int + cell.c * load / speed[static_cast<std::size_t>(id)];
}

stat::NormalRV DelayCalculator::delay(NodeId id, const std::vector<double>& speed) const {
  const double mu = mean_delay(id, speed);
  return stat::NormalRV::from_sigma(mu, sigma_model_.sigma(mu));
}

std::vector<stat::NormalRV> DelayCalculator::all_delays(const std::vector<double>& speed) const {
  std::vector<stat::NormalRV> delays(static_cast<std::size_t>(circuit_->num_nodes()));
  for (NodeId id : circuit_->topo_order()) {
    if (circuit_->node(id).kind == NodeKind::kGate) {
      delays[static_cast<std::size_t>(id)] = delay(id, speed);
    }
  }
  return delays;
}

double DelayCalculator::total_speed(const netlist::Circuit& circuit,
                                    const std::vector<double>& speed) {
  double sum = 0.0;
  for (NodeId id : circuit.topo_order()) {
    if (circuit.node(id).kind == NodeKind::kGate) sum += speed[static_cast<std::size_t>(id)];
  }
  return sum;
}

double DelayCalculator::total_area(const netlist::Circuit& circuit,
                                   const std::vector<double>& speed) {
  double sum = 0.0;
  for (NodeId id : circuit.topo_order()) {
    const netlist::Node& n = circuit.node(id);
    if (n.kind == NodeKind::kGate) {
      sum += circuit.library().cell(n.cell).area * speed[static_cast<std::size_t>(id)];
    }
  }
  return sum;
}

}  // namespace statsize::ssta
