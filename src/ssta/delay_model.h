// Sizable statistical gate-delay model (paper sec. 4).
//
// Mean delay follows eq. 14:
//
//   mu_t = t_int + c * (C_load + sum_i C_in,i * S_i) / S_cell
//
// where C_load is the (constant) wire + pad capacitance on the gate's output
// and the sum runs over fanout gates, whose pin capacitance scales with their
// own speed factor S_i. The standard deviation is a function of the mean
// (eq. 16); the paper's experiments use sigma_t = 0.25 * mu_t (eq. 18e), which
// SigmaModel generalizes to sigma = kappa * mu + offset.

#pragma once

#include <vector>

#include "netlist/circuit.h"
#include "stat/normal.h"

namespace statsize::ssta {

struct SigmaModel {
  double kappa = 0.25;  ///< proportional term (the paper's quarter-of-mean)
  double offset = 0.0;  ///< additive floor, e.g. process-independent jitter

  double sigma(double mu) const { return kappa * mu + offset; }
};

/// Evaluates the sizable delay model over a whole circuit. All evaluation
/// runs against a TimingView; the Circuit constructor just binds the
/// circuit's compiled view (and keeps the Circuit reachable for consumers
/// that need Node-level detail, e.g. canonical SSTA). The view constructor
/// serves the ECO path, where an edited view copy has no backing Circuit.
class DelayCalculator {
 public:
  /// Binds circuit.view(); throws (via view()) if not finalized.
  explicit DelayCalculator(const netlist::Circuit& circuit, SigmaModel sigma_model = {});

  /// Binds a standalone view — e.g. an edited copy owned by an
  /// IncrementalEngine or a derived serve cache entry. The caller keeps
  /// `view` alive for this calculator's lifetime. circuit() throws on a
  /// calculator built this way.
  explicit DelayCalculator(const netlist::TimingView& view, SigmaModel sigma_model = {})
      : view_(&view), sigma_model_(sigma_model) {}

  /// The backing Circuit, for consumers needing Node-level detail. Throws
  /// std::logic_error when constructed from a bare TimingView.
  const netlist::Circuit& circuit() const;

  /// The timing graph every evaluation runs on.
  const netlist::TimingView& view() const { return *view_; }

  const SigmaModel& sigma_model() const { return sigma_model_; }

  /// Mean delay of gate `id` under speed assignment `speed` (indexed by
  /// NodeId; entries for non-gates are ignored).
  double mean_delay(netlist::NodeId id, const std::vector<double>& speed) const;

  /// Full statistical delay of gate `id`.
  stat::NormalRV delay(netlist::NodeId id, const std::vector<double>& speed) const;

  /// Delays for every node (primary inputs get {0,0}), indexed by NodeId.
  std::vector<stat::NormalRV> all_delays(const std::vector<double>& speed) const;

  /// Sum of speed factors — the paper's area measure (Table 1's sum S_i).
  static double total_speed(const netlist::Circuit& circuit, const std::vector<double>& speed);
  static double total_speed(const netlist::TimingView& view, const std::vector<double>& speed);

  /// Area-weighted sum (cell area scales linearly with S, see [3]/[8]).
  static double total_area(const netlist::Circuit& circuit, const std::vector<double>& speed);
  static double total_area(const netlist::TimingView& view, const std::vector<double>& speed);

 private:
  const netlist::Circuit* circuit_ = nullptr;  ///< null when view-constructed
  const netlist::TimingView* view_;
  SigmaModel sigma_model_;
};

}  // namespace statsize::ssta
