// Machine-readable export of timing / sizing analyses: a JSON document with
// the circuit summary, the delay distribution (independence and, optionally,
// correlation-aware), per-gate sizes, slacks, and the critical path. Consumed
// by scripts and dashboards downstream of the `statsize` CLI (--json-out).

#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "netlist/circuit.h"
#include "ssta/slack.h"
#include "ssta/ssta.h"

namespace statsize::ssta {

/// Solver outcome + resilience provenance (DESIGN.md §9), emitted as the
/// report's "solve" object so downstream dashboards can tell a converged
/// sizing from a best-checkpoint degradation.
struct SolveReport {
  std::string status;             ///< e.g. "full-space/converged", ".../time-limit"
  bool converged = false;
  int iterations = 0;
  double wall_seconds = 0.0;
  int retries_used = 0;           ///< multistart restarts consumed
  bool from_checkpoint = false;   ///< sizing restored from a best-iterate checkpoint
  int checkpoint_outer = -1;      ///< outer iteration the checkpoint was taken after
  std::string breakdown_site;     ///< tripwire detail on numerical breakdown
};

struct JsonReportOptions {
  bool include_per_node = true;    ///< arrival/slack/speed for every gate
  bool include_canonical = false;  ///< add the correlation-aware circuit delay
  double deadline = 0.0;           ///< for slacks; <= 0 -> mu + 3 sigma
  std::optional<SolveReport> solve;  ///< solver/resilience section, if a solve ran
};

/// Writes the full analysis of `circuit` at `speed` as one JSON object.
void write_json_report(std::ostream& out, const netlist::Circuit& circuit,
                       const DelayCalculator& calc, const std::vector<double>& speed,
                       const JsonReportOptions& options = {});

}  // namespace statsize::ssta
