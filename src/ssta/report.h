// Machine-readable export of timing / sizing analyses: a JSON document with
// the circuit summary, the delay distribution (independence and, optionally,
// correlation-aware), per-gate sizes, slacks, and the critical path. Consumed
// by scripts and dashboards downstream of the `statsize` CLI (--json-out).

#pragma once

#include <iosfwd>
#include <optional>
#include <vector>

#include "netlist/circuit.h"
#include "ssta/slack.h"
#include "ssta/ssta.h"

namespace statsize::ssta {

struct JsonReportOptions {
  bool include_per_node = true;    ///< arrival/slack/speed for every gate
  bool include_canonical = false;  ///< add the correlation-aware circuit delay
  double deadline = 0.0;           ///< for slacks; <= 0 -> mu + 3 sigma
};

/// Writes the full analysis of `circuit` at `speed` as one JSON object.
void write_json_report(std::ostream& out, const netlist::Circuit& circuit,
                       const DelayCalculator& calc, const std::vector<double>& speed,
                       const JsonReportOptions& options = {});

}  // namespace statsize::ssta
