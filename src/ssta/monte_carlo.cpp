#include "ssta/monte_carlo.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

namespace statsize::ssta {

using netlist::NodeId;
using netlist::NodeKind;

double MonteCarloResult::quantile(double p) const {
  if (samples.empty()) throw std::runtime_error("no samples");
  const double idx = p * (static_cast<double>(samples.size()) - 1.0);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double MonteCarloResult::yield(double deadline) const {
  if (samples.empty()) throw std::runtime_error("no samples");
  const auto it = std::upper_bound(samples.begin(), samples.end(), deadline);
  return static_cast<double>(it - samples.begin()) / static_cast<double>(samples.size());
}

namespace {

/// One trial: sample delays, propagate, return (delay, critical PO).
template <class SampleFn>
double propagate_once(const netlist::Circuit& circuit, SampleFn&& sample_delay,
                      std::vector<double>& arrival, NodeId* critical_output) {
  for (NodeId id : circuit.topo_order()) {
    const netlist::Node& n = circuit.node(id);
    if (n.kind == NodeKind::kPrimaryInput) {
      arrival[static_cast<std::size_t>(id)] = 0.0;
      continue;
    }
    double u = arrival[static_cast<std::size_t>(n.fanins[0])];
    for (std::size_t i = 1; i < n.fanins.size(); ++i) {
      u = std::max(u, arrival[static_cast<std::size_t>(n.fanins[i])]);
    }
    arrival[static_cast<std::size_t>(id)] = u + sample_delay(id);
  }
  double total = -1.0;
  NodeId crit = circuit.outputs().front();
  for (NodeId o : circuit.outputs()) {
    if (arrival[static_cast<std::size_t>(o)] > total) {
      total = arrival[static_cast<std::size_t>(o)];
      crit = o;
    }
  }
  if (critical_output != nullptr) *critical_output = crit;
  return total;
}

}  // namespace

MonteCarloResult run_monte_carlo(const netlist::Circuit& circuit,
                                 const std::vector<stat::NormalRV>& gate_delays,
                                 const MonteCarloOptions& options) {
  if (static_cast<int>(gate_delays.size()) != circuit.num_nodes()) {
    throw std::invalid_argument("gate_delays must be indexed by NodeId");
  }
  std::mt19937_64 rng(options.seed);
  std::normal_distribution<double> unit(0.0, 1.0);
  std::vector<double> arrival(static_cast<std::size_t>(circuit.num_nodes()));

  MonteCarloResult result;
  result.samples.reserve(static_cast<std::size_t>(options.num_samples));
  double sum = 0.0;
  double sum2 = 0.0;
  for (int trial = 0; trial < options.num_samples; ++trial) {
    auto sample_delay = [&](NodeId id) {
      const stat::NormalRV& d = gate_delays[static_cast<std::size_t>(id)];
      double t = d.mu + d.sigma() * unit(rng);
      if (options.truncate_negative_delays && t < 0.0) t = 0.0;
      return t;
    };
    const double total = propagate_once(circuit, sample_delay, arrival, nullptr);
    result.samples.push_back(total);
    sum += total;
    sum2 += total * total;
  }
  std::sort(result.samples.begin(), result.samples.end());
  const double n = static_cast<double>(options.num_samples);
  result.mean = sum / n;
  result.stddev = std::sqrt(std::max(0.0, sum2 / n - result.mean * result.mean));
  result.min = result.samples.front();
  result.max = result.samples.back();
  return result;
}

std::vector<double> monte_carlo_criticality(const netlist::Circuit& circuit,
                                            const std::vector<stat::NormalRV>& gate_delays,
                                            const MonteCarloOptions& options) {
  if (static_cast<int>(gate_delays.size()) != circuit.num_nodes()) {
    throw std::invalid_argument("gate_delays must be indexed by NodeId");
  }
  std::mt19937_64 rng(options.seed);
  std::normal_distribution<double> unit(0.0, 1.0);
  std::vector<double> arrival(static_cast<std::size_t>(circuit.num_nodes()));
  std::vector<double> sampled(static_cast<std::size_t>(circuit.num_nodes()));
  std::vector<long> hits(static_cast<std::size_t>(circuit.num_nodes()), 0);

  for (int trial = 0; trial < options.num_samples; ++trial) {
    auto sample_delay = [&](NodeId id) {
      const stat::NormalRV& d = gate_delays[static_cast<std::size_t>(id)];
      double t = d.mu + d.sigma() * unit(rng);
      if (options.truncate_negative_delays && t < 0.0) t = 0.0;
      sampled[static_cast<std::size_t>(id)] = t;
      return t;
    };
    NodeId crit = netlist::kInvalidNode;
    propagate_once(circuit, sample_delay, arrival, &crit);
    // Walk back along argmax fanins from the critical output to an input.
    NodeId cur = crit;
    while (circuit.node(cur).kind == NodeKind::kGate) {
      ++hits[static_cast<std::size_t>(cur)];
      const netlist::Node& n = circuit.node(cur);
      NodeId best = n.fanins[0];
      for (std::size_t i = 1; i < n.fanins.size(); ++i) {
        if (arrival[static_cast<std::size_t>(n.fanins[i])] >
            arrival[static_cast<std::size_t>(best)]) {
          best = n.fanins[i];
        }
      }
      cur = best;
    }
  }
  std::vector<double> criticality(static_cast<std::size_t>(circuit.num_nodes()), 0.0);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    criticality[i] = static_cast<double>(hits[i]) / options.num_samples;
  }
  return criticality;
}

}  // namespace statsize::ssta
