#include "ssta/monte_carlo.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "netlist/timing_view.h"
#include "runtime/runtime.h"

namespace statsize::ssta {

using netlist::NodeId;
using netlist::NodeKind;

double MonteCarloResult::quantile(double p) const {
  if (samples.empty()) throw std::runtime_error("no samples");
  if (!(p >= 0.0 && p <= 1.0)) {
    // A negative index would wrap through the size_t cast into an
    // out-of-bounds read; reject NaN too (it fails both comparisons).
    throw std::invalid_argument("MonteCarloResult::quantile: p = " + std::to_string(p) +
                                " is outside [0, 1]");
  }
  const double idx = p * (static_cast<double>(samples.size()) - 1.0);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double MonteCarloResult::yield(double deadline) const {
  if (samples.empty()) throw std::runtime_error("no samples");
  const auto it = std::upper_bound(samples.begin(), samples.end(), deadline);
  return static_cast<double>(it - samples.begin()) / static_cast<double>(samples.size());
}

namespace {

/// Samples are drawn in fixed chunks of kChunkSamples trials; chunk i uses
/// its own RNG stream seeded from (seed, i). The chunk partition depends only
/// on the sample count, chunks write to disjoint sample slots, and per-chunk
/// moment partials are combined in chunk order on one thread — so every
/// number out of this engine is bit-identical at any thread count (and
/// independent of which worker ran which chunk).
constexpr int kChunkSamples = 256;

/// splitmix64 over (seed, stream): decorrelated, cheap per-chunk streams.
std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// A sample count must be a usable trial count before any sizing math runs
/// on it: zero reaches samples.front()/.back() on an empty vector and a
/// divide-by-zero in criticality, and a negative count wraps through the
/// size_t cast in the chunk partition into an absurd allocation.
void validate_num_samples(const MonteCarloOptions& options, const char* fn) {
  if (options.num_samples < 1) {
    throw std::invalid_argument(std::string(fn) + ": num_samples = " +
                                std::to_string(options.num_samples) +
                                " but at least 1 trial is required");
  }
}

/// Per-trial delay parameters, hoisted out of the trial loop: NormalRV
/// stores variance, so the naive `d.sigma() * unit(rng)` pays a sqrt per
/// gate per trial — ~32M sqrts on the 1600-gate/20k-trial bench row.
/// Sampling `mu[id] + sigma[id] * u` below is the same arithmetic on the
/// same values in the same order, hence bit-identical.
struct DelayParams {
  std::vector<double> mu;
  std::vector<double> sigma;

  explicit DelayParams(const std::vector<stat::NormalRV>& gate_delays) {
    mu.resize(gate_delays.size());
    sigma.resize(gate_delays.size());
    for (std::size_t i = 0; i < gate_delays.size(); ++i) {
      mu[i] = gate_delays[i].mu;
      sigma[i] = gate_delays[i].sigma();
    }
  }
};

/// Per-worker trial scratch, reused across chunks (the old code heap-
/// allocated a fresh arrival vector per chunk). bind() zero-fills without
/// releasing capacity: primary-input arrivals are the constant 0.0 in every
/// trial, so one fill per chunk replaces the per-trial per-node kind branch,
/// and every gate slot is overwritten on every trial. The values written
/// depend only on (seed, chunk, trial) — never on which worker ran before —
/// so the reuse cannot leak state between chunks.
struct TrialScratch {
  std::vector<double> arrival;

  void bind(const netlist::TimingView& view) {
    arrival.assign(static_cast<std::size_t>(view.num_nodes()), 0.0);
  }
};

thread_local TrialScratch t_scratch;

/// One trial: sample delays, propagate over the flat CSR view, return
/// (delay, critical PO). Walks gates only — PI arrivals are the constant
/// 0.0 the scratch buffer already holds — in gates_in_topo_order(), which is
/// exactly the non-input subsequence of topo_order(): the RNG consumption
/// order is unchanged from the all-nodes walk.
template <class SampleFn>
double propagate_once(const netlist::TimingView& view, SampleFn&& sample_delay,
                      std::vector<double>& arrival, NodeId* critical_output) {
  for (NodeId id : view.gates_in_topo_order()) {
    const netlist::NodeSpan fanins = view.fanins(id);
    double u = arrival[static_cast<std::size_t>(fanins[0])];
    for (std::size_t i = 1; i < fanins.size(); ++i) {
      u = std::max(u, arrival[static_cast<std::size_t>(fanins[i])]);
    }
    arrival[static_cast<std::size_t>(id)] = u + sample_delay(id);
  }
  const std::vector<NodeId>& outs = view.outputs();
  double total = -1.0;
  NodeId crit = outs.front();
  for (NodeId o : outs) {
    if (arrival[static_cast<std::size_t>(o)] > total) {
      total = arrival[static_cast<std::size_t>(o)];
      crit = o;
    }
  }
  if (critical_output != nullptr) *critical_output = crit;
  return total;
}

/// Runs trials [first, last) of the experiment defined by (options, chunk)
/// with the chunk's private RNG stream; on_trial(trial, total, arrival).
template <class OnTrial>
void run_chunk(const netlist::TimingView& view, const DelayParams& params,
               const MonteCarloOptions& options, std::size_t chunk, OnTrial&& on_trial) {
  std::mt19937_64 rng(stream_seed(options.seed, chunk));
  std::normal_distribution<double> unit(0.0, 1.0);
  t_scratch.bind(view);
  std::vector<double>& arrival = t_scratch.arrival;
  const int first = static_cast<int>(chunk) * kChunkSamples;
  const int last = std::min(first + kChunkSamples, options.num_samples);
  for (int trial = first; trial < last; ++trial) {
    auto sample_delay = [&](NodeId id) {
      double t = params.mu[static_cast<std::size_t>(id)] +
                 params.sigma[static_cast<std::size_t>(id)] * unit(rng);
      if (options.truncate_negative_delays && t < 0.0) t = 0.0;
      return t;
    };
    NodeId crit = netlist::kInvalidNode;
    const double total = propagate_once(view, sample_delay, arrival, &crit);
    on_trial(trial, total, crit, arrival);
  }
}

std::size_t num_chunks(const MonteCarloOptions& options) {
  return (static_cast<std::size_t>(options.num_samples) + kChunkSamples - 1) / kChunkSamples;
}

/// Per-chunk moment partials on their own cache line: adjacent chunks are
/// claimed by different workers, and packing the partials into plain double
/// arrays made every store a false-sharing miss on the 64-byte line shared
/// with ~7 neighbors.
struct alignas(64) ChunkMoments {
  double sum = 0.0;
  double sum2 = 0.0;
};

}  // namespace

MonteCarloResult run_monte_carlo(const netlist::Circuit& circuit,
                                 const std::vector<stat::NormalRV>& gate_delays,
                                 const MonteCarloOptions& options) {
  return run_monte_carlo(circuit.view(), gate_delays, options);
}

MonteCarloResult run_monte_carlo(const netlist::TimingView& view,
                                 const std::vector<stat::NormalRV>& gate_delays,
                                 const MonteCarloOptions& options) {
  if (static_cast<int>(gate_delays.size()) != view.num_nodes()) {
    throw std::invalid_argument("gate_delays must be indexed by NodeId");
  }
  validate_num_samples(options, "run_monte_carlo");
  const DelayParams params(gate_delays);
  const std::size_t chunks = num_chunks(options);
  MonteCarloResult result;
  result.samples.resize(static_cast<std::size_t>(options.num_samples));
  std::vector<ChunkMoments> moments(chunks);

  runtime::parallel_for(chunks, 1, [&](std::size_t cb, std::size_t ce) {
    for (std::size_t c = cb; c < ce; ++c) {
      double sum = 0.0;
      double sum2 = 0.0;
      run_chunk(view, params, options, c,
                [&](int trial, double total, NodeId, const std::vector<double>&) {
                  result.samples[static_cast<std::size_t>(trial)] = total;
                  sum += total;
                  sum2 += total * total;
                });
      moments[c].sum = sum;
      moments[c].sum2 = sum2;
    }
  });

  // Ordered combine: moments fold over chunks in index order.
  double sum = 0.0;
  double sum2 = 0.0;
  for (std::size_t c = 0; c < chunks; ++c) {
    sum += moments[c].sum;
    sum2 += moments[c].sum2;
  }
  std::sort(result.samples.begin(), result.samples.end());
  const double n = static_cast<double>(options.num_samples);
  result.mean = sum / n;
  result.stddev = std::sqrt(std::max(0.0, sum2 / n - result.mean * result.mean));
  result.min = result.samples.front();
  result.max = result.samples.back();
  return result;
}

std::vector<double> monte_carlo_criticality(const netlist::Circuit& circuit,
                                            const std::vector<stat::NormalRV>& gate_delays,
                                            const MonteCarloOptions& options) {
  if (static_cast<int>(gate_delays.size()) != circuit.num_nodes()) {
    throw std::invalid_argument("gate_delays must be indexed by NodeId");
  }
  validate_num_samples(options, "monte_carlo_criticality");
  const netlist::TimingView& view = circuit.view();
  const DelayParams params(gate_delays);
  const std::size_t chunks = num_chunks(options);
  std::vector<long> hits(static_cast<std::size_t>(view.num_nodes()), 0);
  std::mutex hits_mutex;  // integer merge: exact, order-independent

  runtime::parallel_for(chunks, 1, [&](std::size_t cb, std::size_t ce) {
    std::vector<long> local(hits.size(), 0);
    for (std::size_t c = cb; c < ce; ++c) {
      run_chunk(view, params, options, c,
                [&](int, double, NodeId crit, const std::vector<double>& arrival) {
                  // Walk back along argmax fanins from the critical output.
                  NodeId cur = crit;
                  while (view.is_gate(cur)) {
                    ++local[static_cast<std::size_t>(cur)];
                    const netlist::NodeSpan fanins = view.fanins(cur);
                    NodeId best = fanins[0];
                    for (std::size_t i = 1; i < fanins.size(); ++i) {
                      if (arrival[static_cast<std::size_t>(fanins[i])] >
                          arrival[static_cast<std::size_t>(best)]) {
                        best = fanins[i];
                      }
                    }
                    cur = best;
                  }
                });
    }
    const std::lock_guard<std::mutex> lock(hits_mutex);
    for (std::size_t i = 0; i < hits.size(); ++i) hits[i] += local[i];
  });

  std::vector<double> criticality(static_cast<std::size_t>(view.num_nodes()), 0.0);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    criticality[i] = static_cast<double>(hits[i]) / options.num_samples;
  }
  return criticality;
}

}  // namespace statsize::ssta
