#include "ssta/slack.h"

#include <algorithm>
#include <stdexcept>

#include "netlist/timing_view.h"
#include "stat/clark.h"

namespace statsize::ssta {

using netlist::NodeId;
using stat::NormalRV;

double SlackReport::meet_probability(NodeId id) const {
  const NormalRV& s = slack[static_cast<std::size_t>(id)];
  if (s.var <= 0.0) return s.mu >= 0.0 ? 1.0 : 0.0;
  return stat::normal_cdf(s.mu / s.sigma());
}

SlackReport compute_slacks(const netlist::Circuit& circuit,
                           const std::vector<NormalRV>& gate_delays,
                           const TimingReport& timing, double deadline) {
  return compute_slacks(circuit.view(), gate_delays, timing, deadline);
}

SlackReport compute_slacks(const netlist::TimingView& view,
                           const std::vector<NormalRV>& gate_delays,
                           const TimingReport& timing, double deadline) {
  if (static_cast<int>(gate_delays.size()) != view.num_nodes() ||
      timing.arrival.size() != gate_delays.size()) {
    throw std::invalid_argument("reports must be indexed by NodeId");
  }
  SlackReport report;
  const std::size_t n = gate_delays.size();
  report.required.assign(n, NormalRV{});
  report.slack.assign(n, NormalRV{});

  // Backward sweep in reverse topological order. A node's required time is
  // the statistical min over consumers of (their required time minus their
  // delay); output pads require the deadline itself.
  std::vector<char> has_required(n, 0);
  const std::vector<NodeId>& topo = view.topo_order();
  for (std::size_t t = topo.size(); t-- > 0;) {
    const NodeId id = topo[t];
    NormalRV req;
    bool have = false;
    if (view.is_output(id)) {
      req = NormalRV{deadline, 0.0};
      have = true;
    }
    for (NodeId fo : view.fanouts(id)) {
      const std::size_t f = static_cast<std::size_t>(fo);
      if (!has_required[f]) continue;  // consumer unreachable from outputs
      const NormalRV through = {report.required[f].mu - gate_delays[f].mu,
                                report.required[f].var + gate_delays[f].var};
      req = have ? stat::clark_min(req, through) : through;
      have = true;
    }
    if (!have) continue;  // node feeds no output (cannot happen post-finalize)
    has_required[static_cast<std::size_t>(id)] = 1;
    report.required[static_cast<std::size_t>(id)] = req;
    const NormalRV& arr = timing.arrival[static_cast<std::size_t>(id)];
    report.slack[static_cast<std::size_t>(id)] = {req.mu - arr.mu, req.var + arr.var};
  }
  return report;
}

std::vector<NodeId> extract_critical_path(const netlist::Circuit& circuit,
                                          const TimingReport& timing) {
  // Start at the PO with the largest mean arrival.
  const netlist::TimingView& view = circuit.view();
  NodeId cur = view.outputs().front();
  for (NodeId o : view.outputs()) {
    if (timing.arrival[static_cast<std::size_t>(o)].mu >
        timing.arrival[static_cast<std::size_t>(cur)].mu) {
      cur = o;
    }
  }
  std::vector<NodeId> path;
  path.push_back(cur);
  while (view.is_gate(cur)) {
    const netlist::NodeSpan fanins = view.fanins(cur);
    NodeId best = fanins[0];
    for (NodeId f : fanins) {
      if (timing.arrival[static_cast<std::size_t>(f)].mu >
          timing.arrival[static_cast<std::size_t>(best)].mu) {
        best = f;
      }
    }
    cur = best;
    path.push_back(cur);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace statsize::ssta
