// Correlation-aware statistical timing via first-order canonical forms —
// the paper's primary future-work item ("dealing with correlations between
// stochastic variables in the circuit, as a result of reconverging paths,
// which is currently not included in our delay model").
//
// Every arrival time is represented as
//
//   T = mean + sum_g a_g xi_g + r xi_T
//
// where xi_g are independent unit normals, one per gate delay, and xi_T is a
// private residual absorbing the non-normal part introduced by max
// operations. Because the gate contributions are carried explicitly:
//
//   * ADD is exact: the gate's own sigma joins its coefficient slot, so a
//     gate shared by two reconverging paths contributes ONE random variable,
//     not two (this is exactly what the independence assumption of eq. 6
//     gets wrong);
//   * MAX uses Clark's correlated formulas with Cov(A, B) computed from the
//     shared coefficients, and mixes coefficients with the tightness weight
//     Phi(alpha) = P(A > B), rescaled so the total variance matches the
//     Clark moment (the standard canonical-form treatment in later SSTA
//     literature, e.g. Visweswariah et al. / Chang & Sapatnekar).
//
// The engine slots into the same workflow as run_ssta and is validated
// against Monte Carlo in tests and bench validation_correlation.

#pragma once

#include <utility>
#include <vector>

#include "netlist/circuit.h"
#include "ssta/delay_model.h"
#include "stat/normal.h"

namespace statsize::ssta {

/// Sparse first-order canonical form over independent unit-normal sources.
/// Source ids < num_gate_sources refer to gate delays; ids above are private
/// residuals minted by max operations.
class CanonicalForm {
 public:
  CanonicalForm() = default;
  explicit CanonicalForm(double mean) : mean_(mean) {}

  static CanonicalForm constant(double mean) { return CanonicalForm(mean); }

  /// mean + sigma * xi_source.
  static CanonicalForm variable(double mean, int source, double sigma);

  double mean() const { return mean_; }
  double variance() const;
  double sigma() const;
  stat::NormalRV to_normal() const { return {mean_, variance()}; }

  /// Terms are kept sorted by source id (unique ids).
  const std::vector<std::pair<int, double>>& terms() const { return terms_; }

  static double covariance(const CanonicalForm& a, const CanonicalForm& b);

  /// Exact sum of jointly normal forms (shared sources combine linearly).
  static CanonicalForm add(const CanonicalForm& a, const CanonicalForm& b);

  /// Correlated Clark max with tightness-weighted coefficient mixing. Fresh
  /// residual sources are allocated from `next_source` (incremented).
  static CanonicalForm max(const CanonicalForm& a, const CanonicalForm& b, int& next_source);

 private:
  double mean_ = 0.0;
  std::vector<std::pair<int, double>> terms_;
};

struct CanonicalTimingReport {
  std::vector<CanonicalForm> arrival;  ///< per node
  CanonicalForm circuit_delay;

  stat::NormalRV circuit_delay_normal() const { return circuit_delay.to_normal(); }
};

/// Propagates canonical arrival times; gate delay g contributes source id g.
CanonicalTimingReport run_canonical_ssta(const netlist::Circuit& circuit,
                                         const std::vector<stat::NormalRV>& gate_delays);

/// Convenience overload mirroring run_ssta(DelayCalculator, speed).
CanonicalTimingReport run_canonical_ssta(const DelayCalculator& calc,
                                         const std::vector<double>& speed);

}  // namespace statsize::ssta
