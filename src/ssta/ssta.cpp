#include "ssta/ssta.h"

#include <algorithm>
#include <stdexcept>

#include "netlist/timing_view.h"
#include "runtime/level_schedule.h"
#include "runtime/runtime.h"
#include "stat/clark.h"

namespace statsize::ssta {

using netlist::NodeId;
using netlist::NodeKind;
using stat::NormalRV;

namespace {

bool use_parallel(const netlist::TimingView& view) {
  return runtime::threads() > 1 && view.num_gates() >= kParallelGateCutoff;
}

}  // namespace

TimingReport run_ssta(const netlist::TimingView& view, const std::vector<NormalRV>& gate_delays,
                      const std::vector<NormalRV>& input_arrivals) {
  if (static_cast<int>(gate_delays.size()) != view.num_nodes()) {
    throw std::invalid_argument("gate_delays must be indexed by NodeId");
  }
  if (static_cast<int>(input_arrivals.size()) != view.num_inputs()) {
    throw std::invalid_argument(
        "input_arrivals must carry one entry per primary input (in topological "
        "input order)");
  }
  TimingReport report;
  report.arrival.resize(static_cast<std::size_t>(view.num_nodes()));

  // Primary inputs take their schedule time; ordinal = position among the
  // inputs in topological order (stable whether or not gates run in
  // parallel below).
  int pi_index = 0;
  for (NodeId id : view.topo_order()) {
    if (view.kind(id) == NodeKind::kPrimaryInput) {
      report.arrival[static_cast<std::size_t>(id)] =
          input_arrivals[static_cast<std::size_t>(pi_index++)];
    }
  }

  // U = statistical max over fanin arrivals (left fold of the pairwise
  // Clark max, exactly as eq. 18b), then T = U + t (eq. 4). Each gate reads
  // only strictly-lower-level arrivals and writes its own slot, so gates of
  // one level run concurrently with bit-identical results.
  auto eval_gate = [&](NodeId id) {
    const netlist::NodeSpan fanins = view.fanins(id);
    NormalRV u = report.arrival[static_cast<std::size_t>(fanins[0])];
    for (std::size_t i = 1; i < fanins.size(); ++i) {
      u = stat::clark_max(u, report.arrival[static_cast<std::size_t>(fanins[i])]);
    }
    report.arrival[static_cast<std::size_t>(id)] =
        stat::add(u, gate_delays[static_cast<std::size_t>(id)]);
  };
  if (use_parallel(view)) {
    runtime::LevelSchedule(view).for_each_gate(kGateGrain, eval_gate);
  } else {
    for (NodeId id : view.gates_in_topo_order()) eval_gate(id);
  }

  const std::vector<NodeId>& outs = view.outputs();
  NormalRV total = report.arrival[static_cast<std::size_t>(outs[0])];
  for (std::size_t i = 1; i < outs.size(); ++i) {
    total = stat::clark_max(total, report.arrival[static_cast<std::size_t>(outs[i])]);
  }
  report.circuit_delay = total;
  return report;
}

TimingReport run_ssta(const netlist::TimingView& view, const std::vector<NormalRV>& gate_delays,
                      NormalRV input_arrival) {
  const std::vector<NormalRV> arrivals(static_cast<std::size_t>(view.num_inputs()),
                                       input_arrival);
  return run_ssta(view, gate_delays, arrivals);
}

TimingReport run_ssta(const netlist::Circuit& circuit, const std::vector<NormalRV>& gate_delays,
                      const std::vector<NormalRV>& input_arrivals) {
  return run_ssta(circuit.view(), gate_delays, input_arrivals);
}

TimingReport run_ssta(const netlist::Circuit& circuit, const std::vector<NormalRV>& gate_delays,
                      NormalRV input_arrival) {
  const std::vector<NormalRV> arrivals(static_cast<std::size_t>(circuit.num_inputs()),
                                       input_arrival);
  return run_ssta(circuit.view(), gate_delays, arrivals);
}

TimingReport run_ssta(const DelayCalculator& calc, const std::vector<double>& speed) {
  return run_ssta(calc.view(), calc.all_delays(speed));
}

StaReport run_sta(const netlist::TimingView& view, const std::vector<NormalRV>& gate_delays,
                  Corner corner) {
  if (static_cast<int>(gate_delays.size()) != view.num_nodes()) {
    throw std::invalid_argument("gate_delays must be indexed by NodeId");
  }
  const double k = corner == Corner::kBest ? -3.0 : corner == Corner::kWorst ? 3.0 : 0.0;
  StaReport report;
  report.arrival.resize(static_cast<std::size_t>(view.num_nodes()), 0.0);
  auto eval_gate = [&](NodeId id) {
    const netlist::NodeSpan fanins = view.fanins(id);
    double u = report.arrival[static_cast<std::size_t>(fanins[0])];
    for (std::size_t i = 1; i < fanins.size(); ++i) {
      u = std::max(u, report.arrival[static_cast<std::size_t>(fanins[i])]);
    }
    report.arrival[static_cast<std::size_t>(id)] =
        u + gate_delays[static_cast<std::size_t>(id)].quantile_offset(k);
  };
  if (use_parallel(view)) {
    runtime::LevelSchedule(view).for_each_gate(kGateGrain, eval_gate);
  } else {
    for (NodeId id : view.gates_in_topo_order()) eval_gate(id);
  }
  double total = 0.0;
  for (NodeId o : view.outputs()) {
    total = std::max(total, report.arrival[static_cast<std::size_t>(o)]);
  }
  report.circuit_delay = total;
  return report;
}

StaReport run_sta(const netlist::Circuit& circuit, const std::vector<NormalRV>& gate_delays,
                  Corner corner) {
  return run_sta(circuit.view(), gate_delays, corner);
}

}  // namespace statsize::ssta
