#include "ssta/activity.h"

#include <random>
#include <stdexcept>

#include "netlist/timing_view.h"

namespace statsize::ssta {

using netlist::CellFunction;
using netlist::NodeId;
using netlist::NodeKind;

namespace {

double prob_of_gate(CellFunction fn, const NodeId* fanins, std::size_t num_fanins,
                    const std::vector<double>& probs) {
  auto pin = [&](std::size_t i) { return probs[static_cast<std::size_t>(fanins[i])]; };
  switch (fn) {
    case CellFunction::kBuf:
      return pin(0);
    case CellFunction::kInv:
      return 1.0 - pin(0);
    case CellFunction::kAnd:
    case CellFunction::kNand: {
      double all1 = 1.0;
      for (std::size_t i = 0; i < num_fanins; ++i) all1 *= pin(i);
      return fn == CellFunction::kAnd ? all1 : 1.0 - all1;
    }
    case CellFunction::kOr:
    case CellFunction::kNor: {
      double all0 = 1.0;
      for (std::size_t i = 0; i < num_fanins; ++i) all0 *= 1.0 - pin(i);
      return fn == CellFunction::kOr ? 1.0 - all0 : all0;
    }
    case CellFunction::kXor: {
      // P(odd number of ones): fold p_xor = a(1-b) + b(1-a).
      double acc = pin(0);
      for (std::size_t i = 1; i < num_fanins; ++i) {
        acc = acc * (1.0 - pin(i)) + pin(i) * (1.0 - acc);
      }
      return acc;
    }
    case CellFunction::kAoi21:
      // y = !((a & b) | c) -> P = (1 - pa pb)(1 - pc)
      return (1.0 - pin(0) * pin(1)) * (1.0 - pin(2));
    case CellFunction::kOai21: {
      // y = !((a | b) & c) -> P = 1 - (1 - (1-pa)(1-pb)) pc
      const double or_ab = 1.0 - (1.0 - pin(0)) * (1.0 - pin(1));
      return 1.0 - or_ab * pin(2);
    }
  }
  throw std::logic_error("unhandled cell function");
}

bool eval_gate(CellFunction fn, const NodeId* fanins, std::size_t num_fanins,
               const std::vector<char>& value) {
  auto pin = [&](std::size_t i) { return value[static_cast<std::size_t>(fanins[i])] != 0; };
  switch (fn) {
    case CellFunction::kBuf:
      return pin(0);
    case CellFunction::kInv:
      return !pin(0);
    case CellFunction::kAnd:
    case CellFunction::kNand: {
      bool all = true;
      for (std::size_t i = 0; i < num_fanins && all; ++i) all = pin(i);
      return fn == CellFunction::kAnd ? all : !all;
    }
    case CellFunction::kOr:
    case CellFunction::kNor: {
      bool any = false;
      for (std::size_t i = 0; i < num_fanins && !any; ++i) any = pin(i);
      return fn == CellFunction::kOr ? any : !any;
    }
    case CellFunction::kXor: {
      bool acc = false;
      for (std::size_t i = 0; i < num_fanins; ++i) acc = acc != pin(i);
      return acc;
    }
    case CellFunction::kAoi21:
      return !((pin(0) && pin(1)) || pin(2));
    case CellFunction::kOai21:
      return !((pin(0) || pin(1)) && pin(2));
  }
  throw std::logic_error("unhandled cell function");
}

}  // namespace

std::vector<double> signal_probabilities(const netlist::Circuit& circuit,
                                         double input_probability) {
  if (input_probability < 0.0 || input_probability > 1.0) {
    throw std::invalid_argument("input probability must lie in [0, 1]");
  }
  const netlist::TimingView& view = circuit.view();
  std::vector<double> probs(static_cast<std::size_t>(view.num_nodes()), 0.0);
  for (NodeId id : view.topo_order()) {
    if (view.kind(id) == NodeKind::kPrimaryInput) {
      probs[static_cast<std::size_t>(id)] = input_probability;
    } else {
      const netlist::NodeSpan fanins = view.fanins(id);
      probs[static_cast<std::size_t>(id)] =
          prob_of_gate(view.function(id), fanins.begin(), fanins.size(), probs);
    }
  }
  return probs;
}

std::vector<double> switching_activity(const netlist::Circuit& circuit,
                                       double input_probability) {
  std::vector<double> act = signal_probabilities(circuit, input_probability);
  for (double& p : act) p = 2.0 * p * (1.0 - p);
  return act;
}

std::vector<double> power_weights(const netlist::Circuit& circuit, double input_probability,
                                  double internal_cap_fraction) {
  const std::vector<double> act = switching_activity(circuit, input_probability);
  const netlist::TimingView& view = circuit.view();
  std::vector<double> weights(static_cast<std::size_t>(view.num_nodes()), 0.0);
  for (NodeId id : view.gates_in_topo_order()) {
    const double cin = view.c_in(id);
    double w = internal_cap_fraction * cin * act[static_cast<std::size_t>(id)];
    for (NodeId f : view.fanins(id)) w += cin * act[static_cast<std::size_t>(f)];
    weights[static_cast<std::size_t>(id)] = w;
  }
  return weights;
}

std::vector<double> signal_probabilities_monte_carlo(const netlist::Circuit& circuit,
                                                     int num_samples, std::uint64_t seed,
                                                     double input_probability) {
  const netlist::TimingView& view = circuit.view();
  std::mt19937_64 rng(seed);
  std::bernoulli_distribution coin(input_probability);
  std::vector<char> value(static_cast<std::size_t>(view.num_nodes()), 0);
  std::vector<long> ones(static_cast<std::size_t>(view.num_nodes()), 0);
  for (int s = 0; s < num_samples; ++s) {
    for (NodeId id : view.topo_order()) {
      bool v;
      if (view.kind(id) == NodeKind::kPrimaryInput) {
        v = coin(rng);
      } else {
        const netlist::NodeSpan fanins = view.fanins(id);
        v = eval_gate(view.function(id), fanins.begin(), fanins.size(), value);
      }
      value[static_cast<std::size_t>(id)] = v ? 1 : 0;
      if (v) ++ones[static_cast<std::size_t>(id)];
    }
  }
  std::vector<double> probs(ones.size());
  for (std::size_t i = 0; i < ones.size(); ++i) {
    probs[i] = static_cast<double>(ones[i]) / num_samples;
  }
  return probs;
}

}  // namespace statsize::ssta
