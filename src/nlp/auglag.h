// Augmented Lagrangian method for the Problem class — the same algorithm
// family as LANCELOT (Conn–Gould–Toint): bound constraints are handled by the
// inner solver, equality constraints by the multiplier/penalty outer loop
//
//   Psi(x; lambda, rho) = f(x) - sum_j lambda_j c_j(x) + (rho/2) sum_j c_j(x)^2
//
// with the classic update schedule (Nocedal & Wright, Alg. 17.4): when the
// inner solve ends sufficiently feasible, first-order multiplier update
// lambda <- lambda - rho c and tightened tolerances; otherwise rho increases.
//
// Hessian information is assembled from the per-element analytic Hessians:
//
//   H_Psi v = H_f v + sum_j (rho c_j - lambda_j) H_{c_j} v
//             + rho sum_j (grad c_j . v) grad c_j
//
// which is exactly why the paper needed closed-form second derivatives of the
// statistical max operator.

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "nlp/model.h"
#include "nlp/problem.h"
#include "runtime/scatter_plan.h"

namespace statsize::nlp {

struct AugLagOptions {
  double initial_rho = 10.0;
  double rho_increase = 10.0;
  double max_rho = 1e10;
  double feasibility_tol = 1e-7;   ///< final ||c||_inf target
  double optimality_tol = 1e-6;    ///< final projected-gradient target
  int max_outer_iterations = 40;
  int max_inner_iterations = 400;  ///< trust-region iterations per subproblem
  bool verbose = false;
  /// Optional per-outer-iteration callback (iteration, x, ||c||, projgrad).
  std::function<void(int, const std::vector<double>&, double, double)> on_outer;
};

enum class SolveStatus {
  kConverged,       ///< feasibility and first-order optimality tolerances met
  kAcceptable,      ///< feasible and objective stagnant, but the inner solver
                    ///< could not certify first-order optimality (typically
                    ///< ill-conditioning near an active-bound solution)
  kMaxIterations,   ///< outer budget exhausted; best iterate returned
  kStalled,         ///< inner solver made no progress while infeasible
  kTimeLimit,       ///< a runtime::CancelScope deadline/cancel fired; the
                    ///< best checkpoint seen is returned (DESIGN.md §9)
  kNumericalBreakdown,  ///< a non-finite evaluation tripwire fired; the best
                        ///< checkpoint is returned and `breakdown_site` names
                        ///< the offending element/constraint
};

struct SolveResult {
  SolveStatus status = SolveStatus::kMaxIterations;
  std::vector<double> x;
  std::vector<double> multipliers;
  double objective = 0.0;
  double constraint_violation = 0.0;
  double projected_gradient = 0.0;
  int outer_iterations = 0;
  int inner_iterations = 0;
  double final_rho = 0.0;

  // Resilience provenance (meaningful for kTimeLimit / kNumericalBreakdown,
  // where the returned iterate is the best checkpoint rather than the last
  // point the inner solver touched).
  bool from_checkpoint = false;  ///< x restored from the best-iterate checkpoint
  int checkpoint_outer = -1;     ///< outer iteration the checkpoint was taken
                                 ///< after (-1 = the clamped start point)
  std::string breakdown_site;    ///< EvalBreakdown tripwire detail, else empty

  bool ok() const {
    return status == SolveStatus::kConverged || status == SolveStatus::kAcceptable;
  }
  std::string status_string() const;
};

/// Carry-over state from a previous solve of a *nearby* problem (an ECO
/// perturbation of the instance) — the multiplier/penalty warm start the
/// sizing layer threads through Sizer::resize (DESIGN.md §12). Empty fields
/// fall back to the cold defaults: empty `x` → problem.start() (then clamped
/// to bounds, as always), empty `multipliers` → zeros, `rho` <= 0 →
/// options.initial_rho. Non-empty fields must match the problem's dimensions
/// (std::invalid_argument otherwise). Reusing converged multipliers near the
/// old solution lets the outer loop start at (or near) the correct
/// first-order point instead of re-estimating lambda from zero, which is
/// where the ECO resize saves its outer iterations.
struct WarmStart {
  std::vector<double> x;
  std::vector<double> multipliers;
  double rho = 0.0;  ///< <= 0 means options.initial_rho
};

/// Solves `problem` starting from problem.start().
SolveResult solve_augmented_lagrangian(const Problem& problem, const AugLagOptions& options = {});

/// Solves `problem` from the warm start (see WarmStart; the plain overload
/// is exactly this with an empty warm start).
SolveResult solve_augmented_lagrangian(const Problem& problem, const AugLagOptions& options,
                                       const WarmStart& warm);

/// The Psi model itself — exposed for tests and for reuse by the
/// reduced-space sizer's constraint handling.
class AugLagModel final : public SmoothModel {
 public:
  AugLagModel(const Problem& problem, std::vector<double> multipliers, double rho);

  int num_vars() const override { return problem_->num_vars(); }

  /// Psi and (optionally) its gradient. Constraint groups are evaluated in
  /// parallel on the global runtime pool and accumulated in constraint
  /// order, so the result is bit-identical to a serial evaluation at any
  /// thread count (see DESIGN.md §7).
  double eval(const std::vector<double>& x, std::vector<double>* grad) override;

  /// Hessian-vector product from the element snapshots. Large problems run
  /// parallel via a structural ScatterPlan (per-element/per-constraint
  /// contributions into disjoint slots, then a conflict-free target-major
  /// fold in serial item order — see DESIGN.md §7); small problems keep the
  /// direct serial scatter. Both paths produce equal doubles at any thread
  /// count.
  void hess_vec(const std::vector<double>& v, std::vector<double>& hv) const override;

  void set_rho(double rho) { rho_ = rho; }
  void set_multipliers(std::vector<double> m) { multipliers_ = std::move(m); }
  double rho() const { return rho_; }
  const Problem& problem() const { return *problem_; }
  const std::vector<double>& multipliers() const { return multipliers_; }
  const std::vector<double>& constraint_values() const { return c_; }

 private:
  struct ElementSnapshot {
    const ElementFunction* fn;
    const int* vars;
    double weight;       ///< group weight at snapshot time (incl. y_j factor)
    double* hess;        ///< packed Hessian storage
  };

  const Problem* problem_;
  std::vector<double> multipliers_;
  double rho_;

  // Snapshot state for hess_vec (refreshed on every gradient evaluation).
  // Constraint j owns the snapshot slice starting at snap_offset_[j], which
  // is what lets the gradient evaluation fan constraints out across threads
  // with no shared writes.
  std::vector<double> c_;                       ///< constraint values
  std::vector<ElementSnapshot> snapshots_;      ///< all elements with weights
  std::vector<std::size_t> snap_offset_;        ///< constraint j's first snapshot
  std::vector<double> hess_storage_;            ///< packed Hessians, contiguous
  std::vector<std::vector<int>> cgrad_idx_;     ///< sparse grad c_j indices
  std::vector<std::vector<double>> cgrad_val_;  ///< sparse grad c_j values
  std::vector<double> probe_c_;                 ///< scratch for value-only eval

  // hess_vec parallel-scatter structure (static per Problem): one plan item
  // per element snapshot (targets = its vars) followed by one per constraint
  // (targets = sparse grad c_j indices), in the serial loop's order.
  runtime::ScatterPlan hv_plan_;
  std::vector<std::size_t> snap_slot_;          ///< snapshot i's first plan slot
  std::vector<std::size_t> cons_slot_;          ///< constraint j's first plan slot
  mutable std::vector<double> hv_slots_;        ///< phase-1 contribution scratch
};

}  // namespace statsize::nlp
