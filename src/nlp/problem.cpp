#include "nlp/problem.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace statsize::nlp {

double FunctionGroup::eval(const std::vector<double>& x) const {
  double v = constant;
  for (const LinearTerm& t : linear) v += t.coef * x[static_cast<std::size_t>(t.var)];
  double local[16];
  for (const ElementRef& e : elements) {
    const int n = e.fn->arity();
    for (int i = 0; i < n; ++i) local[i] = x[static_cast<std::size_t>(e.vars[i])];
    v += e.weight * e.fn->eval(local, nullptr, nullptr);
  }
  return v;
}

void FunctionGroup::accumulate_grad(const std::vector<double>& x, double scale,
                                    std::vector<double>& grad) const {
  for (const LinearTerm& t : linear) grad[static_cast<std::size_t>(t.var)] += scale * t.coef;
  double local[16];
  double g[16];
  for (const ElementRef& e : elements) {
    const int n = e.fn->arity();
    for (int i = 0; i < n; ++i) local[i] = x[static_cast<std::size_t>(e.vars[i])];
    e.fn->eval(local, g, nullptr);
    for (int i = 0; i < n; ++i) {
      grad[static_cast<std::size_t>(e.vars[i])] += scale * e.weight * g[i];
    }
  }
}

int Problem::add_variable(double lower, double upper, double start, std::string name) {
  if (lower > upper) throw std::invalid_argument("variable bounds inverted");
  lower_.push_back(lower);
  upper_.push_back(upper);
  start_.push_back(std::clamp(start, lower, upper));
  names_.push_back(name.empty() ? "x" + std::to_string(lower_.size() - 1) : std::move(name));
  return num_vars() - 1;
}

const ElementFunction* Problem::own(std::unique_ptr<ElementFunction> fn) {
  if (fn->arity() > 16) throw std::invalid_argument("element arity > 16 unsupported");
  owned_.push_back(std::move(fn));
  return owned_.back().get();
}

int Problem::add_equality(FunctionGroup group) {
  constraints_.push_back(std::move(group));
  return num_constraints() - 1;
}

int Problem::add_inequality(FunctionGroup group, double bound, double slack_start) {
  const int slack = add_variable(0.0, kInfinity, std::max(0.0, slack_start), "slack");
  group.constant -= bound;
  group.linear.push_back({slack, 1.0});
  return add_equality(std::move(group));
}

namespace {

void validate_group(const FunctionGroup& g, int num_vars, const char* what) {
  for (const LinearTerm& t : g.linear) {
    if (t.var < 0 || t.var >= num_vars) {
      throw std::runtime_error(std::string(what) + ": linear term variable out of range");
    }
  }
  for (const ElementRef& e : g.elements) {
    if (e.fn == nullptr) throw std::runtime_error(std::string(what) + ": null element");
    if (static_cast<int>(e.vars.size()) != e.fn->arity()) {
      throw std::runtime_error(std::string(what) + ": element variable count != arity");
    }
    for (int v : e.vars) {
      if (v < 0 || v >= num_vars) {
        throw std::runtime_error(std::string(what) + ": element variable out of range");
      }
    }
  }
}

}  // namespace

void Problem::validate() const {
  validate_group(objective_, num_vars(), "objective");
  for (const FunctionGroup& c : constraints_) validate_group(c, num_vars(), "constraint");
}

void Problem::eval_constraints(const std::vector<double>& x, std::vector<double>& c) const {
  c.resize(constraints_.size());
  for (std::size_t j = 0; j < constraints_.size(); ++j) c[j] = constraints_[j].eval(x);
}

double Problem::max_constraint_violation(const std::vector<double>& x) const {
  double worst = 0.0;
  for (const FunctionGroup& g : constraints_) worst = std::max(worst, std::abs(g.eval(x)));
  return worst;
}

double ProductElement::eval(const double* x, double* grad, double* hess) const {
  if (grad != nullptr) {
    grad[0] = x[1];
    grad[1] = x[0];
  }
  if (hess != nullptr) {
    hess[packed_index(2, 0, 0)] = 0.0;
    hess[packed_index(2, 0, 1)] = 1.0;
    hess[packed_index(2, 1, 1)] = 0.0;
  }
  return x[0] * x[1];
}

double SquareElement::eval(const double* x, double* grad, double* hess) const {
  if (grad != nullptr) grad[0] = 2.0 * x[0];
  if (hess != nullptr) hess[0] = 2.0;
  return x[0] * x[0];
}

double SqrtElement::eval(const double* x, double* grad, double* hess) const {
  if (x[0] < floor_) {
    // C^1 linear extension: value and slope match sqrt at the floor.
    const double s0 = std::sqrt(floor_);
    const double slope = 0.5 / s0;
    if (grad != nullptr) grad[0] = slope;
    if (hess != nullptr) hess[0] = 0.0;
    return s0 + slope * (x[0] - floor_);
  }
  const double s = std::sqrt(x[0]);
  if (grad != nullptr) grad[0] = 0.5 / s;
  if (hess != nullptr) hess[0] = -0.25 / (s * x[0]);
  return s;
}

double RatioElement::eval(const double* x, double* grad, double* hess) const {
  const double inv = 1.0 / x[1];
  if (grad != nullptr) {
    grad[0] = inv;
    grad[1] = -x[0] * inv * inv;
  }
  if (hess != nullptr) {
    hess[packed_index(2, 0, 0)] = 0.0;
    hess[packed_index(2, 0, 1)] = -inv * inv;
    hess[packed_index(2, 1, 1)] = 2.0 * x[0] * inv * inv * inv;
  }
  return x[0] * inv;
}

}  // namespace statsize::nlp
