#include "nlp/problem.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "runtime/runtime.h"

namespace statsize::nlp {

namespace {

// Parallel evaluation kicks in above these sizes. The scheme everywhere is
// "parallel evaluate, ordered combine": element/constraint values are
// computed concurrently into index-keyed slots, then folded on one thread in
// exactly the order the serial loop uses — so results are bit-identical to
// the serial path at every thread count.
constexpr std::size_t kParallelElements = 384;
constexpr std::size_t kElementGrain = 64;
constexpr std::size_t kParallelConstraints = 64;
constexpr std::size_t kConstraintGrain = 8;

}  // namespace

double FunctionGroup::eval(const std::vector<double>& x) const {
  double v = constant;
  for (const LinearTerm& t : linear) v += t.coef * x[static_cast<std::size_t>(t.var)];
  const std::size_t ne = elements.size();
  if (runtime::threads() > 1 && ne >= kParallelElements) {
    std::vector<double> vals(ne);
    runtime::parallel_for(ne, kElementGrain, [&](std::size_t b, std::size_t e) {
      double local[kMaxElementArity];
      for (std::size_t k = b; k < e; ++k) {
        const ElementRef& el = elements[k];
        const int n = el.fn->arity();
        for (int i = 0; i < n; ++i) local[i] = x[static_cast<std::size_t>(el.vars[i])];
        vals[k] = el.weight * el.fn->eval(local, nullptr, nullptr);
      }
    });
    for (const double val : vals) v += val;
    return v;
  }
  double local[kMaxElementArity];
  for (const ElementRef& e : elements) {
    const int n = e.fn->arity();
    for (int i = 0; i < n; ++i) local[i] = x[static_cast<std::size_t>(e.vars[i])];
    v += e.weight * e.fn->eval(local, nullptr, nullptr);
  }
  return v;
}

void FunctionGroup::accumulate_grad(const std::vector<double>& x, double scale,
                                    std::vector<double>& grad) const {
  for (const LinearTerm& t : linear) grad[static_cast<std::size_t>(t.var)] += scale * t.coef;
  const std::size_t ne = elements.size();
  if (runtime::threads() > 1 && ne >= kParallelElements) {
    // Phase 1 (parallel): per-element local gradients into disjoint slices
    // of a flat buffer. Phase 2 (serial): scatter-add in element order —
    // the same order and arithmetic as the serial loop below.
    std::vector<std::size_t> offset(ne + 1, 0);
    for (std::size_t k = 0; k < ne; ++k) {
      offset[k + 1] = offset[k] + static_cast<std::size_t>(elements[k].fn->arity());
    }
    std::vector<double> eg_flat(offset[ne]);
    runtime::parallel_for(ne, kElementGrain, [&](std::size_t b, std::size_t e) {
      double local[kMaxElementArity];
      for (std::size_t k = b; k < e; ++k) {
        const ElementRef& el = elements[k];
        const int n = el.fn->arity();
        for (int i = 0; i < n; ++i) local[i] = x[static_cast<std::size_t>(el.vars[i])];
        el.fn->eval(local, eg_flat.data() + offset[k], nullptr);
      }
    });
    for (std::size_t k = 0; k < ne; ++k) {
      const ElementRef& el = elements[k];
      const int n = el.fn->arity();
      const double* g = eg_flat.data() + offset[k];
      for (int i = 0; i < n; ++i) {
        grad[static_cast<std::size_t>(el.vars[i])] += scale * el.weight * g[i];
      }
    }
    return;
  }
  double local[kMaxElementArity];
  double g[kMaxElementArity];
  for (const ElementRef& e : elements) {
    const int n = e.fn->arity();
    for (int i = 0; i < n; ++i) local[i] = x[static_cast<std::size_t>(e.vars[i])];
    e.fn->eval(local, g, nullptr);
    for (int i = 0; i < n; ++i) {
      grad[static_cast<std::size_t>(e.vars[i])] += scale * e.weight * g[i];
    }
  }
}

int Problem::add_variable(double lower, double upper, double start, std::string name) {
  if (lower > upper) throw std::invalid_argument("variable bounds inverted");
  lower_.push_back(lower);
  upper_.push_back(upper);
  start_.push_back(std::clamp(start, lower, upper));
  names_.push_back(name.empty() ? "x" + std::to_string(lower_.size() - 1) : std::move(name));
  return num_vars() - 1;
}

const ElementFunction* Problem::own(std::unique_ptr<ElementFunction> fn) {
  if (fn->arity() > kMaxElementArity) {
    throw std::invalid_argument("element arity " + std::to_string(fn->arity()) +
                                " exceeds the supported maximum of " +
                                std::to_string(kMaxElementArity));
  }
  owned_.push_back(std::move(fn));
  return owned_.back().get();
}

int Problem::add_equality(FunctionGroup group) {
  constraints_.push_back(std::move(group));
  return num_constraints() - 1;
}

int Problem::add_inequality(FunctionGroup group, double bound, double slack_start) {
  const int slack = add_variable(0.0, kInfinity, std::max(0.0, slack_start), "slack");
  group.constant -= bound;
  group.linear.push_back({slack, 1.0});
  return add_equality(std::move(group));
}

namespace {

void validate_group(const FunctionGroup& g, int num_vars, const std::string& what) {
  for (const LinearTerm& t : g.linear) {
    if (t.var < 0 || t.var >= num_vars) {
      throw std::runtime_error(what + ": linear term variable out of range");
    }
  }
  for (std::size_t k = 0; k < g.elements.size(); ++k) {
    const ElementRef& e = g.elements[k];
    if (e.fn == nullptr) throw std::runtime_error(what + ": null element");
    // Evaluation paths stage element locals in kMaxElementArity-sized stack
    // buffers; a larger element would overflow them, so it is a hard error
    // here — before any evaluation can touch a buffer.
    if (e.fn->arity() > kMaxElementArity) {
      throw std::runtime_error(what + ": element #" + std::to_string(k) + " has arity " +
                               std::to_string(e.fn->arity()) + ", which exceeds the supported "
                               "maximum of " + std::to_string(kMaxElementArity));
    }
    if (static_cast<int>(e.vars.size()) != e.fn->arity()) {
      throw std::runtime_error(what + ": element variable count != arity");
    }
    for (int v : e.vars) {
      if (v < 0 || v >= num_vars) {
        throw std::runtime_error(what + ": element variable out of range");
      }
    }
  }
}

}  // namespace

void Problem::validate() const {
  validate_group(objective_, num_vars(), "objective");
  for (std::size_t j = 0; j < constraints_.size(); ++j) {
    validate_group(constraints_[j], num_vars(), "constraint #" + std::to_string(j));
  }
}

void Problem::eval_constraints(const std::vector<double>& x, std::vector<double>& c) const {
  c.resize(constraints_.size());
  if (runtime::threads() > 1 && constraints_.size() >= kParallelConstraints) {
    runtime::parallel_for(constraints_.size(), kConstraintGrain,
                          [&](std::size_t b, std::size_t e) {
                            for (std::size_t j = b; j < e; ++j) c[j] = constraints_[j].eval(x);
                          });
    return;
  }
  for (std::size_t j = 0; j < constraints_.size(); ++j) c[j] = constraints_[j].eval(x);
}

double Problem::max_constraint_violation(const std::vector<double>& x) const {
  if (runtime::threads() > 1 && constraints_.size() >= kParallelConstraints) {
    std::vector<double> c;
    eval_constraints(x, c);
    double worst = 0.0;
    for (const double cj : c) worst = std::max(worst, std::abs(cj));
    return worst;
  }
  double worst = 0.0;
  for (const FunctionGroup& g : constraints_) worst = std::max(worst, std::abs(g.eval(x)));
  return worst;
}

double ProductElement::eval(const double* x, double* grad, double* hess) const {
  if (grad != nullptr) {
    grad[0] = x[1];
    grad[1] = x[0];
  }
  if (hess != nullptr) {
    hess[packed_index(2, 0, 0)] = 0.0;
    hess[packed_index(2, 0, 1)] = 1.0;
    hess[packed_index(2, 1, 1)] = 0.0;
  }
  return x[0] * x[1];
}

double SquareElement::eval(const double* x, double* grad, double* hess) const {
  if (grad != nullptr) grad[0] = 2.0 * x[0];
  if (hess != nullptr) hess[0] = 2.0;
  return x[0] * x[0];
}

double SqrtElement::eval(const double* x, double* grad, double* hess) const {
  if (x[0] < floor_) {
    // C^1 linear extension: value and slope match sqrt at the floor.
    const double s0 = std::sqrt(floor_);
    const double slope = 0.5 / s0;
    if (grad != nullptr) grad[0] = slope;
    if (hess != nullptr) hess[0] = 0.0;
    return s0 + slope * (x[0] - floor_);
  }
  const double s = std::sqrt(x[0]);
  if (grad != nullptr) grad[0] = 0.5 / s;
  if (hess != nullptr) hess[0] = -0.25 / (s * x[0]);
  return s;
}

double RatioElement::eval(const double* x, double* grad, double* hess) const {
  const double inv = 1.0 / x[1];
  if (grad != nullptr) {
    grad[0] = inv;
    grad[1] = -x[0] * inv * inv;
  }
  if (hess != nullptr) {
    hess[packed_index(2, 0, 0)] = 0.0;
    hess[packed_index(2, 0, 1)] = -inv * inv;
    hess[packed_index(2, 1, 1)] = 2.0 * x[0] * inv * inv * inv;
  }
  return x[0] * inv;
}

}  // namespace statsize::nlp
