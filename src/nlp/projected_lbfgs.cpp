#include "nlp/projected_lbfgs.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>

#include "runtime/cancel.h"

namespace statsize::nlp {

namespace {

double clamp_to_box(double v, double lo, double hi) { return std::min(std::max(v, lo), hi); }

double pg_norm(const std::vector<double>& x, const std::vector<double>& g,
               const std::vector<double>& lo, const std::vector<double>& hi) {
  double worst = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    worst = std::max(worst, std::abs(clamp_to_box(x[i] - g[i], lo[i], hi[i]) - x[i]));
  }
  return worst;
}

}  // namespace

LbfgsResult minimize_projected_lbfgs(const GradFn& fn, std::vector<double>& x,
                                     const std::vector<double>& lower,
                                     const std::vector<double>& upper,
                                     const LbfgsOptions& options) {
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) x[i] = clamp_to_box(x[i], lower[i], upper[i]);

  struct Pair {
    std::vector<double> s, y;
    double rho;
  };
  std::deque<Pair> history;

  std::vector<double> g(n);
  std::vector<double> g_new(n);
  std::vector<double> d(n);
  std::vector<double> x_new(n);
  std::vector<double> alpha_buf;

  LbfgsResult result;
  double f = fn(x, g);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    runtime::poll_cancel();
    result.iterations = iter + 1;
    result.objective = f;
    result.projected_gradient = pg_norm(x, g, lower, upper);
    if (result.projected_gradient <= options.tol) {
      result.converged = true;
      return result;
    }

    // Two-loop recursion for d = -H g.
    d = g;
    alpha_buf.assign(history.size(), 0.0);
    for (std::size_t k = history.size(); k-- > 0;) {
      const Pair& p = history[k];
      double sd = 0.0;
      for (std::size_t i = 0; i < n; ++i) sd += p.s[i] * d[i];
      alpha_buf[k] = p.rho * sd;
      for (std::size_t i = 0; i < n; ++i) d[i] -= alpha_buf[k] * p.y[i];
    }
    if (!history.empty()) {
      const Pair& last = history.back();
      double yy = 0.0;
      double sy = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        yy += last.y[i] * last.y[i];
        sy += last.s[i] * last.y[i];
      }
      const double gamma = sy / std::max(yy, 1e-30);
      for (std::size_t i = 0; i < n; ++i) d[i] *= gamma;
    }
    for (std::size_t k = 0; k < history.size(); ++k) {
      const Pair& p = history[k];
      double yd = 0.0;
      for (std::size_t i = 0; i < n; ++i) yd += p.y[i] * d[i];
      const double beta = p.rho * yd;
      for (std::size_t i = 0; i < n; ++i) d[i] += (alpha_buf[k] - beta) * p.s[i];
    }
    for (std::size_t i = 0; i < n; ++i) d[i] = -d[i];

    // Projected Armijo backtracking along P(x + a d). If the quasi-Newton
    // direction fails outright (its projection can contain ascent components
    // at any given step length — gt_dx is NOT monotone in the step), retry
    // once from steepest descent with cleared curvature pairs.
    bool accepted = false;
    double step = 1.0;
    for (int attempt = 0; attempt < 2 && !accepted; ++attempt) {
      if (attempt == 1) {
        if (history.empty()) break;  // d already was -g
        history.clear();
        for (std::size_t i = 0; i < n; ++i) d[i] = -g[i];
      }
      step = 1.0;
      for (int bt = 0; bt < 60 && step >= options.min_step; ++bt, step *= 0.5) {
        double gt_dx = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          x_new[i] = clamp_to_box(x[i] + step * d[i], lower[i], upper[i]);
          gt_dx += g[i] * (x_new[i] - x[i]);
        }
        if (gt_dx >= 0.0) continue;  // non-descent at this length: shrink further
        const double f_new = fn(x_new, g_new);
        if (f_new <= f + 1e-4 * gt_dx + 1e-12 * (1.0 + std::abs(f))) {
          Pair p;
          p.s.resize(n);
          p.y.resize(n);
          double sy = 0.0;
          double ss = 0.0;
          double yy = 0.0;
          for (std::size_t i = 0; i < n; ++i) {
            p.s[i] = x_new[i] - x[i];
            p.y[i] = g_new[i] - g[i];
            sy += p.s[i] * p.y[i];
            ss += p.s[i] * p.s[i];
            yy += p.y[i] * p.y[i];
          }
          if (sy > 1e-10 * std::sqrt(ss * yy)) {
            p.rho = 1.0 / sy;
            history.push_back(std::move(p));
            if (static_cast<int>(history.size()) > options.history) history.pop_front();
          }
          x = x_new;
          f = f_new;
          g = g_new;
          accepted = true;
          break;
        }
      }
    }
    if (options.verbose) {
      std::printf("[lbfgs] it=%d f=%.8g pg=%.2e step=%.2e\n", iter, f,
                  result.projected_gradient, step);
    }
    if (!accepted) {
      // Line search failed even along steepest descent: stationary to
      // numerical precision.
      return result;
    }
  }
  return result;
}

}  // namespace statsize::nlp
