// Bound-constrained equality-constrained NLP in LANCELOT's canonical shape:
//
//   minimize   f(x)
//   subject to c_j(x) = 0          (j = 1..m, each a FunctionGroup)
//              l <= x <= u
//
// Inequalities are accommodated the way LANCELOT does it: by adding a bounded
// slack variable and turning g(x) <= b into g(x) + s - b = 0 with s >= 0
// (add_inequality below). The paper's delay constraints (mu + k sigma <= D)
// enter the sizing formulation through exactly this mechanism.

#pragma once

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "nlp/element.h"

namespace statsize::nlp {

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

class Problem {
 public:
  /// Adds a variable with bounds and initial value; returns its index.
  int add_variable(double lower, double upper, double start, std::string name = {});

  int num_vars() const { return static_cast<int>(lower_.size()); }
  int num_constraints() const { return static_cast<int>(constraints_.size()); }

  const std::vector<double>& lower() const { return lower_; }
  const std::vector<double>& upper() const { return upper_; }
  const std::vector<double>& start() const { return start_; }
  const std::string& var_name(int i) const { return names_.at(static_cast<std::size_t>(i)); }
  /// All variable names in index order ("" where none was given) — whole-
  /// vector introspection for the pre-solve audit (analyze/nlp_audit.h).
  const std::vector<std::string>& var_names() const { return names_; }
  /// Number of element functions this problem owns (introspection only;
  /// groups may additionally reference externally-owned elements).
  int num_owned_elements() const { return static_cast<int>(owned_.size()); }
  void set_start(int var, double value) { start_.at(static_cast<std::size_t>(var)) = value; }

  /// Takes ownership of an element function; the returned pointer stays valid
  /// for the lifetime of the Problem and can be shared by many ElementRefs.
  const ElementFunction* own(std::unique_ptr<ElementFunction> fn);

  void set_objective(FunctionGroup objective) { objective_ = std::move(objective); }
  const FunctionGroup& objective() const { return objective_; }

  /// Adds the equality constraint g(x) = 0; returns the constraint index.
  int add_equality(FunctionGroup group);

  /// Adds g(x) <= bound via a slack: g(x) + s - bound = 0, s in [0, inf).
  /// Returns the constraint index; `slack_start` seeds s (clamped to >= 0).
  int add_inequality(FunctionGroup group, double bound, double slack_start = 0.0);

  const FunctionGroup& constraint(int j) const {
    return constraints_.at(static_cast<std::size_t>(j));
  }

  /// Validates index ranges and arities; throws std::runtime_error on error.
  void validate() const;

  double eval_objective(const std::vector<double>& x) const { return objective_.eval(x); }
  void eval_constraints(const std::vector<double>& x, std::vector<double>& c) const;
  double max_constraint_violation(const std::vector<double>& x) const;

 private:
  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<double> start_;
  std::vector<std::string> names_;
  std::vector<std::unique_ptr<ElementFunction>> owned_;
  FunctionGroup objective_;
  std::vector<FunctionGroup> constraints_;
};

// ---------------------------------------------------------------------------
// Stock element functions (shared by tests and the sizing formulation).
// ---------------------------------------------------------------------------

/// f(x, y) = x * y.
class ProductElement final : public ElementFunction {
 public:
  int arity() const override { return 2; }
  double eval(const double* x, double* grad, double* hess) const override;
};

/// f(x) = x^2.
class SquareElement final : public ElementFunction {
 public:
  int arity() const override { return 1; }
  double eval(const double* x, double* grad, double* hess) const override;
};

/// f(x, y) = x / y (y must stay away from 0 via bounds).
class RatioElement final : public ElementFunction {
 public:
  int arity() const override { return 2; }
  double eval(const double* x, double* grad, double* hess) const override;
};

/// f(x) = sqrt(x) for x >= floor, extended linearly (C^1) below the floor.
///
/// Used to express mu + k * sigma as mu + k * sqrt(var) without a separate
/// sigma variable: the alternative coupling constraint sigma^2 = var has a
/// spurious first-order trap at sigma = 0. The linear extension matters too:
/// sqrt's unbounded derivative at 0 otherwise gives the optimizer an infinite
/// incentive to crash the variance variable into 0 against its defining
/// constraints, which augmented-Lagrangian iterations fight for thousands of
/// iterations. Callers pick a floor safely below any physically attainable
/// value (e.g. a tenth of the build-time variance), so the extension is never
/// active at a converged point — and if it were, the true objective recomputed
/// by SSTA at the final sizes would expose the distortion.
class SqrtElement final : public ElementFunction {
 public:
  explicit SqrtElement(double floor = 1e-12) : floor_(floor < 1e-12 ? 1e-12 : floor) {}
  int arity() const override { return 1; }
  double eval(const double* x, double* grad, double* hess) const override;

 private:
  double floor_;
};

}  // namespace statsize::nlp
