// Projected L-BFGS for bound-constrained smooth minimization.
//
// Used by the reduced-space sizing mode, where the only variables are the
// speed factors S in [1, limit] and the objective/constraint values come from
// a forward SSTA sweep with adjoint gradients (no cheap Hessian available —
// hence quasi-Newton instead of the Newton-CG machinery in tron.h).

#pragma once

#include <functional>
#include <vector>

namespace statsize::nlp {

/// Objective callback: returns f(x) and fills grad (same size as x).
using GradFn = std::function<double(const std::vector<double>&, std::vector<double>&)>;

struct LbfgsOptions {
  double tol = 1e-6;  ///< projected-gradient infinity norm
  int max_iterations = 500;
  int history = 10;
  double min_step = 1e-14;
  bool verbose = false;
};

struct LbfgsResult {
  double objective = 0.0;
  double projected_gradient = 0.0;
  int iterations = 0;
  bool converged = false;
};

LbfgsResult minimize_projected_lbfgs(const GradFn& fn, std::vector<double>& x,
                                     const std::vector<double>& lower,
                                     const std::vector<double>& upper,
                                     const LbfgsOptions& options = {});

}  // namespace statsize::nlp
