// Smooth unconstrained-model interface consumed by the bound-constrained
// trust-region solver. The augmented Lagrangian (auglag.h) and plain test
// functions both implement it.

#pragma once

#include <vector>

namespace statsize::nlp {

class SmoothModel {
 public:
  virtual ~SmoothModel() = default;

  virtual int num_vars() const = 0;

  /// Evaluates at `x`. When `grad` is non-null it is resized/filled and the
  /// model must snapshot whatever second-order state hess_vec needs at this
  /// point. Gradient-free calls (trial points) must NOT disturb that
  /// snapshot — the trust-region loop probes trial points while keeping the
  /// quadratic model anchored at the current iterate.
  virtual double eval(const std::vector<double>& x, std::vector<double>* grad) = 0;

  /// hv = H v with H the Hessian at the last gradient evaluation point.
  virtual void hess_vec(const std::vector<double>& v, std::vector<double>& hv) const = 0;
};

}  // namespace statsize::nlp
