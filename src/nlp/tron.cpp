#include "nlp/tron.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "runtime/cancel.h"
#include "runtime/fault.h"

namespace statsize::nlp {

namespace {

double clamp_to_box(double v, double lo, double hi) { return std::min(std::max(v, lo), hi); }

double norm2(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace

double projected_gradient_norm(const std::vector<double>& x, const std::vector<double>& grad,
                               const std::vector<double>& lower,
                               const std::vector<double>& upper) {
  double worst = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double step = clamp_to_box(x[i] - grad[i], lower[i], upper[i]) - x[i];
    worst = std::max(worst, std::abs(step));
  }
  return worst;
}

TrustRegionResult minimize_bound_constrained(SmoothModel& model, std::vector<double>& x,
                                             const std::vector<double>& lower,
                                             const std::vector<double>& upper,
                                             const TrustRegionOptions& options) {
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) x[i] = clamp_to_box(x[i], lower[i], upper[i]);

  std::vector<double> g(n);
  std::vector<double> s(n);
  std::vector<double> hv(n);
  std::vector<double> trial(n);
  std::vector<double> r(n);
  std::vector<double> p(n);
  std::vector<double> d(n);
  std::vector<char> free_var(n);

  TrustRegionResult result;
  double f = model.eval(x, &g);
  double radius = options.initial_radius;
  bool need_grad = false;  // gradient is current for x

  // Stagnation window: if 50 iterations together achieve no meaningful
  // decrease, further grinding is pointless (typically ill-conditioned
  // curvature at active bounds keeps the projected gradient from certifying
  // optimality while f is already converged).
  double f_anchor = f;
  int anchor_iter = 0;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // Cooperative cancellation boundary: a --time-limit deadline stops the
    // solve here even when a single inner solve dominates the wall clock.
    runtime::poll_cancel();
    if (runtime::fault::hit(runtime::fault::kTronIter)) {
      throw runtime::OperationCancelled(runtime::CancelReason::kDeadline,
                                        "injected fault: tron.iter");
    }
    if (iter - anchor_iter >= 50) {
      if (f_anchor - f <= 1e-7 * (1.0 + std::abs(f))) return result;
      f_anchor = f;
      anchor_iter = iter;
    }
    result.iterations = iter + 1;
    if (need_grad) {
      f = model.eval(x, &g);
      need_grad = false;
    }
    result.projected_gradient = projected_gradient_norm(x, g, lower, upper);
    result.objective = f;
    if (result.projected_gradient <= options.tol) {
      result.converged = true;
      return result;
    }

    // ---- Generalized Cauchy point: backtrack t along P(x - t g) - x until
    // the quadratic model shows sufficient decrease within the radius.
    const double gnorm = std::max(norm2(g), 1e-30);
    double t = radius / gnorm;
    double m_cauchy = 0.0;
    bool have_cauchy = false;
    for (int bt = 0; bt < 40; ++bt) {
      double snorm2 = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        s[i] = clamp_to_box(x[i] - t * g[i], lower[i], upper[i]) - x[i];
        snorm2 += s[i] * s[i];
      }
      if (snorm2 == 0.0) break;  // fully blocked: projected gradient ~ 0
      if (std::sqrt(snorm2) <= radius * 1.0000001) {
        model.hess_vec(s, hv);
        const double gs = dot(g, s);
        const double m = gs + 0.5 * dot(s, hv);
        if (m <= 0.01 * gs) {  // gs < 0 along the projected path
          m_cauchy = m;
          have_cauchy = true;
          break;
        }
      }
      t *= 0.5;
    }
    if (!have_cauchy) {
      // The quadratic model rejects even tiny steps — shrink and retry.
      radius *= 0.25;
      if (radius < 1e-13) return result;
      continue;
    }

    // ---- Refine inside the free subspace with Steihaug truncated CG.
    // Active variables (at a bound after the Cauchy move) stay fixed.
    for (std::size_t i = 0; i < n; ++i) {
      const double xi = x[i] + s[i];
      const double span = 1e-10 * (1.0 + std::abs(xi));
      free_var[i] = static_cast<char>(xi > lower[i] + span && xi < upper[i] - span);
    }
    // r = -(g + H s) on the free set.
    model.hess_vec(s, hv);
    double r0norm = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      r[i] = free_var[i] ? -(g[i] + hv[i]) : 0.0;
      r0norm += r[i] * r[i];
    }
    r0norm = std::sqrt(r0norm);
    std::fill(d.begin(), d.end(), 0.0);
    if (r0norm > 1e-14) {
      const double cg_tol = std::min(0.1, std::sqrt(r0norm)) * r0norm;
      p = r;
      double rr = r0norm * r0norm;
      for (int cg = 0; cg < options.max_cg_iterations; ++cg) {
        runtime::poll_cancel();
        model.hess_vec(p, hv);
        double php = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          if (free_var[i]) php += p[i] * hv[i];
        }
        if (php <= 1e-16 * dot(p, p)) break;  // non-convex direction: stop at d
        const double alpha = rr / php;
        bool exceeded = false;
        double sd_norm2 = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double nd = d[i] + alpha * p[i];
          sd_norm2 += (s[i] + nd) * (s[i] + nd);
        }
        if (std::sqrt(sd_norm2) > radius) exceeded = true;
        for (std::size_t i = 0; i < n; ++i) {
          if (free_var[i]) d[i] += alpha * p[i];
        }
        if (exceeded) break;
        double rr_new = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          if (free_var[i]) {
            r[i] -= alpha * hv[i];
            rr_new += r[i] * r[i];
          }
        }
        if (std::sqrt(rr_new) <= cg_tol) break;
        const double beta = rr_new / rr;
        rr = rr_new;
        for (std::size_t i = 0; i < n; ++i) p[i] = free_var[i] ? r[i] + beta * p[i] : 0.0;
      }
    }

    // Full step = Cauchy + CG refinement, projected back into the box.
    double snorm = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      s[i] = clamp_to_box(x[i] + s[i] + d[i], lower[i], upper[i]) - x[i];
      snorm += s[i] * s[i];
    }
    snorm = std::sqrt(snorm);
    model.hess_vec(s, hv);
    const double pred = -(dot(g, s) + 0.5 * dot(s, hv));
    double m_step = -pred;
    if (m_step > m_cauchy) {
      // CG refinement made the model worse after projection — fall back to
      // the pure Cauchy step next round by shrinking the radius.
      radius *= 0.5;
      if (radius < 1e-13) return result;
      continue;
    }

    for (std::size_t i = 0; i < n; ++i) trial[i] = x[i] + s[i];
    const double f_trial = model.eval(trial, nullptr);
    const double ared = f - f_trial;
    const double ratio = pred > 0.0 ? ared / pred : -1.0;

    if (options.verbose) {
      std::printf("[tron] it=%d f=%.8g pred=%.2e ared=%.2e ratio=%.2f radius=%.2e pg=%.2e\n",
                  iter, f, pred, ared, ratio, radius, result.projected_gradient);
    }

    if (ratio >= options.accept_ratio && ared > -1e-30) {
      x = trial;
      f = f_trial;
      need_grad = true;
      if (ratio >= 0.75 && snorm >= 0.8 * radius) {
        radius = std::min(2.0 * radius, options.max_radius);
      } else if (ratio < 0.25) {
        radius = std::max(0.25 * snorm, 1e-13);
      }
      // Tiny relative decrease twice in a row would loop forever; detect it.
      if (std::abs(ared) <= 1e-15 * (1.0 + std::abs(f))) {
        f = model.eval(x, &g);
        result.projected_gradient = projected_gradient_norm(x, g, lower, upper);
        result.objective = f;
        result.converged = result.projected_gradient <= options.tol;
        return result;
      }
    } else {
      radius = std::max(0.25 * std::min(snorm, radius), 1e-14);
      if (radius < 1e-13) return result;
    }
  }
  return result;
}

}  // namespace statsize::nlp
