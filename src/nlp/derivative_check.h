// Finite-difference verification of a Problem's analytic derivatives.
//
// The sizing formulation assembles thousands of element gradients/Hessians;
// one wrong sign would silently derail the optimizer. This checker compares
// every group gradient against central differences of the group value, and
// every element Hessian against central differences of the element gradient,
// at a given point. Tests call it on randomly perturbed sizing problems.

#pragma once

#include <vector>

#include "nlp/problem.h"

namespace statsize::nlp {

struct DerivativeReport {
  double max_gradient_error = 0.0;  ///< max relative error over all groups
  double max_hessian_error = 0.0;   ///< max relative error over all elements

  bool ok(double tol = 1e-4) const {
    return max_gradient_error <= tol && max_hessian_error <= tol;
  }
};

DerivativeReport check_problem_derivatives(const Problem& problem, const std::vector<double>& x,
                                           double step = 1e-6);

}  // namespace statsize::nlp
