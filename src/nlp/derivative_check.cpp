#include "nlp/derivative_check.h"

#include <cmath>

namespace statsize::nlp {

namespace {

double check_group_gradient(const FunctionGroup& g, const std::vector<double>& x, double h) {
  std::vector<double> grad(x.size(), 0.0);
  g.accumulate_grad(x, 1.0, grad);
  std::vector<double> xp = x;
  double worst = 0.0;
  // Only variables the group actually touches can have nonzero derivatives;
  // checking those keeps the cost proportional to group size.
  std::vector<int> touched;
  for (const LinearTerm& t : g.linear) touched.push_back(t.var);
  for (const ElementRef& e : g.elements) touched.insert(touched.end(), e.vars.begin(), e.vars.end());
  for (int v : touched) {
    const std::size_t i = static_cast<std::size_t>(v);
    const double hi = h * (1.0 + std::abs(x[i]));
    xp[i] = x[i] + hi;
    const double fp = g.eval(xp);
    xp[i] = x[i] - hi;
    const double fm = g.eval(xp);
    xp[i] = x[i];
    const double fd = (fp - fm) / (2.0 * hi);
    worst = std::max(worst, std::abs(grad[i] - fd) / (1.0 + std::abs(fd)));
  }
  return worst;
}

double check_group_hessians(const FunctionGroup& g, const std::vector<double>& x, double h) {
  double worst = 0.0;
  double local[16];
  double gp[16];
  double gm[16];
  double hess[16 * 17 / 2];
  for (const ElementRef& e : g.elements) {
    const int n = e.fn->arity();
    for (int i = 0; i < n; ++i) local[i] = x[static_cast<std::size_t>(e.vars[i])];
    e.fn->eval(local, gp, hess);  // gp unused here; fills hess
    for (int i = 0; i < n; ++i) {
      const double hi = h * (1.0 + std::abs(local[i]));
      const double saved = local[i];
      local[i] = saved + hi;
      e.fn->eval(local, gp, nullptr);
      local[i] = saved - hi;
      e.fn->eval(local, gm, nullptr);
      local[i] = saved;
      for (int j = 0; j < n; ++j) {
        const double fd = (gp[j] - gm[j]) / (2.0 * hi);
        const double an = hess[packed_index(n, i, j)];
        worst = std::max(worst, std::abs(an - fd) / (1.0 + std::abs(fd)));
      }
    }
  }
  return worst;
}

}  // namespace

DerivativeReport check_problem_derivatives(const Problem& problem, const std::vector<double>& x,
                                           double step) {
  DerivativeReport report;
  report.max_gradient_error = check_group_gradient(problem.objective(), x, step);
  report.max_hessian_error = check_group_hessians(problem.objective(), x, step);
  for (int j = 0; j < problem.num_constraints(); ++j) {
    report.max_gradient_error = std::max(report.max_gradient_error,
                                         check_group_gradient(problem.constraint(j), x, step));
    report.max_hessian_error =
        std::max(report.max_hessian_error, check_group_hessians(problem.constraint(j), x, step));
  }
  return report;
}

}  // namespace statsize::nlp
