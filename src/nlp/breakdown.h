// Numerical-breakdown tripwire (DESIGN.md §9): thrown by evaluation
// boundaries (AugLagModel::eval, the reduced-space sizer's objective) when an
// objective, gradient, constraint, or penalty value comes out non-finite.
// The `site` names the offending structure — "objective element #k (vars
// S_G12, mut_G12)" or "constraint #j" — so a failed solve on a real netlist
// points at the gate instead of at "NaN somewhere".
//
// Solver layers (solve_augmented_lagrangian, core::Sizer) catch it and
// degrade to their best checkpoint with SolveStatus::kNumericalBreakdown; it
// should never escape a solve entry point.

#pragma once

#include <stdexcept>
#include <string>
#include <utility>

namespace statsize::nlp {

class EvalBreakdown : public std::runtime_error {
 public:
  explicit EvalBreakdown(std::string site)
      : std::runtime_error("non-finite evaluation at " + site), site_(std::move(site)) {}

  /// The named tripwire site (gate/element/constraint identification).
  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

}  // namespace statsize::nlp
