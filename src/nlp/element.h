// Element functions and function groups — the partially-separable problem
// structure LANCELOT is built around (Conn, Gould & Toint, 1992), which the
// paper exploits: every constraint of the sizing formulation (eq. 17) touches
// only a handful of variables, and its nonlinearity is confined to small
// "elements" (a Clark max over four variables, a product S*mu over two, a
// square over one). Carrying analytic gradients and Hessians per element is
// exactly the "first and second order derivative information" the paper says
// LANCELOT needs to deal with highly nonlinear problems efficiently.

#pragma once

#include <memory>
#include <vector>

namespace statsize::nlp {

/// Hard upper bound on ElementFunction::arity(). Evaluation paths stage
/// element-local values/gradients in fixed stack buffers of this size
/// (FunctionGroup::eval / accumulate_grad, AugLagModel::eval / hess_vec), so
/// a larger element would be a stack-buffer overflow. Problem::validate(),
/// Problem::own() and the AugLagModel constructor all reject violations with
/// a named diagnostic before any such buffer is touched.
inline constexpr int kMaxElementArity = 16;

/// A smooth function of a small number of "local" variables with analytic
/// gradient and (packed upper-triangle, row-major) Hessian. Implementations
/// must be stateless with respect to eval (callable concurrently).
class ElementFunction {
 public:
  virtual ~ElementFunction() = default;

  virtual int arity() const = 0;

  /// Evaluates at the local point `x` (arity() entries). If `grad` is
  /// non-null it receives arity() entries; if `hess` is non-null it receives
  /// arity()*(arity()+1)/2 packed entries. Returns the value.
  virtual double eval(const double* x, double* grad, double* hess) const = 0;
};

/// Packed-index helper shared with autodiff::Dual2 layout.
constexpr int packed_index(int n, int i, int j) {
  if (i > j) {
    const int t = i;
    i = j;
    j = t;
  }
  return i * n - i * (i - 1) / 2 + (j - i);
}

struct LinearTerm {
  int var = 0;
  double coef = 0.0;
};

/// Reference to an element within a group: which global variables feed its
/// local arguments, and a scalar weight.
struct ElementRef {
  const ElementFunction* fn = nullptr;
  std::vector<int> vars;  ///< size == fn->arity()
  double weight = 1.0;
};

/// g(x) = constant + sum_k coef_k x_{i_k} + sum_e weight_e f_e(x_e).
///
/// Used both as the objective and as equality constraints g(x) = 0. Keeping
/// the linear part explicit follows the paper's advice ("we find it
/// advantageous to have as many linear terms ... as possible in each
/// constraint") — linear terms contribute nothing to the Hessian.
struct FunctionGroup {
  double constant = 0.0;
  std::vector<LinearTerm> linear;
  std::vector<ElementRef> elements;

  double eval(const std::vector<double>& x) const;

  /// grad += scale * dg/dx (sparse accumulation into a dense vector).
  void accumulate_grad(const std::vector<double>& x, double scale,
                       std::vector<double>& grad) const;
};

}  // namespace statsize::nlp
