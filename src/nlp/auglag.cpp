#include "nlp/auglag.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

#include "nlp/breakdown.h"
#include "nlp/tron.h"
#include "runtime/fault.h"
#include "runtime/runtime.h"

namespace statsize::nlp {

namespace {

namespace fault = runtime::fault;

/// "constraint #3 (vars varT_n7, muT_n7, ...)" — names the first few variables
/// a non-finite group touches so the diagnostic points at a gate, not at
/// "NaN somewhere".
std::string describe_group(const Problem& p, const FunctionGroup& g, const std::string& what) {
  std::string site = what;
  std::vector<int> vars;
  for (const LinearTerm& t : g.linear) vars.push_back(t.var);
  for (const ElementRef& e : g.elements) vars.insert(vars.end(), e.vars.begin(), e.vars.end());
  if (!vars.empty()) {
    site += " (vars ";
    const std::size_t shown = vars.size() < 4 ? vars.size() : 4;
    for (std::size_t i = 0; i < shown; ++i) {
      if (i) site += ", ";
      site += p.var_name(vars[i]);
    }
    if (vars.size() > shown) site += ", ...";
    site += ")";
  }
  return site;
}

}  // namespace

std::string SolveResult::status_string() const {
  switch (status) {
    case SolveStatus::kConverged: return "converged";
    case SolveStatus::kAcceptable: return "acceptable";
    case SolveStatus::kMaxIterations: return "max-iterations";
    case SolveStatus::kStalled: return "stalled";
    case SolveStatus::kTimeLimit: return "time-limit";
    case SolveStatus::kNumericalBreakdown: return "numerical-breakdown";
  }
  return "unknown";
}

AugLagModel::AugLagModel(const Problem& problem, std::vector<double> multipliers, double rho)
    : problem_(&problem), multipliers_(std::move(multipliers)), rho_(rho) {
  if (static_cast<int>(multipliers_.size()) != problem.num_constraints()) {
    throw std::invalid_argument("multiplier count != constraint count");
  }
  // Preallocate snapshot storage: one slot per element instance, Hessians
  // packed contiguously. Sparse constraint-gradient index structure is
  // static; only values are refreshed per evaluation.
  std::size_t hess_total = 0;
  auto count_group = [&hess_total, this](const FunctionGroup& g) {
    for (const ElementRef& e : g.elements) {
      const int n = e.fn->arity();
      if (n > kMaxElementArity) {
        throw std::invalid_argument("AugLagModel: element arity " + std::to_string(n) +
                                    " exceeds the supported maximum of " +
                                    std::to_string(kMaxElementArity));
      }
      snapshots_.push_back({e.fn, e.vars.data(), e.weight, nullptr});
      hess_total += static_cast<std::size_t>(n * (n + 1) / 2);
    }
  };
  count_group(problem.objective());
  snap_offset_.reserve(static_cast<std::size_t>(problem.num_constraints()));
  for (int j = 0; j < problem.num_constraints(); ++j) {
    snap_offset_.push_back(snapshots_.size());
    count_group(problem.constraint(j));
  }
  hess_storage_.resize(hess_total);
  std::size_t offset = 0;
  for (ElementSnapshot& s : snapshots_) {
    const int n = s.fn->arity();
    s.hess = hess_storage_.data() + offset;
    offset += static_cast<std::size_t>(n * (n + 1) / 2);
  }

  c_.resize(static_cast<std::size_t>(problem.num_constraints()));
  cgrad_idx_.resize(c_.size());
  cgrad_val_.resize(c_.size());
  for (int j = 0; j < problem.num_constraints(); ++j) {
    const FunctionGroup& g = problem.constraint(j);
    auto& idx = cgrad_idx_[static_cast<std::size_t>(j)];
    for (const LinearTerm& t : g.linear) idx.push_back(t.var);
    for (const ElementRef& e : g.elements) idx.insert(idx.end(), e.vars.begin(), e.vars.end());
    cgrad_val_[static_cast<std::size_t>(j)].resize(idx.size());
  }

  // Scatter plan for hess_vec: items in the exact order the serial loops
  // write hv (snapshots first, then the Gauss-Newton constraint terms), so
  // the conflict-free target-major fold reproduces the serial accumulation.
  snap_slot_.reserve(snapshots_.size());
  for (const ElementSnapshot& s : snapshots_) {
    snap_slot_.push_back(hv_plan_.add_item(s.vars, static_cast<std::size_t>(s.fn->arity())));
  }
  cons_slot_.reserve(c_.size());
  for (const auto& idx : cgrad_idx_) {
    cons_slot_.push_back(hv_plan_.add_item(idx.data(), idx.size()));
  }
  hv_plan_.freeze(static_cast<std::size_t>(problem.num_vars()));
  hv_slots_.resize(hv_plan_.num_slots());
}

double AugLagModel::eval(const std::vector<double>& x, std::vector<double>* grad) {
  const Problem& p = *problem_;
  const std::size_t m = static_cast<std::size_t>(p.num_constraints());
  // Both paths below follow the runtime's determinism scheme: constraints
  // are *evaluated* in parallel into disjoint per-constraint storage, then
  // *accumulated* serially in constraint order — the identical arithmetic
  // and order as a plain serial loop, at any thread count.
  if (grad == nullptr) {
    // Value-only probe: cheap pass, snapshot untouched.
    double psi = p.eval_objective(x);
    if (!std::isfinite(psi)) {
      throw EvalBreakdown(describe_group(p, p.objective(), "objective (value probe)"));
    }
    probe_c_.resize(m);
    runtime::parallel_for(m, 8, [&](std::size_t jb, std::size_t je) {
      for (std::size_t j = jb; j < je; ++j) probe_c_[j] = p.constraint(static_cast<int>(j)).eval(x);
    });
    for (std::size_t j = 0; j < m; ++j) {
      const double cj = probe_c_[j];
      if (!std::isfinite(cj)) {
        throw EvalBreakdown(describe_group(p, p.constraint(static_cast<int>(j)),
                                           "constraint #" + std::to_string(j) + " (value probe)"));
      }
      psi += -multipliers_[j] * cj + 0.5 * rho_ * cj * cj;
    }
    return psi;
  }

  grad->assign(static_cast<std::size_t>(p.num_vars()), 0.0);
  double local[kMaxElementArity];
  double eg[kMaxElementArity];
  std::size_t snap = 0;

  // Objective: value + gradient + Hessian snapshot.
  double f = p.objective().constant;
  for (const LinearTerm& t : p.objective().linear) {
    f += t.coef * x[static_cast<std::size_t>(t.var)];
    (*grad)[static_cast<std::size_t>(t.var)] += t.coef;
  }
  for (const ElementRef& e : p.objective().elements) {
    const int n = e.fn->arity();
    for (int i = 0; i < n; ++i) local[i] = x[static_cast<std::size_t>(e.vars[i])];
    f += e.weight * e.fn->eval(local, eg, snapshots_[snap].hess);
    for (int i = 0; i < n; ++i) (*grad)[static_cast<std::size_t>(e.vars[i])] += e.weight * eg[i];
    snapshots_[snap].weight = e.weight;
    ++snap;
  }
  if (fault::hit(fault::kAuglagObjective)) f = std::numeric_limits<double>::quiet_NaN();
  if (!std::isfinite(f)) {
    throw EvalBreakdown(describe_group(p, p.objective(), "objective"));
  }

  // Phase 1 — parallel over constraints: each j owns c_[j], cgrad_val_[j]
  // and its snapshot slice [snap_offset_[j], ...), so there are no shared
  // writes. Element Hessians of constraint j enter H_Psi with weight
  // y_j = rho c_j - lambda_j.
  runtime::parallel_for(m, 4, [&](std::size_t jb, std::size_t je) {
    double lcl[kMaxElementArity];
    double leg[kMaxElementArity];
    for (std::size_t j = jb; j < je; ++j) {
      const FunctionGroup& g = p.constraint(static_cast<int>(j));
      auto& vals = cgrad_val_[j];
      std::size_t vi = 0;
      double cj = g.constant;
      for (const LinearTerm& t : g.linear) {
        cj += t.coef * x[static_cast<std::size_t>(t.var)];
        vals[vi++] = t.coef;
      }
      std::size_t sj = snap_offset_[j];
      for (const ElementRef& e : g.elements) {
        const int n = e.fn->arity();
        for (int i = 0; i < n; ++i) lcl[i] = x[static_cast<std::size_t>(e.vars[i])];
        cj += e.weight * e.fn->eval(lcl, leg, snapshots_[sj].hess);
        for (int i = 0; i < n; ++i) vals[vi++] = e.weight * leg[i];
        ++sj;
      }
      c_[j] = cj;
      const double y = rho_ * cj - multipliers_[j];
      sj = snap_offset_[j];
      for (const ElementRef& e : g.elements) {
        snapshots_[sj].weight = y * e.weight;
        ++sj;
      }
    }
  });

  if (fault::hit(fault::kAuglagConstraint) && m > 0) {
    c_[m / 2] = std::numeric_limits<double>::quiet_NaN();
  }

  // Phase 2 — ordered accumulation: grad Psi += y_j * grad c_j and the psi
  // fold run in ascending j, matching the serial code bit-for-bit. The
  // serial scan doubles as the constraint tripwire: a non-finite c_j is
  // reported in ascending-j order regardless of which thread evaluated it.
  double psi = f;
  for (std::size_t j = 0; j < m; ++j) {
    const double cj = c_[j];
    if (!std::isfinite(cj)) {
      throw EvalBreakdown(describe_group(p, p.constraint(static_cast<int>(j)),
                                         "constraint #" + std::to_string(j)));
    }
    const double y = rho_ * cj - multipliers_[j];
    const auto& idx = cgrad_idx_[j];
    const auto& vals = cgrad_val_[j];
    for (std::size_t k = 0; k < idx.size(); ++k) {
      (*grad)[static_cast<std::size_t>(idx[k])] += y * vals[k];
    }
    psi += -multipliers_[j] * cj + 0.5 * rho_ * cj * cj;
  }
  if (!std::isfinite(psi)) {
    throw EvalBreakdown("penalty Psi (rho=" + std::to_string(rho_) + ")");
  }
  for (std::size_t i = 0; i < grad->size(); ++i) {
    if (!std::isfinite((*grad)[i])) {
      throw EvalBreakdown("gradient entry " + p.var_name(static_cast<int>(i)));
    }
  }
  return psi;
}

namespace {

/// Below this many work items (element snapshots + constraints) the two-phase
/// scatter costs more than the serial loop it replaces.
constexpr std::size_t kParallelHessVecItems = 512;

/// out = weight * (H vl) with H the packed symmetric element Hessian.
inline void packed_symmetric_matvec(const double* hess, int n, double weight, const double* vl,
                                    double* out) {
  for (int i = 0; i < n; ++i) out[i] = 0.0;
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      const double h = hess[packed_index(n, i, j)];
      out[i] += h * vl[j];
      if (j != i) out[j] += h * vl[i];
    }
  }
  for (int i = 0; i < n; ++i) out[i] *= weight;
}

}  // namespace

void AugLagModel::hess_vec(const std::vector<double>& v, std::vector<double>& hv) const {
  hv.assign(v.size(), 0.0);
  const std::size_t ns = snapshots_.size();
  const std::size_t m = c_.size();

  // Granularity gate: the static floor (two-phase scatter bookkeeping) and
  // the runtime's cost-model cutoff (dispatch vs item work, auto-resolved
  // per thread count) must both clear before the pool can pay. Both paths
  // are bit-identical, so the gate only moves wall-clock time.
  const std::size_t parallel_floor =
      std::max(kParallelHessVecItems, runtime::level_serial_cutoff());
  if (runtime::threads() > 1 && ns + m >= parallel_floor) {
    // Phase 1 — parallel over items: each snapshot / constraint computes its
    // per-target contributions into its own plan-slot slice (disjoint
    // writes). The per-item arithmetic is identical to the serial loops
    // below; zero-weight items fill zeros where the serial code skips, which
    // leaves every accumulated double equal (x + 0.0 == x).
    runtime::parallel_for(ns + m, 64, [&](std::size_t b, std::size_t e) {
      double vl[kMaxElementArity];
      for (std::size_t w = b; w < e; ++w) {
        if (w < ns) {
          const ElementSnapshot& s = snapshots_[w];
          const int n = s.fn->arity();
          double* out = hv_slots_.data() + snap_slot_[w];
          if (s.weight == 0.0) {
            for (int i = 0; i < n; ++i) out[i] = 0.0;
            continue;
          }
          for (int i = 0; i < n; ++i) vl[i] = v[static_cast<std::size_t>(s.vars[i])];
          packed_symmetric_matvec(s.hess, n, s.weight, vl, out);
        } else {
          const std::size_t j = w - ns;
          const auto& idx = cgrad_idx_[j];
          const auto& val = cgrad_val_[j];
          double dot = 0.0;
          for (std::size_t k = 0; k < idx.size(); ++k) {
            dot += val[k] * v[static_cast<std::size_t>(idx[k])];
          }
          const double scale = rho_ * dot;
          double* out = hv_slots_.data() + cons_slot_[j];
          for (std::size_t k = 0; k < idx.size(); ++k) out[k] = scale * val[k];
        }
      }
    });
    // Phase 2 — conflict-free fold: every variable gathers its slots in
    // ascending slot order (= the serial loops' write order), parallel over
    // variables. Equal doubles at any thread count.
    hv_plan_.fold_add(hv_slots_.data(), hv.data());
    return;
  }

  double vl[kMaxElementArity];
  double out[kMaxElementArity];
  for (const ElementSnapshot& s : snapshots_) {
    if (s.weight == 0.0) continue;
    const int n = s.fn->arity();
    for (int i = 0; i < n; ++i) vl[i] = v[static_cast<std::size_t>(s.vars[i])];
    packed_symmetric_matvec(s.hess, n, s.weight, vl, out);
    for (int i = 0; i < n; ++i) hv[static_cast<std::size_t>(s.vars[i])] += out[i];
  }
  // Gauss-Newton term: rho * sum_j (grad c_j . v) grad c_j.
  for (std::size_t j = 0; j < m; ++j) {
    const auto& idx = cgrad_idx_[j];
    const auto& val = cgrad_val_[j];
    double dot = 0.0;
    for (std::size_t k = 0; k < idx.size(); ++k) dot += val[k] * v[static_cast<std::size_t>(idx[k])];
    const double scale = rho_ * dot;
    if (scale == 0.0) continue;
    for (std::size_t k = 0; k < idx.size(); ++k) {
      hv[static_cast<std::size_t>(idx[k])] += scale * val[k];
    }
  }
}

namespace {

/// Best-iterate checkpoint (DESIGN.md §9): the lexicographically best outer
/// iterate seen so far — least violation beyond the feasibility tolerance
/// first, then lowest objective. Restored only on the kTimeLimit /
/// kNumericalBreakdown paths, so every other status returns exactly what the
/// pre-resilience solver returned.
struct Checkpoint {
  std::vector<double> x;
  std::vector<double> multipliers;
  double objective = std::numeric_limits<double>::infinity();
  double cnorm = std::numeric_limits<double>::infinity();
  double projected_gradient = std::numeric_limits<double>::infinity();
  int outer = -1;
  bool valid = false;

  bool improves(double new_cnorm, double new_objective, double feas_tol) const {
    if (!valid) return true;
    const double v_new = std::max(0.0, new_cnorm - feas_tol);
    const double v_old = std::max(0.0, cnorm - feas_tol);
    if (v_new != v_old) return v_new < v_old;
    return new_objective < objective;
  }
};

}  // namespace

SolveResult solve_augmented_lagrangian(const Problem& problem, const AugLagOptions& options) {
  return solve_augmented_lagrangian(problem, options, WarmStart{});
}

SolveResult solve_augmented_lagrangian(const Problem& problem, const AugLagOptions& options,
                                       const WarmStart& warm) {
  problem.validate();
  const int m = problem.num_constraints();
  if (!warm.x.empty() && static_cast<int>(warm.x.size()) != problem.num_vars()) {
    throw std::invalid_argument("solve_augmented_lagrangian: warm start x has " +
                                std::to_string(warm.x.size()) + " entries but the problem has " +
                                std::to_string(problem.num_vars()) + " variables");
  }
  if (!warm.multipliers.empty() && static_cast<int>(warm.multipliers.size()) != m) {
    throw std::invalid_argument("solve_augmented_lagrangian: warm start carries " +
                                std::to_string(warm.multipliers.size()) +
                                " multipliers but the problem has " + std::to_string(m) +
                                " constraints");
  }
  if (!std::isfinite(warm.rho)) {
    throw std::invalid_argument("solve_augmented_lagrangian: warm start rho is not finite");
  }

  SolveResult result;
  result.x = warm.x.empty() ? problem.start() : warm.x;
  for (int i = 0; i < problem.num_vars(); ++i) {
    result.x[static_cast<std::size_t>(i)] =
        std::clamp(result.x[static_cast<std::size_t>(i)], problem.lower()[static_cast<std::size_t>(i)],
                   problem.upper()[static_cast<std::size_t>(i)]);
  }
  if (warm.multipliers.empty()) {
    result.multipliers.assign(static_cast<std::size_t>(m), 0.0);
  } else {
    result.multipliers = warm.multipliers;
  }
  const std::vector<double> x_start = result.x;

  double rho = warm.rho > 0.0 ? std::min(warm.rho, options.max_rho) : options.initial_rho;
  double eta = 1.0 / std::pow(rho, 0.1);
  double omega = 1.0 / rho;

  AugLagModel model(problem, result.multipliers, rho);
  Checkpoint ckpt;

  // Graceful degradation: map a deadline/cancel or a numerical tripwire to a
  // result built from the best checkpoint instead of letting the exception
  // escape the solve entry point.
  auto degrade = [&](SolveStatus status, const std::string& site) {
    result.status = status;
    result.breakdown_site = site;
    result.from_checkpoint = true;
    result.checkpoint_outer = ckpt.outer;
    if (ckpt.valid) {
      result.x = ckpt.x;
      result.multipliers = ckpt.multipliers;
      result.objective = ckpt.objective;
      result.constraint_violation = ckpt.cnorm;
      result.projected_gradient = ckpt.projected_gradient;
    } else {
      // Nothing completed an outer iteration: fall back to the clamped start
      // point. Scoring it may itself trip the deadline or a tripwire — in
      // that case keep the zeros rather than propagate.
      result.x = x_start;
      result.multipliers.assign(static_cast<std::size_t>(m), 0.0);
      try {
        result.objective = problem.eval_objective(result.x);
        result.constraint_violation = problem.max_constraint_violation(result.x);
      } catch (...) {  // NOLINT(bugprone-empty-catch)
      }
    }
    result.final_rho = rho;
    return result;
  };

  double prev_objective = std::numeric_limits<double>::infinity();
  int stagnant_outers = 0;
  try {
  for (int outer = 0; outer < options.max_outer_iterations; ++outer) {
    runtime::poll_cancel();
    if (fault::hit(fault::kAuglagOuter)) {
      throw runtime::OperationCancelled(runtime::CancelReason::kDeadline,
                                        "injected fault: auglag.outer");
    }
    result.outer_iterations = outer + 1;
    model.set_rho(rho);
    model.set_multipliers(result.multipliers);

    TrustRegionOptions tr;
    tr.tol = std::max(omega, 0.1 * options.optimality_tol);
    tr.max_iterations = options.max_inner_iterations;
    const TrustRegionResult inner =
        minimize_bound_constrained(model, result.x, problem.lower(), problem.upper(), tr);
    result.inner_iterations += inner.iterations;
    result.projected_gradient = inner.projected_gradient;

    const double cnorm = problem.max_constraint_violation(result.x);
    result.constraint_violation = cnorm;
    result.objective = problem.eval_objective(result.x);
    result.final_rho = rho;
    if (options.verbose) {
      std::printf("[auglag] outer=%d rho=%.1e f=%.6g ||c||=%.3e pg=%.3e inner_it=%d\n", outer,
                  rho, result.objective, cnorm, inner.projected_gradient, inner.iterations);
    }
    if (options.on_outer) options.on_outer(outer, result.x, cnorm, inner.projected_gradient);

    if (std::isfinite(result.objective) && std::isfinite(cnorm) &&
        ckpt.improves(cnorm, result.objective, options.feasibility_tol)) {
      ckpt.x = result.x;
      ckpt.multipliers = result.multipliers;
      ckpt.objective = result.objective;
      ckpt.cnorm = cnorm;
      ckpt.projected_gradient = inner.projected_gradient;
      ckpt.outer = outer;
      ckpt.valid = true;
    }

    if (cnorm <= std::max(eta, options.feasibility_tol)) {
      if (cnorm <= options.feasibility_tol &&
          inner.projected_gradient <= options.optimality_tol) {
        result.status = SolveStatus::kConverged;
        return result;
      }
      // Feasible objective stagnation: the iterate sits at the optimum but the
      // inner solver cannot certify stationarity (ill-conditioned curvature at
      // active bounds). Burn no more budget — report "acceptable".
      if (cnorm <= options.feasibility_tol &&
          std::abs(result.objective - prev_objective) <=
              1e-6 * (1.0 + std::abs(result.objective))) {
        if (++stagnant_outers >= 3) {
          result.status = SolveStatus::kAcceptable;
          return result;
        }
      } else {
        stagnant_outers = 0;
      }
      prev_objective = result.objective;
      // First-order multiplier update; tighten both tolerances. (Re-evaluate
      // the constraints at the final iterate: the model's cached values stem
      // from the last gradient evaluation, which can predate a final
      // trial-point acceptance.)
      std::vector<double> c;
      problem.eval_constraints(result.x, c);
      for (int j = 0; j < m; ++j) {
        result.multipliers[static_cast<std::size_t>(j)] -= rho * c[static_cast<std::size_t>(j)];
      }
      eta = std::max(eta / std::pow(rho, 0.9), 0.1 * options.feasibility_tol);
      omega = std::max(omega / rho, 0.1 * options.optimality_tol);
    } else {
      if (rho >= options.max_rho) {
        result.status = SolveStatus::kStalled;
        return result;
      }
      rho = std::min(rho * options.rho_increase, options.max_rho);
      eta = 1.0 / std::pow(rho, 0.1);
      omega = std::max(1.0 / rho, 0.1 * options.optimality_tol);
    }
  }
  } catch (const runtime::OperationCancelled&) {
    return degrade(SolveStatus::kTimeLimit, "");
  } catch (const EvalBreakdown& e) {
    return degrade(SolveStatus::kNumericalBreakdown, e.site());
  }
  result.status = SolveStatus::kMaxIterations;
  return result;
}

}  // namespace statsize::nlp
