// Bound-constrained trust-region Newton-CG minimizer (TRON-style: projected
// Cauchy point, then truncated conjugate gradients on the free variables).
// This is the subproblem solver LANCELOT-class augmented Lagrangian methods
// rely on; it consumes analytic Hessian-vector products through SmoothModel.

#pragma once

#include <vector>

#include "nlp/model.h"

namespace statsize::nlp {

struct TrustRegionOptions {
  double tol = 1e-6;            ///< projected-gradient infinity-norm target
  int max_iterations = 200;
  int max_cg_iterations = 100;  ///< per trust-region step
  double initial_radius = 1.0;
  double max_radius = 1e8;
  double accept_ratio = 1e-4;   ///< minimum actual/predicted reduction to move
  bool verbose = false;
};

struct TrustRegionResult {
  double objective = 0.0;
  double projected_gradient = 0.0;
  int iterations = 0;
  bool converged = false;  ///< projected gradient met tol (vs budget/stall)
};

/// Minimizes `model` over the box [lower, upper], starting and ending in `x`.
TrustRegionResult minimize_bound_constrained(SmoothModel& model, std::vector<double>& x,
                                             const std::vector<double>& lower,
                                             const std::vector<double>& upper,
                                             const TrustRegionOptions& options = {});

/// ||P(x - g) - x||_inf — the standard bound-constrained stationarity measure.
double projected_gradient_norm(const std::vector<double>& x, const std::vector<double>& grad,
                               const std::vector<double>& lower, const std::vector<double>& upper);

}  // namespace statsize::nlp
