// Minimal JSON writer — enough to export timing/sizing reports for scripts
// and dashboards without pulling in a dependency. Write-only by design (the
// toolkit never needs to parse JSON), with correct string escaping and
// round-trippable number formatting.

#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace statsize::util {

/// Streaming writer with explicit begin/end pairs and automatic commas:
///
///   JsonWriter w(out);
///   w.begin_object();
///   w.key("delay").begin_object();
///   w.key("mu").value(7.25);
///   w.key("sigma").value(0.81);
///   w.end_object();
///   w.key("gates").begin_array();
///   w.value("A"); w.value("B");
///   w.end_array();
///   w.end_object();
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out, int indent = 2) : out_(&out), indent_(indent) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits the key of the next member (only valid directly inside an object).
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double d);
  JsonWriter& value(int i);
  JsonWriter& value(long i);
  JsonWriter& value(bool b);
  JsonWriter& null();

  /// Escapes `s` per RFC 8259 (quotes, backslash, control characters).
  static std::string escape(std::string_view s);

 private:
  void comma_and_newline();
  void pad();

  std::ostream* out_;
  int indent_;
  std::vector<char> stack_;   ///< 'o' or 'a'
  std::vector<bool> first_;   ///< first element at each level
  bool after_key_ = false;
};

}  // namespace statsize::util
