// Minimal JSON writer and parser — enough to export timing/sizing reports
// and to accept `statsize serve` request bodies without pulling in a
// dependency. The writer streams with correct string escaping and
// round-trippable (%.17g) number formatting; the parser is a strict
// recursive-descent RFC 8259 reader that reports 1-based line/column loci
// and rejects trailing garbage after the top-level value, so a malformed
// HTTP body turns into a useful 400, never a silently-truncated accept.

#pragma once

#include <cstdint>
#include <ostream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace statsize::util {

/// Streaming writer with explicit begin/end pairs and automatic commas:
///
///   JsonWriter w(out);
///   w.begin_object();
///   w.key("delay").begin_object();
///   w.key("mu").value(7.25);
///   w.key("sigma").value(0.81);
///   w.end_object();
///   w.key("gates").begin_array();
///   w.value("A"); w.value("B");
///   w.end_array();
///   w.end_object();
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out, int indent = 2) : out_(&out), indent_(indent) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits the key of the next member (only valid directly inside an object).
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double d);
  JsonWriter& value(int i);
  JsonWriter& value(long i);
  JsonWriter& value(bool b);
  JsonWriter& null();

  /// Escapes `s` per RFC 8259 (quotes, backslash, control characters).
  static std::string escape(std::string_view s);

 private:
  void comma_and_newline();
  void pad();

  std::ostream* out_;
  int indent_;
  std::vector<char> stack_;   ///< 'o' or 'a'
  std::vector<bool> first_;   ///< first element at each level
  bool after_key_ = false;
};

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Thrown by parse_json on malformed input. `line`/`column` are 1-based and
/// point at the offending character, so servers can answer 400 with a locus
/// a human can act on ("expected ',' or '}' at line 3 column 17").
class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(const std::string& message, int line, int column)
      : std::runtime_error(message + " at line " + std::to_string(line) + " column " +
                           std::to_string(column)),
        line_(line),
        column_(column) {}

  int line() const { return line_; }
  int column() const { return column_; }

 private:
  int line_;
  int column_;
};

/// An immutable parsed JSON document. Objects preserve member order (and use
/// ordered linear lookup — request bodies are small); numbers are doubles,
/// matching what JsonWriter emits. Type-mismatching accessors throw
/// std::runtime_error naming the expected and actual type.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  ///< null

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const;
  double as_number() const;
  /// as_number() checked to be integral and in std::int64_t range.
  std::int64_t as_int() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;                            ///< array
  const std::vector<std::pair<std::string, JsonValue>>& members() const;  ///< object

  /// Object member lookup (first match); nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  // Defaulted object-member accessors for optional request fields. A present
  // member of the wrong type still throws — a typo'd value should 400, not
  // silently fall back.
  double number_or(std::string_view key, double fallback) const;
  std::int64_t int_or(std::string_view key, std::int64_t fallback) const;
  std::string string_or(std::string_view key, std::string fallback) const;
  bool bool_or(std::string_view key, bool fallback) const;

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses exactly one JSON value spanning all of `text` (leading/trailing
/// whitespace allowed, anything else after the value is an error — `{}{}`
/// must not parse as `{}`). Throws JsonParseError with a 1-based locus.
JsonValue parse_json(std::string_view text);

}  // namespace statsize::util
