#include "util/json.h"

#include <cmath>
#include <cstdio>

namespace statsize::util {

void JsonWriter::pad() {
  for (std::size_t i = 0; i < stack_.size() * static_cast<std::size_t>(indent_); ++i) {
    *out_ << ' ';
  }
}

void JsonWriter::comma_and_newline() {
  if (after_key_) {
    after_key_ = false;
    return;  // value follows "key": inline
  }
  if (!stack_.empty()) {
    if (!first_.back()) *out_ << ',';
    first_.back() = false;
    *out_ << '\n';
    pad();
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma_and_newline();
  *out_ << '{';
  stack_.push_back('o');
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  const bool empty = first_.back();
  stack_.pop_back();
  first_.pop_back();
  if (!empty) {
    *out_ << '\n';
    pad();
  }
  *out_ << '}';
  if (stack_.empty()) *out_ << '\n';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_and_newline();
  *out_ << '[';
  stack_.push_back('a');
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  const bool empty = first_.back();
  stack_.pop_back();
  first_.pop_back();
  if (!empty) {
    *out_ << '\n';
    pad();
  }
  *out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  comma_and_newline();
  *out_ << '"' << escape(name) << "\": ";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  comma_and_newline();
  *out_ << '"' << escape(s) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  comma_and_newline();
  if (std::isnan(d) || std::isinf(d)) {
    *out_ << "null";  // JSON has no NaN/Inf
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  *out_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(int i) {
  comma_and_newline();
  *out_ << i;
  return *this;
}

JsonWriter& JsonWriter::value(long i) {
  comma_and_newline();
  *out_ << i;
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  comma_and_newline();
  *out_ << (b ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma_and_newline();
  *out_ << "null";
  return *this;
}

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace statsize::util
