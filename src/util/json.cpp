#include "util/json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace statsize::util {

void JsonWriter::pad() {
  for (std::size_t i = 0; i < stack_.size() * static_cast<std::size_t>(indent_); ++i) {
    *out_ << ' ';
  }
}

void JsonWriter::comma_and_newline() {
  if (after_key_) {
    after_key_ = false;
    return;  // value follows "key": inline
  }
  if (!stack_.empty()) {
    if (!first_.back()) *out_ << ',';
    first_.back() = false;
    *out_ << '\n';
    pad();
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma_and_newline();
  *out_ << '{';
  stack_.push_back('o');
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  const bool empty = first_.back();
  stack_.pop_back();
  first_.pop_back();
  if (!empty) {
    *out_ << '\n';
    pad();
  }
  *out_ << '}';
  if (stack_.empty()) *out_ << '\n';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_and_newline();
  *out_ << '[';
  stack_.push_back('a');
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  const bool empty = first_.back();
  stack_.pop_back();
  first_.pop_back();
  if (!empty) {
    *out_ << '\n';
    pad();
  }
  *out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  comma_and_newline();
  *out_ << '"' << escape(name) << "\": ";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  comma_and_newline();
  *out_ << '"' << escape(s) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  comma_and_newline();
  if (std::isnan(d) || std::isinf(d)) {
    *out_ << "null";  // JSON has no NaN/Inf
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  *out_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(int i) {
  comma_and_newline();
  *out_ << i;
  return *this;
}

JsonWriter& JsonWriter::value(long i) {
  comma_and_newline();
  *out_ << i;
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  comma_and_newline();
  *out_ << (b ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma_and_newline();
  *out_ << "null";
  return *this;
}

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// JsonValue accessors
// ---------------------------------------------------------------------------

namespace {

const char* type_name(JsonValue::Type t) {
  switch (t) {
    case JsonValue::Type::kNull: return "null";
    case JsonValue::Type::kBool: return "bool";
    case JsonValue::Type::kNumber: return "number";
    case JsonValue::Type::kString: return "string";
    case JsonValue::Type::kArray: return "array";
    case JsonValue::Type::kObject: return "object";
  }
  return "?";
}

[[noreturn]] void type_error(const char* wanted, JsonValue::Type got) {
  throw std::runtime_error(std::string("JSON value is ") + type_name(got) + ", expected " +
                           wanted);
}

}  // namespace

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return number_;
}

std::int64_t JsonValue::as_int() const {
  const double d = as_number();
  if (std::nearbyint(d) != d || d < -9.2233720368547758e18 || d > 9.2233720368547758e18) {
    throw std::runtime_error("JSON number is not an integer in range: " + std::to_string(d));
  }
  return static_cast<std::int64_t>(d);
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return v == nullptr ? fallback : v->as_number();
}

std::int64_t JsonValue::int_or(std::string_view key, std::int64_t fallback) const {
  const JsonValue* v = find(key);
  return v == nullptr ? fallback : v->as_int();
}

std::string JsonValue::string_or(std::string_view key, std::string fallback) const {
  const JsonValue* v = find(key);
  return v == nullptr ? std::move(fallback) : v->as_string();
}

bool JsonValue::bool_or(std::string_view key, bool fallback) const {
  const JsonValue* v = find(key);
  return v == nullptr ? fallback : v->as_bool();
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Strict recursive-descent reader over the whole input. Tracks a 1-based
/// (line, column) cursor for error loci; depth-limits nesting so adversarial
/// bodies cannot overflow the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    skip_whitespace();
    JsonValue v = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) {
      fail("trailing content after top-level value");
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 128;

  [[noreturn]] void fail(const std::string& message) const {
    throw JsonParseError(message, line_, column_);
  }

  bool at_end() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  char take() {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void expect(char want, const char* context) {
    if (at_end()) fail(std::string("unexpected end of input, expected '") + want + "' " + context);
    if (peek() != want) {
      fail(std::string("expected '") + want + "' " + context + ", got '" + peek() + "'");
    }
    take();
  }

  void skip_whitespace() {
    while (!at_end()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      take();
    }
  }

  void expect_literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (at_end() || peek() != *p) fail(std::string("invalid literal, expected '") + word + "'");
      take();
    }
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting deeper than 128 levels");
    if (at_end()) fail("unexpected end of input, expected a value");
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': {
        JsonValue v;
        v.type_ = JsonValue::Type::kString;
        v.string_ = parse_string();
        return v;
      }
      case 't': {
        expect_literal("true");
        JsonValue v;
        v.type_ = JsonValue::Type::kBool;
        v.bool_ = true;
        return v;
      }
      case 'f': {
        expect_literal("false");
        JsonValue v;
        v.type_ = JsonValue::Type::kBool;
        v.bool_ = false;
        return v;
      }
      case 'n': {
        expect_literal("null");
        return JsonValue();
      }
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        fail(std::string("unexpected character '") + c + "'");
    }
  }

  JsonValue parse_object(int depth) {
    expect('{', "to open object");
    JsonValue v;
    v.type_ = JsonValue::Type::kObject;
    skip_whitespace();
    if (!at_end() && peek() == '}') {
      take();
      return v;
    }
    while (true) {
      skip_whitespace();
      if (at_end() || peek() != '"') fail("expected a string object key");
      std::string key = parse_string();
      skip_whitespace();
      expect(':', "after object key");
      skip_whitespace();
      v.members_.emplace_back(std::move(key), parse_value(depth + 1));
      skip_whitespace();
      if (at_end()) fail("unexpected end of input inside object");
      if (peek() == ',') {
        take();
        continue;
      }
      if (peek() == '}') {
        take();
        return v;
      }
      fail(std::string("expected ',' or '}' in object, got '") + peek() + "'");
    }
  }

  JsonValue parse_array(int depth) {
    expect('[', "to open array");
    JsonValue v;
    v.type_ = JsonValue::Type::kArray;
    skip_whitespace();
    if (!at_end() && peek() == ']') {
      take();
      return v;
    }
    while (true) {
      skip_whitespace();
      v.items_.push_back(parse_value(depth + 1));
      skip_whitespace();
      if (at_end()) fail("unexpected end of input inside array");
      if (peek() == ',') {
        take();
        continue;
      }
      if (peek() == ']') {
        take();
        return v;
      }
      fail(std::string("expected ',' or ']' in array, got '") + peek() + "'");
    }
  }

  unsigned parse_hex4() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      if (at_end()) fail("unexpected end of input in \\u escape");
      const char c = take();
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail(std::string("invalid hex digit '") + c + "' in \\u escape");
      }
    }
    return code;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::string parse_string() {
    expect('"', "to open string");
    std::string out;
    while (true) {
      if (at_end()) fail("unterminated string");
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("unescaped control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (at_end()) fail("unterminated escape sequence");
      const char esc = take();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            if (at_end() || peek() != '\\') fail("lone high surrogate in \\u escape");
            take();
            if (at_end() || peek() != 'u') fail("lone high surrogate in \\u escape");
            take();
            const unsigned lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate in \\u escape");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("lone low surrogate in \\u escape");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          fail(std::string("invalid escape '\\") + esc + "'");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    const int start_line = line_;
    const int start_column = column_;
    if (!at_end() && peek() == '-') take();
    // Integer part: a single 0, or a nonzero digit followed by digits.
    if (at_end() || peek() < '0' || peek() > '9') fail("invalid number: expected a digit");
    if (peek() == '0') {
      take();
    } else {
      while (!at_end() && peek() >= '0' && peek() <= '9') take();
    }
    if (!at_end() && peek() == '.') {
      take();
      if (at_end() || peek() < '0' || peek() > '9') fail("invalid number: expected a fraction digit");
      while (!at_end() && peek() >= '0' && peek() <= '9') take();
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      take();
      if (!at_end() && (peek() == '+' || peek() == '-')) take();
      if (at_end() || peek() < '0' || peek() > '9') fail("invalid number: expected an exponent digit");
      while (!at_end() && peek() >= '0' && peek() <= '9') take();
    }
    const std::string slice(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(slice.c_str(), &end);
    if (end != slice.c_str() + slice.size()) {
      throw JsonParseError("invalid number '" + slice + "'", start_line, start_column);
    }
    if (errno == ERANGE && (d == HUGE_VAL || d == -HUGE_VAL)) {
      throw JsonParseError("number '" + slice + "' out of double range", start_line, start_column);
    }
    JsonValue v;
    v.type_ = JsonValue::Type::kNumber;
    v.number_ = d;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

JsonValue parse_json(std::string_view text) { return JsonParser(text).parse_document(); }

}  // namespace statsize::util
