#include "util/args.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace statsize::util {

ArgParser::ArgParser(std::string program_description)
    : description_(std::move(program_description)) {}

void ArgParser::add_string(const std::string& name, const std::string& help,
                           std::optional<std::string> default_value) {
  if (!specs_.emplace(name, Spec{Kind::kString, help, std::move(default_value)}).second) {
    throw std::logic_error("duplicate flag --" + name);
  }
  order_.push_back(name);
}

void ArgParser::add_double(const std::string& name, const std::string& help,
                           std::optional<double> default_value) {
  std::optional<std::string> def;
  if (default_value) def = std::to_string(*default_value);
  if (!specs_.emplace(name, Spec{Kind::kDouble, help, std::move(def)}).second) {
    throw std::logic_error("duplicate flag --" + name);
  }
  order_.push_back(name);
}

void ArgParser::add_int(const std::string& name, const std::string& help,
                        std::optional<int> default_value) {
  std::optional<std::string> def;
  if (default_value) def = std::to_string(*default_value);
  if (!specs_.emplace(name, Spec{Kind::kInt, help, std::move(def)}).second) {
    throw std::logic_error("duplicate flag --" + name);
  }
  order_.push_back(name);
}

void ArgParser::add_flag(const std::string& name, const std::string& help) {
  if (!specs_.emplace(name, Spec{Kind::kFlag, help, std::nullopt}).second) {
    throw std::logic_error("duplicate flag --" + name);
  }
  order_.push_back(name);
}

void ArgParser::allow_positionals(const std::string& help) { positional_help_ = help; }

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      if (positional_help_) {
        positionals_.push_back(std::move(arg));
        continue;
      }
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    const auto it = specs_.find(arg);
    if (it == specs_.end()) throw std::invalid_argument("unknown flag --" + arg);
    if (it->second.kind == Kind::kFlag) {
      if (has_value) throw std::invalid_argument("flag --" + arg + " takes no value");
      values_[arg] = "1";
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) throw std::invalid_argument("missing value for --" + arg);
      value = argv[++i];
    }
    // Validate numeric forms eagerly so errors name the flag and distinguish
    // "not a number" from "a number that doesn't fit".
    if (it->second.kind == Kind::kInt) {
      std::size_t pos = 0;
      try {
        (void)std::stoi(value, &pos);
      } catch (const std::out_of_range&) {
        throw std::invalid_argument("--" + arg + ": value '" + value +
                                    "' out of range for integer");
      } catch (const std::invalid_argument&) {
        pos = std::string::npos;
      }
      if (pos != value.size()) {
        throw std::invalid_argument("--" + arg + ": expected integer, got '" + value + "'");
      }
    } else if (it->second.kind == Kind::kDouble) {
      std::size_t pos = 0;
      try {
        (void)std::stod(value, &pos);
      } catch (const std::out_of_range&) {
        throw std::invalid_argument("--" + arg + ": value '" + value +
                                    "' out of range for a double");
      } catch (const std::invalid_argument&) {
        pos = std::string::npos;
      }
      if (pos != value.size()) {
        throw std::invalid_argument("--" + arg + ": expected number, got '" + value + "'");
      }
    }
    values_[arg] = value;
  }
  return true;
}

bool ArgParser::has(const std::string& name) const {
  return values_.count(name) > 0 ||
         (specs_.count(name) > 0 && specs_.at(name).default_value.has_value());
}

const ArgParser::Spec& ArgParser::spec_of(const std::string& name, Kind kind) const {
  const auto it = specs_.find(name);
  if (it == specs_.end()) throw std::logic_error("flag --" + name + " was never registered");
  if (it->second.kind != kind) throw std::logic_error("flag --" + name + " type mismatch");
  return it->second;
}

std::string ArgParser::get_string(const std::string& name) const {
  const Spec& spec = spec_of(name, Kind::kString);
  const auto it = values_.find(name);
  if (it != values_.end()) return it->second;
  if (spec.default_value) return *spec.default_value;
  throw std::invalid_argument("required flag --" + name + " not given");
}

double ArgParser::get_double(const std::string& name) const {
  const Spec& spec = spec_of(name, Kind::kDouble);
  const auto it = values_.find(name);
  if (it != values_.end()) return std::stod(it->second);
  if (spec.default_value) return std::stod(*spec.default_value);
  throw std::invalid_argument("required flag --" + name + " not given");
}

int ArgParser::get_int(const std::string& name) const {
  const Spec& spec = spec_of(name, Kind::kInt);
  const auto it = values_.find(name);
  if (it != values_.end()) return std::stoi(it->second);
  if (spec.default_value) return std::stoi(*spec.default_value);
  throw std::invalid_argument("required flag --" + name + " not given");
}

bool ArgParser::get_flag(const std::string& name) const {
  (void)spec_of(name, Kind::kFlag);
  return values_.count(name) > 0;
}

std::string ArgParser::usage() const {
  std::ostringstream os;
  os << description_ << "\n";
  if (positional_help_) os << "\nPositional arguments: " << *positional_help_ << "\n";
  os << "\nOptions:\n";
  for (const std::string& name : order_) {
    const Spec& s = specs_.at(name);
    os << "  --" << name;
    switch (s.kind) {
      case Kind::kString: os << " <string>"; break;
      case Kind::kDouble: os << " <number>"; break;
      case Kind::kInt: os << " <int>"; break;
      case Kind::kFlag: break;
    }
    os << "\n      " << s.help;
    if (s.default_value) os << " (default: " << *s.default_value << ")";
    os << "\n";
  }
  os << "  --help\n      show this message\n";
  return os.str();
}

}  // namespace statsize::util
