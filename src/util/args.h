// Minimal command-line argument parser for the statsize tools.
//
// Flags are registered with a name, a help string and a default; parsing
// accepts "--name value" and "--name=value" forms plus "--flag" for booleans.
// Unknown flags and malformed values are hard errors (a tool that silently
// ignores a typo in "--max-delay" would produce wrong chips).

#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace statsize::util {

class ArgParser {
 public:
  explicit ArgParser(std::string program_description);

  /// Registration. Names are given without the leading "--".
  void add_string(const std::string& name, const std::string& help,
                  std::optional<std::string> default_value = std::nullopt);
  void add_double(const std::string& name, const std::string& help,
                  std::optional<double> default_value = std::nullopt);
  void add_int(const std::string& name, const std::string& help,
               std::optional<int> default_value = std::nullopt);
  void add_flag(const std::string& name, const std::string& help);

  /// Accepts bare (non `--`) arguments; without this they stay hard errors.
  /// `help` names them in usage(), e.g. "input files".
  void allow_positionals(const std::string& help);

  /// Parses argv. Returns false (after printing usage) when --help was
  /// requested; throws std::invalid_argument on errors.
  bool parse(int argc, const char* const* argv);

  /// Bare arguments in command-line order (empty unless allow_positionals).
  const std::vector<std::string>& positionals() const { return positionals_; }

  bool has(const std::string& name) const;
  std::string get_string(const std::string& name) const;
  double get_double(const std::string& name) const;
  int get_int(const std::string& name) const;
  bool get_flag(const std::string& name) const;

  std::string usage() const;

 private:
  enum class Kind { kString, kDouble, kInt, kFlag };
  struct Spec {
    Kind kind;
    std::string help;
    std::optional<std::string> default_value;
  };

  const Spec& spec_of(const std::string& name, Kind kind) const;

  std::string description_;
  std::vector<std::string> order_;  ///< registration order, for usage()
  std::map<std::string, Spec> specs_;
  std::map<std::string, std::string> values_;
  std::optional<std::string> positional_help_;
  std::vector<std::string> positionals_;
};

}  // namespace statsize::util
