// Second-order forward-mode automatic differentiation.
//
// Dual2<N> carries a function value, its gradient with respect to N seed
// variables, and the full (symmetric, packed) Hessian. Propagation through
// arithmetic is exact — there is no truncation error, unlike finite
// differences — so Dual2 serves both as the runtime engine for the Clark-max
// Hessians needed by the NLP solver (the paper requires analytic second
// derivatives for LANCELOT-class methods) and as the oracle that the
// hand-derived gradient formulas are tested against.
//
// The Hessian is stored as the upper triangle in row-major packed order:
// (0,0),(0,1),...,(0,N-1),(1,1),...,(N-1,N-1).

#pragma once

#include <array>
#include <cassert>
#include <cmath>
#include <cstddef>

namespace statsize::autodiff {

template <int N>
class Dual2 {
 public:
  static constexpr int kNumVars = N;
  static constexpr int kHessSize = N * (N + 1) / 2;

  constexpr Dual2() = default;

  // Implicit promotion from a plain constant keeps generic code readable
  // (e.g. `x + 1.0` inside a templated evaluator).
  constexpr Dual2(double value) : v_(value) {}  // NOLINT(google-explicit-constructor)

  /// Seeds variable `index` (0-based) with value `value`.
  static Dual2 variable(double value, int index) {
    assert(index >= 0 && index < N);
    Dual2 d(value);
    d.g_[static_cast<std::size_t>(index)] = 1.0;
    return d;
  }

  static constexpr Dual2 constant(double value) { return Dual2(value); }

  /// Packed index of Hessian entry (i, j); order of i and j is irrelevant.
  static constexpr int hess_index(int i, int j) {
    if (i > j) std::swap(i, j);
    return i * N - i * (i - 1) / 2 + (j - i);
  }

  double value() const { return v_; }
  double grad(int i) const { return g_[static_cast<std::size_t>(i)]; }
  double hess(int i, int j) const { return h_[static_cast<std::size_t>(hess_index(i, j))]; }
  const std::array<double, N>& grad_array() const { return g_; }
  const std::array<double, kHessSize>& hess_array() const { return h_; }

  Dual2 operator-() const {
    Dual2 r;
    r.v_ = -v_;
    for (int i = 0; i < N; ++i) r.g_[i] = -g_[i];
    for (int k = 0; k < kHessSize; ++k) r.h_[k] = -h_[k];
    return r;
  }

  Dual2& operator+=(const Dual2& o) {
    v_ += o.v_;
    for (int i = 0; i < N; ++i) g_[i] += o.g_[i];
    for (int k = 0; k < kHessSize; ++k) h_[k] += o.h_[k];
    return *this;
  }
  Dual2& operator-=(const Dual2& o) {
    v_ -= o.v_;
    for (int i = 0; i < N; ++i) g_[i] -= o.g_[i];
    for (int k = 0; k < kHessSize; ++k) h_[k] -= o.h_[k];
    return *this;
  }
  Dual2& operator*=(const Dual2& o) { return *this = *this * o; }
  Dual2& operator/=(const Dual2& o) { return *this = *this / o; }

  friend Dual2 operator+(Dual2 a, const Dual2& b) { return a += b; }
  friend Dual2 operator-(Dual2 a, const Dual2& b) { return a -= b; }

  friend Dual2 operator*(const Dual2& a, const Dual2& b) {
    Dual2 r;
    r.v_ = a.v_ * b.v_;
    for (int i = 0; i < N; ++i) r.g_[i] = a.v_ * b.g_[i] + b.v_ * a.g_[i];
    int k = 0;
    for (int i = 0; i < N; ++i) {
      for (int j = i; j < N; ++j, ++k) {
        r.h_[k] = a.v_ * b.h_[k] + b.v_ * a.h_[k] + a.g_[i] * b.g_[j] + a.g_[j] * b.g_[i];
      }
    }
    return r;
  }

  friend Dual2 operator/(const Dual2& a, const Dual2& b) {
    const double inv = 1.0 / b.v_;
    return a * apply_unary(b, inv, -inv * inv, 2.0 * inv * inv * inv);
  }

  friend bool operator<(const Dual2& a, const Dual2& b) { return a.v_ < b.v_; }
  friend bool operator>(const Dual2& a, const Dual2& b) { return a.v_ > b.v_; }
  friend bool operator<=(const Dual2& a, const Dual2& b) { return a.v_ <= b.v_; }
  friend bool operator>=(const Dual2& a, const Dual2& b) { return a.v_ >= b.v_; }

  /// Chain rule for a unary function with precomputed f(v), f'(v), f''(v):
  ///   grad  = f' * g
  ///   hess  = f' * h + f'' * (g ⊗ g)
  static Dual2 apply_unary(const Dual2& x, double f, double fp, double fpp) {
    Dual2 r;
    r.v_ = f;
    for (int i = 0; i < N; ++i) r.g_[i] = fp * x.g_[i];
    int k = 0;
    for (int i = 0; i < N; ++i) {
      for (int j = i; j < N; ++j, ++k) {
        r.h_[k] = fp * x.h_[k] + fpp * x.g_[i] * x.g_[j];
      }
    }
    return r;
  }

 private:
  double v_ = 0.0;
  std::array<double, N> g_{};
  std::array<double, kHessSize> h_{};
};

template <int N>
Dual2<N> sqrt(const Dual2<N>& x) {
  const double s = std::sqrt(x.value());
  return Dual2<N>::apply_unary(x, s, 0.5 / s, -0.25 / (s * x.value()));
}

template <int N>
Dual2<N> exp(const Dual2<N>& x) {
  const double e = std::exp(x.value());
  return Dual2<N>::apply_unary(x, e, e, e);
}

template <int N>
Dual2<N> log(const Dual2<N>& x) {
  const double inv = 1.0 / x.value();
  return Dual2<N>::apply_unary(x, std::log(x.value()), inv, -inv * inv);
}

/// Standard-normal CDF: Phi(x) = erfc(-x / sqrt(2)) / 2.
/// Phi'(x) = phi(x), Phi''(x) = -x * phi(x).
template <int N>
Dual2<N> normal_cdf(const Dual2<N>& x) {
  constexpr double kInvSqrt2 = 0.70710678118654752440;
  constexpr double kInvSqrt2Pi = 0.39894228040143267794;
  const double v = x.value();
  const double f = 0.5 * std::erfc(-v * kInvSqrt2);
  const double pdf = kInvSqrt2Pi * std::exp(-0.5 * v * v);
  return Dual2<N>::apply_unary(x, f, pdf, -v * pdf);
}

/// Standard-normal PDF: phi'(x) = -x phi(x), phi''(x) = (x^2 - 1) phi(x).
template <int N>
Dual2<N> normal_pdf(const Dual2<N>& x) {
  constexpr double kInvSqrt2Pi = 0.39894228040143267794;
  const double v = x.value();
  const double pdf = kInvSqrt2Pi * std::exp(-0.5 * v * v);
  return Dual2<N>::apply_unary(x, pdf, -v * pdf, (v * v - 1.0) * pdf);
}

}  // namespace statsize::autodiff
