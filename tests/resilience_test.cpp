// Resilience-layer tests (DESIGN.md §9): deadlines and cooperative
// cancellation, deterministic fault injection, best-iterate checkpointing,
// graceful degradation, and multistart retry. These prove the recovery
// contract rather than hoping for it: an injected NaN must surface as
// kNumericalBreakdown with a checkpoint (not a throw), an injected deadline
// must surface as kTimeLimit with a valid iterate, and an armed-but-unfired
// fault must leave results bit-identical to an unarmed run.

#include "core/sizer.h"
#include "netlist/generators.h"
#include "nlp/auglag.h"
#include "nlp/problem.h"
#include "runtime/cancel.h"
#include "runtime/fault.h"
#include "runtime/runtime.h"

#include <cmath>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace statsize {
namespace {

namespace fault = runtime::fault;

using core::Method;
using core::Objective;
using core::Sizer;
using core::SizerOptions;
using core::SizingResult;
using core::SizingSpec;
using netlist::Circuit;

struct ThreadGuard {
  int saved = runtime::threads();
  ~ThreadGuard() { runtime::set_threads(saved); }
};

/// Exception-safe disarm: a failed ASSERT must not leave a fault armed for
/// the next test.
struct DisarmGuard {
  ~DisarmGuard() { fault::disarm(); }
};

void expect_speeds_in_bounds(const SizingResult& r, double max_speed) {
  for (double s : r.speed) {
    EXPECT_TRUE(std::isfinite(s));
    EXPECT_GE(s, 1.0 - 1e-12);
    EXPECT_LE(s, max_speed + 1e-12);
  }
}

// ---------------------------------------------------------------------------
// Deadline / token / scope primitives
// ---------------------------------------------------------------------------

TEST(DeadlineBasics, NeverIsUnlimited) {
  const runtime::Deadline d = runtime::Deadline::never();
  EXPECT_TRUE(d.unlimited());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining_seconds(), std::numeric_limits<double>::infinity());
}

TEST(DeadlineBasics, ZeroOrNegativeBudgetIsAlreadyExpired) {
  EXPECT_TRUE(runtime::Deadline::after_seconds(0.0).expired());
  EXPECT_TRUE(runtime::Deadline::after_seconds(-5.0).expired());
  EXPECT_LE(runtime::Deadline::after_seconds(-5.0).remaining_seconds(), 0.0);
}

TEST(DeadlineBasics, FutureBudgetIsNotExpired) {
  const runtime::Deadline d = runtime::Deadline::after_seconds(1000.0);
  EXPECT_FALSE(d.unlimited());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_seconds(), 990.0);
  EXPECT_LE(d.remaining_seconds(), 1000.0);
}

TEST(CancellationTokenTest, StickyAndResettable) {
  runtime::CancellationToken tok;
  EXPECT_FALSE(tok.cancel_requested());
  tok.request_cancel();
  EXPECT_TRUE(tok.cancel_requested());
  tok.request_cancel();  // idempotent
  EXPECT_TRUE(tok.cancel_requested());
  tok.reset();
  EXPECT_FALSE(tok.cancel_requested());
}

TEST(CancelScopeTest, NoScopePollIsANoOp) {
  EXPECT_FALSE(runtime::cancel_requested());
  EXPECT_NO_THROW(runtime::poll_cancel());
}

TEST(CancelScopeTest, TokenCancelThrowsWithTokenReason) {
  runtime::CancellationToken tok;
  tok.request_cancel();
  {
    runtime::CancelScope scope(&tok, runtime::Deadline::never());
    EXPECT_TRUE(runtime::cancel_requested());
    try {
      runtime::poll_cancel();
      FAIL() << "poll_cancel() did not throw";
    } catch (const runtime::OperationCancelled& e) {
      EXPECT_EQ(e.reason(), runtime::CancelReason::kToken);
    }
  }
  EXPECT_FALSE(runtime::cancel_requested());  // scope uninstalled
}

TEST(CancelScopeTest, ExpiredDeadlineThrowsWithDeadlineReason) {
  runtime::CancelScope scope(nullptr, runtime::Deadline::after_seconds(0.0));
  try {
    runtime::poll_cancel();
    FAIL() << "poll_cancel() did not throw";
  } catch (const runtime::OperationCancelled& e) {
    EXPECT_EQ(e.reason(), runtime::CancelReason::kDeadline);
  }
}

TEST(CancelScopeTest, NestedScopeStillSeesOuterCancellation) {
  runtime::CancellationToken tok;
  tok.request_cancel();
  runtime::CancelScope outer(&tok, runtime::Deadline::never());
  runtime::CancelScope inner(nullptr, runtime::Deadline::never());
  EXPECT_TRUE(runtime::cancel_requested());
  EXPECT_THROW(runtime::poll_cancel(), runtime::OperationCancelled);
}

TEST(CancelScopeTest, ParallelForUnwindsAndPoolSurvives) {
  ThreadGuard guard;
  runtime::set_threads(4);
  const std::size_t n = 1 << 16;
  std::vector<double> out(n, 0.0);
  auto fill = [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) out[i] = static_cast<double>(i);
  };
  {
    runtime::CancellationToken tok;
    tok.request_cancel();
    runtime::CancelScope scope(&tok, runtime::Deadline::never());
    EXPECT_THROW(runtime::parallel_for(n, 64, fill), runtime::OperationCancelled);
  }
  // The pool must come back clean: same sweep, no scope, completes fully.
  std::fill(out.begin(), out.end(), 0.0);
  runtime::parallel_for(n, 64, fill);
  const double sum = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_EQ(sum, static_cast<double>(n) * static_cast<double>(n - 1) / 2.0);
}

// ---------------------------------------------------------------------------
// Fault injector
// ---------------------------------------------------------------------------

TEST(FaultInjection, FiresExactlyOnceAtConfiguredHit) {
  DisarmGuard cleanup;
  fault::arm("tron.iter:3");
  int fired_at = 0;
  for (int call = 1; call <= 10; ++call) {
    if (fault::hit(fault::kTronIter)) {
      EXPECT_EQ(fired_at, 0) << "site fired more than once";
      fired_at = call;
    }
  }
  EXPECT_EQ(fired_at, 3);
  // Counting continues after the fire: hits_observed() reports opportunities
  // seen over the whole armed window, not just up to the trigger.
  EXPECT_EQ(fault::hits_observed(), 10);
}

TEST(FaultInjection, NonMatchingSitesDoNotCount) {
  DisarmGuard cleanup;
  fault::arm("tron.iter:2");
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(fault::hit(fault::kPoolChunk));
  EXPECT_EQ(fault::hits_observed(), 0);
  EXPECT_FALSE(fault::hit(fault::kTronIter));
  EXPECT_TRUE(fault::hit(fault::kTronIter));
}

TEST(FaultInjection, ReArmingResetsTheCounter) {
  DisarmGuard cleanup;
  fault::arm("tron.iter:2");
  EXPECT_FALSE(fault::hit(fault::kTronIter));
  fault::arm("tron.iter:2");
  EXPECT_FALSE(fault::hit(fault::kTronIter));  // hit 1 again after re-arm
  EXPECT_TRUE(fault::hit(fault::kTronIter));
}

TEST(FaultInjection, RejectsUnknownSiteAndBadHitCount) {
  DisarmGuard cleanup;
  EXPECT_THROW(fault::arm("no.such.site"), std::invalid_argument);
  EXPECT_THROW(fault::arm(""), std::invalid_argument);
  EXPECT_THROW(fault::arm("tron.iter:0"), std::invalid_argument);
  EXPECT_THROW(fault::arm("tron.iter:-2"), std::invalid_argument);
  EXPECT_THROW(fault::arm("tron.iter:abc"), std::invalid_argument);
  EXPECT_THROW(fault::arm("tron.iter:"), std::invalid_argument);
  EXPECT_FALSE(fault::armed()) << "a rejected spec must not arm anything";
  // The unknown-site diagnostic lists the registry so a typo is self-serviceable.
  try {
    fault::arm("no.such.site");
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("known sites"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("tron.iter"), std::string::npos);
  }
}

TEST(FaultInjection, UnarmedHitIsFalseAndCountsNothing) {
  fault::disarm();
  EXPECT_FALSE(fault::armed());
  EXPECT_FALSE(fault::hit(fault::kTronIter));
  EXPECT_EQ(fault::hits_observed(), 0);
}

TEST(FaultInjection, ScopedFaultDisarmsOnExit) {
  {
    fault::ScopedFault f("pool.chunk:7");
    EXPECT_TRUE(fault::armed());
  }
  EXPECT_FALSE(fault::armed());
}

TEST(FaultInjection, ArmFromEnvHonorsAndValidatesTheVariable) {
  DisarmGuard cleanup;
  fault::disarm();
  ASSERT_EQ(setenv("STATSIZE_FAULT", "tron.iter:2", 1), 0);
  fault::arm_from_env();
  EXPECT_TRUE(fault::armed());
  EXPECT_FALSE(fault::hit(fault::kTronIter));
  EXPECT_TRUE(fault::hit(fault::kTronIter));
  fault::disarm();

  ASSERT_EQ(unsetenv("STATSIZE_FAULT"), 0);
  fault::arm_from_env();  // unset -> no-op
  EXPECT_FALSE(fault::armed());

  // A malformed value is a hard error, not a silently ignored fault spec.
  ASSERT_EQ(setenv("STATSIZE_FAULT", "definitely.not.a.site", 1), 0);
  EXPECT_THROW(fault::arm_from_env(), std::invalid_argument);
  ASSERT_EQ(unsetenv("STATSIZE_FAULT"), 0);
}

TEST(FaultInjection, PoolChunkFaultPropagatesAndPoolSurvives) {
  ThreadGuard guard;
  DisarmGuard cleanup;
  runtime::set_threads(4);
  const std::size_t n = 1 << 16;
  std::vector<double> out(n, 0.0);
  auto fill = [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) out[i] = 1.0;
  };
  fault::arm("pool.chunk:1");
  try {
    runtime::parallel_for(n, 64, fill);
    FAIL() << "injected pool.chunk fault did not propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("pool.chunk"), std::string::npos);
  }
  // The fault is spent after firing once; the pool must run the same sweep
  // to completion even while still armed.
  std::fill(out.begin(), out.end(), 0.0);
  runtime::parallel_for(n, 64, fill);
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0.0), static_cast<double>(n));
}

// ---------------------------------------------------------------------------
// Augmented-Lagrangian checkpointing and degradation (solver-level contract)
// ---------------------------------------------------------------------------

/// min x^2 (unconstrained), x in [-10, 10], start 3.
nlp::Problem quadratic_problem() {
  nlp::Problem p;
  p.add_variable(-10.0, 10.0, 3.0, "x");
  const nlp::ElementFunction* sq = p.own(std::make_unique<nlp::SquareElement>());
  nlp::FunctionGroup obj;
  obj.elements.push_back({sq, {0}, 1.0});
  p.set_objective(obj);
  return p;
}

/// min x^2 subject to x - 1 = 0 — needs several multiplier updates, so the
/// outer loop runs long enough to checkpoint and then be interrupted.
nlp::Problem constrained_quadratic_problem() {
  nlp::Problem p = quadratic_problem();
  nlp::FunctionGroup c;
  c.constant = -1.0;
  c.linear.push_back({0, 1.0});
  p.add_equality(std::move(c));
  return p;
}

TEST(AugLagResilience, PreExpiredDeadlineReturnsScoredStartPoint) {
  const nlp::Problem p = quadratic_problem();
  runtime::CancelScope scope(nullptr, runtime::Deadline::after_seconds(0.0));
  const nlp::SolveResult r = nlp::solve_augmented_lagrangian(p);
  EXPECT_EQ(r.status, nlp::SolveStatus::kTimeLimit);
  EXPECT_NE(r.status_string().find("time-limit"), std::string::npos);
  EXPECT_TRUE(r.from_checkpoint);
  EXPECT_EQ(r.checkpoint_outer, -1);  // nothing completed: clamped start point
  ASSERT_EQ(r.x.size(), 1u);
  EXPECT_EQ(r.x[0], 3.0);
  EXPECT_EQ(r.objective, 9.0);  // still scored, outside any solver progress
  EXPECT_FALSE(r.ok());
}

TEST(AugLagResilience, InjectedOuterDeadlineReturnsBestCheckpoint) {
  DisarmGuard cleanup;
  const nlp::Problem p = constrained_quadratic_problem();

  // Uninjected reference: the solve needs well over three outer iterations.
  const nlp::SolveResult ref = nlp::solve_augmented_lagrangian(p);
  ASSERT_TRUE(ref.ok()) << ref.status_string();
  ASSERT_GE(ref.outer_iterations, 3);
  EXPECT_NEAR(ref.x[0], 1.0, 1e-5);

  // Fire a deadline at the head of the third outer iteration: checkpoints
  // exist for outers 0 and 1, and outer 1 (after one multiplier update) is
  // strictly more feasible, so it must be the one returned.
  fault::arm("auglag.outer:3");
  const nlp::SolveResult r = nlp::solve_augmented_lagrangian(p);
  EXPECT_EQ(r.status, nlp::SolveStatus::kTimeLimit);
  EXPECT_TRUE(r.from_checkpoint);
  EXPECT_EQ(r.checkpoint_outer, 1);
  ASSERT_EQ(r.x.size(), 1u);
  EXPECT_TRUE(std::isfinite(r.x[0]));
  EXPECT_NEAR(r.x[0], 35.0 / 36.0, 0.05);  // second outer iterate of the schedule
  EXPECT_LT(r.constraint_violation, 0.06);
  EXPECT_TRUE(r.breakdown_site.empty());
}

TEST(AugLagResilience, InjectedNaNObjectiveDegradesWithNamedSite) {
  DisarmGuard cleanup;
  const nlp::Problem p = constrained_quadratic_problem();
  fault::arm("auglag.eval.objective:1");  // very first evaluation goes NaN
  nlp::SolveResult r;
  ASSERT_NO_THROW(r = nlp::solve_augmented_lagrangian(p));
  EXPECT_EQ(r.status, nlp::SolveStatus::kNumericalBreakdown);
  EXPECT_NE(r.status_string().find("numerical-breakdown"), std::string::npos);
  EXPECT_TRUE(r.from_checkpoint);
  EXPECT_EQ(r.checkpoint_outer, -1);  // broke before any outer completed
  EXPECT_NE(r.breakdown_site.find("objective"), std::string::npos);
  ASSERT_EQ(r.x.size(), 1u);
  EXPECT_EQ(r.x[0], 3.0);  // clamped start point, honestly labelled
}

// ---------------------------------------------------------------------------
// Sizer-level recovery contracts
// ---------------------------------------------------------------------------

TEST(SizerResilience, TinyTimeLimitReturnsScoredResult) {
  const Circuit c = netlist::make_tree_circuit();
  SizingSpec spec;
  spec.objective = Objective::min_delay(3.0);
  SizerOptions o;
  o.method = Method::kFullSpace;
  o.time_limit_seconds = 1e-9;  // expired before the first poll
  const SizingResult r = Sizer(c, spec).run(o);
  EXPECT_FALSE(r.converged);
  EXPECT_NE(r.status.find("time-limit"), std::string::npos) << r.status;
  EXPECT_EQ(r.retries_used, 0);
  expect_speeds_in_bounds(r, spec.max_speed);
  // finish() runs outside the cancel scope: the degraded sizing is still a
  // fully scored result, not a husk.
  EXPECT_TRUE(std::isfinite(r.circuit_delay.mu));
  EXPECT_GT(r.circuit_delay.mu, 0.0);
  EXPECT_GE(r.wall_seconds, 0.0);
}

TEST(SizerResilience, ExternalCancellationTokenStopsTheSolve) {
  const Circuit c = netlist::make_tree_circuit();
  SizingSpec spec;
  spec.objective = Objective::min_delay(0.0);
  runtime::CancellationToken tok;
  tok.request_cancel();
  SizerOptions o;
  o.method = Method::kReducedSpace;
  o.cancel = &tok;
  const SizingResult r = Sizer(c, spec).run(o);
  EXPECT_FALSE(r.converged);
  EXPECT_NE(r.status.find("time-limit"), std::string::npos) << r.status;
  expect_speeds_in_bounds(r, spec.max_speed);
  EXPECT_TRUE(std::isfinite(r.circuit_delay.mu));
}

TEST(SizerResilience, FullSpaceNaNMidSolveReturnsCheckpointNotThrow) {
  DisarmGuard cleanup;
  const Circuit c = netlist::make_tree_circuit();
  SizingSpec spec;
  spec.objective = Objective::min_delay(0.0);
  const Sizer sizer(c, spec);
  SizerOptions o;
  o.method = Method::kFullSpace;

  const SizingResult baseline = sizer.run(o);
  ASSERT_TRUE(baseline.converged) << baseline.status;

  // Phase 1: arm at an unreachable hit count to (a) prove an armed-but-
  // unfired fault leaves the result bit-identical, and (b) count how many
  // objective evaluations the solve performs.
  long n_evals = 0;
  {
    fault::ScopedFault probe("auglag.eval.objective:1000000000");
    const SizingResult armed = sizer.run(o);
    n_evals = fault::hits_observed();
    EXPECT_EQ(armed.status, baseline.status);
    EXPECT_EQ(armed.objective_value, baseline.objective_value);
    ASSERT_EQ(armed.speed.size(), baseline.speed.size());
    for (std::size_t i = 0; i < baseline.speed.size(); ++i) {
      EXPECT_EQ(armed.speed[i], baseline.speed[i]) << "node " << i;
    }
  }
  ASSERT_GE(n_evals, 2);

  // Phase 2: re-arm mid-solve. The NaN must surface as a degraded result,
  // never as an exception out of run().
  SizingResult broken;
  {
    fault::ScopedFault mid("auglag.eval.objective:" + std::to_string(std::max(1L, n_evals / 2)));
    ASSERT_NO_THROW(broken = sizer.run(o));
  }
  EXPECT_FALSE(broken.converged);
  EXPECT_NE(broken.status.find("numerical-breakdown"), std::string::npos) << broken.status;
  EXPECT_TRUE(broken.from_checkpoint);
  EXPECT_GE(broken.checkpoint_outer, -1);
  EXPECT_NE(broken.breakdown_site.find("objective"), std::string::npos) << broken.breakdown_site;
  expect_speeds_in_bounds(broken, spec.max_speed);
  EXPECT_TRUE(std::isfinite(broken.circuit_delay.mu));
}

TEST(SizerResilience, ReducedSpaceNaNNamesTheSite) {
  DisarmGuard cleanup;
  const Circuit c = netlist::make_tree_circuit();
  SizingSpec spec;
  spec.objective = Objective::min_delay(0.0);
  const Sizer sizer(c, spec);
  SizerOptions o;
  o.method = Method::kReducedSpace;

  long n_evals = 0;
  {
    fault::ScopedFault probe("reduced.eval:1000000000");
    const SizingResult armed = sizer.run(o);
    ASSERT_TRUE(armed.converged) << armed.status;
    n_evals = fault::hits_observed();
  }
  ASSERT_GE(n_evals, 2);

  SizingResult broken;
  {
    fault::ScopedFault mid("reduced.eval:" + std::to_string(std::max(1L, n_evals / 2)));
    ASSERT_NO_THROW(broken = sizer.run(o));
  }
  EXPECT_FALSE(broken.converged);
  EXPECT_EQ(broken.status, "reduced/numerical-breakdown");
  EXPECT_TRUE(broken.from_checkpoint);
  EXPECT_NE(broken.breakdown_site.find("reduced-space"), std::string::npos)
      << broken.breakdown_site;
  expect_speeds_in_bounds(broken, spec.max_speed);
  EXPECT_TRUE(std::isfinite(broken.circuit_delay.mu));
}

TEST(SizerResilience, RetryAfterInjectedFirstStartFailureConverges) {
  DisarmGuard cleanup;
  const Circuit c = netlist::make_tree_circuit();
  SizingSpec spec;
  spec.objective = Objective::min_delay(0.0);
  SizerOptions o;
  o.method = Method::kFullSpace;
  o.max_retries = 2;

  // The first full-space objective evaluation goes NaN; the fault is then
  // spent, so the deterministic multistart retry must converge.
  fault::ScopedFault f("auglag.eval.objective:1");
  const SizingResult r = Sizer(c, spec).run(o);
  EXPECT_TRUE(r.converged) << r.status;
  EXPECT_GE(r.retries_used, 1);
  EXPECT_EQ(r.status.find("numerical-breakdown"), std::string::npos) << r.status;
  EXPECT_TRUE(r.breakdown_site.empty());
  expect_speeds_in_bounds(r, spec.max_speed);
}

TEST(SizerResilience, RetriesOffReportsTheBreakdownInstead) {
  DisarmGuard cleanup;
  const Circuit c = netlist::make_tree_circuit();
  SizingSpec spec;
  spec.objective = Objective::min_delay(0.0);
  SizerOptions o;
  o.method = Method::kFullSpace;

  fault::ScopedFault f("auglag.eval.objective:1");
  const SizingResult r = Sizer(c, spec).run(o);
  EXPECT_FALSE(r.converged);
  EXPECT_NE(r.status.find("numerical-breakdown"), std::string::npos) << r.status;
  EXPECT_EQ(r.retries_used, 0);
}

// ---------------------------------------------------------------------------
// Determinism: the resilience layer must not perturb clean runs
// ---------------------------------------------------------------------------

TEST(ResilienceDeterminism, CleanSizerRunsBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  netlist::RandomDagParams dp;
  dp.num_gates = 40;
  dp.seed = 7;
  const Circuit c = netlist::make_random_dag(dp);
  SizingSpec spec;
  spec.objective = Objective::min_delay(3.0);
  const Sizer sizer(c, spec);
  SizerOptions o;
  o.method = Method::kFullSpace;

  runtime::set_threads(1);
  const SizingResult serial = sizer.run(o);
  runtime::set_threads(4);
  const SizingResult par = sizer.run(o);

  EXPECT_EQ(par.status, serial.status);
  EXPECT_EQ(par.objective_value, serial.objective_value);
  EXPECT_EQ(par.circuit_delay.mu, serial.circuit_delay.mu);
  EXPECT_EQ(par.circuit_delay.var, serial.circuit_delay.var);
  ASSERT_EQ(par.speed.size(), serial.speed.size());
  for (std::size_t i = 0; i < serial.speed.size(); ++i) {
    EXPECT_EQ(par.speed[i], serial.speed[i]) << "node " << i;
  }
}

}  // namespace
}  // namespace statsize
