// Derivative verification for the Clark max — the property the whole paper
// rests on: eqs. 10/12/13 admit *analytic* first and second derivatives.
//
// Three independent derivative computations are cross-checked:
//   1. hand-derived gradient (clark_max_grad)
//   2. second-order forward autodiff (clark_max_full)
//   3. central finite differences of the value / of the analytic gradient

#include "stat/clark.h"

#include <array>
#include <cmath>
#include <random>

#include <gtest/gtest.h>

namespace statsize::stat {
namespace {

struct Point {
  double mu_a, mu_b, var_a, var_b;

  double& coord(int i) {
    switch (i) {
      case 0: return mu_a;
      case 1: return mu_b;
      case 2: return var_a;
      default: return var_b;
    }
  }
  double coord(int i) const { return const_cast<Point*>(this)->coord(i); }
};

NormalRV eval(const Point& p) {
  return clark_max({p.mu_a, p.var_a}, {p.mu_b, p.var_b});
}

Point perturb(Point p, int i, double h) {
  p.coord(i) += h;
  return p;
}

class ClarkDerivative : public ::testing::TestWithParam<Point> {};

TEST_P(ClarkDerivative, HandGradientMatchesFiniteDifferences) {
  const Point p = GetParam();
  ClarkGrad grad;
  const NormalRV c = clark_max_grad({p.mu_a, p.var_a}, {p.mu_b, p.var_b}, grad);

  for (int i = 0; i < 4; ++i) {
    const double h = 1e-6 * (1.0 + std::abs(p.coord(i)));
    const NormalRV up = eval(perturb(p, i, h));
    const NormalRV dn = eval(perturb(p, i, -h));
    const double fd_mu = (up.mu - dn.mu) / (2 * h);
    const double fd_var = (up.var - dn.var) / (2 * h);
    EXPECT_NEAR(grad.dmu[i], fd_mu, 1e-5 * (1 + std::abs(fd_mu))) << "var index " << i;
    EXPECT_NEAR(grad.dvar[i], fd_var, 1e-5 * (1 + std::abs(fd_var))) << "var index " << i;
  }
  EXPECT_TRUE(std::isfinite(c.mu));
}

TEST_P(ClarkDerivative, HandGradientMatchesAutodiff) {
  const Point p = GetParam();
  ClarkGrad grad_hand;
  ClarkGrad grad_ad;
  ClarkHess hess;
  const NormalRV c1 = clark_max_grad({p.mu_a, p.var_a}, {p.mu_b, p.var_b}, grad_hand);
  const NormalRV c2 = clark_max_full({p.mu_a, p.var_a}, {p.mu_b, p.var_b}, grad_ad, hess);

  EXPECT_NEAR(c1.mu, c2.mu, 1e-12 * (1 + std::abs(c1.mu)));
  EXPECT_NEAR(c1.var, c2.var, 1e-11 * (1 + std::abs(c1.var)));
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(grad_hand.dmu[i], grad_ad.dmu[i], 1e-10) << "dmu " << i;
    EXPECT_NEAR(grad_hand.dvar[i], grad_ad.dvar[i], 1e-9 * (1 + std::abs(grad_ad.dvar[i])))
        << "dvar " << i;
  }
}

TEST_P(ClarkDerivative, AutodiffHessianMatchesFiniteDifferenceOfGradient) {
  const Point p = GetParam();
  ClarkGrad grad;
  ClarkHess hess;
  clark_max_full({p.mu_a, p.var_a}, {p.mu_b, p.var_b}, grad, hess);

  for (int i = 0; i < 4; ++i) {
    const double h = 1e-5 * (1.0 + std::abs(p.coord(i)));
    ClarkGrad gp;
    ClarkGrad gm;
    const Point pp = perturb(p, i, h);
    const Point pm = perturb(p, i, -h);
    clark_max_grad({pp.mu_a, pp.var_a}, {pp.mu_b, pp.var_b}, gp);
    clark_max_grad({pm.mu_a, pm.var_a}, {pm.mu_b, pm.var_b}, gm);
    for (int j = 0; j < 4; ++j) {
      const double fd_mu = (gp.dmu[j] - gm.dmu[j]) / (2 * h);
      const double fd_var = (gp.dvar[j] - gm.dvar[j]) / (2 * h);
      const int k = autodiff::Dual2<4>::hess_index(i, j);
      EXPECT_NEAR(hess.mu[k], fd_mu, 2e-4 * (1 + std::abs(fd_mu))) << i << "," << j;
      EXPECT_NEAR(hess.var[k], fd_var, 2e-4 * (1 + std::abs(fd_var))) << i << "," << j;
    }
  }
}

TEST_P(ClarkDerivative, MuGradientIsConvexCombination) {
  // dmu/dmuA + dmu/dmuB == 1 (shift invariance) and both lie in [0, 1].
  const Point p = GetParam();
  ClarkGrad grad;
  clark_max_grad({p.mu_a, p.var_a}, {p.mu_b, p.var_b}, grad);
  EXPECT_NEAR(grad.dmu[0] + grad.dmu[1], 1.0, 1e-12);
  EXPECT_GE(grad.dmu[0], 0.0);
  EXPECT_LE(grad.dmu[0], 1.0);
  EXPECT_GE(grad.dmu[2], 0.0);  // more input variance never reduces E[max]
  EXPECT_GE(grad.dmu[3], 0.0);
}

TEST_P(ClarkDerivative, VarGradientShiftInvariance) {
  // Shifting both means leaves var unchanged: dvar/dmuA + dvar/dmuB == 0.
  const Point p = GetParam();
  ClarkGrad grad;
  clark_max_grad({p.mu_a, p.var_a}, {p.mu_b, p.var_b}, grad);
  EXPECT_NEAR(grad.dvar[0] + grad.dvar[1], 0.0, 1e-9 * (1 + std::abs(grad.dvar[0])));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ClarkDerivative,
    ::testing::Values(Point{0.0, 0.0, 1.0, 1.0},        // iid standard
                      Point{1.0, 0.0, 1.0, 1.0},        // small gap
                      Point{5.0, 0.0, 1.0, 1.0},        // large gap
                      Point{0.0, 0.0, 0.04, 4.0},       // asymmetric sigma
                      Point{3.0, 2.5, 0.25, 0.0},       // one deterministic
                      Point{100.0, 99.0, 2.0, 3.0},     // large means
                      Point{-4.0, 4.0, 9.0, 0.01},      // dominated
                      Point{7.2, 7.2, 0.6, 0.6},        // exact tie
                      Point{0.3, -0.7, 1.3, 2.1}));     // generic

TEST(ClarkDerivativeDegenerate, DeterministicBranchGradients) {
  ClarkGrad grad;
  ClarkHess hess;
  const NormalRV c = clark_max_full({5.0, 0.0}, {3.0, 0.0}, grad, hess);
  EXPECT_DOUBLE_EQ(c.mu, 5.0);
  EXPECT_DOUBLE_EQ(grad.dmu[0], 1.0);
  EXPECT_DOUBLE_EQ(grad.dmu[1], 0.0);
  EXPECT_DOUBLE_EQ(grad.dvar[2], 1.0);
  EXPECT_DOUBLE_EQ(grad.dvar[3], 0.0);
  for (double h : hess.mu) EXPECT_DOUBLE_EQ(h, 0.0);
}

TEST(ClarkDerivativeDegenerate, TieSplitsSubgradient) {
  ClarkGrad grad;
  const NormalRV c = clark_max_grad({2.0, 0.0}, {2.0, 0.0}, grad);
  EXPECT_DOUBLE_EQ(c.mu, 2.0);
  EXPECT_DOUBLE_EQ(grad.dmu[0], 0.5);
  EXPECT_DOUBLE_EQ(grad.dmu[1], 0.5);
}

// Randomized agreement sweep with many points per seed; this is the heavy
// regression net that protects the hand-derived formulas.
class ClarkDerivativeFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ClarkDerivativeFuzz, HandVsAutodiffEverywhere) {
  std::mt19937 rng(GetParam());
  std::uniform_real_distribution<double> mu_d(-20.0, 20.0);
  std::uniform_real_distribution<double> v_d(1e-4, 25.0);
  for (int i = 0; i < 300; ++i) {
    const NormalRV a{mu_d(rng), v_d(rng)};
    const NormalRV b{mu_d(rng), v_d(rng)};
    ClarkGrad gh;
    ClarkGrad ga;
    ClarkHess hess;
    clark_max_grad(a, b, gh);
    clark_max_full(a, b, ga, hess);
    for (int j = 0; j < 4; ++j) {
      ASSERT_NEAR(gh.dmu[j], ga.dmu[j], 1e-9 * (1 + std::abs(ga.dmu[j])));
      ASSERT_NEAR(gh.dvar[j], ga.dvar[j], 1e-8 * (1 + std::abs(ga.dvar[j])));
    }
    // Hessians of mu must be symmetric in operand exchange paired with
    // index swap (0<->1, 2<->3).
    using D4 = autodiff::Dual2<4>;
    ClarkGrad ga2;
    ClarkHess hess2;
    clark_max_full(b, a, ga2, hess2);
    ASSERT_NEAR(hess.mu[D4::hess_index(0, 0)], hess2.mu[D4::hess_index(1, 1)], 1e-9);
    ASSERT_NEAR(hess.var[D4::hess_index(2, 2)], hess2.var[D4::hess_index(3, 3)],
                1e-8 * (1 + std::abs(hess.var[D4::hess_index(2, 2)])));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClarkDerivativeFuzz, ::testing::Range(100, 106));

// ---- Degenerate-regime robustness. The solver's non-finite tripwires
// (DESIGN.md §9) assume the statistical max itself never manufactures a
// NaN/inf in its corner regimes: theta -> 0 (near-deterministic operands),
// extreme |alpha| (one operand utterly dominant), and exactly-zero variances.

void expect_finite_derivatives(const ClarkGrad& g, const ClarkHess& h, const char* label) {
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(std::isfinite(g.dmu[i])) << label << " dmu[" << i << "]";
    EXPECT_TRUE(std::isfinite(g.dvar[i])) << label << " dvar[" << i << "]";
  }
  for (double v : h.mu) EXPECT_TRUE(std::isfinite(v)) << label << " hess.mu";
  for (double v : h.var) EXPECT_TRUE(std::isfinite(v)) << label << " hess.var";
}

TEST(ClarkDegenerate, ThetaNearZeroIsFiniteEverywhere) {
  // Total variance just above the kThetaFloorSq cutoff, so the *analytic*
  // branch runs with theta ~ 1.4e-10 — the regime where naive formulas
  // divide by ~0.
  for (double gap : {0.0, 1e-12, 1e-3, 1.0, -1.0}) {
    ClarkGrad grad;
    ClarkHess hess;
    const NormalRV c = clark_max_full({1.0 + gap, 1e-20}, {1.0, 1e-20}, grad, hess);
    EXPECT_TRUE(std::isfinite(c.mu)) << "gap " << gap;
    EXPECT_TRUE(std::isfinite(c.var)) << "gap " << gap;
    EXPECT_GE(c.var, 0.0) << "gap " << gap;
    expect_finite_derivatives(grad, hess, "theta->0");

    ClarkGrad grad_hand;
    const NormalRV ch = clark_max_grad({1.0 + gap, 1e-20}, {1.0, 1e-20}, grad_hand);
    EXPECT_TRUE(std::isfinite(ch.mu)) << "gap " << gap;
    for (int i = 0; i < 4; ++i) {
      EXPECT_TRUE(std::isfinite(grad_hand.dmu[i])) << "gap " << gap << " dmu[" << i << "]";
      EXPECT_TRUE(std::isfinite(grad_hand.dvar[i])) << "gap " << gap << " dvar[" << i << "]";
    }
  }
}

TEST(ClarkDegenerate, ThetaToZeroLimitPinsToDeterministicMax) {
  // As theta -> 0 with a fixed gap, the Clark moments must converge to the
  // deterministic max: mu -> max(muA, muB), var -> the winner's variance,
  // and dmu converges to the winner-takes-all subgradient.
  for (double v : {1e-8, 1e-12, 1e-16, 1e-20}) {
    ClarkGrad grad;
    ClarkHess hess;
    const NormalRV c = clark_max_full({2.0, v}, {1.0, v}, grad, hess);
    EXPECT_NEAR(c.mu, 2.0, 1e-3 * std::sqrt(v)) << "var " << v;
    // var is assembled as E[x^2] - mu^2, so its absolute accuracy bottoms
    // out at the cancellation floor ~eps * mu^2, not at a relative error.
    EXPECT_NEAR(c.var, v, 1e-6 * v + 4e-15) << "var " << v;
    EXPECT_NEAR(grad.dmu[0], 1.0, 1e-12) << "var " << v;
    EXPECT_NEAR(grad.dmu[1], 0.0, 1e-12) << "var " << v;
    EXPECT_NEAR(grad.dvar[2], 1.0, 1e-9) << "var " << v;   // d var / d varA
    EXPECT_NEAR(grad.dvar[3], 0.0, 1e-9) << "var " << v;   // d var / d varB
    expect_finite_derivatives(grad, hess, "theta->0 limit");
  }
}

TEST(ClarkDegenerate, ExtremeAlphaIsFiniteAndSaturates) {
  // |alpha| = |gap|/theta in the tens: Phi(-alpha) and phi(alpha) underflow
  // toward 0 and every alpha-weighted correction term must die with them
  // instead of producing 0 * inf.
  const NormalRV wide[] = {{40.0, 1.0}, {0.0, 1.0}};       // alpha ~ +28
  const NormalRV narrow[] = {{3.0, 1e-4}, {0.0, 1e-4}};    // alpha ~ +212
  for (const NormalRV* p : {wide, narrow}) {
    for (int flip = 0; flip < 2; ++flip) {                 // both signs of alpha
      const NormalRV& a = p[flip];
      const NormalRV& b = p[1 - flip];
      ClarkGrad grad;
      ClarkHess hess;
      const NormalRV c = clark_max_full(a, b, grad, hess);
      const NormalRV& winner = a.mu >= b.mu ? a : b;
      EXPECT_NEAR(c.mu, winner.mu, 1e-10 * (1.0 + std::abs(winner.mu)));
      EXPECT_NEAR(c.var, winner.var, 1e-10 * winner.var);
      expect_finite_derivatives(grad, hess, "extreme alpha");
      // Winner-takes-all saturation of the mean sensitivities.
      EXPECT_NEAR(grad.dmu[flip], 1.0, 1e-12);
      EXPECT_NEAR(grad.dmu[1 - flip], 0.0, 1e-12);
    }
  }
}

TEST(ClarkDegenerate, ZeroVarianceOperandsAreFinite) {
  // One or both operands exactly deterministic — both the analytic branch
  // (total variance > 0) and the floor branch (== 0) must return finite
  // moments, gradients, and Hessians.
  const NormalRV cases[][2] = {
      {{3.0, 0.0}, {1.0, 4.0}},   // deterministic loser
      {{5.0, 0.0}, {5.5, 0.25}},  // deterministic, near the other's mean
      {{2.0, 4.0}, {2.0, 0.0}},   // tie in mu, one deterministic
      {{5.0, 0.0}, {3.0, 0.0}},   // both deterministic
      {{2.0, 0.0}, {2.0, 0.0}},   // both deterministic, exact tie
  };
  for (const auto& pair : cases) {
    ClarkGrad grad;
    ClarkHess hess;
    const NormalRV c = clark_max_full(pair[0], pair[1], grad, hess);
    EXPECT_TRUE(std::isfinite(c.mu));
    EXPECT_TRUE(std::isfinite(c.var));
    EXPECT_GE(c.var, 0.0);
    EXPECT_GE(c.mu, std::max(pair[0].mu, pair[1].mu) - 1e-12);
    expect_finite_derivatives(grad, hess, "zero variance");
  }
}

}  // namespace
}  // namespace statsize::stat
