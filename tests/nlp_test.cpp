// Tests for the NLP solver stack: element/group machinery, the trust-region
// inner solver on classic unconstrained/bound-constrained problems, the
// augmented Lagrangian on Hock–Schittkowski-style equality problems, and the
// projected L-BFGS used by the reduced-space sizer.

#include "nlp/auglag.h"
#include "nlp/derivative_check.h"
#include "nlp/problem.h"
#include "nlp/projected_lbfgs.h"
#include "nlp/tron.h"

#include <cmath>
#include <memory>
#include <random>

#include <gtest/gtest.h>

namespace statsize::nlp {
namespace {

// ---------------------------------------------------------------------------
// Elements and groups.
// ---------------------------------------------------------------------------

TEST(Elements, ProductSquareRatioValuesAndDerivatives) {
  ProductElement prod;
  SquareElement sq;
  RatioElement ratio;
  double x[2] = {3.0, 4.0};
  double g[2];
  double h[3];

  EXPECT_DOUBLE_EQ(prod.eval(x, g, h), 12.0);
  EXPECT_DOUBLE_EQ(g[0], 4.0);
  EXPECT_DOUBLE_EQ(g[1], 3.0);
  EXPECT_DOUBLE_EQ(h[packed_index(2, 0, 1)], 1.0);

  EXPECT_DOUBLE_EQ(sq.eval(x, g, h), 9.0);
  EXPECT_DOUBLE_EQ(g[0], 6.0);
  EXPECT_DOUBLE_EQ(h[0], 2.0);

  EXPECT_DOUBLE_EQ(ratio.eval(x, g, h), 0.75);
  EXPECT_DOUBLE_EQ(g[0], 0.25);
  EXPECT_DOUBLE_EQ(g[1], -3.0 / 16.0);
  EXPECT_DOUBLE_EQ(h[packed_index(2, 1, 1)], 6.0 / 64.0);
}

TEST(Elements, PackedIndexLayout) {
  // 3-var packed upper triangle: (0,0)=0 (0,1)=1 (0,2)=2 (1,1)=3 (1,2)=4 (2,2)=5
  EXPECT_EQ(packed_index(3, 0, 0), 0);
  EXPECT_EQ(packed_index(3, 0, 2), 2);
  EXPECT_EQ(packed_index(3, 1, 1), 3);
  EXPECT_EQ(packed_index(3, 2, 1), 4);  // symmetric access
  EXPECT_EQ(packed_index(3, 2, 2), 5);
}

TEST(FunctionGroup, EvalAndGradient) {
  Problem p;
  const int x0 = p.add_variable(-10, 10, 1.0);
  const int x1 = p.add_variable(-10, 10, 2.0);
  const ElementFunction* prod = p.own(std::make_unique<ProductElement>());

  FunctionGroup g;
  g.constant = 5.0;
  g.linear = {{x0, 2.0}, {x1, -1.0}};
  g.elements = {{prod, {x0, x1}, 3.0}};

  const std::vector<double> x = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(g.eval(x), 5.0 + 2.0 - 2.0 + 3.0 * 2.0);

  std::vector<double> grad(2, 0.0);
  g.accumulate_grad(x, 2.0, grad);
  EXPECT_DOUBLE_EQ(grad[0], 2.0 * (2.0 + 3.0 * 2.0));
  EXPECT_DOUBLE_EQ(grad[1], 2.0 * (-1.0 + 3.0 * 1.0));
}

TEST(ProblemClass, ValidationCatchesBadIndices) {
  Problem p;
  p.add_variable(0, 1, 0.5);
  FunctionGroup g;
  g.linear = {{7, 1.0}};
  p.set_objective(g);
  EXPECT_THROW(p.validate(), std::runtime_error);
}

TEST(ProblemClass, InequalityAddsBoundedSlack) {
  Problem p;
  const int x0 = p.add_variable(0, 10, 5.0);
  FunctionGroup g;
  g.linear = {{x0, 1.0}};
  p.add_inequality(std::move(g), 3.0);
  EXPECT_EQ(p.num_vars(), 2);                   // slack added
  EXPECT_DOUBLE_EQ(p.lower()[1], 0.0);
  EXPECT_TRUE(std::isinf(p.upper()[1]));
  // With x0 = 2 and slack = 1 the constraint 2 + 1 - 3 = 0 holds.
  EXPECT_NEAR(p.constraint(0).eval({2.0, 1.0}), 0.0, 1e-15);
}

TEST(Elements, SqrtElementAndLinearExtension) {
  SqrtElement sq(0.04);  // floor at 0.04 -> sqrt = 0.2, slope = 2.5
  double x[1] = {0.25};
  double g[1];
  double h[1];
  EXPECT_DOUBLE_EQ(sq.eval(x, g, h), 0.5);
  EXPECT_DOUBLE_EQ(g[0], 1.0);              // 1/(2 sqrt(0.25))
  EXPECT_DOUBLE_EQ(h[0], -2.0);             // -1/(4 x^{3/2}) = -1/(4*0.125)

  // At the floor the value and slope are continuous...
  x[0] = 0.04;
  EXPECT_DOUBLE_EQ(sq.eval(x, g, nullptr), 0.2);
  EXPECT_DOUBLE_EQ(g[0], 2.5);
  // ...and below it the extension is linear with zero curvature.
  x[0] = 0.0;
  EXPECT_NEAR(sq.eval(x, g, h), 0.2 - 2.5 * 0.04, 1e-15);
  EXPECT_DOUBLE_EQ(g[0], 2.5);
  EXPECT_DOUBLE_EQ(h[0], 0.0);
  // Even negative transients stay finite.
  x[0] = -1.0;
  EXPECT_TRUE(std::isfinite(sq.eval(x, g, h)));
}

TEST(Elements, SqrtElementDefaultFloorIsTiny) {
  SqrtElement sq;
  double x[1] = {4.0};
  EXPECT_DOUBLE_EQ(sq.eval(x, nullptr, nullptr), 2.0);
}

// ---------------------------------------------------------------------------
// Trust-region inner solver on standalone models.
// ---------------------------------------------------------------------------

/// Rosenbrock in n dimensions with analytic Hessian-vector products.
class RosenbrockModel final : public SmoothModel {
 public:
  explicit RosenbrockModel(int n) : n_(n) {}
  int num_vars() const override { return n_; }

  double eval(const std::vector<double>& x, std::vector<double>* grad) override {
    if (grad != nullptr) {
      x_ = x;
      grad->assign(static_cast<std::size_t>(n_), 0.0);
    }
    double f = 0.0;
    for (int i = 0; i + 1 < n_; ++i) {
      const double a = x[i + 1] - x[i] * x[i];
      const double b = 1.0 - x[i];
      f += 100.0 * a * a + b * b;
      if (grad != nullptr) {
        (*grad)[i] += -400.0 * a * x[i] - 2.0 * b;
        (*grad)[i + 1] += 200.0 * a;
      }
    }
    return f;
  }

  void hess_vec(const std::vector<double>& v, std::vector<double>& hv) const override {
    hv.assign(static_cast<std::size_t>(n_), 0.0);
    for (int i = 0; i + 1 < n_; ++i) {
      const double xi = x_[i];
      const double h11 = 1200.0 * xi * xi - 400.0 * x_[i + 1] + 2.0;
      const double h12 = -400.0 * xi;
      hv[i] += h11 * v[i] + h12 * v[i + 1];
      hv[i + 1] += h12 * v[i] + 200.0 * v[i + 1];
    }
  }

 private:
  int n_;
  std::vector<double> x_;
};

TEST(TrustRegion, SolvesRosenbrock2D) {
  RosenbrockModel model(2);
  std::vector<double> x = {-1.2, 1.0};
  const std::vector<double> lo(2, -kInfinity);
  const std::vector<double> hi(2, kInfinity);
  TrustRegionOptions opt;
  opt.tol = 1e-8;
  opt.max_iterations = 500;
  const TrustRegionResult r = minimize_bound_constrained(model, x, lo, hi, opt);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(x[0], 1.0, 1e-5);
  EXPECT_NEAR(x[1], 1.0, 1e-5);
}

TEST(TrustRegion, SolvesRosenbrock20D) {
  RosenbrockModel model(20);
  std::vector<double> x(20, -1.0);
  const std::vector<double> lo(20, -kInfinity);
  const std::vector<double> hi(20, kInfinity);
  TrustRegionOptions opt;
  opt.tol = 1e-7;
  opt.max_iterations = 2000;
  const TrustRegionResult r = minimize_bound_constrained(model, x, lo, hi, opt);
  EXPECT_TRUE(r.converged);
  for (double xi : x) EXPECT_NEAR(xi, 1.0, 1e-4);
}

TEST(TrustRegion, RespectsActiveBounds) {
  // min (x-3)^2 + (y+2)^2 on [0,1]^2 -> (1, 0).
  class Quad final : public SmoothModel {
   public:
    int num_vars() const override { return 2; }
    double eval(const std::vector<double>& x, std::vector<double>* grad) override {
      if (grad != nullptr) {
        grad->resize(2);
        (*grad)[0] = 2.0 * (x[0] - 3.0);
        (*grad)[1] = 2.0 * (x[1] + 2.0);
      }
      return (x[0] - 3.0) * (x[0] - 3.0) + (x[1] + 2.0) * (x[1] + 2.0);
    }
    void hess_vec(const std::vector<double>& v, std::vector<double>& hv) const override {
      hv = {2.0 * v[0], 2.0 * v[1]};
    }
  } model;
  std::vector<double> x = {0.5, 0.5};
  const TrustRegionResult r =
      minimize_bound_constrained(model, x, {0.0, 0.0}, {1.0, 1.0}, {});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(x[0], 1.0, 1e-8);
  EXPECT_NEAR(x[1], 0.0, 1e-8);
}

TEST(TrustRegion, StartsAtOptimum) {
  class Quad final : public SmoothModel {
   public:
    int num_vars() const override { return 1; }
    double eval(const std::vector<double>& x, std::vector<double>* grad) override {
      if (grad != nullptr) *grad = {2.0 * x[0]};
      return x[0] * x[0];
    }
    void hess_vec(const std::vector<double>& v, std::vector<double>& hv) const override {
      hv = {2.0 * v[0]};
    }
  } model;
  std::vector<double> x = {0.0};
  const TrustRegionResult r =
      minimize_bound_constrained(model, x, {-1.0}, {1.0}, {});
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 1);
}

TEST(ProjectedGradientNorm, ZeroAtConstrainedStationaryPoint) {
  // x at lower bound with positive gradient: projection cannot move.
  EXPECT_DOUBLE_EQ(projected_gradient_norm({0.0}, {5.0}, {0.0}, {1.0}), 0.0);
  EXPECT_DOUBLE_EQ(projected_gradient_norm({0.5}, {0.2}, {0.0}, {1.0}), 0.2);
}

TEST(TrustRegion, EscapesNonConvexSaddleRegion) {
  // f(x, y) = x^2 - y^2 on [-1, 1]^2 from the saddle: negative curvature must
  // drive y to a bound, giving f = x^2 - 1 minimized at (0, +-1).
  class Saddle final : public SmoothModel {
   public:
    int num_vars() const override { return 2; }
    double eval(const std::vector<double>& x, std::vector<double>* grad) override {
      if (grad != nullptr) *grad = {2.0 * x[0], -2.0 * x[1]};
      return x[0] * x[0] - x[1] * x[1];
    }
    void hess_vec(const std::vector<double>& v, std::vector<double>& hv) const override {
      hv = {2.0 * v[0], -2.0 * v[1]};
    }
  } model;
  std::vector<double> x = {0.4, 1e-3};  // slightly off the saddle
  const TrustRegionResult r =
      minimize_bound_constrained(model, x, {-1.0, -1.0}, {1.0, 1.0}, {});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(x[0], 0.0, 1e-6);
  EXPECT_NEAR(std::abs(x[1]), 1.0, 1e-9);
}

TEST(TrustRegion, StagnationWindowStopsHopelessGrind) {
  // An almost-flat valley (curvature 1e-12): progress per iteration is below
  // the stagnation threshold, so the solver must give up quickly instead of
  // consuming the whole iteration budget.
  class Flat final : public SmoothModel {
   public:
    int num_vars() const override { return 1; }
    double eval(const std::vector<double>& x, std::vector<double>* grad) override {
      if (grad != nullptr) *grad = {1e-12 * x[0] + 1e-3};
      return 0.5e-12 * x[0] * x[0] + 1e-3 * x[0];
    }
    void hess_vec(const std::vector<double>& v, std::vector<double>& hv) const override {
      hv = {1e-12 * v[0]};
    }
  } model;
  std::vector<double> x = {0.0};
  TrustRegionOptions opt;
  opt.tol = 1e-14;  // unreachable
  opt.max_iterations = 5000;
  const TrustRegionResult r =
      minimize_bound_constrained(model, x, {-1e9}, {1e9}, opt);
  EXPECT_LT(r.iterations, 2000);  // bailed out long before the budget
}

// ---------------------------------------------------------------------------
// Augmented Lagrangian on equality-constrained problems with known solutions.
// ---------------------------------------------------------------------------

/// Helper: x^T Q x /2 style quadratic objective via elements.
std::unique_ptr<Problem> make_hs6() {
  // HS6: min (1-x0)^2 s.t. 10(x1 - x0^2) = 0, solution (1,1), f*=0.
  auto p = std::make_unique<Problem>();
  const int x0 = p->add_variable(-kInfinity, kInfinity, -1.2);
  const int x1 = p->add_variable(-kInfinity, kInfinity, 1.0);
  const ElementFunction* sq = p->own(std::make_unique<SquareElement>());

  FunctionGroup obj;  // (1 - x0)^2 = 1 - 2 x0 + x0^2
  obj.constant = 1.0;
  obj.linear = {{x0, -2.0}};
  obj.elements = {{sq, {x0}, 1.0}};
  p->set_objective(std::move(obj));

  FunctionGroup c;  // 10 x1 - 10 x0^2 = 0
  c.linear = {{x1, 10.0}};
  c.elements = {{sq, {x0}, -10.0}};
  p->add_equality(std::move(c));
  return p;
}

TEST(AugLag, SolvesHs6) {
  auto p = make_hs6();
  const SolveResult r = solve_augmented_lagrangian(*p);
  EXPECT_TRUE(r.ok()) << r.status_string();
  EXPECT_NEAR(r.x[0], 1.0, 1e-4);
  EXPECT_NEAR(r.x[1], 1.0, 1e-4);
  EXPECT_NEAR(r.objective, 0.0, 1e-6);
  EXPECT_LE(r.constraint_violation, 1e-6);
}

TEST(AugLag, SolvesHs28) {
  // HS28: min (x0+x1)^2 + (x1+x2)^2 s.t. x0 + 2x1 + 3x2 = 1.
  // Solution (0.5, -0.5, 0.5), f* = 0.
  Problem p;
  const int x0 = p.add_variable(-kInfinity, kInfinity, -4.0);
  const int x1 = p.add_variable(-kInfinity, kInfinity, 1.0);
  const int x2 = p.add_variable(-kInfinity, kInfinity, 1.0);
  const ElementFunction* sq = p.own(std::make_unique<SquareElement>());
  const ElementFunction* prod = p.own(std::make_unique<ProductElement>());

  FunctionGroup obj;  // x0^2 + 2x1^2 + x2^2 + 2 x0 x1 + 2 x1 x2
  obj.elements = {{sq, {x0}, 1.0},      {sq, {x1}, 2.0},      {sq, {x2}, 1.0},
                  {prod, {x0, x1}, 2.0}, {prod, {x1, x2}, 2.0}};
  p.set_objective(std::move(obj));

  FunctionGroup c;
  c.constant = -1.0;
  c.linear = {{x0, 1.0}, {x1, 2.0}, {x2, 3.0}};
  p.add_equality(std::move(c));

  const SolveResult r = solve_augmented_lagrangian(p);
  EXPECT_TRUE(r.ok()) << r.status_string();
  EXPECT_NEAR(r.x[0], 0.5, 1e-4);
  EXPECT_NEAR(r.x[1], -0.5, 1e-4);
  EXPECT_NEAR(r.x[2], 0.5, 1e-4);
}

TEST(AugLag, EqualityWithBoundsActive) {
  // min x0 + x1 s.t. x0 * x1 = 4, x in [1, 10]^2 -> (2, 2) (symmetric), f*=4.
  Problem p;
  const int x0 = p.add_variable(1.0, 10.0, 5.0);
  const int x1 = p.add_variable(1.0, 10.0, 1.0);
  const ElementFunction* prod = p.own(std::make_unique<ProductElement>());
  FunctionGroup obj;
  obj.linear = {{x0, 1.0}, {x1, 1.0}};
  p.set_objective(std::move(obj));
  FunctionGroup c;
  c.constant = -4.0;
  c.elements = {{prod, {x0, x1}, 1.0}};
  p.add_equality(std::move(c));

  const SolveResult r = solve_augmented_lagrangian(p);
  EXPECT_TRUE(r.ok()) << r.status_string();
  EXPECT_NEAR(r.x[0] * r.x[1], 4.0, 1e-5);
  EXPECT_NEAR(r.objective, 4.0, 1e-4);
}

TEST(AugLag, InequalityBecomesActiveWhenBinding) {
  // min (x-5)^2 s.t. x <= 3, x in [0, 10] -> x = 3.
  Problem p;
  const int x = p.add_variable(0.0, 10.0, 0.0);
  const ElementFunction* sq = p.own(std::make_unique<SquareElement>());
  FunctionGroup obj;  // x^2 - 10x + 25
  obj.constant = 25.0;
  obj.linear = {{x, -10.0}};
  obj.elements = {{sq, {x}, 1.0}};
  p.set_objective(std::move(obj));
  FunctionGroup g;
  g.linear = {{x, 1.0}};
  p.add_inequality(std::move(g), 3.0);

  const SolveResult r = solve_augmented_lagrangian(p);
  EXPECT_TRUE(r.ok()) << r.status_string();
  EXPECT_NEAR(r.x[0], 3.0, 1e-5);
}

TEST(AugLag, InequalityInactiveWhenSlack) {
  // min (x-2)^2 s.t. x <= 8 -> unconstrained optimum x = 2.
  Problem p;
  const int x = p.add_variable(0.0, 10.0, 7.0);
  const ElementFunction* sq = p.own(std::make_unique<SquareElement>());
  FunctionGroup obj;
  obj.constant = 4.0;
  obj.linear = {{x, -4.0}};
  obj.elements = {{sq, {x}, 1.0}};
  p.set_objective(std::move(obj));
  FunctionGroup g;
  g.linear = {{x, 1.0}};
  p.add_inequality(std::move(g), 8.0);

  const SolveResult r = solve_augmented_lagrangian(p);
  EXPECT_TRUE(r.ok()) << r.status_string();
  EXPECT_NEAR(r.x[0], 2.0, 1e-5);
}

TEST(AugLag, MultiplierEstimatesAreLagrangeMultipliers) {
  // min x0^2 + x1^2 s.t. x0 + x1 = 2: solution (1,1), multiplier lambda = 2
  // (gradient condition 2 x = lambda * [1,1]).
  Problem p;
  const int x0 = p.add_variable(-kInfinity, kInfinity, 0.0);
  const int x1 = p.add_variable(-kInfinity, kInfinity, 0.0);
  const ElementFunction* sq = p.own(std::make_unique<SquareElement>());
  FunctionGroup obj;
  obj.elements = {{sq, {x0}, 1.0}, {sq, {x1}, 1.0}};
  p.set_objective(std::move(obj));
  FunctionGroup c;
  c.constant = -2.0;
  c.linear = {{x0, 1.0}, {x1, 1.0}};
  p.add_equality(std::move(c));

  const SolveResult r = solve_augmented_lagrangian(p);
  EXPECT_TRUE(r.ok());
  EXPECT_NEAR(r.x[0], 1.0, 1e-5);
  EXPECT_NEAR(r.multipliers[0], 2.0, 1e-3);
}

TEST(AugLagWarmStart, EmptyWarmStartMatchesPlainOverloadBitwise) {
  auto p = make_hs6();
  const SolveResult plain = solve_augmented_lagrangian(*p);
  const SolveResult warm = solve_augmented_lagrangian(*p, {}, WarmStart{});
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(warm.ok());
  ASSERT_EQ(plain.x.size(), warm.x.size());
  for (std::size_t i = 0; i < plain.x.size(); ++i) EXPECT_EQ(plain.x[i], warm.x[i]);
  EXPECT_EQ(plain.outer_iterations, warm.outer_iterations);
  EXPECT_EQ(plain.final_rho, warm.final_rho);
}

TEST(AugLagWarmStart, RejectsSizeMismatchesAndNonFiniteRho) {
  auto p = make_hs6();
  WarmStart bad_x;
  bad_x.x = {1.0};  // problem has 2 vars
  EXPECT_THROW(solve_augmented_lagrangian(*p, {}, bad_x), std::invalid_argument);
  WarmStart bad_m;
  bad_m.multipliers = {0.0, 0.0};  // problem has 1 constraint
  EXPECT_THROW(solve_augmented_lagrangian(*p, {}, bad_m), std::invalid_argument);
  WarmStart bad_rho;
  bad_rho.rho = std::nan("");
  EXPECT_THROW(solve_augmented_lagrangian(*p, {}, bad_rho), std::invalid_argument);
}

TEST(AugLagWarmStart, ResolveFromConvergedStateTakesFewerOuterIterations) {
  auto p = make_hs6();
  const SolveResult cold = solve_augmented_lagrangian(*p);
  ASSERT_TRUE(cold.ok());
  ASSERT_GT(cold.outer_iterations, 1);

  WarmStart warm;
  warm.x = cold.x;
  warm.multipliers = cold.multipliers;
  warm.rho = cold.final_rho;
  const SolveResult resumed = solve_augmented_lagrangian(*p, {}, warm);
  ASSERT_TRUE(resumed.ok()) << resumed.status_string();
  EXPECT_LT(resumed.outer_iterations, cold.outer_iterations);
  EXPECT_NEAR(resumed.x[0], 1.0, 1e-4);
  EXPECT_NEAR(resumed.x[1], 1.0, 1e-4);
}

TEST(AugLagModel, GradientMatchesFiniteDifference) {
  auto p = make_hs6();
  AugLagModel model(*p, {0.7}, 13.0);
  const std::vector<double> x = {0.3, -0.4};
  std::vector<double> grad;
  const double f = model.eval(x, &grad);
  for (int i = 0; i < 2; ++i) {
    std::vector<double> xp = x;
    const double h = 1e-7;
    xp[static_cast<std::size_t>(i)] += h;
    const double fp = model.eval(xp, nullptr);
    xp[static_cast<std::size_t>(i)] -= 2 * h;
    const double fm = model.eval(xp, nullptr);
    EXPECT_NEAR(grad[static_cast<std::size_t>(i)], (fp - fm) / (2 * h), 1e-5 * (1 + std::abs(f)));
  }
}

TEST(AugLagModel, HessVecMatchesFiniteDifferenceOfGradient) {
  auto p = make_hs6();
  AugLagModel model(*p, {0.7}, 13.0);
  const std::vector<double> x = {0.3, -0.4};
  std::vector<double> g0;
  model.eval(x, &g0);

  std::mt19937 rng(5);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> v = {u(rng), u(rng)};
    std::vector<double> hv;
    model.hess_vec(v, hv);
    const double h = 1e-6;
    std::vector<double> xp = x;
    std::vector<double> gp;
    std::vector<double> gm;
    for (std::size_t i = 0; i < 2; ++i) xp[i] = x[i] + h * v[i];
    model.eval(xp, &gp);
    for (std::size_t i = 0; i < 2; ++i) xp[i] = x[i] - h * v[i];
    model.eval(xp, &gm);
    model.eval(x, &g0);  // restore snapshot at x
    for (std::size_t i = 0; i < 2; ++i) {
      EXPECT_NEAR(hv[i], (gp[i] - gm[i]) / (2 * h), 2e-4 * (1 + std::abs(hv[i])));
    }
  }
}

TEST(DerivativeCheck, AcceptsCorrectProblem) {
  auto p = make_hs6();
  const DerivativeReport rep = check_problem_derivatives(*p, {0.4, 0.9});
  EXPECT_TRUE(rep.ok(1e-6)) << rep.max_gradient_error << " " << rep.max_hessian_error;
}

TEST(DerivativeCheck, FlagsWrongGradient) {
  /// An element with a deliberately wrong derivative.
  class Broken final : public ElementFunction {
   public:
    int arity() const override { return 1; }
    double eval(const double* x, double* grad, double* hess) const override {
      if (grad != nullptr) grad[0] = 3.0 * x[0];  // should be 2 x
      if (hess != nullptr) hess[0] = 2.0;
      return x[0] * x[0];
    }
  };
  Problem p;
  const int x = p.add_variable(-1, 1, 0.5);
  const ElementFunction* bad = p.own(std::make_unique<Broken>());
  FunctionGroup obj;
  obj.elements = {{bad, {x}, 1.0}};
  p.set_objective(std::move(obj));
  const DerivativeReport rep = check_problem_derivatives(p, {0.5});
  EXPECT_FALSE(rep.ok(1e-4));
}

TEST(AugLag, OnOuterCallbackObservesProgress) {
  auto p = make_hs6();
  AugLagOptions opt;
  int calls = 0;
  double last_cnorm = 1e9;
  opt.on_outer = [&](int, const std::vector<double>&, double cnorm, double) {
    ++calls;
    last_cnorm = cnorm;
  };
  const SolveResult r = solve_augmented_lagrangian(*p, opt);
  EXPECT_TRUE(r.ok());
  EXPECT_GT(calls, 0);
  EXPECT_LE(last_cnorm, 1e-6);
  EXPECT_EQ(calls, r.outer_iterations);
}

TEST(AugLag, AcceptableStatusCountsAsOk) {
  SolveResult r;
  r.status = SolveStatus::kAcceptable;
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.status_string(), "acceptable");
  r.status = SolveStatus::kStalled;
  EXPECT_FALSE(r.ok());
}

// ---------------------------------------------------------------------------
// Projected L-BFGS.
// ---------------------------------------------------------------------------

TEST(ProjectedLbfgs, SolvesRosenbrock) {
  auto fn = [](const std::vector<double>& x, std::vector<double>& g) {
    const double a = x[1] - x[0] * x[0];
    const double b = 1.0 - x[0];
    g.resize(2);
    g[0] = -400.0 * a * x[0] - 2.0 * b;
    g[1] = 200.0 * a;
    return 100.0 * a * a + b * b;
  };
  std::vector<double> x = {-1.2, 1.0};
  const std::vector<double> lo(2, -10.0);
  const std::vector<double> hi(2, 10.0);
  LbfgsOptions opt;
  opt.tol = 1e-7;
  opt.max_iterations = 2000;
  const LbfgsResult r = minimize_projected_lbfgs(fn, x, lo, hi, opt);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(x[0], 1.0, 1e-4);
  EXPECT_NEAR(x[1], 1.0, 1e-4);
}

TEST(ProjectedLbfgs, RespectsBounds) {
  auto fn = [](const std::vector<double>& x, std::vector<double>& g) {
    g.resize(2);
    g[0] = 2.0 * (x[0] - 3.0);
    g[1] = 2.0 * (x[1] + 2.0);
    return (x[0] - 3.0) * (x[0] - 3.0) + (x[1] + 2.0) * (x[1] + 2.0);
  };
  std::vector<double> x = {0.5, 0.5};
  const LbfgsResult r = minimize_projected_lbfgs(fn, x, {0.0, 0.0}, {1.0, 1.0}, {});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(x[0], 1.0, 1e-7);
  EXPECT_NEAR(x[1], 0.0, 1e-7);
}

TEST(ProjectedLbfgs, HighDimensionalQuadratic) {
  // Ill-conditioned diagonal quadratic, n = 200.
  const int n = 200;
  auto fn = [n](const std::vector<double>& x, std::vector<double>& g) {
    g.resize(static_cast<std::size_t>(n));
    double f = 0.0;
    for (int i = 0; i < n; ++i) {
      const double w = 1.0 + 99.0 * i / (n - 1);
      const double t = x[static_cast<std::size_t>(i)] - 1.0;
      f += 0.5 * w * t * t;
      g[static_cast<std::size_t>(i)] = w * t;
    }
    return f;
  };
  std::vector<double> x(n, 0.0);
  const std::vector<double> lo(n, -kInfinity);
  const std::vector<double> hi(n, kInfinity);
  LbfgsOptions opt;
  opt.tol = 1e-6;
  opt.max_iterations = 1000;
  const LbfgsResult r = minimize_projected_lbfgs(fn, x, lo, hi, opt);
  EXPECT_TRUE(r.converged);
  for (int i = 0; i < n; i += 37) EXPECT_NEAR(x[static_cast<std::size_t>(i)], 1.0, 1e-5);
}

// Randomized equality-constrained quadratics: min ||x - a||^2 s.t. b^T x = 1.
// Closed form: x* = a + (1 - b.a)/(b.b) * b.
class AugLagRandomQuadratic : public ::testing::TestWithParam<int> {};

TEST_P(AugLagRandomQuadratic, MatchesClosedForm) {
  std::mt19937 rng(GetParam());
  std::uniform_real_distribution<double> u(-2.0, 2.0);
  const int n = 6;
  std::vector<double> a(n);
  std::vector<double> b(n);
  double bb = 0.0;
  double ba = 0.0;
  for (int i = 0; i < n; ++i) {
    a[static_cast<std::size_t>(i)] = u(rng);
    b[static_cast<std::size_t>(i)] = u(rng) + 2.5;  // keep b away from 0
    bb += b[static_cast<std::size_t>(i)] * b[static_cast<std::size_t>(i)];
    ba += b[static_cast<std::size_t>(i)] * a[static_cast<std::size_t>(i)];
  }

  Problem p;
  for (int i = 0; i < n; ++i) p.add_variable(-kInfinity, kInfinity, 0.0);
  const ElementFunction* sq_elem = p.own(std::make_unique<SquareElement>());
  FunctionGroup obj;
  for (int i = 0; i < n; ++i) {
    obj.elements.push_back({sq_elem, {i}, 1.0});
    obj.linear.push_back({i, -2.0 * a[static_cast<std::size_t>(i)]});
    obj.constant += a[static_cast<std::size_t>(i)] * a[static_cast<std::size_t>(i)];
  }
  p.set_objective(std::move(obj));
  FunctionGroup c;
  c.constant = -1.0;
  for (int i = 0; i < n; ++i) c.linear.push_back({i, b[static_cast<std::size_t>(i)]});
  p.add_equality(std::move(c));

  const SolveResult r = solve_augmented_lagrangian(p);
  ASSERT_TRUE(r.ok()) << r.status_string();
  const double shift = (1.0 - ba) / bb;
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(r.x[static_cast<std::size_t>(i)],
                a[static_cast<std::size_t>(i)] + shift * b[static_cast<std::size_t>(i)], 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AugLagRandomQuadratic, ::testing::Range(1, 11));

// ---------------------------------------------------------------------------
// Element arity bound (stack buffers in every evaluation path)
// ---------------------------------------------------------------------------

/// An element wider than the kMaxElementArity stack buffers; must be rejected
/// before any evaluation path could touch one.
class TooWideElement final : public ElementFunction {
 public:
  int arity() const override { return kMaxElementArity + 1; }
  double eval(const double*, double*, double*) const override { return 0.0; }
};

TEST(Problem, OwnRejectsElementBeyondMaxArity) {
  Problem p;
  try {
    p.own(std::make_unique<TooWideElement>());
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("arity 17"), std::string::npos) << what;
    EXPECT_NE(what.find("16"), std::string::npos) << what;
  }
}

TEST(Problem, ValidateNamesOverWideElement) {
  static const TooWideElement wide;  // bypasses own() on purpose
  Problem p;
  std::vector<int> vars;
  for (int i = 0; i < wide.arity(); ++i) vars.push_back(p.add_variable(0.0, 1.0, 0.5));
  p.set_objective({});
  FunctionGroup g;
  g.elements = {{&wide, vars, 1.0}};
  p.add_equality(std::move(g));
  try {
    p.validate();
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("constraint #0"), std::string::npos) << what;
    EXPECT_NE(what.find("element #0"), std::string::npos) << what;
    EXPECT_NE(what.find("arity 17"), std::string::npos) << what;
  }
}

TEST(AugLagModel, ConstructorRejectsElementBeyondMaxArity) {
  static const TooWideElement wide;
  Problem p;
  std::vector<int> vars;
  for (int i = 0; i < wide.arity(); ++i) vars.push_back(p.add_variable(0.0, 1.0, 0.5));
  FunctionGroup obj;
  obj.elements = {{&wide, vars, 1.0}};
  p.set_objective(std::move(obj));
  EXPECT_THROW(nlp::AugLagModel(p, {}, 10.0), std::invalid_argument);
}

}  // namespace
}  // namespace statsize::nlp
